// The lowerbounds example explores the paper's theory side: it evaluates the
// composite-algorithm bound engine (Theorem 4.5/4.6) against the closed
// forms, sweeps the direct and Winograd bounds over fast-memory sizes, and
// plays real red–blue pebble games on a small convolution DAG to show that
// measured I/O always respects Theorem 4.12.
//
// Run with: go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/pebble"
	"repro/internal/report"
)

func main() {
	layer, err := repro.NewShape(1, 256, 56, 128, 3, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer: %v\n\n", layer)

	// Bound sweep: both algorithms, engine vs closed form.
	t := report.New("lower bounds vs fast memory size (elements moved)",
		"S", "direct closed", "direct engine", "winograd closed", "dataflow direct", "dataflow wino")
	for _, s := range []int{512, 2048, 8192, 32768} {
		t.AddRowF(s,
			bounds.DirectLowerBound(layer, s),
			bounds.DirectLowerBoundEngine(layer, s),
			bounds.WinogradLowerBound(layer, 2, s),
			bounds.DirectDataflowIOOptimal(layer, s, 1),
			bounds.WinogradDataflowIOOptimal(layer, 2, s, 1))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The optimality condition in action: tiles of equal volume, very
	// different modeled traffic.
	fmt.Println("\nEquation 20 at equal tile volume (direct, S=4096):")
	for _, tile := range []bounds.Tile{
		{X: 12, Y: 12, Z: 16}, // xy = Rz: optimal
		{X: 24, Y: 24, Z: 4},  // output-heavy
		{X: 4, Y: 4, Z: 144},  // channel-heavy
	} {
		fmt.Printf("  tile %3dx%3dx%3d  gap=%.2f  Q=%.3e\n",
			tile.X, tile.Y, tile.Z, tile.OptimalityGap(layer.R()),
			bounds.DirectDataflowIO(layer, tile))
	}

	// Pebble games on a real DAG: measured Q ≥ bound for every policy.
	tiny, err := repro.NewShape(1, 2, 5, 2, 3, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	g, err := dag.BuildDirectConv(tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npebble games on %v (%d-vertex DAG):\n", tiny, g.NumVertices())
	for _, s := range []int{4, 8, 16, 64} {
		bel, err := pebble.Greedy(g.Graph, s, pebble.Belady)
		if err != nil {
			log.Fatal(err)
		}
		lru, err := pebble.Greedy(g.Graph, s, pebble.LRU)
		if err != nil {
			log.Fatal(err)
		}
		lb := bounds.DirectLowerBound(tiny, s)
		fmt.Printf("  S=%3d  Q(belady)=%5d  Q(lru)=%5d  bound=%7.1f\n", s, bel.IO(), lru.IO(), lb)
		if float64(bel.IO()) < lb {
			log.Fatalf("bound violated! Q=%d < %f", bel.IO(), lb)
		}
	}
	fmt.Println("\nevery played game respected the bound.")
}
