// The autotuning example reproduces the Figure 11 contest on AlexNet conv2:
// the paper's engine (learned cost model + parallel random walks on the
// optimality-condition-pruned domain) against the TVM-style searchers
// (simulated annealing, genetic, random) on the full domain, all measuring
// configurations on the same simulated V100.
//
// Run with: go run ./examples/autotuning
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/autotune"
)

func main() {
	// AlexNet conv2: 96 -> 256 channels, 27x27, 5x5 kernels, pad 2.
	layer, err := repro.NewShape(1, 96, 27, 256, 5, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	arch, err := repro.ArchByName("V100")
	if err != nil {
		log.Fatal(err)
	}
	const budget = 150

	pruned, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	full, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer: %v\n", layer)
	fmt.Printf("search space: %d configs full, %d pruned (%.0f%%)\n\n",
		full.Size(), pruned.Size(), 100*float64(pruned.Size())/float64(full.Size()))

	measure := autotune.DirectMeasurer(arch, layer)
	opts := autotune.DefaultOptions()
	opts.Budget = budget
	opts.Patience = 0

	type entry struct {
		name  string
		trace *autotune.Trace
	}
	var entries []entry
	run := func(name string, f func() (*autotune.Trace, error)) {
		tr, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		entries = append(entries, entry{name, tr})
	}
	run("ATE (pruned)", func() (*autotune.Trace, error) { return autotune.Tune(pruned, measure, opts) })
	run("SA (full)", func() (*autotune.Trace, error) { return autotune.SimulatedAnnealing(full, measure, opts) })
	run("GA (full)", func() (*autotune.Trace, error) { return autotune.GeneticAlgorithm(full, measure, opts) })
	run("random (full)", func() (*autotune.Trace, error) { return autotune.RandomSearch(full, measure, opts) })

	lib, err := repro.MeasureLibraryDirect(arch, layer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %12s %10s\n", "method", "best GFLOPS", "vs library", "found at")
	fmt.Printf("%-14s %12.0f %12s %10s\n", "library", lib.GFLOPS, "1.00x", "-")
	for _, e := range entries {
		fmt.Printf("%-14s %12.0f %11.2fx %10d\n",
			e.name, e.trace.BestM.GFLOPS, lib.Seconds/e.trace.BestM.Seconds, e.trace.ConvergedAt)
	}

	fmt.Println("\nbest-so-far GFLOPS by measurement count:")
	fmt.Printf("%8s", "after")
	for _, e := range entries {
		fmt.Printf(" %13s", e.name)
	}
	fmt.Println()
	for _, at := range []int{10, 25, 50, 100, budget} {
		fmt.Printf("%8d", at)
		for _, e := range entries {
			idx := at - 1
			if idx >= len(e.trace.Curve) {
				idx = len(e.trace.Curve) - 1
			}
			fmt.Printf(" %13.0f", e.trace.Curve[idx])
		}
		fmt.Println()
	}
	fmt.Printf("\nwinning configuration (ATE): %v\n", entries[0].trace.Best)
}
