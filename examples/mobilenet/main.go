// The mobilenet example extends the paper's end-to-end evaluation to a
// depthwise-separable network (MobileNet v1, one of the architectures the
// paper's introduction motivates). Grouped/depthwise layers are folded into
// the batch dimension — G groups of a small convolution launched together —
// which preserves I/O, flops and parallelism exactly, and the network-level
// tuner runs unchanged on the folded shapes, tuning layers concurrently
// against a shared cache.
//
// Run with: go run ./examples/mobilenet
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/models"
)

func main() {
	arch, err := repro.ArchByName("V100")
	if err != nil {
		log.Fatal(err)
	}
	model := models.MobileNetV1()
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on simulated %s (%.2f GFLOP per image)\n\n",
		model.Name, arch.Name, float64(model.TotalFLOPs())/1e9)

	layers := model.NetworkLayers()
	// Warm enables cross-layer transfer: MobileNet's stages repeat the same
	// geometry at shrinking resolution, exactly the case where later layers
	// profit from the rows and incumbents of earlier ones.
	verdicts, err := repro.TuneNetwork(arch, layers, repro.NewTuningCache(), repro.NetworkTuneOptions{
		Budget:       48,
		Seed:         1,
		LayerWorkers: 4,
		Warm:         true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var totalBase, totalTuned float64
	fmt.Printf("%-8s %7s %28s %12s %12s %9s\n", "layer", "groups", "effective shape", "library", "tuned", "speedup")
	for i, v := range verdicts {
		lib, err := repro.MeasureLibraryDirect(arch, v.Layer.Shape)
		if err != nil {
			log.Fatal(err)
		}
		base := lib.Seconds * float64(v.Layer.Repeat)
		best := v.M.Seconds * float64(v.Layer.Repeat)
		totalBase += base
		totalTuned += best
		fmt.Printf("%-8s %7d %28v %10.0fus %10.0fus %8.2fx\n",
			v.Layer.Name, model.Layers[i].Groups, v.Layer.Shape, base*1e6, best*1e6, base/best)
	}
	fmt.Printf("\nend-to-end convolution time: library %.2fms, tuned %.2fms -> %.2fx speedup\n",
		totalBase*1e3, totalTuned*1e3, totalBase/totalTuned)
}
