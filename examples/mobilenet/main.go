// The mobilenet example extends the paper's end-to-end evaluation to a
// depthwise-separable network (MobileNet v1, one of the architectures the
// paper's introduction motivates). Grouped/depthwise layers keep their
// group structure all the way into the tuner: the searching domain tiles
// the per-group channel extents (Cin/G, Cout/G) and the I/O lower bound
// shrinks accordingly, so a depthwise layer is tuned as the tiny
// convolution it is, not as a dense conv with G× the work. The per-layer
// kernel choice also weighs the Winograd, FFT and implicit-GEMM templates
// where they apply, keeping the fastest verdict per layer.
//
// Run with: go run ./examples/mobilenet
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/models"
)

func main() {
	arch, err := repro.ArchByName("V100")
	if err != nil {
		log.Fatal(err)
	}
	model := models.MobileNetV1()
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on simulated %s (%.2f GFLOP per image)\n\n",
		model.Name, arch.Name, float64(model.TotalFLOPs())/1e9)

	layers := model.NetworkLayers()
	// Warm enables cross-layer transfer: MobileNet's stages repeat the same
	// geometry at shrinking resolution, exactly the case where later layers
	// profit from the rows and incumbents of earlier ones. Kinds widens the
	// per-layer candidate set beyond the direct dataflow.
	verdicts, err := repro.TuneNetwork(arch, layers, repro.NewTuningCache(), repro.NetworkTuneOptions{
		Budget:       48,
		Seed:         1,
		LayerWorkers: 4,
		Warm:         true,
		Winograd:     true,
		Kinds:        []repro.Kind{repro.FFT, repro.ImplicitGEMM},
	})
	if err != nil {
		log.Fatal(err)
	}

	var totalBase, totalTuned float64
	fmt.Printf("%-8s %7s %9s %40s %12s %12s %9s\n", "layer", "groups", "kind", "shape", "library", "tuned", "speedup")
	for i, v := range verdicts {
		// The library baseline runs the batch-folded dense equivalent — the
		// best a tuner blind to group structure could target.
		lib, err := repro.MeasureLibraryDirect(arch, model.Layers[i].EffectiveShape())
		if err != nil {
			log.Fatal(err)
		}
		base := lib.Seconds * float64(v.Layer.Repeat)
		best := v.M.Seconds * float64(v.Layer.Repeat)
		totalBase += base
		totalTuned += best
		fmt.Printf("%-8s %7d %9s %40v %10.0fus %10.0fus %8.2fx\n",
			v.Layer.Name, model.Layers[i].Groups, v.Kind, v.Layer.Shape, base*1e6, best*1e6, base/best)
	}
	fmt.Printf("\nend-to-end convolution time: library %.2fms, tuned %.2fms -> %.2fx speedup\n",
		totalBase*1e3, totalTuned*1e3, totalBase/totalTuned)
}
