// The resnet example runs the Figure-12 style end-to-end comparison on
// ResNet-18: every convolution layer is tuned with the paper's engine (best
// of the direct and fused-Winograd dataflows) and the summed simulated
// inference time is compared with the library baseline (best of its
// algorithms per layer).
//
// Run with: go run ./examples/resnet
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/models"
)

func main() {
	arch, err := repro.ArchByName("V100")
	if err != nil {
		log.Fatal(err)
	}
	model := models.ResNet18()
	fmt.Printf("%s on simulated %s (%.1f GFLOP per image)\n\n",
		model.Name, arch.Name, float64(model.TotalFLOPs())/1e9)

	const budget = 64
	var totalBase, totalTuned float64
	fmt.Printf("%-14s %28s %12s %12s %9s %6s\n",
		"layer", "shape", "library", "tuned", "speedup", "algo")
	for _, layer := range model.Layers {
		lib, err := repro.MeasureLibraryDirect(arch, layer.Shape)
		if err != nil {
			log.Fatal(err)
		}
		base := lib.Seconds
		if layer.Shape.WinogradOK() && layer.Shape.Hker == 3 {
			if wu, err := repro.MeasureLibraryWinograd(arch, layer.Shape, 2); err == nil && wu.Seconds < base {
				base = wu.Seconds
			}
		}

		tuned, err := repro.TuneDirect(arch, layer.Shape, repro.TuneOptions{Budget: budget})
		if err != nil {
			log.Fatal(err)
		}
		best := tuned.BestM.Seconds
		algo := "direct"
		if layer.Shape.WinogradOK() && layer.Shape.Hker == 3 {
			if wt, err := repro.TuneWinograd(arch, layer.Shape, repro.TuneOptions{Budget: budget}); err == nil &&
				wt.BestM.Seconds < best {
				best = wt.BestM.Seconds
				algo = fmt.Sprintf("wino e=%d", wt.Best.WinogradE)
			}
		}
		totalBase += base * float64(layer.Repeat)
		totalTuned += best * float64(layer.Repeat)
		fmt.Printf("%-14s %28v %10.0fus %10.0fus %8.2fx %6s  x%d\n",
			layer.Name, layer.Shape, base*1e6, best*1e6, base/best, algo, layer.Repeat)
	}
	fmt.Printf("\nend-to-end convolution time: library %.2fms, tuned %.2fms -> %.2fx speedup\n",
		totalBase*1e3, totalTuned*1e3, totalBase/totalTuned)
}
