// The resnet example runs the Figure-12 style end-to-end comparison on
// ResNet-18 through the network-level tuning API: every convolution layer
// is tuned concurrently with the paper's engine (best of the direct and
// fused-Winograd dataflows), layers with identical shapes share one search
// through the tuning cache, and the summed simulated inference time is
// compared with the library baseline (best of its algorithms per layer).
//
// Run with: go run ./examples/resnet
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/models"
)

func main() {
	arch, err := repro.ArchByName("V100")
	if err != nil {
		log.Fatal(err)
	}
	model := models.ResNet18()
	fmt.Printf("%s on simulated %s (%.1f GFLOP per image)\n\n",
		model.Name, arch.Name, float64(model.TotalFLOPs())/1e9)

	layers := model.NetworkLayers()
	// Warm turns on cross-layer warm-starting: one representative search
	// per algorithm runs cold, every other layer starts from the transfer
	// pool's fitted cost model and incumbents — the ResNet stages repeat
	// the same 3×3 geometry, so most searches converge almost immediately.
	verdicts, err := repro.TuneNetwork(arch, layers, repro.NewTuningCache(), repro.NetworkTuneOptions{
		Budget:       64,
		Seed:         1,
		LayerWorkers: 4,
		Winograd:     true,
		Warm:         true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var totalBase, totalTuned float64
	fmt.Printf("%-14s %28s %12s %12s %9s %9s\n",
		"layer", "shape", "library", "tuned", "speedup", "algo")
	for _, v := range verdicts {
		lib, err := repro.MeasureLibraryDirect(arch, v.Layer.Shape)
		if err != nil {
			log.Fatal(err)
		}
		base := lib.Seconds
		if v.Layer.Shape.WinogradOK() && v.Layer.Shape.Hker == 3 {
			if wu, err := repro.MeasureLibraryWinograd(arch, v.Layer.Shape, 2); err == nil && wu.Seconds < base {
				base = wu.Seconds
			}
		}
		algo := v.Kind.String()
		if v.Shared {
			algo += "*"
		}
		totalBase += base * float64(v.Layer.Repeat)
		totalTuned += v.M.Seconds * float64(v.Layer.Repeat)
		fmt.Printf("%-14s %28v %10.0fus %10.0fus %8.2fx %9s  x%d\n",
			v.Layer.Name, v.Layer.Shape, base*1e6, v.M.Seconds*1e6, base/v.M.Seconds, algo, v.Layer.Repeat)
	}
	fmt.Printf("\n(* = verdict shared via the tuning cache, no extra search)\n")
	fmt.Printf("end-to-end convolution time: library %.2fms, tuned %.2fms -> %.2fx speedup\n",
		totalBase*1e3, totalTuned*1e3, totalBase/totalTuned)
}
