// The quickstart example shows the core workflow of the library on one
// ResNet-style layer: query the I/O lower bound, run the near I/O-optimal
// dataflow on a simulated GPU, verify the numerics against the reference
// convolution, and compare the measured data movement with the theory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 3×3 stride-1 layer: 64→64 channels on a 56×56 image.
	layer, err := repro.NewShape(1, 64, 56, 64, 3, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	arch, err := repro.ArchByName("1080Ti")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer: %v\narch:  %s\n\n", layer, arch.Name)

	// 1. Theory: how much off-chip traffic must ANY schedule move?
	cfg := repro.DefaultDirectConfig(arch, layer)
	bound := repro.LowerBoundDirect(layer, cfg.SharedPerBlock)
	model := repro.DataflowIODirect(layer, cfg.SharedPerBlock, 1)
	fmt.Printf("Theorem 4.12 lower bound (S=%d):   %.2e elements\n", cfg.SharedPerBlock, bound)
	fmt.Printf("Equation 21 dataflow I/O model:    %.2e elements\n", model)

	// 2. Practice: run the Section 5.2 dataflow with real data and count
	// every float that crosses the off-chip boundary.
	input, kernels := repro.RandomOperands(layer, 7)
	res, err := repro.RunDirect(arch, layer, cfg, input, kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured off-chip traffic:         %.2e elements\n", float64(res.Counts.GlobalIO()))
	fmt.Printf("simulated runtime:                 %.3gs (%.0f GFLOP/s)\n\n", res.Seconds, res.GFLOPS)

	// 3. Correctness: the dataflow result must match the plain convolution.
	diff, err := repro.Verify(layer, res, input, kernels, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified against reference (max abs diff %.2g)\n\n", diff)

	// 4. Comparison: the library-style im2col baseline on the same machine.
	lib, err := repro.MeasureLibraryDirect(arch, layer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library baseline:                  %.3gs, %.2e elements moved\n",
		lib.Seconds, float64(lib.Counts.GlobalIO()))
	fmt.Printf("dataflow speedup over library:     %.2fx (%.1fx less traffic)\n",
		lib.Seconds/res.Seconds,
		float64(lib.Counts.GlobalIO())/float64(res.Counts.GlobalIO()))

	// 5. Energy: the paper's motivation is that data movement dominates
	// energy; the dataflow shifts the budget from DRAM to arithmetic.
	ours := arch.Energy(res.Counts)
	theirs := arch.Energy(lib.Counts)
	fmt.Printf("\nenergy: dataflow %.1fuJ (%.0f%% DRAM), library %.1fuJ (%.0f%% DRAM)\n",
		ours.Total()*1e6, 100*ours.DRAMShare(), theirs.Total()*1e6, 100*theirs.DRAMShare())
}
