package repro

// This file is the wire format of the tuning service (cmd/tuned): the JSON
// network description a client POSTs to /v1/tune and the verdict list the
// server returns. It lives in the facade so client and server share one
// (de)serialization — the field names are part of the HTTP API and are
// deliberately decoupled from the internal structs, the same stability
// contract the cache file format keeps.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/autotune"
	"repro/internal/tensor"
)

// Wire-format hardening limits: the description decoder runs on untrusted
// input, so every dimension is bounded before it can reach the tuner.
const (
	// MaxDescriptionLayers caps the layers of one request.
	MaxDescriptionLayers = 512
	// MaxLayerDim caps every per-layer dimension (channels, spatial size,
	// kernel, stride, padding, batch, repeat).
	MaxLayerDim = 1 << 16
	// MaxRequestBudget caps the per-layer measurement budget a request may
	// ask for.
	MaxRequestBudget = 1 << 16
)

// LayerDescription is one convolution layer of a network description.
// Omitted fields default like NewShape's common case: batch 1, square
// image (win = hin), square kernel (wker = hker), stride 1, repeat 1.
type LayerDescription struct {
	Name   string `json:"name,omitempty"`
	Batch  int    `json:"batch,omitempty"`
	Cin    int    `json:"cin"`
	Hin    int    `json:"hin"`
	Win    int    `json:"win,omitempty"`
	Cout   int    `json:"cout"`
	Hker   int    `json:"hker"`
	Wker   int    `json:"wker,omitempty"`
	Stride int    `json:"stride,omitempty"`
	Pad    int    `json:"pad,omitempty"`
	// Groups is the channel group count of a grouped/depthwise convolution
	// (cin and cout must both divide by it). 0 or 1 means dense; old clients
	// that never send it keep their exact behavior.
	Groups int `json:"groups,omitempty"`
	Repeat int `json:"repeat,omitempty"`
}

// RequestOptions are the per-request tuning knobs a client may override;
// everything omitted uses the server's defaults.
type RequestOptions struct {
	// Budget is the per-layer measurement budget (0 = server default).
	Budget int `json:"budget,omitempty"`
	// Seed pins the engine's deterministic seed (0 = server default).
	Seed int64 `json:"seed,omitempty"`
	// Winograd overrides whether the fused Winograd dataflow is also tuned
	// where it applies (nil = server default).
	Winograd *bool `json:"winograd,omitempty"`
	// Kinds lists extra algorithm kinds the per-layer kernel choice may
	// consider where they apply ("winograd", "fft", "igemm"); the direct
	// dataflow is always tuned. Unknown names are rejected. Empty keeps the
	// server's default candidate set.
	Kinds []string `json:"kinds,omitempty"`
}

// NetworkDescription is a network tuning request: an architecture name, a
// layer inventory and optional tuning overrides.
type NetworkDescription struct {
	Arch    string             `json:"arch"`
	Name    string             `json:"name,omitempty"`
	Layers  []LayerDescription `json:"layers"`
	Options *RequestOptions    `json:"options,omitempty"`
}

// normalized fills the documented field defaults in.
func (d NetworkDescription) normalized() NetworkDescription {
	layers := make([]LayerDescription, len(d.Layers))
	for i, l := range d.Layers {
		if l.Batch == 0 {
			l.Batch = 1
		}
		if l.Win == 0 {
			l.Win = l.Hin
		}
		if l.Wker == 0 {
			l.Wker = l.Hker
		}
		if l.Stride == 0 {
			l.Stride = 1
		}
		if l.Repeat == 0 {
			l.Repeat = 1
		}
		if l.Name == "" {
			l.Name = fmt.Sprintf("layer%d", i)
		}
		layers[i] = l
	}
	d.Layers = layers
	return d
}

func (l LayerDescription) shape() Shape {
	return Shape{Batch: l.Batch, Cin: l.Cin, Hin: l.Hin, Win: l.Win,
		Cout: l.Cout, Hker: l.Hker, Wker: l.Wker, Strid: l.Stride, Pad: l.Pad,
		Groups: l.Groups}
}

// Validate checks the description against the shape validator and the wire
// limits. It assumes defaults are already filled (ParseNetworkDescription
// does both).
func (d NetworkDescription) Validate() error {
	if d.Arch == "" {
		return fmt.Errorf("repro: network description: missing arch")
	}
	if len(d.Layers) == 0 {
		return fmt.Errorf("repro: network description: no layers")
	}
	if len(d.Layers) > MaxDescriptionLayers {
		return fmt.Errorf("repro: network description: %d layers exceed the limit of %d", len(d.Layers), MaxDescriptionLayers)
	}
	for i, l := range d.Layers {
		for _, v := range [...]int{l.Batch, l.Cin, l.Hin, l.Win, l.Cout, l.Hker, l.Wker, l.Stride, l.Pad, l.Groups, l.Repeat} {
			if v < 0 || v > MaxLayerDim {
				return fmt.Errorf("repro: network description: layer %q (#%d): dimension %d outside [0, %d]", l.Name, i, v, MaxLayerDim)
			}
		}
		if err := l.shape().Validate(); err != nil {
			return fmt.Errorf("repro: network description: layer %q (#%d): %w", l.Name, i, err)
		}
	}
	if o := d.Options; o != nil {
		if o.Budget < 0 || o.Budget > MaxRequestBudget {
			return fmt.Errorf("repro: network description: budget %d outside [0, %d]", o.Budget, MaxRequestBudget)
		}
		if _, err := parseKinds(o.Kinds); err != nil {
			return fmt.Errorf("repro: network description: %w", err)
		}
	}
	return nil
}

// parseKinds validates a wire kind list against the engine's registry.
func parseKinds(names []string) ([]Kind, error) {
	if len(names) == 0 {
		return nil, nil
	}
	kinds := make([]Kind, len(names))
	for i, n := range names {
		k, err := autotune.ParseKind(n)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}
	return kinds, nil
}

// NetworkLayers converts a validated description into the network tuner's
// request type.
func (d NetworkDescription) NetworkLayers() []NetworkLayer {
	layers := make([]NetworkLayer, len(d.Layers))
	for i, l := range d.Layers {
		layers[i] = NetworkLayer{Name: l.Name, Shape: l.shape(), Repeat: l.Repeat}
	}
	return layers
}

// DescribeNetwork is the client-side inverse of NetworkLayers: it wraps a
// layer inventory as the wire format POSTed to the service.
func DescribeNetwork(archName string, layers []NetworkLayer) NetworkDescription {
	d := NetworkDescription{Arch: archName, Layers: make([]LayerDescription, len(layers))}
	for i, l := range layers {
		s := l.Shape
		d.Layers[i] = LayerDescription{Name: l.Name,
			Batch: s.Batch, Cin: s.Cin, Hin: s.Hin, Win: s.Win,
			Cout: s.Cout, Hker: s.Hker, Wker: s.Wker,
			Stride: s.Strid, Pad: s.Pad, Groups: s.Groups, Repeat: l.Repeat}
	}
	return d.normalized()
}

// ParseNetworkDescription decodes and validates a network description.
// Unknown fields, trailing data and out-of-range values are all rejected
// with an error; no input makes it panic (the decoder is fuzzed). The
// returned description has all defaults filled in.
func ParseNetworkDescription(data []byte) (NetworkDescription, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d NetworkDescription
	if err := dec.Decode(&d); err != nil {
		return NetworkDescription{}, fmt.Errorf("repro: network description: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return NetworkDescription{}, fmt.Errorf("repro: network description: trailing data after JSON document")
	}
	d = d.normalized()
	if err := d.Validate(); err != nil {
		return NetworkDescription{}, err
	}
	return d, nil
}

// MaxForwardAttempts caps the Attempt counter a forwarded request may
// carry — far above what any legal failover ladder produces (one hop per
// owner), so a forwarding loop between misconfigured replicas dies at the
// bound instead of circulating.
const MaxForwardAttempts = 8

// ForwardedTuneRequest is the replica-to-replica wire envelope: what a
// non-owner replica POSTs to the owning replica's /v1/cluster/tune when it
// proxies a client request. Origin names the replica that accepted the
// client connection (for metrics and loop diagnosis); Attempt counts the
// forwards this request has survived. The receiver always serves the inner
// description locally — it never re-forwards — so the envelope carries no
// routing state beyond those two fields.
type ForwardedTuneRequest struct {
	Origin  string             `json:"origin"`
	Attempt int                `json:"attempt,omitempty"`
	Network NetworkDescription `json:"network"`
}

// maxForwardOrigin bounds the advertised origin address length on the wire.
const maxForwardOrigin = 256

// Validate applies the same hardening to the envelope that the inner
// description already gets: bounded fields, nothing optional left unchecked.
func (f ForwardedTuneRequest) Validate() error {
	if f.Origin == "" {
		return fmt.Errorf("repro: forwarded request: missing origin")
	}
	if len(f.Origin) > maxForwardOrigin {
		return fmt.Errorf("repro: forwarded request: origin longer than %d bytes", maxForwardOrigin)
	}
	if f.Attempt < 0 || f.Attempt > MaxForwardAttempts {
		return fmt.Errorf("repro: forwarded request: attempt %d outside [0, %d]", f.Attempt, MaxForwardAttempts)
	}
	return f.Network.Validate()
}

// ParseForwardedTuneRequest decodes and validates a peer-forwarded tune
// request with the same hardening as ParseNetworkDescription: unknown
// fields, trailing data and out-of-range values are rejected, no input
// panics (the decoder is fuzzed), and the inner description comes back with
// defaults filled.
func ParseForwardedTuneRequest(data []byte) (ForwardedTuneRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f ForwardedTuneRequest
	if err := dec.Decode(&f); err != nil {
		return ForwardedTuneRequest{}, fmt.Errorf("repro: forwarded request: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return ForwardedTuneRequest{}, fmt.Errorf("repro: forwarded request: trailing data after JSON document")
	}
	f.Network = f.Network.normalized()
	if err := f.Validate(); err != nil {
		return ForwardedTuneRequest{}, err
	}
	return f, nil
}

// ConfigDescription is the wire form of a tuned configuration.
type ConfigDescription struct {
	TileX          int `json:"tile_x"`
	TileY          int `json:"tile_y"`
	TileZ          int `json:"tile_z"`
	ThreadsX       int `json:"threads_x"`
	ThreadsY       int `json:"threads_y"`
	ThreadsZ       int `json:"threads_z"`
	SharedPerBlock int `json:"shared_per_block"`
	Layout         int `json:"layout"`
	WinogradE      int `json:"winograd_e,omitempty"`
}

// DescribeConfig wraps a configuration for the wire.
func DescribeConfig(c Config) ConfigDescription {
	return ConfigDescription{TileX: c.TileX, TileY: c.TileY, TileZ: c.TileZ,
		ThreadsX: c.ThreadsX, ThreadsY: c.ThreadsY, ThreadsZ: c.ThreadsZ,
		SharedPerBlock: c.SharedPerBlock, Layout: int(c.Layout), WinogradE: c.WinogradE}
}

// Config converts the wire form back to the engine's configuration type.
func (d ConfigDescription) Config() Config {
	return Config{TileX: d.TileX, TileY: d.TileY, TileZ: d.TileZ,
		ThreadsX: d.ThreadsX, ThreadsY: d.ThreadsY, ThreadsZ: d.ThreadsZ,
		SharedPerBlock: d.SharedPerBlock, Layout: tensor.Layout(d.Layout),
		WinogradE: d.WinogradE}
}

// VerdictDescription is the wire form of one layer's tuning outcome.
type VerdictDescription struct {
	Layer   string            `json:"layer"`
	Repeat  int               `json:"repeat"`
	Kind    string            `json:"kind"` // "direct" | "winograd" | "fft" | "igemm"
	Config  ConfigDescription `json:"config"`
	Seconds float64           `json:"seconds"`
	GFLOPS  float64           `json:"gflops"`
	// Shared reports that the verdict came without running a fresh search
	// here: a cache hit, or deduplication onto a concurrent identical
	// search (possibly another client's).
	Shared bool `json:"shared"`
	// Partial reports that this layer's search was cut short by the
	// server's request timeout: the config is best-so-far, not converged.
	// The server persists the truncated search state, so re-POSTing the
	// same request continues (and eventually completes) the search.
	Partial bool `json:"partial,omitempty"`
	// Tier is the verdict's provenance: "measured" (a real search ran),
	// "analytic" (a measurement-free estimate from the I/O-lower-bound time
	// model, served when the server degrades under overload, a tripped
	// measurement breaker, or a deadline), or "refined" (a measured upgrade
	// of a previously analytic answer — re-POST served it from the cache
	// the background refinement queue filled).
	Tier string `json:"tier"`
}

// DescribeVerdicts wraps a verdict list for the wire.
func DescribeVerdicts(verdicts []LayerVerdict) []VerdictDescription {
	out := make([]VerdictDescription, len(verdicts))
	for i, v := range verdicts {
		r := v.Layer.Repeat
		if r < 1 {
			r = 1
		}
		out[i] = VerdictDescription{Layer: v.Layer.Name, Repeat: r,
			Kind: v.Kind.String(), Config: DescribeConfig(v.Config),
			Seconds: v.M.Seconds, GFLOPS: v.M.GFLOPS, Shared: v.Shared,
			Partial: v.Partial, Tier: v.Tier.String()}
	}
	return out
}

// TuneResponse is what POST /v1/tune returns: the per-layer verdicts and
// the repeat-weighted end-to-end network time.
type TuneResponse struct {
	Arch           string               `json:"arch"`
	Verdicts       []VerdictDescription `json:"verdicts"`
	NetworkSeconds float64              `json:"network_seconds"`
	// Partial is true when any verdict is partial — the request hit the
	// server's -request-timeout and the response is best-so-far. Re-POST
	// the identical request to continue the persisted searches.
	Partial bool `json:"partial,omitempty"`
	// Tier is "analytic" when every verdict is analytic — the whole
	// response is a measurement-free estimate (the server was overloaded or
	// its measurement breaker open). Re-POST later for measured verdicts;
	// the background refinement queue measures analytically-served requests
	// as budget frees up. Empty otherwise.
	Tier string `json:"tier,omitempty"`
}
