// Command autotune tunes one convolution layer with the paper's engine and
// prints the convergence trace and the winning configuration.
//
// Usage:
//
//	autotune -cin 96 -hw 27 -cout 256 -k 5 -pad 2 -arch V100 -budget 300
//	autotune -kind winograd -cin 256 -hw 13 -cout 384 -k 3 -pad 1
//	autotune -kind fft -cin 96 -hw 27 -cout 256 -k 5 -pad 2    # tiled frequency-domain template
//	autotune -kind igemm -cin 64 -hw 56 -cout 64 -k 3 -pad 1   # implicit-GEMM template
//	autotune -groups 32 -cin 32 -hw 112 -cout 32 -k 3 -pad 1   # depthwise layer, group-aware space
//	autotune -workers 8 -measure-latency 500us -cin 96 -hw 27 -cout 256 -k 5 -pad 2
//	autotune -no-prune -cin 96 -hw 27 -cout 256 -k 5 -pad 2   # disable bound-guided pruning
//	autotune -cache tune.json -budget 300 ...                 # persist verdict + engine state
//	autotune -cache tune.json -budget 600 -resume ...         # continue the cached search, nothing re-measured
//	autotune -analytic -cin 96 -hw 27 -cout 256 -k 5 -pad 2   # also print the measurement-free analytic ranking
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/autotune"
)

func main() {
	cin := flag.Int("cin", 96, "input channels")
	hw := flag.Int("hw", 27, "input height and width")
	cout := flag.Int("cout", 256, "output channels")
	k := flag.Int("k", 5, "kernel size")
	stride := flag.Int("stride", 1, "stride")
	pad := flag.Int("pad", 2, "padding")
	batch := flag.Int("batch", 1, "batch size")
	groups := flag.Int("groups", 1, "channel groups (cin and cout must divide; >1 = grouped/depthwise)")
	archName := flag.String("arch", "V100", "architecture name")
	kindName := flag.String("kind", "direct", "direct|winograd|fft|igemm")
	flag.StringVar(kindName, "algo", "direct", "alias for -kind (kept for old scripts)")
	budget := flag.Int("budget", 300, "measurement budget")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "parallel measurement workers (result is identical for any count)")
	latency := flag.Duration("measure-latency", 0, "emulated per-measurement hardware round-trip (e.g. 500us)")
	noPrune := flag.Bool("no-prune", false, "disable bound-guided pruning (measure every selected candidate)")
	minDelta := flag.Float64("min-delta", 0, "relative improvement below which patience is not reset (0 = any improvement resets)")
	emit := flag.Bool("emit", false, "print the kernel schedule of the winning configuration")
	analytic := flag.Bool("analytic", false, "also print the measurement-free analytic ranking (the tier the service degrades to) next to the measured verdict")
	cachePath := flag.String("cache", "", "tuning-cache JSON file (read if present, updated on exit)")
	resume := flag.Bool("resume", false, "with -cache: continue a cached search at the current -budget; the persisted history replays and no measurement repeats")
	flag.Parse()
	if *resume && *cachePath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -cache")
		os.Exit(2)
	}

	s, err := repro.NewGroupedShape(*batch, *cin, *hw, *cout, *k, *stride, *pad, *groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	arch, err := repro.ArchByName(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kind, err := repro.ParseKind(*kindName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cache := autotune.NewCache()
	if *cachePath != "" {
		if err := cache.LoadFile(*cachePath); err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "cache: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg, m, ok := cache.Get(arch.Name, kind, s); ok && !*resume {
		fmt.Printf("cache hit: %v\nsimulated: %.3gs (%.0f GFLOP/s)\n", cfg, m.Seconds, m.GFLOPS)
		if *emit {
			fmt.Println()
			fmt.Print(autotune.EmitSchedule(kind, s, cfg))
		}
		return
	}

	opts := repro.TuneOptions{Budget: *budget, Seed: *seed, Workers: *workers,
		MeasureLatency: *latency, NoPrune: *noPrune, MinDelta: *minDelta}
	var trace *repro.TuneTrace
	replayed := 0
	if *resume {
		// Continue the cached search: its persisted measurement history
		// replays into the engine and only the remaining budget measures.
		replayed = cache.StateSize(arch.Name, kind, s)
		if replayed == 0 {
			if cfg, m, ok := cache.Get(arch.Name, kind, s); ok {
				fmt.Printf("cache hit (entry carries no persisted search state; nothing to resume): %v\nsimulated: %.3gs (%.0f GFLOP/s)\n",
					cfg, m.Seconds, m.GFLOPS)
				if *emit {
					fmt.Println()
					fmt.Print(autotune.EmitSchedule(kind, s, cfg))
				}
				return
			}
		}
		trace, err = repro.ResumeKind(arch, s, kind, cache, opts)
	} else {
		trace, err = repro.TuneKind(arch, s, kind, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("layer:       %v\n", s)
	fmt.Printf("arch:        %s\n", arch.Name)
	fmt.Printf("kind:        %s\n", kind)
	fmt.Printf("measurements %d (%d candidates pruned by the I/O lower bound), best found at #%d\n",
		trace.Measurements, trace.Pruned, trace.ConvergedAt)
	if replayed > 0 {
		fmt.Printf("resumed:     %d measurements replayed from cache, %d fresh\n",
			replayed, trace.Measurements-replayed)
	}
	fmt.Printf("best config: %v\n", trace.Best)
	fmt.Printf("simulated:   %.3gs (%.0f GFLOP/s)\n", trace.BestM.Seconds, trace.BestM.GFLOPS)

	// Roofline diagnosis of the winner.
	res, err := repro.MeasureKind(arch, s, kind, trace.Best)
	if err == nil {
		fmt.Printf("diagnosis:   %v\n\n", arch.Explain(res.Counts, res.Launch))
	}

	lib, err := repro.MeasureLibraryDirect(arch, s)
	if err == nil {
		fmt.Printf("library direct baseline: %.3gs (%.0f GFLOP/s) -> speedup %.2fx\n",
			lib.Seconds, lib.GFLOPS, lib.Seconds/trace.BestM.Seconds)
	}

	if *analytic {
		printAnalytic(arch, s, kind, cache, trace)
	}

	fmt.Println("\nconvergence (best-so-far GFLOP/s):")
	step := len(trace.Curve) / 15
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(trace.Curve); i += step {
		fmt.Printf("  after %4d: %8.1f\n", i+1, trace.Curve[i])
	}

	if *emit {
		fmt.Println()
		fmt.Print(autotune.EmitSchedule(kind, s, trace.Best))
	}
	if *cachePath != "" {
		// PutTrace persists the engine state (measurement history + curve)
		// alongside the verdict, so a later -resume at a higher budget
		// continues this search instead of restarting it.
		cache.PutTrace(arch.Name, kind, s, trace)
		if err := cache.SaveFile(*cachePath); err != nil {
			fmt.Fprintf(os.Stderr, "cache save: %v\n", err)
			os.Exit(1)
		}
	}
}

// printAnalytic prints the instant-verdict tier's top-5 ranking alongside
// the measured verdict: per config the admissible floor, the calibrated
// estimate, and — since this process has a real measurer at hand — the
// actual measured time and the winner's regret against the tuned best.
// This is what a degraded tuned daemon would have answered for this layer.
func printAnalytic(arch repro.Arch, s repro.Shape, kind autotune.Kind, cache *autotune.Cache, trace *repro.TuneTrace) {
	e := 0
	if kind == autotune.Winograd {
		e = 2
	}
	sp, err := autotune.NewSpace(s, arch, kind, e, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analytic: %v\n", err)
		return
	}
	cal := autotune.CalibrateAnalytic(cache, arch)
	top, err := sp.AnalyticTop(5, cal)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analytic: %v\n", err)
		return
	}
	fmt.Printf("\nanalytic ranking (calibration %.2fx, %d configs ranked, no measurements):\n",
		cal, top[0].Ranked)
	mm := autotune.NewMemoMeasure(arch, s, kind)
	for i, v := range top {
		line := fmt.Sprintf("  #%d floor %.3gs estimate %.3gs", i+1, v.Floor, v.Seconds)
		if m, ok := mm.Measure(v.Config); ok {
			line += fmt.Sprintf(" measured %.3gs", m.Seconds)
		}
		fmt.Printf("%s  %v\n", line, v.Config)
	}
	if m, ok := mm.Measure(top[0].Config); ok && trace.BestM.Seconds > 0 {
		fmt.Printf("analytic winner vs tuned best: %.2fx regret (%.3gs vs %.3gs)\n",
			m.Seconds/trace.BestM.Seconds, m.Seconds, trace.BestM.Seconds)
	}
}
