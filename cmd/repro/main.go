// Command repro regenerates the tables and figures of the paper's
// evaluation section on the simulated-architecture substrate.
//
// Usage:
//
//	repro -exp all            # every experiment (minutes)
//	repro -exp fig9 -quick    # one experiment at reduced scale
//	repro -exp table2 -budget 500 -seed 7
//
// Experiments: fig9, fig10, fig11, table2, fig12, fig13, theory, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|fig10|fig11|table2|fig12|fig13|theory|all")
	quick := flag.Bool("quick", false, "reduced sweeps and budgets")
	budget := flag.Int("budget", 0, "override per-layer tuning budget (0 = default)")
	seed := flag.Int64("seed", 1, "tuning seed")
	csvDir := flag.String("csv", "", "also write each table as <dir>/<experiment>.csv")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Budget: *budget, Seed: *seed}
	runners := map[string]func(experiments.Options) (*report.Table, error){
		"fig9": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Fig9(o)
			return t, err
		},
		"fig10": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Fig10(o)
			return t, err
		},
		"fig11": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Fig11(o)
			return t, err
		},
		"table2": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Table2(o)
			return t, err
		},
		"fig12": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Fig12(o)
			return t, err
		},
		"fig13": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Fig13(o)
			return t, err
		},
		"theory": func(o experiments.Options) (*report.Table, error) {
			_, t, err := experiments.Theory(o)
			return t, err
		},
	}
	order := []string{"theory", "fig9", "fig10", "fig11", "table2", "fig12", "fig13"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or all\n", *exp, order)
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		table, err := runners[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if err := table.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, table); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s finished in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}

func writeCSV(dir, name string, table *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return table.WriteCSV(f)
}
