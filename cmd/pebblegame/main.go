// Command pebblegame plays the red–blue pebble game on the DAG of a small
// direct convolution and compares measured I/O against the paper's lower
// bound (Theorem 4.12). DAG sizes explode quickly, so shapes must be tiny;
// the defaults finish instantly.
//
// Usage:
//
//	pebblegame -cin 2 -hw 5 -cout 2 -k 3 -s 8,16,32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/pebble"
	"repro/internal/report"
)

func main() {
	cin := flag.Int("cin", 2, "input channels")
	hw := flag.Int("hw", 5, "input height and width")
	cout := flag.Int("cout", 2, "output channels")
	k := flag.Int("k", 3, "kernel size")
	stride := flag.Int("stride", 1, "stride")
	sizes := flag.String("s", "4,8,16,32", "comma-separated red pebble counts (the Theorem 4.12 bound is asymptotic: it vanishes when S is large relative to the DAG)")
	flag.Parse()

	s, err := repro.NewShape(1, *cin, *hw, *cout, *k, *stride, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	g, err := dag.BuildDirectConv(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("%v\nDAG: %d vertices (%d inputs, %d computed; Lemma 4.8 predicts %d)\n\n",
		s, g.NumVertices(), g.CountKind(dag.Input), g.ComputeCount(), dag.DirectConvComputeCount(s))

	t := report.New("pebble game I/O vs Theorem 4.12",
		"S", "Q belady", "Q lru", "Q optimal", "lower bound")
	for _, part := range strings.Split(*sizes, ",") {
		fastMem, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad size %q: %v\n", part, err)
			os.Exit(2)
		}
		bel, err := pebble.Greedy(g.Graph, fastMem, pebble.Belady)
		if err != nil {
			fmt.Fprintf(os.Stderr, "S=%d: %v\n", fastMem, err)
			os.Exit(1)
		}
		lru, err := pebble.Greedy(g.Graph, fastMem, pebble.LRU)
		if err != nil {
			fmt.Fprintf(os.Stderr, "S=%d: %v\n", fastMem, err)
			os.Exit(1)
		}
		opt := "-"
		if g.NumVertices() <= pebble.MaxOptimalVertices {
			q, err := pebble.Optimal(g.Graph, fastMem)
			if err == nil {
				opt = strconv.Itoa(q)
			}
		}
		t.AddRowF(fastMem, bel.IO(), lru.IO(), opt, bounds.DirectLowerBound(s, fastMem))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
