// Command iobound prints the paper's I/O lower bounds, the dataflow I/O
// models and the optimal tiles for one convolution layer over a sweep of
// fast-memory sizes, together with the actually-measured traffic of the
// simulated dataflow.
//
// Usage:
//
//	iobound -cin 256 -hw 56 -cout 128 -k 3 -stride 1 -arch 1080Ti
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/bounds"
	"repro/internal/report"
)

func main() {
	cin := flag.Int("cin", 256, "input channels")
	hw := flag.Int("hw", 56, "input height and width")
	cout := flag.Int("cout", 128, "output channels")
	k := flag.Int("k", 3, "kernel size")
	stride := flag.Int("stride", 1, "stride")
	pad := flag.Int("pad", 0, "padding")
	batch := flag.Int("batch", 1, "batch size")
	archName := flag.String("arch", "1080Ti", "architecture name")
	flag.Parse()

	s, err := repro.NewShape(*batch, *cin, *hw, *cout, *k, *stride, *pad)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	arch, err := repro.ArchByName(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("%v on %s (R = %.2f)\n\n", s, arch.Name, s.R())

	t := report.New("I/O lower bounds vs dataflow I/O (elements)",
		"S (floats)", "bound direct", "dataflow direct", "ratio",
		"bound wino e=2", "dataflow wino", "ratio")
	for _, fastMem := range []int{1024, 4096, 16384, 65536} {
		lb := repro.LowerBoundDirect(s, fastMem)
		df := repro.DataflowIODirect(s, fastMem, 1)
		row := []interface{}{fastMem, lb, df, df / lb}
		if s.WinogradOK() {
			wlb := repro.LowerBoundWinograd(s, 2, fastMem)
			wdf := repro.DataflowIOWinograd(s, 2, fastMem, 1)
			row = append(row, wlb, wdf, wdf/wlb)
		} else {
			row = append(row, "-", "-", "-")
		}
		t.AddRowF(row...)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := repro.DefaultDirectConfig(arch, s)
	res, err := repro.MeasureDirect(arch, s, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tile := bounds.Tile{X: cfg.TileX, Y: cfg.TileY, Z: cfg.TileZ}
	fmt.Printf("\ndefault dataflow config: %v\n", cfg)
	fmt.Printf("optimality gap |xy-Rz|/(xy+Rz): %.3f\n", tile.OptimalityGap(s.R()))
	fmt.Printf("measured off-chip traffic:      %d elements\n", res.Counts.GlobalIO())
	fmt.Printf("lower bound at S=Sb:            %.0f elements\n", repro.LowerBoundDirect(s, cfg.SharedPerBlock))
	fmt.Printf("simulated time on %s:       %.3gs (%.0f GFLOP/s)\n", arch.Name, res.Seconds, res.GFLOPS)
}
