package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/cluster"
)

// flagConfig is every numeric/duration flag the daemon takes, gathered for
// one startup validation pass. main fills it from the parsed flags;
// validate rejects configurations that cannot work with a single clear
// line, before any state file is touched or port bound.
type flagConfig struct {
	budget              int
	seed                int64
	workers             int
	layerWorkers        int
	refineWorkers       int
	maxInflight         int64
	cacheEntries        int
	cacheBytes          int64
	cacheTTL            time.Duration
	batchWindow         time.Duration
	requestTimeout      time.Duration
	snapshotInterval    time.Duration
	measureRetries      int
	retryBackoff        time.Duration
	retryBackoffMax     time.Duration
	noiseThreshold      float64
	noiseMedian         int
	chaosFailRate       float64
	chaosMaxConsecutive int
	breakerThreshold    float64
	breakerWindow       int
	breakerCooldown     time.Duration
	breakerProbes       int

	peers         string
	advertise     string
	replicas      int
	hedgeAfter    time.Duration
	probeInterval time.Duration
}

// validate checks every flag's domain and assembles the cluster
// configuration from -peers/-advertise/-replicas. The error reads as one
// line: "tuned: <what is wrong>".
func (f flagConfig) validate() (cluster.Config, error) {
	fail := func(format string, args ...any) (cluster.Config, error) {
		return cluster.Config{}, fmt.Errorf("tuned: "+format, args...)
	}
	if f.budget < 0 || f.budget > repro.MaxRequestBudget {
		return fail("-budget %d outside [0, %d]", f.budget, repro.MaxRequestBudget)
	}
	if f.maxInflight < 0 {
		return fail("-max-inflight %d is negative", f.maxInflight)
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"-workers", f.workers}, {"-layer-workers", f.layerWorkers},
		{"-refine-workers", f.refineWorkers}, {"-measure-retries", f.measureRetries},
		{"-noise-median", f.noiseMedian}, {"-cache-entries", f.cacheEntries},
		{"-chaos-max-consecutive", f.chaosMaxConsecutive}, {"-breaker-window", f.breakerWindow},
		{"-breaker-probes", f.breakerProbes},
	} {
		if c.v < 0 {
			return fail("%s %d is negative", c.name, c.v)
		}
	}
	if f.cacheBytes < 0 {
		return fail("-cache-bytes %d is negative", f.cacheBytes)
	}
	for _, c := range []struct {
		name string
		v    time.Duration
	}{
		{"-cache-ttl", f.cacheTTL}, {"-batch-window", f.batchWindow},
		{"-request-timeout", f.requestTimeout}, {"-snapshot-interval", f.snapshotInterval},
		{"-retry-backoff", f.retryBackoff}, {"-retry-backoff-max", f.retryBackoffMax},
		{"-breaker-cooldown", f.breakerCooldown}, {"-hedge-after", f.hedgeAfter},
		{"-probe-interval", f.probeInterval},
	} {
		if c.v < 0 {
			return fail("%s %v is negative", c.name, c.v)
		}
	}
	if f.noiseThreshold < 0 {
		return fail("-noise-threshold %g is negative", f.noiseThreshold)
	}
	if f.chaosFailRate < 0 || f.chaosFailRate >= 1 {
		return fail("-chaos-fail-rate %g outside [0, 1)", f.chaosFailRate)
	}
	if f.breakerThreshold < 0 || f.breakerThreshold > 1 {
		return fail("-breaker-threshold %g outside [0, 1]", f.breakerThreshold)
	}

	peers, err := cluster.ParsePeers(f.peers)
	if err != nil {
		return fail("-peers: %v", err)
	}
	if len(peers) == 0 {
		if f.advertise != "" {
			return fail("-advertise set without -peers")
		}
		if f.replicas != 0 {
			return fail("-replicas set without -peers")
		}
		return cluster.Config{}, nil
	}
	if f.advertise == "" {
		return fail("-peers requires -advertise (this replica's address in the list)")
	}
	ccfg := cluster.Config{
		Self: f.advertise, Peers: peers, Replicas: f.replicas,
		HedgeAfter: f.hedgeAfter, ProbeInterval: f.probeInterval,
	}
	if err := ccfg.Validate(); err != nil {
		return fail("%v", err)
	}
	return ccfg, nil
}
