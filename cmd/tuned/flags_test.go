package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	if _, err := (flagConfig{}).validate(); err != nil {
		t.Fatalf("zero flags rejected: %v", err)
	}
	ccfg, err := flagConfig{
		budget: 400, batchWindow: 20 * time.Millisecond, chaosFailRate: 0.1,
		breakerThreshold: 0.5,
		peers:            "http://127.0.0.1:9911,http://127.0.0.1:9912,http://127.0.0.1:9913",
		advertise:        "http://127.0.0.1:9911",
		replicas:         2, hedgeAfter: 50 * time.Millisecond,
	}.validate()
	if err != nil {
		t.Fatalf("full valid config rejected: %v", err)
	}
	if !ccfg.Enabled() || len(ccfg.Peers) != 3 || ccfg.Self != "http://127.0.0.1:9911" {
		t.Fatalf("cluster config not assembled: %+v", ccfg)
	}
}

func TestValidateFlagsRejections(t *testing.T) {
	peers := "http://127.0.0.1:9911,http://127.0.0.1:9912"
	cases := []struct {
		name    string
		f       flagConfig
		wantErr string
	}{
		{"negative budget", flagConfig{budget: -1}, "-budget"},
		{"oversized budget", flagConfig{budget: 1 << 20}, "-budget"},
		{"negative max-inflight", flagConfig{maxInflight: -1}, "-max-inflight"},
		{"negative workers", flagConfig{workers: -2}, "-workers"},
		{"negative refine workers", flagConfig{refineWorkers: -1}, "-refine-workers"},
		{"negative cache bytes", flagConfig{cacheBytes: -1}, "-cache-bytes"},
		{"negative batch window", flagConfig{batchWindow: -time.Second}, "-batch-window"},
		{"negative request timeout", flagConfig{requestTimeout: -1}, "-request-timeout"},
		{"negative snapshot interval", flagConfig{snapshotInterval: -1}, "-snapshot-interval"},
		{"negative breaker cooldown", flagConfig{breakerCooldown: -1}, "-breaker-cooldown"},
		{"chaos rate one", flagConfig{chaosFailRate: 1}, "-chaos-fail-rate"},
		{"chaos rate negative", flagConfig{chaosFailRate: -0.1}, "-chaos-fail-rate"},
		{"breaker threshold over one", flagConfig{breakerThreshold: 1.5}, "-breaker-threshold"},
		{"malformed peers", flagConfig{peers: "127.0.0.1:9911", advertise: "127.0.0.1:9911"}, "-peers"},
		{"empty peer entry", flagConfig{peers: "http://a:1,,http://b:2", advertise: "http://a:1"}, "-peers"},
		{"advertise missing", flagConfig{peers: peers}, "-advertise"},
		{"advertise not in peers", flagConfig{peers: peers, advertise: "http://10.0.0.9:1"}, "not in the peer list"},
		{"advertise without peers", flagConfig{advertise: "http://127.0.0.1:9911"}, "-advertise set without -peers"},
		{"replicas without peers", flagConfig{replicas: 2}, "-replicas set without -peers"},
		{"replicas over peers", flagConfig{peers: peers, advertise: "http://127.0.0.1:9911", replicas: 3}, "replication factor"},
		{"negative hedge", flagConfig{peers: peers, advertise: "http://127.0.0.1:9911", hedgeAfter: -1}, "-hedge-after"},
		{"negative probe interval", flagConfig{peers: peers, advertise: "http://127.0.0.1:9911", probeInterval: -1}, "-probe-interval"},
	}
	for _, c := range cases {
		_, err := c.f.validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "tuned: ") {
			t.Errorf("%s: error %q not prefixed for the one-line exit", c.name, err)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}
