// Command tuned is the tuning-as-a-service daemon: a long-running HTTP
// server wrapping the network auto-tuner.
//
//	tuned -addr :9911 -state tuned.cache -resume
//
// Clients POST a JSON network description to /v1/tune and get per-layer
// verdicts back; GET /v1/bench serves the benchmark trajectory and
// GET /healthz the cache and admission counters. Identical in-flight
// requests collapse into one search, concurrent distinct networks merge
// into one transfer pool, and SIGTERM flushes the cache (verdicts plus
// engine state) to -state so the next boot replays instead of re-tuning.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/autotune"
	"repro/internal/tuned"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9911", "listen address")
	state := flag.String("state", "", "cache state file: loaded on boot, flushed on shutdown")
	resume := flag.Bool("resume", false, "resume cached searches whose persisted budget is short of the requested one")
	batchWindow := flag.Duration("batch-window", 20*time.Millisecond, "admission window within which concurrent requests merge into one tuning batch")
	maxInflight := flag.Int64("max-inflight", 0, "max in-flight measurement budget before requests are shed with 429 (0 = unlimited)")
	cacheEntries := flag.Int("cache-entries", 0, "max cached search keys before LRU eviction (0 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0, "approximate max cache size in bytes before LRU eviction (0 = unlimited)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expire cache entries unused for this long (0 = never)")
	bench := flag.String("bench", "BENCH_autotune.json", "benchmark trajectory JSON served at /v1/bench")
	budget := flag.Int("budget", 0, "default per-layer measurement budget (0 = engine default)")
	seed := flag.Int64("seed", 0, "default engine seed")
	workers := flag.Int("workers", 0, "measurement workers per search (0 = GOMAXPROCS)")
	layerWorkers := flag.Int("layer-workers", 0, "concurrent per-layer searches per batch (0 = GOMAXPROCS)")
	winograd := flag.Bool("winograd", true, "also tune the fused Winograd dataflow where it applies")
	warm := flag.Bool("warm", true, "warm-start searches from tuned relatives (cross-request transfer)")
	flag.Parse()

	opts := autotune.DefaultOptions()
	if *budget > 0 {
		opts.Budget = *budget
	}
	opts.Seed = *seed
	opts.Workers = *workers

	cache := autotune.NewCache()
	if *cacheEntries > 0 || *cacheBytes > 0 || *cacheTTL > 0 {
		cache.SetEviction(autotune.EvictionPolicy{
			MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, TTL: *cacheTTL})
	}

	srv, err := tuned.New(tuned.Config{
		Cache: cache, Tune: opts,
		LayerWorkers: *layerWorkers, Winograd: *winograd, Warm: *warm, Resume: *resume,
		BatchWindow: *batchWindow, MaxInflight: *maxInflight,
		StatePath: *state, BenchPath: *bench,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("tuned: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "tuned: shutdown: %v\n", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tuned: state flush: %v\n", err)
		os.Exit(1)
	}
	if *state != "" {
		fmt.Printf("tuned: state flushed to %s\n", *state)
	}
}
