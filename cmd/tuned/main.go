// Command tuned is the tuning-as-a-service daemon: a long-running HTTP
// server wrapping the network auto-tuner.
//
//	tuned -addr :9911 -state tuned.cache -resume
//
// Clients POST a JSON network description to /v1/tune and get per-layer
// verdicts back; GET /v1/bench serves the benchmark trajectory,
// GET /healthz the cache and admission counters, and GET /metrics the
// same observability as a Prometheus text exposition. Identical in-flight
// requests collapse into one search, concurrent distinct networks merge
// into one transfer pool, and SIGTERM flushes the cache (verdicts plus
// engine state) to -state so the next boot replays instead of re-tuning.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/autotune"
	"repro/internal/chaos"
	"repro/internal/tuned"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9911", "listen address")
	state := flag.String("state", "", "cache state file: loaded on boot, flushed on shutdown")
	resume := flag.Bool("resume", false, "resume cached searches whose persisted budget is short of the requested one")
	batchWindow := flag.Duration("batch-window", 20*time.Millisecond, "admission window within which concurrent requests merge into one tuning batch")
	maxInflight := flag.Int64("max-inflight", 0, "max in-flight measurement budget before requests are shed with 429 (0 = unlimited)")
	cacheEntries := flag.Int("cache-entries", 0, "max cached search keys before LRU eviction (0 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0, "approximate max cache size in bytes before LRU eviction (0 = unlimited)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expire cache entries unused for this long (0 = never)")
	bench := flag.String("bench", "BENCH_autotune.json", "benchmark trajectory JSON served at /v1/bench")
	budget := flag.Int("budget", 0, "default per-layer measurement budget (0 = engine default)")
	seed := flag.Int64("seed", 0, "default engine seed")
	workers := flag.Int("workers", 0, "measurement workers per search (0 = GOMAXPROCS)")
	layerWorkers := flag.Int("layer-workers", 0, "concurrent per-layer searches per batch (0 = GOMAXPROCS)")
	winograd := flag.Bool("winograd", true, "also tune the fused Winograd dataflow where it applies")
	warm := flag.Bool("warm", true, "warm-start searches from tuned relatives (cross-request transfer)")
	requestTimeout := flag.Duration("request-timeout", 0, "deadline per tuning batch; past it, responses carry best-so-far verdicts marked partial (0 = none)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "flush -state in the background this often, not only at shutdown (0 = shutdown only)")
	measureRetries := flag.Int("measure-retries", 0, "measurement attempts per config before quarantine (0 or 1 = no retries)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base wait before a measurement retry; doubles per retry with seeded jitter")
	retryBackoffMax := flag.Duration("retry-backoff-max", 0, "cap on the exponential retry backoff (0 = uncapped)")
	noiseThreshold := flag.Float64("noise-threshold", 0, "re-measure readings within this relative fraction of the I/O-bound floor and take the median (0 = off)")
	noiseMedian := flag.Int("noise-median", 0, "readings gathered by the noise defense before taking the median (default 3)")
	chaosFailRate := flag.Float64("chaos-fail-rate", 0, "inject seeded transient measurement failures at this rate (testing only)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed of the fault-injection schedule")
	chaosMaxConsecutive := flag.Int("chaos-max-consecutive", 2, "cap on injected consecutive failures per config (keep below -measure-retries)")
	analyticOverflow := flag.Bool("analytic-overflow", false, "serve requests beyond -max-inflight from the instant analytic tier (200, tier \"analytic\") instead of shedding with 429")
	breakerThreshold := flag.Float64("breaker-threshold", 0, "windowed measurement failure rate that trips the circuit breaker into analytic-only service (0 = no breaker)")
	breakerWindow := flag.Int("breaker-window", 0, "sliding window of measurement outcomes the breaker rate is computed over (default 32)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before half-open probe measurements (default 5s)")
	breakerProbes := flag.Int("breaker-probes", 0, "measurements a half-open breaker admits; one success restores service (default 3)")
	refineWorkers := flag.Int("refine-workers", 0, "background workers measuring analytically-answered requests once budget frees up (default 1)")
	peers := flag.String("peers", "", "comma-separated replica addresses forming a cluster (all replicas run the identical list; empty = standalone)")
	advertise := flag.String("advertise", "", "this replica's address in -peers (required with -peers)")
	replicas := flag.Int("replicas", 0, "replication factor: owners per request key (default 2, capped at the peer count)")
	hedgeAfter := flag.Duration("hedge-after", 0, "wait on the primary owner before hedging a forwarded request to the secondary (default 100ms)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health-check cadence; backs off exponentially while a peer is down (default 1s)")
	flag.Parse()

	clusterCfg, err := flagConfig{
		budget: *budget, seed: *seed, workers: *workers, layerWorkers: *layerWorkers,
		refineWorkers: *refineWorkers, maxInflight: *maxInflight,
		cacheEntries: *cacheEntries, cacheBytes: *cacheBytes, cacheTTL: *cacheTTL,
		batchWindow: *batchWindow, requestTimeout: *requestTimeout,
		snapshotInterval: *snapshotInterval, measureRetries: *measureRetries,
		retryBackoff: *retryBackoff, retryBackoffMax: *retryBackoffMax,
		noiseThreshold: *noiseThreshold, noiseMedian: *noiseMedian,
		chaosFailRate: *chaosFailRate, chaosMaxConsecutive: *chaosMaxConsecutive,
		breakerThreshold: *breakerThreshold, breakerWindow: *breakerWindow,
		breakerCooldown: *breakerCooldown, breakerProbes: *breakerProbes,
		peers: *peers, advertise: *advertise, replicas: *replicas,
		hedgeAfter: *hedgeAfter, probeInterval: *probeInterval,
	}.validate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := autotune.DefaultOptions()
	if *budget > 0 {
		opts.Budget = *budget
	}
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Retry = autotune.RetryPolicy{
		MaxAttempts:    *measureRetries,
		BackoffBase:    *retryBackoff,
		BackoffMax:     *retryBackoffMax,
		NoiseThreshold: *noiseThreshold,
		MedianK:        *noiseMedian,
	}

	cache := autotune.NewCache()
	if *cacheEntries > 0 || *cacheBytes > 0 || *cacheTTL > 0 {
		cache.SetEviction(autotune.EvictionPolicy{
			MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, TTL: *cacheTTL})
	}

	srv, err := tuned.New(tuned.Config{
		Cache: cache, Tune: opts,
		LayerWorkers: *layerWorkers, Winograd: *winograd, Warm: *warm, Resume: *resume,
		BatchWindow: *batchWindow, MaxInflight: *maxInflight,
		StatePath: *state, SnapshotInterval: *snapshotInterval,
		RequestTimeout: *requestTimeout,
		Chaos: chaos.Config{Seed: *chaosSeed, FailRate: *chaosFailRate,
			MaxConsecutive: *chaosMaxConsecutive},
		BenchPath:        *bench,
		AnalyticOverflow: *analyticOverflow,
		Breaker: autotune.BreakerConfig{Threshold: *breakerThreshold,
			Window: *breakerWindow, Cooldown: *breakerCooldown, Probes: *breakerProbes},
		RefineWorkers: *refineWorkers,
		Cluster:       clusterCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// A tuning response can legitimately take minutes (the engine runs
	// inside the request), so WriteTimeout must outlast the batch: with a
	// request timeout it is that plus slack, otherwise generous. The read
	// side is tight — requests are small JSON — so a slow or stalled client
	// cannot hold a connection open indefinitely.
	writeTimeout := 10 * time.Minute
	if *requestTimeout > 0 {
		writeTimeout = *requestTimeout + time.Minute
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("tuned: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "tuned: shutdown: %v\n", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tuned: state flush: %v\n", err)
		os.Exit(1)
	}
	if *state != "" {
		fmt.Printf("tuned: state flushed to %s\n", *state)
	}
}
