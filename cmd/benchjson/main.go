// Command benchjson runs the measurement-hot-path benchmarks via
// `go test -bench` and re-emits the results as one JSON document, so CI can
// archive a BENCH_autotune.json per commit and the perf trajectory of the
// tuning engine is tracked across PRs.
//
// Usage:
//
//	go run ./cmd/benchjson [-o BENCH_autotune.json] [-bench regex] [-benchtime 1s]
//
// The benchmark bodies live in bench_test.go (and the package benchmarks
// under internal/...) — this wrapper only drives and parses them, so there
// is exactly one definition of each benchmark. Any benchmark failure makes
// the wrapper exit non-zero instead of archiving bogus numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

type row struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// defaultBench selects the hot-path benchmarks: the dry-measurement unit of
// work, the wet kernels, the conv-shaped GEMM, the network-level sweeps
// (cold, and warm-started via the cross-layer transfer pool), the
// resumed-search path, the allocation-free cache key, and the search-engine
// overhead pair (the bound-guided loop vs its pre-rework baseline, and the
// incremental vs from-scratch cost-model refit), and the measurement-free
// analytic verdict the daemon degrades to (scan = cold per-space enumeration,
// serve = the memoized steady state, which must stay well under 1ms/network).
const defaultBench = "BenchmarkMeasureDry|BenchmarkDirectTiledWet|BenchmarkWinogradFusedWet|BenchmarkTuneNetwork|BenchmarkTuneNetworkWarm|BenchmarkTuneNetworkMixedKinds|BenchmarkTuneResume|BenchmarkCacheKey|BenchmarkBlockedConvShape|BenchmarkTuneEngine|BenchmarkTrainGBTIncremental|BenchmarkAnalyticVerdict"

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkMeasureDry-8  63677128  31.86 ns/op  0 B/op  0 allocs/op
//	BenchmarkFig11-8       1  1.2e9 ns/op  812.5 ate-final-gflops  ...
func parseLine(line string) (row, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return row{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the trailing -GOMAXPROCS, keeping sub-benchmark names.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return row{}, false
	}
	r := row{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return row{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		case "MB/s":
			// not reported by this repo's benchmarks; ignore
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = val
		}
	}
	return r, true
}

func main() {
	outPath := flag.String("o", "BENCH_autotune.json", "output JSON path")
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run=NONE", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", "./...")
	out, err := cmd.CombinedOutput()
	os.Stderr.Write(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}

	var rows []row
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *outPath, len(rows))
}
