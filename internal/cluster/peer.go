package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the peer-to-peer HTTP client: forwards proxied tune requests,
// pushes replication envelopes, probes health. Pushes and probes retry
// transient failures with capped exponential backoff (the RetryPolicy
// shape from the measurement seam, on the network plane); forwards do not
// retry here — the routing layer owns the failover ladder across owners,
// and a blind same-peer retry would only double a dead peer's timeout.
type Client struct {
	http *http.Client
	// retries is extra attempts for Push/Probe (total attempts = retries+1).
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	probeTO     time.Duration
}

// ClientConfig sizes the client. Zero values take the defaults.
type ClientConfig struct {
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// Retries is how many times a failed Push or Probe attempt is retried
	// (default 1).
	Retries int
	// BackoffBase is the wait before the first retry, doubling per retry
	// (default 25ms) up to BackoffMax (default 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// NewClient builds a peer client. Forwarded tune requests can legitimately
// run for the length of an engine sweep, so the underlying http.Client has
// no global timeout; per-call contexts and the probe timeout bound
// everything that must stay short.
func NewClient(cfg ClientConfig) *Client {
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = time.Second
	}
	return &Client{
		http:        &http.Client{},
		retries:     cfg.Retries,
		backoffBase: cfg.BackoffBase,
		backoffMax:  cfg.BackoffMax,
		probeTO:     cfg.ProbeTimeout,
	}
}

// Forward proxies one tune request body to addr's cluster endpoint and
// returns the peer's status and response body verbatim. A transport error
// (peer unreachable, connection torn mid-response) returns err != nil; an
// HTTP error status is returned to the caller to interpret — the routing
// layer treats 5xx as "try the next owner" and passes everything else
// through to the client.
func (c *Client) Forward(ctx context.Context, addr string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/cluster/tune", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// Push delivers one replication envelope (the v2 cache entry envelope) to
// addr, retrying transient failures with capped exponential backoff. A 2xx
// means the peer validated and merged the entries.
func (c *Client) Push(ctx context.Context, addr string, envelope []byte) error {
	return c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/cluster/replicate", bytes.NewReader(envelope))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("cluster: replicate to %s: status %d", addr, resp.StatusCode)
		}
		return nil
	})
}

// Probe is one health check: GET /healthz answering 200 within the probe
// timeout means up.
func (c *Client) Probe(addr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: status %d", addr, resp.StatusCode)
	}
	return nil
}

// withRetry runs op up to retries+1 times with capped exponential backoff.
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	var err error
	delay := c.backoffBase
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || attempt >= c.retries {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(delay):
		}
		delay *= 2
		if delay > c.backoffMax {
			delay = c.backoffMax
		}
	}
}
