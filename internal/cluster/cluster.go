// Package cluster is the peer layer that turns N tuned replicas into one
// logically-shared tuning service. Each replica runs the same static
// configuration: the full peer list, its own advertise address, and a
// replication factor. A consistent-hash ring assigns every request key a
// primary owner and (replication factor - 1) secondary owners; a replica
// that does not own a key proxies the request to the primary and hedges to
// the secondary when the primary is slow, so clients may POST to any
// replica. Verdicts an owner computes are replicated to the key's other
// owners; writes destined for a peer that is down are queued as bounded
// hinted handoff and replayed when the membership probe loop sees the peer
// rejoin. The package holds the mechanism only — ring, membership,
// peer client, handoff queue — and no HTTP handlers; internal/tuned wires
// it into the daemon.
package cluster

import (
	"fmt"
	"net/url"
	"strings"
	"time"
)

// Config is one replica's static view of the cluster. The zero value means
// "not clustered": Enabled reports false and the daemon runs standalone,
// byte-for-byte as before.
type Config struct {
	// Self is this replica's advertise address (scheme://host:port), the
	// name peers know it by. It must appear in Peers.
	Self string
	// Peers is the full static replica list, self included. Every replica
	// must run the identical list (order-insensitive — the ring hashes
	// addresses, not positions).
	Peers []string
	// Replicas is the replication factor: how many owners the ring assigns
	// each key (default 2, capped at len(Peers)).
	Replicas int
	// HedgeAfter is how long a proxying replica waits on the primary owner
	// before launching a hedged duplicate at the secondary (default 100ms;
	// the first response wins and the loser is cancelled).
	HedgeAfter time.Duration
	// ProbeInterval is the peer health-check cadence (default 1s). After a
	// failed probe the interval backs off exponentially, capped at
	// ProbeBackoffMax — the RetryPolicy shape on the membership plane.
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the probe backoff (default 15s).
	ProbeBackoffMax time.Duration
	// HandoffMax bounds the hinted-handoff queue per down peer, in cache
	// entries (default 4096). Beyond it new writes for that peer are
	// dropped and counted — the peer catches up via read-repair when the
	// dropped keys are next requested.
	HandoffMax int
}

// Enabled reports whether this daemon is part of a cluster.
func (c Config) Enabled() bool { return len(c.Peers) > 0 }

// Others returns the peer list without self.
func (c Config) Others() []string {
	out := make([]string, 0, len(c.Peers))
	for _, p := range c.Peers {
		if p != c.Self {
			out = append(out, p)
		}
	}
	return out
}

// Validate rejects a cluster configuration that cannot work: a malformed
// peer address, an advertise address missing from the peer list, or a
// replication factor outside [1, len(Peers)]. A disabled (zero) config is
// always valid.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	seen := make(map[string]bool, len(c.Peers))
	for _, p := range c.Peers {
		if err := validatePeerAddr(p); err != nil {
			return err
		}
		if seen[p] {
			return fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
	}
	if c.Self == "" {
		return fmt.Errorf("cluster: -peers set without an advertise address for this replica")
	}
	if !seen[c.Self] {
		return fmt.Errorf("cluster: advertise address %q is not in the peer list", c.Self)
	}
	if c.Replicas < 0 || c.Replicas > len(c.Peers) {
		return fmt.Errorf("cluster: replication factor %d outside [1, %d peers]", c.Replicas, len(c.Peers))
	}
	if c.HedgeAfter < 0 {
		return fmt.Errorf("cluster: negative hedge-after %v", c.HedgeAfter)
	}
	if c.ProbeInterval < 0 || c.ProbeBackoffMax < 0 {
		return fmt.Errorf("cluster: negative probe timing")
	}
	return nil
}

// validatePeerAddr requires a usable absolute http(s) base URL.
func validatePeerAddr(addr string) error {
	u, err := url.Parse(addr)
	if err != nil {
		return fmt.Errorf("cluster: peer %q: %v", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("cluster: peer %q: scheme must be http or https", addr)
	}
	if u.Host == "" {
		return fmt.Errorf("cluster: peer %q: missing host", addr)
	}
	if u.Path != "" && u.Path != "/" {
		return fmt.Errorf("cluster: peer %q: must be a base URL without a path", addr)
	}
	return nil
}

// ParsePeers splits and validates a comma-separated -peers flag value.
func ParsePeers(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var peers []string
	for _, p := range strings.Split(csv, ",") {
		p = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p), "/"))
		if p == "" {
			return nil, fmt.Errorf("cluster: empty entry in peer list %q", csv)
		}
		if err := validatePeerAddr(p); err != nil {
			return nil, err
		}
		peers = append(peers, p)
	}
	return peers, nil
}

// normalized fills the documented defaults in.
func (c Config) Normalized() Config {
	if c.Replicas < 1 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Peers) {
		c.Replicas = len(c.Peers)
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 100 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeBackoffMax == 0 {
		c.ProbeBackoffMax = 15 * time.Second
	}
	if c.HandoffMax == 0 {
		c.HandoffMax = 4096
	}
	return c
}
