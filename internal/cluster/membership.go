package cluster

import (
	"sync"
	"time"
)

// Membership tracks which peers are reachable. Detection is two-plane:
// a background probe loop per peer (GET /healthz on the probe cadence,
// backing off exponentially — capped, the RetryPolicy shape — while a peer
// stays down) and passive marking by the request path (a failed forward or
// replication push calls MarkDown immediately, so routing reacts mid-sweep
// instead of waiting out a probe interval). A probe succeeding against a
// peer that was down flips it back up and fires OnRejoin — the hook the
// hinted-handoff drain hangs off.
type Membership struct {
	cfg      Config
	probe    func(addr string) error
	onRejoin func(addr string)

	mu    sync.Mutex
	peers map[string]*peerState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type peerState struct {
	up          bool
	consecFails int
	lastProbe   time.Time
	transitions int64 // up<->down flips since boot
}

// PeerHealth is one row of the peer table /healthz reports.
type PeerHealth struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// ConsecutiveFailures is the current failed-probe streak (0 when up).
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastProbeAgeSeconds is the age of the last probe attempt; -1 before
	// the first one.
	LastProbeAgeSeconds float64 `json:"last_probe_age_seconds"`
	// Transitions counts up<->down flips observed since boot.
	Transitions int64 `json:"transitions,omitempty"`
}

// NewMembership builds the tracker for cfg's peers (self excluded — a
// replica does not probe itself). probe performs one health check; onRejoin
// (optional) fires when a down peer answers a probe again. Peers start
// optimistically up: the first forward finds out the truth faster than the
// first probe tick would.
func NewMembership(cfg Config, probe func(addr string) error, onRejoin func(addr string)) *Membership {
	m := &Membership{cfg: cfg, probe: probe, onRejoin: onRejoin,
		peers: make(map[string]*peerState), stop: make(chan struct{})}
	for _, p := range cfg.Others() {
		m.peers[p] = &peerState{up: true}
	}
	return m
}

// Start launches one probe loop per peer.
func (m *Membership) Start() {
	for addr := range m.peers {
		m.wg.Add(1)
		go m.probeLoop(addr)
	}
}

// Stop terminates the probe loops and waits for them.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// probeLoop health-checks one peer forever: on the plain cadence while the
// peer is up, backing off (doubling per consecutive failure, capped at
// ProbeBackoffMax) while it is down — a dead peer is not hammered, a
// rejoining one is noticed within the cap.
func (m *Membership) probeLoop(addr string) {
	defer m.wg.Done()
	delay := m.cfg.ProbeInterval
	for {
		select {
		case <-m.stop:
			return
		case <-time.After(delay):
		}
		err := m.probe(addr)
		m.mu.Lock()
		st := m.peers[addr]
		st.lastProbe = time.Now()
		if err == nil {
			rejoined := !st.up
			if rejoined {
				st.transitions++
			}
			st.up = true
			st.consecFails = 0
			m.mu.Unlock()
			if rejoined && m.onRejoin != nil {
				m.onRejoin(addr)
			}
			delay = m.cfg.ProbeInterval
			continue
		}
		if st.up {
			st.transitions++
		}
		st.up = false
		st.consecFails++
		fails := st.consecFails
		m.mu.Unlock()
		delay = m.cfg.ProbeInterval
		for i := 1; i < fails; i++ {
			delay *= 2
			if delay >= m.cfg.ProbeBackoffMax {
				delay = m.cfg.ProbeBackoffMax
				break
			}
		}
	}
}

// Up reports whether addr is currently believed reachable. Unknown
// addresses (not peers) report false.
func (m *Membership) Up(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.peers[addr]
	return st != nil && st.up
}

// MarkDown is the passive detection hook: the request path calls it the
// moment a forward or push to addr fails, so the very next request routes
// around the peer instead of waiting for the probe loop.
func (m *Membership) MarkDown(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.peers[addr]
	if st == nil || !st.up {
		return
	}
	st.up = false
	st.consecFails++
	st.transitions++
}

// Snapshot returns the peer table in deterministic (config) order.
func (m *Membership) Snapshot() []PeerHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerHealth, 0, len(m.peers))
	for _, addr := range m.cfg.Others() {
		st := m.peers[addr]
		if st == nil {
			continue
		}
		age := -1.0
		if !st.lastProbe.IsZero() {
			age = time.Since(st.lastProbe).Seconds()
		}
		out = append(out, PeerHealth{Addr: addr, Up: st.up,
			ConsecutiveFailures: st.consecFails, LastProbeAgeSeconds: age,
			Transitions: st.transitions})
	}
	return out
}
