package cluster

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/autotune"
)

// testEntry builds a valid cache entry; cout varies the cache key, seconds
// distinguishes writes to the same key.
func testEntry(t *testing.T, cout int, seconds float64) autotune.CacheEntry {
	t.Helper()
	raw := fmt.Sprintf(`{"arch":"V100","kind":"direct",
		"shape":{"Batch":1,"Cin":16,"Hin":8,"Win":8,"Cout":%d,"Hker":3,"Wker":3,"Stride":1,"Pad":1},
		"config":{"TileX":16,"TileY":1,"TileZ":4,"ThreadsX":16,"ThreadsY":1,"ThreadsZ":4,"SharedPerBlock":4096},
		"seconds":%g,"gflops":4}`, cout, seconds)
	var e autotune.CacheEntry
	if err := json.Unmarshal([]byte(raw), &e); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Key(); err != nil {
		t.Fatalf("test entry invalid: %v", err)
	}
	return e
}

func TestHandoffDedupAndLatestWriteWins(t *testing.T) {
	h := NewHandoff(16)
	const peer = "http://127.0.0.1:9912"
	h.Queue(peer, []autotune.CacheEntry{testEntry(t, 8, 0.010)})
	h.Queue(peer, []autotune.CacheEntry{testEntry(t, 8, 0.003), testEntry(t, 32, 0.007)})
	if d := h.Depth(peer); d != 2 {
		t.Fatalf("depth %d after dedup, want 2", d)
	}
	got := h.Take(peer)
	if len(got) != 2 {
		t.Fatalf("took %d entries, want 2", len(got))
	}
	for _, e := range got {
		if e.Shape.Cout == 8 && e.Seconds != 0.003 {
			t.Fatalf("stale write survived: seconds %v, want 0.003", e.Seconds)
		}
	}
	if h.Take(peer) != nil {
		t.Fatal("second Take returned entries")
	}
}

func TestHandoffBoundDropsAndCounts(t *testing.T) {
	h := NewHandoff(2)
	const peer = "p"
	h.Queue(peer, []autotune.CacheEntry{
		testEntry(t, 8, 1), testEntry(t, 16, 1), testEntry(t, 32, 1),
	})
	if d := h.Depth(peer); d != 2 {
		t.Fatalf("depth %d, want bound 2", d)
	}
	// Updating a queued key costs no capacity even at the bound.
	h.Queue(peer, []autotune.CacheEntry{testEntry(t, 8, 2)})
	if d := h.Depth(peer); d != 2 {
		t.Fatalf("in-place update changed depth to %d", d)
	}
	// Invalid entries are dropped, not queued.
	h.Queue("other", []autotune.CacheEntry{{Arch: "V100", Kind: "no-such-kind"}})
	if d := h.Depth("other"); d != 0 {
		t.Fatalf("invalid entry queued (depth %d)", d)
	}
	queued, _, dropped := h.Stats()
	if queued != 3 || dropped != 2 {
		t.Fatalf("stats queued=%d dropped=%d, want 3 and 2", queued, dropped)
	}
}

// A key re-queued after Take (a fresher verdict during the failed replay)
// must win over the stale copy Requeue returns.
func TestHandoffRequeuePreservesFresherWrites(t *testing.T) {
	h := NewHandoff(16)
	const peer = "p"
	h.Queue(peer, []autotune.CacheEntry{testEntry(t, 8, 0.010), testEntry(t, 16, 0.020)})
	taken := h.Take(peer)
	h.Queue(peer, []autotune.CacheEntry{testEntry(t, 8, 0.001)}) // fresher, mid-replay
	h.Requeue(peer, taken)
	if d := h.Depth(peer); d != 2 {
		t.Fatalf("depth %d after requeue, want 2", d)
	}
	for _, e := range h.Take(peer) {
		if e.Shape.Cout == 8 && e.Seconds != 0.001 {
			t.Fatalf("requeue clobbered fresher write: seconds %v", e.Seconds)
		}
	}
}

func TestHandoffSnapshotRestoreRoundTrip(t *testing.T) {
	h := NewHandoff(16)
	h.Queue("a", []autotune.CacheEntry{testEntry(t, 8, 1), testEntry(t, 16, 1)})
	h.Queue("b", []autotune.CacheEntry{testEntry(t, 32, 1)})
	snap := h.Snapshot()
	if h.DepthAll() != 3 {
		t.Fatalf("snapshot drained the queue (depth %d)", h.DepthAll())
	}

	// The snapshot must survive the JSON round trip the daemon's persistence
	// applies to it.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string][]autotune.CacheEntry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	restored := NewHandoff(16)
	restored.Restore(back)
	if restored.DepthAll() != 3 || restored.Depth("a") != 2 || restored.Depth("b") != 1 {
		t.Fatalf("restored depths a=%d b=%d total=%d, want 2/1/3",
			restored.Depth("a"), restored.Depth("b"), restored.DepthAll())
	}
}
