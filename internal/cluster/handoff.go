package cluster

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/autotune"
)

// Handoff is the hinted-handoff queue: cache entries that should live on a
// peer that is currently unreachable, parked here until the peer rejoins.
// Entries dedup by cache key with latest-write-wins, so a key re-tuned ten
// times during an outage replays once, and replay is idempotent (the
// receiving side is a plain cache merge). The queue is bounded per peer;
// beyond the bound new writes are dropped and counted — the peer catches
// up on a dropped key the next time a client asks for it (the owner serves
// from its cache and replication runs again).
type Handoff struct {
	max int

	mu     sync.Mutex
	byPeer map[string]map[string]autotune.CacheEntry

	queued   atomic.Int64
	replayed atomic.Int64
	dropped  atomic.Int64
}

// NewHandoff builds a queue bounded at maxPerPeer entries per peer.
func NewHandoff(maxPerPeer int) *Handoff {
	return &Handoff{max: maxPerPeer, byPeer: make(map[string]map[string]autotune.CacheEntry)}
}

// Queue parks entries destined for peer. Entries that fail validation or
// overflow the per-peer bound are dropped (counted); updating a key already
// queued replaces it in place and costs no capacity.
func (h *Handoff) Queue(peer string, entries []autotune.CacheEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.byPeer[peer]
	if q == nil {
		q = make(map[string]autotune.CacheEntry)
		h.byPeer[peer] = q
	}
	for _, e := range entries {
		key, err := e.Key()
		if err != nil {
			h.dropped.Add(1)
			continue
		}
		if _, exists := q[key]; !exists && len(q) >= h.max {
			h.dropped.Add(1)
			continue
		}
		q[key] = e
		h.queued.Add(1)
	}
}

// Take removes and returns peer's whole backlog in deterministic
// (key-sorted) order; nil when empty. The caller replays it and Requeues
// on failure.
func (h *Handoff) Take(peer string) []autotune.CacheEntry {
	h.mu.Lock()
	q := h.byPeer[peer]
	delete(h.byPeer, peer)
	h.mu.Unlock()
	if len(q) == 0 {
		return nil
	}
	return sortedEntries(q)
}

// Requeue returns a failed replay to the queue. Keys queued again since the
// Take win over the stale replay copy.
func (h *Handoff) Requeue(peer string, entries []autotune.CacheEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.byPeer[peer]
	if q == nil {
		q = make(map[string]autotune.CacheEntry)
		h.byPeer[peer] = q
	}
	for _, e := range entries {
		key, err := e.Key()
		if err != nil {
			continue
		}
		if _, exists := q[key]; !exists {
			q[key] = e
		}
	}
}

// MarkReplayed books n entries as successfully delivered.
func (h *Handoff) MarkReplayed(n int) { h.replayed.Add(int64(n)) }

// Depth reports the entries parked for one peer.
func (h *Handoff) Depth(peer string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.byPeer[peer])
}

// DepthAll reports the total backlog over all peers.
func (h *Handoff) DepthAll() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, q := range h.byPeer {
		n += len(q)
	}
	return n
}

// Stats returns the lifetime counters: entries queued, entries replayed to
// rejoined peers, entries dropped (bound or validation).
func (h *Handoff) Stats() (queued, replayed, dropped int64) {
	return h.queued.Load(), h.replayed.Load(), h.dropped.Load()
}

// Snapshot returns the whole queue, peers sorted, entries key-sorted — the
// deterministic form the daemon persists alongside its cache snapshot so a
// crash does not lose hints.
func (h *Handoff) Snapshot() map[string][]autotune.CacheEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]autotune.CacheEntry, len(h.byPeer))
	for peer, q := range h.byPeer {
		if len(q) > 0 {
			out[peer] = sortedEntries(q)
		}
	}
	return out
}

// Restore merges a persisted snapshot back in (boot path). Entries that
// fail validation or overflow the bound are dropped, as in Queue.
func (h *Handoff) Restore(snap map[string][]autotune.CacheEntry) {
	for peer, entries := range snap {
		h.Queue(peer, entries)
	}
}

func sortedEntries(q map[string]autotune.CacheEntry) []autotune.CacheEntry {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]autotune.CacheEntry, len(keys))
	for i, k := range keys {
		out[i] = q[k]
	}
	return out
}
