package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func threePeers() []string {
	return []string{"http://127.0.0.1:9911", "http://127.0.0.1:9912", "http://127.0.0.1:9913"}
}

// Every replica must compute identical ownership from the shared static
// peer list, regardless of list order — the ring is the cluster's only
// coordination mechanism.
func TestRingAgreementIsOrderInsensitive(t *testing.T) {
	peers := threePeers()
	shuffled := []string{peers[2], peers[0], peers[1]}
	a, b := NewRing(peers), NewRing(shuffled)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("V100|64|7|true|req-%d", i)
		if got, want := b.Owners(key, 2), a.Owners(key, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: ring built from shuffled peers owns %v, want %v", key, got, want)
		}
	}
}

// Owners returns n distinct peers, primary first, stable across calls.
func TestRingOwners(t *testing.T) {
	r := NewRing(threePeers())
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("key %q: %d owners, want 2", key, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %q: duplicate owner %q", key, owners[0])
		}
		if owners[0] != r.Primary(key) {
			t.Fatalf("key %q: Primary %q != Owners[0] %q", key, r.Primary(key), owners[0])
		}
		if again := r.Owners(key, 2); !reflect.DeepEqual(again, owners) {
			t.Fatalf("key %q: ownership unstable: %v then %v", key, owners, again)
		}
	}
	// n capped at the peer count; zero peers/zero n degenerate cleanly.
	if owners := r.Owners("k", 99); len(owners) != 3 {
		t.Fatalf("over-asked owners = %v, want all 3 peers", owners)
	}
	if owners := r.Owners("k", 0); owners != nil {
		t.Fatalf("0 owners = %v, want nil", owners)
	}
}

// The vnode count must spread keys across a small cluster without any peer
// starving: over many keys, every peer owns a reasonable share both as
// primary and as any-owner.
func TestRingBalance(t *testing.T) {
	peers := threePeers()
	r := NewRing(peers)
	primary := make(map[string]int)
	const keys = 3000
	for i := 0; i < keys; i++ {
		primary[r.Primary(fmt.Sprintf("V100|16|3|false|net-%d|shape-%d", i, i*31))]++
	}
	for _, p := range peers {
		share := float64(primary[p]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("peer %s primary share %.2f outside [0.15, 0.55]", p, share)
		}
	}
}

// Removing one peer must only move the keys that peer owned: consistent
// hashing's point.
func TestRingStabilityUnderPeerLoss(t *testing.T) {
	peers := threePeers()
	full := NewRing(peers)
	reduced := NewRing(peers[:2])
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Primary(key), reduced.Primary(key)
		if before == peers[2] {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved > 0 {
		t.Errorf("%d keys not owned by the removed peer still moved; consistent hashing must keep them", moved)
	}
}

func TestConfigValidate(t *testing.T) {
	peers := threePeers()
	valid := Config{Self: peers[0], Peers: peers, Replicas: 2}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"self not in peers", Config{Self: "http://127.0.0.1:1", Peers: peers}},
		{"no self", Config{Peers: peers}},
		{"malformed peer", Config{Self: peers[0], Peers: []string{peers[0], "127.0.0.1:9912"}}},
		{"peer with path", Config{Self: peers[0], Peers: []string{peers[0], "http://h:1/x"}}},
		{"duplicate peer", Config{Self: peers[0], Peers: []string{peers[0], peers[0]}}},
		{"replicas over peers", Config{Self: peers[0], Peers: peers, Replicas: 4}},
		{"negative hedge", Config{Self: peers[0], Peers: peers, HedgeAfter: -1}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" http://a:1, http://b:2/ ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if !reflect.DeepEqual(peers, want) {
		t.Fatalf("parsed %v, want %v", peers, want)
	}
	if p, err := ParsePeers(""); err != nil || p != nil {
		t.Fatalf("empty list: %v, %v", p, err)
	}
	for _, bad := range []string{"http://a:1,,http://b:2", "ftp://a:1", "http://a:1,b:2", "http://"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// Normalized fills defaults without disturbing explicit settings.
func TestConfigNormalized(t *testing.T) {
	c := Config{Self: "http://a:1", Peers: threePeers()}.Normalized()
	if c.Replicas != 2 || c.HedgeAfter == 0 || c.ProbeInterval == 0 || c.HandoffMax == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	two := Config{Peers: []string{"http://a:1", "http://b:2"}, Replicas: 5}.Normalized()
	if two.Replicas != 2 {
		t.Fatalf("replicas not capped at peer count: %d", two.Replicas)
	}
}
