package cluster

import (
	"sort"
	"strconv"
)

// Ring is the consistent-hash ring assigning request keys to replicas.
// Every replica builds it from the same static peer list, so ownership is
// agreed without any coordination: Owners(key) returns the same ordered
// list on every node. Each peer is hashed onto the ring at ringVnodes
// virtual points, which evens the key space out across a handful of real
// nodes; ownership of a key is the first n distinct peers walking clockwise
// from the key's hash — position one is the primary owner, the rest are the
// replication targets and the failover ladder, in order.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  int
}

type ringPoint struct {
	hash uint64
	peer string
}

// ringVnodes is the virtual points per peer. 128 keeps the expected load
// imbalance across a small static cluster within a few percent.
const ringVnodes = 128

// NewRing builds the ring over the full peer list (self included).
func NewRing(peers []string) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(peers)*ringVnodes), peers: len(peers)}
	var buf []byte
	for _, p := range peers {
		for v := 0; v < ringVnodes; v++ {
			buf = append(buf[:0], p...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: fnv64(buf), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by address so
		// every replica still agrees on the walk order.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Owners returns the n distinct peers owning key, primary first. n is
// capped at the peer count.
func (r *Ring) Owners(key string, n int) []string {
	if n > r.peers {
		n = r.peers
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := fnv64([]byte(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.peer] {
			seen[p.peer] = true
			owners = append(owners, p.peer)
		}
	}
	return owners
}

// Primary is Owners' first entry.
func (r *Ring) Primary(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// fnv64 is FNV-1a over b — the same deterministic hash family the cache
// shards and the chaos schedule use, needing no seed agreement between
// replicas — run through a 64-bit finalizer. Raw FNV-1a mixes the high bits
// poorly on near-identical inputs (peer vnode labels differ in a few trailing
// bytes), which skews ring placement; the finalizer's avalanche restores the
// uniform spread the vnode count is sized for.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
