package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func membershipConfig() Config {
	return Config{
		Self:            "http://127.0.0.1:9911",
		Peers:           threePeers(),
		ProbeInterval:   5 * time.Millisecond,
		ProbeBackoffMax: 20 * time.Millisecond,
	}.Normalized()
}

// A peer whose probes fail goes down; when probes succeed again it comes
// back up and OnRejoin fires exactly once per rejoin.
func TestMembershipDetectsDownAndRejoin(t *testing.T) {
	cfg := membershipConfig()
	peerB := cfg.Peers[1]

	var dead sync.Map // addr -> bool
	dead.Store(peerB, true)
	var rejoins atomic.Int64
	m := NewMembership(cfg,
		func(addr string) error {
			if v, ok := dead.Load(addr); ok && v.(bool) {
				return errors.New("unreachable")
			}
			return nil
		},
		func(addr string) {
			if addr != peerB {
				t.Errorf("rejoin fired for %s, want %s", addr, peerB)
			}
			rejoins.Add(1)
		})
	m.Start()
	defer m.Stop()

	waitFor(t, "peer B marked down", func() bool { return !m.Up(peerB) })
	if !m.Up(cfg.Peers[2]) {
		t.Fatal("healthy peer C marked down")
	}

	dead.Store(peerB, false)
	waitFor(t, "peer B rejoined", func() bool { return m.Up(peerB) && rejoins.Load() == 1 })

	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d peers, want 2 (self excluded)", len(snap))
	}
	for _, p := range snap {
		if !p.Up {
			t.Errorf("peer %s down in snapshot after recovery", p.Addr)
		}
	}
}

// MarkDown is the passive path: it flips state immediately, without waiting
// for a probe, and the probe loop repairs it.
func TestMembershipMarkDown(t *testing.T) {
	cfg := membershipConfig()
	peerC := cfg.Peers[2]
	var rejoins atomic.Int64
	m := NewMembership(cfg, func(string) error { return nil }, func(string) { rejoins.Add(1) })
	if !m.Up(peerC) {
		t.Fatal("peers must start optimistically up")
	}
	m.MarkDown(peerC)
	if m.Up(peerC) {
		t.Fatal("MarkDown did not take")
	}
	m.MarkDown(peerC) // idempotent: no double transition
	m.Start()
	defer m.Stop()
	waitFor(t, "probe repaired the passive mark", func() bool { return m.Up(peerC) && rejoins.Load() == 1 })
	// Unknown addresses are never up.
	if m.Up("http://nobody:1") {
		t.Fatal("unknown address reported up")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
