// Package pebble implements the Hong–Kung red–blue pebble game of Section
// 2.1: a rule-checked move executor, greedy schedulers that produce legal
// complete calculations for arbitrary DAGs, and an exact minimum-I/O solver
// for tiny DAGs. Together with package bounds it lets the paper's lower
// bound theorems be validated against actually-played games.
package pebble

import (
	"fmt"

	"repro/internal/dag"
)

// Op is a pebble-game move type.
type Op uint8

const (
	// Load places a red pebble on a vertex holding a blue pebble (I/O).
	Load Op = iota
	// Store places a blue pebble on a vertex holding a red pebble (I/O).
	Store
	// Compute places a red pebble on a vertex whose immediate predecessors
	// all hold red pebbles.
	Compute
	// FreeRed removes a red pebble.
	FreeRed
	// FreeBlue removes a blue pebble.
	FreeBlue
)

func (o Op) String() string {
	switch o {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	case FreeRed:
		return "free-red"
	case FreeBlue:
		return "free-blue"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Move is one step of a pebble game.
type Move struct {
	Op Op
	V  int
}

// Game tracks the state of a red–blue pebble game played on a DAG with at
// most S red pebbles. The zero value is not usable; call NewGame.
type Game struct {
	g *dag.Graph
	s int

	red      []bool
	blue     []bool
	redCount int

	loads, stores int
}

// NewGame starts a game on g with S red pebbles. Every input vertex begins
// with a blue pebble, per the model.
func NewGame(g *dag.Graph, s int) (*Game, error) {
	if s < 1 {
		return nil, fmt.Errorf("pebble: S=%d < 1", s)
	}
	if need := g.MaxInDegree() + 1; s < need {
		return nil, fmt.Errorf("pebble: S=%d too small; DAG needs at least %d red pebbles", s, need)
	}
	game := &Game{
		g:    g,
		s:    s,
		red:  make([]bool, g.NumVertices()),
		blue: make([]bool, g.NumVertices()),
	}
	for _, v := range g.Vertices(dag.Input) {
		game.blue[v] = true
	}
	return game, nil
}

// S returns the red-pebble budget.
func (gm *Game) S() int { return gm.s }

// IO returns the number of I/O moves played so far: Q = loads + stores.
func (gm *Game) IO() int { return gm.loads + gm.stores }

// Loads returns the number of Load moves played.
func (gm *Game) Loads() int { return gm.loads }

// Stores returns the number of Store moves played.
func (gm *Game) Stores() int { return gm.stores }

// RedCount returns the number of red pebbles currently placed.
func (gm *Game) RedCount() int { return gm.redCount }

// HasRed reports whether v currently holds a red pebble.
func (gm *Game) HasRed(v int) bool { return gm.red[v] }

// HasBlue reports whether v currently holds a blue pebble.
func (gm *Game) HasBlue(v int) bool { return gm.blue[v] }

// Play applies one move, enforcing the four rules of the game. An illegal
// move leaves the state unchanged and returns an error.
func (gm *Game) Play(m Move) error {
	v := m.V
	if v < 0 || v >= gm.g.NumVertices() {
		return fmt.Errorf("pebble: vertex %d out of range", v)
	}
	switch m.Op {
	case Load:
		if !gm.blue[v] {
			return fmt.Errorf("pebble: load %d without blue pebble", v)
		}
		if gm.red[v] {
			return fmt.Errorf("pebble: load %d already red", v)
		}
		if gm.redCount >= gm.s {
			return fmt.Errorf("pebble: load %d exceeds %d red pebbles", v, gm.s)
		}
		gm.red[v] = true
		gm.redCount++
		gm.loads++
	case Store:
		if !gm.red[v] {
			return fmt.Errorf("pebble: store %d without red pebble", v)
		}
		if gm.blue[v] {
			return fmt.Errorf("pebble: store %d already blue", v)
		}
		gm.blue[v] = true
		gm.stores++
	case Compute:
		if gm.g.Kind(v) == dag.Input {
			return fmt.Errorf("pebble: compute on input vertex %d", v)
		}
		if gm.red[v] {
			return fmt.Errorf("pebble: compute %d already red", v)
		}
		for _, p := range gm.g.Preds(v) {
			if !gm.red[p] {
				return fmt.Errorf("pebble: compute %d with unpebbled predecessor %d", v, p)
			}
		}
		if gm.redCount >= gm.s {
			return fmt.Errorf("pebble: compute %d exceeds %d red pebbles", v, gm.s)
		}
		gm.red[v] = true
		gm.redCount++
	case FreeRed:
		if !gm.red[v] {
			return fmt.Errorf("pebble: free-red %d without red pebble", v)
		}
		gm.red[v] = false
		gm.redCount--
	case FreeBlue:
		if !gm.blue[v] {
			return fmt.Errorf("pebble: free-blue %d without blue pebble", v)
		}
		gm.blue[v] = false
	default:
		return fmt.Errorf("pebble: unknown op %v", m.Op)
	}
	return nil
}

// Run plays a whole move sequence, stopping at the first illegal move.
func (gm *Game) Run(moves []Move) error {
	for i, m := range moves {
		if err := gm.Play(m); err != nil {
			return fmt.Errorf("move %d (%v %d): %w", i, m.Op, m.V, err)
		}
	}
	return nil
}

// Complete reports whether the calculation is finished: every output vertex
// holds a blue pebble.
func (gm *Game) Complete() bool {
	for _, v := range gm.g.Vertices(dag.Output) {
		if !gm.blue[v] {
			return false
		}
	}
	return true
}
