package pebble

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// This file implements the S-partition machinery of Section 2.1: verifying
// that a vertex partition satisfies the four S-partition properties, finding
// dominator and minimum sets, and computing the H(S) estimate of Equation 2
// from a concrete partition. Together with Theorem 2.1 (Q ≥ S·(P(2S)−1))
// it lets the lower-bound pipeline be exercised end-to-end on real DAGs.

// Partition assigns every vertex of a DAG to one of h classes, 0..h−1.
// Input vertices are conventionally assigned to class −1 (they are not part
// of the computation partition).
type Partition struct {
	Class []int
	H     int
}

// NewPartition builds an empty partition (all classes −1) for g.
func NewPartition(g *dag.Graph) *Partition {
	p := &Partition{Class: make([]int, g.NumVertices())}
	for i := range p.Class {
		p.Class[i] = -1
	}
	return p
}

// classMembers returns the vertex lists per class.
func (p *Partition) classMembers() [][]int {
	m := make([][]int, p.H)
	for v, c := range p.Class {
		if c >= 0 {
			if c >= p.H {
				return nil
			}
			m[c] = append(m[c], v)
		}
	}
	return m
}

// MinimumSet returns the minimum set of a vertex class per Property 3: the
// members with no successor inside the same class.
func MinimumSet(g *dag.Graph, class []int, c int) []int {
	var out []int
	for v, cv := range class {
		if cv != c {
			continue
		}
		hasInternalSucc := false
		for _, s := range g.Succs(v) {
			if class[s] == c {
				hasInternalSucc = true
				break
			}
		}
		if !hasInternalSucc {
			out = append(out, v)
		}
	}
	return out
}

// DominatorSet returns a dominator set for the class per Property 2: a set
// of vertices such that every path from an input of the DAG to a class
// member passes through it. The construction used here is the standard one:
// the class's external inputs (predecessors outside the class) — every path
// into the class must cross one.
func DominatorSet(g *dag.Graph, class []int, c int) []int {
	seen := make(map[int]bool)
	var out []int
	for v, cv := range class {
		if cv != c {
			continue
		}
		for _, pr := range g.Preds(v) {
			p := int(pr)
			if class[p] != c && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// Verify checks the four S-partition properties (Section 2.1) for the
// partition with parameter s. Inputs must be unassigned (class −1); every
// non-input must belong to exactly one class; dominator and minimum sets
// must have at most s vertices; and the class dependency relation must be
// acyclic.
func (p *Partition) Verify(g *dag.Graph, s int) error {
	if len(p.Class) != g.NumVertices() {
		return fmt.Errorf("pebble: partition covers %d of %d vertices", len(p.Class), g.NumVertices())
	}
	// Property 1: disjoint classes covering V (non-inputs assigned,
	// inputs not).
	for v, c := range p.Class {
		isInput := g.Kind(v) == dag.Input
		switch {
		case isInput && c != -1:
			return fmt.Errorf("pebble: input vertex %d assigned to class %d", v, c)
		case !isInput && (c < 0 || c >= p.H):
			return fmt.Errorf("pebble: vertex %d has invalid class %d (h=%d)", v, c, p.H)
		}
	}
	// Properties 2 and 3: dominator and minimum sets of size at most S.
	for c := 0; c < p.H; c++ {
		if d := DominatorSet(g, p.Class, c); len(d) > s {
			return fmt.Errorf("pebble: class %d dominator set has %d > %d vertices", c, len(d), s)
		}
		if m := MinimumSet(g, p.Class, c); len(m) > s {
			return fmt.Errorf("pebble: class %d minimum set has %d > %d vertices", c, len(m), s)
		}
	}
	// Property 4: no cyclic dependence among classes.
	adj := make(map[int]map[int]bool)
	for v, cv := range p.Class {
		if cv < 0 {
			continue
		}
		for _, pr := range g.Preds(v) {
			cp := p.Class[pr]
			if cp >= 0 && cp != cv {
				if adj[cp] == nil {
					adj[cp] = make(map[int]bool)
				}
				adj[cp][cv] = true
			}
		}
	}
	if cyclic(adj, p.H) {
		return fmt.Errorf("pebble: cyclic dependence among classes")
	}
	return nil
}

func cyclic(adj map[int]map[int]bool, n int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for v := range adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// GreedySPartition builds a valid S-partition by scanning vertices in
// topological (id) order and closing the current class whenever adding the
// next vertex would overflow its dominator or minimum set. Because classes
// are contiguous in topological order, Property 4 holds by construction.
// The resulting class count h is an upper estimate of P(S); by Equation 2,
// |V_computed| / max|V_i| is the matching H(S) lower estimate.
func GreedySPartition(g *dag.Graph, s int) (*Partition, error) {
	if s < 1 {
		return nil, fmt.Errorf("pebble: S=%d < 1", s)
	}
	p := NewPartition(g)
	cur := -1
	for v := 0; v < g.NumVertices(); v++ {
		if g.Kind(v) == dag.Input {
			continue
		}
		if cur < 0 {
			cur = p.H
			p.H++
		}
		p.Class[v] = cur
		if len(DominatorSet(g, p.Class, cur)) > s || len(MinimumSet(g, p.Class, cur)) > s {
			// Undo, close the class, start a new one with v.
			p.Class[v] = -1
			cur = p.H
			p.H++
			p.Class[v] = cur
			if len(DominatorSet(g, p.Class, cur)) > s || len(MinimumSet(g, p.Class, cur)) > s {
				return nil, fmt.Errorf("pebble: vertex %d alone overflows S=%d", v, s)
			}
		}
	}
	return p, nil
}

// HEstimate evaluates Equation 2's ratio |V|/max|V_i| for a concrete
// partition — a lower estimate of H(S) and hence of P(S). Input vertices are
// excluded from |V| as they are never computed.
func (p *Partition) HEstimate(g *dag.Graph) float64 {
	members := p.classMembers()
	if members == nil || p.H == 0 {
		return 0
	}
	maxSize := 0
	for _, m := range members {
		if len(m) > maxSize {
			maxSize = len(m)
		}
	}
	if maxSize == 0 {
		return 0
	}
	return float64(g.ComputeCount()) / float64(maxSize)
}

// PartitionBound applies Theorem 2.1 with a concrete 2S-partition: any
// complete calculation needs Q ≥ S·(h − 1) where h is the minimum number of
// classes — so a *specific* partition's class count only upper-bounds P(2S)
// and cannot give a valid lower bound directly. The usable bound follows the
// paper's Equation 3 route instead: Q ≥ S·(H(2S) − 1) with H estimated from
// below by |V|/T — here we use the partition's own max class size as the T
// surrogate. The returned value is therefore a heuristic diagnostic, not a
// certified bound; the certified bounds live in package bounds.
func PartitionBound(g *dag.Graph, s int) (float64, error) {
	p, err := GreedySPartition(g, 2*s)
	if err != nil {
		return 0, err
	}
	h := p.HEstimate(g)
	return math.Max(float64(s)*(h-1), 0), nil
}
