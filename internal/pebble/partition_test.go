package pebble

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/shapes"
)

func convDAG(t *testing.T) *dag.DirectConv {
	t.Helper()
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 2, Wker: 2, Strid: 1}
	d, err := dag.BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGreedySPartitionIsValid(t *testing.T) {
	d := convDAG(t)
	for _, s := range []int{4, 8, 16, 64} {
		p, err := GreedySPartition(d.Graph, s)
		if err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		if err := p.Verify(d.Graph, s); err != nil {
			t.Errorf("S=%d: produced invalid partition: %v", s, err)
		}
		if p.H < 1 {
			t.Errorf("S=%d: empty partition", s)
		}
	}
}

func TestGreedySPartitionClassesShrinkWithS(t *testing.T) {
	d := convDAG(t)
	prev := 1 << 30
	for _, s := range []int{4, 8, 16, 64, 1024} {
		p, err := GreedySPartition(d.Graph, s)
		if err != nil {
			t.Fatal(err)
		}
		if p.H > prev {
			t.Errorf("S=%d: more classes (%d) than smaller S (%d)", s, p.H, prev)
		}
		prev = p.H
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	d := convDAG(t)
	p, err := GreedySPartition(d.Graph, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Assigning an input vertex must fail Property 1.
	bad := NewPartition(d.Graph)
	copy(bad.Class, p.Class)
	bad.H = p.H
	bad.Class[d.Vertices(dag.Input)[0]] = 0
	if err := bad.Verify(d.Graph, 16); err == nil {
		t.Error("input assignment accepted")
	}
	// Un-assigning a computed vertex must fail Property 1.
	bad2 := NewPartition(d.Graph)
	copy(bad2.Class, p.Class)
	bad2.H = p.H
	bad2.Class[d.Vertices(dag.Output)[0]] = -1
	if err := bad2.Verify(d.Graph, 16); err == nil {
		t.Error("uncovered vertex accepted")
	}
	// Shrinking S below a dominator set must fail Property 2.
	if err := p.Verify(d.Graph, 1); err == nil {
		t.Error("S=1 accepted for a partition built at S=16")
	}
}

func TestVerifyCatchesCyclicClasses(t *testing.T) {
	// Build a 4-vertex chain and interleave two classes: a -> b -> c -> d
	// with classes {a,c} and {b,d} depends both ways -> cyclic.
	g := dag.New()
	in := g.AddVertex(dag.Input, 0)
	a := g.AddVertex(dag.Internal, 0, in)
	b := g.AddVertex(dag.Internal, 0, a)
	c := g.AddVertex(dag.Internal, 0, b)
	d := g.AddVertex(dag.Output, 0, c)
	p := NewPartition(g)
	p.H = 2
	p.Class[a], p.Class[c] = 0, 0
	p.Class[b], p.Class[d] = 1, 1
	if err := p.Verify(g, 8); err == nil {
		t.Error("cyclic class dependence accepted")
	}
}

func TestDominatorAndMinimumSets(t *testing.T) {
	// Diamond: two inputs -> product -> output chain.
	g := dag.New()
	i1 := g.AddVertex(dag.Input, 0)
	i2 := g.AddVertex(dag.Input, 0)
	m := g.AddVertex(dag.Internal, 0, i1, i2)
	o := g.AddVertex(dag.Output, 0, m)
	class := []int{-1, -1, 0, 0}
	dom := DominatorSet(g, class, 0)
	if len(dom) != 2 {
		t.Errorf("dominator set %v, want the two inputs", dom)
	}
	minset := MinimumSet(g, class, 0)
	if len(minset) != 1 || minset[0] != o {
		t.Errorf("minimum set %v, want just the output", minset)
	}
}

// H(S) from any valid partition must never exceed the number of classes of
// that partition (Equation 2 is a min over partitions of a ratio that the
// max class size bounds).
func TestHEstimateConsistent(t *testing.T) {
	d := convDAG(t)
	for _, s := range []int{8, 32} {
		p, err := GreedySPartition(d.Graph, s)
		if err != nil {
			t.Fatal(err)
		}
		h := p.HEstimate(d.Graph)
		if h <= 0 {
			t.Fatalf("S=%d: degenerate H estimate %v", s, h)
		}
		if h > float64(p.H)+1e-9 {
			t.Errorf("S=%d: |V|/max|Vi| = %v exceeds class count %d", s, h, p.H)
		}
	}
}

// The partition-based diagnostic must be consistent with actually played
// games: the greedy schedule's Q should not be dramatically below it.
func TestPartitionBoundDiagnostic(t *testing.T) {
	d := convDAG(t)
	for _, s := range []int{4, 8} {
		pb, err := PartitionBound(d.Graph, s)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Greedy(d.Graph, s, Belady)
		if err != nil {
			t.Fatal(err)
		}
		if pb < 0 {
			t.Errorf("S=%d: negative diagnostic %v", s, pb)
		}
		// The diagnostic is a heuristic; it must stay in the same decade as
		// played games rather than exceeding them wildly.
		if pb > 10*float64(sched.IO()) {
			t.Errorf("S=%d: diagnostic %v wildly above played Q=%d", s, pb, sched.IO())
		}
	}
}

func TestGreedySPartitionRejectsTinyS(t *testing.T) {
	d := convDAG(t)
	if _, err := GreedySPartition(d.Graph, 0); err == nil {
		t.Error("S=0 accepted")
	}
}
