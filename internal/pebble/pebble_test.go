package pebble

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/shapes"
)

// chainGraph builds in0 -> v1 -> v2 -> ... -> out (a path).
func chainGraph(k int) *dag.Graph {
	g := dag.New()
	prev := g.AddVertex(dag.Input, 0)
	for i := 0; i < k-1; i++ {
		prev = g.AddVertex(dag.Internal, 0, prev)
	}
	g.AddVertex(dag.Output, 0, prev)
	return g
}

// diamondGraph: two inputs feeding one sum output.
func diamondGraph() *dag.Graph {
	g := dag.New()
	a := g.AddVertex(dag.Input, 0)
	b := g.AddVertex(dag.Input, 0)
	g.AddVertex(dag.Output, 0, a, b)
	return g
}

func TestGameRules(t *testing.T) {
	g := diamondGraph()
	gm, err := NewGame(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Compute before loading operands must fail.
	if err := gm.Play(Move{Compute, 2}); err == nil {
		t.Fatal("compute with unpebbled preds succeeded")
	}
	must := func(m Move) {
		t.Helper()
		if err := gm.Play(m); err != nil {
			t.Fatalf("%v %d: %v", m.Op, m.V, err)
		}
	}
	must(Move{Load, 0})
	must(Move{Load, 1})
	must(Move{Compute, 2})
	if gm.RedCount() != 3 {
		t.Errorf("RedCount=%d want 3", gm.RedCount())
	}
	// Fourth red pebble must be rejected.
	if err := gm.Play(Move{Load, 0}); err == nil {
		t.Error("load beyond S succeeded")
	}
	if gm.Complete() {
		t.Error("complete before storing output")
	}
	must(Move{Store, 2})
	if !gm.Complete() {
		t.Error("not complete after storing output")
	}
	if gm.IO() != 3 || gm.Loads() != 2 || gm.Stores() != 1 {
		t.Errorf("IO=%d loads=%d stores=%d", gm.IO(), gm.Loads(), gm.Stores())
	}
}

func TestGameIllegalMoves(t *testing.T) {
	g := diamondGraph()
	gm, _ := NewGame(g, 3)
	cases := []struct {
		name string
		m    Move
	}{
		{"load without blue", Move{Load, 2}},
		{"store without red", Move{Store, 0}},
		{"free red without red", Move{FreeRed, 0}},
		{"free blue without blue", Move{FreeBlue, 2}},
		{"compute input", Move{Compute, 0}},
		{"out of range", Move{Load, 99}},
	}
	for _, c := range cases {
		if err := gm.Play(c.m); err == nil {
			t.Errorf("%s: succeeded", c.name)
		}
	}
	// State must be untouched after illegal moves.
	if gm.IO() != 0 || gm.RedCount() != 0 {
		t.Error("illegal moves changed state")
	}
}

func TestNewGameRejectsSmallS(t *testing.T) {
	g := diamondGraph() // in-degree 2 -> needs S >= 3
	if _, err := NewGame(g, 2); err == nil {
		t.Error("S below max in-degree + 1 accepted")
	}
	if _, err := NewGame(g, 0); err == nil {
		t.Error("S=0 accepted")
	}
}

func TestGreedySchedulesAreLegal(t *testing.T) {
	graphs := map[string]*dag.Graph{
		"chain":   chainGraph(6),
		"diamond": diamondGraph(),
	}
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 2, Wker: 2, Strid: 1}
	dc, err := dag.BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	graphs["direct-conv"] = dc.Graph

	for name, g := range graphs {
		for _, pol := range []Policy{LRU, Belady} {
			for _, S := range []int{3, 4, 8, 32} {
				sched, err := Greedy(g, S, pol)
				if err != nil {
					t.Fatalf("%s S=%d %v: %v", name, S, pol, err)
				}
				q, err := Verify(g, S, sched)
				if err != nil {
					t.Fatalf("%s S=%d %v: illegal schedule: %v", name, S, pol, err)
				}
				if q != sched.IO() {
					t.Errorf("%s S=%d %v: executor counted %d, schedule says %d", name, S, pol, q, sched.IO())
				}
				// Any complete game must at least load what outputs need and
				// store every output once.
				if q < g.CountKind(dag.Output) {
					t.Errorf("%s S=%d %v: Q=%d below output count", name, S, pol, q)
				}
			}
		}
	}
}

func TestGreedyMoreMemoryNeverHurts(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 2, Wker: 2, Strid: 1}
	dc, err := dag.BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, S := range []int{3, 6, 12, 24, 48, 96, 1 << 20} {
		sched, err := Greedy(dc.Graph, S, Belady)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && sched.IO() > prev {
			t.Errorf("S=%d: Q=%d worse than smaller memory's %d", S, sched.IO(), prev)
		}
		prev = sched.IO()
	}
	// With unbounded memory, Q = (#inputs actually used) + #outputs.
	want := dc.CountKind(dag.Input) + dc.CountKind(dag.Output)
	if prev != want {
		t.Errorf("unbounded-memory Q=%d want %d (inputs+outputs)", prev, want)
	}
}

func TestBeladyNoWorseThanLRUOnConv(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 2, Wker: 2, Strid: 1}
	dc, err := dag.BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, S := range []int{4, 8, 16, 64} {
		lru, err := Greedy(dc.Graph, S, LRU)
		if err != nil {
			t.Fatal(err)
		}
		bel, err := Greedy(dc.Graph, S, Belady)
		if err != nil {
			t.Fatal(err)
		}
		if bel.IO() > lru.IO() {
			t.Errorf("S=%d: Belady Q=%d worse than LRU Q=%d", S, bel.IO(), lru.IO())
		}
	}
}

func TestOptimalOnChain(t *testing.T) {
	// A chain of k compute vertices with S >= 2 needs exactly 1 load + 1
	// store: load the input, compute along the chain freeing as we go,
	// store the output.
	g := chainGraph(4)
	q, err := Optimal(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2 {
		t.Errorf("chain optimal Q=%d want 2", q)
	}
}

func TestOptimalOnDiamond(t *testing.T) {
	g := diamondGraph()
	q, err := Optimal(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 { // 2 loads + 1 store
		t.Errorf("diamond optimal Q=%d want 3", q)
	}
}

func TestOptimalNeverAboveGreedy(t *testing.T) {
	// Tiny conv: 3x3 input, 2x2 kernel, 1 channel, 1 output channel ->
	// 4 outputs, 4 products each.
	s := shapes.ConvShape{Batch: 1, Cin: 1, Hin: 3, Win: 3, Cout: 1, Hker: 2, Wker: 2, Strid: 2}
	dc, err := dag.BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	if dc.NumVertices() > MaxOptimalVertices {
		t.Skipf("DAG too large for exact search: %d", dc.NumVertices())
	}
	for _, S := range []int{3, 4, 5} {
		opt, err := Optimal(dc.Graph, S)
		if err != nil {
			t.Fatal(err)
		}
		gre, err := Greedy(dc.Graph, S, Belady)
		if err != nil {
			t.Fatal(err)
		}
		if opt > gre.IO() {
			t.Errorf("S=%d: optimal %d above greedy %d", S, opt, gre.IO())
		}
		if opt < dc.CountKind(dag.Output) {
			t.Errorf("S=%d: optimal %d below trivial store bound", S, opt)
		}
	}
}

func TestOptimalRejectsLargeDAG(t *testing.T) {
	g := chainGraph(MaxOptimalVertices + 5)
	if _, err := Optimal(g, 4); err == nil {
		t.Error("oversized DAG accepted")
	}
}

func TestOpPolicyStrings(t *testing.T) {
	for _, o := range []Op{Load, Store, Compute, FreeRed, FreeBlue, Op(42)} {
		if o.String() == "" {
			t.Errorf("empty string for op %d", o)
		}
	}
	for _, p := range []Policy{LRU, Belady, Policy(42)} {
		if p.String() == "" {
			t.Errorf("empty string for policy %d", p)
		}
	}
}
