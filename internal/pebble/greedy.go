package pebble

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// Policy selects the red-pebble eviction strategy of the greedy scheduler.
type Policy uint8

const (
	// LRU evicts the least recently touched unpinned red pebble.
	LRU Policy = iota
	// Belady evicts the unpinned red pebble whose next use in the fixed
	// compute order is furthest in the future (optimal for a fixed order).
	Belady
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Belady:
		return "belady"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Schedule is a complete calculation produced by a scheduler.
type Schedule struct {
	Moves  []Move
	Loads  int
	Stores int
}

// IO returns the schedule's total I/O count Q.
func (s *Schedule) IO() int { return s.Loads + s.Stores }

// Greedy plays the pebble game on g with S red pebbles by computing the
// non-input vertices in id (topological) order, loading operands on demand
// and evicting with the given policy. Evicted values that are still needed
// but hold no blue pebble are stored first, so nothing is ever recomputed.
// The returned schedule is legal and complete; Q = Loads+Stores is an upper
// bound on the optimal I/O.
func Greedy(g *dag.Graph, s int, pol Policy) (*Schedule, error) {
	if need := g.MaxInDegree() + 1; s < need {
		return nil, fmt.Errorf("pebble: S=%d too small; need %d", s, need)
	}
	n := g.NumVertices()

	// For Belady: positions in the compute order where each vertex is used
	// as an operand. Position of vertex v's computation is v itself (the id
	// order is topological by construction).
	var uses [][]int32
	usePtr := make([]int, n)
	if pol == Belady {
		uses = make([][]int32, n)
		for v := 0; v < n; v++ {
			for _, p := range g.Preds(v) {
				uses[p] = append(uses[p], int32(v))
			}
		}
	}
	// pendingUses counts remaining consumers; outputs get one extra pending
	// use representing their final store.
	pending := make([]int, n)
	for v := 0; v < n; v++ {
		pending[v] = len(g.Succs(v))
	}

	sched := &Schedule{}
	red := make([]bool, n)
	blue := make([]bool, n)
	stored := make([]bool, n)
	for _, v := range g.Vertices(dag.Input) {
		blue[v] = true
		stored[v] = true
	}
	redCount := 0
	lastTouch := make([]int64, n)
	var clock int64
	pinned := make([]bool, n)

	emit := func(op Op, v int) {
		sched.Moves = append(sched.Moves, Move{op, v})
		switch op {
		case Load:
			sched.Loads++
		case Store:
			sched.Stores++
		}
	}

	nextUse := func(v, now int) int {
		for usePtr[v] < len(uses[v]) && int(uses[v][usePtr[v]]) <= now {
			usePtr[v]++
		}
		if usePtr[v] < len(uses[v]) {
			return int(uses[v][usePtr[v]])
		}
		return math.MaxInt
	}

	// evictOne frees one unpinned red pebble, storing it first if its value
	// is still needed and not in slow memory.
	evictOne := func(now int) error {
		victim, victimKey := -1, int64(math.MinInt64)
		for v := 0; v < n; v++ {
			if !red[v] || pinned[v] {
				continue
			}
			var key int64
			switch pol {
			case LRU:
				key = -lastTouch[v] // oldest touch = largest key
			case Belady:
				if pending[v] == 0 {
					key = math.MaxInt64 // dead value: perfect victim
				} else {
					key = int64(nextUse(v, now))
				}
			}
			if key > victimKey {
				victim, victimKey = v, key
			}
		}
		if victim < 0 {
			return fmt.Errorf("pebble: no evictable red pebble (S=%d too small)", s)
		}
		if pending[victim] > 0 && !blue[victim] {
			emit(Store, victim)
			blue[victim] = true
			stored[victim] = true
		}
		emit(FreeRed, victim)
		red[victim] = false
		redCount--
		return nil
	}

	ensureRoom := func(now int) error {
		for redCount >= s {
			if err := evictOne(now); err != nil {
				return err
			}
		}
		return nil
	}

	for v := 0; v < n; v++ {
		if g.Kind(v) == dag.Input {
			continue
		}
		preds := g.Preds(v)
		// Bring operands into fast memory, pinning them.
		for _, p32 := range preds {
			p := int(p32)
			if red[p] {
				pinned[p] = true
				clock++
				lastTouch[p] = clock
				continue
			}
			if !blue[p] {
				return nil, fmt.Errorf("pebble: internal error: operand %d neither red nor blue", p)
			}
			if err := ensureRoom(v); err != nil {
				return nil, err
			}
			emit(Load, p)
			red[p] = true
			redCount++
			pinned[p] = true
			clock++
			lastTouch[p] = clock
		}
		if err := ensureRoom(v); err != nil {
			return nil, err
		}
		emit(Compute, v)
		red[v] = true
		redCount++
		clock++
		lastTouch[v] = clock

		// Operand bookkeeping: unpin, decrement pending uses, free dead
		// values eagerly.
		for _, p32 := range preds {
			p := int(p32)
			pinned[p] = false
			pending[p]--
			if pending[p] == 0 && red[p] {
				emit(FreeRed, p)
				red[p] = false
				redCount--
			}
		}
		if g.Kind(v) == dag.Output {
			emit(Store, v)
			blue[v] = true
			stored[v] = true
			emit(FreeRed, v)
			red[v] = false
			redCount--
		}
	}
	return sched, nil
}

// Verify replays a schedule through the rule-checked executor and reports
// whether it is legal and complete, returning the measured I/O count.
func Verify(g *dag.Graph, s int, sched *Schedule) (int, error) {
	game, err := NewGame(g, s)
	if err != nil {
		return 0, err
	}
	if err := game.Run(sched.Moves); err != nil {
		return 0, err
	}
	if !game.Complete() {
		return game.IO(), fmt.Errorf("pebble: schedule incomplete")
	}
	return game.IO(), nil
}
