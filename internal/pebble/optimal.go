package pebble

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/dag"
)

// MaxOptimalVertices bounds the DAG size accepted by Optimal; the state
// space grows as (red sets of size ≤ S) × 2^(non-inputs).
const MaxOptimalVertices = 20

// Optimal computes the exact minimum I/O count Q of a complete red–blue
// pebble game on g with S red pebbles, by Dijkstra search over pebbling
// states (red set, blue set). Recomputation of values is allowed, exactly as
// in the Hong–Kung model. It is exponential and only accepts DAGs with at
// most MaxOptimalVertices vertices.
func Optimal(g *dag.Graph, s int) (int, error) {
	n := g.NumVertices()
	if n > MaxOptimalVertices {
		return 0, fmt.Errorf("pebble: DAG too large for exact search (%d > %d vertices)", n, MaxOptimalVertices)
	}
	if need := g.MaxInDegree() + 1; s < need {
		return 0, fmt.Errorf("pebble: S=%d too small; need %d", s, need)
	}

	var inputMask, outputMask uint32
	for v := 0; v < n; v++ {
		switch g.Kind(v) {
		case dag.Input:
			inputMask |= 1 << v
		case dag.Output:
			outputMask |= 1 << v
		}
	}
	predMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, p := range g.Preds(v) {
			predMask[v] |= 1 << uint(p)
		}
	}

	type state struct{ red, blue uint32 }
	start := state{0, inputMask}
	dist := map[state]int{start: 0}
	pq := &stateHeap{{start.red, start.blue, 0}}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(stateEntry)
		st := state{cur.red, cur.blue}
		if d, ok := dist[st]; !ok || cur.cost > d {
			continue // stale entry
		}
		if st.blue&outputMask == outputMask {
			return cur.cost, nil
		}
		relax := func(ns state, cost int) {
			if d, ok := dist[ns]; !ok || cost < d {
				dist[ns] = cost
				heap.Push(pq, stateEntry{ns.red, ns.blue, cost})
			}
		}
		redCount := bits.OnesCount32(st.red)
		for v := 0; v < n; v++ {
			bit := uint32(1) << v
			// Compute v (free).
			if st.red&bit == 0 && g.Kind(v) != dag.Input && redCount < s &&
				st.red&predMask[v] == predMask[v] {
				relax(state{st.red | bit, st.blue}, cur.cost)
			}
			// Load v (cost 1).
			if st.blue&bit != 0 && st.red&bit == 0 && redCount < s {
				relax(state{st.red | bit, st.blue}, cur.cost+1)
			}
			// Store v (cost 1).
			if st.red&bit != 0 && st.blue&bit == 0 {
				relax(state{st.red, st.blue | bit}, cur.cost+1)
			}
			// Free red pebble (free). Freeing blue pebbles can never help
			// since blue storage is unlimited, so it is not explored.
			if st.red&bit != 0 {
				relax(state{st.red &^ bit, st.blue}, cur.cost)
			}
		}
	}
	return 0, fmt.Errorf("pebble: no complete calculation found (unreachable)")
}

type stateEntry struct {
	red, blue uint32
	cost      int
}

type stateHeap []stateEntry

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(stateEntry)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
