package winograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refCorrelate1D is the direct m-output correlation used as ground truth.
func refCorrelate1D(d, g []float32, m int) []float32 {
	r := len(g)
	y := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < r; j++ {
			s += float64(d[i+j]) * float64(g[j])
		}
		y[i] = float32(s)
	}
	return y
}

// refCorrelate2D is the direct m×m-output 2-D correlation.
func refCorrelate2D(d, g []float32, alpha, r, m int) []float32 {
	y := make([]float32, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float64
			for p := 0; p < r; p++ {
				for q := 0; q < r; q++ {
					s += float64(d[(i+p)*alpha+j+q]) * float64(g[p*r+q])
				}
			}
			y[i*m+j] = float32(s)
		}
	}
	return y
}

func maxAbs(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestNewTransformDims(t *testing.T) {
	for _, c := range []struct{ m, r int }{{2, 3}, {4, 3}, {3, 2}, {2, 2}, {6, 3}, {2, 5}} {
		tr, err := NewTransform(c.m, c.r)
		if err != nil {
			t.Fatalf("F(%d,%d): %v", c.m, c.r, err)
		}
		alpha := c.m + c.r - 1
		if tr.Alpha != alpha {
			t.Errorf("F(%d,%d): Alpha=%d want %d", c.m, c.r, tr.Alpha, alpha)
		}
		if len(tr.AT) != c.m || len(tr.AT[0]) != alpha {
			t.Errorf("F(%d,%d): AT is %dx%d", c.m, c.r, len(tr.AT), len(tr.AT[0]))
		}
		if len(tr.G) != alpha || len(tr.G[0]) != c.r {
			t.Errorf("F(%d,%d): G is %dx%d", c.m, c.r, len(tr.G), len(tr.G[0]))
		}
		if len(tr.BT) != alpha || len(tr.BT[0]) != alpha {
			t.Errorf("F(%d,%d): BT is %dx%d", c.m, c.r, len(tr.BT), len(tr.BT[0]))
		}
	}
}

func TestNewTransformErrors(t *testing.T) {
	if _, err := NewTransform(0, 3); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewTransform(2, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewTransform(1, 1); err == nil {
		t.Error("trivial F(1,1) accepted")
	}
	if _, err := NewTransform(12, 9); err == nil {
		t.Error("oversized transform accepted (not enough points)")
	}
}

func TestCorrelate1DExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ m, r int }{{2, 3}, {4, 3}, {3, 2}, {2, 2}, {6, 3}} {
		tr, err := NewTransform(c.m, c.r)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			d := make([]float32, tr.Alpha)
			g := make([]float32, c.r)
			for i := range d {
				d[i] = rng.Float32()*2 - 1
			}
			for i := range g {
				g[i] = rng.Float32()*2 - 1
			}
			got := tr.Correlate1D(d, g)
			want := refCorrelate1D(d, g, c.m)
			if diff := maxAbs(got, want); diff > 1e-4 {
				t.Fatalf("F(%d,%d) trial %d: max diff %g", c.m, c.r, trial, diff)
			}
		}
	}
}

func TestCorrelate2DExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []struct{ m, r int }{{2, 3}, {4, 3}, {3, 2}} {
		tr, err := NewTransform(c.m, c.r)
		if err != nil {
			t.Fatal(err)
		}
		alpha := tr.Alpha
		for trial := 0; trial < 10; trial++ {
			d := make([]float32, alpha*alpha)
			g := make([]float32, c.r*c.r)
			for i := range d {
				d[i] = rng.Float32()*2 - 1
			}
			for i := range g {
				g[i] = rng.Float32()*2 - 1
			}
			got := tr.Correlate2D(d, g)
			want := refCorrelate2D(d, g, alpha, c.r, c.m)
			if diff := maxAbs(got, want); diff > 1e-3 {
				t.Fatalf("F(%dx%d,%dx%d) trial %d: max diff %g", c.m, c.m, c.r, c.r, trial, diff)
			}
		}
	}
}

// The classic F(2,3) algorithm uses 4 multiplications; check our G·g against
// the known structure: the transform of filter (g0,g1,g2) at points
// {0,1,-1,∞} must be (g0, g0+g1+g2, g0−g1+g2, g2).
func TestF23FilterEvaluations(t *testing.T) {
	tr, err := NewTransform(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{3, 5, 7}
	got := make([]float64, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			got[i] += tr.G[i][j] * float64(g[j])
		}
	}
	want := []float64{3, 15, 5, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("G·g[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

// Property: Winograd 1-D correlation matches the direct correlation for
// arbitrary inputs (F(2,3) with quick-generated values).
func TestCorrelate1DProperty(t *testing.T) {
	tr, err := NewTransform(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(d0, d1, d2, d3, g0, g1, g2 int8) bool {
		d := []float32{float32(d0), float32(d1), float32(d2), float32(d3)}
		g := []float32{float32(g0), float32(g1), float32(g2)}
		got := tr.Correlate1D(d, g)
		want := refCorrelate1D(d, g, 2)
		return maxAbs(got, want) <= 1e-2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the transforms are linear in the filter: F(αg) = α·F(g).
func TestFilterTransformLinearity(t *testing.T) {
	tr, err := NewTransform(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [9]int8, scale int8) bool {
		g := make([]float32, 9)
		gs := make([]float32, 9)
		for i, v := range vals {
			g[i] = float32(v)
			gs[i] = float32(v) * float32(scale)
		}
		u := make([]float32, tr.Alpha*tr.Alpha)
		us := make([]float32, tr.Alpha*tr.Alpha)
		tr.FilterTransform(u, g)
		tr.FilterTransform(us, gs)
		for i := range u {
			if math.Abs(float64(us[i])-float64(scale)*float64(u[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestApplyPanicsOnShortBuffer(t *testing.T) {
	tr, _ := NewTransform(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short buffer")
		}
	}()
	tr.InputTransform(make([]float32, 3), make([]float32, 16))
}
