// Package winograd constructs the transformation matrices A, G and B used by
// the Winograd convolution algorithm F(e×e, r×r) described in Section 2.3 of
// the paper, and applies them to 2-D tiles.
//
// The matrices are produced by the Cook–Toom construction over exact
// rational arithmetic (math/big.Rat): an algorithm for the m-output,
// r-tap correlation F(m, r) is the transpose of a Toom–Cook algorithm for
// the linear convolution of sizes (m, r), using α = m+r−1 evaluation points
// (α−1 finite points plus the point at infinity). The resulting identity is
//
//	Y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]            (1-D, d of length α, g of length r)
//	Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]·A    (2-D, nested application)
//
// which is exact in real arithmetic for every choice of distinct points.
package winograd

import (
	"fmt"
	"math/big"
	"sync"
)

// defaultPoints is the standard sequence of interpolation points. Small
// magnitudes keep the transform matrices well conditioned in float arithmetic.
var defaultPoints = []*big.Rat{
	big.NewRat(0, 1),
	big.NewRat(1, 1), big.NewRat(-1, 1),
	big.NewRat(2, 1), big.NewRat(-2, 1),
	big.NewRat(1, 2), big.NewRat(-1, 2),
	big.NewRat(3, 1), big.NewRat(-3, 1),
	big.NewRat(1, 3), big.NewRat(-1, 3),
	big.NewRat(4, 1), big.NewRat(-4, 1),
}

// Transform holds the three Winograd matrices for F(m, r) in row-major
// float64 form. AT is m×α, G is α×r, BT is α×α, with α = m+r−1 (the input
// tile size, written e+r−1 in the paper with m = e).
type Transform struct {
	M     int // number of outputs per tile (the paper's e)
	R     int // filter taps (the paper's r)
	Alpha int // input tile size m+r−1

	AT [][]float64 // m×α output transform
	G  [][]float64 // α×r filter transform
	BT [][]float64 // α×α input transform

	// Sparse-cost flop counts of the three 2-D transforms, precomputed at
	// construction so the dry-run counting paths never rescan the matrices.
	opsIn, opsFilter, opsOut int
}

// The transform matrices are sparse (most entries are 0 and ±1), and real
// kernels exploit that: a 2-D transform M·d·Mᵀ with M of shape p×q costs
// about 2·(p+q)·nnz(M) flops, not the dense 4·p·q² count. These accessors
// report that sparse cost; the simulator charges it for on-chip transforms.

// OpsInput is the flop cost of one 2-D input transform Bᵀ·d·B.
func (t *Transform) OpsInput() int { return t.opsIn }

// OpsFilter is the flop cost of one 2-D filter transform G·g·Gᵀ.
func (t *Transform) OpsFilter() int { return t.opsFilter }

// OpsOutput is the flop cost of one 2-D output transform Aᵀ·Π·A.
func (t *Transform) OpsOutput() int { return t.opsOut }

func transformOps(m [][]float64, p, q int) int {
	nnz := 0
	for _, row := range m {
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
	}
	return 2 * (p + q) * nnz
}

// NewTransform builds the F(m, r) transform matrices. It returns an error if
// m or r is too small or if the built-in point table cannot supply m+r−2
// distinct finite points.
func NewTransform(m, r int) (*Transform, error) {
	if m < 1 || r < 1 {
		return nil, fmt.Errorf("winograd: F(%d,%d) needs m,r >= 1", m, r)
	}
	alpha := m + r - 1
	if alpha < 2 {
		return nil, fmt.Errorf("winograd: F(%d,%d) is trivial; need m+r-1 >= 2", m, r)
	}
	nfinite := alpha - 1
	if nfinite > len(defaultPoints) {
		return nil, fmt.Errorf("winograd: F(%d,%d) needs %d points; only %d available",
			m, r, nfinite, len(defaultPoints))
	}
	pts := defaultPoints[:nfinite]

	at := vandermondeWithInfinity(pts, m)    // m×α (transposed evaluation)
	g := evaluationMatrix(pts, r)            // α×r
	bt := interpolationTranspose(pts, alpha) // α×α

	t := &Transform{M: m, R: r, Alpha: alpha, AT: at, G: g, BT: bt}
	t.opsIn = transformOps(t.BT, t.Alpha, t.Alpha)
	t.opsFilter = transformOps(t.G, t.Alpha, t.R)
	t.opsOut = transformOps(t.AT, t.M, t.Alpha)
	return t, nil
}

// cached holds the transforms already constructed, keyed by F(m, r). The
// Cook–Toom construction runs exact rational arithmetic, far too slow (and
// allocation-heavy) for the measurement hot path that needs a transform per
// dry evaluation; every caller on that path goes through Cached instead.
var cached struct {
	mu sync.RWMutex
	m  map[[2]int]*Transform
}

// Cached returns the F(m, r) transform, building and memoizing it on first
// use. The returned Transform is shared and must be treated as read-only
// (every method on it already is). It is safe for concurrent use.
func Cached(m, r int) (*Transform, error) {
	key := [2]int{m, r}
	cached.mu.RLock()
	t := cached.m[key]
	cached.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	t, err := NewTransform(m, r)
	if err != nil {
		return nil, err
	}
	cached.mu.Lock()
	if prev := cached.m[key]; prev != nil {
		t = prev // keep the first construction so pointers stay stable
	} else {
		if cached.m == nil {
			cached.m = make(map[[2]int]*Transform)
		}
		cached.m[key] = t
	}
	cached.mu.Unlock()
	return t, nil
}

// evaluationMatrix returns the α×w matrix Q with Q[i][j] = aᵢʲ for the
// finite points and a final row selecting the leading coefficient (the point
// at infinity).
func evaluationMatrix(pts []*big.Rat, w int) [][]float64 {
	alpha := len(pts) + 1
	q := make([][]float64, alpha)
	for i, a := range pts {
		row := make([]float64, w)
		p := big.NewRat(1, 1)
		for j := 0; j < w; j++ {
			row[j] = ratFloat(p)
			p = new(big.Rat).Mul(p, a)
		}
		q[i] = row
	}
	inf := make([]float64, w)
	inf[w-1] = 1
	q[alpha-1] = inf
	return q
}

// vandermondeWithInfinity returns the m×α transpose of evaluationMatrix:
// AT[j][i] = aᵢʲ, with the infinity column contributing only to the highest
// row.
func vandermondeWithInfinity(pts []*big.Rat, m int) [][]float64 {
	alpha := len(pts) + 1
	q := evaluationMatrix(pts, m) // α×m
	at := make([][]float64, m)
	for j := 0; j < m; j++ {
		at[j] = make([]float64, alpha)
		for i := 0; i < alpha; i++ {
			at[j][i] = q[i][j]
		}
	}
	return at
}

// interpolationTranspose returns Bᵀ = Eᵀ where E is the α×α interpolation
// matrix recovering the coefficients of a degree-(α−1) polynomial from its
// values at the finite points plus its leading coefficient:
//
//	s(x) = Σᵢ s(aᵢ)·Lᵢ(x) + s∞·(x^{α−1} − Σᵢ aᵢ^{α−1}·Lᵢ(x))
//
// with Lᵢ the Lagrange basis over the finite points.
func interpolationTranspose(pts []*big.Rat, alpha int) [][]float64 {
	n := len(pts) // = alpha-1 finite points
	// Lagrange basis coefficients: lag[i][k] = coeff of x^k in L_i(x).
	lag := make([][]*big.Rat, n)
	for i := range pts {
		lag[i] = lagrangeBasis(pts, i)
	}
	// E[k][i], k,i in [0,alpha).
	e := make([][]*big.Rat, alpha)
	for k := range e {
		e[k] = make([]*big.Rat, alpha)
		for i := range e[k] {
			e[k][i] = new(big.Rat)
		}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ { // deg L_i <= alpha-2
			e[k][i].Set(lag[i][k])
		}
	}
	// Infinity column: δ_{k,α−1} − Σᵢ aᵢ^{α−1}·lag[i][k].
	e[alpha-1][n].SetInt64(1)
	for i := 0; i < n; i++ {
		lead := ratPow(pts[i], alpha-1)
		for k := 0; k < n; k++ {
			term := new(big.Rat).Mul(lead, lag[i][k])
			e[k][n].Sub(e[k][n], term)
		}
	}
	// Bᵀ = Eᵀ.
	bt := make([][]float64, alpha)
	for i := 0; i < alpha; i++ {
		bt[i] = make([]float64, alpha)
		for k := 0; k < alpha; k++ {
			bt[i][k] = ratFloat(e[k][i])
		}
	}
	return bt
}

// lagrangeBasis returns the coefficients (index = power of x) of
// Lᵢ(x) = Π_{j≠i}(x−aⱼ)/(aᵢ−aⱼ), a polynomial of degree len(pts)−1.
func lagrangeBasis(pts []*big.Rat, i int) []*big.Rat {
	// Numerator: product of (x − aⱼ).
	coeffs := []*big.Rat{big.NewRat(1, 1)}
	denom := big.NewRat(1, 1)
	for j, a := range pts {
		if j == i {
			continue
		}
		coeffs = polyMulLinear(coeffs, a)
		diff := new(big.Rat).Sub(pts[i], a)
		denom.Mul(denom, diff)
	}
	inv := new(big.Rat).Inv(denom)
	out := make([]*big.Rat, len(pts))
	for k := range out {
		out[k] = new(big.Rat)
		if k < len(coeffs) {
			out[k].Mul(coeffs[k], inv)
		}
	}
	return out
}

// polyMulLinear multiplies the polynomial given by coeffs with (x − a).
func polyMulLinear(coeffs []*big.Rat, a *big.Rat) []*big.Rat {
	out := make([]*big.Rat, len(coeffs)+1)
	for k := range out {
		out[k] = new(big.Rat)
	}
	for k, c := range coeffs {
		out[k+1].Add(out[k+1], c)                  // x·c·x^k
		out[k].Sub(out[k], new(big.Rat).Mul(a, c)) // −a·c·x^k
	}
	return out
}

func ratPow(a *big.Rat, n int) *big.Rat {
	p := big.NewRat(1, 1)
	for i := 0; i < n; i++ {
		p.Mul(p, a)
	}
	return p
}

func ratFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
