package winograd

// This file applies the F(m, r) transforms to flat 2-D tiles stored
// row-major in float32 slices, which is how the convolution dataflows keep
// them in (simulated) on-chip memory.

// FilterTransform computes U = G·g·Gᵀ for an r×r filter tile g, producing an
// α×α transformed tile in dst. dst must have length α². F(2,3) and F(4,3)
// take the straight-line kernels in fast.go; everything else the generic
// sparse apply.
func (t *Transform) FilterTransform(dst, g []float32) {
	if t.fast() {
		if t.M == 2 {
			filter23(dst, g)
		} else {
			filter43(dst, g)
		}
		return
	}
	t.apply(dst, g, t.G, t.R, t.Alpha)
}

// InputTransform computes V = Bᵀ·d·B for an α×α input tile d, producing an
// α×α transformed tile in dst. dst must have length α².
func (t *Transform) InputTransform(dst, d []float32) {
	if t.fast() {
		if t.M == 2 {
			input23(dst, d)
		} else {
			input43(dst, d)
		}
		return
	}
	t.apply(dst, d, t.BT, t.Alpha, t.Alpha)
}

// OutputTransform computes Y = Aᵀ·Π·A for an α×α accumulated tile Π,
// producing the m×m output tile in dst. dst must have length m².
func (t *Transform) OutputTransform(dst, pi []float32) {
	if t.fast() {
		if t.M == 2 {
			output23(dst, pi)
		} else {
			output43(dst, pi)
		}
		return
	}
	t.apply(dst, pi, t.AT, t.Alpha, t.M)
}

// applyMaxTile bounds the stack scratch of apply: transforms up to F(8, 8)
// (α = 15) fit, far beyond the e ∈ {2, 3, 4}, r = 3 tiles the dataflows use.
const applyMaxTile = 15

// apply computes dst = M·src·Mᵀ where M is out×in and src is an in×in
// row-major tile, writing an out×out row-major tile. The intermediate lives
// in a fixed-size stack array (the hot kernel paths call this per sub-tile
// per channel, so a heap allocation here would dominate the run) and zero
// matrix entries — most of M, the matrices are sparse by construction — are
// skipped.
func (t *Transform) apply(dst, src []float32, m [][]float64, in, out int) {
	if len(src) < in*in || len(dst) < out*out {
		panic("winograd: tile buffer too small")
	}
	if in > applyMaxTile || out > applyMaxTile {
		panic("winograd: tile exceeds applyMaxTile")
	}
	// tmp = M·src (out×in), accumulated row-wise: tmp[i] += m[i][k]·src[k].
	var buf [applyMaxTile * applyMaxTile]float64
	tmp := buf[:out*in]
	for i := 0; i < out; i++ {
		row := tmp[i*in : (i+1)*in]
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < in; k++ {
			mv := m[i][k]
			if mv == 0 {
				continue
			}
			srow := src[k*in : (k+1)*in]
			for j, sv := range srow {
				row[j] += mv * float64(sv)
			}
		}
	}
	// dst = tmp·Mᵀ (out×out).
	for i := 0; i < out; i++ {
		trow := tmp[i*in : (i+1)*in]
		drow := dst[i*out : (i+1)*out]
		for j := 0; j < out; j++ {
			var s float64
			mrow := m[j]
			for k, tv := range trow {
				s += tv * mrow[k]
			}
			drow[j] = float32(s)
		}
	}
}

// Correlate1D computes the m valid correlation outputs of a length-α input
// against an r-tap filter using the 1-D Winograd identity. It exists mainly
// for tests and for the DAG builder's cross-checks.
func (t *Transform) Correlate1D(d, g []float32) []float32 {
	if len(d) != t.Alpha || len(g) != t.R {
		panic("winograd: Correlate1D size mismatch")
	}
	gg := make([]float64, t.Alpha)
	for i := 0; i < t.Alpha; i++ {
		for j := 0; j < t.R; j++ {
			gg[i] += t.G[i][j] * float64(g[j])
		}
	}
	dd := make([]float64, t.Alpha)
	for i := 0; i < t.Alpha; i++ {
		for j := 0; j < t.Alpha; j++ {
			dd[i] += t.BT[i][j] * float64(d[j])
		}
	}
	y := make([]float32, t.M)
	for i := 0; i < t.M; i++ {
		var s float64
		for k := 0; k < t.Alpha; k++ {
			s += t.AT[i][k] * gg[k] * dd[k]
		}
		y[i] = float32(s)
	}
	return y
}

// Correlate2D computes the m×m valid correlation outputs of an α×α input
// tile against an r×r filter via the nested 2-D identity.
func (t *Transform) Correlate2D(d, g []float32) []float32 {
	u := make([]float32, t.Alpha*t.Alpha)
	v := make([]float32, t.Alpha*t.Alpha)
	t.FilterTransform(u, g)
	t.InputTransform(v, d)
	for i := range u {
		u[i] *= v[i]
	}
	y := make([]float32, t.M*t.M)
	t.OutputTransform(y, u)
	return y
}
