package winograd

// This file applies the F(m, r) transforms to flat 2-D tiles stored
// row-major in float32 slices, which is how the convolution dataflows keep
// them in (simulated) on-chip memory.

// FilterTransform computes U = G·g·Gᵀ for an r×r filter tile g, producing an
// α×α transformed tile in dst. dst must have length α².
func (t *Transform) FilterTransform(dst, g []float32) {
	t.apply(dst, g, t.G, t.R, t.Alpha)
}

// InputTransform computes V = Bᵀ·d·B for an α×α input tile d, producing an
// α×α transformed tile in dst. dst must have length α².
func (t *Transform) InputTransform(dst, d []float32) {
	t.apply(dst, d, t.BT, t.Alpha, t.Alpha)
}

// OutputTransform computes Y = Aᵀ·Π·A for an α×α accumulated tile Π,
// producing the m×m output tile in dst. dst must have length m².
func (t *Transform) OutputTransform(dst, pi []float32) {
	t.apply(dst, pi, t.AT, t.Alpha, t.M)
}

// apply computes dst = M·src·Mᵀ where M is out×in and src is an in×in
// row-major tile, writing an out×out row-major tile.
func (t *Transform) apply(dst, src []float32, m [][]float64, in, out int) {
	if len(src) < in*in || len(dst) < out*out {
		panic("winograd: tile buffer too small")
	}
	// tmp = M·src (out×in).
	tmp := make([]float64, out*in)
	for i := 0; i < out; i++ {
		for j := 0; j < in; j++ {
			var s float64
			for k := 0; k < in; k++ {
				s += m[i][k] * float64(src[k*in+j])
			}
			tmp[i*in+j] = s
		}
	}
	// dst = tmp·Mᵀ (out×out).
	for i := 0; i < out; i++ {
		for j := 0; j < out; j++ {
			var s float64
			for k := 0; k < in; k++ {
				s += tmp[i*in+k] * m[j][k]
			}
			dst[i*out+j] = float32(s)
		}
	}
}

// Correlate1D computes the m valid correlation outputs of a length-α input
// against an r-tap filter using the 1-D Winograd identity. It exists mainly
// for tests and for the DAG builder's cross-checks.
func (t *Transform) Correlate1D(d, g []float32) []float32 {
	if len(d) != t.Alpha || len(g) != t.R {
		panic("winograd: Correlate1D size mismatch")
	}
	gg := make([]float64, t.Alpha)
	for i := 0; i < t.Alpha; i++ {
		for j := 0; j < t.R; j++ {
			gg[i] += t.G[i][j] * float64(g[j])
		}
	}
	dd := make([]float64, t.Alpha)
	for i := 0; i < t.Alpha; i++ {
		for j := 0; j < t.Alpha; j++ {
			dd[i] += t.BT[i][j] * float64(d[j])
		}
	}
	y := make([]float32, t.M)
	for i := 0; i < t.M; i++ {
		var s float64
		for k := 0; k < t.Alpha; k++ {
			s += t.AT[i][k] * gg[k] * dd[k]
		}
		y[i] = float32(s)
	}
	return y
}

// Correlate2D computes the m×m valid correlation outputs of an α×α input
// tile against an r×r filter via the nested 2-D identity.
func (t *Transform) Correlate2D(d, g []float32) []float32 {
	u := make([]float32, t.Alpha*t.Alpha)
	v := make([]float32, t.Alpha*t.Alpha)
	t.FilterTransform(u, g)
	t.InputTransform(v, d)
	for i := range u {
		u[i] *= v[i]
	}
	y := make([]float32, t.M*t.M)
	t.OutputTransform(y, u)
	return y
}
