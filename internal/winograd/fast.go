package winograd

// This file holds straight-line float32 kernels for the two transform
// families the convolution dataflows actually tune over — F(2×2, 3×3) and
// F(4×4, 3×3) — using the classic interpolation points 0, ±1 (, ±2), ∞.
// They are what a real backend would emit for these tile sizes: no loops,
// no float64 round trips, exact Winograd identities (each triple of
// matrices is self-consistent, so Y = Aᵀ[(G·g·Gᵀ)⊙(Bᵀ·d·B)]·A holds exactly
// in real arithmetic regardless of the generic construction's scaling).
// Every other F(m, r) falls back to the generic apply path, which doubles
// as the correctness oracle in the tests.

// fast reports whether the specialized kernels cover this transform.
func (t *Transform) fast() bool { return t.R == 3 && (t.M == 2 || t.M == 4) }

// input23 computes V = Bᵀ·d·B for F(2,3): d and dst are 4×4 row-major.
func input23(dst, d []float32) {
	_ = d[15]
	_ = dst[15]
	var t [16]float32
	for j := 0; j < 4; j++ {
		d0, d1, d2, d3 := d[j], d[4+j], d[8+j], d[12+j]
		t[j] = d0 - d2
		t[4+j] = d1 + d2
		t[8+j] = d2 - d1
		t[12+j] = d1 - d3
	}
	for i := 0; i < 4; i++ {
		t0, t1, t2, t3 := t[4*i], t[4*i+1], t[4*i+2], t[4*i+3]
		dst[4*i] = t0 - t2
		dst[4*i+1] = t1 + t2
		dst[4*i+2] = t2 - t1
		dst[4*i+3] = t1 - t3
	}
}

// filter23 computes U = G·g·Gᵀ for F(2,3): g is 3×3, dst is 4×4.
func filter23(dst, g []float32) {
	_ = g[8]
	_ = dst[15]
	var t [12]float32 // G·g, 4×3
	for j := 0; j < 3; j++ {
		g0, g1, g2 := g[j], g[3+j], g[6+j]
		t[j] = g0
		t[3+j] = 0.5 * (g0 + g1 + g2)
		t[6+j] = 0.5 * (g0 - g1 + g2)
		t[9+j] = g2
	}
	for i := 0; i < 4; i++ {
		t0, t1, t2 := t[3*i], t[3*i+1], t[3*i+2]
		dst[4*i] = t0
		dst[4*i+1] = 0.5 * (t0 + t1 + t2)
		dst[4*i+2] = 0.5 * (t0 - t1 + t2)
		dst[4*i+3] = t2
	}
}

// output23 computes Y = Aᵀ·Π·A for F(2,3): pi is 4×4, dst is 2×2.
func output23(dst, pi []float32) {
	_ = pi[15]
	_ = dst[3]
	var t [8]float32 // Aᵀ·Π, 2×4
	for j := 0; j < 4; j++ {
		p0, p1, p2, p3 := pi[j], pi[4+j], pi[8+j], pi[12+j]
		t[j] = p0 + p1 + p2
		t[4+j] = p1 - p2 - p3
	}
	for i := 0; i < 2; i++ {
		t0, t1, t2, t3 := t[4*i], t[4*i+1], t[4*i+2], t[4*i+3]
		dst[2*i] = t0 + t1 + t2
		dst[2*i+1] = t1 - t2 - t3
	}
}

// input43 computes V = Bᵀ·d·B for F(4,3): d and dst are 6×6 row-major.
func input43(dst, d []float32) {
	_ = d[35]
	_ = dst[35]
	var t [36]float32
	for j := 0; j < 6; j++ {
		d0, d1, d2 := d[j], d[6+j], d[12+j]
		d3, d4, d5 := d[18+j], d[24+j], d[30+j]
		t[j] = 4*d0 - 5*d2 + d4
		t[6+j] = -4*d1 - 4*d2 + d3 + d4
		t[12+j] = 4*d1 - 4*d2 - d3 + d4
		t[18+j] = -2*d1 - d2 + 2*d3 + d4
		t[24+j] = 2*d1 - d2 - 2*d3 + d4
		t[30+j] = 4*d1 - 5*d3 + d5
	}
	for i := 0; i < 6; i++ {
		t0, t1, t2 := t[6*i], t[6*i+1], t[6*i+2]
		t3, t4, t5 := t[6*i+3], t[6*i+4], t[6*i+5]
		dst[6*i] = 4*t0 - 5*t2 + t4
		dst[6*i+1] = -4*t1 - 4*t2 + t3 + t4
		dst[6*i+2] = 4*t1 - 4*t2 - t3 + t4
		dst[6*i+3] = -2*t1 - t2 + 2*t3 + t4
		dst[6*i+4] = 2*t1 - t2 - 2*t3 + t4
		dst[6*i+5] = 4*t1 - 5*t3 + t5
	}
}

// filter43 computes U = G·g·Gᵀ for F(4,3): g is 3×3, dst is 6×6.
func filter43(dst, g []float32) {
	_ = g[8]
	_ = dst[35]
	const (
		c4  = float32(1.0 / 4.0)
		c6  = float32(1.0 / 6.0)
		c12 = float32(1.0 / 12.0)
		c24 = float32(1.0 / 24.0)
	)
	var t [18]float32 // G·g, 6×3
	for j := 0; j < 3; j++ {
		g0, g1, g2 := g[j], g[3+j], g[6+j]
		t[j] = c4 * g0
		t[3+j] = -c6 * (g0 + g1 + g2)
		t[6+j] = c6 * (-g0 + g1 - g2)
		t[9+j] = c24*g0 + c12*g1 + c6*g2
		t[12+j] = c24*g0 - c12*g1 + c6*g2
		t[15+j] = g2
	}
	for i := 0; i < 6; i++ {
		t0, t1, t2 := t[3*i], t[3*i+1], t[3*i+2]
		dst[6*i] = c4 * t0
		dst[6*i+1] = -c6 * (t0 + t1 + t2)
		dst[6*i+2] = c6 * (-t0 + t1 - t2)
		dst[6*i+3] = c24*t0 + c12*t1 + c6*t2
		dst[6*i+4] = c24*t0 - c12*t1 + c6*t2
		dst[6*i+5] = t2
	}
}

// output43 computes Y = Aᵀ·Π·A for F(4,3): pi is 6×6, dst is 4×4.
func output43(dst, pi []float32) {
	_ = pi[35]
	_ = dst[15]
	var t [24]float32 // Aᵀ·Π, 4×6
	for j := 0; j < 6; j++ {
		p0, p1, p2 := pi[j], pi[6+j], pi[12+j]
		p3, p4, p5 := pi[18+j], pi[24+j], pi[30+j]
		t[j] = p0 + p1 + p2 + p3 + p4
		t[6+j] = p1 - p2 + 2*p3 - 2*p4
		t[12+j] = p1 + p2 + 4*p3 + 4*p4
		t[18+j] = p1 - p2 + 8*p3 - 8*p4 + p5
	}
	for i := 0; i < 4; i++ {
		t0, t1, t2 := t[6*i], t[6*i+1], t[6*i+2]
		t3, t4, t5 := t[6*i+3], t[6*i+4], t[6*i+5]
		dst[4*i] = t0 + t1 + t2 + t3 + t4
		dst[4*i+1] = t1 - t2 + 2*t3 - 2*t4
		dst[4*i+2] = t1 + t2 + 4*t3 + 4*t4
		dst[4*i+3] = t1 - t2 + 8*t3 - 8*t4 + t5
	}
}
