package memsim

import "math"

// Launch describes the execution configuration of one simulated kernel,
// mirroring the tunable parameters of the paper's Table 1.
type Launch struct {
	// Blocks is the number of thread blocks in the grid.
	Blocks int
	// ThreadsPerBlock is Nxt·Nyt·Nzt.
	ThreadsPerBlock int
	// SharedPerBlock is the shared memory Sb allocated to each block, in
	// floats.
	SharedPerBlock int
	// BandwidthEff in (0, 1] scales the off-chip bandwidth actually
	// attained, modeling access-pattern (layout/coalescing) efficiency.
	// Zero means 1.
	BandwidthEff float64
}

// ScheduleCost returns the unconditional launch-plus-waves term of the
// time model — LaunchOverhead + ceil(Blocks/resident)·WaveLatency — and
// the resident block count it derives from. resident is 0 when the block
// does not fit an SM at all (Time is +Inf there); seconds is 0 in that
// case. Every consumer of this scheduling floor — Time itself, the
// Explain breakdown, and the tuner's lower-bound pruning oracle (which is
// only sound while its floor never exceeds Time) — shares this one
// definition.
func (a Arch) ScheduleCost(l Launch) (seconds float64, resident int) {
	if l.Blocks < 1 || l.ThreadsPerBlock < 1 {
		return 0, 0
	}
	resident = a.ResidentBlocks(l.SharedPerBlock, l.ThreadsPerBlock)
	if resident == 0 {
		return 0, 0
	}
	waves := (l.Blocks + resident - 1) / resident
	return a.LaunchOverhead + float64(waves)*a.WaveLatency, resident
}

// Time converts measured counts plus a launch configuration into a
// deterministic simulated runtime in seconds:
//
//	t = launch + waves·waveLatency + max(t_global, t_shared, t_compute)
//
// where t_global is off-chip traffic over bandwidth, t_shared is on-chip
// traffic over aggregate shared bandwidth scaled by occupancy, and t_compute
// is flops over peak scaled by how well the launch hides latency
// (resident threads vs ThreadsForPeak per SM). The model is a roofline: its
// purpose is to make data movement and occupancy — the two quantities the
// paper tunes — determine performance.
func (a Arch) Time(c Counts, l Launch) float64 {
	sched, resident := a.ScheduleCost(l)
	if resident == 0 {
		return math.Inf(1) // empty launch, or block does not fit on an SM
	}
	concurrent := min(l.Blocks, resident)

	// Latency hiding: fraction of peak compute reachable with the resident
	// thread count.
	activePerSM := float64(concurrent*l.ThreadsPerBlock) / float64(a.NumSMs)
	hide := math.Min(1, activePerSM/float64(a.ThreadsForPeak))
	// Very small blocks also pay a scheduling-efficiency penalty.
	if l.ThreadsPerBlock < 32 {
		hide *= float64(l.ThreadsPerBlock) / 32
	}
	if hide <= 0 {
		return math.Inf(1)
	}

	eff := l.BandwidthEff
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	regReuse := a.RegisterTileReuse
	if regReuse < 1 {
		regReuse = 1
	}
	const bytesPerFloat = 4
	tGlobal := float64(c.GlobalIO()) * bytesPerFloat / (a.BandwidthGBs * 1e9 * eff)
	tShared := float64(c.SharedIO()) * bytesPerFloat /
		(a.SharedBandwidthGBs * 1e9 * regReuse * math.Max(hide, 0.25))
	tCompute := float64(c.Flops) / (a.PeakGFLOPS * 1e9 * hide)

	return sched + math.Max(tGlobal, math.Max(tShared, tCompute))
}

// GFLOPS returns the attained arithmetic rate of a measured kernel under the
// time model, the metric reported by the paper's Figures 11 and 13 and
// Table 2.
func (a Arch) GFLOPS(c Counts, l Launch) float64 {
	t := a.Time(c, l)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return float64(c.Flops) / t / 1e9
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
