// Package memsim simulates the two-level memory hierarchy of a GPU-like
// accelerator. It substitutes for the paper's physical GPUs: convolution
// implementations actually copy data between "global memory" (ordinary
// slices) and per-block "shared memory" buffers through counting helpers, so
// every off-chip float moved is accounted, and a deterministic
// roofline-plus-occupancy model converts the counts into a simulated runtime.
// The model makes "less off-chip I/O ⇒ faster" hold with realistic
// constants, which is the property the paper's evaluation depends on.
package memsim

import "fmt"

// Arch describes one simulated accelerator. Capacities are in float32
// elements, not bytes, because the pebble-game analysis counts elements.
type Arch struct {
	Name string
	// NumSMs is the number of streaming multiprocessors (compute units).
	NumSMs int
	// SharedPerSM is the shared-memory (LDS) capacity per SM in floats.
	SharedPerSM int
	// MaxBlocksPerSM limits how many thread blocks an SM can host.
	MaxBlocksPerSM int
	// MaxThreadsPerSM limits resident threads per SM.
	MaxThreadsPerSM int
	// ThreadsForPeak is how many resident threads per SM are needed to
	// reach peak arithmetic throughput (latency hiding).
	ThreadsForPeak int
	// PeakGFLOPS is the peak fp32 arithmetic rate in GFLOP/s.
	PeakGFLOPS float64
	// BandwidthGBs is the off-chip memory bandwidth in GB/s.
	BandwidthGBs float64
	// SharedBandwidthGBs is the aggregate on-chip shared-memory bandwidth.
	SharedBandwidthGBs float64
	// RegisterTileReuse is how many times each staged shared-memory operand
	// is reused from registers before being re-read (register tiling). The
	// time model divides shared traffic by it; counts stay raw so I/O
	// accounting is implementation-exact.
	RegisterTileReuse float64
	// LaunchOverhead is the fixed kernel-launch cost in seconds.
	LaunchOverhead float64
	// WaveLatency is the per-wave scheduling cost in seconds: blocks are
	// dispatched in waves of (resident blocks per device).
	WaveLatency float64
}

// Validate reports whether the architecture parameters are usable.
func (a Arch) Validate() error {
	switch {
	case a.NumSMs < 1 || a.SharedPerSM < 1:
		return fmt.Errorf("memsim: %s: SMs/shared must be positive", a.Name)
	case a.MaxBlocksPerSM < 1 || a.MaxThreadsPerSM < 1 || a.ThreadsForPeak < 1:
		return fmt.Errorf("memsim: %s: occupancy limits must be positive", a.Name)
	case a.PeakGFLOPS <= 0 || a.BandwidthGBs <= 0 || a.SharedBandwidthGBs <= 0:
		return fmt.Errorf("memsim: %s: rates must be positive", a.Name)
	case a.LaunchOverhead < 0 || a.WaveLatency < 0:
		return fmt.Errorf("memsim: %s: overheads must be nonnegative", a.Name)
	}
	return nil
}

// The architecture catalog mirrors the paper's evaluation platforms
// (Section 7): NVIDIA GTX 1080 Ti (Pascal), GTX Titan X (Maxwell), Tesla
// V100 (Volta) and AMD GFX906 (Vega 20). Shared-memory sizes, SM counts,
// peak rates and bandwidths follow the public datasheets; the latency-hiding
// and overhead constants are common-sense values that only affect absolute
// numbers, not orderings.
var (
	GTX1080Ti = Arch{
		Name: "1080Ti", NumSMs: 28, SharedPerSM: 96 * 1024 / 4,
		MaxBlocksPerSM: 32, MaxThreadsPerSM: 2048, ThreadsForPeak: 1024,
		PeakGFLOPS: 11340, BandwidthGBs: 484, SharedBandwidthGBs: 5300, RegisterTileReuse: 16,
		LaunchOverhead: 4e-6, WaveLatency: 1.2e-6,
	}
	TitanX = Arch{
		Name: "TitanX", NumSMs: 24, SharedPerSM: 96 * 1024 / 4,
		MaxBlocksPerSM: 32, MaxThreadsPerSM: 2048, ThreadsForPeak: 1024,
		PeakGFLOPS: 6144, BandwidthGBs: 336, SharedBandwidthGBs: 3400, RegisterTileReuse: 16,
		LaunchOverhead: 4e-6, WaveLatency: 1.4e-6,
	}
	V100 = Arch{
		Name: "V100", NumSMs: 80, SharedPerSM: 96 * 1024 / 4,
		MaxBlocksPerSM: 32, MaxThreadsPerSM: 2048, ThreadsForPeak: 1024,
		PeakGFLOPS: 14900, BandwidthGBs: 900, SharedBandwidthGBs: 15700, RegisterTileReuse: 16,
		LaunchOverhead: 3e-6, WaveLatency: 1.0e-6,
	}
	GFX906 = Arch{
		Name: "gfx906", NumSMs: 60, SharedPerSM: 64 * 1024 / 4,
		MaxBlocksPerSM: 16, MaxThreadsPerSM: 2560, ThreadsForPeak: 1024,
		PeakGFLOPS: 13440, BandwidthGBs: 1024, SharedBandwidthGBs: 9000, RegisterTileReuse: 16,
		LaunchOverhead: 5e-6, WaveLatency: 1.5e-6,
	}
)

// Catalog lists all built-in architectures.
var Catalog = []Arch{GTX1080Ti, TitanX, V100, GFX906}

// ByName returns the catalog architecture with the given name.
func ByName(name string) (Arch, error) {
	for _, a := range Catalog {
		if a.Name == name {
			return a, nil
		}
	}
	return Arch{}, fmt.Errorf("memsim: unknown architecture %q", name)
}

// MaxSharedPerBlock is the largest shared-memory allocation (floats) a
// single block may use while still allowing two resident blocks per SM, the
// paper's Sb <= Ssm/2 constraint from Table 1.
func (a Arch) MaxSharedPerBlock() int { return a.SharedPerSM / 2 }

// ResidentBlocks returns how many blocks fit on the whole device at once
// given each block's shared-memory footprint and thread count.
func (a Arch) ResidentBlocks(sharedPerBlock, threadsPerBlock int) int {
	perSM := a.MaxBlocksPerSM
	if sharedPerBlock > 0 {
		if byShared := a.SharedPerSM / sharedPerBlock; byShared < perSM {
			perSM = byShared
		}
	}
	if threadsPerBlock > 0 {
		if byThreads := a.MaxThreadsPerSM / threadsPerBlock; byThreads < perSM {
			perSM = byThreads
		}
	}
	if perSM < 1 {
		perSM = 0
	}
	return perSM * a.NumSMs
}
