package memsim

import (
	"fmt"
	"sync/atomic"
)

// Counter accumulates the data-movement and arithmetic counts of one kernel
// execution. All counts are in float32 elements (I/O) or floating-point
// operations (Flops). Methods are safe for concurrent use so parallel
// dataflow blocks can share one counter.
type Counter struct {
	globalLoads  atomic.Int64
	globalStores atomic.Int64
	sharedLoads  atomic.Int64
	sharedStores atomic.Int64
	flops        atomic.Int64
}

// AddGlobalLoads records n floats read from off-chip memory.
func (c *Counter) AddGlobalLoads(n int) { c.globalLoads.Add(int64(n)) }

// AddGlobalStores records n floats written to off-chip memory.
func (c *Counter) AddGlobalStores(n int) { c.globalStores.Add(int64(n)) }

// AddSharedLoads records n floats read from on-chip shared memory.
func (c *Counter) AddSharedLoads(n int) { c.sharedLoads.Add(int64(n)) }

// AddSharedStores records n floats written to on-chip shared memory.
func (c *Counter) AddSharedStores(n int) { c.sharedStores.Add(int64(n)) }

// AddFlops records n floating-point operations.
func (c *Counter) AddFlops(n int) { c.flops.Add(int64(n)) }

// GlobalLoads returns the off-chip floats read.
func (c *Counter) GlobalLoads() int64 { return c.globalLoads.Load() }

// GlobalStores returns the off-chip floats written.
func (c *Counter) GlobalStores() int64 { return c.globalStores.Load() }

// SharedLoads returns the on-chip floats read.
func (c *Counter) SharedLoads() int64 { return c.sharedLoads.Load() }

// SharedStores returns the on-chip floats written.
func (c *Counter) SharedStores() int64 { return c.sharedStores.Load() }

// GlobalIO returns the total off-chip traffic in floats — the quantity Q
// that the paper's lower bounds constrain.
func (c *Counter) GlobalIO() int64 { return c.globalLoads.Load() + c.globalStores.Load() }

// SharedIO returns the total on-chip traffic in floats.
func (c *Counter) SharedIO() int64 { return c.sharedLoads.Load() + c.sharedStores.Load() }

// Flops returns the recorded floating-point operations.
func (c *Counter) Flops() int64 { return c.flops.Load() }

// Snapshot returns a plain-value copy of the counts.
func (c *Counter) Snapshot() Counts {
	return Counts{
		GlobalLoads:  c.globalLoads.Load(),
		GlobalStores: c.globalStores.Load(),
		SharedLoads:  c.sharedLoads.Load(),
		SharedStores: c.sharedStores.Load(),
		Flops:        c.flops.Load(),
	}
}

// Counts is an immutable snapshot of a Counter.
type Counts struct {
	GlobalLoads  int64
	GlobalStores int64
	SharedLoads  int64
	SharedStores int64
	Flops        int64
}

// GlobalIO is loads plus stores to off-chip memory, in floats.
func (c Counts) GlobalIO() int64 { return c.GlobalLoads + c.GlobalStores }

// SharedIO is loads plus stores to on-chip memory, in floats.
func (c Counts) SharedIO() int64 { return c.SharedLoads + c.SharedStores }

func (c Counts) String() string {
	return fmt.Sprintf("gld=%d gst=%d sld=%d sst=%d flops=%d",
		c.GlobalLoads, c.GlobalStores, c.SharedLoads, c.SharedStores, c.Flops)
}

// Block models one thread block's shared memory: a bounded scratch buffer
// whose fills and drains are counted against a Counter. It is the only
// sanctioned way for dataflow implementations to stage off-chip data, which
// is what makes the I/O accounting faithful.
type Block struct {
	counter  *Counter
	capacity int
	used     int
	buf      []float32
}

// NewBlock allocates a shared-memory block of the given capacity (floats)
// charging I/O to counter. It panics if capacity is not positive.
func NewBlock(counter *Counter, capacity int) *Block {
	if capacity < 1 {
		panic(fmt.Sprintf("memsim: block capacity %d < 1", capacity))
	}
	return &Block{counter: counter, capacity: capacity, buf: make([]float32, capacity)}
}

// Capacity returns the block's shared-memory size in floats.
func (b *Block) Capacity() int { return b.capacity }

// Counter returns the counter this block charges its traffic to, so kernels
// can record bulk counts alongside staged copies.
func (b *Block) Counter() *Counter { return b.counter }

// Used returns how many floats are currently allocated.
func (b *Block) Used() int { return b.used }

// Alloc reserves n floats of the block's shared memory and returns the
// buffer. It panics if the block would overflow — exactly the failure a real
// kernel would hit when its tiles exceed the configured Sb.
func (b *Block) Alloc(n int) []float32 {
	if n < 0 || b.used+n > b.capacity {
		panic(fmt.Sprintf("memsim: shared memory overflow: %d + %d > %d", b.used, n, b.capacity))
	}
	buf := b.buf[b.used : b.used+n : b.used+n]
	b.used += n
	return buf
}

// Reset releases all allocations (the next kernel stage reuses the memory).
// Counted traffic is unaffected.
func (b *Block) Reset() { b.used = 0 }

// Reinit re-purposes a block for a new kernel execution: it releases all
// allocations, points the block at a (possibly different) counter and
// adjusts its capacity, growing the backing buffer only when the new
// capacity exceeds it. It exists so kernel scratch pools can recycle blocks
// across launches without reallocating their shared-memory buffers.
func (b *Block) Reinit(counter *Counter, capacity int) {
	if capacity < 1 {
		panic(fmt.Sprintf("memsim: block capacity %d < 1", capacity))
	}
	b.counter = counter
	b.capacity = capacity
	b.used = 0
	if cap(b.buf) < capacity {
		b.buf = make([]float32, capacity)
	} else {
		b.buf = b.buf[:capacity]
	}
}

// LoadGlobal copies src (off-chip) into dst (which must be shared memory
// obtained from Alloc) and counts the traffic: a global load and a shared
// store per element.
func (b *Block) LoadGlobal(dst, src []float32) {
	if len(dst) < len(src) {
		panic("memsim: LoadGlobal destination too small")
	}
	copy(dst, src)
	b.counter.AddGlobalLoads(len(src))
	b.counter.AddSharedStores(len(src))
}

// LoadGlobalStrided gathers count elements from src starting at off with the
// given stride into dst, counting global loads. It models strided/sliced
// tile loads.
func (b *Block) LoadGlobalStrided(dst, src []float32, off, stride, count int) {
	if len(dst) < count {
		panic("memsim: LoadGlobalStrided destination too small")
	}
	for i := 0; i < count; i++ {
		dst[i] = src[off+i*stride]
	}
	b.counter.AddGlobalLoads(count)
	b.counter.AddSharedStores(count)
}

// StoreGlobal copies src (shared) to dst (off-chip) and counts the traffic:
// a shared load and a global store per element.
func (b *Block) StoreGlobal(dst, src []float32) {
	if len(dst) < len(src) {
		panic("memsim: StoreGlobal destination too small")
	}
	copy(dst, src)
	b.counter.AddGlobalStores(len(src))
	b.counter.AddSharedLoads(len(src))
}
