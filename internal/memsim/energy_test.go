package memsim

import (
	"math"
	"testing"
)

func TestEnergyBreakdown(t *testing.T) {
	c := Counts{GlobalLoads: 1000, GlobalStores: 500, SharedLoads: 4000, SharedStores: 2000, Flops: 10000}
	e := DefaultEnergy.Energy(c)
	wantDRAM := 1500 * 80e-12
	wantShared := 6000 * 1.5e-12
	wantCompute := 10000 * 1e-12
	if math.Abs(e.DRAM-wantDRAM) > 1e-18 {
		t.Errorf("DRAM=%v want %v", e.DRAM, wantDRAM)
	}
	if math.Abs(e.Shared-wantShared) > 1e-18 {
		t.Errorf("Shared=%v want %v", e.Shared, wantShared)
	}
	if math.Abs(e.Compute-wantCompute) > 1e-18 {
		t.Errorf("Compute=%v want %v", e.Compute, wantCompute)
	}
	if math.Abs(e.Total()-(wantDRAM+wantShared+wantCompute)) > 1e-18 {
		t.Errorf("Total=%v", e.Total())
	}
	if s := e.DRAMShare(); s <= 0 || s >= 1 {
		t.Errorf("DRAMShare=%v out of (0,1)", s)
	}
}

func TestEnergyZeroCounts(t *testing.T) {
	e := V100.Energy(Counts{})
	if e.Total() != 0 || e.DRAMShare() != 0 {
		t.Errorf("zero counts gave energy %v share %v", e.Total(), e.DRAMShare())
	}
}

// The paper's motivating claim: for a low-reuse kernel, off-chip movement
// dominates energy; high-reuse kernels shift the balance toward compute.
func TestEnergyDataMovementDominatesLowReuse(t *testing.T) {
	// Naive-style: 2 DRAM accesses per 2 flops.
	lowReuse := Counts{GlobalLoads: 1 << 20, Flops: 1 << 20}
	if s := V100.Energy(lowReuse).DRAMShare(); s < 0.9 {
		t.Errorf("low-reuse DRAM share %v, want > 0.9", s)
	}
	// Tiled-style: 1 DRAM access per 300 flops (plus shared traffic).
	highReuse := Counts{GlobalLoads: 1 << 12, SharedLoads: 300 << 12, Flops: 300 << 12}
	if s := V100.Energy(highReuse).DRAMShare(); s > 0.5 {
		t.Errorf("high-reuse DRAM share %v, want < 0.5", s)
	}
}
