package memsim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	if len(Catalog) < 4 {
		t.Fatalf("catalog has %d architectures, want >= 4", len(Catalog))
	}
	for _, a := range Catalog {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("V100")
	if err != nil || a.Name != "V100" {
		t.Errorf("ByName(V100)=%v,%v", a, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestValidateRejectsBadArch(t *testing.T) {
	bad := V100
	bad.NumSMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SMs accepted")
	}
	bad = V100
	bad.PeakGFLOPS = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative peak accepted")
	}
}

func TestResidentBlocks(t *testing.T) {
	a := GTX1080Ti
	// Shared-limited: blocks using half the SM's shared memory -> 2 per SM.
	if got := a.ResidentBlocks(a.SharedPerSM/2, 64); got != 2*a.NumSMs {
		t.Errorf("shared-limited residency=%d want %d", got, 2*a.NumSMs)
	}
	// Thread-limited.
	if got := a.ResidentBlocks(16, 1024); got != (a.MaxThreadsPerSM/1024)*a.NumSMs {
		t.Errorf("thread-limited residency=%d", got)
	}
	// Oversized block fits nowhere.
	if got := a.ResidentBlocks(a.SharedPerSM+1, 64); got != 0 {
		t.Errorf("oversized block residency=%d want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddGlobalLoads(1)
				c.AddFlops(2)
			}
		}()
	}
	wg.Wait()
	if c.GlobalLoads() != 8000 || c.Flops() != 16000 {
		t.Errorf("lost updates: loads=%d flops=%d", c.GlobalLoads(), c.Flops())
	}
}

func TestBlockAccounting(t *testing.T) {
	var c Counter
	b := NewBlock(&c, 64)
	tile := b.Alloc(16)
	src := make([]float32, 16)
	for i := range src {
		src[i] = float32(i)
	}
	b.LoadGlobal(tile, src)
	if c.GlobalLoads() != 16 || c.SharedStores() != 16 {
		t.Errorf("load counts: %v", c.Snapshot())
	}
	if tile[5] != 5 {
		t.Error("data not copied")
	}
	dst := make([]float32, 16)
	b.StoreGlobal(dst, tile)
	if c.GlobalStores() != 16 || c.SharedLoads() != 16 {
		t.Errorf("store counts: %v", c.Snapshot())
	}
	if dst[7] != 7 {
		t.Error("data not stored")
	}
	if c.GlobalIO() != 32 {
		t.Errorf("GlobalIO=%d want 32", c.GlobalIO())
	}
}

func TestBlockStrided(t *testing.T) {
	var c Counter
	b := NewBlock(&c, 8)
	dst := b.Alloc(3)
	src := []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b.LoadGlobalStrided(dst, src, 1, 3, 3)
	for i, v := range []float32{1, 4, 7} {
		if dst[i] != v {
			t.Errorf("dst[%d]=%v want %v", i, dst[i], v)
		}
	}
	if c.GlobalLoads() != 3 {
		t.Errorf("strided loads=%d want 3", c.GlobalLoads())
	}
}

func TestBlockOverflowPanics(t *testing.T) {
	var c Counter
	b := NewBlock(&c, 8)
	b.Alloc(6)
	defer func() {
		if recover() == nil {
			t.Error("expected shared-memory overflow panic")
		}
	}()
	b.Alloc(3)
}

func TestBlockReset(t *testing.T) {
	var c Counter
	b := NewBlock(&c, 8)
	b.Alloc(8)
	b.Reset()
	if b.Used() != 0 {
		t.Errorf("Used=%d after reset", b.Used())
	}
	b.Alloc(8) // must not panic
}

func TestTimeRoofline(t *testing.T) {
	a := V100
	l := Launch{Blocks: 1000, ThreadsPerBlock: 256, SharedPerBlock: 4096}
	ioBound := Counts{GlobalLoads: 1 << 30, Flops: 1}
	computeBound := Counts{GlobalLoads: 1, Flops: 1 << 40}
	ti := a.Time(ioBound, l)
	tc := a.Time(computeBound, l)
	// 2^30 floats = 4 GiB over 900 GB/s ~ 4.8ms.
	if ti < 3e-3 || ti > 10e-3 {
		t.Errorf("io-bound time %v out of range", ti)
	}
	// 2^40 flops at ~14.9 TFLOPS ~ 74ms.
	if tc < 50e-3 || tc > 200e-3 {
		t.Errorf("compute-bound time %v out of range", tc)
	}
}

func TestTimeMonotoneInIO(t *testing.T) {
	a := GTX1080Ti
	l := Launch{Blocks: 512, ThreadsPerBlock: 128, SharedPerBlock: 2048}
	f := func(n1, n2 uint32) bool {
		lo, hi := int64(n1%1000000), int64(n2%1000000)
		if lo > hi {
			lo, hi = hi, lo
		}
		base := Counts{Flops: 1000}
		cLo, cHi := base, base
		cLo.GlobalLoads = lo
		cHi.GlobalLoads = hi
		return a.Time(cLo, l) <= a.Time(cHi, l)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimePenalizesBadLaunch(t *testing.T) {
	a := V100
	c := Counts{GlobalLoads: 1 << 20, Flops: 1 << 28}
	good := Launch{Blocks: 2048, ThreadsPerBlock: 256, SharedPerBlock: 4096}
	oneBlock := Launch{Blocks: 1, ThreadsPerBlock: 256, SharedPerBlock: 4096}
	tinyThreads := Launch{Blocks: 2048, ThreadsPerBlock: 4, SharedPerBlock: 4096}
	if a.Time(c, oneBlock) <= a.Time(c, good) {
		t.Error("single-block launch not slower than saturating launch")
	}
	if a.Time(c, tinyThreads) <= a.Time(c, good) {
		t.Error("4-thread blocks not slower than 256-thread blocks")
	}
	huge := Launch{Blocks: 64, ThreadsPerBlock: 256, SharedPerBlock: a.SharedPerSM + 1}
	if !math.IsInf(a.Time(c, huge), 1) {
		t.Error("unschedulable block got finite time")
	}
	if !math.IsInf(a.Time(c, Launch{}), 1) {
		t.Error("empty launch got finite time")
	}
}

func TestGFLOPS(t *testing.T) {
	a := V100
	l := Launch{Blocks: 4096, ThreadsPerBlock: 256, SharedPerBlock: 4096}
	c := Counts{GlobalLoads: 1 << 20, Flops: 1 << 32}
	g := a.GFLOPS(c, l)
	if g <= 0 || g > a.PeakGFLOPS {
		t.Errorf("GFLOPS=%v outside (0, peak]", g)
	}
	if got := a.GFLOPS(c, Launch{}); got != 0 {
		t.Errorf("GFLOPS of invalid launch = %v want 0", got)
	}
}

func TestMaxSharedPerBlock(t *testing.T) {
	for _, a := range Catalog {
		if a.MaxSharedPerBlock() != a.SharedPerSM/2 {
			t.Errorf("%s: Sb limit %d != Ssm/2", a.Name, a.MaxSharedPerBlock())
		}
	}
}
