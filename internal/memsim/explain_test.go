package memsim

import (
	"math"
	"strings"
	"testing"
)

func TestExplainIdentifiesBottleneck(t *testing.T) {
	a := V100
	l := Launch{Blocks: 4096, ThreadsPerBlock: 256, SharedPerBlock: 4096}
	cases := []struct {
		name   string
		counts Counts
		want   Bottleneck
	}{
		{"global", Counts{GlobalLoads: 1 << 32, Flops: 1}, GlobalBound},
		{"compute", Counts{GlobalLoads: 1, Flops: 1 << 44}, ComputeBound},
		{"shared", Counts{SharedLoads: 1 << 44, Flops: 1}, SharedBound},
		{"launch", Counts{GlobalLoads: 1, Flops: 1}, LaunchBound},
	}
	for _, c := range cases {
		b := a.Explain(c.counts, l)
		if b.Bound != c.want {
			t.Errorf("%s: bound=%s want %s (%v)", c.name, b.Bound, c.want, b)
		}
		if b.Total <= 0 {
			t.Errorf("%s: nonpositive total", c.name)
		}
	}
}

func TestExplainAgreesWithTime(t *testing.T) {
	a := GTX1080Ti
	l := Launch{Blocks: 777, ThreadsPerBlock: 128, SharedPerBlock: 8192, BandwidthEff: 0.85}
	c := Counts{GlobalLoads: 5 << 20, GlobalStores: 1 << 18, SharedLoads: 9 << 22, Flops: 3 << 28}
	b := a.Explain(c, l)
	if d := math.Abs(b.Total - a.Time(c, l)); d > 1e-15 {
		t.Errorf("Explain total %v != Time %v", b.Total, a.Time(c, l))
	}
	if b.Occupancy <= 0 || b.Occupancy > 1 {
		t.Errorf("occupancy %v out of range", b.Occupancy)
	}
}

func TestExplainInvalidLaunch(t *testing.T) {
	a := V100
	b := a.Explain(Counts{Flops: 1}, Launch{})
	if b.Bound != Invalid || !math.IsInf(b.Total, 1) {
		t.Errorf("invalid launch not flagged: %v", b)
	}
	huge := Launch{Blocks: 4, ThreadsPerBlock: 64, SharedPerBlock: a.SharedPerSM * 2}
	if got := a.Explain(Counts{Flops: 1}, huge); got.Bound != Invalid {
		t.Errorf("unschedulable launch not flagged: %v", got)
	}
}

func TestBreakdownString(t *testing.T) {
	a := V100
	b := a.Explain(Counts{GlobalLoads: 1 << 24, Flops: 1 << 30},
		Launch{Blocks: 2048, ThreadsPerBlock: 256, SharedPerBlock: 2048})
	s := b.String()
	if !strings.Contains(s, "bound") || !strings.Contains(s, "occupancy") {
		t.Errorf("uninformative string: %q", s)
	}
}
