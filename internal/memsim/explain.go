package memsim

import (
	"fmt"
	"math"
)

// Bottleneck names the roofline term that dominated a simulated kernel.
type Bottleneck string

// The possible dominating terms of the time model.
const (
	GlobalBound  Bottleneck = "global-memory"
	SharedBound  Bottleneck = "shared-memory"
	ComputeBound Bottleneck = "compute"
	LaunchBound  Bottleneck = "launch-overhead"
	Invalid      Bottleneck = "invalid-launch"
)

// Breakdown explains where a kernel's simulated time went.
type Breakdown struct {
	Total    float64 // seconds
	Global   float64 // off-chip transfer term
	Shared   float64 // on-chip transfer term
	Compute  float64 // arithmetic term
	Overhead float64 // launch + wave scheduling
	Bound    Bottleneck
	// Occupancy is the attained latency-hiding fraction in [0, 1].
	Occupancy float64
}

func (b Breakdown) String() string {
	return fmt.Sprintf("%.3gs total: %s-bound (global %.3gs, shared %.3gs, compute %.3gs, overhead %.3gs, occupancy %.0f%%)",
		b.Total, b.Bound, b.Global, b.Shared, b.Compute, b.Overhead, 100*b.Occupancy)
}

// Explain recomputes the time model's individual terms for a measured
// kernel, identifying the binding constraint — the diagnostic behind "why is
// this configuration slow".
func (a Arch) Explain(c Counts, l Launch) Breakdown {
	sched, resident := a.ScheduleCost(l)
	if resident == 0 {
		return Breakdown{Total: math.Inf(1), Bound: Invalid}
	}
	concurrent := min(l.Blocks, resident)
	activePerSM := float64(concurrent*l.ThreadsPerBlock) / float64(a.NumSMs)
	hide := math.Min(1, activePerSM/float64(a.ThreadsForPeak))
	if l.ThreadsPerBlock < 32 {
		hide *= float64(l.ThreadsPerBlock) / 32
	}
	eff := l.BandwidthEff
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	regReuse := a.RegisterTileReuse
	if regReuse < 1 {
		regReuse = 1
	}
	const bytesPerFloat = 4
	b := Breakdown{Occupancy: hide}
	b.Global = float64(c.GlobalIO()) * bytesPerFloat / (a.BandwidthGBs * 1e9 * eff)
	b.Shared = float64(c.SharedIO()) * bytesPerFloat /
		(a.SharedBandwidthGBs * 1e9 * regReuse * math.Max(hide, 0.25))
	if hide > 0 {
		b.Compute = float64(c.Flops) / (a.PeakGFLOPS * 1e9 * hide)
	} else {
		b.Compute = math.Inf(1)
	}
	b.Overhead = sched
	b.Total = b.Overhead + math.Max(b.Global, math.Max(b.Shared, b.Compute))

	b.Bound = ComputeBound
	top := b.Compute
	if b.Global > top {
		b.Bound, top = GlobalBound, b.Global
	}
	if b.Shared > top {
		b.Bound, top = SharedBound, b.Shared
	}
	if b.Overhead > top {
		b.Bound = LaunchBound
	}
	return b
}
