package memsim

// The paper's motivation (Section 1) is that "frequent data movement in the
// memory hierarchy commonly dominates the energy consumption in convolution
// operations". This file makes that measurable: an energy model over the
// same counts the time model consumes, with per-access costs in the ratios
// the accelerator literature reports (a DRAM access costs ~two orders of
// magnitude more than an on-chip access, which costs more than an FMA).

// EnergyModel holds per-operation energy costs in picojoules.
type EnergyModel struct {
	// DRAMPerFloat is the off-chip access cost (pJ per 4-byte element).
	DRAMPerFloat float64
	// SharedPerFloat is the on-chip shared-memory access cost.
	SharedPerFloat float64
	// PerFlop is the arithmetic cost.
	PerFlop float64
}

// DefaultEnergy reflects commonly cited 28-16nm figures: ~80 pJ per DRAM
// float (20 pJ/byte), ~1.5 pJ per shared-memory float, ~1 pJ per flop.
var DefaultEnergy = EnergyModel{DRAMPerFloat: 80, SharedPerFloat: 1.5, PerFlop: 1}

// EnergyBreakdown splits a kernel's energy by source, in joules.
type EnergyBreakdown struct {
	DRAM    float64
	Shared  float64
	Compute float64
}

// Total is the summed energy in joules.
func (e EnergyBreakdown) Total() float64 { return e.DRAM + e.Shared + e.Compute }

// DRAMShare is the fraction of energy spent on off-chip movement — the
// quantity the paper's dataflow designs minimize.
func (e EnergyBreakdown) DRAMShare() float64 {
	t := e.Total()
	if t == 0 {
		return 0
	}
	return e.DRAM / t
}

// Energy evaluates the model on measured counts.
func (m EnergyModel) Energy(c Counts) EnergyBreakdown {
	const pJ = 1e-12
	return EnergyBreakdown{
		DRAM:    float64(c.GlobalIO()) * m.DRAMPerFloat * pJ,
		Shared:  float64(c.SharedIO()) * m.SharedPerFloat * pJ,
		Compute: float64(c.Flops) * m.PerFlop * pJ,
	}
}

// Energy applies the default model; a convenience for callers that do not
// tune the coefficients.
func (a Arch) Energy(c Counts) EnergyBreakdown { return DefaultEnergy.Energy(c) }
