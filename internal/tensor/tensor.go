// Package tensor provides the dense float32 tensors used by every
// convolution implementation in this repository. Tensors are flat slices
// with explicit dimensions and a memory layout, mirroring how convolution
// data is stored in off-chip memory on an accelerator.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Layout describes the memory order of a 4-D image tensor. The paper's
// search domain (Table 1) includes the layout as a tunable parameter with
// choices CHW, CWH and HWC (per image; batch is always outermost).
type Layout int

const (
	// NCHW stores images as [batch][channel][height][width] (the default).
	NCHW Layout = iota
	// NCWH stores images as [batch][channel][width][height].
	NCWH
	// NHWC stores images as [batch][height][width][channel].
	NHWC
)

// Layouts lists every supported layout, in the order used by the tuner.
var Layouts = []Layout{NCHW, NCWH, NHWC}

func (l Layout) String() string {
	switch l {
	case NCHW:
		return "CHW"
	case NCWH:
		return "CWH"
	case NHWC:
		return "HWC"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// Tensor is a dense 4-D tensor of shape (N, C, H, W) with configurable
// memory layout. A Tensor with N==1 models a single image; kernels are
// stored as (Cout, Cin, Hker, Wker) in NCHW order.
type Tensor struct {
	N, C, H, W int
	Lay        Layout
	Data       []float32
}

// New allocates a zeroed tensor.
func New(n, c, h, w int) *Tensor {
	return NewWithLayout(n, c, h, w, NCHW)
}

// NewWithLayout allocates a zeroed tensor with the given layout.
func NewWithLayout(n, c, h, w int, lay Layout) *Tensor {
	if n < 1 || c < 1 || h < 1 || w < 1 {
		panic(fmt.Sprintf("tensor: invalid dims (%d,%d,%d,%d)", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Lay: lay, Data: make([]float32, n*c*h*w)}
}

// Len is the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Index converts (n, c, h, w) coordinates to a flat offset for the tensor's
// layout.
func (t *Tensor) Index(n, c, h, w int) int {
	switch t.Lay {
	case NCHW:
		return ((n*t.C+c)*t.H+h)*t.W + w
	case NCWH:
		return ((n*t.C+c)*t.W+w)*t.H + h
	case NHWC:
		return ((n*t.H+h)*t.W+w)*t.C + c
	}
	panic("tensor: unknown layout")
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 { return t.Data[t.Index(n, c, h, w)] }

// Set stores v at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) { t.Data[t.Index(n, c, h, w)] = v }

// AtPadded returns the element at (n, c, h, w) where h and w may fall outside
// the tensor by up to the zero-padding halo; out-of-range reads return 0.
func (t *Tensor) AtPadded(n, c, h, w int) float32 {
	if h < 0 || h >= t.H || w < 0 || w >= t.W {
		return 0
	}
	return t.Data[t.Index(n, c, h, w)]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{N: t.N, C: t.C, H: t.H, W: t.W, Lay: t.Lay, Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// ToLayout returns a copy of the tensor converted to the target layout.
// Converting to the current layout returns a clone.
func (t *Tensor) ToLayout(lay Layout) *Tensor {
	if lay == t.Lay {
		return t.Clone()
	}
	out := NewWithLayout(t.N, t.C, t.H, t.W, lay)
	for n := 0; n < t.N; n++ {
		for c := 0; c < t.C; c++ {
			for h := 0; h < t.H; h++ {
				for w := 0; w < t.W; w++ {
					out.Set(n, c, h, w, t.At(n, c, h, w))
				}
			}
		}
	}
	return out
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-1, 1) derived from seed.
func (t *Tensor) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
}

// FillSequential fills the tensor with 0, 1, 2, ... scaled by 1/Len, which
// gives distinct but bounded values that are convenient in tests.
func (t *Tensor) FillSequential() {
	scale := 1 / float32(len(t.Data))
	for i := range t.Data {
		t.Data[i] = float32(i) * scale
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two tensors of identical dimensions, comparing by coordinates so layouts
// may differ. It panics if dimensions mismatch.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.N != b.N || a.C != b.C || a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("tensor: dim mismatch (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.N, a.C, a.H, a.W, b.N, b.C, b.H, b.W))
	}
	var maxd float64
	for n := 0; n < a.N; n++ {
		for c := 0; c < a.C; c++ {
			for h := 0; h < a.H; h++ {
				for w := 0; w < a.W; w++ {
					d := math.Abs(float64(a.At(n, c, h, w)) - float64(b.At(n, c, h, w)))
					if d > maxd {
						maxd = d
					}
				}
			}
		}
	}
	return maxd
}

// AllClose reports whether two tensors agree element-wise within tol.
func AllClose(a, b *Tensor, tol float64) bool { return MaxAbsDiff(a, b) <= tol }
