package tensor

import (
	"testing"
	"testing/quick"
)

func TestIndexRoundTrip(t *testing.T) {
	for _, lay := range Layouts {
		tt := NewWithLayout(2, 3, 4, 5, lay)
		seen := make(map[int]bool)
		for n := 0; n < 2; n++ {
			for c := 0; c < 3; c++ {
				for h := 0; h < 4; h++ {
					for w := 0; w < 5; w++ {
						idx := tt.Index(n, c, h, w)
						if idx < 0 || idx >= tt.Len() {
							t.Fatalf("%v: index out of range: %d", lay, idx)
						}
						if seen[idx] {
							t.Fatalf("%v: duplicate index %d", lay, idx)
						}
						seen[idx] = true
					}
				}
			}
		}
		if len(seen) != tt.Len() {
			t.Fatalf("%v: index not a bijection: %d of %d", lay, len(seen), tt.Len())
		}
	}
}

func TestSetAt(t *testing.T) {
	tt := New(1, 2, 3, 4)
	tt.Set(0, 1, 2, 3, 42)
	if got := tt.At(0, 1, 2, 3); got != 42 {
		t.Errorf("At=%v want 42", got)
	}
}

func TestAtPadded(t *testing.T) {
	tt := New(1, 1, 2, 2)
	tt.Fill(7)
	if got := tt.AtPadded(0, 0, -1, 0); got != 0 {
		t.Errorf("padded read above = %v want 0", got)
	}
	if got := tt.AtPadded(0, 0, 0, 2); got != 0 {
		t.Errorf("padded read right = %v want 0", got)
	}
	if got := tt.AtPadded(0, 0, 1, 1); got != 7 {
		t.Errorf("in-range padded read = %v want 7", got)
	}
}

func TestToLayoutPreservesValues(t *testing.T) {
	src := New(2, 3, 5, 4)
	src.FillRandom(1)
	for _, lay := range Layouts {
		dst := src.ToLayout(lay)
		if dst.Lay != lay {
			t.Fatalf("layout not applied: %v", dst.Lay)
		}
		if !AllClose(src, dst, 0) {
			t.Fatalf("conversion to %v changed values", lay)
		}
		back := dst.ToLayout(NCHW)
		if !AllClose(src, back, 0) {
			t.Fatalf("round trip through %v changed values", lay)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(1, 1, 2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Set(0, 0, 0, 0, 9)
	if a.At(0, 0, 0, 0) != 1 {
		t.Error("clone shares storage with original")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(1, 2, 3, 4)
	a.FillRandom(7)
	b.FillRandom(7)
	if !AllClose(a, b, 0) {
		t.Error("same seed produced different tensors")
	}
	c := New(1, 2, 3, 4)
	c.FillRandom(8)
	if AllClose(a, c, 0) {
		t.Error("different seeds produced identical tensors")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(1, 1, 2, 2)
	b := New(1, 1, 2, 2)
	b.Set(0, 0, 1, 1, -3)
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Errorf("MaxAbsDiff=%v want 3", got)
	}
}

func TestMaxAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dim mismatch")
		}
	}()
	MaxAbsDiff(New(1, 1, 2, 2), New(1, 1, 2, 3))
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero dim")
		}
	}()
	New(1, 0, 2, 2)
}

// Property: for any coordinates and any layout, Set followed by At returns
// the stored value.
func TestSetAtProperty(t *testing.T) {
	f := func(n, c, h, w uint8, v float32, layIdx uint8) bool {
		tt := NewWithLayout(3, 4, 5, 6, Layouts[int(layIdx)%len(Layouts)])
		ni, ci, hi, wi := int(n)%3, int(c)%4, int(h)%5, int(w)%6
		tt.Set(ni, ci, hi, wi, v)
		return tt.At(ni, ci, hi, wi) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutString(t *testing.T) {
	if NCHW.String() != "CHW" || NCWH.String() != "CWH" || NHWC.String() != "HWC" {
		t.Error("unexpected layout names")
	}
	if Layout(99).String() == "" {
		t.Error("unknown layout should still stringify")
	}
}
