package tuned

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/chaos"
	"repro/internal/memsim"
	"repro/internal/models"
	"repro/internal/shapes"
)

// The end-to-end suite: the daemon's three load-bearing properties —
// cross-client dedup, cross-network transfer, restart replay — proved over
// real HTTP against a live handler, under -race in CI.

var testArch = memsim.V100

// tinyOpts mirrors the engine tests' small-but-real search options.
func tinyOpts(budget int, seed int64) autotune.Options {
	return autotune.Options{Budget: budget, BatchSize: 4, Walkers: 4, WalkSteps: 12, Patience: 0, Seed: seed}
}

// newTestServer boots a Server behind httptest and arranges teardown.
// With TUNED_E2E_CHAOS set to a fault rate in (0, 1), every server of the
// suite runs under seeded fault injection with the retry pipeline armed —
// the CI chaos job sets it to prove the whole e2e contract (bit-identical
// verdicts, exact measurement counts) holds on a flaky backend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg = applyE2EEnv(t, cfg)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// applyE2EEnv applies the CI environment gates to one server config — the
// shared half of newTestServer, reused by the cluster harness so every
// replica of a cluster test runs under the same chaos/degraded regime.
func applyE2EEnv(t *testing.T, cfg Config) Config {
	t.Helper()
	if env := os.Getenv("TUNED_E2E_CHAOS"); env != "" && !cfg.Chaos.Enabled() {
		rate, err := strconv.ParseFloat(env, 64)
		if err != nil || rate <= 0 || rate >= 1 {
			t.Fatalf("TUNED_E2E_CHAOS=%q: want a rate in (0, 1)", env)
		}
		cfg.Chaos = chaos.Config{Seed: 1, FailRate: rate, MaxConsecutive: 2}
		if cfg.Tune.Retry.MaxAttempts <= cfg.Chaos.MaxConsecutive {
			cfg.Tune.Retry.MaxAttempts = cfg.Chaos.MaxConsecutive + 2
		}
	}
	// With TUNED_E2E_DEGRADED set, every server of the suite additionally
	// runs with the degradation machinery armed but untriggered: analytic
	// overflow on and a breaker that cannot realistically trip. The CI
	// degraded-mode job sets it to prove armed-but-idle machinery is
	// transparent — every e2e property (bit-identical verdicts, exact
	// measurement counts, tier "measured" everywhere) must hold unchanged.
	// The one intentional behavior change is admission overflow answering
	// 200 analytic instead of 429; TestServerAdmissionControl branches on
	// the gate for exactly that.
	if degradedE2E() && !cfg.AnalyticOverflow && !cfg.Breaker.Enabled() {
		cfg.AnalyticOverflow = true
		cfg.Breaker = autotune.BreakerConfig{
			Threshold: 0.999, Window: 1 << 16, MinSamples: 1 << 16, Cooldown: time.Hour}
	}
	return cfg
}

// degradedE2E reports whether the suite runs under the CI degraded-mode
// gate (armed-but-untriggered degradation on every server).
func degradedE2E() bool { return os.Getenv("TUNED_E2E_DEGRADED") != "" }

// postTune POSTs a description and decodes the response, reporting the
// HTTP status alongside.
func postTune(t *testing.T, url string, desc repro.NetworkDescription) (repro.TuneResponse, int) {
	t.Helper()
	body, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr repro.TuneResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return tr, resp.StatusCode
}

// getHealth fetches and decodes /healthz.
func getHealth(t *testing.T, url string) Health {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// countMeasurements runs TuneNetwork directly with an instrumented
// OnMeasure, returning the verdicts and the fresh-measurement count — the
// ground truth the server's counters are compared against.
func countMeasurements(t *testing.T, layers []autotune.NetworkLayer, opts autotune.NetworkOptions) ([]autotune.LayerVerdict, int64) {
	t.Helper()
	var n atomic.Int64
	opts.Tune.OnMeasure = func() { n.Add(1) }
	verdicts, err := autotune.TuneNetwork(testArch, layers, autotune.NewCache(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts, n.Load()
}

// K concurrent clients POST the same ResNet-18: every response must be
// bit-identical to a direct in-process TuneNetwork call with the same
// options, and the server must have measured exactly as many fresh
// configurations as that single direct call — the batcher merge and the
// cache's singleflight together collapse all K requests onto one search
// per layer family member, no matter how the requests interleave.
func TestServerConcurrentIdenticalRequests(t *testing.T) {
	const clients = 6
	opts := tinyOpts(16, 7)
	srv, ts := newTestServer(t, Config{
		Tune: opts, Winograd: true, Warm: true, BatchWindow: 100 * time.Millisecond,
	})

	layers := models.ResNet18().NetworkLayers()
	desc := repro.DescribeNetwork(testArch.Name, layers)

	var wg sync.WaitGroup
	responses := make([]repro.TuneResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, status := postTune(t, ts.URL, desc)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d", i, status)
				return
			}
			responses[i] = tr
		}(i)
	}
	wg.Wait()

	// The Shared flag reports whether a verdict ran its own search here,
	// which legitimately depends on how the requests interleaved; every
	// other byte of every response must agree.
	normalize := func(tr repro.TuneResponse) repro.TuneResponse {
		out := tr
		out.Verdicts = append([]repro.VerdictDescription(nil), tr.Verdicts...)
		for i := range out.Verdicts {
			out.Verdicts[i].Shared = false
		}
		return out
	}
	for i := 1; i < clients; i++ {
		if !reflect.DeepEqual(normalize(responses[i]), normalize(responses[0])) {
			t.Fatalf("client %d response differs from client 0", i)
		}
	}

	direct, directCount := countMeasurements(t, layers,
		autotune.NetworkOptions{Tune: opts, Winograd: true, Warm: true})
	want := repro.DescribeVerdicts(direct)
	for i, v := range responses[0].Verdicts {
		got := v
		got.Shared = want[i].Shared // sharing depends on request interleaving
		if got != want[i] {
			t.Errorf("verdict %d: server %+v != direct %+v", i, v, want[i])
		}
	}
	if got := srv.Measurements(); got != directCount {
		t.Errorf("server measured %d fresh configs across %d clients, direct run measured %d",
			got, clients, directCount)
	}

	h := getHealth(t, ts.URL)
	if h.Requests != clients || h.Measurements != directCount || !h.OK {
		t.Errorf("healthz = %+v, want %d requests, %d measurements, ok", h, clients, directCount)
	}
}

// netStem is the layer the two distinct test networks share.
func netStem() autotune.NetworkLayer {
	return autotune.NetworkLayer{Name: "stem", Repeat: 1, Shape: shapes.ConvShape{
		Batch: 1, Cin: 16, Cout: 16, Hin: 28, Win: 28, Hker: 3, Wker: 3, Strid: 1, Pad: 1}}
}

func netA() []autotune.NetworkLayer {
	return []autotune.NetworkLayer{
		netStem(),
		{Name: "a1", Repeat: 2, Shape: shapes.ConvShape{
			Batch: 1, Cin: 32, Cout: 32, Hin: 14, Win: 14, Hker: 3, Wker: 3, Strid: 1, Pad: 1}},
	}
}

func netB() []autotune.NetworkLayer {
	return []autotune.NetworkLayer{
		netStem(),
		{Name: "b1", Repeat: 1, Shape: shapes.ConvShape{
			Batch: 1, Cin: 64, Cout: 64, Hin: 7, Win: 7, Hker: 3, Wker: 3, Strid: 1, Pad: 1}},
	}
}

// Two distinct networks POSTed concurrently merge into one transfer pool:
// the total fresh measurements come in under two cold sweeps (their shared
// stem tunes once, not twice), and each network's tuned end-to-end time is
// no worse than its own cold sweep — transfer only adds information.
func TestServerDistinctNetworksShareTransferPool(t *testing.T) {
	opts := tinyOpts(16, 11)
	srv, ts := newTestServer(t, Config{
		Tune: opts, Winograd: true, Warm: true, BatchWindow: 300 * time.Millisecond,
	})

	cold := autotune.NetworkOptions{Tune: opts, Winograd: true}
	coldA, countA := countMeasurements(t, netA(), cold)
	coldB, countB := countMeasurements(t, netB(), cold)

	var wg sync.WaitGroup
	var respA, respB repro.TuneResponse
	wg.Add(2)
	go func() {
		defer wg.Done()
		tr, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, netA()))
		if status != http.StatusOK {
			t.Errorf("net A: status %d", status)
		}
		respA = tr
	}()
	go func() {
		defer wg.Done()
		tr, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, netB()))
		if status != http.StatusOK {
			t.Errorf("net B: status %d", status)
		}
		respB = tr
	}()
	wg.Wait()

	if got, coldTotal := srv.Measurements(), countA+countB; got >= coldTotal {
		t.Errorf("merged batch measured %d fresh configs, want fewer than the two cold sweeps' %d", got, coldTotal)
	}
	const tol = 1 + 1e-9
	if ca := autotune.NetworkSeconds(coldA); respA.NetworkSeconds > ca*tol {
		t.Errorf("net A tuned in batch: %.6g s/inference, worse than cold %.6g", respA.NetworkSeconds, ca)
	}
	if cb := autotune.NetworkSeconds(coldB); respB.NetworkSeconds > cb*tol {
		t.Errorf("net B tuned in batch: %.6g s/inference, worse than cold %.6g", respB.NetworkSeconds, cb)
	}
}

// Shutdown flushes the cache with engine state; a rebooted server answers
// the same request from the replayed state with zero fresh measurements,
// every verdict marked shared and bit-identical to the first run.
func TestServerRestartReplaysWithoutMeasuring(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuned.cache")
	opts := tinyOpts(12, 5)
	layers := netA()
	desc := repro.DescribeNetwork(testArch.Name, layers)

	srv1, ts1 := newTestServer(t, Config{
		Tune: opts, Winograd: true, Warm: true, Resume: true, StatePath: state,
	})
	first, status := postTune(t, ts1.URL, desc)
	if status != http.StatusOK {
		t.Fatalf("first boot: status %d", status)
	}
	if srv1.Measurements() == 0 {
		t.Fatal("first boot measured nothing; the replay proof below would be vacuous")
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("flush state: %v", err)
	}

	// A closed server refuses new work.
	if _, status := postTune(t, ts1.URL, desc); status != http.StatusServiceUnavailable {
		t.Errorf("closed server: status %d, want 503", status)
	}

	srv2, ts2 := newTestServer(t, Config{
		Tune: opts, Winograd: true, Warm: true, Resume: true, StatePath: state,
	})
	second, status := postTune(t, ts2.URL, desc)
	if status != http.StatusOK {
		t.Fatalf("second boot: status %d", status)
	}
	if got := srv2.Measurements(); got != 0 {
		t.Errorf("rebooted server measured %d fresh configs, want 0 (pure replay)", got)
	}
	for i, v := range second.Verdicts {
		if !v.Shared {
			t.Errorf("verdict %d (%s) not marked shared after restart", i, v.Layer)
		}
		want := first.Verdicts[i]
		want.Shared = v.Shared // first boot tuned fresh; sharing differs by design
		if v != want {
			t.Errorf("verdict %d changed across restart: %+v != %+v", i, v, want)
		}
	}
	if second.NetworkSeconds != first.NetworkSeconds {
		t.Errorf("network seconds changed across restart: %g != %g",
			second.NetworkSeconds, first.NetworkSeconds)
	}
}

// Admission control: with the in-flight measurement budget exactly
// consumed by a slow request, a concurrent distinct request is shed with
// 429 + Retry-After, and admitted once the budget frees up.
func TestServerAdmissionControl(t *testing.T) {
	opts := tinyOpts(8, 3)
	opts.Workers = 1
	opts.MeasureLatency = 20 * time.Millisecond
	_, ts := newTestServer(t, Config{
		Tune: opts, Winograd: false, MaxInflight: 8,
	})

	descA := repro.DescribeNetwork(testArch.Name, netA()[:1])
	descB := repro.DescribeNetwork(testArch.Name, netB()[1:])

	done := make(chan int, 1)
	go func() {
		_, status := postTune(t, ts.URL, descA)
		done <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for getHealth(t, ts.URL).InflightBudget == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request A never showed up in the in-flight budget")
		}
		time.Sleep(time.Millisecond)
	}

	if degradedE2E() {
		// Under the degraded-mode gate overload is served, not shed: the
		// overflow request gets an instant analytic 200 and nothing is
		// ever rejected.
		tr, status := postTune(t, ts.URL, descB)
		if status != http.StatusOK || tr.Tier != "analytic" {
			t.Fatalf("overflow under degraded gate: status %d tier %q, want 200 analytic", status, tr.Tier)
		}
		if status := <-done; status != http.StatusOK {
			t.Fatalf("request A: status %d", status)
		}
		if h := getHealth(t, ts.URL); h.Rejected != 0 {
			t.Errorf("healthz = %+v, want zero rejections under AnalyticOverflow", h)
		}
		return
	}

	body, _ := json.Marshal(descB)
	resp, err := http.Post(ts.URL+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request B while budget exhausted: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want an integer >= 1", ra)
	}

	if status := <-done; status != http.StatusOK {
		t.Fatalf("request A: status %d", status)
	}
	if _, status := postTune(t, ts.URL, descB); status != http.StatusOK {
		t.Fatalf("request B after budget freed: status %d, want 200", status)
	}
	if h := getHealth(t, ts.URL); h.Rejected != 1 || h.InflightBudget != 0 {
		t.Errorf("healthz = %+v, want exactly 1 rejection and an empty budget", h)
	}
}

// Cached keys cost no admission budget: a request the cache already
// answers passes even while the budget is fully consumed — it triggers no
// measurements, so there is nothing to shed.
func TestServerAdmissionCachedRequestIsFree(t *testing.T) {
	opts := tinyOpts(8, 3)
	srv, ts := newTestServer(t, Config{Tune: opts, Winograd: false, MaxInflight: 8})
	desc := repro.DescribeNetwork(testArch.Name, netA()[:1])
	if _, status := postTune(t, ts.URL, desc); status != http.StatusOK {
		t.Fatalf("cold request: status %d", status)
	}
	// Occupy the whole budget, then re-request the cached network: cost 0,
	// admitted anyway.
	if !srv.adm.acquire(8) {
		t.Fatal("could not reserve the idle budget")
	}
	defer srv.adm.release(8)
	if _, status := postTune(t, ts.URL, desc); status != http.StatusOK {
		t.Fatalf("cached request under full budget: status %d, want 200", status)
	}
}

func TestServerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Tune: tinyOpts(8, 1)})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/tune", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"arch":"V100",`},
		{"unknown field", `{"arch":"V100","layres":[]}`},
		{"unknown arch", `{"arch":"H100","layers":[{"cin":16,"hin":8,"cout":16,"hker":3,"pad":1}]}`},
		{"no layers", `{"arch":"V100","layers":[]}`},
		{"invalid shape", `{"arch":"V100","layers":[{"cin":16,"hin":1,"cout":16,"hker":3}]}`},
		{"trailing data", `{"arch":"V100","layers":[{"cin":16,"hin":8,"cout":16,"hker":3,"pad":1}]}{}`},
	}
	for _, c := range cases {
		if got := post(c.body); got != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, got)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/tune"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/tune: status %d, want 405", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/nope: status %d, want 404", resp.StatusCode)
		}
	}
}

func TestServerBenchEndpoint(t *testing.T) {
	_, tsNone := newTestServer(t, Config{Tune: tinyOpts(8, 1)})
	if resp, err := http.Get(tsNone.URL + "/v1/bench"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("no bench path: status %d, want 404", resp.StatusCode)
		}
	}

	bench := filepath.Join(t.TempDir(), "bench.json")
	const payload = `{"benchmarks":[{"name":"BenchmarkTuneNetwork"}]}`
	if err := os.WriteFile(bench, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Tune: tinyOpts(8, 1), BenchPath: bench})
	resp, err := http.Get(ts.URL + "/v1/bench")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/bench: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if buf.String() != payload {
		t.Errorf("bench body %q, want %q", buf.String(), payload)
	}
}
