// Package tuned is the tuning-as-a-service daemon behind cmd/tuned: a
// long-running HTTP server wrapping the network tuner, with the shared
// state-carrying cache as its source of truth. Clients POST a network
// description to /v1/tune and receive per-layer verdicts; identical
// in-flight requests collapse across remote callers through the cache's
// singleflight dedup, concurrent distinct networks merge into one transfer
// pool through the request batcher, and an admission controller sheds load
// beyond the configured measurement budget with 429 + Retry-After.
package tuned

import (
	"sync"

	"repro/internal/autotune"
	"repro/internal/memsim"
)

// admission is the server's load-shedding gate. The unit of account is the
// measurement: one tuning request is admitted with the worst-case number of
// fresh measurements it can trigger (distinct not-yet-cached search keys ×
// per-layer budget), and releases that reservation when it completes. A
// request that would push the in-flight total over the cap is rejected —
// the HTTP layer turns that into 429 with a Retry-After — except when the
// server is idle: a request too big for the cap alone still runs, it just
// runs by itself.
type admission struct {
	max int64 // 0 = unlimited

	mu       sync.Mutex
	inflight int64
}

func newAdmission(max int64) *admission { return &admission{max: max} }

// acquire reserves cost in-flight measurements, reporting whether the
// request is admitted.
func (a *admission) acquire(cost int64) bool {
	if cost < 0 {
		cost = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.max > 0 && a.inflight > 0 && a.inflight+cost > a.max {
		return false
	}
	a.inflight += cost
	return true
}

// release returns a reservation.
func (a *admission) release(cost int64) {
	if cost < 0 {
		cost = 0
	}
	a.mu.Lock()
	a.inflight -= cost
	if a.inflight < 0 {
		a.inflight = 0
	}
	a.mu.Unlock()
}

// load reports the currently reserved measurement budget.
func (a *admission) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// admissionCost is the worst-case fresh-measurement count of a request:
// per distinct (kind, shape) key not already answered by the cache, one
// full per-layer budget. Cached keys cost nothing — a replayed network
// passes admission even under full load, which is exactly right: it
// triggers no measurements. The candidate set per layer is exactly what
// the sweep would search (autotune.CandidateKinds), so extra kinds are
// accounted before they can run.
func admissionCost(cache *autotune.Cache, arch memsim.Arch, layers []autotune.NetworkLayer, budget int, winograd bool, kinds []autotune.Kind) int64 {
	type key struct {
		kind autotune.Kind
		s    string
	}
	seen := make(map[key]bool)
	var cost int64
	count := func(kind autotune.Kind, l autotune.NetworkLayer) {
		k := key{kind, l.Shape.String()}
		if seen[k] {
			return
		}
		seen[k] = true
		if _, _, ok := cache.Get(arch.Name, kind, l.Shape); !ok {
			cost += int64(budget)
		}
	}
	for _, l := range layers {
		for _, kind := range autotune.CandidateKinds(l.Shape, winograd, kinds) {
			count(kind, l)
		}
	}
	return cost
}
