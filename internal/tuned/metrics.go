package tuned

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/autotune"
)

// GET /metrics: Prometheus text exposition (format 0.0.4), hand-rolled so
// the daemon keeps its zero-dependency stance. Everything /healthz reports
// as JSON for humans and orchestration probes is here as scrapeable
// counters/gauges for dashboards and alerting, plus the degradation
// observability the issue of the day demands: verdicts by provenance tier,
// breaker state and transition counts, refinement-queue depth.

// metricsWriter accumulates one exposition; each family is HELP + TYPE +
// sample lines.
type metricsWriter struct {
	b strings.Builder
}

func (m *metricsWriter) family(name, typ, help string) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&m.b, "%s%s %g\n", name, labels, v)
}

func (m *metricsWriter) counter(name, help string, v int64) {
	m.family(name, "counter", help)
	m.sample(name, "", float64(v))
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	m.family(name, "gauge", help)
	m.sample(name, "", v)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m metricsWriter

	m.gauge("tuned_uptime_seconds", "Seconds since the daemon booted.", time.Since(s.start).Seconds())
	m.counter("tuned_requests_total", "POST /v1/tune requests answered (any tier).", s.requests.Load())
	m.counter("tuned_rejected_total", "Requests shed by admission control with 429.", s.rejected.Load())
	m.counter("tuned_batches_total", "Tuning batches run.", s.batches.Load())
	m.counter("tuned_measurements_total", "Fresh measurements performed.", s.measured.Load())
	m.counter("tuned_retries_total", "Transient measurement failures retried.", s.retries.Load())
	m.counter("tuned_quarantined_total", "Configurations quarantined after repeated failures.", s.quarantined.Load())
	m.counter("tuned_partial_responses_total", "Responses cut short by the request timeout.", s.partials.Load())

	// Verdicts are labeled by provenance tier AND the algorithm kind the
	// per-layer choice settled on, so a dashboard can see e.g. depthwise
	// layers flipping from direct to igemm. The full tier×kind grid emits
	// (zeros included) so every series exists from the first scrape.
	m.family("tuned_verdicts_total", "counter", "Layer verdicts served, by provenance tier and algorithm kind.")
	s.verdictMu.Lock()
	for _, tier := range []autotune.Tier{autotune.TierMeasured, autotune.TierAnalytic, autotune.TierRefined} {
		for _, kind := range autotune.Kinds {
			m.sample("tuned_verdicts_total",
				fmt.Sprintf("tier=%q,kind=%q", tier.String(), kind.String()),
				float64(s.verdictByTK[tier.String()+"|"+kind.String()]))
		}
	}
	s.verdictMu.Unlock()

	if s.breaker != nil {
		m.gauge("tuned_breaker_state",
			"Measurement circuit breaker state: 0 closed, 1 open, 2 half-open.",
			float64(s.breaker.State()))
		m.family("tuned_breaker_transitions_total", "counter", "Breaker transitions, by state entered.")
		m.sample("tuned_breaker_transitions_total", `state="open"`, float64(s.breakerOpened.Load()))
		m.sample("tuned_breaker_transitions_total", `state="half-open"`, float64(s.breakerHalfOpen.Load()))
		m.sample("tuned_breaker_transitions_total", `state="closed"`, float64(s.breakerClosed.Load()))
	}
	if s.refineCh != nil {
		m.gauge("tuned_refine_queue_depth", "Analytically-answered networks awaiting background measurement.", float64(len(s.refineCh)))
		m.counter("tuned_refine_completed_total", "Refinement jobs that measured their network.", s.refineDone.Load())
		m.counter("tuned_refine_dropped_total", "Refinement jobs dropped on a full queue.", s.refineDropped.Load())
		m.counter("tuned_refine_failed_total", "Refinement jobs whose measured sweep failed.", s.refineFailed.Load())
	}

	cs := s.cache.Stats()
	m.gauge("tuned_cache_entries", "Tuning cache entries resident.", float64(cs.Entries))
	m.gauge("tuned_cache_bytes", "Approximate tuning cache bytes resident.", float64(cs.Bytes))
	m.counter("tuned_cache_hits_total", "Tuning cache hits.", cs.Hits)
	m.counter("tuned_cache_misses_total", "Tuning cache misses.", cs.Misses)
	m.counter("tuned_cache_evictions_total", "Tuning cache evictions.", cs.Evictions)

	s.clusterMetrics(&m)

	m.gauge("tuned_inflight_budget", "Measurement budget currently reserved by admitted requests.", float64(s.adm.load()))
	snapAge := -1.0
	if ns := s.lastSnapshot.Load(); ns > 0 {
		snapAge = time.Since(time.Unix(0, ns)).Seconds()
	}
	m.gauge("tuned_snapshot_age_seconds", "Age of the last successful state flush (-1: never).", snapAge)
	salvaged := 0.0
	if s.salvaged.Load() {
		salvaged = 1
	}
	m.gauge("tuned_state_salvaged", "1 when boot salvaged a damaged state file.", salvaged)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, m.b.String())
}
