package tuned

import (
	"context"
	"sync"
	"time"

	"repro/internal/autotune"
	"repro/internal/memsim"
)

// The batcher is how strangers' layers warm-start each other. Requests
// admitted within one admission window are collected and — per group of
// compatible tuning options — merged into a single TuneNetwork call: the
// concatenated layer list deduplicates identical shapes across callers
// (identical concurrent requests collapse to one search), and with
// warm-starting enabled every network in the batch draws on one shared
// transfer pool, so a layer family one client already paid to tune cold
// warm-starts every other client's members of that family. Each request
// gets back exactly its own slice of the merged verdict list.

// tuneJob is one admitted request waiting on its batch.
type tuneJob struct {
	key    groupKey
	arch   memsim.Arch
	layers []autotune.NetworkLayer
	opts   autotune.NetworkOptions

	verdicts []autotune.LayerVerdict
	err      error
	done     chan struct{}
}

// groupKey identifies the requests of a batch that may legally merge into
// one TuneNetwork call: same architecture and same per-layer engine
// options. Merging across differing options would change verdicts (the
// engine is deterministic in them), so each distinct key tunes separately.
type groupKey struct {
	arch     string
	budget   int
	seed     int64
	winograd bool
	kinds    string // canonicalized candidate-kind list (kindsKey)
}

// batcher collects jobs for one admission window, then hands the whole
// round to run. The window opens when the first job of a round arrives, so
// an idle server adds at most window of latency and a busy one amortizes
// the model-transfer benefit across everything that arrived meanwhile. A
// zero window degenerates to one batch per request.
type batcher struct {
	window time.Duration
	run    func([]*tuneJob)

	mu      sync.Mutex
	pending []*tuneJob
	armed   bool
}

func newBatcher(window time.Duration, run func([]*tuneJob)) *batcher {
	return &batcher{window: window, run: run}
}

// submit enqueues a job and arms the round timer if this job opened the
// round. The job's done channel closes when its batch finishes.
func (b *batcher) submit(j *tuneJob) {
	b.mu.Lock()
	b.pending = append(b.pending, j)
	arm := !b.armed
	if arm {
		b.armed = true
	}
	b.mu.Unlock()
	if arm {
		time.AfterFunc(b.window, b.flush)
	}
}

// flush closes the current round and runs it.
func (b *batcher) flush() {
	b.mu.Lock()
	jobs := b.pending
	b.pending = nil
	b.armed = false
	b.mu.Unlock()
	if len(jobs) > 0 {
		b.run(jobs)
	}
}

// groupJobs partitions a round into its mergeable groups, preserving
// arrival order within each group (the order decides which layer of a
// family tunes cold as the warm schedule's representative, so it must be
// the deterministic concatenation order).
func groupJobs(jobs []*tuneJob) [][]*tuneJob {
	idx := make(map[groupKey]int)
	var groups [][]*tuneJob
	for _, j := range jobs {
		i, ok := idx[j.key]
		if !ok {
			i = len(groups)
			idx[j.key] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], j)
	}
	return groups
}

// runGroup merges one group's layer lists, tunes the union in a single
// TuneNetwork call against cache, and hands each job its own verdicts.
// ctx bounds the engine: past its deadline every still-running search
// reports best-so-far and the verdicts come back marked Partial.
func runGroup(ctx context.Context, cache *autotune.Cache, group []*tuneJob) {
	var merged []autotune.NetworkLayer
	for _, j := range group {
		merged = append(merged, j.layers...)
	}
	verdicts, err := autotune.TuneNetworkContext(ctx, group[0].arch, merged, cache, group[0].opts)
	off := 0
	for _, j := range group {
		if err != nil {
			j.err = err
		} else {
			j.verdicts = verdicts[off : off+len(j.layers)]
		}
		off += len(j.layers)
		close(j.done)
	}
}
