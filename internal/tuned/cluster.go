package tuned

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/memsim"
)

// This file wires the cluster peer layer (internal/cluster) into the
// daemon. With -peers configured, N replicas form one logically-shared
// tuning service: every replica computes the same consistent-hash ownership
// for every request key, a replica that does not own a key proxies the
// request to the primary owner (hedging to the secondary when the primary
// is slow, failing over when it is down), and an owner replicates the cache
// entries a request produced to the key's other owners — queueing them as
// hinted handoff while a peer is down and replaying on rejoin. The
// degradation ladder from the standalone daemon gets one more rung at the
// bottom: a request whose owners are all unreachable is answered from the
// local analytic tier (200, tier "analytic"), never with a 5xx.

const (
	// maxReplicateBody bounds POST /v1/cluster/replicate bodies. Replication
	// envelopes carry engine state (measurement rows), so they run far larger
	// than client requests.
	maxReplicateBody = 16 << 20
	// pushTimeout bounds one replication push or handoff-drain round trip.
	pushTimeout = 10 * time.Second
)

// clusterState is the per-server cluster runtime.
type clusterState struct {
	cfg        cluster.Config
	ring       *cluster.Ring
	membership *cluster.Membership
	handoff    *cluster.Handoff
	client     *cluster.Client

	pushWG sync.WaitGroup // in-flight async replication pushes

	forwarded      atomic.Int64 // client requests proxied to an owner
	forwardServed  atomic.Int64 // peer-forwarded requests served locally
	failovers      atomic.Int64 // forwards moved to the next owner after a failure
	hedges         atomic.Int64 // hedged duplicates launched
	localFallbacks atomic.Int64 // requests answered locally because every owner was unreachable
	pushedEntries  atomic.Int64 // cache entries pushed to peers (replication + replay)
	pushFailures   atomic.Int64 // replication pushes that failed over to handoff
	mergedEntries  atomic.Int64 // cache entries merged from peer pushes
}

// initCluster builds the cluster runtime and registers its peer endpoints;
// no-op when the daemon is standalone.
func (s *Server) initCluster(mux *http.ServeMux) {
	if !s.cfg.Cluster.Enabled() {
		return
	}
	ccfg := s.cfg.Cluster.Normalized()
	c := &clusterState{
		cfg:     ccfg,
		ring:    cluster.NewRing(ccfg.Peers),
		handoff: cluster.NewHandoff(ccfg.HandoffMax),
		client:  cluster.NewClient(cluster.ClientConfig{}),
	}
	c.membership = cluster.NewMembership(ccfg, c.client.Probe, func(addr string) {
		go s.drainHandoff(addr)
	})
	s.cluster = c
	mux.HandleFunc("POST /v1/cluster/tune", s.handleClusterTune)
	mux.HandleFunc("POST /v1/cluster/replicate", s.handleClusterReplicate)
}

// startCluster launches the probe loops; split from initCluster so boot-time
// state restore happens before the first rejoin can fire a drain.
func (s *Server) startCluster() {
	if s.cluster != nil {
		s.cluster.membership.Start()
	}
}

// stopCluster halts the probe loops and waits out in-flight pushes.
func (s *Server) stopCluster() {
	if s.cluster != nil {
		s.cluster.membership.Stop()
		s.cluster.pushWG.Wait()
	}
}

// routeTune is the routing seam handleTune runs after parsing and before
// serving: it reports true when it wrote the response (the request was
// proxied to an owner, or answered from the local fallback tier because no
// owner was reachable) and false when this replica owns the key and should
// serve it locally.
func (s *Server) routeTune(w http.ResponseWriter, r *http.Request, desc repro.NetworkDescription,
	arch memsim.Arch, layers []autotune.NetworkLayer, opts autotune.Options, winograd bool, kinds []autotune.Kind) bool {
	c := s.cluster
	key := requestKey(arch.Name, layers, opts.Budget, opts.Seed, winograd, kinds)
	owners := c.ring.Owners(key, c.cfg.Replicas)
	ladder := make([]string, 0, len(owners))
	for _, o := range owners {
		if o == c.cfg.Self {
			return false // we own the key: serve locally
		}
		if c.membership.Up(o) {
			ladder = append(ladder, o)
		}
	}
	envelope, err := json.Marshal(repro.ForwardedTuneRequest{Origin: c.cfg.Self, Attempt: 1, Network: desc})
	if err == nil && len(ladder) > 0 && s.forwardHedged(r.Context(), w, envelope, ladder) {
		c.forwarded.Add(1)
		return true
	}
	// Every owner is down or failed mid-request: the bottom of the
	// degradation ladder is the local analytic tier, never a 5xx. The
	// refinement enqueue inside gives this replica a measured answer to
	// serve (and replicate) if the partition outlives the client's retry.
	c.localFallbacks.Add(1)
	s.serveAnalytic(w, arch, layers, opts, winograd, kinds)
	return true
}

// forwardHedged proxies one request along the owner ladder: the primary is
// asked first, the next owner is added after HedgeAfter without an answer
// (tail-latency hedge) or immediately on a failure (failover), and the
// first non-5xx response wins and is relayed verbatim. A transport error
// marks the peer down so the very next request routes around it. Reports
// false when every ladder rung failed.
func (s *Server) forwardHedged(ctx context.Context, w http.ResponseWriter, envelope []byte, ladder []string) bool {
	c := s.cluster
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // the losing duplicate dies with the handler
	type reply struct {
		status int
		body   []byte
		addr   string
		err    error
	}
	replies := make(chan reply, len(ladder))
	launched := 0
	launch := func() {
		addr := ladder[launched]
		launched++
		go func() {
			status, body, err := c.client.Forward(ctx, addr, envelope)
			replies <- reply{status, body, addr, err}
		}()
	}
	launch()
	hedge := time.NewTimer(c.cfg.HedgeAfter)
	defer hedge.Stop()
	for pending := 1; pending > 0; {
		select {
		case rep := <-replies:
			pending--
			if rep.err != nil {
				c.membership.MarkDown(rep.addr)
			}
			if rep.err != nil || rep.status >= 500 {
				if launched < len(ladder) {
					c.failovers.Add(1)
					launch()
					pending++
				}
				continue
			}
			// Any non-5xx answer — success or the owner's own verdict on a
			// bad request — is the response.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rep.status)
			w.Write(rep.body)
			return true
		case <-hedge.C:
			if launched < len(ladder) {
				c.hedges.Add(1)
				launch()
				pending++
			}
		case <-ctx.Done():
			return false
		}
	}
	return false
}

// handleClusterTune is POST /v1/cluster/tune: a peer-forwarded client
// request. The receiver always serves locally — it never re-forwards, which
// is what makes routing loop-free — so a forwarded request behaves exactly
// like a client request that happened to hit its owner.
func (s *Server) handleClusterTune(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		errJSON(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		errJSON(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	fr, err := repro.ParseForwardedTuneRequest(body)
	if err != nil {
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	arch, err := memsim.ByName(fr.Network.Arch)
	if err != nil {
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cluster.forwardServed.Add(1)
	layers := fr.Network.NetworkLayers()
	opts, winograd, kinds := s.requestOptions(fr.Network.Options)
	s.serveTune(w, arch, layers, opts, winograd, kinds)
}

// handleClusterReplicate is POST /v1/cluster/replicate: a peer pushing the
// cache entries a request it owned produced (or a rejoin replay of hinted
// handoff). The body is the same versioned, checksummed envelope the state
// file uses; validation is all-or-nothing, exactly like loading a file.
func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		errJSON(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicateBody))
	if err != nil {
		errJSON(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	entries, err := autotune.DecodeEntries(body)
	if err != nil {
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.cache.PutEntries(entries); err != nil {
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cluster.mergedEntries.Add(int64(len(entries)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"merged": len(entries)})
}

// replicateRequest ships the cache entries a just-served request produced
// to the key's other owners, asynchronously — replication is off the client
// response path. A push failing (after the client's own retries) marks the
// peer down and parks the entries as hinted handoff for the rejoin replay.
func (s *Server) replicateRequest(arch memsim.Arch, layers []autotune.NetworkLayer, opts autotune.Options, winograd bool, kinds []autotune.Kind) {
	c := s.cluster
	key := requestKey(arch.Name, layers, opts.Budget, opts.Seed, winograd, kinds)
	targets := make([]string, 0, c.cfg.Replicas)
	selfOwns := false
	for _, o := range c.ring.Owners(key, c.cfg.Replicas) {
		if o == c.cfg.Self {
			selfOwns = true
		} else {
			targets = append(targets, o)
		}
	}
	if !selfOwns || len(targets) == 0 {
		// A non-owner served this (local fallback during a partition): the
		// owners will produce their own entries when they next see the key.
		return
	}
	entries := s.collectEntries(arch, layers, winograd, kinds)
	if len(entries) == 0 {
		return
	}
	envelope, err := autotune.EncodeEntries(entries)
	if err != nil {
		return
	}
	for _, peer := range targets {
		peer := peer
		if !c.membership.Up(peer) {
			c.handoff.Queue(peer, entries)
			continue
		}
		c.pushWG.Add(1)
		go func() {
			defer c.pushWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
			defer cancel()
			if err := c.client.Push(ctx, peer, envelope); err != nil {
				c.pushFailures.Add(1)
				c.membership.MarkDown(peer)
				c.handoff.Queue(peer, entries)
				return
			}
			c.pushedEntries.Add(int64(len(entries)))
		}()
	}
}

// collectEntries gathers the persisted cache entries a request's sweep
// produced or touched: every candidate kind of every layer shape, engine
// state included — the sweep measures all candidates (that is what the
// per-layer kernel choice compares), so after a measured answer every one
// of these exists and the receiving replica can serve the same request with
// zero fresh measurements.
func (s *Server) collectEntries(arch memsim.Arch, layers []autotune.NetworkLayer, winograd bool, kinds []autotune.Kind) []autotune.CacheEntry {
	seen := make(map[string]bool)
	var out []autotune.CacheEntry
	for _, l := range layers {
		for _, kind := range autotune.CandidateKinds(l.Shape, winograd, kinds) {
			e, ok := s.cache.Entry(arch.Name, kind, l.Shape)
			if !ok {
				continue
			}
			key, err := e.Key()
			if err != nil || seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, e)
		}
	}
	return out
}

// drainHandoff replays a rejoined peer's parked entries, batch by batch,
// until its queue is empty. A failing replay requeues the batch (fresher
// writes queued meanwhile win) and re-marks the peer down; the next rejoin
// resumes the drain.
func (s *Server) drainHandoff(addr string) {
	c := s.cluster
	for {
		entries := c.handoff.Take(addr)
		if len(entries) == 0 {
			return
		}
		envelope, err := autotune.EncodeEntries(entries)
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
		err = c.client.Push(ctx, addr, envelope)
		cancel()
		if err != nil {
			c.handoff.Requeue(addr, entries)
			c.membership.MarkDown(addr)
			return
		}
		c.handoff.MarkReplayed(len(entries))
		c.pushedEntries.Add(int64(len(entries)))
	}
}

// ClusterHealth is the cluster block of /healthz: this replica's identity,
// the replication factor, the peer table the failure detector maintains,
// and the hinted-handoff backlog.
type ClusterHealth struct {
	Self              string               `json:"self"`
	ReplicationFactor int                  `json:"replication_factor"`
	Peers             []cluster.PeerHealth `json:"peers"`
	HandoffDepth      int                  `json:"handoff_depth"`
}

// clusterHealth returns the /healthz cluster block, nil when standalone.
func (s *Server) clusterHealth() *ClusterHealth {
	c := s.cluster
	if c == nil {
		return nil
	}
	return &ClusterHealth{
		Self:              c.cfg.Self,
		ReplicationFactor: c.cfg.Replicas,
		Peers:             c.membership.Snapshot(),
		HandoffDepth:      c.handoff.DepthAll(),
	}
}

// clusterMetrics appends the peer/forward/handoff series to /metrics.
func (s *Server) clusterMetrics(m *metricsWriter) {
	c := s.cluster
	if c == nil {
		return
	}
	m.family("tuned_peer_up", "gauge", "Peer reachability per the failure detector (1 up, 0 down).")
	for _, p := range c.membership.Snapshot() {
		up := 0.0
		if p.Up {
			up = 1
		}
		m.sample("tuned_peer_up", `peer="`+p.Addr+`"`, up)
	}
	m.counter("tuned_forwarded_total", "Client requests proxied to an owning peer.", c.forwarded.Load())
	m.counter("tuned_forward_served_total", "Peer-forwarded requests served locally.", c.forwardServed.Load())
	m.counter("tuned_forward_failovers_total", "Forwards moved to the next owner after a failure.", c.failovers.Load())
	m.counter("tuned_forward_hedges_total", "Hedged duplicate forwards launched.", c.hedges.Load())
	m.counter("tuned_forward_local_fallback_total", "Requests answered from the local analytic tier because every owner was unreachable.", c.localFallbacks.Load())
	m.counter("tuned_replicate_pushed_entries_total", "Cache entries pushed to peers (replication and handoff replay).", c.pushedEntries.Load())
	m.counter("tuned_replicate_push_failures_total", "Replication pushes diverted to hinted handoff.", c.pushFailures.Load())
	m.counter("tuned_replicate_merged_entries_total", "Cache entries merged from peer pushes.", c.mergedEntries.Load())
	queued, replayed, dropped := c.handoff.Stats()
	m.gauge("tuned_handoff_depth", "Cache entries parked for unreachable peers.", float64(c.handoff.DepthAll()))
	m.counter("tuned_handoff_queued_total", "Cache entries ever parked as hinted handoff.", queued)
	m.counter("tuned_handoff_replayed_total", "Hinted-handoff entries replayed to rejoined peers.", replayed)
	m.counter("tuned_handoff_dropped_total", "Hinted-handoff entries dropped (bound or validation).", dropped)
}
