package tuned

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/memsim"
)

// This file is the daemon's graceful-degradation machinery. The service's
// design goal after PR 7 was "never lose work"; this layer's is "never
// refuse an answer". Three triggers route a request to the instant
// analytic tier instead of a hard failure: an open measurement circuit
// breaker (the backend is down — a measured search could only fast-fail),
// admission overflow with AnalyticOverflow set (the budget is spoken for —
// 429 becomes an estimate), and a layer whose search died inside an
// otherwise-admitted sweep (the engine's AnalyticFallback fills it). Every
// analytically-answered network is enqueued for background refinement: a
// worker waits until the breaker is not open and the admission budget has
// room, runs the measured sweep against the shared cache, and marks the
// refined keys so later cache-served verdicts report Tier "refined".

const (
	// refineQueueCap bounds the refinement backlog; beyond it, new
	// analytic answers are served but not queued (counted as dropped — the
	// client's re-POST re-enqueues).
	refineQueueCap = 256
	// refinePollInterval is how often a waiting refinement worker re-checks
	// the breaker and the admission budget.
	refinePollInterval = 5 * time.Millisecond
)

// refineJob is one analytically-answered request awaiting measurement.
type refineJob struct {
	key      string
	arch     memsim.Arch
	layers   []autotune.NetworkLayer
	opts     autotune.NetworkOptions
	budget   int
	winograd bool
	kinds    []autotune.Kind
}

// analyticFor returns the per-architecture analytic tier, building it on
// first use and re-fitting its calibration whenever the cache has changed
// since the last fit — measured rows sharpen every later estimate.
func (s *Server) analyticFor(arch memsim.Arch) *autotune.AnalyticDSE {
	s.anMu.Lock()
	defer s.anMu.Unlock()
	a := s.analytic[arch.Name]
	if a == nil {
		a = autotune.NewAnalyticDSE(arch)
		s.analytic[arch.Name] = a
	}
	stamp := s.cache.Len()
	if last, ok := s.calStamp[arch.Name]; !ok || last != stamp {
		a.SetCalibration(autotune.CalibrateAnalytic(s.cache, arch))
		s.calStamp[arch.Name] = stamp
	}
	return a
}

// serveAnalytic answers a request entirely from the instant-verdict tier
// — 200, every verdict Tier "analytic" — and enqueues it for background
// refinement. The analytic tier consults no cache and takes no budget, so
// this path stays fast no matter how overloaded the measured path is.
func (s *Server) serveAnalytic(w http.ResponseWriter, arch memsim.Arch, layers []autotune.NetworkLayer, opts autotune.Options, winograd bool, kinds []autotune.Kind) {
	verdicts, err := s.analyticFor(arch).NetworkKinds(layers, analyticKinds(winograd, kinds))
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.requests.Add(1)
	s.countTiers(verdicts)
	s.enqueueRefine(arch, layers, opts, winograd, kinds)
	resp := repro.TuneResponse{Arch: arch.Name,
		Verdicts:       repro.DescribeVerdicts(verdicts),
		NetworkSeconds: autotune.NetworkSeconds(verdicts),
		Tier:           autotune.TierAnalytic.String()}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// markTiers upgrades cache-served verdicts whose key the refinement queue
// has measured to Tier "refined", then counts every verdict's provenance
// for /metrics. With no degradation configured the refined set is empty
// and this is pure counting.
func (s *Server) markTiers(archName string, verdicts []autotune.LayerVerdict) {
	s.refinedMu.Lock()
	if len(s.refinedKeys) > 0 {
		for i := range verdicts {
			v := &verdicts[i]
			if v.Tier == autotune.TierMeasured && v.Shared &&
				s.refinedKeys[refinedKey(archName, v.Kind, v.Layer.Shape.String())] {
				v.Tier = autotune.TierRefined
			}
		}
	}
	s.refinedMu.Unlock()
	s.countTiers(verdicts)
}

func (s *Server) countTiers(verdicts []autotune.LayerVerdict) {
	for _, v := range verdicts {
		switch v.Tier {
		case autotune.TierAnalytic:
			s.tierAnalytic.Add(1)
		case autotune.TierRefined:
			s.tierRefined.Add(1)
		default:
			s.tierMeasured.Add(1)
		}
	}
	// The per-(tier, kind) breakdown backs the labeled /metrics family; the
	// tier atomics above stay as the lock-free totals /healthz reads.
	s.verdictMu.Lock()
	for _, v := range verdicts {
		s.verdictByTK[v.Tier.String()+"|"+v.Kind.String()]++
	}
	s.verdictMu.Unlock()
}

// analyticKinds folds the legacy winograd flag into the candidate-kind list
// the analytic tier filters on (candidateKinds treats a requested Winograd
// and the flag identically).
func analyticKinds(winograd bool, kinds []autotune.Kind) []autotune.Kind {
	if !winograd {
		return kinds
	}
	for _, k := range kinds {
		if k == autotune.Winograd {
			return kinds
		}
	}
	out := make([]autotune.Kind, 0, len(kinds)+1)
	out = append(out, kinds...)
	return append(out, autotune.Winograd)
}

func refinedKey(archName string, kind autotune.Kind, shape string) string {
	return archName + "|" + kind.String() + "|" + shape
}

// requestKey identifies one request by everything that shapes its answer —
// architecture, budget, seed, winograd, candidate kinds, every layer shape.
// It is the dedup unit of the refinement queue (a hammered analytic
// endpoint enqueues each network once) and the routing key of the cluster
// layer (identical requests from any replica converge on one owner, so the
// cache dedup and warm-merge machinery keep working cluster-wide).
func requestKey(archName string, layers []autotune.NetworkLayer, budget int, seed int64, winograd bool, kinds []autotune.Kind) string {
	var b strings.Builder
	b.WriteString(archName)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(budget))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(winograd))
	b.WriteByte('|')
	b.WriteString(kindsKey(kinds))
	for _, l := range layers {
		b.WriteByte('|')
		b.WriteString(l.Shape.String())
	}
	return b.String()
}

// enqueueRefine queues an analytically-answered network for background
// measurement. A full queue or an already-pending identical request drops
// the job — the next analytic answer for it re-enqueues.
func (s *Server) enqueueRefine(arch memsim.Arch, layers []autotune.NetworkLayer, opts autotune.Options, winograd bool, kinds []autotune.Kind) {
	if s.refineCh == nil {
		return
	}
	key := requestKey(arch.Name, layers, opts.Budget, opts.Seed, winograd, kinds)
	s.refineMu.Lock()
	if s.refinePending[key] {
		s.refineMu.Unlock()
		return
	}
	s.refinePending[key] = true
	s.refineMu.Unlock()
	job := &refineJob{key: key, arch: arch, layers: layers,
		opts: s.networkOptions(arch, opts, winograd, kinds), budget: opts.Budget,
		winograd: winograd, kinds: kinds}
	select {
	case s.refineCh <- job:
		s.rememberRefineJob(key, arch, layers, opts, winograd, kinds)
	default:
		s.refineDropped.Add(1)
		s.refineMu.Lock()
		delete(s.refinePending, key)
		s.refineMu.Unlock()
	}
}

// refineLoop is one background refinement worker.
func (s *Server) refineLoop() {
	defer s.refineWG.Done()
	for {
		select {
		case <-s.refineStop:
			return
		case j := <-s.refineCh:
			s.refineOne(j)
		}
	}
}

// refineOne measures one queued network: wait until the breaker is not
// open and the admission budget has room (refinement always yields to
// foreground traffic), then run the measured sweep against the shared
// cache and mark the measured keys refined.
func (s *Server) refineOne(j *refineJob) {
	// A job aborted by shutdown (not attempted) stays in refineJobs so the
	// final snapshot persists it and the next boot re-enqueues it; only an
	// attempted job — measured or failed — leaves the persisted backlog.
	aborted := false
	defer func() {
		s.refineMu.Lock()
		delete(s.refinePending, j.key)
		if !aborted {
			delete(s.refineJobs, j.key)
		}
		s.refineMu.Unlock()
	}()
	var cost int64
	for {
		if s.breaker.State() != autotune.BreakerOpen {
			cost = admissionCost(s.cache, j.arch, j.layers, j.budget, j.winograd, j.kinds)
			if s.adm.acquire(cost) {
				break
			}
		}
		select {
		case <-s.refineStop:
			aborted = true
			return
		case <-time.After(refinePollInterval):
		}
	}
	defer s.adm.release(cost)
	verdicts, err := autotune.TuneNetwork(j.arch, j.layers, s.cache, j.opts)
	if err != nil {
		s.refineFailed.Add(1)
		return
	}
	measured := 0
	s.refinedMu.Lock()
	for _, v := range verdicts {
		// A verdict that itself fell back to the analytic tier (the
		// breaker re-tripped mid-refinement) upgraded nothing; only
		// genuinely measured keys are marked.
		if v.Tier == autotune.TierMeasured {
			s.refinedKeys[refinedKey(j.arch.Name, v.Kind, v.Layer.Shape.String())] = true
			measured++
		}
	}
	s.refinedMu.Unlock()
	if measured > 0 {
		s.refineDone.Add(1)
		if s.cluster != nil {
			// The refinement just upgraded cache entries this replica owns;
			// ship the measured upgrade to the key's other owners too.
			tune := j.opts.Tune
			tune.Budget = j.budget
			s.replicateRequest(j.arch, j.layers, tune, j.winograd, j.kinds)
		}
	} else {
		s.refineFailed.Add(1)
	}
}
