package tuned

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// Config configures a Server. The zero value is served with defaults:
// fresh cache, engine default options, warm-starting on, a 20ms admission
// window, no admission cap, no persistence.
type Config struct {
	// Cache is the verdict store and dedup point; nil makes a fresh one.
	// Install an autotune.EvictionPolicy on it (or via cmd/tuned's flags)
	// for the bounded long-running regime.
	Cache *autotune.Cache
	// Tune holds the per-layer engine defaults; requests may override
	// Budget and Seed within the wire limits. A zero value uses
	// autotune.DefaultOptions.
	Tune autotune.Options
	// LayerWorkers is how many deduplicated searches of one batch tune
	// concurrently (default GOMAXPROCS, see autotune.NetworkOptions).
	LayerWorkers int
	// Winograd is the default for also tuning the fused Winograd dataflow
	// where it applies (requests may override).
	Winograd bool
	// Kinds is the default extra candidate-kind set of the per-layer kernel
	// choice (requests may override via options.kinds); Direct is always
	// tuned.
	Kinds []autotune.Kind
	// Warm enables cross-request warm-starting through the batcher's
	// merged transfer pool.
	Warm bool
	// Resume re-enters cached searches whose persisted state is shorter
	// than the requested budget instead of returning them as-is.
	Resume bool
	// BatchWindow is the admission window: requests arriving within it
	// merge into one tuning batch. 0 means one batch per request.
	BatchWindow time.Duration
	// MaxInflight caps the summed worst-case fresh-measurement budget of
	// admitted requests; beyond it, requests get 429 + Retry-After
	// (0 = unlimited).
	MaxInflight int64
	// StatePath, when set, is the cache state file: loaded on New — with
	// crash salvage: a file torn by a mid-write kill yields its intact
	// entries and is set aside as .corrupt — and flushed by Close and the
	// snapshot timer. The flush is atomic (temp + fsync + rename), so no
	// crash window loses the previous complete snapshot.
	StatePath string
	// SnapshotInterval, when > 0 together with StatePath, flushes the cache
	// state in the background every interval, so a crash loses at most one
	// interval of verdicts instead of everything since boot.
	SnapshotInterval time.Duration
	// RequestTimeout, when > 0, bounds each tuning batch's engine time.
	// Searches still running at the deadline stop after their current
	// measurement and the response carries best-so-far verdicts marked
	// "partial": true; the truncated engine state is persisted, so
	// re-POSTing the identical request continues the search.
	RequestTimeout time.Duration
	// Chaos, when enabled, wraps every search's measurer in the seeded
	// fault injector — the harness behind the chaos e2e suite and CI job.
	// Production deployments leave it zero.
	Chaos chaos.Config
	// BenchPath, when set, is the benchmark trajectory JSON served by
	// GET /v1/bench (cmd/tuned points it at BENCH_autotune.json).
	BenchPath string
	// AnalyticOverflow degrades overload instead of shedding it: a request
	// beyond the admission budget is answered immediately from the
	// measurement-free analytic tier (200 with tier "analytic") instead of
	// 429, and enqueued on the background refinement queue, which measures
	// it once budget frees up and upgrades the cache in place.
	AnalyticOverflow bool
	// Breaker, when its Threshold is > 0, arms the measurement circuit
	// breaker around every search's measurer: past the windowed
	// failure-rate threshold the server answers from the analytic tier
	// only, until half-open probe measurements restore service.
	Breaker autotune.BreakerConfig
	// RefineWorkers is how many background workers drain the refinement
	// queue (default 1; the queue exists whenever AnalyticOverflow or the
	// breaker is configured).
	RefineWorkers int
	// Cluster, when its peer list is non-empty, joins this daemon to a
	// replicated shard cluster (see internal/cluster and cluster.go): a
	// consistent-hash ring routes each request key to its owning replicas,
	// non-owners proxy with hedged failover, owners replicate verdicts, and
	// writes for down peers park as hinted handoff. Zero value = standalone.
	Cluster cluster.Config
}

// Server is the tuning service: an http.Handler plus the shared tuning
// state behind it.
type Server struct {
	cfg   Config
	cache *autotune.Cache
	batch *batcher
	adm   *admission
	mux   *http.ServeMux
	start time.Time

	closed   atomic.Bool
	measured atomic.Int64 // fresh measurements performed since boot
	requests atomic.Int64 // POST /v1/tune requests accepted for tuning
	rejected atomic.Int64 // requests shed by admission control
	batches  atomic.Int64 // tuning batches run

	// Fault-tolerance observability (see Health).
	retries      atomic.Int64 // transient-failure measurement retries
	quarantined  atomic.Int64 // configs quarantined after repeated failures
	partials     atomic.Int64 // responses cut short by RequestTimeout
	salvaged     atomic.Bool  // boot recovered state from a damaged file
	lastSnapshot atomic.Int64 // unix nanos of the last successful flush (0 = never)
	lastFlushErr atomic.Pointer[string]

	injector *chaos.Injector // nil unless Config.Chaos is enabled

	// Graceful degradation (degrade.go): the breaker guarding the
	// measurement seam, the per-arch analytic tier, the background
	// refinement queue, and the provenance counters behind /metrics.
	breaker  *autotune.Breaker // nil unless Config.Breaker is armed
	degraded bool              // any degradation trigger configured

	anMu     sync.Mutex
	analytic map[string]*autotune.AnalyticDSE // per arch name
	calStamp map[string]int                   // cache length at last calibration

	refineCh      chan *refineJob
	refineStop    chan struct{}
	refineWG      sync.WaitGroup
	refineMu      sync.Mutex
	refinePending map[string]bool
	refineJobs    map[string]repro.NetworkDescription // pending jobs in persistable form
	refinedMu     sync.Mutex
	refinedKeys   map[string]bool

	tierMeasured    atomic.Int64 // verdicts served, by provenance
	tierAnalytic    atomic.Int64
	tierRefined     atomic.Int64
	verdictMu       sync.Mutex       // guards verdictByTK
	verdictByTK     map[string]int64 // verdicts by (tier, kind), for /metrics
	refineDone      atomic.Int64     // refinement jobs that measured their network
	refineDropped   atomic.Int64     // jobs dropped on a full queue
	refineFailed    atomic.Int64     // jobs whose measured sweep errored
	breakerOpened   atomic.Int64     // transitions into each breaker state
	breakerHalfOpen atomic.Int64
	breakerClosed   atomic.Int64

	// cluster is the replicated-shard runtime (cluster.go); nil standalone.
	cluster *clusterState

	snapStop chan struct{}
	snapDone chan struct{}
	stopOnce sync.Once
}

// New builds a Server, loading persisted cache state from cfg.StatePath if
// the file exists.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		cfg.Cache = autotune.NewCache()
	}
	if cfg.Tune.Budget == 0 {
		def := autotune.DefaultOptions()
		def.MeasureLatency = cfg.Tune.MeasureLatency
		def.Workers = cfg.Tune.Workers
		def.Retry = cfg.Tune.Retry
		cfg.Tune = def
	}
	s := &Server{cfg: cfg, cache: cfg.Cache, adm: newAdmission(cfg.MaxInflight), start: time.Now()}
	// Every fresh measurement of every request funnels through this hook;
	// it is the denominator of the dedup story (/healthz reports it, the
	// e2e suite pins it). The retry/quarantine hooks feed the same health
	// report so an orchestrator sees a flaky measurement backend.
	prev := cfg.Tune.OnMeasure
	s.cfg.Tune.OnMeasure = func() {
		s.measured.Add(1)
		if prev != nil {
			prev()
		}
	}
	prevRetry := cfg.Tune.OnRetry
	s.cfg.Tune.OnRetry = func() {
		s.retries.Add(1)
		if prevRetry != nil {
			prevRetry()
		}
	}
	prevQuar := cfg.Tune.OnQuarantine
	s.cfg.Tune.OnQuarantine = func() {
		s.quarantined.Add(1)
		if prevQuar != nil {
			prevQuar()
		}
	}
	if cfg.Chaos.Enabled() {
		s.injector = chaos.New(cfg.Chaos)
	}
	if cfg.Breaker.Enabled() {
		bcfg := cfg.Breaker
		prevTrans := bcfg.OnTransition
		bcfg.OnTransition = func(from, to autotune.BreakerState) {
			switch to {
			case autotune.BreakerOpen:
				s.breakerOpened.Add(1)
			case autotune.BreakerHalfOpen:
				s.breakerHalfOpen.Add(1)
			case autotune.BreakerClosed:
				s.breakerClosed.Add(1)
			}
			if prevTrans != nil {
				prevTrans(from, to)
			}
		}
		s.breaker = autotune.NewBreaker(bcfg)
	}
	s.degraded = cfg.AnalyticOverflow || s.breaker != nil || cfg.RequestTimeout > 0
	s.verdictByTK = make(map[string]int64)
	s.analytic = make(map[string]*autotune.AnalyticDSE)
	s.calStamp = make(map[string]int)
	s.refinedKeys = make(map[string]bool)
	if cfg.AnalyticOverflow || s.breaker != nil {
		workers := cfg.RefineWorkers
		if workers < 1 {
			workers = 1
		}
		s.refineCh = make(chan *refineJob, refineQueueCap)
		s.refineStop = make(chan struct{})
		s.refinePending = make(map[string]bool)
		s.refineJobs = make(map[string]repro.NetworkDescription)
		for i := 0; i < workers; i++ {
			s.refineWG.Add(1)
			go s.refineLoop()
		}
	}
	if cfg.StatePath != "" {
		if _, salvaged, err := s.cache.RecoverFile(cfg.StatePath); err != nil {
			return nil, fmt.Errorf("tuned: state %s: %w", cfg.StatePath, err)
		} else if salvaged {
			s.salvaged.Store(true)
		}
	}
	s.batch = newBatcher(cfg.BatchWindow, s.runBatch)
	if cfg.StatePath != "" && cfg.SnapshotInterval > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tune", s.handleTune)
	mux.HandleFunc("GET /v1/bench", s.handleBench)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.initCluster(mux)
	if cfg.StatePath != "" {
		// The auxiliary snapshots ride alongside the cache state file:
		// parked handoff survives a crash, and the refinement backlog is
		// replayed so analytically-answered clients still get their measured
		// upgrade after a restart.
		s.restoreHandoff()
		s.restoreRefineQueue()
	}
	s.startCluster()
	s.mux = mux
	return s, nil
}

// ServeHTTP makes the server mountable directly into httptest and
// http.Server.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the snapshot timer and flushes the cache state (verdicts
// plus engine state, format v2) to StatePath, so the next boot resumes
// where this process stopped. It is the graceful-shutdown half of the
// persistence seam; call it after the HTTP server has drained.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.stopOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
		if s.refineStop != nil {
			// Stop the refinement workers (a job mid-measure finishes, a
			// job mid-wait abandons) before the final flush so its snapshot
			// includes their last completed work.
			close(s.refineStop)
			s.refineWG.Wait()
		}
		// Stop probing and wait out in-flight replication pushes before the
		// final flush, so entries that fail their push are parked as handoff
		// in time to be persisted.
		s.stopCluster()
	})
	if s.cfg.StatePath == "" {
		return nil
	}
	return s.flushState()
}

// flushState writes one atomic snapshot — the cache plus the auxiliary
// handoff and refinement-backlog files — and records its outcome for
// /healthz.
func (s *Server) flushState() error {
	err := s.cache.SaveFile(s.cfg.StatePath)
	if err == nil {
		err = s.flushAux()
	}
	if err != nil {
		msg := err.Error()
		s.lastFlushErr.Store(&msg)
		return err
	}
	s.lastFlushErr.Store(nil)
	s.lastSnapshot.Store(time.Now().UnixNano())
	return nil
}

// snapshotLoop is the timed background persistence: one atomic flush per
// SnapshotInterval, so a crash loses at most one interval of verdicts. A
// failing flush is recorded (and surfaced on /healthz) but does not stop
// the loop — disk pressure may clear.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.flushState()
		case <-s.snapStop:
			return
		}
	}
}

// Measurements reports the fresh measurements performed since boot.
func (s *Server) Measurements() int64 { return s.measured.Load() }

// runBatch tunes one admission round: per mergeable group, one TuneNetwork
// call over the concatenated layers. Groups run concurrently — they share
// nothing but the (concurrency-safe) cache. With RequestTimeout set, each
// group's engine time is deadline-bounded from the moment its batch runs;
// the deadline is per group, not per request, because a group's searches
// are shared across every client merged into it.
func (s *Server) runBatch(jobs []*tuneJob) {
	s.batches.Add(1)
	groups := groupJobs(jobs)
	done := make(chan struct{}, len(groups))
	for _, g := range groups {
		g := g
		go func() {
			ctx := context.Background()
			if s.cfg.RequestTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
				defer cancel()
			}
			runGroup(ctx, s.cache, g)
			done <- struct{}{}
		}()
	}
	for range groups {
		<-done
	}
	s.cache.EvictExpired()
}

// wrapMeasurer is the NetworkOptions.WrapMeasurer hook, composing the two
// seams on the measurement path: the chaos injector (innermost, emulating
// the fallible backend) and the circuit breaker (outermost, watching the
// failure rate the engine actually sees). nil when neither is configured.
func (s *Server) wrapMeasurer() func(autotune.Kind, shapes.ConvShape, autotune.Measurer) autotune.FallibleMeasurer {
	if s.injector == nil && s.breaker == nil {
		return nil
	}
	return func(kind autotune.Kind, shape shapes.ConvShape, m autotune.Measurer) autotune.FallibleMeasurer {
		fm := autotune.LiftMeasurer(m)
		if s.injector != nil {
			fm = s.injector.Wrap(chaos.SearchSalt(kind, shape), m)
		}
		return s.breaker.Wrap(fm)
	}
}

// errJSON writes a JSON error body with the given status.
func errJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxRequestBody bounds POST bodies; a maximal description (512 layers)
// is well under 1 MiB.
const maxRequestBody = 1 << 20

// handleTune is POST /v1/tune: decode and validate the network
// description, route it to its owning replica when clustered, pass
// admission, join the current batch, answer with the verdicts.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		errJSON(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		errJSON(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	desc, err := repro.ParseNetworkDescription(body)
	if err != nil {
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	arch, err := memsim.ByName(desc.Arch)
	if err != nil {
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	layers := desc.NetworkLayers()
	opts, winograd, kinds := s.requestOptions(desc.Options)
	if s.cluster != nil && s.routeTune(w, r, desc, arch, layers, opts, winograd, kinds) {
		return
	}
	s.serveTune(w, arch, layers, opts, winograd, kinds)
}

// serveTune answers one request from this replica: the breaker check, the
// admission gate, the batched sweep, the response. It is the local half of
// the routing seam — both client requests this replica owns and requests
// peers forward land here.
func (s *Server) serveTune(w http.ResponseWriter, arch memsim.Arch, layers []autotune.NetworkLayer, opts autotune.Options, winograd bool, kinds []autotune.Kind) {
	// Degradation trigger: a tripped breaker means a measured search could
	// only burn its budget on fast-fails, so answer instantly from the
	// analytic tier and let the refinement queue (and the next half-open
	// probes) bring measured service back.
	if s.breaker.State() == autotune.BreakerOpen {
		s.serveAnalytic(w, arch, layers, opts, winograd, kinds)
		return
	}

	cost := admissionCost(s.cache, arch, layers, opts.Budget, winograd, kinds)
	if !s.adm.acquire(cost) {
		if s.cfg.AnalyticOverflow {
			// Degradation trigger: overload. Instead of shedding with 429,
			// the overflow gets the instant analytic answer now and a
			// background refinement slot once budget frees up.
			s.serveAnalytic(w, arch, layers, opts, winograd, kinds)
			return
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		errJSON(w, http.StatusTooManyRequests,
			"measurement budget exhausted (%d in flight, limit %d); retry later",
			s.adm.load(), s.cfg.MaxInflight)
		return
	}
	defer s.adm.release(cost)
	s.requests.Add(1)

	job := &tuneJob{
		key: groupKey{arch: arch.Name, budget: opts.Budget, seed: opts.Seed,
			winograd: winograd, kinds: kindsKey(kinds)},
		arch: arch, layers: layers,
		opts: s.networkOptions(arch, opts, winograd, kinds),
		done: make(chan struct{}),
	}
	s.batch.submit(job)
	<-job.done
	if job.err != nil {
		errJSON(w, http.StatusInternalServerError, "%v", job.err)
		return
	}
	s.markTiers(arch.Name, job.verdicts)
	if s.cluster != nil {
		// Replicate what the sweep just cached to the key's other owners,
		// off the response path.
		s.replicateRequest(arch, layers, opts, winograd, kinds)
	}
	resp := repro.TuneResponse{Arch: arch.Name,
		Verdicts:       repro.DescribeVerdicts(job.verdicts),
		NetworkSeconds: autotune.NetworkSeconds(job.verdicts)}
	allAnalytic := true
	for _, v := range job.verdicts {
		if v.Partial {
			resp.Partial = true
		}
		if v.Tier != autotune.TierAnalytic {
			allAnalytic = false
		}
	}
	if allAnalytic {
		// Every layer fell back to the analytic tier (the breaker tripped
		// mid-run, or the backend died outright): the response is a
		// complete estimate, flagged as such, and worth refining.
		resp.Tier = autotune.TierAnalytic.String()
		s.enqueueRefine(arch, layers, opts, winograd, kinds)
	}
	if resp.Partial {
		s.partials.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// networkOptions assembles the sweep options of one admitted request; with
// any degradation trigger configured the sweep gets the analytic fallback,
// so a layer whose search dies still answers.
func (s *Server) networkOptions(arch memsim.Arch, opts autotune.Options, winograd bool, kinds []autotune.Kind) autotune.NetworkOptions {
	no := autotune.NetworkOptions{Tune: opts, Workers: s.cfg.LayerWorkers,
		Winograd: winograd, Kinds: kinds, Warm: s.cfg.Warm, Resume: s.cfg.Resume,
		WrapMeasurer: s.wrapMeasurer()}
	if s.degraded {
		no.AnalyticFallback = true
		no.AnalyticCalibration = s.analyticFor(arch).Calibration()
	}
	return no
}

// requestOptions resolves a request's overrides against the server
// defaults.
func (s *Server) requestOptions(o *repro.RequestOptions) (autotune.Options, bool, []autotune.Kind) {
	opts := s.cfg.Tune
	winograd := s.cfg.Winograd
	kinds := s.cfg.Kinds
	if o != nil {
		if o.Budget > 0 {
			opts.Budget = o.Budget
		}
		if o.Seed != 0 {
			opts.Seed = o.Seed
		}
		if o.Winograd != nil {
			winograd = *o.Winograd
		}
		if len(o.Kinds) > 0 {
			// The description validator already vetted these names; a parse
			// failure here can only mean a caller bypassed it, so fall back
			// to the server default rather than crash.
			if parsed, err := parseRequestKinds(o.Kinds); err == nil {
				kinds = parsed
			}
		}
	}
	return opts, winograd, kinds
}

// parseRequestKinds converts wire kind names to engine kinds.
func parseRequestKinds(names []string) ([]autotune.Kind, error) {
	kinds := make([]autotune.Kind, len(names))
	for i, n := range names {
		k, err := autotune.ParseKind(n)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}
	return kinds, nil
}

// kindsKey canonicalizes a kind list for grouping and dedup keys.
func kindsKey(kinds []autotune.Kind) string {
	var b strings.Builder
	for i, k := range kinds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k.String())
	}
	return b.String()
}

// retryAfterSeconds estimates how long a shed client should back off: the
// in-flight measurement budget times the emulated per-measurement
// round-trip, floored at one second.
func (s *Server) retryAfterSeconds() int64 {
	est := time.Duration(s.adm.load()) * s.cfg.Tune.MeasureLatency
	secs := int64(est / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleBench is GET /v1/bench: the benchmark trajectory JSON
// (BENCH_autotune.json), the same artifact CI archives per commit.
func (s *Server) handleBench(w http.ResponseWriter, r *http.Request) {
	if s.cfg.BenchPath == "" {
		errJSON(w, http.StatusNotFound, "no benchmark trajectory configured")
		return
	}
	data, err := os.ReadFile(s.cfg.BenchPath)
	if err != nil {
		errJSON(w, http.StatusNotFound, "benchmark trajectory: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// Health is the /healthz body: liveness plus the cache and admission
// counters that make the dedup/eviction story observable, and the
// fault-tolerance report — snapshot age, last flush error, retry and
// quarantine counters — that lets an orchestrator alert on a daemon that
// is up but no longer persisting, or up but fighting a flaky measurement
// backend.
type Health struct {
	OK             bool                `json:"ok"`
	UptimeSeconds  float64             `json:"uptime_seconds"`
	Cache          autotune.CacheStats `json:"cache"`
	InflightBudget int64               `json:"inflight_budget"`
	Measurements   int64               `json:"measurements"`
	Requests       int64               `json:"requests"`
	Rejected       int64               `json:"rejected"`
	Batches        int64               `json:"batches"`
	// SnapshotAgeSeconds is the age of the last successful state flush;
	// -1 when none has happened yet (or persistence is off). With timed
	// snapshots on, an age far past -snapshot-interval means flushes fail.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// LastFlushError is the most recent state-flush failure, cleared by
	// the next successful flush.
	LastFlushError string `json:"last_flush_error,omitempty"`
	// Retries / Quarantined count transient measurement failures absorbed
	// by the engine's retry pipeline (nonzero only with a fallible backend
	// or fault injection).
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
	// PartialResponses counts requests answered best-so-far because they
	// hit -request-timeout.
	PartialResponses int64 `json:"partial_responses"`
	// StateSalvaged is true when boot found a damaged state file and
	// recovered what it could (the remainder is in StatePath+".corrupt").
	StateSalvaged bool `json:"state_salvaged,omitempty"`
	// Breaker is the measurement circuit breaker's state — "closed",
	// "open" (analytic-only service), or "half-open" (probing) — omitted
	// when no breaker is configured.
	Breaker string `json:"breaker,omitempty"`
	// AnalyticVerdicts / RefinedVerdicts count verdicts served from the
	// analytic tier and measured upgrades of previously analytic answers;
	// MeasuredVerdicts is the ordinary-tier count for comparison. All three
	// are omitted until degradation machinery is configured.
	AnalyticVerdicts int64 `json:"analytic_verdicts,omitempty"`
	RefinedVerdicts  int64 `json:"refined_verdicts,omitempty"`
	// RefineQueueDepth / RefinedNetworks expose the background refinement
	// queue: jobs waiting, and analytically-answered networks measured so
	// far.
	RefineQueueDepth int   `json:"refine_queue_depth,omitempty"`
	RefinedNetworks  int64 `json:"refined_networks,omitempty"`
	// Cluster is the replicated-shard block — this replica's identity, the
	// peer table with reachability, the hinted-handoff backlog — omitted
	// when the daemon runs standalone.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snapAge := -1.0
	if ns := s.lastSnapshot.Load(); ns > 0 {
		snapAge = time.Since(time.Unix(0, ns)).Seconds()
	}
	flushErr := ""
	if p := s.lastFlushErr.Load(); p != nil {
		flushErr = *p
	}
	h := Health{
		OK:                 !s.closed.Load(),
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Cache:              s.cache.Stats(),
		InflightBudget:     s.adm.load(),
		Measurements:       s.measured.Load(),
		Requests:           s.requests.Load(),
		Rejected:           s.rejected.Load(),
		Batches:            s.batches.Load(),
		SnapshotAgeSeconds: snapAge,
		LastFlushError:     flushErr,
		Retries:            s.retries.Load(),
		Quarantined:        s.quarantined.Load(),
		PartialResponses:   s.partials.Load(),
		StateSalvaged:      s.salvaged.Load(),
		AnalyticVerdicts:   s.tierAnalytic.Load(),
		RefinedVerdicts:    s.tierRefined.Load(),
		RefinedNetworks:    s.refineDone.Load(),
		Cluster:            s.clusterHealth(),
	}
	if s.breaker != nil {
		h.Breaker = s.breaker.State().String()
	}
	if s.refineCh != nil {
		h.RefineQueueDepth = len(s.refineCh)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}
