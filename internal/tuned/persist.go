package tuned

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"

	"repro"
	"repro/internal/autotune"
	"repro/internal/memsim"
)

// This file is the auxiliary persistence riding alongside the cache state
// file (StatePath): the hinted-handoff queue (StatePath+".handoff") and the
// background refinement backlog (StatePath+".refine"). Both are written by
// the same timed/shutdown flush as the cache, with the same atomic
// temp+fsync+rename discipline, and restored on boot — a crashed replica
// neither loses the writes it was holding for a down peer nor forgets the
// analytically-answered clients it owed a measured upgrade. Both files are
// best-effort state: a missing, torn or version-skewed file restores
// nothing and boot proceeds (the cache file is the source of truth; these
// only save redundant work).

// auxFormatVersion versions the two auxiliary snapshot files.
const auxFormatVersion = 1

// handoffFile is the on-disk form of the hinted-handoff queue: per peer,
// the parked cache entries in the same validated entry format as the cache
// file itself.
type handoffFile struct {
	Version int                              `json:"version"`
	Peers   map[string][]autotune.CacheEntry `json:"peers"`
}

// refineFile is the on-disk form of the refinement backlog: each job as the
// client-facing network description, so the replay path is the ordinary
// request path (validation included).
type refineFile struct {
	Version int                        `json:"version"`
	Jobs    []repro.NetworkDescription `json:"jobs"`
}

func (s *Server) handoffPath() string { return s.cfg.StatePath + ".handoff" }
func (s *Server) refinePath() string  { return s.cfg.StatePath + ".refine" }

// atomicWriteFile writes data with the cache snapshot's crash discipline:
// temp file in the same directory, fsync, rename over path.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// flushAux snapshots the handoff queue and the refinement backlog, when
// their machinery is configured.
func (s *Server) flushAux() error {
	if s.cluster != nil {
		data, err := json.Marshal(handoffFile{Version: auxFormatVersion, Peers: s.cluster.handoff.Snapshot()})
		if err != nil {
			return err
		}
		if err := atomicWriteFile(s.handoffPath(), data); err != nil {
			return err
		}
	}
	if s.refineCh != nil {
		s.refineMu.Lock()
		keys := make([]string, 0, len(s.refineJobs))
		for k := range s.refineJobs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		jobs := make([]repro.NetworkDescription, len(keys))
		for i, k := range keys {
			jobs[i] = s.refineJobs[k]
		}
		s.refineMu.Unlock()
		data, err := json.Marshal(refineFile{Version: auxFormatVersion, Jobs: jobs})
		if err != nil {
			return err
		}
		if err := atomicWriteFile(s.refinePath(), data); err != nil {
			return err
		}
	}
	return nil
}

// rememberRefineJob records an enqueued refinement job in the form the
// snapshot persists (the wire description the replay feeds back through the
// request path).
func (s *Server) rememberRefineJob(key string, arch memsim.Arch, layers []autotune.NetworkLayer, opts autotune.Options, winograd bool, kinds []autotune.Kind) {
	desc := repro.DescribeNetwork(arch.Name, layers)
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	wg := winograd
	desc.Options = &repro.RequestOptions{Budget: opts.Budget, Seed: opts.Seed, Winograd: &wg, Kinds: names}
	s.refineMu.Lock()
	s.refineJobs[key] = desc
	s.refineMu.Unlock()
}

// restoreHandoff reloads parked hinted handoff from the last snapshot.
func (s *Server) restoreHandoff() {
	if s.cluster == nil {
		return
	}
	data, err := os.ReadFile(s.handoffPath())
	if err != nil {
		return
	}
	var f handoffFile
	if json.Unmarshal(data, &f) != nil || f.Version != auxFormatVersion {
		return
	}
	s.cluster.handoff.Restore(f.Peers)
}

// restoreRefineQueue re-enqueues the persisted refinement backlog through
// the ordinary enqueue path, re-validating every description — a corrupted
// or hand-edited file can drop jobs but cannot poison the queue.
func (s *Server) restoreRefineQueue() {
	if s.refineCh == nil {
		return
	}
	data, err := os.ReadFile(s.refinePath())
	if err != nil {
		return
	}
	var f refineFile
	if json.Unmarshal(data, &f) != nil || f.Version != auxFormatVersion {
		return
	}
	for _, d := range f.Jobs {
		if d.Validate() != nil {
			continue
		}
		arch, err := memsim.ByName(d.Arch)
		if err != nil {
			continue
		}
		opts, winograd, kinds := s.requestOptions(d.Options)
		s.enqueueRefine(arch, d.NetworkLayers(), opts, winograd, kinds)
	}
}
