package tuned

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/memsim"
	"repro/internal/models"
)

// The clustered e2e suite: N real replicas on real listeners, requests
// proxied between them over real HTTP, replicas killed mid-sweep and
// rebooted fresh. The acceptance property is the replica-loss chaos proof:
// with 3 replicas at replication factor 2, killing any one mid-sweep yields
// zero client-visible errors, the killed replica rejoins and drains its
// peers' hinted handoff to zero, and a repeated request lands on the
// rejoined replica's replicated cache with zero fresh measurements. The CI
// cluster job runs this suite under -race with TUNED_E2E_CHAOS set, so the
// proof holds on a flaky measurement backend too.

// clusterHarness runs n replicas as real http.Servers on real ports —
// httptest is avoided deliberately: its Close waits for handlers, while a
// killed replica must drop mid-request like a crashed process.
type clusterHarness struct {
	t         *testing.T
	addrs     []string // advertise addresses, http://127.0.0.1:port
	hostports []string
	cfgs      []Config
	servers   []*Server
	https     []*http.Server

	mu    sync.Mutex
	alive []bool
}

// newClusterHarness boots n replicas sharing one peer list. mutate, when
// non-nil, adjusts each replica's daemon config before boot (same config on
// every replica, as a real deployment would run).
func newClusterHarness(t *testing.T, n int, ccfg cluster.Config, mutate func(i int, cfg *Config)) *clusterHarness {
	t.Helper()
	h := &clusterHarness{t: t}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		h.hostports = append(h.hostports, ln.Addr().String())
		h.addrs = append(h.addrs, "http://"+ln.Addr().String())
	}
	ccfg.Peers = h.addrs
	if ccfg.ProbeInterval == 0 {
		ccfg.ProbeInterval = 20 * time.Millisecond
	}
	if ccfg.ProbeBackoffMax == 0 {
		ccfg.ProbeBackoffMax = 100 * time.Millisecond
	}
	h.alive = make([]bool, n)
	for i := 0; i < n; i++ {
		cc := ccfg
		cc.Self = h.addrs[i]
		cfg := Config{Tune: tinyOpts(12, 5), Winograd: true, Warm: true, Cluster: cc}
		if mutate != nil {
			mutate(i, &cfg)
		}
		cfg = applyE2EEnv(t, cfg)
		h.cfgs = append(h.cfgs, cfg)
		h.servers = append(h.servers, nil)
		h.https = append(h.https, nil)
		h.boot(i, listeners[i])
	}
	t.Cleanup(func() {
		for i := range h.servers {
			h.mu.Lock()
			alive := h.alive[i]
			h.mu.Unlock()
			if alive {
				h.kill(i)
			}
		}
	})
	return h
}

func (h *clusterHarness) boot(i int, ln net.Listener) {
	h.t.Helper()
	srv, err := New(h.cfgs[i])
	if err != nil {
		h.t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	h.mu.Lock()
	h.servers[i] = srv
	h.https[i] = hs
	h.alive[i] = true
	h.mu.Unlock()
	go hs.Serve(ln)
}

// kill emulates a replica crash: the listener and every open connection
// drop immediately (in-flight requests on it die mid-response), then the
// dead instance's background loops are stopped so the test stays leak- and
// race-clean. The Server instance is discarded — rejoin boots a fresh one.
func (h *clusterHarness) kill(i int) {
	h.t.Helper()
	h.mu.Lock()
	hs, srv := h.https[i], h.servers[i]
	h.alive[i] = false
	h.mu.Unlock()
	hs.Close()
	srv.Close()
}

// restart rejoins replica i: a fresh Server (fresh cache unless the config
// carries a StatePath — crash semantics) on the same advertised port.
func (h *clusterHarness) restart(i int) {
	h.t.Helper()
	var ln net.Listener
	var err error
	// The just-released port can straggle briefly; retry the bind.
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", h.hostports[i])
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		h.t.Fatalf("rebind %s: %v", h.hostports[i], err)
	}
	h.boot(i, ln)
}

// ownersOf resolves which replicas own a request, primary first.
func (h *clusterHarness) ownersOf(desc repro.NetworkDescription) []int {
	h.t.Helper()
	srv := h.servers[0]
	arch, err := memsim.ByName(desc.Arch)
	if err != nil {
		h.t.Fatal(err)
	}
	opts, winograd, kinds := srv.requestOptions(desc.Options)
	key := requestKey(arch.Name, desc.NetworkLayers(), opts.Budget, opts.Seed, winograd, kinds)
	var owners []int
	for _, addr := range srv.cluster.ring.Owners(key, srv.cluster.cfg.Replicas) {
		for i, a := range h.addrs {
			if a == addr {
				owners = append(owners, i)
			}
		}
	}
	return owners
}

// nonOwnerOf returns a replica index outside owners.
func (h *clusterHarness) nonOwnerOf(owners []int) int {
	h.t.Helper()
	for i := range h.servers {
		owned := false
		for _, o := range owners {
			if o == i {
				owned = true
			}
		}
		if !owned {
			return i
		}
	}
	h.t.Fatal("no non-owner replica")
	return -1
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A request POSTed to a replica that does not own its key is proxied to the
// owner, answered measured, and the produced cache entries are replicated
// to the secondary owner — which then serves the identical request from
// cache with zero fresh measurements of its own.
func TestClusterForwardsToOwnerAndReplicates(t *testing.T) {
	h := newClusterHarness(t, 3, cluster.Config{Replicas: 2, HedgeAfter: 2 * time.Second}, nil)
	desc := repro.DescribeNetwork(testArch.Name, netA())
	owners := h.ownersOf(desc)
	client := h.nonOwnerOf(owners)
	primary, secondary := owners[0], owners[1]

	resp, code := postTune(t, h.addrs[client], desc)
	if code != http.StatusOK {
		t.Fatalf("forwarded request: status %d", code)
	}
	for _, v := range resp.Verdicts {
		if v.Tier != autotune.TierMeasured.String() {
			t.Errorf("layer %s tier %q, want measured", v.Layer, v.Tier)
		}
	}
	if got := h.servers[client].cluster.forwarded.Load(); got != 1 {
		t.Errorf("client forwarded %d requests, want 1", got)
	}
	if got := h.servers[primary].cluster.forwardServed.Load(); got != 1 {
		t.Errorf("primary served %d forwarded requests, want 1", got)
	}
	if n := h.servers[client].Measurements(); n != 0 {
		t.Errorf("non-owner measured %d times", n)
	}

	// Replication is async; once the secondary has merged the push it must
	// serve the identical request without a single fresh measurement.
	waitUntil(t, "secondary merged the replication push", func() bool {
		return h.servers[secondary].cluster.mergedEntries.Load() > 0
	})
	resp2, code := postTune(t, h.addrs[secondary], desc)
	if code != http.StatusOK {
		t.Fatalf("replica-local request: status %d", code)
	}
	for _, v := range resp2.Verdicts {
		if !v.Shared {
			t.Errorf("layer %s not served shared from the replicated cache", v.Layer)
		}
	}
	if n := h.servers[secondary].Measurements(); n != 0 {
		t.Errorf("secondary measured %d times despite replication", n)
	}

	// The peer table and the cluster series are visible.
	health := getHealth(t, h.addrs[client])
	if health.Cluster == nil || len(health.Cluster.Peers) != 2 || health.Cluster.ReplicationFactor != 2 {
		t.Fatalf("healthz cluster block = %+v", health.Cluster)
	}
	for _, p := range health.Cluster.Peers {
		if !p.Up {
			t.Errorf("peer %s down in a healthy cluster", p.Addr)
		}
	}
	m := getMetrics(t, h.addrs[client])
	mustContain(t, m, "tuned_forwarded_total 1")
	mustContain(t, m, `tuned_peer_up{peer="`+h.addrs[primary]+`"} 1`)
	mustContain(t, m, "tuned_handoff_depth 0")
	mp := getMetrics(t, h.addrs[primary])
	mustContain(t, mp, "tuned_forward_served_total 1")
	mustContain(t, mp, "tuned_replicate_pushed_entries_total")
}

// The acceptance chaos proof. Three replicas, replication factor 2: the
// primary owner of a ResNet-18 sweep is killed mid-sweep while clients keep
// POSTing to a surviving non-owner. Required outcome: zero client-visible
// errors (every response 200, every verdict tier measured/refined/
// analytic), the killed replica rejoins and the survivors drain their
// hinted handoff to zero, and the rejoined replica then serves the repeated
// request from its replicated cache with zero fresh measurements.
func TestClusterReplicaLossMidSweepZeroClientErrors(t *testing.T) {
	h := newClusterHarness(t, 3, cluster.Config{Replicas: 2, HedgeAfter: 150 * time.Millisecond},
		func(i int, cfg *Config) {
			// Stretch the sweep so the kill lands mid-flight.
			cfg.Tune = tinyOpts(12, 3)
			cfg.Tune.MeasureLatency = 2 * time.Millisecond
		})
	resnet := repro.DescribeNetwork(testArch.Name, models.ResNet18().NetworkLayers())
	owners := h.ownersOf(resnet)
	client := h.nonOwnerOf(owners)
	primary, secondary := owners[0], owners[1]

	// Concurrent clients: the ResNet sweep plus a second distinct network,
	// all through the surviving non-owner replica.
	type outcome struct {
		resp repro.TuneResponse
		code int
		name string
	}
	results := make(chan outcome, 3)
	post := func(name string, d repro.NetworkDescription) {
		resp, code := postTune(t, h.addrs[client], d)
		results <- outcome{resp, code, name}
	}
	go post("resnet-1", resnet)
	go post("resnet-2", resnet)
	go post("netB", repro.DescribeNetwork(testArch.Name, netB()))

	time.Sleep(80 * time.Millisecond) // let the sweep start on the owner
	h.kill(primary)

	for i := 0; i < 3; i++ {
		out := <-results
		if out.code != http.StatusOK {
			t.Fatalf("%s: client-visible error: status %d", out.name, out.code)
		}
		for _, v := range out.resp.Verdicts {
			switch v.Tier {
			case autotune.TierMeasured.String(), autotune.TierRefined.String(), autotune.TierAnalytic.String():
			default:
				t.Errorf("%s: layer %s has tier %q", out.name, v.Layer, v.Tier)
			}
		}
	}

	// The secondary owner completed the failed-over sweep; its replication
	// push to the dead primary must have parked as hinted handoff.
	waitUntil(t, "secondary sees the primary down", func() bool {
		return !h.servers[secondary].cluster.membership.Up(h.addrs[primary])
	})
	waitUntil(t, "handoff queued for the dead primary", func() bool {
		return h.servers[secondary].cluster.handoff.Depth(h.addrs[primary]) > 0
	})

	// Rejoin: a fresh instance (fresh cache — crash semantics) on the same
	// address. The survivors' probes notice and drain the handoff to zero.
	h.restart(primary)
	waitUntil(t, "handoff drained to the rejoined primary", func() bool {
		_, replayed, _ := h.servers[secondary].cluster.handoff.Stats()
		return replayed > 0 && h.servers[secondary].cluster.handoff.Depth(h.addrs[primary]) == 0
	})
	m := getMetrics(t, h.addrs[secondary])
	mustContain(t, m, "tuned_handoff_depth 0")

	// The rejoined replica owns the key again and serves the repeat from
	// the replicated entries alone: zero fresh measurements, all shared.
	resp, code := postTune(t, h.addrs[primary], resnet)
	if code != http.StatusOK {
		t.Fatalf("repeat on rejoined primary: status %d", code)
	}
	for _, v := range resp.Verdicts {
		if !v.Shared {
			t.Errorf("layer %s not served from the replicated cache", v.Layer)
		}
		if v.Tier != autotune.TierMeasured.String() && v.Tier != autotune.TierRefined.String() {
			t.Errorf("layer %s tier %q after rejoin", v.Layer, v.Tier)
		}
	}
	if n := h.servers[primary].Measurements(); n != 0 {
		t.Errorf("rejoined primary ran %d fresh measurements, want 0 (replicated cache)", n)
	}
}

// With every owner of a key unreachable, the proxying replica answers from
// its local analytic tier — 200, tier "analytic" — never a 5xx; once an
// owner rejoins, the same request routes to it again and comes back
// measured.
func TestClusterAllOwnersDownFallsBackToAnalytic(t *testing.T) {
	h := newClusterHarness(t, 3, cluster.Config{Replicas: 2, HedgeAfter: 50 * time.Millisecond}, nil)
	desc := repro.DescribeNetwork(testArch.Name, netA())
	owners := h.ownersOf(desc)
	client := h.nonOwnerOf(owners)
	h.kill(owners[0])
	h.kill(owners[1])

	resp, code := postTune(t, h.addrs[client], desc)
	if code != http.StatusOK {
		t.Fatalf("orphaned request: status %d, want 200 from the analytic floor", code)
	}
	if resp.Tier != autotune.TierAnalytic.String() {
		t.Fatalf("orphaned request tier %q, want analytic", resp.Tier)
	}
	if got := h.servers[client].cluster.localFallbacks.Load(); got != 1 {
		t.Errorf("local fallbacks %d, want 1", got)
	}
	mustContain(t, getMetrics(t, h.addrs[client]), "tuned_forward_local_fallback_total 1")

	// An owner rejoining restores measured routing for the same request.
	h.restart(owners[0])
	waitUntil(t, "client sees the rejoined owner", func() bool {
		return h.servers[client].cluster.membership.Up(h.addrs[owners[0]])
	})
	resp, code = postTune(t, h.addrs[client], desc)
	if code != http.StatusOK || resp.Tier == autotune.TierAnalytic.String() {
		t.Fatalf("post-rejoin request: status %d tier %q, want 200 measured", code, resp.Tier)
	}
}

// Hinted handoff survives a crash of the replica holding it: the aux
// snapshot persists the queue alongside the cache state, a fresh boot
// restores it, and the drain still happens when the down peer finally
// rejoins.
func TestClusterHandoffPersistsAcrossRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuned.cache")
	h := newClusterHarness(t, 2, cluster.Config{Replicas: 2, HedgeAfter: 50 * time.Millisecond},
		func(i int, cfg *Config) {
			if i == 0 {
				cfg.StatePath = state
			}
		})
	desc := repro.DescribeNetwork(testArch.Name, netA())

	// With 2 peers at RF 2 every key is owned by both: kill B, serve on A,
	// and the replication to B must park as handoff.
	h.kill(1)
	if _, code := postTune(t, h.addrs[0], desc); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	waitUntil(t, "handoff parked for the dead peer", func() bool {
		return h.servers[0].cluster.handoff.Depth(h.addrs[1]) > 0
	})

	// Crash-restart A; the handoff file must bring the backlog back.
	h.kill(0)
	if _, err := os.Stat(state + ".handoff"); err != nil {
		t.Fatalf("handoff snapshot not written: %v", err)
	}
	h.restart(0)
	if h.servers[0].cluster.handoff.Depth(h.addrs[1]) == 0 {
		t.Fatal("restored replica lost its handoff backlog")
	}

	// B rejoins: the restored backlog drains and B serves the request from
	// the replayed entries with zero fresh measurements.
	waitUntil(t, "restored replica sees the peer down", func() bool {
		return !h.servers[0].cluster.membership.Up(h.addrs[1])
	})
	h.restart(1)
	waitUntil(t, "restored handoff drained", func() bool {
		return h.servers[0].cluster.handoff.Depth(h.addrs[1]) == 0 &&
			h.servers[1].cluster.mergedEntries.Load() > 0
	})
	resp, code := postTune(t, h.addrs[1], desc)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, v := range resp.Verdicts {
		if !v.Shared {
			t.Errorf("layer %s not served from replayed handoff", v.Layer)
		}
	}
	if n := h.servers[1].Measurements(); n != 0 {
		t.Errorf("rejoined peer measured %d times despite handoff replay", n)
	}
}

// The background refinement backlog survives a restart: jobs enqueued for
// analytically-answered requests are persisted in the timed snapshot and
// re-enqueued on boot, so the measured upgrade still happens even if the
// daemon restarts in between.
func TestServerRefineQueuePersistsAcrossRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuned.cache")
	desc := repro.DescribeNetwork(testArch.Name, netA())
	desc.Options = &repro.RequestOptions{Budget: 8, Seed: 9}

	// First life: a dead measurement backend (100% injected failure) with a
	// breaker that stays open — every answer is analytic and its refinement
	// job can only wait.
	srv1, err := New(Config{
		Tune: tinyOpts(8, 9), Winograd: true, StatePath: state,
		Chaos: chaos.Config{Seed: 1, FailRate: 1},
		Breaker: autotune.BreakerConfig{
			Threshold: 0.5, Window: 8, MinSamples: 4, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHarnessServer(t, srv1)
	resp, code := postTune(t, ts, desc)
	if code != http.StatusOK || resp.Tier != autotune.TierAnalytic.String() {
		t.Fatalf("dead backend: status %d tier %q, want 200 analytic", code, resp.Tier)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state + ".refine"); err != nil {
		t.Fatalf("refine snapshot not written: %v", err)
	}

	// Second life: healthy backend. The restored backlog must measure the
	// network without any client asking again.
	srv2, ts2 := newTestServer(t, Config{
		Tune: tinyOpts(8, 9), Winograd: true, StatePath: state, AnalyticOverflow: true,
	})
	waitUntil(t, "restored refinement job measured", func() bool {
		return srv2.refineDone.Load() > 0
	})
	resp, code = postTune(t, ts2.URL, desc)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, v := range resp.Verdicts {
		if v.Tier != autotune.TierRefined.String() {
			t.Errorf("layer %s tier %q, want refined (restored queue measured it)", v.Layer, v.Tier)
		}
	}
}

// newHarnessServer serves one prebuilt Server over a real listener and
// returns its base URL (teardown via t.Cleanup; Close is the caller's).
func newHarnessServer(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return fmt.Sprintf("http://%s", ln.Addr())
}
