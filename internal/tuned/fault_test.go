package tuned

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/chaos"
)

// Fault-tolerance e2e: the daemon's crash-safety and degradation story —
// request deadlines answer best-so-far and resume, timed snapshots persist
// without shutdown, a torn state file salvages on boot, and seeded fault
// injection leaves every verdict untouched.

// A request that cannot finish inside -request-timeout answers 200 with
// best-so-far verdicts marked partial; because the truncated engine state
// is persisted, re-POSTing the identical request continues the search and
// eventually completes it.
func TestServerRequestTimeoutPartialThenResume(t *testing.T) {
	opts := tinyOpts(40, 9)
	opts.Workers = 1
	opts.MeasureLatency = 4 * time.Millisecond
	srv, ts := newTestServer(t, Config{
		Tune: opts, Winograd: false, Resume: true,
		RequestTimeout: 60 * time.Millisecond,
	})
	desc := repro.DescribeNetwork(testArch.Name, netA()[:1])

	first, status := postTune(t, ts.URL, desc)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d", status)
	}
	if !first.Partial {
		t.Fatal("deadline-starved request not marked partial")
	}
	if len(first.Verdicts) != 1 || !first.Verdicts[0].Partial {
		t.Fatalf("partial response carries no partial verdict: %+v", first.Verdicts)
	}
	if !(first.Verdicts[0].Seconds > 0) {
		t.Error("partial verdict has no best-so-far measurement")
	}
	if got := srv.Measurements(); got == 0 || got >= 40 {
		t.Errorf("partial request measured %d configs, want a strict nonempty prefix of the budget", got)
	}

	// The same request, repeated, continues the persisted search until it
	// converges; progress is monotone so the loop is bounded.
	final := first
	for i := 0; final.Partial && i < 60; i++ {
		final, status = postTune(t, ts.URL, desc)
		if status != http.StatusOK {
			t.Fatalf("resume request %d: status %d", i, status)
		}
	}
	if final.Partial {
		t.Fatal("search never completed across repeated requests")
	}
	if final.Verdicts[0].Seconds > first.Verdicts[0].Seconds {
		t.Errorf("completed verdict %g worse than the partial one %g",
			final.Verdicts[0].Seconds, first.Verdicts[0].Seconds)
	}
	if h := getHealth(t, ts.URL); h.PartialResponses < 1 {
		t.Errorf("healthz partial_responses = %d, want >= 1", h.PartialResponses)
	}
}

// With -snapshot-interval set, the state file appears (and stays loadable)
// while the server is still running — no shutdown required — and /healthz
// reports the snapshot age.
func TestServerSnapshotIntervalFlushesInBackground(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuned.cache")
	srv, ts := newTestServer(t, Config{
		Tune: tinyOpts(12, 5), Winograd: false,
		StatePath: state, SnapshotInterval: 15 * time.Millisecond,
	})
	if _, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, netA()[:1])); status != http.StatusOK {
		t.Fatalf("tune request: status %d", status)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(state); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background snapshot appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The snapshot is atomic, so whenever we look the file is complete.
	restored := autotune.NewCache()
	if err := restored.LoadFile(state); err != nil {
		t.Fatalf("background snapshot not loadable: %v", err)
	}
	if restored.Len() == 0 {
		t.Error("background snapshot holds no entries")
	}
	if h := getHealth(t, ts.URL); h.SnapshotAgeSeconds < 0 {
		t.Errorf("healthz snapshot_age_seconds = %v after a flush, want >= 0", h.SnapshotAgeSeconds)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// The crash-recovery acceptance path: a daemon killed mid-write leaves a
// torn state file; the next boot salvages the complete entries, sets the
// damaged file aside, reports state_salvaged on /healthz, and answers the
// repeated request purely from the salvaged state — zero fresh
// measurements.
func TestServerBootSalvagesTornState(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuned.cache")
	opts := tinyOpts(12, 5)
	desc := repro.DescribeNetwork(testArch.Name, netA())
	cfg := Config{Tune: opts, Winograd: true, Warm: true, Resume: true, StatePath: state}

	srv1, ts1 := newTestServer(t, cfg)
	first, status := postTune(t, ts1.URL, desc)
	if status != http.StatusOK {
		t.Fatalf("first boot: status %d", status)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the flushed file the way a mid-write kill would: cut the tail.
	// Every entry body survives; the envelope (and its checksum) do not.
	data, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(state, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, cfg)
	h := getHealth(t, ts2.URL)
	if !h.StateSalvaged {
		t.Error("healthz does not report the salvage")
	}
	if _, err := os.Stat(state + ".corrupt"); err != nil {
		t.Errorf("torn file not set aside as .corrupt: %v", err)
	}

	second, status := postTune(t, ts2.URL, desc)
	if status != http.StatusOK {
		t.Fatalf("second boot: status %d", status)
	}
	if got := srv2.Measurements(); got != 0 {
		t.Errorf("rebooted server measured %d fresh configs, want 0 (pure replay from salvage)", got)
	}
	for i, v := range second.Verdicts {
		want := first.Verdicts[i]
		want.Shared = v.Shared // the replayed boot serves from cache by design
		if v != want {
			t.Errorf("verdict %d changed across the salvage: %+v != %+v", i, v, want)
		}
	}
	if second.NetworkSeconds != first.NetworkSeconds {
		t.Errorf("network seconds changed across the salvage: %g != %g",
			second.NetworkSeconds, first.NetworkSeconds)
	}
}

// Seeded fault injection under the engine's retry pipeline must be
// invisible in the response: verdicts and the fresh-measurement count
// match a fault-free direct run exactly, while /healthz shows the absorbed
// retries.
func TestServerChaosInjectionPreservesVerdicts(t *testing.T) {
	clean := tinyOpts(16, 7)
	opts := clean
	opts.Retry.MaxAttempts = 4 // strictly above the injector's streak cap
	srv, ts := newTestServer(t, Config{
		Tune: opts, Winograd: true,
		Chaos: chaos.Config{Seed: 1, FailRate: 0.2, MaxConsecutive: 2},
	})
	layers := netA()
	resp, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, layers))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}

	direct, directCount := countMeasurements(t, layers,
		autotune.NetworkOptions{Tune: clean, Winograd: true})
	want := repro.DescribeVerdicts(direct)
	for i, v := range resp.Verdicts {
		got := v
		got.Shared = want[i].Shared
		if got != want[i] {
			t.Errorf("verdict %d under chaos: %+v != fault-free %+v", i, v, want[i])
		}
	}
	if got := srv.Measurements(); got != directCount {
		t.Errorf("chaos run measured %d fresh configs, fault-free run %d", got, directCount)
	}
	h := getHealth(t, ts.URL)
	if h.Retries == 0 {
		t.Error("healthz retries = 0 although faults were injected")
	}
	if h.Quarantined != 0 {
		t.Errorf("healthz quarantined = %d; the streak cap must keep every config alive", h.Quarantined)
	}
	if resp.Partial || h.PartialResponses != 0 {
		t.Error("chaos run spuriously partial")
	}
}
