package tuned

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/autotune"
	"repro/internal/chaos"
	"repro/internal/models"
)

// The graceful-degradation e2e suite: a daemon that never refuses an
// answer. Three triggers are proved over live HTTP — a dead measurement
// backend (breaker trips, analytic-only service, half-open recovery),
// admission overload with AnalyticOverflow (instant analytic 200 instead
// of 429, background refinement upgrade), and the zero-config baseline
// (no degradation configured → every verdict tier "measured", wire format
// bit-identical to the pre-degradation daemon).

// degradedConfig arms a fast-recovering breaker over a dead injected
// backend: FailRate 1 with no consecutive cap is a backend where every
// measurement fails until the injector is suspended.
func degradedConfig() Config {
	opts := tinyOpts(8, 1)
	opts.Retry.MaxAttempts = 2
	return Config{
		Tune:     opts,
		Winograd: true,
		Chaos:    chaos.Config{Seed: 1, FailRate: 1},
		Breaker: autotune.BreakerConfig{
			Threshold: 0.5, Window: 8, MinSamples: 4,
			Cooldown: 50 * time.Millisecond, Probes: 3,
		},
	}
}

// getMetrics fetches /metrics and returns the exposition text.
func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// mustContain asserts one exposition line is present.
func mustContain(t *testing.T, metrics, want string) {
	t.Helper()
	if !strings.Contains(metrics, want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// The acceptance e2e: under 100%% injected measurement failure the daemon
// answers 200 with complete analytic verdicts for ResNet-18 and
// MobileNet-V1 — never 429 or 5xx — trips the breaker, reports the
// degraded state on /healthz and /metrics, and returns to measured
// verdicts via half-open probes once the injection stops.
func TestServerDegradedDeadBackendServesAnalyticAndRecovers(t *testing.T) {
	srv, ts := newTestServer(t, degradedConfig())

	networks := []repro.NetworkDescription{
		repro.DescribeNetwork(testArch.Name, models.ResNet18().NetworkLayers()),
		repro.DescribeNetwork(testArch.Name, models.MobileNetV1().NetworkLayers()),
	}
	for _, desc := range networks {
		resp, status := postTune(t, ts.URL, desc)
		if status != http.StatusOK {
			t.Fatalf("%s under dead backend: status %d, want 200", desc.Name, status)
		}
		if resp.Tier != "analytic" {
			t.Fatalf("%s: response tier %q, want analytic", desc.Name, resp.Tier)
		}
		if len(resp.Verdicts) != len(desc.Layers) {
			t.Fatalf("%s: %d verdicts for %d layers", desc.Name, len(resp.Verdicts), len(desc.Layers))
		}
		for _, v := range resp.Verdicts {
			if v.Tier != "analytic" {
				t.Fatalf("%s layer %s: tier %q, want analytic", desc.Name, v.Layer, v.Tier)
			}
			if !(v.Seconds > 0) {
				t.Fatalf("%s layer %s: non-positive estimate", desc.Name, v.Layer)
			}
		}
		if !(resp.NetworkSeconds > 0) {
			t.Fatalf("%s: non-positive network estimate", desc.Name)
		}
	}

	// The first sweep tripped the breaker; the degraded state is visible.
	// The cooldown may already have elapsed by the time we look, so the
	// breaker legitimately reads "open" or "half-open" — but never
	// "closed" while the injection stays on.
	h := getHealth(t, ts.URL)
	if h.Breaker != "open" && h.Breaker != "half-open" {
		t.Fatalf("health breaker %q after dead-backend sweep, want open/half-open", h.Breaker)
	}
	if h.AnalyticVerdicts == 0 {
		t.Fatal("health reports no analytic verdicts after analytic-only service")
	}
	if h.Rejected != 0 {
		t.Fatalf("%d requests rejected; degradation must not shed", h.Rejected)
	}
	metrics := getMetrics(t, ts.URL)
	mustContain(t, metrics, "# TYPE tuned_breaker_state gauge")
	mustContain(t, metrics, `tuned_breaker_transitions_total{state="open"}`)
	mustContain(t, metrics, `tuned_verdicts_total{tier="analytic",kind="direct"}`)

	// While the backend stays dead, every further request is a complete
	// analytic 200 — instantly (breaker open) or via the sweep-level
	// fallback (a half-open probe burst that fails and re-trips).
	if resp, status := postTune(t, ts.URL, networks[0]); status != http.StatusOK || resp.Tier != "analytic" {
		t.Fatalf("dead-backend request: status %d tier %q, want 200 analytic", status, resp.Tier)
	}

	// Outage over: suspend injection and poll until half-open probes close
	// the breaker and measured verdicts come back.
	srv.injector.SetSuspended(true)
	deadline := time.Now().Add(30 * time.Second)
	small := repro.DescribeNetwork(testArch.Name, netA()[:1])
	for {
		resp, status := postTune(t, ts.URL, small)
		if status != http.StatusOK {
			t.Fatalf("recovery request: status %d", status)
		}
		if resp.Tier == "" {
			measured := true
			for _, v := range resp.Verdicts {
				if v.Tier == "analytic" {
					measured = false
				}
			}
			if measured {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered to measured verdicts; last tier %q", resp.Tier)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := getHealth(t, ts.URL); h.Breaker != "closed" {
		t.Fatalf("health breaker %q after recovery, want closed", h.Breaker)
	}
	mustContain(t, getMetrics(t, ts.URL), `tuned_breaker_transitions_total{state="closed"}`)
}

// Overload degradation: with AnalyticOverflow set, a request beyond the
// admission budget gets an instant analytic 200 instead of a 429, and the
// background refinement queue measures it once budget frees up — a later
// re-POST serves the measured upgrade with tier "refined".
func TestServerAnalyticOverflowAndRefinement(t *testing.T) {
	opts := tinyOpts(8, 3)
	opts.Workers = 1
	opts.MeasureLatency = 20 * time.Millisecond
	srv, ts := newTestServer(t, Config{
		Tune: opts, Winograd: false, MaxInflight: 8, AnalyticOverflow: true,
	})

	descA := repro.DescribeNetwork(testArch.Name, netA()[:1])
	descB := repro.DescribeNetwork(testArch.Name, netB()[1:])

	// A occupies the whole admission budget...
	done := make(chan int, 1)
	go func() {
		_, status := postTune(t, ts.URL, descA)
		done <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for getHealth(t, ts.URL).InflightBudget == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request A never showed up in the in-flight budget")
		}
		time.Sleep(time.Millisecond)
	}

	// ...so B overflows — and is served analytically, not shed.
	resp, status := postTune(t, ts.URL, descB)
	if status != http.StatusOK {
		t.Fatalf("overflow request: status %d, want 200 (analytic)", status)
	}
	if resp.Tier != "analytic" {
		t.Fatalf("overflow response tier %q, want analytic", resp.Tier)
	}
	for _, v := range resp.Verdicts {
		if v.Tier != "analytic" {
			t.Fatalf("overflow layer %s: tier %q, want analytic", v.Layer, v.Tier)
		}
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("request A: status %d", status)
	}
	if h := getHealth(t, ts.URL); h.Rejected != 0 {
		t.Fatalf("%d rejected; AnalyticOverflow must never shed", h.Rejected)
	}

	// The refinement queue measures B in the background; once it has, a
	// re-POST serves the measured verdict from the cache with tier
	// "refined". A re-POST racing ahead of the worker runs (or joins) the
	// measured search itself — tier "measured" — so poll until the upgrade
	// lands.
	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, status := postTune(t, ts.URL, descB)
		if status != http.StatusOK {
			t.Fatalf("re-POST: status %d", status)
		}
		refined := resp.Tier == ""
		for _, v := range resp.Verdicts {
			if v.Tier != "refined" || !v.Shared {
				refined = false
			}
		}
		if refined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refinement never upgraded the analytic answer; last tier %q", resp.Tier)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := getHealth(t, ts.URL); h.RefinedNetworks == 0 || h.RefinedVerdicts == 0 {
		t.Fatalf("health after refinement: networks %d verdicts %d, want > 0",
			h.RefinedNetworks, h.RefinedVerdicts)
	}
	_ = srv
}

// Zero-config equivalence: with no degradation configured the daemon's
// wire format carries tier "measured" on every verdict, no top-level tier,
// no breaker field on /healthz — and the analytic machinery stays cold.
func TestServerZeroConfigTiersMeasured(t *testing.T) {
	if degradedE2E() {
		t.Skip("asserts unarmed wire format; the degraded gate arms every server")
	}
	_, ts := newTestServer(t, Config{Tune: tinyOpts(8, 1), Winograd: true})
	resp, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, netA()))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Tier != "" {
		t.Fatalf("response tier %q, want empty", resp.Tier)
	}
	for _, v := range resp.Verdicts {
		if v.Tier != "measured" {
			t.Fatalf("layer %s: tier %q, want measured", v.Layer, v.Tier)
		}
	}
	h := getHealth(t, ts.URL)
	if h.Breaker != "" {
		t.Fatalf("health breaker %q on an undegraded server, want empty", h.Breaker)
	}
	if h.AnalyticVerdicts != 0 || h.RefinedVerdicts != 0 {
		t.Fatal("analytic counters nonzero on an undegraded server")
	}
}

// The /metrics exposition: every family the daemon reports is present on a
// plain server, the degradation families appear exactly when configured,
// and counters reflect served traffic.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Tune: tinyOpts(8, 1)})
	if _, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, netA()[:1])); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	m := getMetrics(t, ts.URL)
	for _, want := range []string{
		"tuned_requests_total 1",
		"tuned_measurements_total",
		"tuned_rejected_total 0",
		`tuned_verdicts_total{tier="measured",kind="direct"}`,
		`tuned_verdicts_total{tier="analytic",kind="direct"} 0`,
		`tuned_verdicts_total{tier="measured",kind="fft"} 0`,
		`tuned_verdicts_total{tier="measured",kind="igemm"} 0`,
		"tuned_cache_entries",
		"tuned_inflight_budget 0",
		"tuned_snapshot_age_seconds -1",
		"# TYPE tuned_requests_total counter",
		"# TYPE tuned_uptime_seconds gauge",
	} {
		mustContain(t, m, want)
	}
	// A plain server has no breaker and no refinement queue: those families
	// must be absent, keeping the exposition honest. (Under the degraded
	// gate every server is armed, so absence does not apply.)
	if !degradedE2E() {
		for _, absent := range []string{"tuned_breaker_state", "tuned_refine_queue_depth"} {
			if strings.Contains(m, absent) {
				t.Errorf("/metrics exposes %q without degradation configured", absent)
			}
		}
	}

	// A degraded server exposes both families.
	_, ts2 := newTestServer(t, Config{Tune: tinyOpts(8, 1),
		AnalyticOverflow: true,
		Breaker:          autotune.BreakerConfig{Threshold: 0.5}})
	m2 := getMetrics(t, ts2.URL)
	mustContain(t, m2, "tuned_breaker_state 0")
	mustContain(t, m2, "tuned_refine_queue_depth 0")
	mustContain(t, m2, "tuned_refine_completed_total 0")
}

// The kind dimension of the verdict counters: a request that widens the
// per-layer candidate set via options.kinds gets each layer's chosen kind
// recorded under its own label, and the count of the winning kind's series
// matches the verdicts served.
func TestServerKindLabeledVerdictMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Tune: tinyOpts(8, 1)})
	desc := repro.DescribeNetwork(testArch.Name, netA()[1:])
	desc.Options = &repro.RequestOptions{Kinds: []string{"igemm", "fft"}}
	resp, status := postTune(t, ts.URL, desc)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Verdicts) != 1 {
		t.Fatalf("%d verdicts, want 1", len(resp.Verdicts))
	}
	m := getMetrics(t, ts.URL)
	chosen := resp.Verdicts[0].Kind
	mustContain(t, m, `tuned_verdicts_total{tier="measured",kind="`+chosen+`"} 1`)
	// Every kind series exists even at zero — the grid is pre-declared.
	for _, kind := range []string{"direct", "winograd", "fft", "igemm"} {
		mustContain(t, m, `tuned_verdicts_total{tier="analytic",kind="`+kind+`"}`)
	}
}

// Engine-level fallback inside an otherwise admitted request: no breaker,
// no overflow — just a dead backend and a request timeout configured. The
// sweep's failed searches fill in analytically and the response is still a
// complete 200.
func TestServerAnalyticFallbackFillsDeadSearches(t *testing.T) {
	opts := tinyOpts(8, 1)
	opts.Retry.MaxAttempts = 2
	_, ts := newTestServer(t, Config{
		Tune:           opts,
		Chaos:          chaos.Config{Seed: 1, FailRate: 1},
		RequestTimeout: 30 * time.Second, // arms degradation; never fires here
	})
	resp, status := postTune(t, ts.URL, repro.DescribeNetwork(testArch.Name, netA()))
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if resp.Tier != "analytic" {
		t.Fatalf("response tier %q, want analytic", resp.Tier)
	}
	for _, v := range resp.Verdicts {
		if v.Tier != "analytic" {
			t.Fatalf("layer %s: tier %q, want analytic", v.Layer, v.Tier)
		}
	}
}
