package tuned

import (
	"sync"
	"testing"
	"time"
)

func jobWithKey(k groupKey) *tuneJob {
	return &tuneJob{key: k, done: make(chan struct{})}
}

// groupJobs must partition a round by merge key while preserving arrival
// order inside each group — the order decides which layer tunes cold as a
// family's warm-schedule representative, so it is part of determinism.
func TestGroupJobsPartitionsByKeyPreservingOrder(t *testing.T) {
	k1 := groupKey{arch: "V100", budget: 16, seed: 1, winograd: true}
	k2 := groupKey{arch: "V100", budget: 16, seed: 2, winograd: true}
	k3 := groupKey{arch: "TitanX", budget: 16, seed: 1, winograd: true}
	jobs := []*tuneJob{jobWithKey(k1), jobWithKey(k2), jobWithKey(k1), jobWithKey(k3), jobWithKey(k1)}

	groups := groupJobs(jobs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	// First-arrival order between groups, arrival order within each.
	if len(groups[0]) != 3 || groups[0][0] != jobs[0] || groups[0][1] != jobs[2] || groups[0][2] != jobs[4] {
		t.Errorf("group for %+v broke arrival order", k1)
	}
	if len(groups[1]) != 1 || groups[1][0] != jobs[1] {
		t.Errorf("group for %+v wrong", k2)
	}
	if len(groups[2]) != 1 || groups[2][0] != jobs[3] {
		t.Errorf("group for %+v wrong", k3)
	}
}

// Jobs submitted within one window run as one round; the next submission
// opens a fresh round.
func TestBatcherCollectsOneWindow(t *testing.T) {
	var mu sync.Mutex
	var rounds [][]*tuneJob
	roundDone := make(chan int, 8)
	b := newBatcher(50*time.Millisecond, func(jobs []*tuneJob) {
		mu.Lock()
		rounds = append(rounds, jobs)
		n := len(rounds)
		mu.Unlock()
		roundDone <- n
	})

	k := groupKey{arch: "V100"}
	first := []*tuneJob{jobWithKey(k), jobWithKey(k), jobWithKey(k)}
	for _, j := range first {
		b.submit(j)
	}
	select {
	case <-roundDone:
	case <-time.After(5 * time.Second):
		t.Fatal("first round never ran")
	}

	b.submit(jobWithKey(k))
	select {
	case <-roundDone:
	case <-time.After(5 * time.Second):
		t.Fatal("second round never ran")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(rounds) != 2 || len(rounds[0]) != 3 || len(rounds[1]) != 1 {
		sizes := make([]int, len(rounds))
		for i, r := range rounds {
			sizes[i] = len(r)
		}
		t.Fatalf("round sizes %v, want [3 1]", sizes)
	}
	for i, j := range first {
		if rounds[0][i] != j {
			t.Errorf("round 0 job %d out of arrival order", i)
		}
	}
}
