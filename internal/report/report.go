// Package report renders experiment results as aligned text tables and CSV,
// the output format of cmd/repro and the benchmark harness. A Table
// accumulates typed rows under a header and writes itself as
// terminal-aligned text (WriteText) or machine-readable CSV (WriteCSV);
// the statistics helpers (GeoMean and friends) implement the aggregations
// the paper's evaluation reports, so every consumer summarizes results the
// same way.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows of string cells under a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table with the given title and column names.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells beyond the header width are dropped and
// missing cells are blank-filled.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowF formats each value with %v compactly (floats get 2 decimals).
func (t *Table) AddRowF(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		case float32:
			out[i] = fmt.Sprintf("%.2f", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a named sequence of (x, y) points, used for figure curves
// (e.g., GFLOPS vs tuning iteration).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteSeries renders aligned columns of several series sharing an x-axis
// label, padding shorter series with blanks.
func WriteSeries(w io.Writer, xLabel string, series []Series) error {
	t := New("", append([]string{xLabel}, names(series)...)...)
	maxLen := 0
	for _, s := range series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, len(series)+1)
		for j, s := range series {
			if i < len(s.Y) {
				if i < len(s.X) {
					row[0] = fmt.Sprintf("%g", s.X[i])
				} else {
					row[0] = fmt.Sprint(i)
				}
				row[j+1] = fmt.Sprintf("%.2f", s.Y[i])
			}
		}
		t.AddRow(row...)
	}
	return t.WriteText(w)
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// GeoMean returns the geometric mean of positive values (zero if none),
// accumulating in log space to avoid overflow on long lists.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
