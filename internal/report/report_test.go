package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowF("beta", 2.5)
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"## demo", "name", "alpha", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("1")                // short row padded
	tb.AddRow("1", "2", "3", "4") // long row truncated
	if len(tb.Rows[0]) != 3 || len(tb.Rows[1]) != 3 {
		t.Errorf("row normalization failed: %v", tb.Rows)
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("", "x", "note")
	tb.AddRow("1", `with,comma and "quote"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma and ""quote"""`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "x,note\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestWriteSeries(t *testing.T) {
	s := []Series{
		{Name: "one", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "two", X: []float64{1, 2, 3}, Y: []float64{5, 6, 7}},
	}
	var b strings.Builder
	if err := WriteSeries(&b, "iter", s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"iter", "one", "two", "10.00", "7.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8)=%v want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil)=%v want 0", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("GeoMean(nonpositive)=%v want 0", g)
	}
	// Long list must not overflow.
	many := make([]float64, 10000)
	for i := range many {
		many[i] = 1e10
	}
	if g := GeoMean(many); math.IsInf(g, 1) || math.Abs(g-1e10) > 1 {
		t.Errorf("GeoMean overflowed: %v", g)
	}
}
