// Package chaos is a deterministic fault-injection harness for the tuning
// engine's measurement seam. It wraps any autotune.Measurer into a
// FallibleMeasurer that injects transient failures, latency spikes and
// multiplicative reading noise on a schedule that is a pure function of
// (seed, search salt, configuration, attempt number) — never of wall
// clock, goroutine interleaving or call order across configurations. Two
// runs with the same seed see the same faults at any worker count, which
// is what lets property tests assert that the engine's verdict under a 10%
// fault rate matches (failures/latency) or bounds (noise) the fault-free
// verdict, and lets CI re-run the entire daemon e2e suite under injection.
package chaos

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autotune"
	"repro/internal/conv"
	"repro/internal/shapes"
)

// ErrInjected is the transient failure the injector returns; the engine's
// retry pipeline treats it like any other measurement error.
var ErrInjected = errors.New("chaos: injected transient measurement failure")

// Config selects what the injector does. The zero value injects nothing
// (every wrapped measurer behaves exactly like the lifted original).
type Config struct {
	// Seed drives the whole fault schedule; same seed, same faults.
	Seed int64
	// FailRate is the per-attempt probability of an injected transient
	// failure, in [0, 1]. Exactly 1 (with MaxConsecutive 0) is a dead
	// backend: every measurement fails, which is the scenario the service's
	// graceful-degradation path (circuit breaker + analytic tier) exists
	// for — and what its chaos e2e runs.
	FailRate float64
	// MaxConsecutive caps the injected failures in a row for one
	// configuration (0 = uncapped). Keeping it below the engine's
	// RetryPolicy.MaxAttempts guarantees every configuration eventually
	// yields its true reading, so a failures-only schedule leaves the
	// verdict bit-identical to the fault-free run — the invariant the
	// chaos e2e mode relies on.
	MaxConsecutive int
	// SpikeRate is the per-attempt probability of a latency spike of
	// SpikeLatency (emulating a hung device run that eventually returns).
	SpikeRate    float64
	SpikeLatency time.Duration
	// NoiseAmp, when > 0, multiplies successful readings by a
	// deterministic factor in [1-NoiseAmp, 1+NoiseAmp). Unlike failures
	// and spikes, noise can change the verdict; the engine's
	// median-of-k defense bounds how far.
	NoiseAmp float64
}

// Enabled reports whether the configuration injects anything at all.
func (c Config) Enabled() bool {
	return c.FailRate > 0 || (c.SpikeRate > 0 && c.SpikeLatency > 0) || c.NoiseAmp > 0
}

// Injector manufactures fault-injecting wrappers that share one Config and
// one set of observability counters.
type Injector struct {
	cfg Config

	failures  atomic.Int64
	spikes    atomic.Int64
	noised    atomic.Int64
	suspended atomic.Bool
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.FailRate < 0 {
		cfg.FailRate = 0
	}
	if cfg.FailRate > 1 {
		cfg.FailRate = 1
	}
	return &Injector{cfg: cfg}
}

// SetSuspended pauses (true) or resumes (false) all injection at runtime:
// a suspended injector passes measurements straight through, faithfully —
// how a chaos e2e stops the outage to watch the service recover. The
// switch is instant for every wrapped measurer.
func (in *Injector) SetSuspended(v bool) { in.suspended.Store(v) }

// Stats are the faults injected so far, across all wrapped measurers.
type Stats struct {
	Failures int64 // transient failures injected
	Spikes   int64 // latency spikes injected
	Noised   int64 // readings perturbed by multiplicative noise
}

func (in *Injector) Stats() Stats {
	return Stats{
		Failures: in.failures.Load(),
		Spikes:   in.spikes.Load(),
		Noised:   in.noised.Load(),
	}
}

// SearchSalt derives the per-search salt of a (kind, shape) key, so a
// network sweep's searches get distinct but reproducible schedules.
func SearchSalt(kind autotune.Kind, s shapes.ConvShape) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v int) {
		x := uint64(int64(v))
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	for _, b := range []byte(kind.String()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, v := range [...]int{s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad} {
		mix(v)
	}
	return h
}

// decision streams: the per-attempt hash is salted with the decision kind
// so failure, spike and noise draws are independent of each other.
const (
	saltFail  = 0
	saltSpike = 1
	saltNoise = 2
	saltKinds = 3
)

// Wrap returns a fault-injecting FallibleMeasurer around measure. salt
// distinguishes searches sharing one injector (use SearchSalt); the
// returned measurer is safe for concurrent use and its schedule depends
// only on (Config.Seed, salt, configuration, per-config attempt number) —
// the i-th attempt at a given configuration sees the same fate no matter
// how goroutines interleave.
func (in *Injector) Wrap(salt uint64, measure autotune.Measurer) autotune.FallibleMeasurer {
	var mu sync.Mutex
	attempts := make(map[conv.Config]int) // total attempts per config
	streak := make(map[conv.Config]int)   // consecutive injected failures

	seed := uint64(in.cfg.Seed) ^ salt
	// unit draws a deterministic uniform in [0, 1) for one decision.
	unit := func(c conv.Config, attempt, kind int) float64 {
		h := autotune.ConfigHash(seed, c, uint64(attempt*saltKinds+kind))
		return float64(h>>11) / (1 << 53)
	}

	return func(c conv.Config) (autotune.Measurement, bool, error) {
		if in.suspended.Load() {
			m, ok := measure(c)
			return m, ok, nil
		}
		mu.Lock()
		attempt := attempts[c]
		attempts[c] = attempt + 1
		fail := in.cfg.FailRate > 0 &&
			unit(c, attempt, saltFail) < in.cfg.FailRate &&
			(in.cfg.MaxConsecutive <= 0 || streak[c] < in.cfg.MaxConsecutive)
		if fail {
			streak[c]++
		} else {
			streak[c] = 0
		}
		mu.Unlock()

		if in.cfg.SpikeRate > 0 && in.cfg.SpikeLatency > 0 &&
			unit(c, attempt, saltSpike) < in.cfg.SpikeRate {
			in.spikes.Add(1)
			time.Sleep(in.cfg.SpikeLatency)
		}
		if fail {
			in.failures.Add(1)
			return autotune.Measurement{}, false, ErrInjected
		}
		m, ok := measure(c)
		if ok && in.cfg.NoiseAmp > 0 {
			factor := 1 + in.cfg.NoiseAmp*(2*unit(c, attempt, saltNoise)-1)
			if factor > 0 {
				m.Seconds *= factor
				if m.Seconds > 0 {
					m.GFLOPS /= factor
				}
				in.noised.Add(1)
			}
		}
		return m, ok, nil
	}
}

// WrapNetwork adapts the injector to autotune.NetworkOptions.WrapMeasurer:
// each deduplicated search gets its own salt from its (kind, shape) key.
func (in *Injector) WrapNetwork() func(autotune.Kind, shapes.ConvShape, autotune.Measurer) autotune.FallibleMeasurer {
	return func(kind autotune.Kind, s shapes.ConvShape, measure autotune.Measurer) autotune.FallibleMeasurer {
		return in.Wrap(SearchSalt(kind, s), measure)
	}
}
