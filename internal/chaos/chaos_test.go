package chaos

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

var arch = memsim.V100

func layer() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 64, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
}

func mustSpace(t *testing.T) *autotune.Space {
	t.Helper()
	sp, err := autotune.NewSpace(layer(), arch, autotune.Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func tinyOpts() autotune.Options {
	o := autotune.DefaultOptions()
	o.Budget = 60
	o.Walkers = 4
	o.WalkSteps = 8
	o.Patience = 0
	return o
}

// faultSchedule records, per call in order, whether the wrapped measurer
// returned an injected error.
func faultSchedule(t *testing.T, cfg Config, salt uint64, calls int) []bool {
	t.Helper()
	sp := mustSpace(t)
	measure := autotune.DirectMeasurer(arch, layer())
	wrapped := New(cfg).Wrap(salt, measure)
	// A fixed, reproducible config sequence: walk the space's seeds
	// round-robin so repeated attempts at the same config occur.
	seeds := sp.SeedConfigs()
	if len(seeds) == 0 {
		t.Fatal("no seed configs")
	}
	out := make([]bool, calls)
	for i := 0; i < calls; i++ {
		_, _, err := wrapped(seeds[i%len(seeds)])
		out[i] = err != nil
	}
	return out
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 7, FailRate: 0.3}
	a := faultSchedule(t, cfg, 11, 200)
	b := faultSchedule(t, cfg, 11, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	injected := 0
	for _, f := range a {
		if f {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("30% fail rate injected nothing in 200 calls")
	}
	c := faultSchedule(t, Config{Seed: 8, FailRate: 0.3}, 11, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestMaxConsecutiveCapsStreaks(t *testing.T) {
	sched := faultSchedule(t, Config{Seed: 3, FailRate: 0.95, MaxConsecutive: 2}, 0, 300)
	streak := 0
	for i, f := range sched {
		if !f {
			streak = 0
			continue
		}
		streak++
		if streak > 2 {
			t.Fatalf("call %d: %d consecutive injected failures exceeds cap 2", i, streak)
		}
	}
}

// Failures and latency spikes must not change the verdict: with retries
// outlasting the consecutive-failure cap, every configuration eventually
// yields its true reading, so the trace is bit-identical to fault-free.
func TestFaultsPreserveVerdict(t *testing.T) {
	opts := tinyOpts()
	clean, err := autotune.Tune(mustSpace(t), autotune.DirectMeasurer(arch, layer()), opts)
	if err != nil {
		t.Fatal(err)
	}

	in := New(Config{Seed: 1, FailRate: 0.10, MaxConsecutive: 2,
		SpikeRate: 0.05, SpikeLatency: time.Microsecond})
	wrapped := in.Wrap(0, autotune.DirectMeasurer(arch, layer()))
	faultOpts := opts
	faultOpts.Retry = autotune.RetryPolicy{MaxAttempts: 4}
	faulty, err := autotune.TuneFallible(context.Background(), mustSpace(t), wrapped, faultOpts)
	if err != nil {
		t.Fatal(err)
	}

	if faulty.Best != clean.Best || faulty.BestM != clean.BestM {
		t.Fatalf("verdict changed under failure injection: %v/%v vs %v/%v",
			faulty.Best, faulty.BestM, clean.Best, clean.BestM)
	}
	if faulty.Measurements != clean.Measurements {
		t.Fatalf("measurement count changed: %d vs %d", faulty.Measurements, clean.Measurements)
	}
	for i := range clean.Curve {
		if faulty.Curve[i] != clean.Curve[i] {
			t.Fatalf("curve diverged at %d", i)
		}
	}
	if faulty.Retries == 0 {
		t.Fatal("10% fault rate caused zero retries")
	}
	if faulty.Quarantined != 0 {
		t.Fatalf("cap below MaxAttempts must prevent quarantine, got %d", faulty.Quarantined)
	}
	stats := in.Stats()
	if stats.Failures == 0 {
		t.Fatal("injector reports zero injected failures")
	}
	if int64(faulty.Retries) != stats.Failures {
		t.Fatalf("engine retries %d != injected failures %d", faulty.Retries, stats.Failures)
	}
}

// The fault schedule — and therefore the whole run — must not depend on the
// executor's worker count.
func TestFaultedRunWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *autotune.Trace {
		opts := tinyOpts()
		opts.Workers = workers
		opts.Retry = autotune.RetryPolicy{MaxAttempts: 4}
		wrapped := New(Config{Seed: 5, FailRate: 0.10, MaxConsecutive: 2}).
			Wrap(0, autotune.DirectMeasurer(arch, layer()))
		tr, err := autotune.TuneFallible(context.Background(), mustSpace(t), wrapped, opts)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	one, four := run(1), run(4)
	if one.Best != four.Best || one.BestM != four.BestM || one.Measurements != four.Measurements ||
		one.Retries != four.Retries {
		t.Fatalf("worker count changed faulted run: %+v vs %+v", one, four)
	}
}

// Multiplicative noise can move the search, but the median-of-k defense
// must keep the returned configuration's true quality within tolerance of
// the fault-free verdict. The comparison is on noise-free re-measurements
// of both winners: noise perturbs which configs the search visits, so the
// raw reported seconds are not directly comparable.
func TestNoiseBoundedByDefense(t *testing.T) {
	opts := tinyOpts()
	opts.Budget = 240
	measure := autotune.DirectMeasurer(arch, layer())
	clean, err := autotune.Tune(mustSpace(t), measure, opts)
	if err != nil {
		t.Fatal(err)
	}

	noisy := opts
	noisy.Retry = autotune.RetryPolicy{MaxAttempts: 4, NoiseThreshold: 0.25, MedianK: 3}
	wrapped := New(Config{Seed: 2, NoiseAmp: 0.05}).Wrap(0, measure)
	tr, err := autotune.TuneFallible(context.Background(), mustSpace(t), wrapped, noisy)
	if err != nil {
		t.Fatal(err)
	}
	trueM, ok := measure(tr.Best)
	if !ok {
		t.Fatalf("noisy run returned an invalid config %v", tr.Best)
	}
	rel := math.Abs(trueM.Seconds-clean.BestM.Seconds) / clean.BestM.Seconds
	if rel > 0.10 {
		t.Fatalf("noisy run's winner truly costs %.3g, %.1f%% from clean %.3g",
			trueM.Seconds, 100*rel, clean.BestM.Seconds)
	}
}

// The acceptance property: a network sweep under a seeded 10% transient
// fault rate completes and its verdicts match the fault-free sweep.
func TestNetworkVerdictsUnderFaults(t *testing.T) {
	layers := []autotune.NetworkLayer{
		{Name: "conv1", Shape: layer(), Repeat: 2},
		{Name: "conv2", Shape: shapes.ConvShape{Batch: 1, Cin: 64, Hin: 27, Win: 27, Cout: 64, Hker: 1, Wker: 1, Strid: 1, Pad: 0}},
	}
	nopts := autotune.NetworkOptions{Tune: tinyOpts(), Workers: 2}
	clean, err := autotune.TuneNetwork(arch, layers, nil, nopts)
	if err != nil {
		t.Fatal(err)
	}

	in := New(Config{Seed: 1, FailRate: 0.10, MaxConsecutive: 2})
	fopts := nopts
	fopts.Tune.Retry = autotune.RetryPolicy{MaxAttempts: 4}
	fopts.WrapMeasurer = in.WrapNetwork()
	faulty, err := autotune.TuneNetworkContext(context.Background(), arch, layers, nil, fopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if faulty[i].Config != clean[i].Config || faulty[i].M != clean[i].M || faulty[i].Kind != clean[i].Kind {
			t.Fatalf("layer %d verdict diverged under faults: %+v vs %+v", i, faulty[i], clean[i])
		}
		if faulty[i].Partial {
			t.Fatalf("layer %d spuriously partial", i)
		}
	}
	if in.Stats().Failures == 0 {
		t.Fatal("sweep saw no injected failures")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config claims enabled")
	}
	sched := faultSchedule(t, Config{Seed: 1}, 0, 100)
	for i, f := range sched {
		if f {
			t.Fatalf("call %d: zero config injected a failure", i)
		}
	}
}
