package autotune

import (
	"bytes"
	"testing"
)

// The cache loader parses untrusted bytes — a state file may come off a
// shared filesystem or a half-written shutdown. The contract under fuzzing:
// any input either loads or errors, never panics, and whatever loads
// survives a save/reload round trip.
func FuzzCacheLoad(f *testing.F) {
	// Version-1 file: a bare entry array.
	f.Add([]byte(`[{"arch":"V100","kind":"direct","shape":{"Batch":1,"Cin":16,"Hin":8,"Win":8,"Cout":8,"Hker":3,"Wker":3,"Stride":1,"Pad":1},"config":{"TileX":1,"TileY":1,"TileZ":1,"ThreadsX":8,"ThreadsY":8,"ThreadsZ":1,"SharedPerBlock":0,"Layout":0,"WinogradE":0},"seconds":0.001,"gflops":10}]`))
	// Version-2 envelope with engine state.
	f.Add([]byte(`{"version":2,"entries":[{"arch":"V100","kind":"winograd","shape":{"Batch":1,"Cin":16,"Hin":8,"Win":8,"Cout":8,"Hker":3,"Wker":3,"Stride":1,"Pad":1},"config":{"TileX":1,"TileY":1,"TileZ":1,"ThreadsX":8,"ThreadsY":8,"ThreadsZ":1,"SharedPerBlock":0,"Layout":0,"WinogradE":2},"seconds":0.002,"gflops":5,"rows":[{"config":{"TileX":1,"TileY":1,"TileZ":1,"ThreadsX":8,"ThreadsY":8,"ThreadsZ":1,"SharedPerBlock":0,"Layout":0,"WinogradE":2},"seconds":0.002,"gflops":5,"ok":true}],"curve":[5],"budget":4}]}`))
	// Malformed variants the loader must reject gracefully.
	f.Add([]byte(`{"version":2,"entries":[{"arch":"V100","kind":"fft","shape":{"Batch":1,"Cin":16,"Hin":8,"Win":8,"Cout":8,"Hker":3,"Wker":3,"Stride":1,"Pad":1},"config":{"TileX":16,"TileY":1,"TileZ":4,"ThreadsX":16,"ThreadsY":1,"ThreadsZ":4,"SharedPerBlock":4096,"Layout":0,"WinogradE":0},"seconds":0.003,"gflops":4}]}`))
	f.Add([]byte(`{"version":2,"entries":[{"arch":"V100","kind":"igemm","shape":{"Batch":1,"Cin":16,"Hin":8,"Win":8,"Cout":16,"Hker":3,"Wker":3,"Stride":1,"Pad":1,"Groups":4},"config":{"TileX":4,"TileY":4,"TileZ":2,"ThreadsX":4,"ThreadsY":4,"ThreadsZ":2,"SharedPerBlock":2048,"Layout":0,"WinogradE":0},"seconds":0.001,"gflops":8}]}`))
	f.Add([]byte(`{"version":3,"entries":[]}`))
	f.Add([]byte(`[{"arch":"V100","kind":"im2col"}]`))
	f.Add([]byte(`[{"arch":"V100","kind":"direct","seconds":-1}]`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCache()
		if err := c.Load(bytes.NewReader(data)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := c.Save(&out); err != nil {
			t.Fatalf("loaded cache failed to save: %v", err)
		}
		if err := NewCache().Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("saved cache failed to reload: %v", err)
		}
	})
}
