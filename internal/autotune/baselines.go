package autotune

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/conv"
)

// This file holds the searcher baselines the paper compares against in
// Figure 11: simulated annealing, genetic search and random search, all
// operating on the (typically unpruned) configuration space with direct
// measurements — the strategies TVM offers. The baselines are deliberately
// bound-blind: they never consult Space.BoundSeconds and measure every
// candidate they select, which is exactly what sharpens the Figure 11 /
// Table 2 contrast with the bound-guided engine in tuner.go.

// RandomSearch measures uniformly sampled configurations.
func RandomSearch(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "random"}}
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		c := sp.Sample(rng)
		m, ok := measure(c)
		rec.add(c, m, ok)
	}
	return finish(rec)
}

// SimulatedAnnealing walks the space accepting uphill moves with a cooling
// Metropolis criterion on measured cost.
func SimulatedAnnealing(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "sa"}}

	cur := sp.Sample(rng)
	curM, curOK := measure(cur)
	rec.add(cur, curM, curOK)
	for !curOK && rec.trace.Measurements < opts.Budget {
		cur = sp.Sample(rng)
		curM, curOK = measure(cur)
		rec.add(cur, curM, curOK)
	}
	// Geometric cooling from a temperature matched to the initial cost.
	temp := curM.Seconds
	cool := math.Pow(1e-3, 1/float64(opts.Budget)) // reach temp/1000 at budget
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		next := sp.Neighbor(cur, rng)
		m, ok := measure(next)
		rec.add(next, m, ok)
		if ok {
			delta := m.Seconds - curM.Seconds
			if delta <= 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
				cur, curM = next, m
			}
		}
		temp *= cool
	}
	return finish(rec)
}

// GeneticAlgorithm evolves a population with axis-wise crossover and
// Neighbor mutation; fitness is measured speed.
func GeneticAlgorithm(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "ga"}}

	popSize := opts.Walkers * 2
	if popSize < 8 {
		popSize = 8
	}
	type indiv struct {
		cfg conv.Config
		m   Measurement
		ok  bool
	}
	pop := make([]indiv, 0, popSize)
	for len(pop) < popSize && rec.trace.Measurements < opts.Budget {
		c := sp.Sample(rng)
		m, ok := measure(c)
		rec.add(c, m, ok)
		pop = append(pop, indiv{c, m, ok})
	}
	better := func(a, b indiv) bool {
		if a.ok != b.ok {
			return a.ok
		}
		return a.m.Seconds < b.m.Seconds
	}
	tournament := func() indiv {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if better(a, b) {
			return a
		}
		return b
	}
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		p1, p2 := tournament(), tournament()
		child := crossover(sp, p1.cfg, p2.cfg, rng)
		if rng.Float64() < 0.4 {
			child = sp.Neighbor(child, rng)
		}
		m, ok := measure(child)
		rec.add(child, m, ok)
		// Replace the worst individual.
		worst := 0
		for i := range pop {
			if better(pop[worst], pop[i]) {
				worst = i
			}
		}
		if better(indiv{child, m, ok}, pop[worst]) {
			pop[worst] = indiv{child, m, ok}
		}
	}
	return finish(rec)
}

// crossover mixes the axes of two parents, falling back to the first parent
// if the mix is inadmissible.
func crossover(sp *Space, a, b conv.Config, rng *rand.Rand) conv.Config {
	c := a
	if rng.Intn(2) == 0 {
		c.TileX, c.ThreadsX = b.TileX, b.ThreadsX
	}
	if rng.Intn(2) == 0 {
		c.TileY, c.ThreadsY = b.TileY, b.ThreadsY
	}
	if rng.Intn(2) == 0 {
		c.TileZ, c.ThreadsZ = b.TileZ, b.ThreadsZ
	}
	if rng.Intn(2) == 0 {
		c.SharedPerBlock = b.SharedPerBlock
	}
	if rng.Intn(2) == 0 {
		c.Layout = b.Layout
	}
	if sp.admissible(c) {
		return c
	}
	return a
}

func finish(rec *record) (*Trace, error) {
	if !rec.found {
		return nil, fmt.Errorf("autotune: %s found no valid configuration in %d measurements",
			rec.trace.Method, rec.trace.Measurements)
	}
	return &rec.trace, nil
}
