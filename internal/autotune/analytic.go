package autotune

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// This file is the instant-verdict tier: a full design-space exploration
// that never measures anything. The paper's I/O lower bounds already give
// an admissible per-config time floor (BoundSeconds: launch + waves +
// Q(Sb)·4B/bandwidth, plus flops/peak for direct); sharpened with the
// launch-geometry terms of the time model that are themselves lower bounds
// (analyticFloor), it orders configurations well enough to rank the whole
// space analytically — the idiom of analytical-characterization DSE, here
// serving as the service's degradation path. The scan enumerates every admissible, measurable
// configuration once per Space (memoized like Size), keeps the best few by
// floor, and a verdict is then one lookup scaled by a calibration factor
// fitted to whatever measured rows the cache already holds. An analytic
// verdict is explicit about its provenance: LayerVerdict.Tier says whether
// a number was measured, estimated, or refined in the background after an
// estimate was served.

// Tier is the provenance of a layer verdict. The zero value is
// TierMeasured, so verdicts from the measured engine are unchanged by the
// existence of the analytic tier (zero-config equivalence).
type Tier uint8

const (
	// TierMeasured marks a verdict backed by the measured search engine.
	TierMeasured Tier = iota
	// TierAnalytic marks a measurement-free estimate from the bound-derived
	// time model: served instantly under overload, a tripped breaker, or a
	// deadline, and a candidate for background refinement.
	TierAnalytic
	// TierRefined marks a measured verdict that upgraded an earlier
	// analytic answer: the background refinement queue measured the same
	// key after an analytic verdict was served for it.
	TierRefined
)

func (t Tier) String() string {
	switch t {
	case TierAnalytic:
		return "analytic"
	case TierRefined:
		return "refined"
	}
	return "measured"
}

// analyticTopCap is how many configurations the scan retains, ranked by
// floor — enough for a top-k ranking display without re-enumerating.
const analyticTopCap = 8

// AnalyticVerdict is one measurement-free configuration estimate.
type AnalyticVerdict struct {
	Config conv.Config
	// Floor is the admissible bound-derived time of Config in seconds
	// (analyticFloor: launch + waves + the occupancy- and
	// efficiency-scaled I/O and arithmetic floors): no measurement of it
	// can come in lower.
	Floor float64
	// Seconds is the served estimate: Floor scaled by the calibration
	// factor (≥ 1, fitted from measured rows when any exist).
	Seconds float64
	// GFLOPS is the arithmetic throughput implied by Seconds.
	GFLOPS float64
	// Ranked is how many valid configurations the scan ordered.
	Ranked int64
}

// analyticScan enumerates the space once and retains the analyticTopCap
// best configurations by the analytic floor. Only configurations the
// measurers would accept are ranked — the analytic winner must be directly
// usable as a launch configuration, and the regret property test measures
// it.
func (sp *Space) analyticScan() {
	var top bestK
	top.reset(analyticTopCap)
	var ranked int64
	sp.enumerate(func(c conv.Config) bool {
		if !sp.measurable(c) {
			return true
		}
		f := sp.analyticFloor(c)
		if !(f > 0) || math.IsInf(f, 1) {
			return true
		}
		ranked++
		top.push(scored{cfg: c, cost: f})
		return true
	})
	sp.anRanked = ranked
	sp.anTop = top.sorted(nil)
	if len(sp.anTop) == 0 {
		sp.anErr = fmt.Errorf("autotune: analytic tier: no rankable configuration for %v (%s)", sp.Shape, sp.Kind)
	}
}

// analyticFloor is the analytic tier's per-config time floor: BoundSeconds
// sharpened with the launch-dependent terms of the time model that are
// themselves lower bounds. The measured model is sched + max(t_global,
// t_shared, t_compute) with t_global built from the dataflow's actual
// traffic (≥ the Theorem 4.12/4.20 bound Q at the same bandwidth
// efficiency) and t_compute from its actual flops (≥ the arithmetic floor
// at the same latency-hiding factor), so
//
//	sched + max(Q·4B/(bandwidth·eff), flopsFloor/(peak·hide))
//
// never exceeds a measurement — it stays admissible — while ranking the
// space far better than the occupancy-blind bound alone: a tiny-block
// config with low I/O but terrible latency hiding floats to the top of the
// raw bound and sinks here, exactly as it does on the device model.
func (sp *Space) analyticFloor(c conv.Config) float64 {
	if c.TileX < 1 || c.TileY < 1 || c.TileZ < 1 || c.SharedPerBlock < 1 ||
		c.ThreadsX < 1 || c.ThreadsY < 1 || c.ThreadsZ < 1 {
		return 0
	}
	var l memsim.Launch
	switch sp.Kind {
	case Winograd:
		if c.WinogradE < 2 {
			return 0
		}
		l = conv.WinogradFusedLaunch(sp.Shape, c)
	case FFT:
		lh, lw := conv.FFTGrid(sp.Shape)
		cpg := sp.Shape.Cout / sp.Shape.G()
		if lw%c.TileX != 0 || lh%c.TileY != 0 || c.TileZ > cpg || cpg%c.TileZ != 0 {
			return 0
		}
		l = conv.FFTTiledLaunch(sp.Shape, c)
	case ImplicitGEMM:
		l = conv.IGEMMTiledLaunch(sp.Shape, c)
	default:
		l = conv.DirectTiledLaunch(sp.Shape, c)
	}
	if l.Blocks < 1 || l.ThreadsPerBlock < 1 {
		return 0
	}
	sched, resident := sp.Arch.ScheduleCost(l)
	if resident == 0 {
		return math.Inf(1)
	}
	// hide and eff mirror memsim.Arch.Time exactly; recomputing them from
	// the same launch keeps the floor admissible term by term.
	concurrent := l.Blocks
	if resident < concurrent {
		concurrent = resident
	}
	activePerSM := float64(concurrent*l.ThreadsPerBlock) / float64(sp.Arch.NumSMs)
	hide := math.Min(1, activePerSM/float64(sp.Arch.ThreadsForPeak))
	if l.ThreadsPerBlock < 32 {
		hide *= float64(l.ThreadsPerBlock) / 32
	}
	if hide <= 0 {
		return math.Inf(1)
	}
	eff := l.BandwidthEff
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	tGlobal := sp.boundIO(c.SharedPerBlock, c.WinogradE) * 4 / (sp.Arch.BandwidthGBs * 1e9 * eff)
	flops := sp.flopsFloor
	switch sp.Kind {
	case Winograd:
		flops = sp.winoFlopsFloor(c.WinogradE)
	case FFT:
		flops = sp.fftP3Flops
	}
	tCompute := flops / (sp.Arch.PeakGFLOPS * 1e9 * hide)
	t := sched + math.Max(tGlobal, tCompute)
	if sp.Kind == FFT {
		// The transform phases are costed exactly, so they join the floor as
		// a constant — still admissible, since every FFT measurement pays
		// exactly this on top of its phase-3 time.
		t += sp.fftFixedSec
	}
	return t
}

// winoFlopsFloor lower-bounds the fused Winograd kernel's arithmetic for
// output tile edge e: the element-wise Π accumulation alone is 2·α² flops
// per (input channel, output channel, output sub-tile) with α = e+r-1, and
// any tiling covers at least ceil(out/e) sub-tiles per axis — the
// transforms only add to it.
func (sp *Space) winoFlopsFloor(e int) float64 {
	s := sp.Shape
	alpha := float64(e + s.Hker - 1)
	subs := float64((s.Wout()+e-1)/e) * float64((s.Hout()+e-1)/e)
	return 2 * alpha * alpha * subs * float64(s.Batch) * float64(s.Cin) * float64(s.Cout)
}

// measurable mirrors the validation the Dry evaluators (and MemoMeasure)
// apply, so an analytic winner is never a config measurement would reject.
func (sp *Space) measurable(c conv.Config) bool {
	switch sp.Kind {
	case Winograd:
		return c.ValidateWinograd(sp.Shape, sp.Arch) == nil
	case FFT:
		return c.ValidateFFT(sp.Shape, sp.Arch) == nil
	case ImplicitGEMM:
		return c.ValidateIGEMM(sp.Shape, sp.Arch) == nil
	}
	return c.ValidateDirect(sp.Shape, sp.Arch) == nil
}

// Analytic returns the space's best configuration by the bound-derived
// time model, without measuring anything. The scan behind it runs once per
// Space (the axes are immutable) and calibration only scales the estimate,
// never the ranking, so repeated calls are O(1) and deterministic. A
// calibration below 1 (or NaN) is treated as 1: the floor is admissible,
// so no honest estimate can undercut it.
func (sp *Space) Analytic(calibration float64) (AnalyticVerdict, error) {
	vs, err := sp.AnalyticTop(1, calibration)
	if err != nil {
		return AnalyticVerdict{}, err
	}
	return vs[0], nil
}

// AnalyticTop returns up to k analytically-ranked configurations, best
// floor first (k ≤ the retained analyticTopCap; k < 1 returns all
// retained). Safe for concurrent use.
func (sp *Space) AnalyticTop(k int, calibration float64) ([]AnalyticVerdict, error) {
	sp.anOnce.Do(sp.analyticScan)
	if sp.anErr != nil {
		return nil, sp.anErr
	}
	cal := calibration
	if !(cal > 1) {
		cal = 1
	}
	if k < 1 || k > len(sp.anTop) {
		k = len(sp.anTop)
	}
	out := make([]AnalyticVerdict, 0, k)
	for _, s := range sp.anTop[:k] {
		sec := s.cost * cal
		out = append(out, AnalyticVerdict{
			Config:  s.cfg,
			Floor:   s.cost,
			Seconds: sec,
			GFLOPS:  sp.flopsFloor / sec / 1e9,
			Ranked:  sp.anRanked,
		})
	}
	return out, nil
}

// Calibration sampling caps: the factor is a broad-brush scale, so a
// bounded prefix of the (deterministically ordered) cache state is plenty
// and keeps calibration O(1)-ish on large caches.
const (
	calibrationMaxEntries = 32
	calibrationMaxRows    = 64
	calibrationMaxFactor  = 1e6
)

// CalibrateAnalytic fits the analytic tier's calibration factor from the
// measured rows persisted in cache for arch: the median ratio of measured
// seconds to the admissible floor, over the state-carrying entries (in
// deterministic key order, capped). The floor never exceeds a measured
// time, so the factor is ≥ 1; an empty or stateless cache yields 1 (serve
// the raw floor).
func CalibrateAnalytic(cache *Cache, arch memsim.Arch) float64 {
	if cache == nil {
		return 1
	}
	var ratios []float64
	entries := cache.stateEntries(arch.Name)
	if len(entries) > calibrationMaxEntries {
		entries = entries[:calibrationMaxEntries]
	}
	for _, e := range entries {
		kind, err := kindFromString(e.Kind)
		if err != nil {
			continue
		}
		sp, err := NewSpace(e.Shape.shape(), arch, kind, winogradDefaultE(kind), true)
		if err != nil {
			continue
		}
		rows := e.history()
		if len(rows) > calibrationMaxRows {
			rows = rows[:calibrationMaxRows]
		}
		for _, h := range rows {
			if !h.OK || !(h.M.Seconds > 0) {
				continue
			}
			f := sp.analyticFloor(h.Config)
			if !(f > 0) || math.IsInf(f, 1) {
				continue
			}
			ratios = append(ratios, h.M.Seconds/f)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sort.Float64s(ratios)
	cal := ratios[len(ratios)/2]
	if !(cal > 1) {
		cal = 1
	}
	if cal > calibrationMaxFactor {
		cal = calibrationMaxFactor
	}
	return cal
}

// dseKey addresses one memoized space of an AnalyticDSE.
type dseKey struct {
	kind Kind
	s    shapes.ConvShape
}

// AnalyticDSE is the reusable instant-verdict tier for one architecture: a
// map of (kind, shape) spaces — each carrying its memoized analytic scan —
// plus the current calibration factor. A long-running service keeps one
// per architecture and answers repeated shapes in O(1).
type AnalyticDSE struct {
	arch memsim.Arch

	mu     sync.Mutex
	spaces map[dseKey]*Space
	cal    float64
}

// NewAnalyticDSE builds an empty analytic tier for arch (calibration 1).
func NewAnalyticDSE(arch memsim.Arch) *AnalyticDSE {
	return &AnalyticDSE{arch: arch, spaces: make(map[dseKey]*Space), cal: 1}
}

// SetCalibration installs a new calibration factor (clamped to ≥ 1); see
// CalibrateAnalytic.
func (a *AnalyticDSE) SetCalibration(f float64) {
	if !(f > 1) {
		f = 1
	}
	a.mu.Lock()
	a.cal = f
	a.mu.Unlock()
}

// Calibration reports the current calibration factor.
func (a *AnalyticDSE) Calibration() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cal
}

// space returns the memoized Space for a (kind, shape), building it on
// first use. The scan itself runs outside the lock (once-guarded per
// Space), so concurrent callers on distinct shapes do not serialize.
func (a *AnalyticDSE) space(kind Kind, s shapes.ConvShape) (*Space, error) {
	k := dseKey{kind: kind, s: s}
	a.mu.Lock()
	sp := a.spaces[k]
	a.mu.Unlock()
	if sp != nil {
		return sp, nil
	}
	sp, err := NewSpace(s, a.arch, kind, winogradDefaultE(kind), true)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if prev := a.spaces[k]; prev != nil {
		sp = prev
	} else {
		a.spaces[k] = sp
	}
	a.mu.Unlock()
	return sp, nil
}

// Layer returns the analytic verdict for one (kind, shape).
func (a *AnalyticDSE) Layer(kind Kind, s shapes.ConvShape) (AnalyticVerdict, error) {
	sp, err := a.space(kind, s)
	if err != nil {
		return AnalyticVerdict{}, err
	}
	return sp.Analytic(a.Calibration())
}

// Network is the measurement-free analog of TuneNetwork for the classic
// direct-vs-Winograd choice; NetworkKinds generalizes it to any candidate
// kind set.
func (a *AnalyticDSE) Network(layers []NetworkLayer, winograd bool) ([]LayerVerdict, error) {
	var kinds []Kind
	if winograd {
		kinds = []Kind{Winograd}
	}
	return a.NetworkKinds(layers, kinds)
}

// NetworkKinds is the measurement-free analog of TuneNetwork with per-layer
// kernel choice: every layer gets an analytic verdict (Tier: TierAnalytic),
// choosing among Direct and the requested kinds by the analytic estimate
// under the same candidate-filtering rule the measured sweep uses. It never
// blocks on a measurement and never consults a cache.
func (a *AnalyticDSE) NetworkKinds(layers []NetworkLayer, kinds []Kind) ([]LayerVerdict, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("autotune: no layers to tune")
	}
	verdicts := make([]LayerVerdict, len(layers))
	for i, l := range layers {
		av, err := a.Layer(Direct, l.Shape)
		if err != nil {
			return nil, fmt.Errorf("autotune: analytic tier: layer %q: %w", l.Name, err)
		}
		v := LayerVerdict{Layer: l, Kind: Direct, Config: av.Config,
			M: Measurement{Seconds: av.Seconds, GFLOPS: av.GFLOPS}, Tier: TierAnalytic}
		for _, kind := range candidateKinds(l.Shape, NetworkOptions{Kinds: kinds})[1:] {
			// A kind may legitimately not admit the layer; the incumbent
			// estimate stands alone then — mirroring the measured sweep.
			if kv, kerr := a.Layer(kind, l.Shape); kerr == nil && kv.Seconds < v.M.Seconds {
				v.Kind, v.Config = kind, kv.Config
				v.M = Measurement{Seconds: kv.Seconds, GFLOPS: kv.GFLOPS}
			}
		}
		verdicts[i] = v
	}
	return verdicts, nil
}

// analyticLayerVerdict answers one layer from the analytic tier using the
// already-built task spaces (the mandatory Direct space first) —
// TuneNetwork's degradation path for a layer whose search errored. ok is
// false when no space can rank anything.
func analyticLayerVerdict(l NetworkLayer, spaces []*Space, calibration float64) (LayerVerdict, bool) {
	av, err := spaces[0].Analytic(calibration)
	best := LayerVerdict{Layer: l, Kind: spaces[0].Kind, Config: av.Config,
		M: Measurement{Seconds: av.Seconds, GFLOPS: av.GFLOPS}, Tier: TierAnalytic}
	ok := err == nil
	for _, sp := range spaces[1:] {
		if kv, kerr := sp.Analytic(calibration); kerr == nil && (!ok || kv.Seconds < best.M.Seconds) {
			best.Kind, best.Config = sp.Kind, kv.Config
			best.M = Measurement{Seconds: kv.Seconds, GFLOPS: kv.GFLOPS}
			ok = true
		}
	}
	return best, ok
}
