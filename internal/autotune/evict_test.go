package autotune

import (
	"testing"
	"time"

	"repro/internal/conv"
	"repro/internal/shapes"
)

// evictShape makes the i-th of a family of distinct valid shapes.
func evictShape(i int) shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 4 * (i + 1), Cout: 8, Hin: 8, Win: 8,
		Hker: 3, Wker: 3, Strid: 1, Pad: 1}
}

// The LRU property: inserting far more distinct keys than the cap leaves
// the cache at or under the cap with every insert accounted for — each key
// is either resident or was reported evicted, never both, never neither —
// and the survivors are exactly a most-recently-used suffix of the insert
// order (the logical LRU clock is strictly monotonic, so insert order is
// usage order here).
func TestEvictionLRUBoundsAndRecency(t *testing.T) {
	const cap, inserts = 16, 50
	c := NewCache()
	var evicted []int
	c.SetEviction(EvictionPolicy{MaxEntries: cap, OnEvict: func(e CacheEntry) {
		// Seconds encodes the insert index (see the Put below).
		evicted = append(evicted, int(e.Seconds))
	}})

	for i := 0; i < inserts; i++ {
		c.Put(arch.Name, Direct, evictShape(i), conv.Config{}, Measurement{Seconds: float64(i), GFLOPS: 1})
	}

	if got := c.Len(); got > cap {
		t.Fatalf("cache holds %d entries, cap is %d", got, cap)
	}
	if got := c.Len() + len(evicted); got != inserts {
		t.Fatalf("%d resident + %d evicted = %d, want every one of %d inserts accounted for",
			c.Len(), len(evicted), got, inserts)
	}

	// Survivors are the most-recent suffix: every evicted index is older
	// than every resident one, and residency matches the partition exactly.
	oldestSurvivor := inserts - c.Len()
	for _, i := range evicted {
		if i >= oldestSurvivor {
			t.Errorf("evicted insert #%d although older insert #%d survived", i, oldestSurvivor)
		}
	}
	for i := 0; i < inserts; i++ {
		_, m, ok := c.Get(arch.Name, Direct, evictShape(i))
		if want := i >= oldestSurvivor; ok != want {
			t.Errorf("insert #%d resident=%v, want %v", i, ok, want)
		} else if ok && int(m.Seconds) != i {
			t.Errorf("insert #%d answered with insert #%d's verdict", i, int(m.Seconds))
		}
	}

	// Byte accounting must agree with the survivors' own size model.
	var want int64
	for i := oldestSurvivor; i < inserts; i++ {
		want += CacheEntry{Arch: arch.Name, Kind: Direct.String()}.SizeBytes()
	}
	if got := c.SizeBytes(); got != want {
		t.Errorf("SizeBytes() = %d, want %d (sum over residents)", got, want)
	}

	st := c.Stats()
	if st.Entries != c.Len() || st.Evictions != int64(len(evicted)) {
		t.Errorf("Stats() = %+v inconsistent with Len %d / evicted %d", st, c.Len(), len(evicted))
	}
}

// A Get refreshes recency: a key read just before overflow must survive an
// eviction round that removes colder, never-read keys inserted after it.
func TestEvictionGetRefreshesRecency(t *testing.T) {
	const cap = 8
	c := NewCache()
	c.SetEviction(EvictionPolicy{MaxEntries: cap})
	for i := 0; i < cap; i++ {
		c.Put(arch.Name, Direct, evictShape(i), conv.Config{}, Measurement{Seconds: 1, GFLOPS: 1})
	}
	// Touch the oldest key, then overflow by one: the victim must be the
	// now-coldest key (#1), not the just-read #0 — without the Get, #0
	// would have been first out.
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(0)); !ok {
		t.Fatal("freshly inserted key missing")
	}
	c.Put(arch.Name, Direct, evictShape(cap), conv.Config{}, Measurement{Seconds: 1, GFLOPS: 1})
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(0)); !ok {
		t.Error("recently read key was evicted ahead of colder ones")
	}
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(1)); ok {
		t.Error("coldest key survived the overflow")
	}
}

// The TTL: under a fake clock, entries expire exactly when idle longer
// than the policy says — lazily on lookup and in bulk via EvictExpired —
// and a hit restarts an entry's idle clock.
func TestEvictionTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.SetEviction(EvictionPolicy{TTL: time.Minute, Now: func() time.Time { return now }})

	c.Put(arch.Name, Direct, evictShape(0), conv.Config{}, Measurement{Seconds: 1, GFLOPS: 1})
	c.Put(arch.Name, Direct, evictShape(1), conv.Config{}, Measurement{Seconds: 1, GFLOPS: 1})

	now = now.Add(50 * time.Second)
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(0)); !ok {
		t.Fatal("entry expired before its TTL")
	}

	// Shape 0 was touched at t+50s, shape 1 not since t=0. At t+70s only
	// shape 1 has been idle past the minute.
	now = now.Add(20 * time.Second)
	if n := c.EvictExpired(); n != 1 {
		t.Fatalf("EvictExpired() = %d, want 1", n)
	}
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(0)); !ok {
		t.Error("touched entry was swept despite a fresh idle clock")
	}
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(1)); ok {
		t.Error("idle entry survived past its TTL")
	}

	// Lazy path: let the survivor go stale and look it up — the lookup
	// itself must miss and drop it.
	now = now.Add(2 * time.Minute)
	if _, _, ok := c.Get(arch.Name, Direct, evictShape(0)); ok {
		t.Error("stale entry served from a lookup")
	}
	if got := c.Len(); got != 0 {
		t.Errorf("cache holds %d entries after everything expired, want 0", got)
	}
}

// MaxBytes alone also bounds the cache, evicting in LRU order by the
// entries' size model.
func TestEvictionMaxBytes(t *testing.T) {
	perEntry := CacheEntry{Arch: arch.Name, Kind: Direct.String()}.SizeBytes()
	c := NewCache()
	c.SetEviction(EvictionPolicy{MaxBytes: 10 * perEntry})
	for i := 0; i < 40; i++ {
		c.Put(arch.Name, Direct, evictShape(i), conv.Config{}, Measurement{Seconds: 1, GFLOPS: 1})
	}
	if got, cap := c.SizeBytes(), 10*perEntry; got > cap {
		t.Errorf("SizeBytes() = %d, cap is %d", got, cap)
	}
	if c.Len() == 0 {
		t.Error("byte cap evicted everything")
	}
}

// Eviction is capacity management, not state: re-requesting an evicted key
// re-runs the deterministic engine and reproduces the verdict bit for bit.
func TestEvictedKeyRetunesIdentically(t *testing.T) {
	opts := smallOpts(24, 9)
	shape := evictShape(0)
	sp, err := NewSpace(shape, arch, Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	measure := DirectMeasurer(arch, shape)

	c := NewCache()
	c.SetEviction(EvictionPolicy{MaxEntries: 4})
	cfg1, m1, err := TuneCached(c, sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Push the tuned key out with filler traffic, then prove it is gone.
	for i := 1; i <= 16; i++ {
		c.Put(arch.Name, Direct, evictShape(i), conv.Config{}, Measurement{Seconds: 1, GFLOPS: 1})
	}
	if _, _, ok := c.Get(arch.Name, Direct, shape); ok {
		t.Fatal("tuned key survived the filler flood; eviction untested")
	}

	cfg2, m2, err := TuneCached(c, sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg1 != cfg2 || m1 != m2 {
		t.Errorf("re-tuned verdict differs: (%+v, %+v) != (%+v, %+v)", cfg2, m2, cfg1, m1)
	}
}
