package autotune

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/memsim"
	"repro/internal/shapes"
)

// engineBenchLayer is AlexNet conv2 — the mid-size layer the engine
// benchmarks and Table 2 share.
func engineBenchLayer() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 256, Hker: 5, Wker: 5, Strid: 1, Pad: 2}
}

// BenchmarkTuneEngine measures the engine's own overhead: a fixed-budget
// Tune against a warmed memoized measurer, whose steady-state measurement
// is a ~30ns map lookup — so model refits, proposal ranking and
// bookkeeping are essentially all that is timed.
//
//	current — the bound-guided engine (warm-started GBT, heap ranking, pruning)
//	noprune — the same engine with the bound filter off
//	prePR   — the engine exactly as it stood before the rework (full GBT
//	          retrain per batch, full sorts, no pruning; see legacy_test.go)
//
// The acceptance bar for the rework is current ≥ 3x faster than prePR at
// matching solution quality; the benchmark reports each variant's final
// GFLOPS so the quality side is visible in the same output.
func BenchmarkTuneEngine(b *testing.B) {
	arch := memsim.V100
	s := engineBenchLayer()
	measure := DirectMeasurer(arch, s) // shared memo: measurements are free after round one
	opts := DefaultOptions()
	opts.Budget = 192
	opts.Patience = 0
	opts.Seed = 1

	variants := []struct {
		name string
		run  func(*Space, Measurer, Options) (*Trace, error)
		mod  func(*Options)
	}{
		{"current", Tune, func(*Options) {}},
		{"noprune", Tune, func(o *Options) { o.NoPrune = true }},
		{"prePR", legacyTune, func(*Options) {}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			o := opts
			v.mod(&o)
			var best, pruned float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp, err := NewSpace(s, arch, Direct, 0, true)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := v.run(sp, measure, o)
				if err != nil {
					b.Fatal(err)
				}
				best = tr.BestM.GFLOPS
				pruned = float64(tr.Pruned)
			}
			b.ReportMetric(best, "best-gflops")
			b.ReportMetric(pruned, "pruned")
		})
	}
}

// BenchmarkTrainGBTIncremental isolates the cost-model refit strategy on
// the engine's exact access pattern — a dataset growing by one batch per
// iteration:
//
//	full-retrain — the pre-rework strategy: a from-scratch 60-round fit
//	               (per-node value sorts) after every batch
//	warm-start   — the new strategy: one full fit, then 8-round
//	               GBTModel.Update per batch on the presorted column index,
//	               with a from-scratch refresh when the forest hits its cap
//
// One op = consuming all batches of the same grown dataset.
func BenchmarkTrainGBTIncremental(b *testing.B) {
	const start, step, total = 64, 8, 320
	x, y := benchRows(total, 13)

	b.Run("full-retrain", func(b *testing.B) {
		b.ReportAllocs()
		var m *GBTModel
		for i := 0; i < b.N; i++ {
			for n := start; n <= total; n += step {
				m = legacyTrainGBT(DefaultGBTConfig(), x[:n], y[:n])
			}
		}
		b.ReportMetric(float64(m.NumTrees()), "trees")
	})
	b.Run("warm-start", func(b *testing.B) {
		cfg := DefaultGBTConfig()
		maxForest := 4 * cfg.Trees
		b.ReportAllocs()
		var m *GBTModel
		for i := 0; i < b.N; i++ {
			m = TrainGBT(cfg, x[:start], y[:start])
			for n := start + step; n <= total; n += step {
				if m.NumTrees()+cfg.UpdateTrees > maxForest {
					m = TrainGBT(cfg, x[:n], y[:n])
				} else {
					m.Update(x[:n], y[:n], cfg.UpdateTrees)
				}
			}
		}
		b.ReportMetric(float64(m.NumTrees()), "trees")
	})
}

// benchRows draws feature rows from a real tuning space with their
// measured log-costs, so both trainer benchmarks see the engine's true
// feature distribution (quantized axes, massed ties) rather than smooth
// synthetic data.
func benchRows(n int, seed int64) ([][]float64, []float64) {
	arch := memsim.V100
	s := engineBenchLayer()
	sp, err := NewSpace(s, arch, Direct, 0, true)
	if err != nil {
		panic(err)
	}
	measure := DirectMeasurer(arch, s)
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []float64
	for len(x) < n {
		c := sp.Sample(rng)
		m, ok := measure(c)
		cost := 20.0
		if ok {
			cost = math.Log(m.Seconds)
		}
		x = append(x, sp.Features(c))
		y = append(y, cost)
	}
	return x, y
}
