package autotune

import (
	"math"
	"sync"

	"repro/internal/bounds"
	"repro/internal/conv"
	"repro/internal/memsim"
)

// This file turns the paper's I/O lower bounds (Theorems 4.12 and 4.20)
// into a pruning oracle for the search engine. For any configuration, the
// simulated runtime is at least
//
//	launch + waves·waveLatency + Q(Sb)·4 / bandwidth
//
// because the time model adds the launch terms unconditionally and its
// global-memory term is the measured off-chip traffic over (at most) full
// bandwidth — and the measured traffic of any dataflow using Sb floats of
// fast memory is at least the theorem's Q(Sb). For the direct algorithm
// the arithmetic is configuration-independent, so flops/peak joins the max
// as a second floor. A candidate whose floor already exceeds the best
// measured time can therefore be discarded without measuring it
// (branch-and-bound); the tests assert the floor never exceeds the
// measured time of any admissible configuration.
//
// The theorem evaluation depends on the configuration only through the
// fast-memory size Sb and the Winograd tile edge e, so — mirroring the
// MemoMeasure tile-key machinery — Q is memoized per (Sb, e) key and a
// steady-state BoundSeconds call is one map lookup plus O(1) launch
// geometry.

// boundKey is the memo key: the only config axes the theorems see.
type boundKey struct {
	sb, e int
}

// boundMemo caches Q(Sb, e) per space. It is safe for concurrent use: a
// Space may be shared by concurrent tuning runs (TuneNetwork's layer
// workers, tests under -race).
type boundMemo struct {
	mu   sync.RWMutex
	memo map[boundKey]float64
}

// BoundSeconds returns a lower bound (in simulated seconds) on what any
// measurement of c can report, or 0 when no useful bound applies. A
// configuration whose block does not fit the device at all gets +Inf: its
// measurement can only fail.
func (sp *Space) BoundSeconds(c conv.Config) float64 {
	if c.TileX < 1 || c.TileY < 1 || c.TileZ < 1 || c.SharedPerBlock < 1 ||
		c.ThreadsX < 1 || c.ThreadsY < 1 || c.ThreadsZ < 1 {
		return 0
	}
	var l memsim.Launch
	switch sp.Kind {
	case Winograd:
		if c.WinogradE < 2 {
			return 0
		}
		l = conv.WinogradFusedLaunch(sp.Shape, c)
	case FFT:
		if c.TileX*c.TileY == 0 || c.TileZ == 0 {
			return 0
		}
		lh, lw := conv.FFTGrid(sp.Shape)
		cpg := sp.Shape.Cout / sp.Shape.G()
		if lw%c.TileX != 0 || lh%c.TileY != 0 || c.TileZ > cpg || cpg%c.TileZ != 0 {
			return 0
		}
		l = conv.FFTTiledLaunch(sp.Shape, c)
	case ImplicitGEMM:
		l = conv.IGEMMTiledLaunch(sp.Shape, c)
	default:
		l = conv.DirectTiledLaunch(sp.Shape, c)
	}
	if l.Blocks < 1 || l.ThreadsPerBlock < 1 {
		return 0
	}
	// The scheduling floor is the time model's own additive term, via the
	// shared memsim helper — never a re-derived copy, so the two cannot
	// drift apart.
	sched, resident := sp.Arch.ScheduleCost(l)
	if resident == 0 {
		return math.Inf(1)
	}
	t := sched + sp.boundIO(c.SharedPerBlock, c.WinogradE)*4/(sp.Arch.BandwidthGBs*1e9)
	switch sp.Kind {
	case Direct, ImplicitGEMM:
		// The tiled direct dataflows' arithmetic is the same for every
		// tiling, so peak compute is a second configuration-independent
		// floor.
		if alt := sched + sp.flopsFloor/(sp.Arch.PeakGFLOPS*1e9); alt > t {
			t = alt
		}
	case FFT:
		// The transform phases cost the same for every config; the tunable
		// phase is floored by its bandwidth/compute roofline.
		if alt := sched + sp.fftP3Flops/(sp.Arch.PeakGFLOPS*1e9); alt > t {
			t = alt
		}
		t += sp.fftFixedSec
	}
	return t
}

// boundIO returns the memoized Theorem 4.12 / 4.20 lower bound, in
// elements moved, for fast memory sb (and tile edge e for Winograd).
func (sp *Space) boundIO(sb, e int) float64 {
	key := boundKey{sb: sb, e: e}
	sp.bmemo.mu.RLock()
	q, hit := sp.bmemo.memo[key]
	sp.bmemo.mu.RUnlock()
	if hit {
		return q
	}
	switch sp.Kind {
	case Winograd:
		q = bounds.WinogradLowerBound(sp.Shape, e, sb)
	case FFT:
		q = bounds.FFTPhase3LowerBound(sp.Shape, sb)
	default:
		// Direct and implicit-GEMM share the convolution DAG, so Theorem
		// 4.12 bounds both (group-aware through KernelSize).
		q = bounds.DirectLowerBound(sp.Shape, sb)
	}
	sp.bmemo.mu.Lock()
	if sp.bmemo.memo == nil {
		sp.bmemo.memo = make(map[boundKey]float64)
	}
	sp.bmemo.memo[key] = q
	sp.bmemo.mu.Unlock()
	return q
}
