package autotune

import (
	"math"
	"math/rand"
	"testing"
)

// synthRows builds a deterministic synthetic regression set with mixed
// continuous and quantized features — quantized columns produce the massed
// value ties the column-index trainer must handle.
func synthRows(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := rng.Float64()*4 - 2
		b := float64(rng.Intn(5))
		c := rng.Float64()
		d := float64(rng.Intn(2))
		x[i] = []float64{a, b, c, d}
		y[i] = a*a + 0.7*b - 1.3*c*d + 0.1*rng.NormFloat64()
	}
	return x, y
}

// The headline warm-start contract: fitting R1 rounds and updating with R2
// more on the same dataset is bit-identical to a single full retrain of
// R1+R2 rounds — the split point does not change the model.
func TestGBTUpdateEqualsFullRetrain(t *testing.T) {
	x, y := synthRows(240, 17)
	for _, split := range []struct{ first, rest int }{{40, 20}, {1, 59}, {59, 1}, {30, 0}} {
		fullCfg := DefaultGBTConfig()
		fullCfg.Trees = split.first + split.rest
		full := TrainGBT(fullCfg, x, y)

		incCfg := DefaultGBTConfig()
		incCfg.Trees = split.first
		inc := TrainGBT(incCfg, x, y)
		inc.Update(x, y, split.rest)

		if got, want := inc.NumTrees(), full.NumTrees(); got != want {
			t.Fatalf("split %v: %d trees, want %d", split, got, want)
		}
		probe := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			v := []float64{probe.Float64()*4 - 2, float64(probe.Intn(5)), probe.Float64(), float64(probe.Intn(2))}
			if a, b := inc.Predict(v), full.Predict(v); a != b {
				t.Fatalf("split %v: Predict diverges: %v vs %v at %v", split, a, b, v)
			}
		}
	}
}

// Update on a grown dataset keeps the old trees and keeps learning: the
// warm-started model must fit the full set far better than the stale model
// it grew from, and at least as well as base-rate prediction.
func TestGBTUpdateLearnsGrownDataset(t *testing.T) {
	xAll, yAll := synthRows(600, 3)
	m := TrainGBT(DefaultGBTConfig(), xAll[:100], yAll[:100])
	stale := m.RMSE(xAll, yAll)
	for n := 200; n <= 600; n += 100 {
		m.Update(xAll[:n], yAll[:n], 8)
		if got := m.NumRows(); got != n {
			t.Fatalf("NumRows=%d after ingesting %d rows", got, n)
		}
	}
	if got := m.NumTrees(); got != 60+5*8 {
		t.Fatalf("forest has %d trees, want %d", got, 60+5*8)
	}
	warm := m.RMSE(xAll, yAll)
	if math.IsNaN(warm) || warm >= stale {
		t.Errorf("warm-started RMSE %v did not improve on stale %v", warm, stale)
	}
	// And it must remain a usable model outright.
	if warm > 0.8 {
		t.Errorf("warm-started RMSE %v too high", warm)
	}
}

// Update panics when the dataset does not extend the trained rows.
func TestGBTUpdateRejectsShrunkDataset(t *testing.T) {
	x, y := synthRows(50, 9)
	m := TrainGBT(DefaultGBTConfig(), x, y)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shrunk Update dataset")
		}
	}()
	m.Update(x[:10], y[:10], 4)
}

// The column-index trainer must behave identically whether ties abound or
// not; a constant feature must never be chosen as a split.
func TestGBTConstantFeatureIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64()
		x = append(x, []float64{1.5, a}) // feature 0 constant
		y = append(y, 3*a)
	}
	m := TrainGBT(DefaultGBTConfig(), x, y)
	for _, imp := range m.FeatureImportance() {
		if imp.Feature == FeatureNames[0] {
			t.Errorf("model split on a constant feature: %+v", imp)
		}
	}
	if rmse := m.RMSE(x, y); rmse > 0.05 {
		t.Errorf("RMSE %v too high on a linear single-feature target", rmse)
	}
}
