package autotune

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conv"
	"repro/internal/shapes"
)

// Crash-safety tests for the persisted cache: atomic file replacement,
// checksum-verified loads, and salvage of files torn by a mid-write kill.

// seedCache builds a cache with n distinct entries.
func seedCache(t *testing.T, n int) *Cache {
	t.Helper()
	c := NewCache()
	s := layer()
	for i := 0; i < n; i++ {
		sh := s
		sh.Cout = s.Cout + i // distinct shapes -> distinct keys
		cfg := conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2,
			SharedPerBlock: 4096}
		c.Put(arch.Name, Direct, sh, cfg, Measurement{Seconds: 1.5e-4 * float64(i+1), GFLOPS: 100 * float64(i+1)})
	}
	return c
}

func entryShape(i int) shapes.ConvShape {
	s := layer()
	s.Cout += i
	return s
}

// SaveFile must be atomic: the final file round-trips, and no temp
// litter survives a successful save (or an overwrite of a prior state).
func TestSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.cache")
	c := seedCache(t, 3)
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with more state: rename-over must replace cleanly.
	c.Put(arch.Name, Direct, entryShape(7), conv.Config{TileX: 3, TileY: 3, TileZ: 4,
		ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2, SharedPerBlock: 2048}, Measurement{Seconds: 2e-4, GFLOPS: 50})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if e.Name() != "state.cache" {
			t.Errorf("temp litter after SaveFile: %s", e.Name())
		}
	}

	restored := NewCache()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != c.Len() {
		t.Errorf("restored %d entries, want %d", restored.Len(), c.Len())
	}
}

// The persisted checksum catches silent bit rot that still parses as
// JSON: a single flipped digit inside the entries must fail the load.
func TestLoadChecksumDetectsBitRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.cache")
	if err := seedCache(t, 2).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"checksum": "crc32c:`)) {
		t.Fatal("saved file carries no checksum")
	}
	// GFLOPS 100 -> 900: valid JSON, valid entry, wrong bytes.
	rotted := bytes.Replace(data, []byte(`"gflops": 100`), []byte(`"gflops": 900`), 1)
	if bytes.Equal(rotted, data) {
		t.Fatal("test corruption did not apply")
	}
	err = NewCache().Load(bytes.NewReader(rotted))
	if err == nil {
		t.Fatal("bit-rotted file loaded cleanly")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("wrong error for bit rot: %v", err)
	}
}

// RecoverFile on an intact file is a plain load: everything in, nothing
// salvaged, no renames.
func TestRecoverFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.cache")
	if err := seedCache(t, 3).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	loaded, salvaged, err := c.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if salvaged || loaded != 3 || c.Len() != 3 {
		t.Errorf("intact recover: loaded=%d salvaged=%v len=%d, want 3/false/3", loaded, salvaged, c.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("intact file disturbed: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt"); !os.IsNotExist(err) {
		t.Error("intact recover left a .corrupt file")
	}
}

// A file torn by a mid-write kill — the tail cut off — salvages its
// complete entries, sets the damaged original aside as .corrupt, and the
// recovered entries answer Gets.
func TestRecoverFileTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.cache")
	if err := seedCache(t, 3).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the closing bytes of the envelope: every entry is still whole,
	// but the file no longer parses (and fails its checksum regardless).
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	loaded, salvaged, err := c.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !salvaged {
		t.Fatal("torn file not reported as salvaged")
	}
	if loaded != 3 || c.Len() != 3 {
		t.Errorf("salvage recovered %d entries (len %d), want all 3", loaded, c.Len())
	}
	if _, _, ok := c.Get(arch.Name, Direct, entryShape(1)); !ok {
		t.Error("salvaged entry not retrievable")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("damaged original still in place")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("damaged file not set aside: %v", err)
	}
}

// A deeper tear — cut mid-entry — recovers the prefix of whole entries
// and drops the mangled one.
func TestRecoverFileTornMidEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.cache")
	if err := seedCache(t, 4).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*3/4], 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	loaded, salvaged, err := c.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !salvaged {
		t.Fatal("torn file not reported as salvaged")
	}
	if loaded < 1 || loaded >= 4 {
		t.Errorf("mid-entry tear salvaged %d entries, want a nonempty strict prefix of 4", loaded)
	}
	if c.Len() != loaded {
		t.Errorf("cache holds %d entries, salvage reported %d", c.Len(), loaded)
	}
}

// Unsalvageable garbage recovers nothing but still clears the path for
// the next snapshot.
func TestRecoverFileGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.cache")
	if err := os.WriteFile(path, []byte("!!! not a cache file {{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	loaded, salvaged, err := c.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !salvaged || loaded != 0 || c.Len() != 0 {
		t.Errorf("garbage recover: loaded=%d salvaged=%v len=%d, want 0/true/0", loaded, salvaged, c.Len())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("garbage file not set aside: %v", err)
	}
}

// A missing state file is a fresh boot, not an error.
func TestRecoverFileMissing(t *testing.T) {
	loaded, salvaged, err := NewCache().RecoverFile(filepath.Join(t.TempDir(), "absent.cache"))
	if err != nil || loaded != 0 || salvaged {
		t.Errorf("missing file: loaded=%d salvaged=%v err=%v, want 0/false/nil", loaded, salvaged, err)
	}
}
