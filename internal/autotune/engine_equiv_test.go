package autotune

import (
	"testing"

	"repro/internal/memsim"
)

// The engine rework (bound pruning, warm-started GBT, heap ranking) must
// not change what the search finds. On the benchmark layer the reworked
// engine — pruning on or off — lands on exactly the same best measurement
// as the preserved pre-rework loop for every tested budget and seed; where
// the winning configs differ in identity they are exact cost ties, which
// re-measuring both configs verifies.
func TestEngineMatchesLegacyVerdict(t *testing.T) {
	a := memsim.V100
	s := engineBenchLayer()
	measure := DirectMeasurer(a, s)
	cases := []struct {
		budget int
		seed   int64
	}{{96, 1}, {96, 2}, {96, 3}, {96, 4}, {192, 1}}
	for _, tc := range cases {
		budget, seed := tc.budget, tc.seed
		{
			sp, err := NewSpace(s, a, Direct, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			o := DefaultOptions()
			o.Budget = budget
			o.Patience = 0
			o.Seed = seed
			leg, err := legacyTune(sp, measure, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, noPrune := range []bool{false, true} {
				oo := o
				oo.NoPrune = noPrune
				cur, err := Tune(sp, measure, oo)
				if err != nil {
					t.Fatal(err)
				}
				if cur.BestM != leg.BestM {
					t.Errorf("budget=%d seed=%d noPrune=%v: best measurement %+v != legacy %+v",
						budget, seed, noPrune, cur.BestM, leg.BestM)
				}
				mc, okc := measure(cur.Best)
				ml, okl := measure(leg.Best)
				if !okc || !okl || mc.Seconds != ml.Seconds {
					t.Errorf("budget=%d seed=%d noPrune=%v: winners not cost-equivalent: %v (%v) vs %v (%v)",
						budget, seed, noPrune, cur.Best, mc.Seconds, leg.Best, ml.Seconds)
				}
			}
		}
	}
}
