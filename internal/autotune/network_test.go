package autotune

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/conv"
	"repro/internal/shapes"
)

// TestTuneWorkersDeterministic is the executor's contract: the same seed
// and budget yield a bit-identical trace (best config, curve, convergence
// point) whether the batch is measured by 1 goroutine or 8.
func TestTuneWorkersDeterministic(t *testing.T) {
	s := layer()
	measure := DirectMeasurer(arch, s)
	run := func(workers int) *Trace {
		sp := mustSpace(t, true)
		opts := smallOpts(64, 7)
		opts.Workers = workers
		tr, err := Tune(sp, measure, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tr
	}
	t1, t8 := run(1), run(8)
	if t1.Best != t8.Best {
		t.Errorf("best config differs: workers=1 %v, workers=8 %v", t1.Best, t8.Best)
	}
	if t1.BestM != t8.BestM {
		t.Errorf("best measurement differs: %v vs %v", t1.BestM, t8.BestM)
	}
	if t1.Measurements != t8.Measurements || t1.ConvergedAt != t8.ConvergedAt {
		t.Errorf("bookkeeping differs: (%d,%d) vs (%d,%d)",
			t1.Measurements, t1.ConvergedAt, t8.Measurements, t8.ConvergedAt)
	}
	if !reflect.DeepEqual(t1.Curve, t8.Curve) {
		t.Error("convergence curves differ across worker counts")
	}
}

func resnetBlockLayers() []NetworkLayer {
	c := func(cin, hw, cout, k, stride, pad int) shapes.ConvShape {
		return shapes.ConvShape{Batch: 1, Cin: cin, Hin: hw, Win: hw, Cout: cout,
			Hker: k, Wker: k, Strid: stride, Pad: pad}
	}
	return []NetworkLayer{
		{Name: "stage2_down", Shape: c(64, 56, 128, 3, 2, 1), Repeat: 1},
		{Name: "stage2_a", Shape: c(128, 28, 128, 3, 1, 1), Repeat: 1},
		{Name: "stage2_b", Shape: c(128, 28, 128, 3, 1, 1), Repeat: 1}, // same key as stage2_a
		{Name: "stage2_proj", Shape: c(64, 56, 128, 1, 2, 0), Repeat: 1},
		{Name: "stage2_c", Shape: c(128, 28, 128, 3, 1, 1), Repeat: 1}, // same key again
	}
}

// TestTuneNetworkDedupAndDeterminism: identical shape keys share one
// search, and the verdict list is identical at any layer-worker count.
func TestTuneNetworkDedupAndDeterminism(t *testing.T) {
	layers := resnetBlockLayers()
	opts := NetworkOptions{Tune: smallOpts(24, 3)}
	run := func(workers int) []LayerVerdict {
		o := opts
		o.Workers = workers
		v, err := TuneNetwork(arch, layers, NewCache(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return v
	}
	v1, v8 := run(1), run(8)
	for i := range layers {
		if v1[i].Config != v8[i].Config || v1[i].M != v8[i].M || v1[i].Kind != v8[i].Kind {
			t.Errorf("layer %s: verdict differs across worker counts: %+v vs %+v",
				layers[i].Name, v1[i], v8[i])
		}
	}
	// The three stage2 body layers have one shape key: identical verdicts,
	// and exactly one of them ran its own search.
	owned := 0
	for _, i := range []int{1, 2, 4} {
		if v8[i].Config != v8[1].Config || v8[i].M != v8[1].M {
			t.Errorf("duplicate-shape layer %s got a different verdict", layers[i].Name)
		}
		if !v8[i].Shared {
			owned++
		}
	}
	if owned != 1 {
		t.Errorf("want exactly 1 owned search among duplicate layers, got %d", owned)
	}
}

// TestTuneNetworkSharedCache: a second run against the same cache is all
// cache hits — no layer searches again.
func TestTuneNetworkSharedCache(t *testing.T) {
	layers := resnetBlockLayers()
	cache := NewCache()
	opts := NetworkOptions{Tune: smallOpts(24, 3), Workers: 4}
	first, err := TuneNetwork(arch, layers, cache, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := TuneNetwork(arch, layers, cache, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range layers {
		if !second[i].Shared {
			t.Errorf("layer %s searched again despite warm cache", layers[i].Name)
		}
		if second[i].Config != first[i].Config {
			t.Errorf("layer %s: warm-cache verdict differs", layers[i].Name)
		}
	}
}

// TestTuneNetworkConcurrentCallers hammers one shared cache from several
// concurrent TuneNetwork calls — the go test -race target for the
// network-level engine.
func TestTuneNetworkConcurrentCallers(t *testing.T) {
	layers := resnetBlockLayers()
	cache := NewCache()
	opts := NetworkOptions{Tune: smallOpts(16, 9), Workers: 3}
	const callers = 4
	verdicts := make([][]LayerVerdict, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			defer wg.Done()
			verdicts[g], errs[g] = TuneNetwork(arch, layers, cache, opts)
		}(g)
	}
	wg.Wait()
	for g := 0; g < callers; g++ {
		if errs[g] != nil {
			t.Fatalf("caller %d: %v", g, errs[g])
		}
		for i := range layers {
			if verdicts[g][i].Config != verdicts[0][i].Config {
				t.Errorf("caller %d layer %s: divergent verdict", g, layers[i].Name)
			}
		}
	}
	if cache.Len() == 0 {
		t.Error("cache empty after concurrent tuning")
	}
}

// TestMeasureAllOrdering: the executor slots results by submission index
// regardless of completion order.
func TestMeasureAllOrdering(t *testing.T) {
	sp := mustSpace(t, true)
	var cfgs []conv.Config
	sp.enumerate(func(c conv.Config) bool {
		cfgs = append(cfgs, c)
		return len(cfgs) < 50
	})
	measure := DirectMeasurer(arch, layer())
	serial := measureAll(measure, cfgs, 1, 0)
	fanned := measureAll(measure, cfgs, 8, 0)
	if !reflect.DeepEqual(serial, fanned) {
		t.Error("executor results differ between 1 and 8 workers")
	}
}
