package autotune

import (
	"encoding/json"
	"strings"
	"testing"
)

func envelopeEntries(t *testing.T, kinds ...string) []CacheEntry {
	t.Helper()
	entries := make([]CacheEntry, len(kinds))
	for i, k := range kinds {
		if err := json.Unmarshal([]byte(validEntryJSON(k)), &entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	return entries
}

// EncodeEntries/DecodeEntries is the replication and hinted-handoff wire
// format; it must round-trip entries exactly and carry a verifying checksum.
func TestEntryEnvelopeRoundTrip(t *testing.T) {
	entries := envelopeEntries(t, "direct", "fft")
	data, err := EncodeEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"checksum":"crc32c:`) {
		t.Fatalf("envelope missing checksum: %s", data)
	}
	back, err := DecodeEntries(data)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(entries)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Fatalf("entries changed over the wire:\n%s\n%s", a, b)
	}

	// The envelope is byte-compatible with Save's on-disk form: a cache can
	// load it directly.
	c := NewCache()
	if err := c.Load(strings.NewReader(string(data))); err != nil {
		t.Fatalf("Load rejected EncodeEntries output: %v", err)
	}
}

func TestDecodeEntriesRejects(t *testing.T) {
	good := envelopeEntries(t, "direct")
	env, err := EncodeEntries(good)
	if err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string]string{
		"garbage":       `{]`,
		"wrong version": `{"version":1,"entries":[]}`,
		"bad checksum":  strings.Replace(string(env), `"checksum":"crc32c:`, `"checksum":"crc32c:0`, 1),
		"bad entry":     `{"version":2,"entries":[` + validEntryJSON("karatsuba") + `]}`,
		"torn entry": `{"version":2,"entries":[` + validEntryJSON("direct") + `,` +
			strings.Replace(validEntryJSON("fft"), `"Stride":1`, `"Stride":0`, 1) + `]}`,
	} {
		if _, err := DecodeEntries([]byte(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// PutEntries is all-or-nothing: one invalid entry must leave the cache
// untouched, exactly like Load.
func TestPutEntriesAllOrNothing(t *testing.T) {
	good := envelopeEntries(t, "direct", "fft")
	c := NewCache()
	if err := c.PutEntries(good); err != nil {
		t.Fatal(err)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache has %d entries, want 2", n)
	}
	mixed := append(envelopeEntries(t, "igemm"), CacheEntry{Arch: "V100", Kind: "no-such-kind"})
	c2 := NewCache()
	if err := c2.PutEntries(mixed); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if n := c2.Len(); n != 0 {
		t.Fatalf("rejected batch left %d entries behind", n)
	}
}
