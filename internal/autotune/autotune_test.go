package autotune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

var arch = memsim.V100

func layer() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 64, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
}

func mustSpace(t *testing.T, pruned bool) *Space {
	t.Helper()
	sp, err := NewSpace(layer(), arch, Direct, 0, pruned)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestSpaceSizePrunedSmaller(t *testing.T) {
	full := mustSpace(t, false)
	pruned := mustSpace(t, true)
	fs, ps := full.Size(), pruned.Size()
	if fs <= 0 || ps <= 0 {
		t.Fatalf("empty spaces: full=%d pruned=%d", fs, ps)
	}
	if ps >= fs {
		t.Errorf("pruned space %d not smaller than full %d", ps, fs)
	}
	ratio := float64(ps) / float64(fs)
	// The paper reports 20-55%; allow a wide but meaningful range.
	if ratio < 0.01 || ratio > 0.9 {
		t.Errorf("pruning ratio %v outside plausible range", ratio)
	}
}

func TestSampleAdmissible(t *testing.T) {
	for _, pruned := range []bool{false, true} {
		sp := mustSpace(t, pruned)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			c := sp.Sample(rng)
			if !sp.admissible(c) {
				t.Fatalf("pruned=%v: sampled inadmissible config %v", pruned, c)
			}
		}
	}
}

func TestNeighborStaysAdmissible(t *testing.T) {
	sp := mustSpace(t, true)
	rng := rand.New(rand.NewSource(2))
	c := sp.Sample(rng)
	for i := 0; i < 500; i++ {
		c = sp.Neighbor(c, rng)
		if !sp.admissible(c) {
			t.Fatalf("step %d: neighbor left the space: %v", i, c)
		}
	}
}

func TestNeighborMoves(t *testing.T) {
	sp := mustSpace(t, false)
	rng := rand.New(rand.NewSource(3))
	c := sp.Sample(rng)
	moved := 0
	for i := 0; i < 50; i++ {
		n := sp.Neighbor(c, rng)
		if n != c {
			moved++
		}
		c = n
	}
	if moved < 25 {
		t.Errorf("neighbor only moved %d/50 times", moved)
	}
}

func TestWinogradSpace(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 28, Win: 28, Cout: 64, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	sp, err := NewSpace(s, arch, Winograd, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	sawE := map[int]bool{}
	for i := 0; i < 200; i++ {
		c := sp.Sample(rng)
		if c.WinogradE != 2 && c.WinogradE != 4 {
			t.Fatalf("winograd sample has e=%d, want 2 or 4: %v", c.WinogradE, c)
		}
		if c.TileX%c.WinogradE != 0 || c.TileY%c.WinogradE != 0 {
			t.Fatalf("winograd sample tile not divisible by e: %v", c)
		}
		sawE[c.WinogradE] = true
	}
	if !sawE[2] || !sawE[4] {
		t.Errorf("sampling never chose both tile edges: %v", sawE)
	}
	// Stride-2 shapes must be rejected.
	bad := s
	bad.Strid = 2
	if _, err := NewSpace(bad, arch, Winograd, 2, true); err == nil {
		t.Error("stride-2 winograd space accepted")
	}
}

func TestGBTLearnsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		x = append(x, []float64{a, b})
		y = append(y, a*a+0.5*b)
	}
	m := TrainGBT(DefaultGBTConfig(), x, y)
	if rmse := m.RMSE(x, y); rmse > 0.25 {
		t.Errorf("training RMSE %v too high", rmse)
	}
	// Held-out points.
	var xt [][]float64
	var yt []float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		xt = append(xt, []float64{a, b})
		yt = append(yt, a*a+0.5*b)
	}
	if rmse := m.RMSE(xt, yt); rmse > 0.6 {
		t.Errorf("held-out RMSE %v too high", rmse)
	}
}

func TestGBTConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	m := TrainGBT(DefaultGBTConfig(), x, y)
	if p := m.Predict([]float64{2.5}); math.Abs(p-7) > 1e-9 {
		t.Errorf("constant fit predicts %v", p)
	}
}

func TestGBTPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty training set")
		}
	}()
	TrainGBT(DefaultGBTConfig(), nil, nil)
}

func smallOpts(budget int, seed int64) Options {
	return Options{Budget: budget, BatchSize: 4, Walkers: 4, WalkSteps: 12, Patience: 0, Seed: seed}
}

func TestTuneFindsGoodConfig(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	tr, err := Tune(sp, measure, smallOpts(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.BestM.GFLOPS <= 0 {
		t.Fatal("no positive-GFLOPS config found")
	}
	if len(tr.Curve) != tr.Measurements {
		t.Errorf("curve length %d != measurements %d", len(tr.Curve), tr.Measurements)
	}
	// Curve must be nondecreasing.
	for i := 1; i < len(tr.Curve); i++ {
		if tr.Curve[i] < tr.Curve[i-1] {
			t.Fatalf("best-so-far curve decreased at %d", i)
		}
	}
	// Same-budget comparison, averaged over seeds: the model-guided engine
	// must not lose to blind random search. (The enumerated optimum of this
	// space is ~912 GFLOPS; both should sit close beneath it.)
	var tuned, random float64
	const seeds = 3
	for seed := int64(20); seed < 20+seeds; seed++ {
		tt, err := Tune(sp, measure, smallOpts(60, seed))
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RandomSearch(sp, measure, smallOpts(60, seed))
		if err != nil {
			t.Fatal(err)
		}
		tuned += tt.BestM.GFLOPS
		random += rr.BestM.GFLOPS
	}
	if tuned < random*0.98 {
		t.Errorf("tuned avg %v GFLOPS well below random avg %v", tuned/seeds, random/seeds)
	}
}

func TestAllStrategiesRun(t *testing.T) {
	sp := mustSpace(t, false)
	measure := DirectMeasurer(arch, layer())
	for name, run := range map[string]func(*Space, Measurer, Options) (*Trace, error){
		"random": RandomSearch,
		"sa":     SimulatedAnnealing,
		"ga":     GeneticAlgorithm,
	} {
		tr, err := run(sp, measure, smallOpts(40, 3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.BestM.GFLOPS <= 0 || tr.Measurements == 0 {
			t.Errorf("%s: degenerate trace %+v", name, tr)
		}
		for i := 1; i < len(tr.Curve); i++ {
			if tr.Curve[i] < tr.Curve[i-1] {
				t.Fatalf("%s: curve decreased at %d", name, i)
			}
		}
	}
}

func TestTuneDeterministic(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	a, err := Tune(sp, measure, smallOpts(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(sp, measure, smallOpts(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.BestM != b.BestM {
		t.Errorf("same seed, different results: %v vs %v", a.Best, b.Best)
	}
}

// MinDelta semantics: a sub-threshold improvement still updates the best
// but does not reset patience; a significant one resets it. MinDelta 0 is
// the strict behavior.
func TestMinDeltaPatience(t *testing.T) {
	cfg := func(x int) conv.Config { return conv.Config{TileX: x} }
	m := func(s float64) Measurement { return Measurement{Seconds: s} }

	strict := &record{}
	strict.add(cfg(1), m(1.0), true)
	strict.add(cfg(2), m(0.999), true) // 0.1% improvement
	if strict.stale(1) {
		t.Error("strict record stale immediately after an improvement")
	}

	md := &record{minDelta: 0.01}
	md.add(cfg(1), m(1.0), true)
	md.add(cfg(2), m(0.999), true)
	if md.trace.Best != cfg(2) || md.trace.BestM != m(0.999) {
		t.Error("sub-delta improvement must still update the best")
	}
	if !md.stale(1) {
		t.Error("sub-delta improvement reset patience despite minDelta")
	}
	md.add(cfg(3), m(0.9), true) // 10% improvement
	if md.stale(1) {
		t.Error("significant improvement did not reset patience")
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	opts := smallOpts(500, 8)
	opts.Patience = 20
	tr, err := Tune(sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Measurements >= 500 {
		t.Errorf("patience did not stop the run: %d measurements", tr.Measurements)
	}
}

// The paper's claim behind Table 2: tuning on the pruned domain reaches
// near-best performance in no more measurements than the full domain, at
// equal or better quality.
func TestPrunedConvergesFaster(t *testing.T) {
	full := mustSpace(t, false)
	pruned := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	// Average over seeds to avoid flakiness; "converged" = first measurement
	// reaching 95% of the lower of the two final bests.
	var fullAt, prunedAt, fullBest, prunedBest float64
	const seeds = 3
	for seed := int64(0); seed < seeds; seed++ {
		f, err := Tune(full, measure, smallOpts(80, 10+seed))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Tune(pruned, measure, smallOpts(80, 10+seed))
		if err != nil {
			t.Fatal(err)
		}
		target := 0.95 * math.Min(f.BestM.GFLOPS, p.BestM.GFLOPS)
		fullAt += float64(firstReaching(f.Curve, target))
		prunedAt += float64(firstReaching(p.Curve, target))
		fullBest += f.BestM.GFLOPS
		prunedBest += p.BestM.GFLOPS
	}
	if prunedBest < fullBest*0.95 {
		t.Errorf("pruned quality %v well below full %v", prunedBest/seeds, fullBest/seeds)
	}
	if prunedAt > fullAt*1.5+seeds {
		t.Errorf("pruned reached target slower (%v) than full (%v)", prunedAt/seeds, fullAt/seeds)
	}
}

func firstReaching(curve []float64, target float64) int {
	for i, v := range curve {
		if v >= target {
			return i + 1
		}
	}
	return len(curve)
}

// Property: Features always returns NumFeatures finite values for admissible
// samples.
func TestFeaturesWellFormed(t *testing.T) {
	sp := mustSpace(t, false)
	rng := rand.New(rand.NewSource(11))
	f := func(seed uint8) bool {
		_ = seed
		c := sp.Sample(rng)
		fv := sp.Features(c)
		if len(fv) != NumFeatures {
			return false
		}
		for _, v := range fv {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Direct.String() != "direct" || Winograd.String() != "winograd" {
		t.Error("kind names wrong")
	}
}

func TestCrossoverAdmissible(t *testing.T) {
	sp := mustSpace(t, true)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		a, b := sp.Sample(rng), sp.Sample(rng)
		c := crossover(sp, a, b, rng)
		if !sp.admissible(c) {
			t.Fatalf("crossover produced inadmissible config %v", c)
		}
	}
}

var _ = conv.Config{} // keep the conv import obviously intentional
