package autotune

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/conv"
)

// The fault-pipeline tests: the resilient measurement seam must absorb
// transient failures without changing any verdict the clean engine would
// reach, quarantine configs that never measure, defend against noisy
// readings with the bound floor, and degrade a deadline-cut run into an
// honest partial trace that resumes.

var errTransient = errors.New("transient device fault")

// flakyMeasurer wraps a clean measurer so that the first firstFails
// attempts on every config fail transiently; thread-safe for Workers > 1.
type flakyMeasurer struct {
	mu         sync.Mutex
	attempts   map[conv.Config]int
	firstFails int
	clean      Measurer
}

func newFlaky(clean Measurer, firstFails int) *flakyMeasurer {
	return &flakyMeasurer{attempts: make(map[conv.Config]int), firstFails: firstFails, clean: clean}
}

func (f *flakyMeasurer) measure(c conv.Config) (Measurement, bool, error) {
	f.mu.Lock()
	f.attempts[c]++
	n := f.attempts[c]
	f.mu.Unlock()
	if n <= f.firstFails {
		return Measurement{}, false, errTransient
	}
	m, ok := f.clean(c)
	return m, ok, nil
}

// The zero RetryPolicy with an error-free measurer is the documented
// bit-identical default path: TuneFallible over a lifted measurer must
// produce the exact trace Tune does, new counters included (all zero).
func TestFallibleZeroPolicyBitIdentical(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	want, err := Tune(sp, measure, smallOpts(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := TuneFallible(context.Background(), sp,
		func(c conv.Config) (Measurement, bool, error) { m, ok := measure(c); return m, ok, nil },
		smallOpts(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallible trace differs from clean trace:\n got %+v\nwant %+v", got, want)
	}
	if got.Retries != 0 || got.Quarantined != 0 || got.Remeasured != 0 || got.Partial {
		t.Errorf("clean run has fault bookkeeping: %+v", got)
	}
}

// Every config failing its first attempt and succeeding on retry must
// yield the exact clean verdict — retries are invisible to the search —
// with one retry booked per fresh measurement and the OnRetry hook firing
// once per retry.
func TestRetryAbsorbsTransientFailures(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	clean, err := Tune(sp, measure, smallOpts(60, 1))
	if err != nil {
		t.Fatal(err)
	}

	flaky := newFlaky(measure, 1)
	opts := smallOpts(60, 1)
	opts.Retry = RetryPolicy{MaxAttempts: 3}
	var hookRetries int
	opts.OnRetry = func() { hookRetries++ }
	tr, err := TuneFallible(context.Background(), sp, flaky.measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Best != clean.Best || tr.BestM != clean.BestM {
		t.Errorf("verdict changed under transient failures: %v/%v != %v/%v",
			tr.Best, tr.BestM, clean.Best, clean.BestM)
	}
	if tr.Measurements != clean.Measurements || !reflect.DeepEqual(tr.Curve, clean.Curve) {
		t.Errorf("trajectory changed under transient failures: %d measurements vs %d",
			tr.Measurements, clean.Measurements)
	}
	if tr.Retries != tr.Measurements {
		t.Errorf("Retries = %d, want one per measurement (%d)", tr.Retries, tr.Measurements)
	}
	if hookRetries != tr.Retries {
		t.Errorf("OnRetry fired %d times, trace counts %d", hookRetries, tr.Retries)
	}
	if tr.Quarantined != 0 || tr.Partial {
		t.Errorf("unexpected quarantine/partial on a recoverable run: %+v", tr)
	}
}

// Configs that never stop failing are quarantined after MaxAttempts —
// booked as failed measurements — while the search completes on the
// remaining ones; the OnQuarantine hook counts them.
func TestQuarantinePermanentFailures(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	// Deterministic subset of permanently-dead configs, interleaving-free.
	dead := func(c conv.Config) bool { return ConfigHash(99, c, 0)%4 == 0 }
	backend := func(c conv.Config) (Measurement, bool, error) {
		if dead(c) {
			return Measurement{}, false, errTransient
		}
		m, ok := measure(c)
		return m, ok, nil
	}
	opts := smallOpts(60, 1)
	opts.Retry = RetryPolicy{MaxAttempts: 2}
	var hookQuarantines int
	opts.OnQuarantine = func() { hookQuarantines++ }
	tr, err := TuneFallible(context.Background(), sp, backend, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Quarantined == 0 {
		t.Fatal("no config quarantined although a quarter of the space is dead")
	}
	if hookQuarantines != tr.Quarantined {
		t.Errorf("OnQuarantine fired %d times, trace counts %d", hookQuarantines, tr.Quarantined)
	}
	// Each quarantined config burned MaxAttempts-1 retries before giving up.
	if tr.Retries != tr.Quarantined*(opts.Retry.MaxAttempts-1) {
		t.Errorf("Retries = %d, want %d (MaxAttempts-1 per quarantined config)",
			tr.Retries, tr.Quarantined*(opts.Retry.MaxAttempts-1))
	}
	if !(tr.BestM.Seconds > 0) {
		t.Error("search found no verdict despite live configs remaining")
	}
	// Quarantined configs are booked: they appear in the history as failed
	// records and consume budget.
	failed := 0
	for _, h := range tr.History {
		if !h.OK {
			failed++
		}
	}
	if failed < tr.Quarantined {
		t.Errorf("history books %d failures, fewer than %d quarantines", failed, tr.Quarantined)
	}
}

// A backend that never measures anything must surface as "no valid
// configuration", not hang or panic.
func TestAllQuarantinedIsAnError(t *testing.T) {
	sp := mustSpace(t, true)
	opts := smallOpts(20, 1)
	opts.Retry = RetryPolicy{MaxAttempts: 2}
	_, err := TuneFallible(context.Background(), sp,
		func(conv.Config) (Measurement, bool, error) { return Measurement{}, false, errTransient },
		opts)
	if err == nil {
		t.Fatal("fully-dead backend produced a verdict")
	}
}

// The noisy-reading defense: a reading below the admissible I/O-bound
// floor is physically impossible, so the pipeline re-measures until
// MedianK readings are in hand and books the median; a clean reading far
// from the floor costs exactly one call.
func TestNoiseDefenseTakesMedian(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	// Find a valid config and its true reading.
	var cfg conv.Config
	var truth Measurement
	found := false
	for _, c := range sp.SeedConfigs() {
		if m, ok := measure(c); ok {
			cfg, truth, found = c, m, true
			break
		}
	}
	if !found {
		t.Fatal("no valid seed config")
	}
	floor := sp.BoundSeconds(cfg)
	if !(floor > 0) {
		t.Fatal("no bound floor for the test config")
	}

	policy := RetryPolicy{NoiseThreshold: 0.25, MedianK: 3}
	// First reading impossibly fast (half the floor), later readings true:
	// the median over {floor/2, truth, truth} is the truth.
	calls := 0
	noisy := func(c conv.Config) (Measurement, bool, error) {
		calls++
		if calls == 1 {
			return Measurement{Seconds: floor / 2, GFLOPS: truth.GFLOPS * 2}, true, nil
		}
		return truth, true, nil
	}
	out := newResilient(noisy, sp, policy, 1).run(context.Background(), cfg)
	if !out.ok || out.m != truth {
		t.Errorf("defense booked %+v (ok=%v), want the median truth %+v", out.m, out.ok, truth)
	}
	if out.remeasured != 2 {
		t.Errorf("remeasured = %d, want 2 (MedianK=3 minus the first reading)", out.remeasured)
	}

	// A reading comfortably above the suspicion band is booked as-is with
	// no extra calls.
	calls = 0
	clean := func(c conv.Config) (Measurement, bool, error) {
		calls++
		return Measurement{Seconds: floor * 10, GFLOPS: 1}, true, nil
	}
	out = newResilient(clean, sp, policy, 1).run(context.Background(), cfg)
	if !out.ok || out.remeasured != 0 || calls != 1 {
		t.Errorf("unsuspicious reading re-measured: calls=%d remeasured=%d", calls, out.remeasured)
	}
}

// A cancelled context degrades the run to an honest partial trace: the
// seed configs still measure (there is always a verdict), Partial is set,
// and Budget is lowered to what actually ran so a persisted trace resumes
// instead of masquerading as full coverage — and the resumed run replays
// the partial history without re-measuring, then completes.
func TestContextCancelYieldsResumablePartial(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the first batch
	opts := smallOpts(60, 3)
	tr, err := TuneContext(ctx, sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Partial {
		t.Fatal("cancelled run not marked partial")
	}
	if tr.Measurements == 0 || tr.Measurements >= 60 {
		t.Fatalf("partial run measured %d configs, want the seed batch only", tr.Measurements)
	}
	if tr.Budget != tr.Measurements {
		t.Errorf("partial Budget = %d, want the honest %d", tr.Budget, tr.Measurements)
	}
	if !(tr.BestM.Seconds > 0) {
		t.Error("partial run carries no best-so-far verdict")
	}

	// Resume: replay the partial history at the full budget. The engine
	// must not re-measure anything it replayed and must finish the search.
	resumed := smallOpts(60, 3)
	resumed.Warm = &WarmStart{History: tr.History}
	fresh := 0
	resumed.OnMeasure = func() { fresh++ }
	tr2, err := Tune(sp, measure, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Partial {
		t.Error("resumed run still partial under a live context")
	}
	if fresh != tr2.Measurements-tr.Measurements {
		t.Errorf("resume re-measured replayed configs: %d fresh for %d->%d",
			fresh, tr.Measurements, tr2.Measurements)
	}
	if tr2.BestM.Seconds > tr.BestM.Seconds {
		t.Errorf("resumed verdict %g worse than the partial one %g",
			tr2.BestM.Seconds, tr.BestM.Seconds)
	}
}

// Partial traces must be deterministic in the worker count too: the
// cancelled batch books a contiguous prefix in submission order.
func TestPartialTraceWorkerInvariant(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	run := func(workers int) *Trace {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opts := smallOpts(60, 5)
		opts.Workers = workers
		tr, err := TuneContext(ctx, sp, measure, opts)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("partial trace differs across worker counts:\n 1: %+v\n 4: %+v", a, b)
	}
}
