package autotune

import (
	"math"
	"sync"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// This file is the measurement fast path of the engine. A tuning run
// evaluates hundreds of configurations against one (arch, shape, kind)
// triple, and the expensive part of each evaluation — the exact dataflow
// traffic counts — depends only on the output-tile axes (x, y, z) plus the
// Winograd edge e. Threads, shared-memory size and layout enter through the
// launch geometry, which is O(1) to rebuild. MemoMeasure therefore caches
// counts per tile key and recomputes launch + time per call: every
// thread/Sb/layout variant of a tile the walkers visit is an O(1) lookup,
// the steady state allocates nothing, and the produced Measurements are
// bit-identical to the unmemoized conv.Dry* evaluators (tests pin this).

// countsKey is the memo key: the config axes that change dataflow counts.
type countsKey struct {
	x, y, z, e int
}

// countsEntry is a memoized counts computation. ok is false when the counts
// evaluator itself rejected the tile (e.g. no transform for e).
type countsEntry struct {
	counts memsim.Counts
	ok     bool
}

// measEntry is a memoized full measurement (per complete config).
type measEntry struct {
	m  Measurement
	ok bool
}

// MemoMeasure is a reusable, concurrency-safe measurer for one
// (arch, shape, kind) triple with two memo levels: dataflow counts per
// tile key (shared by every thread/Sb/layout variant of a tile) and the
// finished Measurement per complete config (so re-evaluating a config —
// across search strategies, network layers or repeated sweeps — is one map
// lookup). The zero value is not usable; construct with NewMemoMeasure.
type MemoMeasure struct {
	arch     memsim.Arch
	s        shapes.ConvShape
	kind     Kind
	shapeErr error // non-nil when the shape itself is invalid

	// fixedSec/fixedFlops are the FFT pipeline's config-independent
	// transform-phase cost (FFT kind only), computed once at construction;
	// each measurement adds them so results stay bit-identical to
	// conv.DryFFTTiled.
	fixedSec   float64
	fixedFlops int64

	mu   sync.RWMutex
	memo map[countsKey]countsEntry
	full map[conv.Config]measEntry
}

// NewMemoMeasure builds a memoized measurer. The same instance may be
// shared by every strategy and worker tuning the same triple — the executor
// calls Measure concurrently when Options.Workers > 1.
func NewMemoMeasure(arch memsim.Arch, s shapes.ConvShape, kind Kind) *MemoMeasure {
	mm := &MemoMeasure{arch: arch, s: s, kind: kind,
		shapeErr: s.Validate(),
		memo:     make(map[countsKey]countsEntry),
		full:     make(map[conv.Config]measEntry)}
	if kind == FFT && mm.shapeErr == nil {
		mm.fixedSec, mm.fixedFlops = conv.FFTFixedCost(arch, s)
	}
	return mm
}

// Measurer returns the Measurer func of this memo (the type the engine
// consumes).
func (mm *MemoMeasure) Measurer() Measurer { return mm.Measure }

// Measure evaluates one configuration: validation and launch/time are
// recomputed per call (they depend on every axis), counts come from the
// memo. Results are bit-identical to the unmemoized dry evaluators.
func (mm *MemoMeasure) Measure(c conv.Config) (Measurement, bool) {
	mm.mu.RLock()
	fe, hit := mm.full[c]
	mm.mu.RUnlock()
	if hit {
		return fe.m, fe.ok
	}
	fe.m, fe.ok = mm.measureCold(c)
	mm.mu.Lock()
	mm.full[c] = fe
	mm.mu.Unlock()
	return fe.m, fe.ok
}

// measureCold evaluates a config the full memo has not seen: validate,
// fetch (or compute) the tile's counts, rebuild the launch and run the time
// model. Results are bit-identical to the unmemoized evaluators.
func (mm *MemoMeasure) measureCold(c conv.Config) (Measurement, bool) {
	// Validation mirrors the Dry evaluators exactly; a config they reject
	// is rejected here before any counts are computed.
	if mm.shapeErr != nil {
		return Measurement{}, false
	}
	switch mm.kind {
	case Winograd:
		if err := c.ValidateWinograd(mm.s, mm.arch); err != nil {
			return Measurement{}, false
		}
	case FFT:
		if err := c.ValidateFFT(mm.s, mm.arch); err != nil {
			return Measurement{}, false
		}
	case ImplicitGEMM:
		if err := c.ValidateIGEMM(mm.s, mm.arch); err != nil {
			return Measurement{}, false
		}
	default:
		if err := c.ValidateDirect(mm.s, mm.arch); err != nil {
			return Measurement{}, false
		}
	}

	key := countsKey{x: c.TileX, y: c.TileY, z: c.TileZ, e: c.WinogradE}
	mm.mu.RLock()
	ent, hit := mm.memo[key]
	mm.mu.RUnlock()
	if !hit {
		ent = mm.compute(c)
		mm.mu.Lock()
		mm.memo[key] = ent
		mm.mu.Unlock()
	}
	if !ent.ok {
		return Measurement{}, false
	}

	var l memsim.Launch
	switch mm.kind {
	case Winograd:
		l = conv.WinogradFusedLaunch(mm.s, c)
	case FFT:
		l = conv.FFTTiledLaunch(mm.s, c)
	case ImplicitGEMM:
		l = conv.IGEMMTiledLaunch(mm.s, c)
	default:
		l = conv.DirectTiledLaunch(mm.s, c)
	}
	seconds := mm.fixedSec + mm.arch.Time(ent.counts, l)
	if math.IsInf(seconds, 1) {
		return Measurement{}, false
	}
	// GFLOPS = Flops/seconds/1e9, exactly what arch.GFLOPS computes from
	// the same finite Time — without running the time model twice. For FFT
	// the fixed transform phases join both terms, matching conv.DryFFTTiled.
	flops := ent.counts.Flops + mm.fixedFlops
	return Measurement{Seconds: seconds, GFLOPS: float64(flops) / seconds / 1e9}, true
}

func (mm *MemoMeasure) compute(c conv.Config) countsEntry {
	switch mm.kind {
	case Winograd:
		counts, err := conv.WinogradFusedCounts(mm.s, c)
		if err != nil {
			return countsEntry{}
		}
		return countsEntry{counts: counts, ok: true}
	case FFT:
		return countsEntry{counts: conv.FFTTiledCounts(mm.s, c), ok: true}
	case ImplicitGEMM:
		return countsEntry{counts: conv.IGEMMTiledCounts(mm.s, c), ok: true}
	}
	return countsEntry{counts: conv.DirectTiledCounts(mm.s, c), ok: true}
}

// Len reports how many distinct tile keys have been evaluated — a
// diagnostic for tests and tools.
func (mm *MemoMeasure) Len() int {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	return len(mm.memo)
}
