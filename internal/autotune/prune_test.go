package autotune

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// randomSmallShape draws a random exhaustively-enumerable layer: tiny
// channel/spatial extents with random kernel, stride, padding and batch.
func randomSmallShape(rng *rand.Rand) shapes.ConvShape {
	k := []int{1, 3, 3, 5}[rng.Intn(4)]
	s := shapes.ConvShape{
		Batch: 1 + rng.Intn(2),
		Cin:   2 + rng.Intn(6),
		Hin:   k + 3 + rng.Intn(8),
		Cout:  3 + rng.Intn(8),
		Hker:  k, Wker: k,
		Strid: 1 + rng.Intn(2),
		Pad:   rng.Intn(k/2 + 1),
	}
	s.Win = s.Hin
	return s
}

// boundTestSpaces builds every applicable (kind, space) for a shape — the
// same candidate filter the network tuner applies, so FFT and implicit-GEMM
// spaces are exercised exactly where they would actually be searched.
func boundTestSpaces(t *testing.T, s shapes.ConvShape, a memsim.Arch) []*Space {
	t.Helper()
	var sps []*Space
	for _, kind := range CandidateKinds(s, true, []Kind{FFT, ImplicitGEMM}) {
		sp, err := NewSpace(s, a, kind, 2, false)
		if err != nil {
			continue
		}
		sps = append(sps, sp)
	}
	return sps
}

// The admissibility of the pruning oracle: BoundSeconds must never exceed
// the measured time of any configuration that measures successfully —
// otherwise branch-and-bound could discard an optimum. Checked by full
// enumeration over randomized small shapes, both dataflows.
func TestBoundSecondsIsAFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	archs := []memsim.Arch{memsim.V100, memsim.GTX1080Ti, memsim.GFX906}
	for trial := 0; trial < 8; trial++ {
		s := randomSmallShape(rng)
		a := archs[trial%len(archs)]
		for _, sp := range boundTestSpaces(t, s, a) {
			mm := NewMemoMeasure(a, s, sp.Kind)
			checked := 0
			sp.enumerate(func(c conv.Config) bool {
				m, ok := mm.Measure(c)
				if !ok {
					return true
				}
				checked++
				if lb := sp.BoundSeconds(c); lb > m.Seconds {
					t.Fatalf("%s %v %s: bound %.6g above measured %.6g for %v",
						a.Name, s, sp.Kind, lb, m.Seconds, c)
				}
				return true
			})
			if checked == 0 {
				t.Fatalf("%s %v %s: no measurable configs", a.Name, s, sp.Kind)
			}
		}
	}
}

// The branch-and-bound property itself: walking the whole space while
// skipping every candidate whose bound exceeds the incumbent must end on
// exactly the brute-force optimum — pruning saves measurements, never
// quality. Randomized shapes and visit orders.
func TestPruningNeverDiscardsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	archs := []memsim.Arch{memsim.V100, memsim.TitanX, memsim.GFX906}
	totalPruned := 0
	for trial := 0; trial < 10; trial++ {
		s := randomSmallShape(rng)
		a := archs[rng.Intn(len(archs))]
		for _, sp := range boundTestSpaces(t, s, a) {
			mm := NewMemoMeasure(a, s, sp.Kind)
			var all []conv.Config
			sp.enumerate(func(c conv.Config) bool {
				all = append(all, c)
				return true
			})
			// A randomized visit order exercises pruning against different
			// incumbent sequences than the enumeration's.
			rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

			var bruteBest, bbBest conv.Config
			bruteSec, bbSec := math.Inf(1), math.Inf(1)
			pruned := 0
			for _, c := range all {
				if m, ok := mm.Measure(c); ok && m.Seconds < bruteSec {
					bruteSec, bruteBest = m.Seconds, c
				}
			}
			for _, c := range all {
				if !math.IsInf(bbSec, 1) && sp.BoundSeconds(c) > bbSec {
					pruned++
					continue
				}
				if m, ok := mm.Measure(c); ok && m.Seconds < bbSec {
					bbSec, bbBest = m.Seconds, c
				}
			}
			if math.IsInf(bruteSec, 1) {
				continue // space with no measurable config
			}
			if bbSec != bruteSec || bbBest != bruteBest {
				t.Fatalf("%s %v %s: branch-and-bound best %v (%.6g) != brute-force best %v (%.6g), pruned=%d",
					a.Name, s, sp.Kind, bbBest, bbSec, bruteBest, bruteSec, pruned)
			}
			totalPruned += pruned
		}
	}
	if totalPruned == 0 {
		t.Error("pruning never engaged across all trials; the oracle is vacuous")
	}
}

// The engine must actually use the filter: on AlexNet conv2 (a layer where
// the Section-5 seed is strong, so the bound proves most of the space
// non-improving) a default Tune skips candidates, while NoPrune skips none.
func TestTunePrunesCandidates(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 256, Hker: 5, Wker: 5, Strid: 1, Pad: 2}
	sp, err := NewSpace(s, arch, Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	measure := DirectMeasurer(arch, s)
	opts := DefaultOptions()
	opts.Budget = 96
	opts.Patience = 32
	tr, err := Tune(sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pruned == 0 {
		t.Error("default Tune pruned nothing on a layer where the bound bites")
	}
	opts.NoPrune = true
	off, err := Tune(sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	if off.Pruned != 0 {
		t.Errorf("NoPrune run still pruned %d candidates", off.Pruned)
	}
}

// traceEqual compares every field of two traces — curve and full
// measurement history included, since the history is what PutTrace
// persists and the transfer pool consumes; worker-count determinism must
// cover it too.
func traceEqual(a, b *Trace) bool {
	if a.Method != b.Method || a.Best != b.Best || a.BestM != b.BestM ||
		a.Measurements != b.Measurements || a.ConvergedAt != b.ConvergedAt ||
		a.Pruned != b.Pruned || a.Budget != b.Budget ||
		len(a.Curve) != len(b.Curve) || len(a.History) != len(b.History) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			return false
		}
	}
	return true
}

// The new engine stays bit-identical across worker counts and repeated
// runs, with pruning enabled and disabled — including the Pruned counter.
func TestTuneDeterministicAcrossWorkers(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	for _, noPrune := range []bool{false, true} {
		opts := smallOpts(60, 11)
		opts.NoPrune = noPrune
		ref, err := Tune(sp, measure, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 9} {
			o := opts
			o.Workers = workers
			tr, err := Tune(sp, measure, o)
			if err != nil {
				t.Fatal(err)
			}
			if !traceEqual(ref, tr) {
				t.Errorf("noPrune=%v workers=%d: trace diverges (best %v vs %v, pruned %d vs %d)",
					noPrune, workers, tr.Best, ref.Best, tr.Pruned, ref.Pruned)
			}
		}
	}
}

// The bound memo and the cached Size are shared mutable state of a Space;
// hammer them from many goroutines (run under -race in CI).
func TestBoundMemoConcurrent(t *testing.T) {
	sp := mustSpace(t, true)
	serial := make(map[conv.Config]float64)
	rng := rand.New(rand.NewSource(7))
	cfgs := make([]conv.Config, 200)
	for i := range cfgs {
		cfgs[i] = sp.Sample(rng)
		serial[cfgs[i]] = sp.BoundSeconds(cfgs[i])
	}
	wantSize := sp.Size()

	fresh := mustSpace(t, true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, c := range cfgs {
				if got := fresh.BoundSeconds(c); got != serial[c] {
					t.Errorf("worker %d cfg %d: concurrent bound %v != serial %v", w, i, got, serial[c])
					return
				}
			}
			if got := fresh.Size(); got != wantSize {
				t.Errorf("worker %d: concurrent Size %d != %d", w, got, wantSize)
			}
		}(w)
	}
	wg.Wait()
}

// Size is computed once and stable thereafter.
func TestSizeCached(t *testing.T) {
	sp := mustSpace(t, true)
	a, b := sp.Size(), sp.Size()
	if a != b || a <= 0 {
		t.Fatalf("Size unstable or empty: %d then %d", a, b)
	}
	// The cache must agree with a fresh enumeration.
	var n int64
	sp.enumerate(func(conv.Config) bool { n++; return true })
	if n != a {
		t.Fatalf("cached Size %d != enumerated %d", a, n)
	}
}
