// Package autotune implements the paper's auto-tuning engine (Section 6):
// a configuration search space built from Table 1 — optionally pruned by the
// I/O optimality condition x·y = R·z — a gradient-boosted-tree cost model
// trained online from measurements, and a configuration explorer running
// parallel model-guided random walks. Simulated annealing, genetic and
// random searchers over the unpruned space stand in for TVM's tuners, as in
// Figure 11 and Table 2.
//
// Beyond the paper's single-layer loop, the package scales the engine the
// way production auto-tuners do: a worker-pool measurement executor fans
// each candidate batch across goroutines while keeping runs bit-identical
// for any worker count (executor.go), TuneNetwork tunes every layer of a
// CNN concurrently (network.go), and a sharded Cache persists verdicts per
// (arch, algorithm, shape) key and deduplicates concurrent searches of
// identical keys (cache.go).
package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Kind selects which dataflow template a space tunes.
type Kind uint8

const (
	// Direct tunes the Section 5.2 direct-convolution dataflow.
	Direct Kind = iota
	// Winograd tunes the Section 5.3 fused Winograd dataflow.
	Winograd
	// FFT tunes the frequency-domain pipeline's multiply-accumulate phase
	// (the transforms are config-independent and costed exactly).
	FFT
	// ImplicitGEMM tunes the library-style fused-gather dataflow: more
	// off-chip traffic than Direct but a smaller shared footprint.
	ImplicitGEMM
)

func (k Kind) String() string {
	switch k {
	case Winograd:
		return "winograd"
	case FFT:
		return "fft"
	case ImplicitGEMM:
		return "igemm"
	}
	return "direct"
}

// Kinds lists every tunable kind, in Kind order.
var Kinds = []Kind{Direct, Winograd, FFT, ImplicitGEMM}

// ParseKind is the inverse of Kind.String. Unknown strings are rejected —
// the cache loader and the wire format both rely on that.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if s == k.String() {
			return k, nil
		}
	}
	return Direct, fmt.Errorf("autotune: unknown kind %q", s)
}

// Space is the configuration space of Table 1 for one layer on one
// architecture. Axes: output tile x, y, z (factors of the output dims),
// thread counts (factors of the tile dims), shared memory per block
// (power-of-two fractions of the SM), and layout. With Pruned, the paper's
// searching domain constraints are applied: x·y·z ≤ Sb together with
// z ≤ sqrt(Sb/R) and x·y ≤ sqrt(Sb·R) (the optimality condition), plus the
// template's shared-memory fit.
type Space struct {
	Shape shapes.ConvShape
	Arch  memsim.Arch
	Kind  Kind
	// E is the default Winograd output tile edge (ignored for Direct); the
	// space explores Es.
	E int
	// Pruned enables the optimality-condition searching domain.
	Pruned bool

	// es lists the Winograd output-tile-edge choices (just {0} for Direct).
	es      []int
	xsByE   map[int][]int
	ysByE   map[int][]int
	zs      []int
	sbs     []int
	layouts []tensor.Layout

	// bmemo caches the I/O lower bound per (Sb, e) for the pruning oracle
	// (bound.go); flopsFloor is the dataflow's config-independent
	// arithmetic. sizeOnce guards the cached admissible-config count.
	bmemo      boundMemo
	flopsFloor float64
	// fftFixedSec is the exact cost of the FFT pipeline's config-independent
	// transform phases (FFT spaces only): every bound and floor adds it as a
	// constant. fftP3Flops is the (also config-independent) arithmetic of the
	// tunable phase.
	fftFixedSec float64
	fftP3Flops  float64
	sizeOnce    sync.Once
	size        int64

	// anOnce guards the memoized analytic scan (analytic.go): the
	// analyticTopCap best measurable configs by bound floor, the count
	// ranked, and the scan's error when nothing ranked.
	anOnce   sync.Once
	anTop    []scored
	anRanked int64
	anErr    error
}

// NewSpace builds the space for a layer. For Winograd spaces the spatial
// tile axes keep only multiples of E.
func NewSpace(s shapes.ConvShape, arch memsim.Arch, kind Kind, e int, pruned bool) (*Space, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if kind == Winograd {
		if !s.WinogradOK() {
			return nil, fmt.Errorf("autotune: %v does not admit Winograd", s)
		}
		if e < 2 {
			return nil, fmt.Errorf("autotune: winograd e=%d < 2", e)
		}
	}
	sp := &Space{Shape: s, Arch: arch, Kind: kind, E: e, Pruned: pruned, layouts: tensor.Layouts}
	sp.xsByE = make(map[int][]int)
	sp.ysByE = make(map[int][]int)
	switch kind {
	case Winograd:
		// The Winograd output tile edge e is itself a tunable (the paper:
		// "in practice e usually is chosen as 2, 3 or 4"). Tiles are whole
		// sub-tile grids: e times a factor of the rounded-up grid dimension,
		// so odd output sizes (e.g. 13×13) still have tile choices; the
		// kernel clips the partial edge sub-tiles.
		for _, ee := range []int{2, 4} {
			sp.es = append(sp.es, ee)
			sp.xsByE[ee] = scaleAll(factors((s.Wout()+ee-1)/ee), ee)
			sp.ysByE[ee] = scaleAll(factors((s.Hout()+ee-1)/ee), ee)
		}
	case FFT:
		// The FFT phase-3 tile spans the padded power-of-two frequency grid,
		// not the output image; its axes are the grid's (power-of-two)
		// divisors. Spectra have no image layout, so the layout axis
		// collapses.
		lh, lw := conv.FFTGrid(s)
		sp.es = []int{0}
		sp.xsByE[0] = factors(lw)
		sp.ysByE[0] = factors(lh)
		sp.layouts = []tensor.Layout{tensor.NCHW}
		sp.fftFixedSec, _ = conv.FFTFixedCost(arch, s)
		sp.fftP3Flops = 8 * float64(s.Batch) * float64(s.Cout) * float64(s.Cin/s.G()) * float64(lh*lw)
	default:
		sp.es = []int{0}
		sp.xsByE[0] = factors(s.Wout())
		sp.ysByE[0] = factors(s.Hout())
	}
	// The z tile spans one group's output channels (all of Cout when G=1):
	// grouped blocks never straddle a group boundary.
	sp.zs = factors(s.Cout / s.G())
	for sb := arch.MaxSharedPerBlock(); sb >= 256; sb /= 2 {
		sp.sbs = append(sp.sbs, sb)
	}
	sp.flopsFloor = float64(s.FLOPs())
	return sp, nil
}

// admissible reports whether a full config belongs to the space, applying
// the Table 1 constraints (and the pruned searching-domain constraints when
// enabled).
func (sp *Space) admissible(c conv.Config) bool {
	if c.Threads() > 1024 {
		return false
	}
	vol := c.TileX * c.TileY * c.TileZ
	if vol > c.SharedPerBlock {
		return false
	}
	if !sp.Pruned {
		return true
	}
	if sp.Kind == FFT {
		// The frequency-domain tile has no sliding-window reuse, so the
		// optimality condition does not apply; the searching domain is just
		// the shared-memory fit.
		return conv.FFTSharedNeed(c) <= c.SharedPerBlock
	}
	r := sp.Shape.R()
	if sp.Kind == Winograd {
		r = float64(sp.Shape.Hker * sp.Shape.Hker)
	}
	sb := float64(c.SharedPerBlock)
	if float64(c.TileZ) > math.Sqrt(sb/r)+1e-9 {
		return false
	}
	if float64(c.TileX*c.TileY) > math.Sqrt(sb*r)+1e-9 {
		return false
	}
	// The staged tiles must actually fit the shared allocation.
	switch sp.Kind {
	case Direct:
		return conv.DirectSharedNeed(sp.Shape, c) <= c.SharedPerBlock
	case Winograd:
		return conv.WinogradSharedNeed(sp.Shape, c) <= c.SharedPerBlock
	case ImplicitGEMM:
		return conv.IGEMMSharedNeed(sp.Shape, c) <= c.SharedPerBlock
	}
	return true
}

// Size counts the admissible configurations. The count is computed by
// enumeration once and cached — the axes of a Space never change after
// NewSpace — so repeated calls (per-row reporting, sampling fallbacks) do
// not re-walk the space. Safe for concurrent use.
func (sp *Space) Size() int64 {
	sp.sizeOnce.Do(func() {
		sp.enumerate(func(conv.Config) bool { sp.size++; return true })
	})
	return sp.size
}

// enumerate visits every admissible config; the visitor returns false to
// stop early.
func (sp *Space) enumerate(visit func(conv.Config) bool) {
	for _, e := range sp.es {
		for _, x := range sp.xsByE[e] {
			for _, y := range sp.ysByE[e] {
				for _, z := range sp.zs {
					for _, sb := range sp.sbs {
						for _, lay := range sp.layouts {
							base := conv.Config{TileX: x, TileY: y, TileZ: z,
								SharedPerBlock: sb, Layout: lay, WinogradE: e}
							for _, tx := range factors(x) {
								for _, ty := range factors(y) {
									for _, tz := range factors(z) {
										c := base
										c.ThreadsX, c.ThreadsY, c.ThreadsZ = tx, ty, tz
										if sp.admissible(c) {
											if !visit(c) {
												return
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// Sample draws a uniform-ish random admissible config (rejection sampling
// over the axes; falls back to enumeration if rejection keeps missing).
func (sp *Space) Sample(rng *rand.Rand) conv.Config {
	for attempt := 0; attempt < 256; attempt++ {
		c := sp.randomConfig(rng)
		if sp.admissible(c) {
			return c
		}
	}
	// Dense fallback: draw a uniform index into the enumeration. The cached
	// Size both prices the draw (the walk stops at the drawn index instead
	// of visiting every config for a reservoir) and powers the diagnostic
	// when rejection failed because the space is empty.
	n := sp.Size()
	if n == 0 {
		panic(fmt.Sprintf("autotune: empty search space for %v (size=0 after 256 rejected samples)", sp.Shape))
	}
	target := rng.Int63n(n)
	var chosen conv.Config
	var i int64
	sp.enumerate(func(c conv.Config) bool {
		if i == target {
			chosen = c
			return false
		}
		i++
		return true
	})
	return chosen
}

func (sp *Space) randomConfig(rng *rand.Rand) conv.Config {
	e := sp.es[rng.Intn(len(sp.es))]
	xs, ys := sp.xsByE[e], sp.ysByE[e]
	x := xs[rng.Intn(len(xs))]
	y := ys[rng.Intn(len(ys))]
	z := sp.zs[rng.Intn(len(sp.zs))]
	fx, fy, fz := factors(x), factors(y), factors(z)
	return conv.Config{
		TileX: x, TileY: y, TileZ: z,
		ThreadsX: fx[rng.Intn(len(fx))], ThreadsY: fy[rng.Intn(len(fy))], ThreadsZ: fz[rng.Intn(len(fz))],
		SharedPerBlock: sp.sbs[rng.Intn(len(sp.sbs))],
		Layout:         sp.layouts[rng.Intn(len(sp.layouts))],
		WinogradE:      e,
	}
}

// Neighbor mutates one axis of a config to an adjacent admissible choice —
// the random-walk step of the configuration explorer.
func (sp *Space) Neighbor(c conv.Config, rng *rand.Rand) conv.Config {
	return sp.NeighborBound(c, rng, math.Inf(1))
}

// NeighborBound is Neighbor with the searching domain further restricted
// by the pruning oracle: moves into (Sb, e) tiers whose I/O-lower-bound-
// implied time exceeds maxSeconds are rejected inside the retry loop —
// before any cost model is consulted — so the walk is steered through
// tiers that can still beat the incumbent while staying fully mobile (a
// rejected direction retries another axis rather than stalling the step).
// maxSeconds = +Inf reproduces Neighbor exactly, random draws included.
func (sp *Space) NeighborBound(c conv.Config, rng *rand.Rand, maxSeconds float64) conv.Config {
	for attempt := 0; attempt < 64; attempt++ {
		n := c
		moves := 8
		if len(sp.es) > 1 {
			moves = 9
		}
		switch rng.Intn(moves) {
		case 0:
			n.TileX = adjacent(sp.xsByE[n.WinogradE], n.TileX, rng)
			n.ThreadsX = clampFactor(n.ThreadsX, n.TileX)
		case 1:
			n.TileY = adjacent(sp.ysByE[n.WinogradE], n.TileY, rng)
			n.ThreadsY = clampFactor(n.ThreadsY, n.TileY)
		case 2:
			n.TileZ = adjacent(sp.zs, n.TileZ, rng)
			n.ThreadsZ = clampFactor(n.ThreadsZ, n.TileZ)
		case 3:
			n.ThreadsX = adjacent(factors(n.TileX), n.ThreadsX, rng)
		case 4:
			n.ThreadsY = adjacent(factors(n.TileY), n.ThreadsY, rng)
		case 5:
			n.ThreadsZ = adjacent(factors(n.TileZ), n.ThreadsZ, rng)
		case 6:
			n.SharedPerBlock = adjacent(sp.sbs, n.SharedPerBlock, rng)
		case 7:
			n.Layout = sp.layouts[rng.Intn(len(sp.layouts))]
		case 8:
			// Switch the Winograd tile edge, snapping the spatial tiles to
			// the new grid.
			n.WinogradE = adjacent(sp.es, n.WinogradE, rng)
			n.TileX = nearest(sp.xsByE[n.WinogradE], n.TileX)
			n.TileY = nearest(sp.ysByE[n.WinogradE], n.TileY)
			n.ThreadsX = clampFactor(n.ThreadsX, n.TileX)
			n.ThreadsY = clampFactor(n.ThreadsY, n.TileY)
		}
		if n != c && sp.admissible(n) &&
			(math.IsInf(maxSeconds, 1) || sp.BoundSeconds(n) <= maxSeconds) {
			return n
		}
	}
	return c
}

// SeedConfigs returns the coarse-grained Section 5 dataflow designs snapped
// into this space's axes — the starting points of the paper's engine (the
// fine-grained tuner refines the dataflow design, it does not replace it).
func (sp *Space) SeedConfigs() []conv.Config {
	var seeds []conv.Config
	for _, e := range sp.es {
		var def conv.Config
		switch sp.Kind {
		case Winograd:
			def = conv.DefaultWinogradConfig(sp.Arch, sp.Shape, e)
		case FFT:
			def = conv.DefaultFFTConfig(sp.Arch, sp.Shape)
		case ImplicitGEMM:
			def = conv.DefaultIGEMMConfig(sp.Arch, sp.Shape)
		default:
			def = conv.DefaultDirectConfig(sp.Arch, sp.Shape)
		}
		def.WinogradE = e
		if snapped, ok := sp.snap(def); ok {
			seeds = append(seeds, snapped)
		}
	}
	return seeds
}

// Snap moves a configuration onto this space's axes, shrinking tiles until
// it is admissible; ok is false if no admissible snap exists. Cross-layer
// warm seeds go through it: an incumbent tuned for one layer's axes lands
// on the nearest admissible point of another layer's space.
func (sp *Space) Snap(c conv.Config) (conv.Config, bool) { return sp.snap(c) }

// snap moves a config onto the space's axes, shrinking the channel tile
// until it is admissible. ok is false if no admissible snap exists.
func (sp *Space) snap(c conv.Config) (conv.Config, bool) {
	c.TileX = nearest(sp.xsByE[c.WinogradE], c.TileX)
	c.TileY = nearest(sp.ysByE[c.WinogradE], c.TileY)
	c.TileZ = nearest(sp.zs, c.TileZ)
	c.SharedPerBlock = nearest(sp.sbs, c.SharedPerBlock)
	c.ThreadsX = clampFactor(c.ThreadsX, c.TileX)
	c.ThreadsY = clampFactor(c.ThreadsY, c.TileY)
	c.ThreadsZ = clampFactor(c.ThreadsZ, c.TileZ)
	for i := 0; i < 32; i++ {
		if sp.admissible(c) {
			return c, true
		}
		// Shrink the largest tile axis and retry.
		switch {
		case c.TileZ > sp.zs[0] && c.TileZ >= c.TileX*c.TileY:
			c.TileZ = below(sp.zs, c.TileZ)
			c.ThreadsZ = clampFactor(c.ThreadsZ, c.TileZ)
		case c.TileX >= c.TileY:
			c.TileX = below(sp.xsByE[c.WinogradE], c.TileX)
			c.ThreadsX = clampFactor(c.ThreadsX, c.TileX)
		default:
			c.TileY = below(sp.ysByE[c.WinogradE], c.TileY)
			c.ThreadsY = clampFactor(c.ThreadsY, c.TileY)
		}
	}
	return c, sp.admissible(c)
}

// below returns the largest value in vals strictly below v, or the smallest
// value if none is.
func below(vals []int, v int) int {
	best, found := 0, false
	smallest := vals[0]
	for _, x := range vals {
		if x < smallest {
			smallest = x
		}
		if x < v && (!found || x > best) {
			best, found = x, true
		}
	}
	if !found {
		return smallest
	}
	return best
}

// nearest returns the value of vals closest to v.
func nearest(vals []int, v int) int {
	best, bestD := vals[0], 1<<62
	for _, x := range vals {
		d := x - v
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = x, d
		}
	}
	return best
}

// adjacent picks the previous or next value of v in vals (which need not be
// sorted; position is by identity).
func adjacent(vals []int, v int, rng *rand.Rand) int {
	idx := 0
	for i, x := range vals {
		if x == v {
			idx = i
			break
		}
	}
	delta := 1
	if rng.Intn(2) == 0 {
		delta = -1
	}
	idx += delta
	if idx < 0 {
		idx = len(vals) - 1
	}
	if idx >= len(vals) {
		idx = 0
	}
	return vals[idx]
}

func clampFactor(t, tile int) int {
	if t <= tile && tile%t == 0 {
		return t
	}
	fs := factors(tile)
	best := fs[0]
	for _, f := range fs {
		if f <= t {
			best = f
		}
	}
	return best
}

func factors(n int) []int {
	var fs []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			fs = append(fs, d)
		}
	}
	return fs
}

func scaleAll(vals []int, e int) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = v * e
	}
	return out
}
