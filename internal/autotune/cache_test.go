package autotune

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conv"
)

func TestCacheRoundTrip(t *testing.T) {
	c := NewCache()
	s := layer()
	cfg := conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2,
		SharedPerBlock: 4096, WinogradE: 0}
	m := Measurement{Seconds: 1.5e-4, GFLOPS: 1234}
	c.Put(arch.Name, Direct, s, cfg, m)
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
	got, gm, ok := c.Get(arch.Name, Direct, s)
	if !ok || got != cfg || gm != m {
		t.Fatalf("Get mismatch: %v %v %v", got, gm, ok)
	}
	// Different kind or shape must miss.
	if _, _, ok := c.Get(arch.Name, Winograd, s); ok {
		t.Error("kind collision")
	}
	other := s
	other.Cout *= 2
	if _, _, ok := c.Get(arch.Name, Direct, other); ok {
		t.Error("shape collision")
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCache()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got2, gm2, ok := restored.Get(arch.Name, Direct, s)
	if !ok || got2 != cfg || gm2 != m {
		t.Fatalf("restored mismatch: %v %v %v", got2, gm2, ok)
	}
}

func TestCacheSaveDeterministic(t *testing.T) {
	c := NewCache()
	s := layer()
	c.Put("A", Direct, s, conv.Config{TileX: 1, TileY: 1, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 256}, Measurement{Seconds: 1})
	c.Put("B", Direct, s, conv.Config{TileX: 3, TileY: 1, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 256}, Measurement{Seconds: 2})
	var b1, b2 bytes.Buffer
	if err := c.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("Save not deterministic")
	}
}

func TestCacheLoadRejectsGarbage(t *testing.T) {
	c := NewCache()
	if err := c.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := c.Load(strings.NewReader(`[{"arch":"x","kind":"direct","shape":{"Batch":0}}]`)); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	c := NewCache()
	s := layer()
	c.Put(arch.Name, Winograd, s,
		conv.Config{TileX: 4, TileY: 4, TileZ: 4, ThreadsX: 2, ThreadsY: 2, ThreadsZ: 2,
			SharedPerBlock: 8192, WinogradE: 2},
		Measurement{Seconds: 3e-4, GFLOPS: 777})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r := NewCache()
	if err := r.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("restored Len=%d", r.Len())
	}
	cfg, _, ok := r.Get(arch.Name, Winograd, s)
	if !ok || cfg.WinogradE != 2 {
		t.Fatalf("restored entry wrong: %v %v", cfg, ok)
	}
}

func TestTuneCached(t *testing.T) {
	c := NewCache()
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	calls := 0
	counting := func(cfg conv.Config) (Measurement, bool) {
		calls++
		return measure(cfg)
	}
	cfg1, m1, err := TuneCached(c, sp, counting, smallOpts(24, 5))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no measurements on cold cache")
	}
	callsAfterTune := calls
	cfg2, m2, err := TuneCached(c, sp, counting, smallOpts(24, 5))
	if err != nil {
		t.Fatal(err)
	}
	if calls != callsAfterTune {
		t.Error("cache hit still measured")
	}
	if cfg1 != cfg2 || m1 != m2 {
		t.Error("cache returned a different verdict")
	}
}

func TestEmitSchedule(t *testing.T) {
	s := layer()
	cfg := conv.Config{TileX: 9, TileY: 9, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2,
		SharedPerBlock: 4096}
	out := EmitSchedule(Direct, s, cfg)
	for _, want := range []string{"__shared__", "channel-sliding", "store out", "9x9x8"} {
		if !strings.Contains(out, want) {
			t.Errorf("direct schedule missing %q:\n%s", want, out)
		}
	}
	wcfg := conv.Config{TileX: 8, TileY: 8, TileZ: 8, ThreadsX: 4, ThreadsY: 4, ThreadsZ: 4,
		SharedPerBlock: 12288, WinogradE: 2}
	wout := EmitSchedule(Winograd, s, wcfg)
	for _, want := range []string{"Pi[", "B^T", "G . g . G^T", "A^T", "F(2x2,3x3)"} {
		if !strings.Contains(wout, want) {
			t.Errorf("winograd schedule missing %q:\n%s", want, wout)
		}
	}
}

func TestFeatureImportance(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	// Train a model from real measurements.
	var feats [][]float64
	var costs []float64
	rngConfigs := 0
	sp.enumerate(func(c conv.Config) bool {
		if rngConfigs%7 == 0 {
			if m, ok := measure(c); ok {
				feats = append(feats, sp.Features(c))
				costs = append(costs, m.Seconds)
			}
		}
		rngConfigs++
		return len(feats) < 150
	})
	if len(feats) < 20 {
		t.Skip("too few measurable configs")
	}
	model := TrainGBT(DefaultGBTConfig(), feats, costs)
	imp := model.FeatureImportance()
	if len(imp) == 0 {
		t.Fatal("no splits recorded")
	}
	total := 0
	for _, i := range imp {
		if i.Splits <= 0 {
			t.Errorf("non-positive split count: %+v", i)
		}
		if i.Feature == "unknown" {
			t.Errorf("unnamed feature in importance: %+v", i)
		}
		total += i.Splits
	}
	// Sorted descending.
	for i := 1; i < len(imp); i++ {
		if imp[i].Splits > imp[i-1].Splits {
			t.Error("importance not sorted")
		}
	}
	if len(FeatureNames) != NumFeatures {
		t.Errorf("FeatureNames has %d entries, NumFeatures=%d", len(FeatureNames), NumFeatures)
	}
}
