package autotune

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conv"
	"repro/internal/shapes"
)

func TestCacheRoundTrip(t *testing.T) {
	c := NewCache()
	s := layer()
	cfg := conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2,
		SharedPerBlock: 4096, WinogradE: 0}
	m := Measurement{Seconds: 1.5e-4, GFLOPS: 1234}
	c.Put(arch.Name, Direct, s, cfg, m)
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
	got, gm, ok := c.Get(arch.Name, Direct, s)
	if !ok || got != cfg || gm != m {
		t.Fatalf("Get mismatch: %v %v %v", got, gm, ok)
	}
	// Different kind or shape must miss.
	if _, _, ok := c.Get(arch.Name, Winograd, s); ok {
		t.Error("kind collision")
	}
	other := s
	other.Cout *= 2
	if _, _, ok := c.Get(arch.Name, Direct, other); ok {
		t.Error("shape collision")
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCache()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got2, gm2, ok := restored.Get(arch.Name, Direct, s)
	if !ok || got2 != cfg || gm2 != m {
		t.Fatalf("restored mismatch: %v %v %v", got2, gm2, ok)
	}
}

func TestCacheSaveDeterministic(t *testing.T) {
	c := NewCache()
	s := layer()
	c.Put("A", Direct, s, conv.Config{TileX: 1, TileY: 1, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 256}, Measurement{Seconds: 1})
	c.Put("B", Direct, s, conv.Config{TileX: 3, TileY: 1, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 256}, Measurement{Seconds: 2})
	var b1, b2 bytes.Buffer
	if err := c.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("Save not deterministic")
	}
}

func TestCacheLoadRejectsGarbage(t *testing.T) {
	c := NewCache()
	if err := c.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := c.Load(strings.NewReader(`[{"arch":"x","kind":"direct","shape":{"Batch":0}}]`)); err == nil {
		t.Error("invalid shape accepted")
	}
	// A successful row with non-positive seconds would poison resumed
	// incumbents (zero best prunes everything) and warm-pool log-costs.
	bad := `{"version":2,"entries":[` + strings.Replace(validEntryJSON("direct"),
		`"seconds":1.5e-4`, `"seconds":1.5e-4,"rows":[{"config":{"TileX":1,"TileY":1,"TileZ":1,"ThreadsX":1,"ThreadsY":1,"ThreadsZ":1,"SharedPerBlock":256,"Layout":0,"WinogradE":0},"seconds":0,"gflops":0,"ok":true}]`, 1) + `]}`
	if err := c.Load(strings.NewReader(bad)); err == nil {
		t.Error("zero-seconds successful row accepted")
	}
	if c.Len() != 0 {
		t.Errorf("rejected loads still stored %d entries", c.Len())
	}
}

// validEntryJSON is one well-formed persisted entry with a pluggable kind.
func validEntryJSON(kind string) string {
	return `{"arch":"V100","kind":"` + kind + `",` +
		`"shape":{"Batch":1,"Cin":96,"Hin":27,"Win":27,"Cout":64,"Hker":3,"Wker":3,"Stride":1,"Pad":1},` +
		`"config":{"TileX":9,"TileY":3,"TileZ":8,"ThreadsX":3,"ThreadsY":3,"ThreadsZ":2,` +
		`"SharedPerBlock":4096,"Layout":0,"WinogradE":0},"seconds":1.5e-4,"gflops":1234}`
}

// An unknown algorithm kind must be rejected, in both file formats: a
// corrupt or future-format cache file silently mapping to Direct would
// poison every verdict served from it.
func TestCacheLoadRejectsUnknownKind(t *testing.T) {
	for name, payload := range map[string]string{
		"v1 array":    `[` + validEntryJSON("karatsuba") + `]`,
		"v2 envelope": `{"version":2,"entries":[` + validEntryJSON("karatsuba") + `]}`,
		// A valid entry ahead of the bad one must not be committed either:
		// a rejected file leaves the cache untouched.
		"partial": `{"version":2,"entries":[` + validEntryJSON("direct") + `,` + validEntryJSON("karatsuba") + `]}`,
	} {
		c := NewCache()
		err := c.Load(strings.NewReader(payload))
		if err == nil {
			t.Errorf("%s: unknown kind accepted", name)
		} else if !strings.Contains(err.Error(), "unknown cache kind") {
			t.Errorf("%s: wrong error: %v", name, err)
		}
		if c.Len() != 0 {
			t.Errorf("%s: rejected load still stored %d entries", name, c.Len())
		}
	}
}

// Every registered algorithm kind — and a grouped shape — must survive a
// Save/Load round trip through the v2 envelope: the per-layer kernel choice
// persists its verdicts under "fft"/"igemm" names and depthwise shapes.
func TestCacheRoundTripAllKinds(t *testing.T) {
	c := NewCache()
	s := layer()
	grouped := s
	grouped.Cin, grouped.Cout, grouped.Groups = 96, 96, 4
	cfg := conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2,
		SharedPerBlock: 4096}
	for i, kind := range Kinds {
		c.Put(arch.Name, kind, s, cfg, Measurement{Seconds: float64(i+1) * 1e-4, GFLOPS: 100})
		c.Put(arch.Name, kind, grouped, cfg, Measurement{Seconds: float64(i+1) * 2e-4, GFLOPS: 50})
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCache()
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if restored.Len() != c.Len() {
		t.Fatalf("Len=%d after reload, want %d", restored.Len(), c.Len())
	}
	for i, kind := range Kinds {
		if _, m, ok := restored.Get(arch.Name, kind, s); !ok || m.Seconds != float64(i+1)*1e-4 {
			t.Errorf("%v dense entry lost: %v %v", kind, m, ok)
		}
		if _, m, ok := restored.Get(arch.Name, kind, grouped); !ok || m.Seconds != float64(i+1)*2e-4 {
			t.Errorf("%v grouped entry lost: %v %v", kind, m, ok)
		}
		// The grouped and dense entries must be distinct keys.
		if _, mg, _ := restored.Get(arch.Name, kind, grouped); mg.Seconds == float64(i+1)*1e-4 {
			t.Errorf("%v grouped entry collides with dense", kind)
		}
	}
}

// Version-1 files (a bare JSON array, as written before the state-carrying
// format) still load; unknown future versions are refused.
func TestCacheLoadFormatVersions(t *testing.T) {
	c := NewCache()
	if err := c.Load(strings.NewReader(`[` + validEntryJSON("direct") + `]`)); err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	cfg, m, ok := c.Get("V100", Direct, layer())
	if !ok || cfg.TileX != 9 || m.GFLOPS != 1234 {
		t.Fatalf("v1 entry not retrievable: %v %v %v", cfg, m, ok)
	}
	if _, _, ok := c.State("V100", Direct, layer()); ok {
		t.Error("v1 entry claims engine state")
	}
	if err := NewCache().Load(strings.NewReader(`{"version":3,"entries":[]}`)); err == nil {
		t.Error("future format version accepted")
	}
}

// State-carrying entries round-trip: history (configs, outcomes, failure
// flags) and curve survive Save/Load bit-for-bit.
func TestCacheStateRoundTrip(t *testing.T) {
	c := NewCache()
	s := layer()
	tr := &Trace{
		Method: "ate",
		Best:   conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2, SharedPerBlock: 4096},
		BestM:  Measurement{Seconds: 2e-4, GFLOPS: 900},
		Curve:  []float64{100, 900, 900},
		History: []MeasuredConfig{
			{Config: conv.Config{TileX: 27, TileY: 27, TileZ: 64, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 256}, OK: false},
			{Config: conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2, SharedPerBlock: 4096},
				M: Measurement{Seconds: 2e-4, GFLOPS: 900}, OK: true},
		},
		Measurements: 2,
	}
	c.PutTrace(arch.Name, Direct, s, tr)

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCache()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	hist, curve, ok := restored.State(arch.Name, Direct, s)
	if !ok {
		t.Fatal("restored entry lost its state")
	}
	if len(hist) != len(tr.History) {
		t.Fatalf("history length %d != %d", len(hist), len(tr.History))
	}
	for i := range hist {
		if hist[i] != tr.History[i] {
			t.Errorf("history[%d] %+v != %+v", i, hist[i], tr.History[i])
		}
	}
	if len(curve) != len(tr.Curve) {
		t.Fatalf("curve length %d != %d", len(curve), len(tr.Curve))
	}
	for i := range curve {
		if curve[i] != tr.Curve[i] {
			t.Errorf("curve[%d] %v != %v", i, curve[i], tr.Curve[i])
		}
	}
	// And the verdict itself still serves.
	cfg, m, ok := restored.Get(arch.Name, Direct, s)
	if !ok || cfg != tr.Best || m != tr.BestM {
		t.Fatalf("restored verdict wrong: %v %v %v", cfg, m, ok)
	}
}

// The strconv key builder and its string wrapper must agree with the
// reference fmt construction of the same key. (Keys are in-memory only —
// files persist whole entries — so the format needs internal consistency,
// not cross-version stability.)
func TestCacheKeyFormat(t *testing.T) {
	s := layer()
	grouped := s
	grouped.Cin, grouped.Cout, grouped.Groups = 96, 96, 4
	for _, sh := range []shapes.ConvShape{s, grouped} {
		for _, kind := range Kinds {
			want := fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d", arch.Name, kind,
				sh.Batch, sh.Cin, sh.Hin, sh.Win, sh.Cout,
				sh.Hker, sh.Wker, sh.Strid, sh.Pad, sh.G())
			if got := cacheKey(arch.Name, kind, sh); got != want {
				t.Errorf("cacheKey = %q, want %q", got, want)
			}
			var kb [cacheKeyBuf]byte
			if got := string(appendCacheKey(kb[:0], arch.Name, kind, sh)); got != want {
				t.Errorf("appendCacheKey = %q, want %q", got, want)
			}
		}
	}
}

// BenchmarkCacheKey measures the strconv-based key builder on the shared
// cache's hot path (must be 0 allocs/op into a reused buffer);
// BenchmarkCacheKeySprintf is the fmt.Sprintf construction it replaced.
func BenchmarkCacheKey(b *testing.B) {
	s := layer()
	var kb [cacheKeyBuf]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = appendCacheKey(kb[:0], "V100", Direct, s)
	}
}

func BenchmarkCacheKeySprintf(b *testing.B) {
	s := layer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d", "V100", Direct,
			s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad)
	}
}

// BenchmarkCacheGet is the full hot lookup (key build + shard + map hit);
// it must not allocate.
func BenchmarkCacheGet(b *testing.B) {
	c := NewCache()
	s := layer()
	c.Put(arch.Name, Direct, s,
		conv.Config{TileX: 9, TileY: 3, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2, SharedPerBlock: 4096},
		Measurement{Seconds: 1e-4, GFLOPS: 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get(arch.Name, Direct, s); !ok {
			b.Fatal("miss")
		}
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	c := NewCache()
	s := layer()
	c.Put(arch.Name, Winograd, s,
		conv.Config{TileX: 4, TileY: 4, TileZ: 4, ThreadsX: 2, ThreadsY: 2, ThreadsZ: 2,
			SharedPerBlock: 8192, WinogradE: 2},
		Measurement{Seconds: 3e-4, GFLOPS: 777})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r := NewCache()
	if err := r.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("restored Len=%d", r.Len())
	}
	cfg, _, ok := r.Get(arch.Name, Winograd, s)
	if !ok || cfg.WinogradE != 2 {
		t.Fatalf("restored entry wrong: %v %v", cfg, ok)
	}
}

func TestTuneCached(t *testing.T) {
	c := NewCache()
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	calls := 0
	counting := func(cfg conv.Config) (Measurement, bool) {
		calls++
		return measure(cfg)
	}
	cfg1, m1, err := TuneCached(c, sp, counting, smallOpts(24, 5))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no measurements on cold cache")
	}
	callsAfterTune := calls
	cfg2, m2, err := TuneCached(c, sp, counting, smallOpts(24, 5))
	if err != nil {
		t.Fatal(err)
	}
	if calls != callsAfterTune {
		t.Error("cache hit still measured")
	}
	if cfg1 != cfg2 || m1 != m2 {
		t.Error("cache returned a different verdict")
	}
}

func TestEmitSchedule(t *testing.T) {
	s := layer()
	cfg := conv.Config{TileX: 9, TileY: 9, TileZ: 8, ThreadsX: 3, ThreadsY: 3, ThreadsZ: 2,
		SharedPerBlock: 4096}
	out := EmitSchedule(Direct, s, cfg)
	for _, want := range []string{"__shared__", "channel-sliding", "store out", "9x9x8"} {
		if !strings.Contains(out, want) {
			t.Errorf("direct schedule missing %q:\n%s", want, out)
		}
	}
	wcfg := conv.Config{TileX: 8, TileY: 8, TileZ: 8, ThreadsX: 4, ThreadsY: 4, ThreadsZ: 4,
		SharedPerBlock: 12288, WinogradE: 2}
	wout := EmitSchedule(Winograd, s, wcfg)
	for _, want := range []string{"Pi[", "B^T", "G . g . G^T", "A^T", "F(2x2,3x3)"} {
		if !strings.Contains(wout, want) {
			t.Errorf("winograd schedule missing %q:\n%s", want, wout)
		}
	}
}

func TestFeatureImportance(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	// Train a model from real measurements.
	var feats [][]float64
	var costs []float64
	rngConfigs := 0
	sp.enumerate(func(c conv.Config) bool {
		if rngConfigs%7 == 0 {
			if m, ok := measure(c); ok {
				feats = append(feats, sp.Features(c))
				costs = append(costs, m.Seconds)
			}
		}
		rngConfigs++
		return len(feats) < 150
	})
	if len(feats) < 20 {
		t.Skip("too few measurable configs")
	}
	model := TrainGBT(DefaultGBTConfig(), feats, costs)
	imp := model.FeatureImportance()
	if len(imp) == 0 {
		t.Fatal("no splits recorded")
	}
	total := 0
	for _, i := range imp {
		if i.Splits <= 0 {
			t.Errorf("non-positive split count: %+v", i)
		}
		if i.Feature == "unknown" {
			t.Errorf("unnamed feature in importance: %+v", i)
		}
		total += i.Splits
	}
	// Sorted descending.
	for i := 1; i < len(imp); i++ {
		if imp[i].Splits > imp[i-1].Splits {
			t.Error("importance not sorted")
		}
	}
	if len(FeatureNames) != NumFeatures {
		t.Errorf("FeatureNames has %d entries, NumFeatures=%d", len(FeatureNames), NumFeatures)
	}
}
