package autotune

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// analyticRegretCap pins the analytic tier's quality: over randomized
// exhaustively-enumerable shapes, the measured time of the analytic winner
// stays within this factor of the true measured optimum of the space. The
// floor orders configurations by their I/O-implied cost, not their modeled
// cost, so the winner can be suboptimal — but a degraded-mode answer worse
// than this factor would make the instant tier useless as a stand-in.
const analyticRegretCap = 2.0

// enumeratedOptimum finds the true measured optimum of a space by full
// enumeration — the ground truth the analytic ranking is judged against.
func enumeratedOptimum(sp *Space, mm *MemoMeasure) (conv.Config, float64, bool) {
	best := math.Inf(1)
	var bestCfg conv.Config
	found := false
	sp.enumerate(func(c conv.Config) bool {
		if m, ok := mm.Measure(c); ok && m.Seconds < best {
			best, bestCfg, found = m.Seconds, c, true
		}
		return true
	})
	return bestCfg, best, found
}

// The regret property: the analytic winner must be measurable, its floor
// admissible (never above its own measured time), and its measured time
// within analyticRegretCap of the enumerated optimum. This is the contract
// that makes an analytic 200 a usable answer rather than a guess.
func TestAnalyticRegret(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	archs := []memsim.Arch{memsim.V100, memsim.GTX1080Ti, memsim.GFX906}
	worst, checked := 0.0, 0
	for trial := 0; trial < 10; trial++ {
		s := randomSmallShape(rng)
		a := archs[trial%len(archs)]
		for _, sp := range boundTestSpaces(t, s, a) {
			v, err := sp.Analytic(1)
			if err != nil {
				// A space with nothing rankable has nothing to regret.
				continue
			}
			mm := NewMemoMeasure(a, s, sp.Kind)
			m, ok := mm.Measure(v.Config)
			if !ok {
				t.Fatalf("%v %s on %s: analytic winner %v rejected by the measurer",
					s, sp.Kind, a.Name, v.Config)
			}
			if m.Seconds < v.Floor {
				t.Errorf("%v %s on %s: floor %.3g not admissible: measured %.3g",
					s, sp.Kind, a.Name, v.Floor, m.Seconds)
			}
			_, opt, found := enumeratedOptimum(sp, mm)
			if !found {
				continue
			}
			regret := m.Seconds / opt
			if regret > worst {
				worst = regret
			}
			checked++
			if regret > analyticRegretCap {
				t.Errorf("%v %s on %s: analytic winner measured %.3gs vs optimum %.3gs (regret %.2fx > %gx)",
					s, sp.Kind, a.Name, m.Seconds, opt, regret, analyticRegretCap)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no (shape, space) pair exercised the regret property")
	}
	t.Logf("checked %d spaces, worst regret %.3fx (cap %gx)", checked, worst, analyticRegretCap)
}

// Every retained verdict's floor is admissible and the ranking is sorted
// best-floor-first; with calibration 1 the estimate is the floor itself.
func TestAnalyticTopAdmissibleAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 6; trial++ {
		s := randomSmallShape(rng)
		for _, sp := range boundTestSpaces(t, s, arch) {
			vs, err := sp.AnalyticTop(0, 1)
			if err != nil {
				continue
			}
			mm := NewMemoMeasure(arch, s, sp.Kind)
			for i, v := range vs {
				if v.Seconds != v.Floor {
					t.Fatalf("calibration 1 must serve the raw floor: %v vs %v", v.Seconds, v.Floor)
				}
				if i > 0 && vs[i-1].Floor > v.Floor {
					t.Fatalf("ranking not sorted: [%d]=%.3g after %.3g", i, v.Floor, vs[i-1].Floor)
				}
				m, ok := mm.Measure(v.Config)
				if !ok {
					t.Fatalf("ranked config %v rejected by the measurer", v.Config)
				}
				if m.Seconds < v.Floor {
					t.Errorf("floor %.3g above measured %.3g for %v", v.Floor, m.Seconds, v.Config)
				}
				if v.Ranked < int64(len(vs)) {
					t.Errorf("Ranked %d < retained %d", v.Ranked, len(vs))
				}
			}
		}
	}
}

// The analytic ranking is a pure function of the space: two independent
// spaces over the same (shape, arch, kind) produce identical rankings, and
// calibration scales every estimate without reordering anything.
func TestAnalyticDeterministicAndCalibrationScales(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 4, Hin: 10, Win: 10, Cout: 6,
		Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	mk := func() *Space {
		sp, err := NewSpace(s, arch, Direct, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a, err := mk().AnalyticTop(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().AnalyticTop(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("rankings differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rankings diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	const cal = 3.5
	c, err := mk().AnalyticTop(0, cal)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if c[i].Config != a[i].Config {
			t.Fatalf("calibration reordered the ranking at %d", i)
		}
		if got, want := c[i].Seconds, a[i].Floor*cal; math.Abs(got-want) > 1e-15*want {
			t.Fatalf("calibrated estimate %v, want floor*%v = %v", got, cal, want)
		}
	}
	// A calibration below 1 (or NaN) must clamp to the admissible floor.
	for _, bad := range []float64{0.5, 0, -3, math.NaN()} {
		d, err := mk().AnalyticTop(1, bad)
		if err != nil {
			t.Fatal(err)
		}
		if d[0].Seconds != d[0].Floor {
			t.Fatalf("calibration %v must clamp to 1, got estimate %v over floor %v",
				bad, d[0].Seconds, d[0].Floor)
		}
	}
}

// Calibration fitting: an absent or empty cache serves the raw floor
// (factor 1); a cache holding measured history yields a finite factor ≥ 1
// that brings the analytic estimate toward the measured scale.
func TestCalibrateAnalytic(t *testing.T) {
	if got := CalibrateAnalytic(nil, arch); got != 1 {
		t.Fatalf("nil cache: calibration %v, want 1", got)
	}
	cache := NewCache()
	if got := CalibrateAnalytic(cache, arch); got != 1 {
		t.Fatalf("empty cache: calibration %v, want 1", got)
	}

	s := shapes.ConvShape{Batch: 1, Cin: 4, Hin: 10, Win: 10, Cout: 6,
		Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	sp, err := NewSpace(s, arch, Direct, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Budget = 24
	tr, err := Tune(sp, NewMemoMeasure(arch, s, Direct).Measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	cache.PutTrace(arch.Name, Direct, s, tr)
	cal := CalibrateAnalytic(cache, arch)
	if !(cal >= 1) || math.IsInf(cal, 1) {
		t.Fatalf("fitted calibration %v, want finite ≥ 1", cal)
	}
	// A different architecture has no rows here and stays at 1.
	if got := CalibrateAnalytic(cache, memsim.TitanX); got != 1 {
		t.Fatalf("foreign-arch calibration %v, want 1", got)
	}
}

// The DSE facade: every verdict carries TierAnalytic, Winograd is chosen
// only where it is admissible and estimated faster, and two independent
// DSEs agree — the determinism the daemon's degraded mode inherits.
func TestAnalyticDSENetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	layers := randomNetwork(rng)
	run := func() []LayerVerdict {
		t.Helper()
		verdicts, err := NewAnalyticDSE(arch).Network(layers, true)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts
	}
	a, b := run(), run()
	if len(a) != len(layers) {
		t.Fatalf("%d verdicts for %d layers", len(a), len(layers))
	}
	for i := range a {
		if a[i].Tier != TierAnalytic {
			t.Fatalf("layer %s: tier %v, want analytic", a[i].Layer.Name, a[i].Tier)
		}
		if !(a[i].M.Seconds > 0) {
			t.Fatalf("layer %s: non-positive estimate %v", a[i].Layer.Name, a[i].M.Seconds)
		}
		if a[i].Kind == Winograd && (a[i].Layer.Shape.Hker != 3 || !a[i].Layer.Shape.WinogradOK()) {
			t.Fatalf("layer %s: Winograd verdict on an inadmissible shape", a[i].Layer.Name)
		}
		if a[i].Config != b[i].Config || a[i].Kind != b[i].Kind || a[i].M != b[i].M {
			t.Fatalf("layer %s: independent DSEs disagree: %+v vs %+v",
				a[i].Layer.Name, a[i], b[i])
		}
	}
	if !(NetworkSeconds(a) > 0) {
		t.Fatal("non-positive analytic network time")
	}
}

// errDead is the dead-backend error used by the fallback tests.
var errDead = errors.New("backend dead")

// deadMeasurer fails every measurement — the seam state behind an open
// breaker or an unplugged device.
func deadMeasurer(Kind, shapes.ConvShape, Measurer) FallibleMeasurer {
	return func(conv.Config) (Measurement, bool, error) {
		return Measurement{}, false, errDead
	}
}

// AnalyticFallback is the sweep-level degradation trigger: with a dead
// measurer the plain sweep fails, the fallback sweep returns a complete
// all-analytic verdict list instead.
func TestTuneNetworkAnalyticFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	layers := randomNetwork(rng)
	opts := DefaultOptions()
	opts.Budget = 8
	opts.Retry.MaxAttempts = 2

	base := NetworkOptions{Tune: opts, Winograd: true, WrapMeasurer: deadMeasurer}
	if _, err := TuneNetwork(arch, layers, NewCache(), base); err == nil {
		t.Fatal("dead measurer without AnalyticFallback must fail the sweep")
	}

	withFallback := base
	withFallback.AnalyticFallback = true
	verdicts, err := TuneNetwork(arch, layers, NewCache(), withFallback)
	if err != nil {
		t.Fatalf("fallback sweep failed: %v", err)
	}
	if len(verdicts) != len(layers) {
		t.Fatalf("%d verdicts for %d layers", len(verdicts), len(layers))
	}
	for _, v := range verdicts {
		if v.Tier != TierAnalytic {
			t.Fatalf("layer %s: tier %v, want analytic", v.Layer.Name, v.Tier)
		}
		if !(v.M.Seconds > 0) {
			t.Fatalf("layer %s: non-positive estimate", v.Layer.Name)
		}
	}

	// With a healthy measurer the fallback option must be inert: verdicts
	// identical to the plain sweep, every tier measured.
	healthy := NetworkOptions{Tune: opts, Winograd: true}
	want, err := TuneNetwork(arch, layers, NewCache(), healthy)
	if err != nil {
		t.Fatal(err)
	}
	healthy.AnalyticFallback = true
	got, err := TuneNetwork(arch, layers, NewCache(), healthy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Config != want[i].Config || got[i].Kind != want[i].Kind {
			t.Fatalf("layer %s: fallback option changed a healthy verdict", want[i].Layer.Name)
		}
		if got[i].Tier != TierMeasured {
			t.Fatalf("layer %s: healthy sweep tier %v, want measured", got[i].Layer.Name, got[i].Tier)
		}
	}
}
