package autotune

import (
	"sort"
	"sync/atomic"
	"time"
)

// This file bounds the cache for long-running service use. The tuning
// daemon (cmd/tuned) keeps one Cache alive for its whole lifetime while the
// key space — (arch, algorithm, shape) — is effectively unbounded in the
// millions-of-distinct-shapes regime, so the cache needs what every
// production verdict cache needs: size accounting, an LRU bound, an
// optional TTL, and an eviction hook for observability. Eviction is pure
// capacity management: a re-tuned evicted key reproduces its verdict
// bit-for-bit (the engine is deterministic), so dropping an entry can never
// change an answer, only the cost of producing it.

// entryMeta is the per-entry accounting record: approximate retained bytes,
// the logical LRU clock tick of the last access, and the wall time of the
// last access (TTL). The atomics let the read-locked lookup path touch an
// entry without taking the shard's write lock.
type entryMeta struct {
	size int64
	used atomic.Int64
	wall atomic.Int64
}

// EvictionPolicy bounds a cache. The zero value is unbounded; any
// combination of limits may be set.
type EvictionPolicy struct {
	// MaxEntries caps the number of cached verdicts (0 = unlimited).
	MaxEntries int
	// MaxBytes caps the approximate retained bytes — entry overhead plus
	// the persisted engine state, which dominates for state-carrying
	// entries (0 = unlimited).
	MaxBytes int64
	// TTL evicts entries idle (neither read nor written) for longer than
	// this (0 = no TTL). Expiry is lazy — checked on lookup — plus
	// whatever EvictExpired sweeps the owner schedules.
	TTL time.Duration
	// OnEvict, when non-nil, is called once per evicted entry, outside all
	// cache locks. It must not call back into the cache's write paths.
	OnEvict func(CacheEntry)
	// Now overrides the wall clock (tests). nil means time.Now.
	Now func() time.Time
}

func (p *EvictionPolicy) now() time.Time {
	if p != nil && p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

func (c *Cache) nowNanos() int64 {
	return c.policy.Load().now().UnixNano()
}

// SetEviction installs (or replaces) the cache's eviction policy and
// enforces its limits immediately.
func (c *Cache) SetEviction(p EvictionPolicy) {
	c.policy.Store(&p)
	if p.TTL > 0 {
		// Entries inserted before any TTL policy existed carry no wall
		// stamp; date them "now" so installing a policy starts their idle
		// clock instead of expiring them retroactively.
		now := p.now().UnixNano()
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.RLock()
			for _, m := range sh.meta {
				if m.wall.Load() == 0 {
					m.wall.Store(now)
				}
			}
			sh.mu.RUnlock()
		}
	}
	c.enforce()
}

// CacheStats is a point-in-time accounting snapshot, exported by the
// service's /healthz.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats reports the cache's counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries:   c.Len(),
		Bytes:     c.bytes.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// SizeBytes reports the approximate retained bytes of all entries.
func (c *Cache) SizeBytes() int64 { return c.bytes.Load() }

// Per-entry size model: struct overhead plus the variable-length state.
// The constants approximate the in-memory footprint (struct sizes, map
// bucket share, JSON field slack is ignored); the point of the accounting
// is a stable, monotone measure for MaxBytes, not heap-exact byte counts.
const (
	entryFixedBytes = 256
	rowBytes        = 88 // CachedMeasurement: 9 config ints + 2 floats + bool
	curvePointBytes = 8
)

// SizeBytes estimates the retained bytes of one entry. State-carrying
// entries (Rows/Curve) dominate: a 400-measurement search persists ~38 KiB
// against the fixed ~0.3 KiB of a verdict-only entry.
func (e CacheEntry) SizeBytes() int64 {
	return entryFixedBytes + int64(len(e.Arch)) + int64(len(e.Kind)) +
		int64(len(e.Rows))*rowBytes + int64(len(e.Curve))*curvePointBytes
}

// remove deletes one entry, keeping the byte accounting and eviction
// counter consistent. The caller invokes the OnEvict hook.
func (c *Cache) remove(key string) (CacheEntry, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		delete(sh.entries, key)
		if m := sh.meta[key]; m != nil {
			c.bytes.Add(-m.size)
		}
		delete(sh.meta, key)
	}
	sh.mu.Unlock()
	if ok {
		c.evictions.Add(1)
	}
	return e, ok
}

// expire is the lazy-TTL path of getEntry: drop one entry discovered stale
// during a lookup.
func (c *Cache) expire(key string, p *EvictionPolicy) {
	if e, ok := c.remove(key); ok && p.OnEvict != nil {
		p.OnEvict(e)
	}
}

// enforce evicts least-recently-used entries until the policy's limits
// hold again. When a sweep is needed it batches: eviction overshoots to a
// low-water mark ~10% under the cap, so a put-heavy workload near capacity
// pays the O(n log n) LRU scan once per batch of inserts instead of once
// per insert. Concurrent enforce calls serialize on evictMu; racing puts
// during a sweep are picked up by the next one.
func (c *Cache) enforce() {
	p := c.policy.Load()
	if p == nil || (p.MaxEntries <= 0 && p.MaxBytes <= 0) {
		return
	}
	if (p.MaxEntries <= 0 || c.Len() <= p.MaxEntries) &&
		(p.MaxBytes <= 0 || c.bytes.Load() <= p.MaxBytes) {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()

	type cand struct {
		key  string
		used int64
		size int64
	}
	var cands []cand
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, m := range sh.meta {
			cands = append(cands, cand{k, m.used.Load(), m.size})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].used < cands[j].used })

	entryTarget, byteTarget := int64(0), int64(0)
	if p.MaxEntries > 0 {
		entryTarget = int64(p.MaxEntries) - int64(p.MaxEntries/10)
	}
	if p.MaxBytes > 0 {
		byteTarget = p.MaxBytes - p.MaxBytes/10
	}
	entries := int64(len(cands))
	bytes := c.bytes.Load()
	var evicted []CacheEntry
	for _, cd := range cands {
		if (entryTarget == 0 || entries <= entryTarget) &&
			(byteTarget == 0 || bytes <= byteTarget) {
			break
		}
		if e, ok := c.remove(cd.key); ok {
			entries--
			bytes -= cd.size
			if p.OnEvict != nil {
				evicted = append(evicted, e)
			}
		}
	}
	for _, e := range evicted {
		p.OnEvict(e)
	}
}

// EvictExpired sweeps out every entry idle longer than the policy TTL and
// reports how many were dropped. The service's batcher runs it after each
// batch; without a TTL it is a no-op.
func (c *Cache) EvictExpired() int {
	p := c.policy.Load()
	if p == nil || p.TTL <= 0 {
		return 0
	}
	cutoff := p.now().UnixNano() - int64(p.TTL)
	var stale []string
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, m := range sh.meta {
			if m.wall.Load() <= cutoff {
				stale = append(stale, k)
			}
		}
		sh.mu.RUnlock()
	}
	n := 0
	for _, k := range stale {
		if e, ok := c.remove(k); ok {
			n++
			if p.OnEvict != nil {
				p.OnEvict(e)
			}
		}
	}
	return n
}
