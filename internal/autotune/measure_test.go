package autotune

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// unmemoizedMeasurer is the pre-memo measurement path: one full dry
// evaluation per call. The memo must reproduce it bit-exactly.
func unmemoizedMeasurer(arch memsim.Arch, s shapes.ConvShape, kind Kind) Measurer {
	return func(c conv.Config) (Measurement, bool) {
		var res conv.Result
		var err error
		if kind == Winograd {
			res, err = conv.DryWinogradFused(arch, s, c)
		} else {
			res, err = conv.DryDirectTiled(arch, s, c)
		}
		if err != nil || math.IsInf(res.Seconds, 1) {
			return Measurement{}, false
		}
		return Measurement{Seconds: res.Seconds, GFLOPS: res.GFLOPS}, true
	}
}

// testConfigs draws a mixed bag of configurations: the space's seeds, random
// admissible samples, and mutations that may be invalid (wrong Sb, huge
// tiles) — the memo must agree with the unmemoized path on all of them.
func testConfigs(t *testing.T, sp *Space, n int, seed int64) []conv.Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfgs := sp.SeedConfigs()
	for i := 0; i < n; i++ {
		c := sp.Sample(rng)
		cfgs = append(cfgs, c)
		// Thread/Sb/layout variants of the same tile exercise the shared
		// counts entry; the mutations below may be invalid on purpose.
		v := c
		v.ThreadsX, v.ThreadsY, v.ThreadsZ = 1, 1, 1
		cfgs = append(cfgs, v)
		v = c
		v.SharedPerBlock = 64
		cfgs = append(cfgs, v)
		v = c
		v.Layout = (v.Layout + 1) % 3
		cfgs = append(cfgs, v)
		v = c
		v.TileZ = sp.Shape.Cout * 4
		cfgs = append(cfgs, v)
	}
	return cfgs
}

// The memoized measurer must be bit-identical to the unmemoized dry path on
// every config — valid or not — across kinds, layouts and architectures,
// including re-evaluations served from the memo.
func TestMemoMeasureMatchesUnmemoized(t *testing.T) {
	cases := []struct {
		arch memsim.Arch
		s    shapes.ConvShape
		kind Kind
		e    int
	}{
		{memsim.V100, shapes.ConvShape{Batch: 1, Cin: 16, Hin: 28, Win: 28, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}, Direct, 0},
		{memsim.GTX1080Ti, shapes.ConvShape{Batch: 2, Cin: 8, Hin: 27, Win: 27, Cout: 24, Hker: 5, Wker: 5, Strid: 2, Pad: 2}, Direct, 0},
		{memsim.V100, shapes.ConvShape{Batch: 1, Cin: 16, Hin: 28, Win: 28, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}, Winograd, 2},
		{memsim.GFX906, shapes.ConvShape{Batch: 1, Cin: 4, Hin: 13, Win: 13, Cout: 8, Hker: 3, Wker: 3, Strid: 1}, Winograd, 2},
	}
	for _, tc := range cases {
		sp, err := NewSpace(tc.s, tc.arch, tc.kind, tc.e, true)
		if err != nil {
			t.Fatal(err)
		}
		memo := NewMemoMeasure(tc.arch, tc.s, tc.kind)
		raw := unmemoizedMeasurer(tc.arch, tc.s, tc.kind)
		cfgs := testConfigs(t, sp, 40, 11)
		// Two passes: the second is served entirely from the memo.
		for pass := 0; pass < 2; pass++ {
			for _, c := range cfgs {
				gm, gok := memo.Measure(c)
				wm, wok := raw(c)
				if gok != wok || gm != wm {
					t.Fatalf("%s %v pass %d %v: memo (%v, %v) != raw (%v, %v)",
						tc.arch.Name, tc.kind, pass, c, gm, gok, wm, wok)
				}
			}
		}
		if memo.Len() == 0 {
			t.Fatalf("%s %v: memo never populated", tc.arch.Name, tc.kind)
		}
	}
}

// Concurrent callers hammering one memo (the executor's access pattern with
// Workers > 1) must all observe the same results as a serial evaluation.
// Run under -race in CI.
func TestMemoMeasureConcurrent(t *testing.T) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 16, Hin: 28, Win: 28, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	sp, err := NewSpace(s, arch, Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemoMeasure(arch, s, Direct)
	raw := unmemoizedMeasurer(arch, s, Direct)
	cfgs := testConfigs(t, sp, 30, 7)

	want := make([]Measurement, len(cfgs))
	wantOK := make([]bool, len(cfgs))
	for i, c := range cfgs {
		want[i], wantOK[i] = raw(c)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the configs in a different order.
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < 4*len(cfgs); it++ {
				i := rng.Intn(len(cfgs))
				m, ok := memo.Measure(cfgs[i])
				if ok != wantOK[i] || m != want[i] {
					errs <- cfgs[i].String()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent memo measurement diverged on %s", bad)
	}
}

// A whole tuning run driven by the memoized measurer must be bit-identical
// to the same run on the unmemoized path: same best config, same curve.
func TestTuneWithMemoBitIdentical(t *testing.T) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 16, Hin: 28, Win: 28, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	opts := DefaultOptions()
	opts.Budget = 48
	opts.Patience = 0

	for _, kind := range []Kind{Direct, Winograd} {
		e := 0
		if kind == Winograd {
			e = 2
		}
		sp, err := NewSpace(s, arch, kind, e, true)
		if err != nil {
			t.Fatal(err)
		}
		memoTrace, err := Tune(sp, NewMemoMeasure(arch, s, kind).Measure, opts)
		if err != nil {
			t.Fatal(err)
		}
		rawTrace, err := Tune(sp, unmemoizedMeasurer(arch, s, kind), opts)
		if err != nil {
			t.Fatal(err)
		}
		if memoTrace.Best != rawTrace.Best || memoTrace.BestM != rawTrace.BestM ||
			memoTrace.ConvergedAt != rawTrace.ConvergedAt {
			t.Fatalf("%v: memo trace %+v diverges from raw %+v", kind, memoTrace, rawTrace)
		}
		if len(memoTrace.Curve) != len(rawTrace.Curve) {
			t.Fatalf("%v: curve lengths differ", kind)
		}
		for i := range memoTrace.Curve {
			if memoTrace.Curve[i] != rawTrace.Curve[i] {
				t.Fatalf("%v: curve diverges at %d: %g != %g", kind, i, memoTrace.Curve[i], rawTrace.Curve[i])
			}
		}
	}
}
