package autotune

import (
	"fmt"
	"strings"

	"repro/internal/conv"
	"repro/internal/shapes"
)

// This file is the template manager's user-facing artifact (Figure 8): it
// renders a configuration as the loop-nest schedule the low-level kernel
// would implement, so a developer can read exactly what a tuned
// configuration means before porting it to a real backend.

// EmitSchedule renders the kernel schedule of a configuration for a layer
// as indented pseudo-code. kind selects the Section 5.2 direct template,
// the Section 5.3 fused Winograd template, or the FFT / implicit-GEMM
// variants. Grouped layers slide over the Cin/G channels of one group; the
// grid line shows the group count through the shape's String.
func EmitSchedule(kind Kind, s shapes.ConvShape, c conv.Config) string {
	var b strings.Builder
	w := func(depth int, format string, args ...interface{}) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	bx := (s.Wout() + c.TileX - 1) / c.TileX
	by := (s.Hout() + c.TileY - 1) / c.TileY
	bz := (s.Cout + c.TileZ - 1) / c.TileZ
	cin := s.Cin / s.G()
	if kind == FFT {
		lh, lw := conv.FFTGrid(s)
		bx = lw / c.TileX
		by = lh / c.TileY
	}

	w(0, "// %s template for %v", kind, s)
	w(0, "// grid: %d x %d x %d x %d blocks, %d threads/block (%dx%dx%d), Sb=%d floats, layout %v",
		bx, by, bz, s.Batch, c.Threads(), c.ThreadsX, c.ThreadsY, c.ThreadsZ, c.SharedPerBlock, c.Layout)
	switch kind {
	case Direct:
		xp := s.Strid*c.TileX + s.Wker - s.Strid
		yp := s.Strid*c.TileY + s.Hker - s.Strid
		w(0, "__shared__ float out[%d]   // %dx%dx%d output sub-block, resident throughout",
			c.TileX*c.TileY*c.TileZ, c.TileX, c.TileY, c.TileZ)
		w(0, "__shared__ float in[%d]    // %dx%d halo'd input tile, one channel", xp*yp, xp, yp)
		w(0, "__shared__ float wgt[%d]   // %dx%d weights for %d kernels", s.Hker*s.Wker*c.TileZ, s.Hker, s.Wker, c.TileZ)
		w(0, "zero(out)")
		w(0, "for c in 0..%d {                 // channel-sliding, alpha = 1", cin)
		w(1, "load in  <- image[c] tile        // %d floats, once per channel", xp*yp)
		w(1, "load wgt <- kernels[z0:z0+%d][c] // %d floats", c.TileZ, s.Hker*s.Wker*c.TileZ)
		w(1, "parallel (tx,ty,tz) in %dx%dx%d threads:", c.ThreadsX, c.ThreadsY, c.ThreadsZ)
		w(2, "for (x,y,z) in my %dx%dx%d slice of the tile:",
			c.TileX/c.ThreadsX, c.TileY/c.ThreadsY, c.TileZ/c.ThreadsZ)
		w(3, "out[x,y,z] += dot(in[window(x,y)], wgt[z])  // %dx%d taps", s.Hker, s.Wker)
		w(0, "}")
		w(0, "store out -> output sub-block     // written exactly once")
	case Winograd:
		e := c.WinogradE
		r := s.Hker
		alpha := e + r - 1
		subs := ((c.TileX + e - 1) / e) * ((c.TileY + e - 1) / e)
		w(0, "__shared__ float Pi[%d]    // %d sub-tiles x %d channels x %dx%d accumulators",
			subs*c.TileZ*alpha*alpha, subs, c.TileZ, alpha, alpha)
		w(0, "__shared__ float Lam[%d]   // second temporary array (paper, Section 5.3)", subs*c.TileZ*alpha*alpha)
		w(0, "zero(Pi)")
		w(0, "for c in 0..%d {", s.Cin)
		w(1, "load in <- image[c] halo tile")
		w(1, "V[t] = B^T . in[t] . B       for each of %d sub-tiles   // F(%dx%d,%dx%d)", subs, e, e, r, r)
		w(1, "for k in 0..%d {", c.TileZ)
		w(2, "load g <- kernels[z0+k][c]   // %d raw weights", r*r)
		w(2, "U = G . g . G^T              // on-chip filter transform")
		w(2, "Pi[t,k] += U (*) V[t]        for each sub-tile  // element-wise")
		w(1, "}")
		w(0, "}")
		w(0, "Y[t,k] = A^T . Pi[t,k] . A   // %dx%d outputs per sub-tile", e, e)
		w(0, "store Y -> output sub-block")
	case FFT:
		f := c.TileX * c.TileY
		w(0, "// phases 1 (input FFT), 2 (kernel FFT) and 4 (inverse FFT) are")
		w(0, "// fixed library launches; this schedule is the tunable phase 3.")
		w(0, "__shared__ float acc[%d]   // %dx%dx%d complex frequency tile, double-buffered",
			4*f*c.TileZ, c.TileX, c.TileY, c.TileZ)
		w(0, "__shared__ float in[%d]    // one channel's complex frequency tile, double-buffered", 4*f)
		w(0, "zero(acc)")
		w(0, "for c in 0..%d {                 // channels of my group", cin)
		w(1, "load in  <- Image_hat[c] tile    // %d complex values", f)
		w(1, "load wgt <- Kernel_hat[z0:z0+%d][c] tile", c.TileZ)
		w(1, "parallel (tx,ty,tz) in %dx%dx%d threads:", c.ThreadsX, c.ThreadsY, c.ThreadsZ)
		w(2, "acc[x,y,z] += in[x,y] * wgt[x,y,z]   // complex multiply-add")
		w(0, "}")
		w(0, "store acc -> Out_hat sub-block    // phase 4 inverse-transforms it")
	case ImplicitGEMM:
		w(0, "__shared__ float out[%d]   // %dx%dx%d output sub-block, resident throughout",
			c.TileX*c.TileY*c.TileZ, c.TileX, c.TileY, c.TileZ)
		w(0, "__shared__ float in[%d]    // gathered im2col slice, double-buffered (no halo)", 2*c.TileX*c.TileY)
		w(0, "__shared__ float wgt[%d]   // %dx%d taps for %d kernels", s.Hker*s.Wker*c.TileZ, s.Hker, s.Wker, c.TileZ)
		w(0, "zero(out)")
		w(0, "for c in 0..%d {                 // channels of my group", cin)
		w(1, "load wgt <- kernels[z0:z0+%d][c] // %d floats", c.TileZ, s.Hker*s.Wker*c.TileZ)
		w(1, "for (kh,kw) in %dx%d taps {", s.Hker, s.Wker)
		w(2, "gather in <- image[c] at (%d*y+kh, %d*x+kw)  // strided im2col gather", s.Strid, s.Strid)
		w(2, "parallel (tx,ty,tz) in %dx%dx%d threads:", c.ThreadsX, c.ThreadsY, c.ThreadsZ)
		w(3, "out[x,y,z] += in[x,y] * wgt[z][kh,kw]  // rank-1 GEMM update")
		w(1, "}")
		w(0, "}")
		w(0, "store out -> output sub-block     // written exactly once")
	}
	return b.String()
}
