package autotune

import (
	"math"
	"sort"
)

// This file implements the learned cost model: gradient-boosted regression
// trees with squared loss, the same model family (XGBoost) the paper's
// engine and TVM both use. Stdlib only, built from scratch.

// GBTConfig holds the boosting hyperparameters.
type GBTConfig struct {
	Trees        int     // number of boosting rounds
	MaxDepth     int     // tree depth limit
	MinSamples   int     // minimum samples to split a node
	LearningRate float64 // shrinkage
	Thresholds   int     // candidate split thresholds per feature
}

// DefaultGBTConfig mirrors common XGBoost-for-autotuning settings.
func DefaultGBTConfig() GBTConfig {
	return GBTConfig{Trees: 60, MaxDepth: 4, MinSamples: 4, LearningRate: 0.3, Thresholds: 16}
}

// GBTModel is a fitted gradient-boosted tree ensemble predicting a scalar
// cost (the tuner trains it on log simulated runtime).
type GBTModel struct {
	cfg   GBTConfig
	base  float64
	trees []*treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	leaf      bool
}

// TrainGBT fits the ensemble on (x, y). It panics on empty or ragged input.
func TrainGBT(cfg GBTConfig, x [][]float64, y []float64) *GBTModel {
	if len(x) == 0 || len(x) != len(y) {
		panic("autotune: bad training set")
	}
	m := &GBTModel{cfg: cfg}
	m.base = mean(y)
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.base
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < cfg.Trees; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := buildTree(cfg, x, resid, idx, 0)
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.predict(x[i])
		}
	}
	return m
}

// Predict returns the modeled cost for one feature vector.
func (m *GBTModel) Predict(features []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.cfg.LearningRate * t.predict(features)
	}
	return out
}

// PredictBatch predicts every row of x into out (reused when its capacity
// suffices, allocated otherwise) and returns it. Iterating trees in the
// outer loop keeps each tree hot in cache across the whole batch; the
// summation order per row matches Predict exactly, so batched and
// per-config predictions are bit-identical.
func (m *GBTModel) PredictBatch(x [][]float64, out []float64) []float64 {
	if cap(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	for i := range out {
		out[i] = m.base
	}
	for _, t := range m.trees {
		for i, f := range x {
			out[i] += m.cfg.LearningRate * t.predict(f)
		}
	}
	return out
}

func (n *treeNode) predict(f []float64) float64 {
	for !n.leaf {
		if f[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// buildTree grows one regression tree on the residuals of the rows in idx.
func buildTree(cfg GBTConfig, x [][]float64, resid []float64, idx []int, depth int) *treeNode {
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamples {
		return &treeNode{leaf: true, value: meanAt(resid, idx)}
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	total, totalSq := sums(resid, idx)
	baseSSE := totalSq - total*total/float64(len(idx))

	nf := len(x[idx[0]])
	vals := make([]float64, 0, len(idx))
	for f := 0; f < nf; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, x[i][f])
		}
		for _, thr := range candidateThresholds(vals, cfg.Thresholds) {
			var lSum, lSq, lN float64
			for _, i := range idx {
				if x[i][f] <= thr {
					lSum += resid[i]
					lSq += resid[i] * resid[i]
					lN++
				}
			}
			rN := float64(len(idx)) - lN
			if lN < 1 || rN < 1 {
				continue
			}
			rSum := total - lSum
			rSq := totalSq - lSq
			sse := (lSq - lSum*lSum/lN) + (rSq - rSum*rSum/rN)
			if gain := baseSSE - sse; gain > bestGain+1e-12 {
				bestFeat, bestThr, bestGain = f, thr, gain
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: meanAt(resid, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      buildTree(cfg, x, resid, left, depth+1),
		right:     buildTree(cfg, x, resid, right, depth+1),
	}
}

// candidateThresholds returns up to k midpoints between distinct sorted
// values.
func candidateThresholds(vals []float64, k int) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	cuts := len(uniq) - 1
	step := 1
	if cuts > k {
		step = cuts / k
	}
	var out []float64
	for i := 0; i < cuts; i += step {
		out = append(out, (uniq[i]+uniq[i+1])/2)
	}
	return out
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func meanAt(v []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += v[i]
	}
	return s / float64(len(idx))
}

func sums(v []float64, idx []int) (sum, sumSq float64) {
	for _, i := range idx {
		sum += v[i]
		sumSq += v[i] * v[i]
	}
	return sum, sumSq
}

// RMSE is a convenience for model-quality tests.
func (m *GBTModel) RMSE(x [][]float64, y []float64) float64 {
	var s float64
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}
