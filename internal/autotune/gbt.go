package autotune

import (
	"math"
	"sort"
)

// This file implements the learned cost model: gradient-boosted regression
// trees with squared loss, the same model family (XGBoost) the paper's
// engine and TVM both use. Stdlib only, built from scratch.
//
// The trainer is built for the tuning loop's access pattern — the dataset
// grows by one small batch per engine iteration — so it supports warm-start
// refits: Update keeps the fitted trees and boosts additional rounds
// against the residuals over the grown dataset. Split finding runs on
// per-feature presorted column indices that are built once and merged
// incrementally as batches arrive, replacing the per-node value sort of a
// naive implementation with a single prefix sweep per (node, feature).

// GBTConfig holds the boosting hyperparameters.
type GBTConfig struct {
	Trees        int     // number of boosting rounds of a full fit
	MaxDepth     int     // tree depth limit
	MinSamples   int     // minimum samples to split a node
	LearningRate float64 // shrinkage
	Thresholds   int     // candidate split thresholds per feature
	// UpdateTrees is how many fresh boosting rounds one warm-start Update
	// fits — the engine's per-batch refit size.
	UpdateTrees int
}

// DefaultGBTConfig mirrors common XGBoost-for-autotuning settings.
func DefaultGBTConfig() GBTConfig {
	return GBTConfig{Trees: 60, MaxDepth: 4, MinSamples: 4, LearningRate: 0.3, Thresholds: 16, UpdateTrees: 8}
}

// GBTModel is a fitted gradient-boosted tree ensemble predicting a scalar
// cost (the tuner trains it on log simulated runtime). Beyond the trees it
// retains its training state — rows, per-row ensemble predictions, and the
// presorted column indices — so Update can continue boosting where the
// last fit stopped.
type GBTModel struct {
	cfg   GBTConfig
	base  float64
	trees []*treeNode

	x    [][]float64
	y    []float64
	pred []float64 // current ensemble prediction per training row
	cols [][]int32 // per feature: row ids ordered by (value, row)

	sc trainScratch
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	leaf      bool
}

// trainScratch holds the recycled buffers of the level-wise tree grower;
// nothing here survives a fit except as garbage-free capacity.
type trainScratch struct {
	resid   []float64 // per-row residual for the tree being fit
	nodeOf  []int32   // per-row active-node id (-1 once settled in a leaf)
	flatVal []float64 // column values grouped by node, in sorted order
	flatRes []float64 // residuals aligned with flatVal
	cur     []int     // per-node write cursor into the flat arrays
	newIdx  []int32   // column-merge scratch for freshly ingested rows
}

// TrainGBT fits the ensemble on (x, y). It panics on empty or ragged
// input. The returned model supports warm-start refits via Update.
func TrainGBT(cfg GBTConfig, x [][]float64, y []float64) *GBTModel {
	if len(x) == 0 || len(x) != len(y) {
		panic("autotune: bad training set")
	}
	m := &GBTModel{cfg: cfg}
	m.base = mean(y)
	m.ingest(x, y)
	m.boost(cfg.Trees)
	return m
}

// Update warm-starts the model on a grown dataset: x and y must extend the
// rows the model was trained on (earlier rows unchanged, new rows
// appended). The fitted trees are kept; rounds fresh trees are boosted
// against the residuals over the whole grown dataset. Calling Update with
// the original dataset is exactly equivalent to a full retrain whose
// configured rounds match the total — the split between TrainGBT and
// Update does not change a single bit of the model (tests pin this).
func (m *GBTModel) Update(x [][]float64, y []float64, rounds int) {
	if len(x) != len(y) || len(x) < len(m.x) {
		panic("autotune: Update dataset must extend the trained rows")
	}
	m.ingest(x, y)
	m.boost(rounds)
}

// NumTrees reports the fitted boosting rounds so far.
func (m *GBTModel) NumTrees() int { return len(m.trees) }

// NumRows reports the training rows the model currently holds — prior
// (transferred) rows plus everything ingested since.
func (m *GBTModel) NumRows() int { return len(m.x) }

// ingest adopts the grown dataset: it predicts the new rows under the
// current forest and merges them into the presorted column indices.
func (m *GBTModel) ingest(x [][]float64, y []float64) {
	old := len(m.x)
	if old == 0 {
		m.cols = make([][]int32, len(x[0]))
	}
	for i := old; i < len(x); i++ {
		m.pred = append(m.pred, m.Predict(x[i]))
	}
	m.x, m.y = x, y
	for f := range m.cols {
		m.cols[f] = m.mergeColumn(m.cols[f], f, old)
	}
}

// mergeColumn extends one presorted column index with rows old..len(x)-1:
// the new ids are sorted by (value, row) and merged from the back into the
// (possibly regrown) backing array, so steady-state updates reuse storage.
func (m *GBTModel) mergeColumn(col []int32, f, old int) []int32 {
	n := len(m.x)
	if old == n {
		return col
	}
	idx := m.sc.newIdx[:0]
	for r := old; r < n; r++ {
		idx = append(idx, int32(r))
	}
	m.sc.newIdx = idx
	vals := m.x
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if vals[a][f] != vals[b][f] {
			return vals[a][f] < vals[b][f]
		}
		return a < b
	})
	if cap(col) < n {
		grown := make([]int32, len(col), n+n/2)
		copy(grown, col)
		col = grown
	}
	// Backward merge: fill positions n-1..0 from the tails of the old index
	// and the new batch; positions below the write cursor are still unread
	// old entries, so the merge is safely in place.
	col = col[:n]
	i, j := old-1, len(idx)-1
	for w := n - 1; j >= 0; w-- {
		if i >= 0 && colAfter(vals, f, col[i], idx[j]) {
			col[w] = col[i]
			i--
		} else {
			col[w] = idx[j]
			j--
		}
	}
	return col
}

// colAfter reports whether row a orders after row b in column f.
func colAfter(x [][]float64, f int, a, b int32) bool {
	if x[a][f] != x[b][f] {
		return x[a][f] > x[b][f]
	}
	return a > b
}

// boost fits rounds more trees on the current residuals.
func (m *GBTModel) boost(rounds int) {
	for t := 0; t < rounds; t++ {
		tree := m.fitTree()
		m.trees = append(m.trees, tree)
		for i := range m.pred {
			m.pred[i] += m.cfg.LearningRate * tree.predict(m.x[i])
		}
	}
}

// growNode is one frontier node of the level-wise tree grower.
type growNode struct {
	tn       *treeNode
	count    int
	sum      float64 // residual sum over members, accumulated in row order
	sumSq    float64
	bestFeat int
	bestThr  float64
	bestGain float64
}

// fitTree grows one regression tree on the residuals y − pred, level by
// level: each level distributes every feature column (already sorted) into
// per-node segments with one linear pass, finds each node's best split with
// a prefix sweep over its segment, and reassigns rows to the children in a
// single row-order pass. No sorting happens per node.
func (m *GBTModel) fitTree() *treeNode {
	n := len(m.x)
	cfg := m.cfg
	sc := &m.sc
	sc.resid = grow(sc.resid, n)
	sc.nodeOf = grow(sc.nodeOf, n)
	sc.flatVal = grow(sc.flatVal, n)
	sc.flatRes = grow(sc.flatRes, n)

	root := &treeNode{}
	level := []growNode{{tn: root, bestFeat: -1}}
	for i := 0; i < n; i++ {
		sc.nodeOf[i] = 0
		r := m.y[i] - m.pred[i]
		sc.resid[i] = r
		level[0].count++
		level[0].sum += r
		level[0].sumSq += r * r
	}

	kThr := cfg.Thresholds
	if kThr < 1 {
		kThr = 1
	}
	for depth := 0; len(level) > 0; depth++ {
		// Settle the nodes that may not split (depth or sample limits, as in
		// a plain recursive grower) and renumber the splitters 0..k-1.
		splitters := 0
		for g := range level {
			node := &level[g]
			if depth >= cfg.MaxDepth || node.count < cfg.MinSamples {
				node.tn.leaf = true
				node.tn.value = node.sum / float64(node.count)
				node.bestFeat = -2 // settled
			} else {
				node.bestFeat = -1
				node.bestGain = 0
				// count is repurposed to hold the node's renumbered
				// splitter id; the member count is recomputed from nodeOf
				// in the renumber pass below and restored after compaction.
				node.count, splitters = splitters, splitters+1
			}
		}
		if splitters == 0 {
			break
		}
		// Renumber nodeOf to the splitter ids (settled rows go to -1) and
		// recount members per splitter (count was repurposed as the id).
		counts := grow(sc.cur, splitters)
		sc.cur = counts
		for j := range counts {
			counts[j] = 0
		}
		for i := 0; i < n; i++ {
			g := sc.nodeOf[i]
			if g < 0 {
				continue
			}
			if level[g].bestFeat == -2 {
				sc.nodeOf[i] = -1
				continue
			}
			id := int32(level[g].count)
			sc.nodeOf[i] = id
			counts[id]++
		}
		// Compact the frontier to just the splitters, restoring counts and
		// recomputing offsets.
		frontier := level[:0]
		for g := range level {
			if level[g].bestFeat != -2 {
				frontier = append(frontier, level[g])
			}
		}
		level = frontier
		offsets := make([]int, splitters+1)
		for j := 0; j < splitters; j++ {
			level[j].count = counts[j]
			offsets[j+1] = offsets[j] + counts[j]
		}

		// Split search: one pass per feature distributes the presorted
		// column into per-node segments; each segment is then swept once.
		for f := range m.cols {
			cur := counts[:0]
			cur = append(cur, offsets[:splitters]...)
			for _, r := range m.cols[f] {
				g := sc.nodeOf[r]
				if g < 0 {
					continue
				}
				sc.flatVal[cur[g]] = m.x[r][f]
				sc.flatRes[cur[g]] = sc.resid[r]
				cur[g]++
			}
			for j := 0; j < splitters; j++ {
				m.sweepSegment(&level[j], f, sc.flatVal[offsets[j]:offsets[j+1]], sc.flatRes[offsets[j]:offsets[j+1]], kThr)
			}
		}

		// Materialize the splits and reassign rows to children in row order
		// (so child sums accumulate exactly as a recursive grower's would).
		next := make([]growNode, 0, 2*splitters)
		childOf := make([]int32, splitters) // left child id; right is +1
		for j := 0; j < splitters; j++ {
			node := &level[j]
			if node.bestFeat < 0 {
				node.tn.leaf = true
				node.tn.value = node.sum / float64(node.count)
				childOf[j] = -1
				continue
			}
			node.tn.feature = node.bestFeat
			node.tn.threshold = node.bestThr
			node.tn.left = &treeNode{}
			node.tn.right = &treeNode{}
			childOf[j] = int32(len(next))
			next = append(next,
				growNode{tn: node.tn.left, bestFeat: -1},
				growNode{tn: node.tn.right, bestFeat: -1})
		}
		for i := 0; i < n; i++ {
			j := sc.nodeOf[i]
			if j < 0 {
				continue
			}
			c := childOf[j]
			if c < 0 {
				sc.nodeOf[i] = -1
				continue
			}
			node := &level[j]
			if m.x[i][node.bestFeat] > node.bestThr {
				c++
			}
			sc.nodeOf[i] = c
			r := sc.resid[i]
			next[c].count++
			next[c].sum += r
			next[c].sumSq += r * r
		}
		level = next
	}
	return root
}

// sweepSegment finds the best split of one node on one feature. vals/res
// hold the node's members in ascending value order; candidate thresholds
// are up to kThr midpoints between distinct adjacent values (stride-
// subsampled exactly like a sorted-uniques scan), and each candidate's
// gain comes from running prefix sums — one linear sweep replaces the
// per-threshold passes of a naive grower. Ties keep the first (lowest
// feature, lowest threshold) candidate, matching in-order search.
func (m *GBTModel) sweepSegment(node *growNode, f int, vals, res []float64, kThr int) {
	cuts := 0
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			cuts++
		}
	}
	if cuts < 1 {
		return
	}
	step := 1
	if cuts > kThr {
		step = cuts / kThr
	}
	total, totalSq := node.sum, node.sumSq
	baseSSE := totalSq - total*total/float64(node.count)
	var lSum, lSq float64
	lN := 0
	b := 0
	for i := 0; i < len(vals); {
		v := vals[i]
		for i < len(vals) && vals[i] == v {
			r := res[i]
			lSum += r
			lSq += r * r
			lN++
			i++
		}
		if i >= len(vals) {
			break
		}
		if b%step == 0 {
			rN := node.count - lN
			rSum := total - lSum
			rSq := totalSq - lSq
			sse := (lSq - lSum*lSum/float64(lN)) + (rSq - rSum*rSum/float64(rN))
			if gain := baseSSE - sse; gain > node.bestGain+1e-12 {
				node.bestFeat, node.bestThr, node.bestGain = f, (v+vals[i])/2, gain
			}
		}
		b++
	}
}

// Predict returns the modeled cost for one feature vector.
func (m *GBTModel) Predict(features []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.cfg.LearningRate * t.predict(features)
	}
	return out
}

// PredictBatch predicts every row of x into out (reused when its capacity
// suffices, allocated otherwise) and returns it. Iterating trees in the
// outer loop keeps each tree hot in cache across the whole batch; the
// summation order per row matches Predict exactly, so batched and
// per-config predictions are bit-identical.
func (m *GBTModel) PredictBatch(x [][]float64, out []float64) []float64 {
	if cap(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	for i := range out {
		out[i] = m.base
	}
	for _, t := range m.trees {
		for i, f := range x {
			out[i] += m.cfg.LearningRate * t.predict(f)
		}
	}
	return out
}

func (n *treeNode) predict(f []float64) float64 {
	for !n.leaf {
		if f[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// grow resizes a recycled buffer to n elements, reallocating with slack
// only when the capacity is short. Contents are unspecified.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n, n+n/2)
	}
	return buf[:n]
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// RMSE is a convenience for model-quality tests.
func (m *GBTModel) RMSE(x [][]float64, y []float64) float64 {
	var s float64
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}
