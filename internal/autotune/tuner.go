package autotune

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// Measurement is the outcome of measuring one configuration on the
// simulated hardware (the template manager's job in Figure 8).
type Measurement struct {
	Seconds float64
	GFLOPS  float64
}

// Measurer runs one configuration and reports its cost; ok is false for
// configurations that fail to build or exceed resources (TVM's "timeout"
// measurements).
type Measurer func(conv.Config) (Measurement, bool)

// DirectMeasurer measures configs with the Section 5.2 dataflow on arch
// (dry: exact counts, no data). The returned Measurer carries its own
// counts memo (see MemoMeasure): repeated evaluations of configs sharing a
// tile are O(1) lookups, with results bit-identical to conv.DirectTiledDry.
func DirectMeasurer(arch memsim.Arch, s shapes.ConvShape) Measurer {
	return NewMemoMeasure(arch, s, Direct).Measure
}

// WinogradMeasurer measures configs with the Section 5.3 fused Winograd
// dataflow on arch, memoized like DirectMeasurer.
func WinogradMeasurer(arch memsim.Arch, s shapes.ConvShape) Measurer {
	return NewMemoMeasure(arch, s, Winograd).Measure
}

// KindMeasurer measures configs with the dataflow of any algorithm kind,
// memoized like DirectMeasurer. It is the generic constructor behind the
// per-kind helpers and the network tuner's per-layer kernel choice.
func KindMeasurer(arch memsim.Arch, s shapes.ConvShape, kind Kind) Measurer {
	return NewMemoMeasure(arch, s, kind).Measure
}

// MeasuredConfig is one measurement record of a tuning run: the
// configuration, its outcome and whether it measured successfully. Traces
// carry the full record stream (Trace.History); it is the raw material of
// cross-layer warm pools and of cache-persisted resume.
type MeasuredConfig struct {
	Config conv.Config
	M      Measurement
	OK     bool
}

// WarmStart is the transfer seam of Tune: everything a search may inherit
// from related, already-finished searches instead of starting cold.
type WarmStart struct {
	// Feats/Costs are prior training rows for the cost model, in this
	// space's feature encoding with costs normalized to zero mean per
	// source layer (the model only ranks candidates within one layer, so
	// only relative cost transfers). The engine fits its initial model on
	// them and continues via GBTModel.Update as its own measurements
	// arrive.
	Feats [][]float64
	Costs []float64
	// Seeds are incumbent configurations from related layers. They are
	// snapped onto this space's axes and measured first, so the walkers
	// start from transferred incumbents instead of random guesses.
	Seeds []conv.Config
	// History is this exact key's own prior measurement stream (from a
	// persisted cache entry). It is replayed — marked seen, booked into
	// the trace and the training set — without re-measuring anything, so a
	// resumed search at a higher budget continues where it stopped. When
	// History is set, Feats/Costs are ignored: the key's own rows beat
	// transferred ones.
	History []MeasuredConfig
}

// Options controls a tuning run.
type Options struct {
	// Budget is the maximum number of measurements.
	Budget int
	// BatchSize is how many configurations are measured per iteration
	// (between cost-model refits).
	BatchSize int
	// Walkers is n_s, the number of parallel random walks of the explorer.
	Walkers int
	// WalkSteps is how many model-guided steps each walker takes per
	// iteration.
	WalkSteps int
	// Patience stops the run after this many measurements without
	// improvement (0 disables).
	Patience int
	// MinDelta is the relative improvement (in measured seconds) below
	// which an improvement does not reset Patience — the min_delta of
	// classic early stopping. The best configuration still updates on any
	// improvement; MinDelta only governs when the run is considered
	// converged, so a search polishing its incumbent by sub-MinDelta slivers
	// retires instead of paying Patience again per sliver. 0 (the default)
	// keeps the strict behavior: every improvement resets Patience.
	MinDelta float64
	// Seed makes runs deterministic.
	Seed int64
	// NoSeeds disables the Section-5 dataflow-design starting
	// configurations. The TVM-proxy runs use this: an external tuner has no
	// knowledge of the paper's optimality condition.
	NoSeeds bool
	// NoPrune disables bound-guided pruning: with it set, every selected
	// candidate is measured even when the I/O lower bound already proves it
	// cannot beat the best measured configuration. The TVM-proxy and
	// ablation runs use this — an external tuner has no lower-bound oracle
	// — and it is the switch behind cmd/autotune's -no-prune flag.
	NoPrune bool
	// Workers is how many goroutines the measurement executor fans each
	// batch of candidates across (default 1). The best configuration, the
	// convergence curve and every other engine output are bit-identical for
	// any worker count given a fixed Seed: candidates are chosen before the
	// batch is dispatched and outcomes are recorded in submission order.
	Workers int
	// MeasureLatency emulates the per-measurement hardware round-trip
	// (compile + launch + read-back) that the dry simulator elides. Real
	// auto-tuners parallelize measurement precisely to overlap this wait;
	// with Workers > 1 the executor does the same.
	MeasureLatency time.Duration
	// Warm, when non-nil, warm-starts the search: prior model rows, seed
	// configurations from related layers, and/or this key's own persisted
	// history to resume from. nil reproduces the cold engine bit-for-bit.
	Warm *WarmStart
	// OnMeasure, when non-nil, is called once per fresh measurement, after
	// its outcome is booked. Replayed history and bound-pruned candidates
	// do not count. The tuning service uses it to account measurement work
	// across concurrent requests; it must be cheap and safe for concurrent
	// use, and it must not influence the search (the engine's outputs are
	// identical with or without it).
	OnMeasure func()
	// Retry configures the fault-tolerant measurement pipeline (retry with
	// backoff, quarantine, noisy-reading defense). The zero value with an
	// error-free measurer reproduces the fault-oblivious engine
	// bit-for-bit; see RetryPolicy.
	Retry RetryPolicy
	// OnRetry, when non-nil, is called once per transient-failure retry.
	// Like OnMeasure it must be cheap, concurrency-safe and must not
	// influence the search.
	OnRetry func()
	// OnQuarantine, when non-nil, is called once per configuration
	// quarantined after Retry.MaxAttempts consecutive transient failures.
	OnQuarantine func()
}

// DefaultOptions are sensible mid-size tuning settings.
func DefaultOptions() Options {
	return Options{Budget: 400, BatchSize: 8, Walkers: 8, WalkSteps: 24, Patience: 120, Seed: 1, Workers: 1}
}

func (o Options) normalized() Options {
	if o.Budget < 1 {
		o.Budget = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	if o.Walkers < 1 {
		o.Walkers = 1
	}
	if o.WalkSteps < 1 {
		o.WalkSteps = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Trace records a tuning run: the best configuration found and the
// best-so-far curve per measurement (Figure 11's series).
type Trace struct {
	Method       string
	Best         conv.Config
	BestM        Measurement
	Curve        []float64 // best GFLOPS after each measurement
	Measurements int
	// ConvergedAt is the measurement index (1-based) of the last
	// improvement — the paper's "iterations" column in Table 2.
	ConvergedAt int
	// Pruned counts the candidates the bound-guided filter discarded
	// without measuring: their lower-bound-implied time already exceeded
	// the best measured time. Always 0 with Options.NoPrune (the baseline
	// searchers are bound-blind and never prune).
	Pruned int
	// History records every measurement in submission order (replayed
	// history included, on a resumed run). Cache.PutTrace persists it and
	// the network tuner's transfer pool is built from it.
	History []MeasuredConfig
	// Budget is the measurement budget the run was given (normalized).
	// Persisted with the trace, it lets a resume request distinguish "this
	// search stopped early on patience at this very budget" (covered —
	// nothing to continue) from "this search ran out of a smaller budget"
	// (resume with the remainder).
	Budget int
	// Partial marks a run cut short by context cancellation or deadline:
	// Best/BestM are the best-so-far verdict, not the converged one. On a
	// partial run Budget is lowered to Measurements, so a persisted trace
	// resumes honestly — a repeated request continues the search instead of
	// treating the truncated run as full coverage.
	Partial bool
	// Retries counts transient-failure measurement re-attempts (see
	// Options.Retry); 0 on the default path.
	Retries int
	// Quarantined counts configurations abandoned after
	// Retry.MaxAttempts consecutive transient failures. A quarantined
	// config is booked as a failed measurement (alongside Pruned it is the
	// other way a candidate leaves the run without a reading).
	Quarantined int
	// Remeasured counts the extra readings the noisy-reading defense took
	// (they do not consume Budget: budget accounts configurations, not
	// raw readings).
	Remeasured int
}

// record is the shared bookkeeping of all strategies.
type record struct {
	trace Trace
	found bool
	// minDelta is Options.MinDelta: improvements smaller than this relative
	// threshold update the best but do not reset patience.
	minDelta float64
	// sigAt is the measurement index of the last significant (> minDelta)
	// improvement; with minDelta 0 it equals trace.ConvergedAt.
	sigAt int
	// resumedAt is how many measurements were replayed from persisted
	// history rather than performed; patience only counts fresh ones.
	resumedAt int
}

func (r *record) add(c conv.Config, m Measurement, ok bool) {
	r.trace.Measurements++
	r.trace.History = append(r.trace.History, MeasuredConfig{Config: c, M: m, OK: ok})
	if ok && (!r.found || m.Seconds < r.trace.BestM.Seconds) {
		if !r.found || r.trace.BestM.Seconds-m.Seconds > r.minDelta*r.trace.BestM.Seconds {
			r.sigAt = r.trace.Measurements
		}
		r.found = true
		r.trace.Best = c
		r.trace.BestM = m
		r.trace.ConvergedAt = r.trace.Measurements
	}
	r.trace.Curve = append(r.trace.Curve, r.trace.BestM.GFLOPS)
}

func (r *record) stale(patience int) bool {
	since := r.sigAt
	if r.resumedAt > since {
		since = r.resumedAt
	}
	return patience > 0 && r.found && r.trace.Measurements-since >= patience
}

// Tune runs the paper's auto-tuning engine (Figure 8): iterate
// {refit the cost model on all measurements so far; explore with n_s
// parallel model-guided random walks from the current best configurations;
// measure the proposals; update the dataset} until the budget or patience
// is exhausted. Each batch of proposals is measured by the worker-pool
// executor (opts.Workers goroutines); outcomes are recorded in submission
// order, so the run is deterministic for a fixed seed at any worker count.
//
// Three things keep the engine's own machinery off the critical path:
//
//   - Bound-guided pruning (unless opts.NoPrune): the I/O-lower-bound
//     oracle (Space.BoundSeconds) runs inside proposal generation itself.
//     Walkers reject Neighbor moves into (Sb, e) tiers whose floor already
//     exceeds the incumbent before any model prediction, the candidate
//     pool is bound-filtered before the batched ranking prediction, and
//     the measurement batch re-checks survivors against the (possibly
//     improved) incumbent. Provably-worse candidates are counted in
//     Trace.Pruned. Because the bound is a true floor on every
//     measurement, pruning can never discard a configuration that would
//     have improved the verdict.
//
// A non-nil opts.Warm transfers state from related searches: prior model
// rows fit the initial cost model, transferred incumbent configs are
// snapped into the space and measured first (replacing most of the cold
// start's random guesses), and a persisted history replays without
// re-measuring so a cached search resumes at a higher budget. With
// opts.Warm nil the engine is bit-identical to the cold path.
//   - Warm-started cost model: the GBT forest is kept across iterations
//     and refit incrementally (GBTModel.Update) on the grown dataset, with
//     a full retrain only when the forest would exceed its size cap.
//   - Heap-based ranking: walker proposals and the best-measured set are
//     maintained by bounded max-heaps with recycled backing arrays
//     instead of full sorts.
func Tune(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	return TuneContext(context.Background(), sp, measure, opts)
}

// TuneContext is Tune bounded by a context: when ctx is cancelled or its
// deadline passes, the run stops claiming new measurements (in-flight ones
// finish — a device run cannot be recalled) and returns the best-so-far
// verdict with Trace.Partial set instead of an error, provided at least one
// valid configuration measured. The Section 5 seed configurations are
// always measured, even under an already-expired context, so any run over a
// space with valid seeds produces a verdict.
func TuneContext(ctx context.Context, sp *Space, measure Measurer, opts Options) (*Trace, error) {
	return tuneFallible(ctx, sp, liftMeasurer(measure), opts)
}

// TuneFallible is TuneContext over the error-aware measurement seam: the
// measurer may report transient failures, which the engine retries,
// backs off and quarantines per opts.Retry. See FallibleMeasurer and
// RetryPolicy.
func TuneFallible(ctx context.Context, sp *Space, measure FallibleMeasurer, opts Options) (*Trace, error) {
	return tuneFallible(ctx, sp, measure, opts)
}

func tuneFallible(ctx context.Context, sp *Space, measure FallibleMeasurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "ate", Budget: opts.Budget}, minDelta: opts.MinDelta}

	warm := opts.Warm
	resume := warm != nil && len(warm.History) > 0
	transfer := warm != nil && !resume &&
		len(warm.Feats) > 0 && len(warm.Feats) == len(warm.Costs)

	// Training rows are slices into one growing backing array (featStore):
	// featurizing a measurement appends NumFeatures floats instead of
	// allocating a fresh vector per config.
	var feats [][]float64
	var featStore []float64
	var costs []float64
	seen := make(map[conv.Config]bool)
	// top holds the best measured configs (by real cost); they re-seed the
	// walkers each iteration — the paper's "promising configurations are
	// saved as the initial guesses for the next searching step".
	var top bestK
	top.reset(opts.Walkers)

	// Transferred rows live on a per-source-layer normalized cost scale
	// (zero mean); the layer's own rows are re-centered by the first
	// successful measurement's log-cost so both populations are
	// commensurable. Predictions are only ever compared between candidates
	// of this one layer, so a constant offset never changes a ranking. On
	// the cold path the offset stays 0 and rows are raw log-seconds,
	// bit-identical to the pre-warm engine.
	costOffset, offsetSet := 0.0, !transfer

	addRow := func(c conv.Config, cost float64) {
		start := len(featStore)
		featStore = sp.FeaturesInto(featStore, c)
		feats = append(feats, featStore[start:len(featStore):len(featStore)])
		costs = append(costs, cost)
	}

	// res is the fault-tolerance pipeline around the measurer: retry with
	// seeded backoff, quarantine, noisy-reading defense. With the zero
	// RetryPolicy and an error-free measurer every run() is exactly one
	// measure() call, so the default path is untouched.
	res := newResilient(measure, sp, opts.Retry, opts.Seed)

	// measureBatch dedups the candidates against everything measured so
	// far, drops the ones the lower bound proves non-improving, truncates
	// to the remaining budget, fans the survivors across the executor's
	// workers, and books the outcomes in submission order. The batch and
	// result buffers are reused across calls. Under a cancelled batchCtx
	// only the contiguous prefix of completed outcomes is booked (see
	// fanIndexedCtx), keeping a partial trace coherent.
	var batchBuf []conv.Config
	var resultBuf []outcome
	measureBatch := func(batchCtx context.Context, cands []conv.Config) {
		batch := batchBuf[:0]
		for _, c := range cands {
			if rec.trace.Measurements+len(batch) >= opts.Budget {
				break
			}
			if seen[c] {
				continue
			}
			// Branch-and-bound: once any configuration has been measured,
			// a candidate whose bound-implied time exceeds the incumbent
			// cannot improve it — skip the measurement entirely. The best
			// only ever decreases, so marking the candidate seen is safe:
			// it would be pruned again at any later threshold.
			if !opts.NoPrune && rec.found && sp.BoundSeconds(c) > rec.trace.BestM.Seconds {
				seen[c] = true
				rec.trace.Pruned++
				continue
			}
			seen[c] = true
			batch = append(batch, c)
		}
		batchBuf = batch
		if cap(resultBuf) < len(batch) {
			resultBuf = make([]outcome, len(batch))
		}
		resultBuf = resultBuf[:len(batch)]
		done := fanIndexedCtx(batchCtx, len(batch), opts.Workers, func(i int) {
			if opts.MeasureLatency > 0 {
				time.Sleep(opts.MeasureLatency)
			}
			resultBuf[i] = res.run(batchCtx, batch[i])
		})
		for i, c := range batch[:done] {
			out := resultBuf[i]
			rec.add(c, out.m, out.ok)
			rec.trace.Retries += out.retries
			rec.trace.Remeasured += out.remeasured
			if out.quarantined {
				rec.trace.Quarantined++
				if opts.OnQuarantine != nil {
					opts.OnQuarantine()
				}
			}
			if opts.OnRetry != nil {
				for r := 0; r < out.retries; r++ {
					opts.OnRetry()
				}
			}
			if opts.OnMeasure != nil {
				opts.OnMeasure()
			}
			cost := 20.0 // a large log-cost for failed configs
			if out.ok {
				cost = math.Log(out.m.Seconds)
				if !offsetSet {
					costOffset, offsetSet = cost, true
				}
				cost -= costOffset
				top.push(scored{c, out.m.Seconds})
			}
			addRow(c, cost)
		}
	}

	// The cost model is warm-started: the forest persists across
	// iterations and each refit boosts UpdateTrees fresh rounds against
	// the residuals over the grown dataset. Two situations fall back to a
	// full retrain: tiny datasets (below warmStartRows a full fit is cheap
	// and early trees overfit the first few measurements, so keeping them
	// hurts guidance exactly when each measurement matters most) and a
	// forest at its size cap (prediction cost grows with forest size).
	gcfg := DefaultGBTConfig()
	updateRounds := gcfg.UpdateTrees
	if updateRounds < 1 {
		updateRounds = 8
	}
	maxForest := 4 * gcfg.Trees
	const warmStartRows = 64
	var model *GBTModel

	if resume {
		// Replay the persisted history: every prior measurement is marked
		// seen and booked into the trace and the training set without
		// re-measuring, so continuing at a higher budget performs zero
		// repeat measurements and the cost model picks up via Update on
		// the replayed rows.
		for _, h := range warm.History {
			if seen[h.Config] {
				continue
			}
			seen[h.Config] = true
			rec.add(h.Config, h.M, h.OK)
			cost := 20.0
			if h.OK {
				cost = math.Log(h.M.Seconds)
				top.push(scored{h.Config, h.M.Seconds})
			}
			addRow(h.Config, cost)
		}
		rec.resumedAt = rec.trace.Measurements
	} else if transfer {
		// Fit the initial cost model on the transferred rows; the layer's
		// own rows append behind them, so every later refit continues via
		// GBTModel.Update over the combined dataset.
		feats = append(make([][]float64, 0, len(warm.Feats)+opts.Budget), warm.Feats...)
		costs = append(make([]float64, 0, len(warm.Costs)+opts.Budget), warm.Costs...)
		model = TrainGBT(gcfg, feats, costs)
	}

	// The coarse-grained Section 5 dataflow designs are the first
	// measurements — the engine refines them, as in the paper — followed
	// by transferred incumbents (snapped onto this space's axes) and, on a
	// cold start, 3x Walkers random guesses that seed the walkers and the
	// model. A genuinely warm start (prior rows, transferred seeds or a
	// replayed history) drops the random phase entirely: the model and the
	// incumbents are already populated, and the per-iteration diversity
	// samples inside the loop keep exploring — which is what lets a
	// transferred layer retire after a handful of measurements once the
	// bound filter proves nothing sampled can beat its incumbent.
	if !opts.NoSeeds {
		// The seed batch runs unconditionally — even under an
		// already-expired ctx — so a deadline-bounded run over a space with
		// valid seeds always has a verdict to report.
		measureBatch(context.Background(), sp.SeedConfigs())
	}
	seeded := false
	if warm != nil && len(warm.Seeds) > 0 {
		snapped := make([]conv.Config, 0, len(warm.Seeds))
		for _, s := range warm.Seeds {
			if c, ok := sp.Snap(s); ok {
				snapped = append(snapped, c)
			}
		}
		// Seeds that cannot land anywhere in this space inherit nothing;
		// only an actually-snapped seed counts as a warm start below.
		seeded = len(snapped) > 0
		measureBatch(ctx, snapped)
	}
	initRandom := 3 * opts.Walkers
	if resume || transfer || seeded {
		initRandom = 0
	}
	if b := opts.Budget / 4; b < initRandom {
		initRandom = b
	}
	initial := make([]conv.Config, 0, initRandom)
	for i := 0; i < initRandom; i++ {
		initial = append(initial, sp.Sample(rng))
	}
	measureBatch(ctx, initial)

	// Scratch reused across iterations: walker feature buffers, the ranking
	// feature matrix (rows into one backing array), its predictions, and
	// the bounded heaps' extraction buffers.
	var walkFeat []float64
	var rankCfgs []conv.Config
	var rankFeats [][]float64
	var rankStore, rankPreds []float64
	var rank bestK
	var startsBuf, pickedBuf []scored
	var candBuf []conv.Config
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		if ctx.Err() != nil {
			break // deadline or cancellation: report best-so-far below
		}
		if len(feats) == 0 {
			// Degenerate budgets can reach the loop before any measurement
			// (no seeds, zero initial randoms); feed the model one sample.
			measureBatch(ctx, []conv.Config{sp.Sample(rng)})
			continue
		}
		if model == nil || len(feats) < warmStartRows || model.NumTrees()+updateRounds > maxForest {
			model = TrainGBT(gcfg, feats, costs)
		} else {
			model.Update(feats, costs, updateRounds)
		}
		// Build a candidate pool: every unseen config visited by the n_s
		// parallel random walks (started from the best measured configs),
		// plus fresh random samples for diversity. The lower-bound oracle
		// filters the pool as it forms — a candidate whose (Sb, e) tier
		// floor already exceeds the incumbent is discarded (and counted
		// pruned) before it can occupy a ranking slot, so the batched
		// prediction ranks only configurations that could still win.
		pool := make(map[conv.Config]bool)
		addCand := func(c conv.Config) {
			if seen[c] || pool[c] {
				return
			}
			if !opts.NoPrune && rec.found && sp.BoundSeconds(c) > rec.trace.BestM.Seconds {
				seen[c] = true
				rec.trace.Pruned++
				return
			}
			pool[c] = true
		}
		// In-walk bound guidance, for warm-started searches: Neighbor moves
		// into (Sb, e) tiers whose floor cannot beat the incumbent are
		// rejected inside the step — before the model is consulted — and
		// the walker retries another direction. Warm incumbents are near
		// final from measurement #1, so the rejections steer walkers
		// straight at the viable tiers; against a cold search's weak early
		// incumbent the same restriction only injects trajectory variance
		// (measured on the Figure 13 layers), so the cold walk stays free
		// and relies on the pool filter below.
		walkLimit := math.Inf(1)
		if !opts.NoPrune && warm != nil && rec.found {
			walkLimit = rec.trace.BestM.Seconds
		}
		starts := top.sorted(startsBuf)
		startsBuf = starts
		for i := 0; i < opts.Walkers; i++ {
			start := sp.Sample(rng)
			if i < len(starts) {
				start = starts[i].cfg
			}
			cur := start
			walkFeat = sp.FeaturesInto(walkFeat[:0], cur)
			curCost := model.Predict(walkFeat)
			for step := 0; step < opts.WalkSteps; step++ {
				next := sp.NeighborBound(cur, rng, walkLimit)
				walkFeat = sp.FeaturesInto(walkFeat[:0], next)
				nextCost := model.Predict(walkFeat)
				if nextCost < curCost || rng.Float64() < 0.1 {
					cur, curCost = next, nextCost
				}
				addCand(cur)
			}
		}
		for i := 0; i < 4*opts.BatchSize; i++ {
			addCand(sp.Sample(rng))
		}
		if len(pool) == 0 {
			break // space exhausted
		}
		// Rank the pool by predicted cost — one batched prediction over the
		// candidate slice, then a bounded heap keeps the BatchSize most
		// promising (exact cost ties fall back to the configLess total
		// order, so the pick is independent of map iteration order).
		rankCfgs = rankCfgs[:0]
		rankFeats = rankFeats[:0]
		rankStore = rankStore[:0]
		for c := range pool {
			rankCfgs = append(rankCfgs, c)
			start := len(rankStore)
			rankStore = sp.FeaturesInto(rankStore, c)
			rankFeats = append(rankFeats, rankStore[start:len(rankStore):len(rankStore)])
		}
		rankPreds = model.PredictBatch(rankFeats, rankPreds)
		rank.reset(opts.BatchSize)
		for i, c := range rankCfgs {
			rank.push(scored{c, rankPreds[i]})
		}
		picked := rank.sorted(pickedBuf)
		pickedBuf = picked
		candBuf = candBuf[:0]
		for _, s := range picked {
			candBuf = append(candBuf, s.cfg)
		}
		measureBatch(ctx, candBuf)
	}
	if !rec.found {
		return nil, fmt.Errorf("autotune: no valid configuration found in %d measurements", rec.trace.Measurements)
	}
	if ctx.Err() != nil && rec.trace.Measurements < opts.Budget {
		// Cut short: the verdict is best-so-far, and the honest budget for a
		// persisted trace is what actually ran — a repeat request resumes
		// the search instead of trusting truncated coverage.
		rec.trace.Partial = true
		rec.trace.Budget = rec.trace.Measurements
	}
	return &rec.trace, nil
}
