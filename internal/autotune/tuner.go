package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// Measurement is the outcome of measuring one configuration on the
// simulated hardware (the template manager's job in Figure 8).
type Measurement struct {
	Seconds float64
	GFLOPS  float64
}

// Measurer runs one configuration and reports its cost; ok is false for
// configurations that fail to build or exceed resources (TVM's "timeout"
// measurements).
type Measurer func(conv.Config) (Measurement, bool)

// DirectMeasurer measures configs with the Section 5.2 dataflow on arch
// (dry: exact counts, no data). The returned Measurer carries its own
// counts memo (see MemoMeasure): repeated evaluations of configs sharing a
// tile are O(1) lookups, with results bit-identical to conv.DirectTiledDry.
func DirectMeasurer(arch memsim.Arch, s shapes.ConvShape) Measurer {
	return NewMemoMeasure(arch, s, Direct).Measure
}

// WinogradMeasurer measures configs with the Section 5.3 fused Winograd
// dataflow on arch, memoized like DirectMeasurer.
func WinogradMeasurer(arch memsim.Arch, s shapes.ConvShape) Measurer {
	return NewMemoMeasure(arch, s, Winograd).Measure
}

// Options controls a tuning run.
type Options struct {
	// Budget is the maximum number of measurements.
	Budget int
	// BatchSize is how many configurations are measured per iteration
	// (between cost-model refits).
	BatchSize int
	// Walkers is n_s, the number of parallel random walks of the explorer.
	Walkers int
	// WalkSteps is how many model-guided steps each walker takes per
	// iteration.
	WalkSteps int
	// Patience stops the run after this many measurements without
	// improvement (0 disables).
	Patience int
	// Seed makes runs deterministic.
	Seed int64
	// NoSeeds disables the Section-5 dataflow-design starting
	// configurations. The TVM-proxy runs use this: an external tuner has no
	// knowledge of the paper's optimality condition.
	NoSeeds bool
	// Workers is how many goroutines the measurement executor fans each
	// batch of candidates across (default 1). The best configuration, the
	// convergence curve and every other engine output are bit-identical for
	// any worker count given a fixed Seed: candidates are chosen before the
	// batch is dispatched and outcomes are recorded in submission order.
	Workers int
	// MeasureLatency emulates the per-measurement hardware round-trip
	// (compile + launch + read-back) that the dry simulator elides. Real
	// auto-tuners parallelize measurement precisely to overlap this wait;
	// with Workers > 1 the executor does the same.
	MeasureLatency time.Duration
}

// DefaultOptions are sensible mid-size tuning settings.
func DefaultOptions() Options {
	return Options{Budget: 400, BatchSize: 8, Walkers: 8, WalkSteps: 24, Patience: 120, Seed: 1, Workers: 1}
}

func (o Options) normalized() Options {
	if o.Budget < 1 {
		o.Budget = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	if o.Walkers < 1 {
		o.Walkers = 1
	}
	if o.WalkSteps < 1 {
		o.WalkSteps = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Trace records a tuning run: the best configuration found and the
// best-so-far curve per measurement (Figure 11's series).
type Trace struct {
	Method       string
	Best         conv.Config
	BestM        Measurement
	Curve        []float64 // best GFLOPS after each measurement
	Measurements int
	// ConvergedAt is the measurement index (1-based) of the last
	// improvement — the paper's "iterations" column in Table 2.
	ConvergedAt int
}

// record is the shared bookkeeping of all strategies.
type record struct {
	trace Trace
	found bool
}

func (r *record) add(c conv.Config, m Measurement, ok bool) {
	r.trace.Measurements++
	if ok && (!r.found || m.Seconds < r.trace.BestM.Seconds) {
		r.found = true
		r.trace.Best = c
		r.trace.BestM = m
		r.trace.ConvergedAt = r.trace.Measurements
	}
	r.trace.Curve = append(r.trace.Curve, r.trace.BestM.GFLOPS)
}

func (r *record) stale(patience int) bool {
	return patience > 0 && r.found && r.trace.Measurements-r.trace.ConvergedAt >= patience
}

// Tune runs the paper's auto-tuning engine (Figure 8): iterate
// {train cost model on all measurements so far; explore with n_s parallel
// model-guided random walks from the current best configurations; measure
// the proposals; update the dataset} until the budget or patience is
// exhausted. Each batch of proposals is measured by the worker-pool
// executor (opts.Workers goroutines); outcomes are recorded in submission
// order, so the run is deterministic for a fixed seed at any worker count.
func Tune(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "ate"}}

	// Training rows are slices into one growing backing array (featStore):
	// featurizing a measurement appends NumFeatures floats instead of
	// allocating a fresh vector per config.
	var feats [][]float64
	var featStore []float64
	var costs []float64
	seen := make(map[conv.Config]bool)
	// topK holds the best measured configs (by real cost); they re-seed the
	// walkers each iteration — the paper's "promising configurations are
	// saved as the initial guesses for the next searching step".
	type scored struct {
		cfg  conv.Config
		cost float64
	}
	var topK []scored

	// measureBatch dedups the candidates against everything measured so
	// far, truncates to the remaining budget, fans the survivors across the
	// executor's workers, and books the outcomes in submission order. The
	// batch and result buffers are reused across calls.
	var batchBuf []conv.Config
	var resultBuf []measured
	measureBatch := func(cands []conv.Config) {
		batch := batchBuf[:0]
		for _, c := range cands {
			if rec.trace.Measurements+len(batch) >= opts.Budget {
				break
			}
			if seen[c] {
				continue
			}
			seen[c] = true
			batch = append(batch, c)
		}
		batchBuf = batch
		resultBuf = measureAllInto(resultBuf, measure, batch, opts.Workers, opts.MeasureLatency)
		for i, c := range batch {
			m, ok := resultBuf[i].m, resultBuf[i].ok
			rec.add(c, m, ok)
			cost := 20.0 // a large log-cost for failed configs
			if ok {
				cost = math.Log(m.Seconds)
				topK = append(topK, scored{c, m.Seconds})
				sort.Slice(topK, func(i, j int) bool { return topK[i].cost < topK[j].cost })
				if len(topK) > opts.Walkers {
					topK = topK[:opts.Walkers]
				}
			}
			start := len(featStore)
			featStore = sp.FeaturesInto(featStore, c)
			feats = append(feats, featStore[start:len(featStore):len(featStore)])
			costs = append(costs, cost)
		}
	}

	// The coarse-grained Section 5 dataflow designs are the first
	// measurements — the engine refines them, as in the paper — followed by
	// random guesses that seed the walkers and the model.
	if !opts.NoSeeds {
		measureBatch(sp.SeedConfigs())
	}
	initRandom := 3 * opts.Walkers
	if b := opts.Budget / 4; b < initRandom {
		initRandom = b
	}
	initial := make([]conv.Config, 0, initRandom)
	for i := 0; i < initRandom; i++ {
		initial = append(initial, sp.Sample(rng))
	}
	measureBatch(initial)

	// Scratch reused across iterations: walker feature buffers, the ranking
	// feature matrix (rows into one backing array) and its predictions.
	var walkFeat []float64
	var rankCfgs []conv.Config
	var rankFeats [][]float64
	var rankStore, rankPreds []float64
	var rankedBuf []scored
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		model := TrainGBT(DefaultGBTConfig(), feats, costs)
		// Build a candidate pool: every unseen config visited by the n_s
		// parallel random walks (started from the best measured configs),
		// plus fresh random samples for diversity.
		pool := make(map[conv.Config]bool)
		for i := 0; i < opts.Walkers; i++ {
			start := sp.Sample(rng)
			if i < len(topK) {
				start = topK[i].cfg
			}
			cur := start
			walkFeat = sp.FeaturesInto(walkFeat[:0], cur)
			curCost := model.Predict(walkFeat)
			for step := 0; step < opts.WalkSteps; step++ {
				next := sp.Neighbor(cur, rng)
				walkFeat = sp.FeaturesInto(walkFeat[:0], next)
				nextCost := model.Predict(walkFeat)
				if nextCost < curCost || rng.Float64() < 0.1 {
					cur, curCost = next, nextCost
				}
				if !seen[cur] {
					pool[cur] = true
				}
			}
		}
		for i := 0; i < 4*opts.BatchSize; i++ {
			if c := sp.Sample(rng); !seen[c] {
				pool[c] = true
			}
		}
		if len(pool) == 0 {
			break // space exhausted
		}
		// Rank the pool by predicted cost — one batched prediction over the
		// candidate slice instead of a model call per config — and measure
		// the most promising.
		rankCfgs = rankCfgs[:0]
		rankFeats = rankFeats[:0]
		rankStore = rankStore[:0]
		for c := range pool {
			rankCfgs = append(rankCfgs, c)
			start := len(rankStore)
			rankStore = sp.FeaturesInto(rankStore, c)
			rankFeats = append(rankFeats, rankStore[start:len(rankStore):len(rankStore)])
		}
		rankPreds = model.PredictBatch(rankFeats, rankPreds)
		ranked := rankedBuf[:0]
		for i, c := range rankCfgs {
			ranked = append(ranked, scored{c, rankPreds[i]})
		}
		rankedBuf = ranked
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].cost != ranked[j].cost {
				return ranked[i].cost < ranked[j].cost
			}
			return ranked[i].cfg.String() < ranked[j].cfg.String() // determinism
		})
		batch := make([]conv.Config, 0, opts.BatchSize)
		for i := 0; i < len(ranked) && i < opts.BatchSize; i++ {
			batch = append(batch, ranked[i].cfg)
		}
		measureBatch(batch)
	}
	if !rec.found {
		return nil, fmt.Errorf("autotune: no valid configuration found in %d measurements", rec.trace.Measurements)
	}
	return &rec.trace, nil
}
