package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// Measurement is the outcome of measuring one configuration on the
// simulated hardware (the template manager's job in Figure 8).
type Measurement struct {
	Seconds float64
	GFLOPS  float64
}

// Measurer runs one configuration and reports its cost; ok is false for
// configurations that fail to build or exceed resources (TVM's "timeout"
// measurements).
type Measurer func(conv.Config) (Measurement, bool)

// DirectMeasurer measures configs with the Section 5.2 dataflow on arch
// (dry: exact counts, no data). The returned Measurer carries its own
// counts memo (see MemoMeasure): repeated evaluations of configs sharing a
// tile are O(1) lookups, with results bit-identical to conv.DirectTiledDry.
func DirectMeasurer(arch memsim.Arch, s shapes.ConvShape) Measurer {
	return NewMemoMeasure(arch, s, Direct).Measure
}

// WinogradMeasurer measures configs with the Section 5.3 fused Winograd
// dataflow on arch, memoized like DirectMeasurer.
func WinogradMeasurer(arch memsim.Arch, s shapes.ConvShape) Measurer {
	return NewMemoMeasure(arch, s, Winograd).Measure
}

// Options controls a tuning run.
type Options struct {
	// Budget is the maximum number of measurements.
	Budget int
	// BatchSize is how many configurations are measured per iteration
	// (between cost-model refits).
	BatchSize int
	// Walkers is n_s, the number of parallel random walks of the explorer.
	Walkers int
	// WalkSteps is how many model-guided steps each walker takes per
	// iteration.
	WalkSteps int
	// Patience stops the run after this many measurements without
	// improvement (0 disables).
	Patience int
	// Seed makes runs deterministic.
	Seed int64
	// NoSeeds disables the Section-5 dataflow-design starting
	// configurations. The TVM-proxy runs use this: an external tuner has no
	// knowledge of the paper's optimality condition.
	NoSeeds bool
	// NoPrune disables bound-guided pruning: with it set, every selected
	// candidate is measured even when the I/O lower bound already proves it
	// cannot beat the best measured configuration. The TVM-proxy and
	// ablation runs use this — an external tuner has no lower-bound oracle
	// — and it is the switch behind cmd/autotune's -no-prune flag.
	NoPrune bool
	// Workers is how many goroutines the measurement executor fans each
	// batch of candidates across (default 1). The best configuration, the
	// convergence curve and every other engine output are bit-identical for
	// any worker count given a fixed Seed: candidates are chosen before the
	// batch is dispatched and outcomes are recorded in submission order.
	Workers int
	// MeasureLatency emulates the per-measurement hardware round-trip
	// (compile + launch + read-back) that the dry simulator elides. Real
	// auto-tuners parallelize measurement precisely to overlap this wait;
	// with Workers > 1 the executor does the same.
	MeasureLatency time.Duration
}

// DefaultOptions are sensible mid-size tuning settings.
func DefaultOptions() Options {
	return Options{Budget: 400, BatchSize: 8, Walkers: 8, WalkSteps: 24, Patience: 120, Seed: 1, Workers: 1}
}

func (o Options) normalized() Options {
	if o.Budget < 1 {
		o.Budget = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	if o.Walkers < 1 {
		o.Walkers = 1
	}
	if o.WalkSteps < 1 {
		o.WalkSteps = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Trace records a tuning run: the best configuration found and the
// best-so-far curve per measurement (Figure 11's series).
type Trace struct {
	Method       string
	Best         conv.Config
	BestM        Measurement
	Curve        []float64 // best GFLOPS after each measurement
	Measurements int
	// ConvergedAt is the measurement index (1-based) of the last
	// improvement — the paper's "iterations" column in Table 2.
	ConvergedAt int
	// Pruned counts the candidates the bound-guided filter discarded
	// without measuring: their lower-bound-implied time already exceeded
	// the best measured time. Always 0 with Options.NoPrune (the baseline
	// searchers are bound-blind and never prune).
	Pruned int
}

// record is the shared bookkeeping of all strategies.
type record struct {
	trace Trace
	found bool
}

func (r *record) add(c conv.Config, m Measurement, ok bool) {
	r.trace.Measurements++
	if ok && (!r.found || m.Seconds < r.trace.BestM.Seconds) {
		r.found = true
		r.trace.Best = c
		r.trace.BestM = m
		r.trace.ConvergedAt = r.trace.Measurements
	}
	r.trace.Curve = append(r.trace.Curve, r.trace.BestM.GFLOPS)
}

func (r *record) stale(patience int) bool {
	return patience > 0 && r.found && r.trace.Measurements-r.trace.ConvergedAt >= patience
}

// Tune runs the paper's auto-tuning engine (Figure 8): iterate
// {refit the cost model on all measurements so far; explore with n_s
// parallel model-guided random walks from the current best configurations;
// measure the proposals; update the dataset} until the budget or patience
// is exhausted. Each batch of proposals is measured by the worker-pool
// executor (opts.Workers goroutines); outcomes are recorded in submission
// order, so the run is deterministic for a fixed seed at any worker count.
//
// Three things keep the engine's own machinery off the critical path:
//
//   - Bound-guided pruning (unless opts.NoPrune): before a candidate is
//     measured, its I/O-lower-bound-implied time (Space.BoundSeconds) is
//     compared against the best measured time; provably-worse candidates
//     are skipped and counted in Trace.Pruned. Because the bound is a true
//     floor on every measurement, pruning can never discard a
//     configuration that would have improved the verdict.
//   - Warm-started cost model: the GBT forest is kept across iterations
//     and refit incrementally (GBTModel.Update) on the grown dataset, with
//     a full retrain only when the forest would exceed its size cap.
//   - Heap-based ranking: walker proposals and the best-measured set are
//     maintained by bounded max-heaps with recycled backing arrays
//     instead of full sorts.
func Tune(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "ate"}}

	// Training rows are slices into one growing backing array (featStore):
	// featurizing a measurement appends NumFeatures floats instead of
	// allocating a fresh vector per config.
	var feats [][]float64
	var featStore []float64
	var costs []float64
	seen := make(map[conv.Config]bool)
	// top holds the best measured configs (by real cost); they re-seed the
	// walkers each iteration — the paper's "promising configurations are
	// saved as the initial guesses for the next searching step".
	var top bestK
	top.reset(opts.Walkers)

	// measureBatch dedups the candidates against everything measured so
	// far, drops the ones the lower bound proves non-improving, truncates
	// to the remaining budget, fans the survivors across the executor's
	// workers, and books the outcomes in submission order. The batch and
	// result buffers are reused across calls.
	var batchBuf []conv.Config
	var resultBuf []measured
	measureBatch := func(cands []conv.Config) {
		batch := batchBuf[:0]
		for _, c := range cands {
			if rec.trace.Measurements+len(batch) >= opts.Budget {
				break
			}
			if seen[c] {
				continue
			}
			// Branch-and-bound: once any configuration has been measured,
			// a candidate whose bound-implied time exceeds the incumbent
			// cannot improve it — skip the measurement entirely. The best
			// only ever decreases, so marking the candidate seen is safe:
			// it would be pruned again at any later threshold.
			if !opts.NoPrune && rec.found && sp.BoundSeconds(c) > rec.trace.BestM.Seconds {
				seen[c] = true
				rec.trace.Pruned++
				continue
			}
			seen[c] = true
			batch = append(batch, c)
		}
		batchBuf = batch
		resultBuf = measureAllInto(resultBuf, measure, batch, opts.Workers, opts.MeasureLatency)
		for i, c := range batch {
			m, ok := resultBuf[i].m, resultBuf[i].ok
			rec.add(c, m, ok)
			cost := 20.0 // a large log-cost for failed configs
			if ok {
				cost = math.Log(m.Seconds)
				top.push(scored{c, m.Seconds})
			}
			start := len(featStore)
			featStore = sp.FeaturesInto(featStore, c)
			feats = append(feats, featStore[start:len(featStore):len(featStore)])
			costs = append(costs, cost)
		}
	}

	// The coarse-grained Section 5 dataflow designs are the first
	// measurements — the engine refines them, as in the paper — followed by
	// random guesses that seed the walkers and the model.
	if !opts.NoSeeds {
		measureBatch(sp.SeedConfigs())
	}
	initRandom := 3 * opts.Walkers
	if b := opts.Budget / 4; b < initRandom {
		initRandom = b
	}
	initial := make([]conv.Config, 0, initRandom)
	for i := 0; i < initRandom; i++ {
		initial = append(initial, sp.Sample(rng))
	}
	measureBatch(initial)

	// The cost model is warm-started: the forest persists across
	// iterations and each refit boosts UpdateTrees fresh rounds against
	// the residuals over the grown dataset. Two situations fall back to a
	// full retrain: tiny datasets (below warmStartRows a full fit is cheap
	// and early trees overfit the first few measurements, so keeping them
	// hurts guidance exactly when each measurement matters most) and a
	// forest at its size cap (prediction cost grows with forest size).
	gcfg := DefaultGBTConfig()
	updateRounds := gcfg.UpdateTrees
	if updateRounds < 1 {
		updateRounds = 8
	}
	maxForest := 4 * gcfg.Trees
	const warmStartRows = 64
	var model *GBTModel

	// Scratch reused across iterations: walker feature buffers, the ranking
	// feature matrix (rows into one backing array), its predictions, and
	// the bounded heaps' extraction buffers.
	var walkFeat []float64
	var rankCfgs []conv.Config
	var rankFeats [][]float64
	var rankStore, rankPreds []float64
	var rank bestK
	var startsBuf, pickedBuf []scored
	var candBuf []conv.Config
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		if len(feats) == 0 {
			// Degenerate budgets can reach the loop before any measurement
			// (no seeds, zero initial randoms); feed the model one sample.
			measureBatch([]conv.Config{sp.Sample(rng)})
			continue
		}
		if model == nil || len(feats) < warmStartRows || model.NumTrees()+updateRounds > maxForest {
			model = TrainGBT(gcfg, feats, costs)
		} else {
			model.Update(feats, costs, updateRounds)
		}
		// Build a candidate pool: every unseen config visited by the n_s
		// parallel random walks (started from the best measured configs),
		// plus fresh random samples for diversity.
		pool := make(map[conv.Config]bool)
		starts := top.sorted(startsBuf)
		startsBuf = starts
		for i := 0; i < opts.Walkers; i++ {
			start := sp.Sample(rng)
			if i < len(starts) {
				start = starts[i].cfg
			}
			cur := start
			walkFeat = sp.FeaturesInto(walkFeat[:0], cur)
			curCost := model.Predict(walkFeat)
			for step := 0; step < opts.WalkSteps; step++ {
				next := sp.Neighbor(cur, rng)
				walkFeat = sp.FeaturesInto(walkFeat[:0], next)
				nextCost := model.Predict(walkFeat)
				if nextCost < curCost || rng.Float64() < 0.1 {
					cur, curCost = next, nextCost
				}
				if !seen[cur] {
					pool[cur] = true
				}
			}
		}
		for i := 0; i < 4*opts.BatchSize; i++ {
			if c := sp.Sample(rng); !seen[c] {
				pool[c] = true
			}
		}
		if len(pool) == 0 {
			break // space exhausted
		}
		// Rank the pool by predicted cost — one batched prediction over the
		// candidate slice, then a bounded heap keeps the BatchSize most
		// promising (exact cost ties fall back to the configLess total
		// order, so the pick is independent of map iteration order).
		rankCfgs = rankCfgs[:0]
		rankFeats = rankFeats[:0]
		rankStore = rankStore[:0]
		for c := range pool {
			rankCfgs = append(rankCfgs, c)
			start := len(rankStore)
			rankStore = sp.FeaturesInto(rankStore, c)
			rankFeats = append(rankFeats, rankStore[start:len(rankStore):len(rankStore)])
		}
		rankPreds = model.PredictBatch(rankFeats, rankPreds)
		rank.reset(opts.BatchSize)
		for i, c := range rankCfgs {
			rank.push(scored{c, rankPreds[i]})
		}
		picked := rank.sorted(pickedBuf)
		pickedBuf = picked
		candBuf = candBuf[:0]
		for _, s := range picked {
			candBuf = append(candBuf, s.cfg)
		}
		measureBatch(candBuf)
	}
	if !rec.found {
		return nil, fmt.Errorf("autotune: no valid configuration found in %d measurements", rec.trace.Measurements)
	}
	return &rec.trace, nil
}
