package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/conv"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Cache persists tuning outcomes per (architecture, algorithm, layer shape),
// the way production libraries cache their autotuner's verdicts so repeated
// runs skip the search. Entries round-trip through JSON; the cache is safe
// for concurrent use.
type Cache struct {
	mu      sync.RWMutex
	entries map[string]CacheEntry
}

// CacheEntry is one persisted tuning outcome.
type CacheEntry struct {
	Arch    string       `json:"arch"`
	Kind    string       `json:"kind"`
	Shape   cachedShape  `json:"shape"`
	Config  cachedConfig `json:"config"`
	Seconds float64      `json:"seconds"`
	GFLOPS  float64      `json:"gflops"`
}

// cachedShape / cachedConfig mirror the internal structs with stable JSON
// field names, decoupling the file format from internal refactors.
type cachedShape struct {
	Batch, Cin, Hin, Win, Cout, Hker, Wker, Stride, Pad int
}

type cachedConfig struct {
	TileX, TileY, TileZ          int
	ThreadsX, ThreadsY, ThreadsZ int
	SharedPerBlock               int
	Layout                       int
	WinogradE                    int
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{entries: make(map[string]CacheEntry)} }

func cacheKey(archName string, kind Kind, s shapes.ConvShape) string {
	return fmt.Sprintf("%s|%s|%d,%d,%d,%d,%d,%d,%d,%d,%d", archName, kind,
		s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad)
}

// Put stores a tuning outcome.
func (c *Cache) Put(archName string, kind Kind, s shapes.ConvShape, cfg conv.Config, m Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[cacheKey(archName, kind, s)] = CacheEntry{
		Arch: archName, Kind: kind.String(),
		Shape: cachedShape{s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad},
		Config: cachedConfig{cfg.TileX, cfg.TileY, cfg.TileZ,
			cfg.ThreadsX, cfg.ThreadsY, cfg.ThreadsZ,
			cfg.SharedPerBlock, int(cfg.Layout), cfg.WinogradE},
		Seconds: m.Seconds, GFLOPS: m.GFLOPS,
	}
}

// Get retrieves a cached outcome, if any.
func (c *Cache) Get(archName string, kind Kind, s shapes.ConvShape) (conv.Config, Measurement, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[cacheKey(archName, kind, s)]
	if !ok {
		return conv.Config{}, Measurement{}, false
	}
	cfg := conv.Config{
		TileX: e.Config.TileX, TileY: e.Config.TileY, TileZ: e.Config.TileZ,
		ThreadsX: e.Config.ThreadsX, ThreadsY: e.Config.ThreadsY, ThreadsZ: e.Config.ThreadsZ,
		SharedPerBlock: e.Config.SharedPerBlock,
		Layout:         tensor.Layout(e.Config.Layout),
		WinogradE:      e.Config.WinogradE,
	}
	return cfg, Measurement{Seconds: e.Seconds, GFLOPS: e.GFLOPS}, true
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Save writes the cache as deterministic (key-sorted) JSON.
func (c *Cache) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]CacheEntry, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, c.entries[k])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}

// Load merges entries from JSON previously written by Save.
func (c *Cache) Load(r io.Reader) error {
	var entries []CacheEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("autotune: cache decode: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		s := shapes.ConvShape{
			Batch: e.Shape.Batch, Cin: e.Shape.Cin, Hin: e.Shape.Hin, Win: e.Shape.Win,
			Cout: e.Shape.Cout, Hker: e.Shape.Hker, Wker: e.Shape.Wker,
			Strid: e.Shape.Stride, Pad: e.Shape.Pad,
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("autotune: cache entry for %s: %w", e.Arch, err)
		}
		kind := Direct
		if e.Kind == Winograd.String() {
			kind = Winograd
		}
		c.entries[cacheKey(e.Arch, kind, s)] = e
	}
	return nil
}

// SaveFile and LoadFile are path-based conveniences.
func (c *Cache) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Save(f)
}

// LoadFile merges a cache file into c.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}

// TuneCached returns the cached best for (arch, kind, shape) or runs the
// engine and caches its verdict.
func TuneCached(cache *Cache, sp *Space, measure Measurer, opts Options) (conv.Config, Measurement, error) {
	if cfg, m, ok := cache.Get(sp.Arch.Name, sp.Kind, sp.Shape); ok {
		return cfg, m, nil
	}
	tr, err := Tune(sp, measure, opts)
	if err != nil {
		return conv.Config{}, Measurement{}, err
	}
	cache.Put(sp.Arch.Name, sp.Kind, sp.Shape, tr.Best, tr.BestM)
	return tr.Best, tr.BestM, nil
}
