package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/conv"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Cache persists tuning outcomes per (architecture, algorithm, layer shape),
// the way production libraries cache their autotuner's verdicts so repeated
// runs skip the search. Entries round-trip through JSON; the cache is safe
// for concurrent use. The entry map is sharded by key hash so the
// concurrent layer tuners of TuneNetwork don't contend on one lock, and an
// in-flight table deduplicates concurrent tuning of identical keys: when
// two goroutines ask for the same (arch, algorithm, shape) at once, one
// runs the search and the other waits for its verdict.
type Cache struct {
	shards [cacheShards]cacheShard

	flightMu sync.Mutex
	flight   map[string]*flightCall
}

const cacheShards = 32

type cacheShard struct {
	mu      sync.RWMutex
	entries map[string]CacheEntry
}

// flightCall is one in-progress tuning run other goroutines can wait on.
type flightCall struct {
	done chan struct{}
	cfg  conv.Config
	m    Measurement
	err  error
}

// CacheEntry is one persisted tuning outcome.
type CacheEntry struct {
	Arch    string       `json:"arch"`
	Kind    string       `json:"kind"`
	Shape   cachedShape  `json:"shape"`
	Config  cachedConfig `json:"config"`
	Seconds float64      `json:"seconds"`
	GFLOPS  float64      `json:"gflops"`
}

// cachedShape / cachedConfig mirror the internal structs with stable JSON
// field names, decoupling the file format from internal refactors.
type cachedShape struct {
	Batch, Cin, Hin, Win, Cout, Hker, Wker, Stride, Pad int
}

type cachedConfig struct {
	TileX, TileY, TileZ          int
	ThreadsX, ThreadsY, ThreadsZ int
	SharedPerBlock               int
	Layout                       int
	WinogradE                    int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{flight: make(map[string]*flightCall)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]CacheEntry)
	}
	return c
}

func cacheKey(archName string, kind Kind, s shapes.ConvShape) string {
	return fmt.Sprintf("%s|%s|%d,%d,%d,%d,%d,%d,%d,%d,%d", archName, kind,
		s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad)
}

// shardFor picks the shard of a key (FNV-1a).
func (c *Cache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

func (c *Cache) put(key string, e CacheEntry) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.entries[key] = e
	sh.mu.Unlock()
}

// Put stores a tuning outcome.
func (c *Cache) Put(archName string, kind Kind, s shapes.ConvShape, cfg conv.Config, m Measurement) {
	c.put(cacheKey(archName, kind, s), CacheEntry{
		Arch: archName, Kind: kind.String(),
		Shape: cachedShape{s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad},
		Config: cachedConfig{cfg.TileX, cfg.TileY, cfg.TileZ,
			cfg.ThreadsX, cfg.ThreadsY, cfg.ThreadsZ,
			cfg.SharedPerBlock, int(cfg.Layout), cfg.WinogradE},
		Seconds: m.Seconds, GFLOPS: m.GFLOPS,
	})
}

// Get retrieves a cached outcome, if any.
func (c *Cache) Get(archName string, kind Kind, s shapes.ConvShape) (conv.Config, Measurement, bool) {
	key := cacheKey(archName, kind, s)
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok {
		return conv.Config{}, Measurement{}, false
	}
	cfg := conv.Config{
		TileX: e.Config.TileX, TileY: e.Config.TileY, TileZ: e.Config.TileZ,
		ThreadsX: e.Config.ThreadsX, ThreadsY: e.Config.ThreadsY, ThreadsZ: e.Config.ThreadsZ,
		SharedPerBlock: e.Config.SharedPerBlock,
		Layout:         tensor.Layout(e.Config.Layout),
		WinogradE:      e.Config.WinogradE,
	}
	return cfg, Measurement{Seconds: e.Seconds, GFLOPS: e.GFLOPS}, true
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// snapshot copies every entry keyed by cache key.
func (c *Cache) snapshot() map[string]CacheEntry {
	all := make(map[string]CacheEntry)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, e := range sh.entries {
			all[k] = e
		}
		sh.mu.RUnlock()
	}
	return all
}

// Save writes the cache as deterministic (key-sorted) JSON.
func (c *Cache) Save(w io.Writer) error {
	all := c.snapshot()
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]CacheEntry, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, all[k])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}

// Load merges entries from JSON previously written by Save.
func (c *Cache) Load(r io.Reader) error {
	var entries []CacheEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("autotune: cache decode: %w", err)
	}
	for _, e := range entries {
		s := shapes.ConvShape{
			Batch: e.Shape.Batch, Cin: e.Shape.Cin, Hin: e.Shape.Hin, Win: e.Shape.Win,
			Cout: e.Shape.Cout, Hker: e.Shape.Hker, Wker: e.Shape.Wker,
			Strid: e.Shape.Stride, Pad: e.Shape.Pad,
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("autotune: cache entry for %s: %w", e.Arch, err)
		}
		kind := Direct
		if e.Kind == Winograd.String() {
			kind = Winograd
		}
		c.put(cacheKey(e.Arch, kind, s), e)
	}
	return nil
}

// SaveFile and LoadFile are path-based conveniences.
func (c *Cache) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Save(f)
}

// LoadFile merges a cache file into c.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}

// TuneCached returns the cached best for (arch, kind, shape) or runs the
// engine and caches its verdict. Concurrent callers with the same key share
// one search.
func TuneCached(cache *Cache, sp *Space, measure Measurer, opts Options) (conv.Config, Measurement, error) {
	cfg, m, _, err := tuneShared(cache, sp, measure, opts)
	return cfg, m, err
}

// tuneShared is TuneCached plus a report of whether the verdict was shared:
// satisfied from the cache, or joined onto another goroutine's in-flight
// search of the same key instead of running its own.
func tuneShared(cache *Cache, sp *Space, measure Measurer, opts Options) (conv.Config, Measurement, bool, error) {
	key := cacheKey(sp.Arch.Name, sp.Kind, sp.Shape)
	if cfg, m, ok := cache.Get(sp.Arch.Name, sp.Kind, sp.Shape); ok {
		return cfg, m, true, nil
	}
	cache.flightMu.Lock()
	if call, ok := cache.flight[key]; ok {
		cache.flightMu.Unlock()
		<-call.done
		return call.cfg, call.m, true, call.err
	}
	// Re-check under the flight lock: a racing search may have completed —
	// Put then delete its flight entry — between the Get above and here.
	if cfg, m, ok := cache.Get(sp.Arch.Name, sp.Kind, sp.Shape); ok {
		cache.flightMu.Unlock()
		return cfg, m, true, nil
	}
	call := &flightCall{done: make(chan struct{})}
	cache.flight[key] = call
	cache.flightMu.Unlock()

	tr, err := Tune(sp, measure, opts)
	if err == nil {
		call.cfg, call.m = tr.Best, tr.BestM
		cache.Put(sp.Arch.Name, sp.Kind, sp.Shape, tr.Best, tr.BestM)
	}
	call.err = err
	close(call.done)
	cache.flightMu.Lock()
	delete(cache.flight, key)
	cache.flightMu.Unlock()
	return call.cfg, call.m, false, err
}
