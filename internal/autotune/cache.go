package autotune

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/conv"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Cache persists tuning outcomes per (architecture, algorithm, layer shape),
// the way production libraries cache their autotuner's verdicts so repeated
// runs skip the search. Entries round-trip through JSON; the cache is safe
// for concurrent use. The entry map is sharded by key hash so the
// concurrent layer tuners of TuneNetwork don't contend on one lock, and an
// in-flight table deduplicates concurrent tuning of identical keys: when
// two goroutines ask for the same (arch, algorithm, shape) at once, one
// runs the search and the other waits for its verdict.
//
// Beyond the verdict, an entry can carry the search's engine state — the
// full measurement history and convergence curve (PutTrace). A state-
// carrying entry lets a later run resume the search at a higher budget
// without repeating a single measurement (TuneResumed), and lets
// TuneNetwork rebuild its cross-layer transfer pool from a loaded file.
type Cache struct {
	shards [cacheShards]cacheShard

	flightMu sync.Mutex
	flight   map[string]*flightCall

	// Eviction/accounting state (see evict.go). policy is nil until
	// SetEviction installs one; the counters run unconditionally — they are
	// a handful of atomics, and the service's /healthz reports them.
	policy    atomic.Pointer[EvictionPolicy]
	clock     atomic.Int64 // logical LRU clock, bumped on every access
	bytes     atomic.Int64 // approximate retained bytes over all entries
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	evictMu   sync.Mutex // serializes enforce sweeps
}

const cacheShards = 32

// cacheFormatVersion is the on-disk format written by Save. Version 1 was
// a bare JSON array of verdict-only entries; version 2 wraps the entries
// in a versioned envelope and optionally carries per-entry engine state
// (rows + curve). Load accepts both; unknown future versions are rejected.
const cacheFormatVersion = 2

type cacheShard struct {
	mu      sync.RWMutex
	entries map[string]CacheEntry
	meta    map[string]*entryMeta
}

// flightCall is one in-progress tuning run other goroutines can wait on.
type flightCall struct {
	done    chan struct{}
	cfg     conv.Config
	m       Measurement
	hist    []MeasuredConfig
	partial bool
	err     error
}

// CacheEntry is one persisted tuning outcome. Rows and Curve are the
// optional engine state: the measurement stream in submission order and
// the best-so-far curve, exactly Trace.History / Trace.Curve.
type CacheEntry struct {
	Arch    string              `json:"arch"`
	Kind    string              `json:"kind"`
	Shape   cachedShape         `json:"shape"`
	Config  cachedConfig        `json:"config"`
	Seconds float64             `json:"seconds"`
	GFLOPS  float64             `json:"gflops"`
	Rows    []CachedMeasurement `json:"rows,omitempty"`
	Curve   []float64           `json:"curve,omitempty"`
	// Budget is the measurement budget the persisted search ran with; it
	// may exceed len(Rows) when the search stopped early on patience. A
	// resume request is covered — nothing to continue — unless it asks for
	// more than this. 0 on entries from older files (resume then falls
	// back to comparing against len(Rows)).
	Budget int `json:"budget,omitempty"`
}

// CachedMeasurement is one persisted measurement record of a search.
type CachedMeasurement struct {
	Config  cachedConfig `json:"config"`
	Seconds float64      `json:"seconds"`
	GFLOPS  float64      `json:"gflops"`
	OK      bool         `json:"ok"`
}

// cacheFile is the version-2 on-disk envelope. Checksum is an optional
// integrity field (added within version 2 so older loaders, which ignore
// unknown fields, still read new files): "crc32c:" plus the hex CRC-32C of
// the compact JSON encoding of Entries. Go's shortest-roundtrip float
// encoding makes decode→re-encode byte-stable, so the loader can recompute
// the sum from the decoded entries without retaining the original bytes.
type cacheFile struct {
	Version  int          `json:"version"`
	Checksum string       `json:"checksum,omitempty"`
	Entries  []CacheEntry `json:"entries"`
}

var crc32c = crc32.MakeTable(crc32.Castagnoli)

// entriesChecksum is the integrity sum Save writes and Load verifies.
func entriesChecksum(entries []CacheEntry) (string, error) {
	body, err := json.Marshal(entries)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(body, crc32c)), nil
}

// cachedShape / cachedConfig mirror the internal structs with stable JSON
// field names, decoupling the file format from internal refactors.
type cachedShape struct {
	Batch, Cin, Hin, Win, Cout, Hker, Wker, Stride, Pad int
	// Groups is 0 on entries from files written before grouped convolutions
	// existed; the zero value means dense (1 group), so old files load
	// unchanged.
	Groups int
}

type cachedConfig struct {
	TileX, TileY, TileZ          int
	ThreadsX, ThreadsY, ThreadsZ int
	SharedPerBlock               int
	Layout                       int
	WinogradE                    int
}

func shapeToCached(s shapes.ConvShape) cachedShape {
	return cachedShape{s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad, s.Groups}
}

func (cs cachedShape) shape() shapes.ConvShape {
	return shapes.ConvShape{
		Batch: cs.Batch, Cin: cs.Cin, Hin: cs.Hin, Win: cs.Win,
		Cout: cs.Cout, Hker: cs.Hker, Wker: cs.Wker,
		Strid: cs.Stride, Pad: cs.Pad, Groups: cs.Groups,
	}
}

func configToCached(c conv.Config) cachedConfig {
	return cachedConfig{c.TileX, c.TileY, c.TileZ,
		c.ThreadsX, c.ThreadsY, c.ThreadsZ,
		c.SharedPerBlock, int(c.Layout), c.WinogradE}
}

func (cc cachedConfig) config() conv.Config {
	return conv.Config{
		TileX: cc.TileX, TileY: cc.TileY, TileZ: cc.TileZ,
		ThreadsX: cc.ThreadsX, ThreadsY: cc.ThreadsY, ThreadsZ: cc.ThreadsZ,
		SharedPerBlock: cc.SharedPerBlock,
		Layout:         tensor.Layout(cc.Layout),
		WinogradE:      cc.WinogradE,
	}
}

// history decodes an entry's persisted rows into the engine's record type.
func (e CacheEntry) history() []MeasuredConfig {
	if len(e.Rows) == 0 {
		return nil
	}
	hist := make([]MeasuredConfig, len(e.Rows))
	for i, r := range e.Rows {
		hist[i] = MeasuredConfig{Config: r.Config.config(),
			M: Measurement{Seconds: r.Seconds, GFLOPS: r.GFLOPS}, OK: r.OK}
	}
	return hist
}

// kindFromString parses a persisted algorithm name, rejecting anything
// unrecognized: a corrupt or future-format cache file must fail loudly
// instead of silently poisoning verdicts as Direct.
func kindFromString(s string) (Kind, error) {
	k, err := ParseKind(s)
	if err != nil {
		return Direct, fmt.Errorf("autotune: unknown cache kind %q", s)
	}
	return k, nil
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{flight: make(map[string]*flightCall)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]CacheEntry)
		c.shards[i].meta = make(map[string]*entryMeta)
	}
	return c
}

// cacheKeyBuf comfortably holds any key: an arch name, a kind name and
// ten small integers.
const cacheKeyBuf = 96

// appendCacheKey builds the cache key of (arch, kind, shape) into dst with
// strconv appends — no fmt, no intermediate allocations. It is the hot
// half of every cache lookup and in-flight check: callers on the lookup
// path keep the bytes on the stack and index the shard maps with
// string(key) directly, which Go compiles to an allocation-free lookup.
func appendCacheKey(dst []byte, archName string, kind Kind, s shapes.ConvShape) []byte {
	dst = append(dst, archName...)
	dst = append(dst, '|')
	dst = append(dst, kind.String()...)
	for _, v := range [...]int{s.Batch, s.Cin, s.Hin, s.Win, s.Cout, s.Hker, s.Wker, s.Strid, s.Pad, s.G()} {
		dst = append(dst, '|')
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return dst
}

// cacheKey is appendCacheKey as a string, for the cold paths (stores,
// flight-table inserts) that need a retained key.
func cacheKey(archName string, kind Kind, s shapes.ConvShape) string {
	var kb [cacheKeyBuf]byte
	return string(appendCacheKey(kb[:0], archName, kind, s))
}

// shardIndex picks the shard of a key (FNV-1a). Generic over the key
// representation so the byte-slice lookup path and the string store path
// share one implementation — they must address the same shard for the
// same key bytes.
func shardIndex[K string | []byte](key K) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % cacheShards
}

func (c *Cache) shardFor(key string) *cacheShard {
	return &c.shards[shardIndex(key)]
}

func (c *Cache) put(key string, e CacheEntry) {
	size := e.SizeBytes()
	m := &entryMeta{size: size}
	m.used.Store(c.clock.Add(1))
	m.wall.Store(c.nowNanos())
	sh := c.shardFor(key)
	sh.mu.Lock()
	if old := sh.meta[key]; old != nil {
		c.bytes.Add(-old.size)
	}
	sh.entries[key] = e
	sh.meta[key] = m
	sh.mu.Unlock()
	c.bytes.Add(size)
	c.enforce()
}

// getEntry is the allocation-free raw lookup behind Get and State. A hit
// bumps the entry's LRU clock; under a TTL policy an entry idle past the
// TTL is evicted and reported as a miss, so a long-running service never
// serves verdicts staler than its policy allows.
func (c *Cache) getEntry(archName string, kind Kind, s shapes.ConvShape) (CacheEntry, bool) {
	var kb [cacheKeyBuf]byte
	key := appendCacheKey(kb[:0], archName, kind, s)
	sh := &c.shards[shardIndex(key)]
	// The eviction bookkeeping (recency clock, TTL stamp) is paid only
	// when a policy is installed; the default unbounded cache keeps the
	// bare map-hit lookup, plus one counter bump for Stats.
	p := c.policy.Load()
	sh.mu.RLock()
	e, ok := sh.entries[string(key)]
	var m *entryMeta
	if ok && p != nil {
		m = sh.meta[string(key)]
	}
	sh.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return CacheEntry{}, false
	}
	if m != nil {
		if p.TTL > 0 && p.now().UnixNano()-m.wall.Load() > int64(p.TTL) {
			c.expire(string(key), p)
			c.misses.Add(1)
			return CacheEntry{}, false
		}
		m.used.Store(c.clock.Add(1))
		// The wall clock backs the TTL only; without one, skip the
		// time.Now so the hot lookup stays a pair of atomic bumps.
		if p.TTL > 0 {
			m.wall.Store(p.now().UnixNano())
		}
	}
	c.hits.Add(1)
	return e, true
}

// Put stores a verdict-only tuning outcome.
func (c *Cache) Put(archName string, kind Kind, s shapes.ConvShape, cfg conv.Config, m Measurement) {
	c.put(cacheKey(archName, kind, s), CacheEntry{
		Arch: archName, Kind: kind.String(),
		Shape:   shapeToCached(s),
		Config:  configToCached(cfg),
		Seconds: m.Seconds, GFLOPS: m.GFLOPS,
	})
}

// PutTrace stores a tuning outcome together with its engine state: the
// full measurement history and convergence curve. A state-carrying entry
// can be resumed at a higher budget (TuneResumed) and contributes to
// TuneNetwork's transfer pool when the cache is reloaded.
func (c *Cache) PutTrace(archName string, kind Kind, s shapes.ConvShape, tr *Trace) {
	e := CacheEntry{
		Arch: archName, Kind: kind.String(),
		Shape:   shapeToCached(s),
		Config:  configToCached(tr.Best),
		Seconds: tr.BestM.Seconds, GFLOPS: tr.BestM.GFLOPS,
		Curve:  append([]float64(nil), tr.Curve...),
		Budget: tr.Budget,
	}
	if e.Budget < len(tr.History) {
		e.Budget = len(tr.History)
	}
	if len(tr.History) > 0 {
		e.Rows = make([]CachedMeasurement, len(tr.History))
		for i, h := range tr.History {
			e.Rows[i] = CachedMeasurement{Config: configToCached(h.Config),
				Seconds: h.M.Seconds, GFLOPS: h.M.GFLOPS, OK: h.OK}
		}
	}
	c.put(cacheKey(archName, kind, s), e)
}

// Get retrieves a cached outcome, if any. The lookup allocates nothing.
func (c *Cache) Get(archName string, kind Kind, s shapes.ConvShape) (conv.Config, Measurement, bool) {
	e, ok := c.getEntry(archName, kind, s)
	if !ok {
		return conv.Config{}, Measurement{}, false
	}
	return e.Config.config(), Measurement{Seconds: e.Seconds, GFLOPS: e.GFLOPS}, true
}

// State retrieves a cached entry's persisted engine state: the measurement
// history and convergence curve. ok is false when the key is absent or the
// entry is verdict-only.
func (c *Cache) State(archName string, kind Kind, s shapes.ConvShape) ([]MeasuredConfig, []float64, bool) {
	e, ok := c.getEntry(archName, kind, s)
	if !ok || len(e.Rows) == 0 {
		return nil, nil, false
	}
	return e.history(), append([]float64(nil), e.Curve...), true
}

// stateEntries returns every state-carrying entry of one architecture in
// deterministic (key-sorted) order — the raw material for rebuilding a
// cross-layer transfer pool from a loaded cache file.
func (c *Cache) stateEntries(archName string) []CacheEntry {
	type keyed struct {
		key string
		e   CacheEntry
	}
	var all []keyed
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, e := range sh.entries {
			if e.Arch == archName && len(e.Rows) > 0 {
				all = append(all, keyed{k, e})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	out := make([]CacheEntry, len(all))
	for i, ke := range all {
		out[i] = ke.e
	}
	return out
}

// StateSize reports how many measurements are persisted for a key,
// without decoding them (0 when the key is absent or verdict-only).
func (c *Cache) StateSize(archName string, kind Kind, s shapes.ConvShape) int {
	e, ok := c.getEntry(archName, kind, s)
	if !ok {
		return 0
	}
	return len(e.Rows)
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// snapshot copies every entry keyed by cache key.
func (c *Cache) snapshot() map[string]CacheEntry {
	all := make(map[string]CacheEntry)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, e := range sh.entries {
			all[k] = e
		}
		sh.mu.RUnlock()
	}
	return all
}

// Save writes the cache as deterministic (key-sorted) JSON in the current
// (version 2) envelope, engine state included where present, with a
// CRC-32C integrity checksum over the entries so a loader can tell torn or
// bit-rotted state from a healthy file.
func (c *Cache) Save(w io.Writer) error {
	all := c.snapshot()
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]CacheEntry, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, all[k])
	}
	sum, err := entriesChecksum(ordered)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cacheFile{Version: cacheFormatVersion, Checksum: sum, Entries: ordered})
}

// Load merges entries from JSON previously written by Save. Both formats
// load: the version-2 envelope and the original bare-array files, which
// carry no engine state. Entries with an invalid shape or an unrecognized
// algorithm kind are rejected with an error — a corrupt or future-format
// file must not silently poison verdicts.
func (c *Cache) Load(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("autotune: cache read: %w", err)
	}
	var entries []CacheEntry
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		// Version 1: a bare array of verdict-only entries.
		if err := json.Unmarshal(trimmed, &entries); err != nil {
			return fmt.Errorf("autotune: cache decode: %w", err)
		}
	} else {
		var f cacheFile
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("autotune: cache decode: %w", err)
		}
		if f.Version != cacheFormatVersion {
			return fmt.Errorf("autotune: unsupported cache format version %d (want %d)", f.Version, cacheFormatVersion)
		}
		if f.Checksum != "" {
			// Files from pre-checksum writers carry no sum and load as
			// before; a present sum must verify.
			sum, err := entriesChecksum(f.Entries)
			if err != nil {
				return fmt.Errorf("autotune: cache checksum: %w", err)
			}
			if sum != f.Checksum {
				return fmt.Errorf("autotune: cache checksum mismatch: file says %s, entries sum to %s", f.Checksum, sum)
			}
		}
		entries = f.Entries
	}
	// Validate every entry before committing any: a file rejected with an
	// error must leave the cache untouched, not partially populated.
	keys := make([]string, len(entries))
	for i, e := range entries {
		key, err := e.validate()
		if err != nil {
			return err
		}
		keys[i] = key
	}
	for i, e := range entries {
		c.put(keys[i], e)
	}
	return nil
}

// validate checks one entry's invariants — the per-entry half of Load's
// checks, shared with the salvage path — and returns its cache key.
func (e CacheEntry) validate() (string, error) {
	s := e.Shape.shape()
	if err := s.Validate(); err != nil {
		return "", fmt.Errorf("autotune: cache entry for %s: %w", e.Arch, err)
	}
	kind, err := kindFromString(e.Kind)
	if err != nil {
		return "", fmt.Errorf("autotune: cache entry for %s %v: %w", e.Arch, s, err)
	}
	// Persisted rows feed resumed incumbents and warm-pool log-costs; a
	// successful row with a non-positive time would poison both (a zero
	// incumbent prunes everything, log(0) is -Inf), so reject it here.
	for j, r := range e.Rows {
		if r.OK && !(r.Seconds > 0) {
			return "", fmt.Errorf("autotune: cache entry for %s %v: row %d: non-positive seconds %v on a successful measurement", e.Arch, s, j, r.Seconds)
		}
	}
	return cacheKey(e.Arch, kind, s), nil
}

// Entry retrieves the raw persisted entry of one key — engine state
// included when present — for callers shipping entries elsewhere (the
// cluster replication path). The bool reports presence.
func (c *Cache) Entry(archName string, kind Kind, s shapes.ConvShape) (CacheEntry, bool) {
	return c.getEntry(archName, kind, s)
}

// Key returns the entry's cache key after validating it — the same
// validation Load applies, so an entry whose Key succeeds is safe to merge
// into any cache.
func (e CacheEntry) Key() (string, error) { return e.validate() }

// EncodeEntries wraps entries in the versioned, checksummed on-disk/wire
// envelope — the exact format Save writes, reused as the replication and
// hinted-handoff payload between cluster replicas so both sides share one
// hardened (fuzzed) decoder.
func EncodeEntries(entries []CacheEntry) ([]byte, error) {
	sum, err := entriesChecksum(entries)
	if err != nil {
		return nil, err
	}
	return json.Marshal(cacheFile{Version: cacheFormatVersion, Checksum: sum, Entries: entries})
}

// DecodeEntries decodes an envelope produced by EncodeEntries (or Save),
// verifying version, checksum and every entry's invariants, without
// committing anything to a cache. The first invalid entry rejects the whole
// envelope — replication payloads are all-or-nothing, like Load.
func DecodeEntries(data []byte) ([]CacheEntry, error) {
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("autotune: cache decode: %w", err)
	}
	if f.Version != cacheFormatVersion {
		return nil, fmt.Errorf("autotune: unsupported cache format version %d (want %d)", f.Version, cacheFormatVersion)
	}
	if f.Checksum != "" {
		sum, err := entriesChecksum(f.Entries)
		if err != nil {
			return nil, fmt.Errorf("autotune: cache checksum: %w", err)
		}
		if sum != f.Checksum {
			return nil, fmt.Errorf("autotune: cache checksum mismatch: file says %s, entries sum to %s", f.Checksum, sum)
		}
	}
	for _, e := range f.Entries {
		if _, err := e.validate(); err != nil {
			return nil, err
		}
	}
	return f.Entries, nil
}

// PutEntries validates entries and merges them all — the receiving half of
// cluster replication. Like Load, a rejected entry leaves the cache
// untouched rather than partially updated.
func (c *Cache) PutEntries(entries []CacheEntry) error {
	keys := make([]string, len(entries))
	for i, e := range entries {
		key, err := e.validate()
		if err != nil {
			return err
		}
		keys[i] = key
	}
	for i, e := range entries {
		c.put(keys[i], e)
	}
	return nil
}

// SaveFile writes the cache to path atomically: the snapshot goes to a
// temp file in the same directory, is fsynced, then renamed over path. A
// crash at any point leaves either the previous complete file or the new
// complete file — never a torn one — which is what makes the daemon's
// timed background snapshots safe to take while serving traffic.
func (c *Cache) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := c.Save(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadFile merges a cache file into c.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}

// RecoverFile is the crash-tolerant LoadFile the daemon boots with. A
// healthy file loads normally. A damaged one — torn mid-write by a crash,
// truncated, or failing its checksum — is salvaged instead of rejected:
// every individually-valid entry that can still be decoded from the prefix
// is merged into the cache, and the damaged file is renamed to
// path+".corrupt" (preserved for post-mortem, and out of the way so the
// next snapshot starts clean). loaded is how many entries made it in;
// salvaged reports that the salvage path ran. A missing file is not an
// error: (0, false, nil) — a fresh daemon starts empty.
func (c *Cache) RecoverFile(path string) (loaded int, salvaged bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if err := c.Load(bytes.NewReader(data)); err == nil {
		n := 0
		if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
			var v1 []CacheEntry
			if json.Unmarshal(trimmed, &v1) == nil {
				n = len(v1)
			}
		} else {
			var f cacheFile
			if json.Unmarshal(data, &f) == nil {
				n = len(f.Entries)
			}
		}
		return n, false, nil
	}
	entries := salvageEntries(data)
	for _, e := range entries {
		key, verr := e.validate()
		if verr != nil {
			continue
		}
		c.put(key, e)
		loaded++
	}
	if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
		return loaded, true, rerr
	}
	return loaded, true, nil
}

// salvageEntries decodes as many whole entries as possible from a damaged
// cache file: it token-walks to the entries array (either format) and
// decodes entry by entry until the corruption point. Per-entry validation
// is the caller's job — a torn tail can truncate an entry into something
// that still parses.
func salvageEntries(data []byte) []CacheEntry {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	if trimmed[0] == '[' {
		if _, err := dec.Token(); err != nil { // consume '['
			return nil
		}
	} else {
		tok, err := dec.Token()
		if err != nil || tok != json.Delim('{') {
			return nil
		}
		found := false
		for !found && dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return nil
			}
			key, _ := keyTok.(string)
			if key == "entries" {
				tok, err := dec.Token()
				if err != nil || tok != json.Delim('[') {
					return nil
				}
				found = true
				break
			}
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil
			}
		}
		if !found {
			return nil
		}
	}
	var out []CacheEntry
	for dec.More() {
		var e CacheEntry
		if err := dec.Decode(&e); err != nil {
			break
		}
		out = append(out, e)
	}
	return out
}

// TuneCached returns the cached best for (arch, kind, shape) or runs the
// engine and caches its verdict (with engine state, so the search can be
// resumed or transferred from later). Concurrent callers with the same key
// share one search.
func TuneCached(cache *Cache, sp *Space, measure Measurer, opts Options) (conv.Config, Measurement, error) {
	cfg, m, _, _, _, err := tuneShared(context.Background(), cache, sp, liftMeasurer(measure), opts, false)
	return cfg, m, err
}

// TuneResumed continues a cached search at a higher budget: the persisted
// measurement history replays into a fresh engine run — zero measurements
// are repeated — and the grown state is written back. A covered request
// returns the cached outcome as a synthesized trace without any
// measuring: the persisted search already ran with at least opts.Budget
// (even if patience retired it below that, re-running would only re-prove
// staleness), or the entry is verdict-only with nothing to continue from.
// Concurrent TuneResumed calls for one key are not flight-deduplicated
// (the single-caller CLI seam); racing writers last-write-win and a later
// resume of an overwritten entry simply re-enters.
func TuneResumed(cache *Cache, sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	if e, ok := cache.getEntry(sp.Arch.Name, sp.Kind, sp.Shape); ok {
		hist, covered := resumeCoverage(e, opts.Budget)
		if covered {
			tr := &Trace{Method: "ate", Best: e.Config.config(),
				BestM:        Measurement{Seconds: e.Seconds, GFLOPS: e.GFLOPS},
				Curve:        append([]float64(nil), e.Curve...),
				Measurements: len(e.Rows), History: e.history(), Budget: e.Budget}
			tr.ConvergedAt = convergedAt(tr.Curve)
			return tr, nil
		}
		opts = withHistory(opts, hist)
	}
	tr, err := Tune(sp, measure, opts)
	if err != nil {
		return nil, err
	}
	cache.PutTrace(sp.Arch.Name, sp.Kind, sp.Shape, tr)
	return tr, nil
}

// resumeCoverage is the single resume-coverage predicate (shared by
// TuneResumed and tuneShared so the CLI and network paths cannot drift):
// a cached entry covers a resume request at budget when the persisted
// search already ran with at least that budget — even if patience stopped
// it early — or when the entry is verdict-only, leaving nothing to
// continue from. Only an uncovered request pays for decoding the rows; the
// returned history feeds the replay.
func resumeCoverage(e CacheEntry, budget int) ([]MeasuredConfig, bool) {
	persisted := e.Budget
	if persisted < len(e.Rows) {
		persisted = len(e.Rows) // entries from older files carry no budget
	}
	if len(e.Rows) == 0 || budget <= persisted {
		return nil, true
	}
	return e.history(), false
}

// withHistory installs a persisted measurement history as the warm-start
// replay, preserving any transfer fields the caller already set.
func withHistory(opts Options, hist []MeasuredConfig) Options {
	w := WarmStart{}
	if opts.Warm != nil {
		w = *opts.Warm
	}
	w.History = hist
	opts.Warm = &w
	return opts
}

// convergedAt recovers the 1-based index of the last improvement from a
// best-so-far curve.
func convergedAt(curve []float64) int {
	at := 0
	for i, v := range curve {
		if i == 0 || v > curve[i-1] {
			at = i + 1
		}
	}
	return at
}

// tuneShared is the work-sharing core of TuneCached, TuneResumed's
// network-level counterpart and TuneNetwork: satisfy the request from the
// cache, join an identical in-flight search, or run the engine and persist
// the trace. shared reports whether the verdict came without running a
// search here; hist is the measurement history when one is in hand — a
// search ran here (or was joined in flight), or a resume request decoded
// the persisted rows — and nil on plain cache hits, which stay
// allocation-light. With resume set, a state-carrying cache entry whose
// history is shorter than opts.Budget re-enters the engine warm instead
// of short-circuiting. partial reports a search cut short by ctx (joined
// waiters inherit the flag along with the verdict); the truncated trace is
// still persisted — at its honest budget — so a repeat resume request
// continues it.
func tuneShared(ctx context.Context, cache *Cache, sp *Space, measure FallibleMeasurer, opts Options, resume bool) (conv.Config, Measurement, bool, []MeasuredConfig, bool, error) {
	opts = opts.normalized()
	// satisfied reports whether the cache alone answers this request. The
	// persisted rows are decoded only on the resume path (where they decide
	// coverage and feed the replay); a plain hit stays allocation-light and
	// returns no history — the transfer pool reads the cache's state
	// entries directly (prime), not this seam.
	var resumeHist []MeasuredConfig
	satisfied := func() (conv.Config, Measurement, []MeasuredConfig, bool) {
		e, ok := cache.getEntry(sp.Arch.Name, sp.Kind, sp.Shape)
		if !ok {
			return conv.Config{}, Measurement{}, nil, false
		}
		if resume {
			hist, covered := resumeCoverage(e, opts.Budget)
			if !covered {
				resumeHist = hist
				return conv.Config{}, Measurement{}, nil, false
			}
		}
		return e.Config.config(), Measurement{Seconds: e.Seconds, GFLOPS: e.GFLOPS}, nil, true
	}
	if cfg, m, hist, ok := satisfied(); ok {
		return cfg, m, true, hist, false, nil
	}
	key := cacheKey(sp.Arch.Name, sp.Kind, sp.Shape)
	cache.flightMu.Lock()
	if call, ok := cache.flight[key]; ok {
		cache.flightMu.Unlock()
		<-call.done
		return call.cfg, call.m, true, call.hist, call.partial, call.err
	}
	// Re-check under the flight lock: a racing search may have completed —
	// Put then delete its flight entry — between the check above and here.
	if cfg, m, hist, ok := satisfied(); ok {
		cache.flightMu.Unlock()
		return cfg, m, true, hist, false, nil
	}
	call := &flightCall{done: make(chan struct{})}
	cache.flight[key] = call
	cache.flightMu.Unlock()

	if len(resumeHist) > 0 {
		opts = withHistory(opts, resumeHist)
	}
	tr, err := tuneFallible(ctx, sp, measure, opts)
	if err == nil {
		call.cfg, call.m, call.hist, call.partial = tr.Best, tr.BestM, tr.History, tr.Partial
		cache.PutTrace(sp.Arch.Name, sp.Kind, sp.Shape, tr)
	}
	call.err = err
	close(call.done)
	cache.flightMu.Lock()
	delete(cache.flight, key)
	cache.flightMu.Unlock()
	return call.cfg, call.m, false, call.hist, call.partial, err
}
