package autotune

// This file preserves the pre-bound-guided engine verbatim — the tuning
// loop and the sort-per-node GBT trainer exactly as they stood before the
// engine rework — as a test-only baseline. BenchmarkTuneEngine measures
// the new engine against legacyTune to substantiate the claimed engine-
// overhead speedup, and the comparison tests check the rework did not
// change what the search finds. Nothing here ships in the library.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/conv"
)

// legacyTrainGBT is the pre-rework trainer: every fit is from scratch and
// every tree node re-sorts its members' values per feature to pick
// candidate thresholds.
func legacyTrainGBT(cfg GBTConfig, x [][]float64, y []float64) *GBTModel {
	if len(x) == 0 || len(x) != len(y) {
		panic("autotune: bad training set")
	}
	m := &GBTModel{cfg: cfg}
	m.base = legacyMean(y)
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.base
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < cfg.Trees; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := legacyBuildTree(cfg, x, resid, idx, 0)
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.predict(x[i])
		}
	}
	return m
}

func legacyBuildTree(cfg GBTConfig, x [][]float64, resid []float64, idx []int, depth int) *treeNode {
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamples {
		return &treeNode{leaf: true, value: legacyMeanAt(resid, idx)}
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	var total, totalSq float64
	for _, i := range idx {
		total += resid[i]
		totalSq += resid[i] * resid[i]
	}
	baseSSE := totalSq - total*total/float64(len(idx))

	nf := len(x[idx[0]])
	vals := make([]float64, 0, len(idx))
	for f := 0; f < nf; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, x[i][f])
		}
		for _, thr := range legacyCandidateThresholds(vals, cfg.Thresholds) {
			var lSum, lSq, lN float64
			for _, i := range idx {
				if x[i][f] <= thr {
					lSum += resid[i]
					lSq += resid[i] * resid[i]
					lN++
				}
			}
			rN := float64(len(idx)) - lN
			if lN < 1 || rN < 1 {
				continue
			}
			rSum := total - lSum
			rSq := totalSq - lSq
			sse := (lSq - lSum*lSum/lN) + (rSq - rSum*rSum/rN)
			if gain := baseSSE - sse; gain > bestGain+1e-12 {
				bestFeat, bestThr, bestGain = f, thr, gain
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: legacyMeanAt(resid, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      legacyBuildTree(cfg, x, resid, left, depth+1),
		right:     legacyBuildTree(cfg, x, resid, right, depth+1),
	}
}

func legacyCandidateThresholds(vals []float64, k int) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	cuts := len(uniq) - 1
	step := 1
	if cuts > k {
		step = cuts / k
	}
	var out []float64
	for i := 0; i < cuts; i += step {
		out = append(out, (uniq[i]+uniq[i+1])/2)
	}
	return out
}

func legacyMean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func legacyMeanAt(v []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += v[i]
	}
	return s / float64(len(idx))
}

// legacyTune is the pre-rework engine loop: full GBT retrain every batch,
// full sorts for the top-k set and the proposal ranking, no pruning.
func legacyTune(sp *Space, measure Measurer, opts Options) (*Trace, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := &record{trace: Trace{Method: "ate"}}

	var feats [][]float64
	var featStore []float64
	var costs []float64
	seen := make(map[conv.Config]bool)
	type scoredCfg struct {
		cfg  conv.Config
		cost float64
	}
	var topK []scoredCfg

	var batchBuf []conv.Config
	var resultBuf []measured
	measureBatch := func(cands []conv.Config) {
		batch := batchBuf[:0]
		for _, c := range cands {
			if rec.trace.Measurements+len(batch) >= opts.Budget {
				break
			}
			if seen[c] {
				continue
			}
			seen[c] = true
			batch = append(batch, c)
		}
		batchBuf = batch
		resultBuf = measureAllInto(resultBuf, measure, batch, opts.Workers, opts.MeasureLatency)
		for i, c := range batch {
			m, ok := resultBuf[i].m, resultBuf[i].ok
			rec.add(c, m, ok)
			cost := 20.0
			if ok {
				cost = math.Log(m.Seconds)
				topK = append(topK, scoredCfg{c, m.Seconds})
				sort.Slice(topK, func(i, j int) bool { return topK[i].cost < topK[j].cost })
				if len(topK) > opts.Walkers {
					topK = topK[:opts.Walkers]
				}
			}
			start := len(featStore)
			featStore = sp.FeaturesInto(featStore, c)
			feats = append(feats, featStore[start:len(featStore):len(featStore)])
			costs = append(costs, cost)
		}
	}

	if !opts.NoSeeds {
		measureBatch(sp.SeedConfigs())
	}
	initRandom := 3 * opts.Walkers
	if b := opts.Budget / 4; b < initRandom {
		initRandom = b
	}
	initial := make([]conv.Config, 0, initRandom)
	for i := 0; i < initRandom; i++ {
		initial = append(initial, sp.Sample(rng))
	}
	measureBatch(initial)

	var walkFeat []float64
	var rankCfgs []conv.Config
	var rankFeats [][]float64
	var rankStore, rankPreds []float64
	var rankedBuf []scoredCfg
	for rec.trace.Measurements < opts.Budget && !rec.stale(opts.Patience) {
		model := legacyTrainGBT(DefaultGBTConfig(), feats, costs)
		pool := make(map[conv.Config]bool)
		for i := 0; i < opts.Walkers; i++ {
			start := sp.Sample(rng)
			if i < len(topK) {
				start = topK[i].cfg
			}
			cur := start
			walkFeat = sp.FeaturesInto(walkFeat[:0], cur)
			curCost := model.Predict(walkFeat)
			for step := 0; step < opts.WalkSteps; step++ {
				next := sp.Neighbor(cur, rng)
				walkFeat = sp.FeaturesInto(walkFeat[:0], next)
				nextCost := model.Predict(walkFeat)
				if nextCost < curCost || rng.Float64() < 0.1 {
					cur, curCost = next, nextCost
				}
				if !seen[cur] {
					pool[cur] = true
				}
			}
		}
		for i := 0; i < 4*opts.BatchSize; i++ {
			if c := sp.Sample(rng); !seen[c] {
				pool[c] = true
			}
		}
		if len(pool) == 0 {
			break
		}
		rankCfgs = rankCfgs[:0]
		rankFeats = rankFeats[:0]
		rankStore = rankStore[:0]
		for c := range pool {
			rankCfgs = append(rankCfgs, c)
			start := len(rankStore)
			rankStore = sp.FeaturesInto(rankStore, c)
			rankFeats = append(rankFeats, rankStore[start:len(rankStore):len(rankStore)])
		}
		rankPreds = model.PredictBatch(rankFeats, rankPreds)
		ranked := rankedBuf[:0]
		for i, c := range rankCfgs {
			ranked = append(ranked, scoredCfg{c, rankPreds[i]})
		}
		rankedBuf = ranked
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].cost != ranked[j].cost {
				return ranked[i].cost < ranked[j].cost
			}
			return ranked[i].cfg.String() < ranked[j].cfg.String()
		})
		batch := make([]conv.Config, 0, opts.BatchSize)
		for i := 0; i < len(ranked) && i < opts.BatchSize; i++ {
			batch = append(batch, ranked[i].cfg)
		}
		measureBatch(batch)
	}
	if !rec.found {
		return nil, fmt.Errorf("autotune: no valid configuration found in %d measurements", rec.trace.Measurements)
	}
	return &rec.trace, nil
}
