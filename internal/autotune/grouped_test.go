package autotune

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// randomGroupedShape draws a random exhaustively-enumerable grouped layer:
// tiny per-group channel extents over a random group count, so every
// applicable space enumerates in full.
func randomGroupedShape(rng *rand.Rand) shapes.ConvShape {
	s := randomSmallShape(rng)
	g := []int{2, 2, 4}[rng.Intn(3)]
	s.Cin = g * (1 + rng.Intn(3))
	s.Cout = g * (1 + rng.Intn(3))
	s.Groups = g
	return s
}

// The admissibility of the pruning oracle on grouped spaces: the
// group-aware bound must stay a floor under every measured time, for every
// kind that admits the layer. A bound computed against the dense shape
// would sit G× too high and fail this immediately.
func TestGroupedBoundSecondsIsAFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	archs := []memsim.Arch{memsim.V100, memsim.GTX1080Ti, memsim.GFX906}
	for trial := 0; trial < 8; trial++ {
		s := randomGroupedShape(rng)
		a := archs[trial%len(archs)]
		for _, sp := range boundTestSpaces(t, s, a) {
			mm := NewMemoMeasure(a, s, sp.Kind)
			checked := 0
			sp.enumerate(func(c conv.Config) bool {
				m, ok := mm.Measure(c)
				if !ok {
					return true
				}
				checked++
				if lb := sp.BoundSeconds(c); lb > m.Seconds {
					t.Fatalf("%s %v %s: bound %.6g above measured %.6g for %v",
						a.Name, s, sp.Kind, lb, m.Seconds, c)
				}
				return true
			})
			if checked == 0 {
				t.Fatalf("%s %v %s: no measurable configs", a.Name, s, sp.Kind)
			}
		}
	}
}

// Pruning on grouped spaces preserves the full-enumeration optimum — the
// branch-and-bound walk over a shuffled visit order ends on exactly the
// brute-force best, for every applicable kind.
func TestGroupedPruningNeverDiscardsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	archs := []memsim.Arch{memsim.V100, memsim.TitanX, memsim.GFX906}
	for trial := 0; trial < 8; trial++ {
		s := randomGroupedShape(rng)
		a := archs[rng.Intn(len(archs))]
		for _, sp := range boundTestSpaces(t, s, a) {
			mm := NewMemoMeasure(a, s, sp.Kind)
			var all []conv.Config
			sp.enumerate(func(c conv.Config) bool {
				all = append(all, c)
				return true
			})
			rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

			var bruteBest, bbBest conv.Config
			bruteSec, bbSec := math.Inf(1), math.Inf(1)
			for _, c := range all {
				if m, ok := mm.Measure(c); ok && m.Seconds < bruteSec {
					bruteSec, bruteBest = m.Seconds, c
				}
			}
			for _, c := range all {
				if !math.IsInf(bbSec, 1) && sp.BoundSeconds(c) > bbSec {
					continue
				}
				if m, ok := mm.Measure(c); ok && m.Seconds < bbSec {
					bbSec, bbBest = m.Seconds, c
				}
			}
			if math.IsInf(bruteSec, 1) {
				continue
			}
			if bbSec != bruteSec || bbBest != bruteBest {
				t.Fatalf("%s %v %s: branch-and-bound best %v (%.6g) != brute-force best %v (%.6g)",
					a.Name, s, sp.Kind, bbBest, bbSec, bruteBest, bruteSec)
			}
		}
	}
}

// The regression the grouped fix pins: a depthwise layer's tuned
// measurement accounts exactly 1/G of its dense twin's flops. Before the
// fix the tuner saw the batch-folded dense shape and both columns agreed —
// the depthwise layer was being tuned (and billed) as a dense convolution.
func TestDepthwiseTunedFlopsAreOneOverG(t *testing.T) {
	const g = 32
	dw := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 28, Win: 28, Cout: 32,
		Hker: 3, Wker: 3, Strid: 1, Pad: 1, Groups: g}
	dense := dw
	dense.Groups = 1
	if got, want := dw.FLOPs(), dense.FLOPs()/g; got != want {
		t.Fatalf("grouped shape FLOPs %d, want dense/G = %d", got, want)
	}
	for _, tc := range []struct {
		name string
		s    shapes.ConvShape
	}{{"depthwise", dw}, {"dense", dense}} {
		sp, err := NewSpace(tc.s, arch, Direct, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Tune(sp, DirectMeasurer(arch, tc.s), smallOpts(32, 5))
		if err != nil {
			t.Fatal(err)
		}
		// GFLOPS·seconds recovers the flop count the measurement billed.
		got := tr.BestM.GFLOPS * 1e9 * tr.BestM.Seconds
		want := float64(tc.s.FLOPs())
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("%s: tuned measurement accounts %.6g flops, shape has %d",
				tc.name, got, tc.s.FLOPs())
		}
	}
}

// Per-layer kernel choice on a depthwise + pointwise pair: TuneNetwork with
// the full candidate set returns verdicts whose chosen kinds are legal for
// each layer, and the mixed-kind network time is no worse than the
// direct-only run at the same budget — widening the candidate set can only
// help, since every layer keeps its fastest verdict.
func TestTuneNetworkGroupedKindChoice(t *testing.T) {
	layers := []NetworkLayer{
		{Name: "dw", Repeat: 1, Shape: shapes.ConvShape{Batch: 1, Cin: 16, Hin: 14, Win: 14,
			Cout: 16, Hker: 3, Wker: 3, Strid: 1, Pad: 1, Groups: 16}},
		{Name: "pw", Repeat: 1, Shape: shapes.ConvShape{Batch: 1, Cin: 16, Hin: 14, Win: 14,
			Cout: 32, Hker: 1, Wker: 1, Strid: 1, Pad: 0}},
	}
	opts := NetworkOptions{Tune: smallOpts(24, 3)}
	directOnly, err := TuneNetwork(arch, layers, NewCache(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Winograd = true
	opts.Kinds = []Kind{FFT, ImplicitGEMM}
	mixed, err := TuneNetwork(arch, layers, NewCache(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range mixed {
		legal := false
		for _, k := range CandidateKinds(layers[i].Shape, true, opts.Kinds) {
			if v.Kind == k {
				legal = true
			}
		}
		if !legal {
			t.Errorf("layer %s: chosen kind %s not in its candidate set", layers[i].Name, v.Kind)
		}
	}
	if got, want := NetworkSeconds(mixed), NetworkSeconds(directOnly); got > want {
		t.Errorf("mixed-kind network %.6gs worse than direct-only %.6gs at equal budget", got, want)
	}
}
