package autotune

import (
	"math"

	"repro/internal/conv"
)

// NumFeatures is the length of the cost-model feature vector.
const NumFeatures = 14

// Features encodes a configuration for the cost model. The encoding mixes
// raw axes (log-scaled sizes), derived quantities the time model responds to
// (tile volume, thread count, blocks, shared pressure), and the optimality
// gap |xy − Rz|/(xy + Rz), which lets the model learn the paper's condition.
func (sp *Space) Features(c conv.Config) []float64 {
	return sp.FeaturesInto(make([]float64, 0, NumFeatures), c)
}

// FeaturesInto appends c's NumFeatures-long feature vector to dst and
// returns the extended slice. The tuner's hot loops call it with recycled
// buffers (dst[:0]) so per-candidate featurization allocates nothing.
func (sp *Space) FeaturesInto(dst []float64, c conv.Config) []float64 {
	s := sp.Shape
	r := s.R()
	if sp.Kind == Winograd {
		r = float64(s.Hker * s.Hker)
	}
	vol := float64(c.TileX * c.TileY * c.TileZ)
	outW, outH := s.Wout(), s.Hout()
	if sp.Kind == FFT {
		// The FFT phase-3 grid is the padded power-of-two frequency plane,
		// not the spatial output — feature geometry follows what the blocks
		// actually tile.
		lh, lw := conv.FFTGrid(s)
		outW, outH = lw, lh
	}
	blocksX := math.Ceil(float64(outW) / float64(c.TileX))
	blocksY := math.Ceil(float64(outH) / float64(c.TileY))
	blocksZ := math.Ceil(float64(s.Cout) / float64(c.TileZ))
	blocks := blocksX * blocksY * blocksZ * float64(s.Batch)
	var need int
	switch sp.Kind {
	case Winograd:
		need = conv.WinogradSharedNeed(s, c)
	case FFT:
		need = conv.FFTSharedNeed(c)
	case ImplicitGEMM:
		need = conv.IGEMMSharedNeed(s, c)
	default:
		need = conv.DirectSharedNeed(s, c)
	}
	return append(dst,
		log2(float64(c.TileX)),
		log2(float64(c.TileY)),
		log2(float64(c.TileZ)),
		log2(vol),
		log2(float64(c.ThreadsX*c.ThreadsY*c.ThreadsZ)),
		log2(float64(c.SharedPerBlock)),
		log2(blocks),
		c.Tile().OptimalityGap(r),
		float64(need)/float64(c.SharedPerBlock),
		log2(float64(c.TileX*c.TileY)+1),
		float64(c.Layout),
		boolToF(c.ThreadsX*c.ThreadsY*c.ThreadsZ >= 32),
		log2(float64(c.TileZ)*r+1),
		vol/float64(c.SharedPerBlock),
	)
}

func log2(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log2(v)
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
