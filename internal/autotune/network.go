package autotune

import (
	"fmt"
	"runtime"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// This file is the network-level tuning API: one call tunes every
// convolution layer of a CNN concurrently against a shared cache. Layers
// with identical (arch, algorithm, shape) keys are deduplicated — the
// repeated 3×3 blocks of a ResNet stage tune once and share the verdict —
// mirroring how key-based autotuner caches amortize search across a model.

// NetworkLayer is one layer of a network-level tuning request. Grouped or
// depthwise layers should be folded to their effective shape first (see
// models.GroupedLayer.EffectiveShape).
type NetworkLayer struct {
	Name   string
	Shape  shapes.ConvShape
	Repeat int // occurrences of this exact shape in the network (≥ 1)
}

// NetworkOptions controls a TuneNetwork run.
type NetworkOptions struct {
	// Tune holds the per-layer engine options (Budget, Seed, Workers,
	// NoPrune, ...). The same options — and therefore the same
	// deterministic verdict per shape — apply to every layer; in
	// particular, bound-guided pruning (on by default) trims each layer's
	// search independently, against that layer's own bound memo.
	Tune Options
	// Workers is how many layers are tuned concurrently (default
	// GOMAXPROCS). Correctness and output do not depend on it.
	Workers int
	// Winograd also tunes the fused Winograd dataflow for 3×3 unit-stride
	// layers and keeps the better verdict, as the paper's end-to-end
	// evaluation does.
	Winograd bool
}

// LayerVerdict is the tuning outcome of one network layer.
type LayerVerdict struct {
	Layer  NetworkLayer
	Kind   Kind
	Config conv.Config
	M      Measurement
	// Shared is true when the verdict did not run its own search: it was
	// satisfied from the cache or deduplicated onto a concurrent search of
	// an identical layer.
	Shared bool
}

// TuneNetwork tunes every layer of a network with the paper's engine,
// fanning layers across opts.Workers goroutines and sharing cache. Verdicts
// come back in layer order and, for a fixed opts.Tune.Seed, are identical
// for any Workers/opts.Tune.Workers setting. cache may be nil for a
// throwaway run; passing a loaded persistent cache skips already-tuned
// layers entirely.
func TuneNetwork(arch memsim.Arch, layers []NetworkLayer, cache *Cache, opts NetworkOptions) ([]LayerVerdict, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("autotune: no layers to tune")
	}
	if cache == nil {
		cache = NewCache()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	verdicts := make([]LayerVerdict, len(layers))
	errs := make([]error, len(layers))
	fanIndexed(len(layers), workers, func(i int) {
		verdicts[i], errs[i] = tuneLayer(arch, layers[i], cache, opts)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("autotune: layer %q: %w", layers[i].Name, err)
		}
	}
	return verdicts, nil
}

// tuneLayer produces the best verdict for one layer: the tuned direct
// dataflow, improved by the tuned fused-Winograd dataflow where it applies
// and wins.
func tuneLayer(arch memsim.Arch, l NetworkLayer, cache *Cache, opts NetworkOptions) (LayerVerdict, error) {
	v := LayerVerdict{Layer: l, Kind: Direct}
	sp, err := NewSpace(l.Shape, arch, Direct, 0, true)
	if err != nil {
		return v, err
	}
	cfg, m, shared, err := tuneShared(cache, sp, DirectMeasurer(arch, l.Shape), opts.Tune)
	if err != nil {
		return v, err
	}
	v.Config, v.M, v.Shared = cfg, m, shared
	if opts.Winograd && l.Shape.WinogradOK() && l.Shape.Hker == 3 {
		wsp, werr := NewSpace(l.Shape, arch, Winograd, 2, true)
		if werr == nil {
			// Winograd may legitimately find no valid configuration for a
			// layer (e.g. tiny spatial dims); the direct verdict stands.
			if wcfg, wm, wshared, werr := tuneShared(cache, wsp, WinogradMeasurer(arch, l.Shape), opts.Tune); werr == nil && wm.Seconds < v.M.Seconds {
				v.Kind, v.Config, v.M, v.Shared = Winograd, wcfg, wm, wshared
			}
		}
	}
	return v, nil
}

// NetworkSeconds sums repeat-weighted simulated layer times — the
// end-to-end convolution time of the tuned network.
func NetworkSeconds(verdicts []LayerVerdict) float64 {
	var t float64
	for _, v := range verdicts {
		r := v.Layer.Repeat
		if r < 1 {
			r = 1
		}
		t += v.M.Seconds * float64(r)
	}
	return t
}
