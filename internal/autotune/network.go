package autotune

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// This file is the network-level tuning API: one call tunes every
// convolution layer of a CNN concurrently against a shared cache. Layers
// with identical (arch, algorithm, shape) keys are deduplicated — the
// repeated 3×3 blocks of a ResNet stage tune once and share the verdict —
// mirroring how key-based autotuner caches amortize search across a model.
//
// With NetworkOptions.Warm the sweep additionally transfers state between
// related searches: a per-(arch, kind) pool — binned by layer family
// (kernel extent × stride), the granularity at which cost structure
// actually transfers — collects shape-normalized training rows and top-K
// incumbent configurations from finished layers, and every later layer
// starts with a fitted cost model and transferred incumbents instead of a
// cold random phase. The schedule is two deterministic waves — one
// representative search per family runs cold, then everything else runs
// warm off the frozen pool — so verdicts stay bit-identical for any worker
// count. A cache file saved with engine state (PutTrace) rebuilds the pool
// on load, in which case already-covered families skip their cold wave.

// NetworkLayer is one layer of a network-level tuning request. Grouped or
// depthwise layers carry their group count in Shape.Groups and tune with
// group-aware counts and bounds — do not fold them to a dense shape.
type NetworkLayer struct {
	Name   string
	Shape  shapes.ConvShape
	Repeat int // occurrences of this exact shape in the network (≥ 1)
}

// NetworkOptions controls a TuneNetwork run.
type NetworkOptions struct {
	// Tune holds the per-layer engine options (Budget, Seed, Workers,
	// NoPrune, ...). The same options — and therefore the same
	// deterministic verdict per shape — apply to every layer; in
	// particular, bound-guided pruning (on by default) trims each layer's
	// search independently, against that layer's own bound memo.
	Tune Options
	// Workers is how many layers are tuned concurrently (default
	// GOMAXPROCS). Correctness and output do not depend on it.
	Workers int
	// Winograd also tunes the fused Winograd dataflow for 3×3 unit-stride
	// layers and keeps the better verdict, as the paper's end-to-end
	// evaluation does.
	Winograd bool
	// Kinds lists additional dataflow kinds to tune per layer (Direct is
	// always searched; Winograd here is equivalent to the Winograd flag).
	// Each candidate kind is filtered by the layer's signature — FFT only
	// for unit-stride layers with kernels of at least 3×3, Winograd only
	// where it admits — and the best measured verdict per layer wins.
	Kinds []Kind
	// Warm enables cross-layer warm-starting: finished searches feed a
	// per-(arch, kind) transfer pool of normalized training rows and
	// incumbent seeds, and subsequent layers start from it instead of
	// cold. Verdicts remain deterministic for a fixed Tune.Seed at any
	// worker count.
	Warm bool
	// WarmTopK is how many incumbent configurations each finished search
	// contributes to the pool as warm seeds (default 4).
	WarmTopK int
	// Resume re-enters cached searches whose persisted engine state is
	// shorter than Tune.Budget: the stored history replays (no repeat
	// measurements) and the search continues with the remaining budget.
	// Cached entries at or beyond the budget — and verdict-only entries —
	// are returned as-is.
	Resume bool
	// WrapMeasurer, when non-nil, wraps each deduplicated search's measurer
	// before the engine sees it — the seam the chaos fault injector (and
	// any real fallible backend) plugs into. The (kind, shape) identify the
	// search, letting a wrapper derive a per-search deterministic schedule.
	// nil lifts the plain measurer into an error-free fallible one.
	WrapMeasurer func(Kind, shapes.ConvShape, Measurer) FallibleMeasurer
	// AnalyticFallback degrades instead of failing: a layer whose search
	// errors out (dead measurer, open circuit breaker, every configuration
	// quarantined before one valid measurement) is answered by the
	// analytic tier (Tier: TierAnalytic) so the sweep still returns a
	// complete verdict list. Off by default, the sweep then fails on the
	// first layer error exactly as before.
	AnalyticFallback bool
	// AnalyticCalibration scales analytic-fallback estimates (≤ 1 or NaN
	// means 1; see CalibrateAnalytic).
	AnalyticCalibration float64
}

// LayerVerdict is the tuning outcome of one network layer.
type LayerVerdict struct {
	Layer  NetworkLayer
	Kind   Kind
	Config conv.Config
	M      Measurement
	// Shared is true when the verdict did not run its own search: it was
	// satisfied from the cache or deduplicated onto another layer's search
	// of an identical key.
	Shared bool
	// Partial is true when the search behind this verdict was cut short by
	// the context (deadline or cancellation): Config/M are best-so-far, not
	// converged. The truncated engine state is persisted at its honest
	// budget, so a repeated request with Resume continues the search.
	Partial bool
	// Tier is the verdict's provenance: measured (the default), analytic
	// (a measurement-free estimate from the bound-derived time model), or
	// refined (a measured upgrade of an earlier analytic answer).
	Tier Tier
}

// netTask is one deduplicated (kind, shape) search of a network sweep.
type netTask struct {
	kind    Kind
	shape   shapes.ConvShape
	sp      *Space
	measure Measurer
	owner   int // first layer index that requested this search

	cfg     conv.Config
	m       Measurement
	shared  bool
	partial bool
	hist    []MeasuredConfig
	err     error
}

// poolRowCap bounds the transferred training rows per pool family; beyond
// it, contributions add incumbent seeds only. poolSeedCapFactor bounds the
// seeds a family accumulates (as a multiple of topK): every seed is
// snapped and measured at the start of a warm search, so an uncapped list
// — e.g. a primed cache with many entries per family — would flood the
// budget with other layers' incumbents instead of leaving room to search.
const (
	poolRowCap        = 512
	poolSeedCapFactor = 2
)

// poolKey addresses one family of a per-(arch, kind) transfer pool. Cost
// structure transfers best between layers sharing kernel extent and
// stride (a ResNet stage's repeated 3×3 blocks, the 1×1 projections, the
// stride-2 downsamplers), so rows and seeds are binned that way and a
// search inherits exactly its own family's state.
type poolKey struct {
	kind        Kind
	hker, strid int
}

func familyOf(kind Kind, s shapes.ConvShape) poolKey {
	return poolKey{kind: kind, hker: s.Hker, strid: s.Strid}
}

// transferPool is the cross-layer state: normalized training rows and
// incumbent seed configurations from finished searches, binned by family.
// It is written between waves and read-only while searches run, so no lock
// is needed.
type transferPool struct {
	topK     int
	byFamily map[poolKey]*poolEntry
}

type poolEntry struct {
	feats [][]float64
	costs []float64
	seeds []conv.Config
}

func newTransferPool(topK int) *transferPool {
	if topK < 1 {
		topK = 4
	}
	return &transferPool{topK: topK, byFamily: make(map[poolKey]*poolEntry)}
}

func (p *transferPool) has(k poolKey) bool {
	pe := p.byFamily[k]
	return pe != nil && (len(pe.feats) > 0 || len(pe.seeds) > 0)
}

// contribute folds one finished search into its family's pool: successful
// measurements become training rows — featurized in the source space, with
// log-costs recentered to zero mean so only relative (shape-free) cost
// transfers — and the top-K configurations become warm seeds.
func (p *transferPool) contribute(kind Kind, sp *Space, hist []MeasuredConfig) {
	var sum float64
	n := 0
	for _, h := range hist {
		if h.OK {
			sum += math.Log(h.M.Seconds)
			n++
		}
	}
	if n == 0 {
		return
	}
	mean := sum / float64(n)
	key := familyOf(kind, sp.Shape)
	pe := p.byFamily[key]
	if pe == nil {
		pe = &poolEntry{}
		p.byFamily[key] = pe
	}
	for _, h := range hist {
		if !h.OK || len(pe.feats) >= poolRowCap {
			continue
		}
		pe.feats = append(pe.feats, sp.Features(h.Config))
		pe.costs = append(pe.costs, math.Log(h.M.Seconds)-mean)
	}
	for _, c := range topConfigs(hist, p.topK) {
		if len(pe.seeds) >= poolSeedCapFactor*p.topK {
			break
		}
		pe.seeds = append(pe.seeds, c)
	}
}

// prime rebuilds the pool from a loaded cache file: every state-carrying
// entry of this architecture contributes, in deterministic key order.
func (p *transferPool) prime(cache *Cache, arch memsim.Arch) {
	for _, e := range cache.stateEntries(arch.Name) {
		kind, err := kindFromString(e.Kind)
		if err != nil {
			continue // Load validated these; be defensive anyway
		}
		s := e.Shape.shape()
		sp, err := NewSpace(s, arch, kind, winogradDefaultE(kind), true)
		if err != nil {
			continue
		}
		p.contribute(kind, sp, e.history())
	}
}

// warmFor assembles the WarmStart a search inherits from its family, or
// nil when the pool has nothing for it. The slices are shared read-only
// across concurrent searches; Tune copies before it appends.
func (p *transferPool) warmFor(k poolKey) *WarmStart {
	pe := p.byFamily[k]
	if pe == nil || (len(pe.feats) == 0 && len(pe.seeds) == 0) {
		return nil
	}
	return &WarmStart{Feats: pe.feats, Costs: pe.costs, Seeds: pe.seeds}
}

func winogradDefaultE(k Kind) int {
	if k == Winograd {
		return 2
	}
	return 0
}

// candidateKinds filters the requested kinds by a layer's signature — the
// torchinductor idiom: cheap static gating decides which kernel templates
// even enter the search, and the shared cache then dedups identical
// (kind, shape) searches across layers. Direct is always a candidate (it
// admits every shape and anchors the sweep's error handling); Winograd only
// where the paper's dataflow applies, FFT only for unit-stride layers with
// kernels of at least 3×3 (below that the transform constant cannot win).
// CandidateKinds is the exported form of the gating, for callers that must
// predict the sweep's search set without running it (the service's
// admission accounting).
func CandidateKinds(s shapes.ConvShape, winograd bool, kinds []Kind) []Kind {
	return candidateKinds(s, NetworkOptions{Winograd: winograd, Kinds: kinds})
}

func candidateKinds(s shapes.ConvShape, opts NetworkOptions) []Kind {
	want := func(k Kind) bool {
		for _, kk := range opts.Kinds {
			if kk == k {
				return true
			}
		}
		return false
	}
	kinds := []Kind{Direct}
	if (opts.Winograd || want(Winograd)) && s.WinogradOK() && s.Hker == 3 {
		kinds = append(kinds, Winograd)
	}
	if want(FFT) && s.Strid == 1 && s.Hker >= 3 && s.Wker >= 3 {
		kinds = append(kinds, FFT)
	}
	if want(ImplicitGEMM) {
		kinds = append(kinds, ImplicitGEMM)
	}
	return kinds
}

// TuneNetwork tunes every layer of a network with the paper's engine,
// fanning the deduplicated (kind, shape) searches across opts.Workers
// goroutines against a shared cache. Verdicts come back in layer order
// and, for a fixed opts.Tune.Seed, are identical for any
// Workers/opts.Tune.Workers setting — with or without warm-starting.
// cache may be nil for a throwaway run; passing a loaded persistent cache
// skips already-tuned layers entirely (or resumes them, with opts.Resume)
// and seeds the transfer pool from any persisted engine state.
func TuneNetwork(arch memsim.Arch, layers []NetworkLayer, cache *Cache, opts NetworkOptions) ([]LayerVerdict, error) {
	return TuneNetworkContext(context.Background(), arch, layers, cache, opts)
}

// TuneNetworkContext is TuneNetwork bounded by a context: when ctx is
// cancelled or its deadline passes, every still-running (and not yet
// started) search stops after its Section 5 seed measurements and reports
// best-so-far, so the sweep returns a complete verdict list with the
// truncated layers marked Partial instead of an error. Truncated engine
// state is persisted at its honest budget; a repeated request with Resume
// picks each search up where the deadline cut it.
func TuneNetworkContext(ctx context.Context, arch memsim.Arch, layers []NetworkLayer, cache *Cache, opts NetworkOptions) ([]LayerVerdict, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("autotune: no layers to tune")
	}
	if cache == nil {
		cache = NewCache()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Deduplicate the layer list into search tasks, preserving first-come
	// layer order so the schedule (and therefore the warm pool) is a pure
	// function of the input.
	var tasks []*netTask
	taskIdx := make(map[string]int)
	addTask := func(kind Kind, s shapes.ConvShape, layer int) (int, error) {
		key := cacheKey(arch.Name, kind, s)
		if i, ok := taskIdx[key]; ok {
			return i, nil
		}
		sp, err := NewSpace(s, arch, kind, winogradDefaultE(kind), true)
		if err != nil {
			return -1, err
		}
		tasks = append(tasks, &netTask{kind: kind, shape: s, sp: sp,
			measure: NewMemoMeasure(arch, s, kind).Measure, owner: layer})
		taskIdx[key] = len(tasks) - 1
		return len(tasks) - 1, nil
	}
	// tasksOf[i] lists the task index per candidate kind of layer i, the
	// mandatory Direct search first.
	tasksOf := make([][]int, len(layers))
	for i, l := range layers {
		for _, kind := range candidateKinds(l.Shape, opts) {
			ti, err := addTask(kind, l.Shape, i)
			if err != nil {
				if kind == Direct {
					return nil, fmt.Errorf("autotune: layer %q: %w", l.Name, err)
				}
				// A non-direct kind may legitimately not admit a layer; the
				// remaining candidates stand alone then.
				continue
			}
			tasksOf[i] = append(tasksOf[i], ti)
		}
	}

	run := func(idxs []int, pool *transferPool) {
		fanIndexed(len(idxs), workers, func(j int) {
			t := tasks[idxs[j]]
			to := opts.Tune
			if pool != nil {
				to.Warm = pool.warmFor(familyOf(t.kind, t.shape))
			}
			measure := liftMeasurer(t.measure)
			if opts.WrapMeasurer != nil {
				measure = opts.WrapMeasurer(t.kind, t.shape, t.measure)
			}
			t.cfg, t.m, t.shared, t.hist, t.partial, t.err = tuneShared(ctx, cache, t.sp, measure, to, opts.Resume)
		})
	}

	if !opts.Warm {
		all := make([]int, len(tasks))
		for i := range all {
			all[i] = i
		}
		run(all, nil)
	} else {
		// Two deterministic waves: wave 0 is one representative search per
		// layer family the pool has nothing for yet (cold), wave 1 is
		// everything else, warm off the pool frozen after wave 0. Both
		// waves fan across the workers; determinism holds because searches
		// within a wave never feed each other.
		pool := newTransferPool(opts.WarmTopK)
		pool.prime(cache, arch)
		var wave0, wave1 []int
		cold := make(map[poolKey]bool)
		for i, t := range tasks {
			fam := familyOf(t.kind, t.shape)
			if !pool.has(fam) && !cold[fam] {
				cold[fam] = true
				wave0 = append(wave0, i)
			} else {
				wave1 = append(wave1, i)
			}
		}
		run(wave0, nil)
		for _, i := range wave0 {
			if t := tasks[i]; t.err == nil {
				pool.contribute(t.kind, t.sp, t.hist)
			}
		}
		run(wave1, pool)
	}

	verdicts := make([]LayerVerdict, len(layers))
	for i, l := range layers {
		dt := tasks[tasksOf[i][0]] // the mandatory Direct search
		if dt.err != nil {
			if !opts.AnalyticFallback {
				return nil, fmt.Errorf("autotune: layer %q: %w", l.Name, dt.err)
			}
			// Degraded path. If any alternative kind of the failed direct
			// search measured fine, the best such real verdict wins;
			// otherwise the layer is answered by the analytic tier so the
			// sweep stays complete. Only an unrankable space still fails
			// the sweep.
			best := -1
			for _, ti := range tasksOf[i][1:] {
				if t := tasks[ti]; t.err == nil && (best < 0 || t.m.Seconds < tasks[best].m.Seconds) {
					best = ti
				}
			}
			if best >= 0 {
				t := tasks[best]
				verdicts[i] = LayerVerdict{Layer: l, Kind: t.kind, Config: t.cfg, M: t.m,
					Shared: t.shared || t.owner != i, Partial: t.partial}
				continue
			}
			spaces := make([]*Space, 0, len(tasksOf[i]))
			for _, ti := range tasksOf[i] {
				spaces = append(spaces, tasks[ti].sp)
			}
			av, ok := analyticLayerVerdict(l, spaces, opts.AnalyticCalibration)
			if !ok {
				return nil, fmt.Errorf("autotune: layer %q: %w", l.Name, dt.err)
			}
			verdicts[i] = av
			continue
		}
		v := LayerVerdict{Layer: l, Kind: Direct, Config: dt.cfg, M: dt.m,
			Shared: dt.shared || dt.owner != i, Partial: dt.partial}
		for _, ti := range tasksOf[i][1:] {
			// A failed alternative-kind search (e.g. no valid configuration
			// for tiny spatial dims) leaves the incumbent verdict standing.
			if t := tasks[ti]; t.err == nil && t.m.Seconds < v.M.Seconds {
				v.Kind, v.Config, v.M = t.kind, t.cfg, t.m
				v.Shared = t.shared || t.owner != i
				v.Partial = t.partial
			}
		}
		verdicts[i] = v
	}
	return verdicts, nil
}

// NetworkSeconds sums repeat-weighted simulated layer times — the
// end-to-end convolution time of the tuned network.
func NetworkSeconds(verdicts []LayerVerdict) float64 {
	var t float64
	for _, v := range verdicts {
		r := v.Layer.Repeat
		if r < 1 {
			r = 1
		}
		t += v.M.Seconds * float64(r)
	}
	return t
}
