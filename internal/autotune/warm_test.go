package autotune

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/conv"
	"repro/internal/shapes"
)

// randomNetwork draws a small staged network — the repeated-geometry
// structure (same kernel family, channels doubling as resolution halves,
// repeated blocks per stage) that cross-layer transfer exists for, with the
// stage depths, repeats, kernel and base width randomized.
func randomNetwork(rng *rand.Rand) []NetworkLayer {
	k := []int{1, 3, 3}[rng.Intn(3)]
	ch := []int{16, 32}[rng.Intn(2)]
	hw := 28
	var layers []NetworkLayer
	for stage := 0; stage < 3; stage++ {
		s := shapes.ConvShape{Batch: 1, Cin: ch, Cout: ch, Hker: k, Wker: k,
			Strid: 1, Pad: k / 2, Hin: hw, Win: hw}
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			layers = append(layers, NetworkLayer{Name: fmt.Sprintf("s%d_%d", stage, i),
				Shape: s, Repeat: 1 + rng.Intn(2)})
		}
		hw /= 2
		ch *= 2
	}
	return layers
}

// The warm-start property: on randomized repeated-geometry networks, a
// warm-started sweep's repeat-weighted network time is never worse than
// the cold sweep's at equal per-layer budget. Warm layers measure the
// transferred incumbents first and the bound filter prunes against them
// from measurement #1, so on related geometry transfer only adds
// information (the trial set pins ten networks across both algorithms).
func TestWarmNetworkNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		layers := randomNetwork(rng)
		opts := NetworkOptions{Tune: smallOpts(32, 3), Workers: 4, Winograd: trial%2 == 0}
		cold, err := TuneNetwork(arch, layers, NewCache(), opts)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		warm := opts
		warm.Warm = true
		got, err := TuneNetwork(arch, layers, NewCache(), warm)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		cs, ws := NetworkSeconds(cold), NetworkSeconds(got)
		if ws > cs*(1+1e-9) {
			t.Errorf("trial %d: warm network time %.6g worse than cold %.6g", trial, ws, cs)
		}
	}
}

// Warm-started sweeps stay bit-identical across every worker knob: the
// two-wave schedule freezes the transfer pool between waves, so neither
// the layer fan-out nor the per-search measurement executor can reorder
// what any search sees.
func TestTuneNetworkWarmDeterministic(t *testing.T) {
	layers := resnetBlockLayers()
	run := func(workers int) []LayerVerdict {
		o := NetworkOptions{Tune: smallOpts(24, 3), Workers: workers, Winograd: true, Warm: true}
		o.Tune.Workers = workers
		v, err := TuneNetwork(arch, layers, NewCache(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return v
	}
	ref := run(1)
	for _, w := range []int{4, 9} {
		got := run(w)
		for i := range layers {
			if got[i].Config != ref[i].Config || got[i].M != ref[i].M || got[i].Kind != ref[i].Kind {
				t.Errorf("layer %s: warm verdict differs at workers=%d: %+v vs %+v",
					layers[i].Name, w, got[i], ref[i])
			}
		}
	}
}

// A warm-started Tune — transferred rows, seeds, in-walk bound steering —
// is bit-identical (trace, curve, Pruned counter) for any measurement
// worker count, like the cold engine.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	donor := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 14, Win: 14, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	dsp, err := NewSpace(donor, arch, Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	dtr, err := Tune(dsp, DirectMeasurer(arch, donor), smallOpts(32, 5))
	if err != nil {
		t.Fatal(err)
	}
	pool := newTransferPool(4)
	pool.contribute(Direct, dsp, dtr.History)
	warm := pool.warmFor(familyOf(Direct, donor))
	if warm == nil || len(warm.Feats) == 0 || len(warm.Seeds) == 0 {
		t.Fatal("donor search contributed nothing to the pool")
	}

	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	opts := smallOpts(48, 11)
	opts.Warm = warm
	ref, err := Tune(sp, measure, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 9} {
		o := opts
		o.Workers = workers
		tr, err := Tune(sp, measure, o)
		if err != nil {
			t.Fatal(err)
		}
		if !traceEqual(ref, tr) {
			t.Errorf("workers=%d: warm trace diverges (best %v vs %v, pruned %d vs %d)",
				workers, tr.Best, ref.Best, tr.Pruned, ref.Pruned)
		}
	}
}

// A cache saved by a state-persisting run rebuilds the transfer pool on
// load, so a later sweep skips even the cold representative wave.
func TestWarmPoolPrimedFromCache(t *testing.T) {
	layers := resnetBlockLayers()
	cache := NewCache()
	opts := NetworkOptions{Tune: smallOpts(24, 3), Workers: 4, Warm: true}
	if _, err := TuneNetwork(arch, layers, cache, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cache.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCache()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	pool := newTransferPool(0)
	pool.prime(restored, arch)
	fam := familyOf(Direct, layers[1].Shape)
	if !pool.has(fam) {
		t.Fatal("reloaded cache primed no pool for the stage family")
	}
	w := pool.warmFor(fam)
	if len(w.Feats) == 0 || len(w.Feats) != len(w.Costs) || len(w.Seeds) == 0 {
		t.Fatalf("degenerate primed pool: %d rows, %d costs, %d seeds",
			len(w.Feats), len(w.Costs), len(w.Seeds))
	}
}

// The pool's seed list is capped: repeated contributions to one family
// (e.g. a primed cache with many sibling entries) must not accumulate an
// unbounded seed set that would flood a warm search's budget before it
// can explore.
func TestWarmPoolSeedCap(t *testing.T) {
	donor := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 14, Win: 14, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	dsp, err := NewSpace(donor, arch, Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	dtr, err := Tune(dsp, DirectMeasurer(arch, donor), smallOpts(32, 5))
	if err != nil {
		t.Fatal(err)
	}
	pool := newTransferPool(4)
	for i := 0; i < 6; i++ {
		pool.contribute(Direct, dsp, dtr.History)
	}
	w := pool.warmFor(familyOf(Direct, donor))
	if got, max := len(w.Seeds), poolSeedCapFactor*4; got > max {
		t.Errorf("pool accumulated %d seeds, cap is %d", got, max)
	}
}

// countRepeats wraps a measurer and fails the test if any config in
// forbidden is ever measured.
func countRepeats(t *testing.T, inner Measurer, forbidden map[conv.Config]bool) (Measurer, *int) {
	t.Helper()
	calls := new(int)
	return func(c conv.Config) (Measurement, bool) {
		*calls++
		if forbidden[c] {
			t.Errorf("config %v re-measured despite persisted history", c)
		}
		return inner(c)
	}, calls
}

// Resume at a doubled budget: the persisted history replays — zero repeat
// measurements — the convergence curve extends the original exactly, and
// the verdict can only improve.
func TestResumeDoubledBudgetNoRemeasure(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	cache := NewCache()
	cfg0, m0, err := TuneCached(cache, sp, measure, smallOpts(32, 5))
	if err != nil {
		t.Fatal(err)
	}
	hist, curve, ok := cache.State(arch.Name, Direct, layer())
	if !ok || len(hist) == 0 {
		t.Fatal("TuneCached persisted no engine state")
	}
	already := make(map[conv.Config]bool, len(hist))
	for _, h := range hist {
		already[h.Config] = true
	}

	counting, calls := countRepeats(t, measure, already)
	tr, err := TuneResumed(cache, sp, counting, smallOpts(64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if *calls == 0 {
		t.Error("resume at doubled budget measured nothing new")
	}
	if tr.Measurements != len(hist)+*calls {
		t.Errorf("measurements %d != replayed %d + fresh %d", tr.Measurements, len(hist), *calls)
	}
	if len(tr.Curve) < len(curve) {
		t.Fatalf("resumed curve shorter than original: %d < %d", len(tr.Curve), len(curve))
	}
	for i := range curve {
		if tr.Curve[i] != curve[i] {
			t.Fatalf("resumed curve diverges from the original at %d", i)
		}
	}
	if tr.BestM.Seconds > m0.Seconds {
		t.Errorf("resumed best %.6g worse than original %.6g (%v vs %v)",
			tr.BestM.Seconds, m0.Seconds, tr.Best, cfg0)
	}
	// The grown state persisted: resuming again under the same budget is
	// satisfied from the cache without a single measurement.
	counting2, calls2 := countRepeats(t, measure, nil)
	tr2, err := TuneResumed(cache, sp, counting2, smallOpts(64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if *calls2 != 0 {
		t.Errorf("covered resume still measured %d configs", *calls2)
	}
	if tr2.BestM != tr.BestM {
		t.Errorf("covered resume verdict %v != persisted %v", tr2.BestM, tr.BestM)
	}
}

// A search that stopped on patience below its budget is covered at that
// budget: resuming with identical options must be a no-op (no fresh
// measurements), not a repeated patience-burn.
func TestResumeCoveredByPatienceStop(t *testing.T) {
	sp := mustSpace(t, true)
	measure := DirectMeasurer(arch, layer())
	cache := NewCache()
	opts := smallOpts(200, 5)
	opts.Patience = 10
	if _, _, err := TuneCached(cache, sp, measure, opts); err != nil {
		t.Fatal(err)
	}
	hist, _, ok := cache.State(arch.Name, Direct, layer())
	if !ok || len(hist) >= 200 {
		t.Fatalf("setup: want a patience-stopped history below budget, got %d rows", len(hist))
	}
	counting, calls := countRepeats(t, measure, nil)
	tr, err := TuneResumed(cache, sp, counting, opts)
	if err != nil {
		t.Fatal(err)
	}
	if *calls != 0 {
		t.Errorf("identical resume of a patience-converged search measured %d configs", *calls)
	}
	if tr.Measurements != len(hist) {
		t.Errorf("synthesized trace reports %d measurements, cache holds %d", tr.Measurements, len(hist))
	}
}

// TuneNetwork with Resume re-enters only under-budget cached layers and
// repeats no measurement.
func TestTuneNetworkResume(t *testing.T) {
	layers := resnetBlockLayers()
	cache := NewCache()
	if _, err := TuneNetwork(arch, layers, cache, NetworkOptions{Tune: smallOpts(16, 3), Workers: 4}); err != nil {
		t.Fatal(err)
	}
	already := make(map[conv.Config]bool)
	for _, l := range layers {
		if hist, _, ok := cache.State(arch.Name, Direct, l.Shape); ok {
			for _, h := range hist {
				already[h.Config] = true
			}
		}
	}
	if len(already) == 0 {
		t.Fatal("no persisted state after the first sweep")
	}
	first := cache.Len()
	o := NetworkOptions{Tune: smallOpts(32, 3), Workers: 4, Resume: true}
	verdicts, err := TuneNetwork(arch, layers, cache, o)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != first {
		t.Errorf("resume changed the key count: %d -> %d", first, cache.Len())
	}
	for i, l := range layers {
		hist, _, ok := cache.State(arch.Name, Direct, l.Shape)
		if !ok {
			t.Fatalf("layer %s lost its state", l.Name)
		}
		if len(hist) <= 16-1 {
			t.Errorf("layer %s: resumed history not grown (%d rows)", l.Name, len(hist))
		}
		// The resumed history must extend the original: no prefix config
		// re-measured, and the verdict is at least as good as before.
		seen := make(map[conv.Config]int)
		for _, h := range hist {
			seen[h.Config]++
		}
		for c, n := range seen {
			if n > 1 {
				t.Fatalf("layer %s: config %v appears %d times in resumed history", l.Name, c, n)
			}
		}
		_ = i
		_ = verdicts
	}
}
