package autotune

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conv"
)

// This file is the measurement executor of the engine: each iteration the
// tuner hands it one batch of candidate configurations and it fans the
// measurements out across Workers goroutines, the way production
// auto-tuners (TVM's RPC runner, Bolt) parallelize on-device measurement
// to hide its latency. Results come back indexed by submission order, so
// the engine's bookkeeping — and therefore the whole tuning run — is
// bit-identical for any worker count.

// measured is one measurement outcome, slotted by submission index.
type measured struct {
	m  Measurement
	ok bool
}

// measureAll measures cfgs[i] into result[i], fanning the calls across up
// to workers goroutines. latency emulates the per-measurement hardware
// round-trip (compile + launch + read-back) that the dry simulator
// otherwise elides; overlapping those waits is where a multi-worker
// executor pays off on real devices. The Measurer must be safe for
// concurrent use when workers > 1.
func measureAll(measure Measurer, cfgs []conv.Config, workers int, latency time.Duration) []measured {
	return measureAllInto(nil, measure, cfgs, workers, latency)
}

// measureAllInto is measureAll with a caller-recycled result buffer: the
// tuner passes the previous batch's slice back in, so steady-state batches
// allocate nothing in the executor.
func measureAllInto(out []measured, measure Measurer, cfgs []conv.Config, workers int, latency time.Duration) []measured {
	if cap(out) < len(cfgs) {
		out = make([]measured, len(cfgs))
	}
	out = out[:len(cfgs)]
	run := func(i int) {
		if latency > 0 {
			time.Sleep(latency)
		}
		out[i].m, out[i].ok = measure(cfgs[i])
	}
	fanIndexed(len(cfgs), workers, run)
	return out
}

// fanIndexed calls fn(0) … fn(n-1), fanning the calls across up to workers
// goroutines (serially for workers <= 1). It is the worker-pool primitive
// shared by the measurement executor and the network-level tuner.
func fanIndexed(n, workers int, fn func(int)) {
	fanIndexedCtx(context.Background(), n, workers, fn)
}

// fanIndexedCtx is fanIndexed with cooperative cancellation: workers stop
// claiming new indexes once ctx is done, and the number of completed calls
// is returned. Because indexes are claimed from one monotonic counter and
// every claimed index runs to completion, the completed set is always the
// contiguous prefix 0 … done-1 — which is what lets a cancelled tuning
// batch book a deterministic prefix of its outcomes and report a coherent
// partial verdict instead of a hole-ridden one. An in-flight call is never
// interrupted (a real device measurement cannot be recalled mid-run);
// cancellation takes effect at the next claim.
func fanIndexedCtx(ctx context.Context, n, workers int, fn func(int)) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i
			}
			fn(i)
		}
		return n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	done := int(next.Load())
	if done > n {
		done = n
	}
	return done
}

// sleepCtx waits for d, returning early (false) if ctx is cancelled first.
// It is the interruptible wait behind retry backoff.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
