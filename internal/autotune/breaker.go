package autotune

import (
	"errors"
	"sync"
	"time"

	"repro/internal/conv"
)

// This file is the measurement circuit breaker: the degradation trigger
// for a dying backend. The retry pipeline (resilient.go) absorbs sporadic
// transient failures per configuration; the breaker watches the failure
// *rate* across configurations and, when a sliding window says the
// measurer is effectively down, stops feeding it — every further
// measurement fast-fails with ErrBreakerOpen so searches collapse in
// microseconds instead of burning the full retry budget per config, and
// the service above answers from the analytic tier. After a cooldown the
// breaker goes half-open: a handful of probe measurements are let through,
// one success restores service, one failure re-opens it. The classic
// closed → open → half-open machine, applied to the FallibleMeasurer seam.

// ErrBreakerOpen is the fast-fail error an open breaker returns for every
// measurement. It counts as a transient failure to the retry pipeline
// (which is what collapses a search quickly — quarantine without backoff
// burn), but is never recorded into the breaker's own window.
var ErrBreakerOpen = errors.New("autotune: measurement circuit breaker open")

// BreakerState is the breaker's position in the state machine.
type BreakerState uint8

const (
	// BreakerClosed: measurements flow; outcomes are windowed.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every measurement fast-fails until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen: up to Probes measurements are admitted; the first
	// success closes the breaker, any failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerConfig configures the measurement circuit breaker. The zero value
// is disabled: NewBreaker returns nil and the seam is untouched.
type BreakerConfig struct {
	// Threshold is the windowed transient-failure rate (0, 1] that trips
	// the breaker; 0 disables the breaker entirely.
	Threshold float64
	// Window is the sliding window of measurement outcomes the rate is
	// computed over (default 32).
	Window int
	// MinSamples is how many outcomes the window must hold before the rate
	// is trusted (default 8, capped at Window) — a single early failure
	// must not trip a 100% rate.
	MinSamples int
	// Cooldown is how long an open breaker waits before going half-open
	// (default 5s).
	Cooldown time.Duration
	// Probes is how many measurements a half-open breaker admits before
	// fast-failing again while it waits for their outcomes (default 3).
	Probes int
	// OnTransition, when non-nil, observes every state change. It is
	// invoked under the breaker's lock: keep it cheap (counters) and never
	// call back into the breaker.
	OnTransition func(from, to BreakerState)
	// Now is the clock; nil means time.Now. A seam for tests.
	Now func() time.Time
}

// Enabled reports whether this configuration arms a breaker.
func (c BreakerConfig) Enabled() bool { return c.Threshold > 0 }

func (c BreakerConfig) normalized() BreakerConfig {
	if c.Window < 1 {
		c.Window = 32
	}
	if c.MinSamples < 1 {
		c.MinSamples = 8
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Probes < 1 {
		c.Probes = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a concurrency-safe measurement circuit breaker. One instance
// guards one backend and is shared by every search wrapping through it;
// the zero value is not usable — construct with NewBreaker.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring of outcomes, true = transient failure
	next     int    // ring write position
	filled   int
	fails    int
	openedAt time.Time
	probes   int // measurements admitted in the current half-open period
}

// NewBreaker builds a breaker, or returns nil when cfg is disabled — a nil
// Breaker's Wrap is the identity, so callers need no special-casing.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.normalized()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// State reports the breaker's current state, resolving an elapsed cooldown
// (open → half-open) first — so polling State is enough to observe the
// cooldown expiring even when no measurement has been attempted.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolve()
	return b.state
}

// Trip forces the breaker open now, as if the rate threshold had been
// crossed — the forced-degraded operation mode (and the test seam).
func (b *Breaker) Trip() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trip()
}

// Wrap puts the breaker in front of a fallible measurer. A nil receiver
// returns m unchanged.
func (b *Breaker) Wrap(m FallibleMeasurer) FallibleMeasurer {
	if b == nil {
		return m
	}
	return func(c conv.Config) (Measurement, bool, error) {
		if !b.allow() {
			return Measurement{}, false, ErrBreakerOpen
		}
		meas, ok, err := m(c)
		// Only transient errors are failures; ok=false means the config is
		// invalid — a healthy answer from a healthy backend.
		b.record(err != nil)
		return meas, ok, err
	}
}

// resolve moves open → half-open once the cooldown has elapsed. Callers
// hold b.mu.
func (b *Breaker) resolve() {
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.probes = 0
		b.transition(BreakerHalfOpen)
	}
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolve()
	switch b.state {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		if b.probes >= b.cfg.Probes {
			return false
		}
		b.probes++
	}
	return true
}

func (b *Breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if b.filled == len(b.window) {
			if b.window[b.next] {
				b.fails--
			}
		} else {
			b.filled++
		}
		b.window[b.next] = failed
		if failed {
			b.fails++
		}
		b.next = (b.next + 1) % len(b.window)
		if b.filled >= b.cfg.MinSamples && float64(b.fails)/float64(b.filled) >= b.cfg.Threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if failed {
			b.trip()
		} else {
			// One healthy probe restores service; if the backend is still
			// mostly down, the windowed rate re-trips within MinSamples.
			b.transition(BreakerClosed)
			b.resetWindow()
		}
	case BreakerOpen:
		// A measurement admitted before the trip finished after it; the
		// trip already accounted for the window, so the straggler is
		// ignored rather than double-booked.
	}
}

// trip opens the breaker and starts the cooldown. Callers hold b.mu.
func (b *Breaker) trip() {
	b.openedAt = b.cfg.Now()
	b.resetWindow()
	b.probes = 0
	b.transition(BreakerOpen)
}

func (b *Breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.next, b.filled, b.fails = 0, 0, 0
}
