package autotune

import "repro/internal/conv"

// This file is the engine's ranking machinery: every iteration the tuner
// must keep the k best walker proposals (by predicted cost) and the k best
// measured configurations (by real cost) out of streams much larger than
// k. Both use bestK — a bounded max-heap whose root is the worst retained
// item — instead of sorting the whole stream, and every backing array is
// recycled across iterations, so steady-state ranking allocates nothing.

// scored pairs a configuration with a cost: measured seconds for the
// incumbent set, a model prediction for proposal ranking.
type scored struct {
	cfg  conv.Config
	cost float64
}

// configLess is a total order on configurations (axes compared in
// declaration order). It breaks exact cost ties so rankings never depend
// on map iteration order or heap layout — with it, selection is a pure
// function of the candidate set.
func configLess(a, b conv.Config) bool {
	switch {
	case a.TileX != b.TileX:
		return a.TileX < b.TileX
	case a.TileY != b.TileY:
		return a.TileY < b.TileY
	case a.TileZ != b.TileZ:
		return a.TileZ < b.TileZ
	case a.ThreadsX != b.ThreadsX:
		return a.ThreadsX < b.ThreadsX
	case a.ThreadsY != b.ThreadsY:
		return a.ThreadsY < b.ThreadsY
	case a.ThreadsZ != b.ThreadsZ:
		return a.ThreadsZ < b.ThreadsZ
	case a.SharedPerBlock != b.SharedPerBlock:
		return a.SharedPerBlock < b.SharedPerBlock
	case a.Layout != b.Layout:
		return a.Layout < b.Layout
	case a.WinogradE != b.WinogradE:
		return a.WinogradE < b.WinogradE
	}
	return false
}

// scoredBefore ranks by cost ascending, ties by config order.
func scoredBefore(a, b scored) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return configLess(a.cfg, b.cfg)
}

// bestK retains the k best scored items of a stream. Internally a max-heap
// on scoredBefore: the root is the worst retained item, so a push either
// lands in O(log k) or is rejected in O(1) against the root.
type bestK struct {
	items []scored
	k     int
}

// reset empties the heap and sets its bound, keeping the backing array.
func (h *bestK) reset(k int) {
	h.items = h.items[:0]
	h.k = k
}

// push offers one item; it is retained iff it is among the k best so far.
func (h *bestK) push(s scored) {
	if h.k < 1 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, s)
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !scoredBefore(h.items[p], h.items[i]) {
				break
			}
			h.items[p], h.items[i] = h.items[i], h.items[p]
			i = p
		}
		return
	}
	if !scoredBefore(s, h.items[0]) {
		return
	}
	h.items[0] = s
	h.siftDown(0)
}

func (h *bestK) siftDown(i int) {
	n := len(h.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && scoredBefore(h.items[worst], h.items[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && scoredBefore(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// topConfigs extracts the k best successfully-measured configurations of a
// history, best first — the incumbent seeds a finished search contributes
// to the cross-layer transfer pool.
func topConfigs(hist []MeasuredConfig, k int) []conv.Config {
	var h bestK
	h.reset(k)
	for _, r := range hist {
		if r.OK {
			h.push(scored{r.Config, r.M.Seconds})
		}
	}
	ranked := h.sorted(nil)
	out := make([]conv.Config, len(ranked))
	for i, s := range ranked {
		out[i] = s.cfg
	}
	return out
}

// sorted writes the retained items into dst (recycled) in best-to-worst
// order and returns it. k is small (a batch or walker count), so an
// insertion sort beats a general sort and allocates nothing.
func (h *bestK) sorted(dst []scored) []scored {
	dst = append(dst[:0], h.items...)
	for i := 1; i < len(dst); i++ {
		s := dst[i]
		j := i - 1
		for j >= 0 && scoredBefore(s, dst[j]) {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = s
	}
	return dst
}
