package autotune

import "sort"

// FeatureNames labels the cost-model feature vector for diagnostics, in the
// order produced by Space.Features.
var FeatureNames = []string{
	"log2(tileX)", "log2(tileY)", "log2(tileZ)", "log2(volume)",
	"log2(threads)", "log2(Sb)", "log2(blocks)", "optimality-gap",
	"shared-pressure", "log2(xy)", "layout", "warp-sized",
	"log2(z*R)", "volume/Sb",
}

// Importance is one feature's aggregate contribution to the fitted model.
type Importance struct {
	Feature string
	// Splits counts how many tree nodes split on the feature.
	Splits int
	// Gain would require retraining bookkeeping; split counts are the
	// standard cheap proxy (XGBoost's "weight" importance).
}

// FeatureImportance returns per-feature split counts of a fitted model,
// sorted descending — which knobs the cost model learned to care about.
func (m *GBTModel) FeatureImportance() []Importance {
	counts := make(map[int]int)
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil || n.leaf {
			return
		}
		counts[n.feature]++
		walk(n.left)
		walk(n.right)
	}
	for _, t := range m.trees {
		walk(t)
	}
	out := make([]Importance, 0, len(counts))
	for f, c := range counts {
		name := "unknown"
		if f >= 0 && f < len(FeatureNames) {
			name = FeatureNames[f]
		}
		out = append(out, Importance{Feature: name, Splits: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Splits != out[j].Splits {
			return out[i].Splits > out[j].Splits
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}
