package autotune

import (
	"context"
	"sort"
	"time"

	"repro/internal/conv"
)

// This file is the fault-tolerance layer of the measurement pipeline. On
// real hardware, measurement — the paper's scarce resource — is also the
// unreliable one: on-device runs fail transiently, time out, and return
// noisy readings, which is where production auto-tuners lose hours. The
// engine therefore distinguishes two failure modes at the measurement seam:
//
//   - "config invalid" (Measurer's ok=false): deterministic, never
//     retried — the configuration cannot build or exceeds resources.
//   - transient error (FallibleMeasurer's non-nil error): the measurement
//     itself failed and may succeed if retried.
//
// The resilient wrapper below turns a FallibleMeasurer into the reliable
// per-config evaluation the tuner loop consumes: capped exponential backoff
// with deterministic seeded jitter between retries, quarantine after a
// configurable number of consecutive failures (booked as a failed config,
// counted in Trace.Quarantined), and a noisy-reading defense that
// re-measures suspicious readings and takes the median of k. All of it is
// inert under the zero RetryPolicy with an error-free measurer, keeping the
// default path bit-identical to the fault-oblivious engine.

// FallibleMeasurer is the error-aware measurement seam. A non-nil error is
// a transient measurement failure (device fault, timeout, lost connection)
// distinct from "config invalid": the former may be retried, the latter is
// deterministic and final. Implementations must be safe for concurrent use
// when the engine runs with Workers > 1.
type FallibleMeasurer func(conv.Config) (Measurement, bool, error)

// liftMeasurer adapts an infallible Measurer to the fallible seam; the
// lifted measurer never errors, so retry machinery never engages.
func liftMeasurer(m Measurer) FallibleMeasurer {
	return func(c conv.Config) (Measurement, bool, error) {
		meas, ok := m(c)
		return meas, ok, nil
	}
}

// LiftMeasurer is liftMeasurer for callers outside the package composing
// their own measurement stacks (e.g. a circuit breaker with no fault
// injector underneath).
func LiftMeasurer(m Measurer) FallibleMeasurer { return liftMeasurer(m) }

// RetryPolicy configures the fault-tolerant measurement pipeline. The zero
// value measures each configuration exactly once with no noise defense —
// combined with an error-free measurer, that is bit-identical to the
// pre-fault-tolerance engine.
type RetryPolicy struct {
	// MaxAttempts is the total measurement attempts per configuration
	// (minimum 1). A configuration failing MaxAttempts consecutive
	// transient errors is quarantined: booked as a failed measurement,
	// never re-tried within the run, and counted in Trace.Quarantined.
	MaxAttempts int
	// BackoffBase is the wait before the first retry; each further retry
	// doubles it (capped at BackoffMax when that is set). The actual wait
	// is jittered by a deterministic factor in [0.5, 1.5) seeded by
	// (engine seed, configuration, attempt), so retry schedules are
	// reproducible for a fixed seed at any worker count. 0 retries
	// immediately.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (0 = uncapped).
	BackoffMax time.Duration
	// NoiseThreshold enables the noisy-reading defense (0 = off): a
	// successful reading more than this relative fraction *below* the
	// configuration's I/O-lower-bound floor is physically impossible —
	// the bound is admissible — so it must be noise, and a reading within
	// the threshold of the floor is a would-be near-optimal verdict worth
	// confirming. Either suspicion triggers re-measurement: the reading is
	// re-taken until MedianK readings are in hand and the median (by
	// seconds) is booked. Falsely-fast readings are the dangerous ones (a
	// too-slow reading can only forgo an improvement, a too-fast one
	// corrupts the verdict), which is why the floor anchors the defense.
	NoiseThreshold float64
	// MedianK is how many readings the defense gathers before taking the
	// median (default 3, rounded up to odd so the median is an actual
	// reading).
	MedianK int
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.MedianK < 3 {
		p.MedianK = 3
	}
	if p.MedianK%2 == 0 {
		p.MedianK++
	}
	return p
}

// outcome is one resilient per-config evaluation, with the fault-pipeline
// bookkeeping the trace aggregates.
type outcome struct {
	m  Measurement
	ok bool
	// retries counts the transient-failure re-attempts performed.
	retries int
	// remeasured counts the extra readings the noisy-reading defense took.
	remeasured int
	// quarantined marks a config abandoned after MaxAttempts consecutive
	// transient failures (booked as a failed measurement).
	quarantined bool
}

// resilient evaluates configurations through the fault-tolerance pipeline:
// retry with backoff, quarantine, noisy-reading defense. One instance
// serves one tuning run; run is safe for concurrent use by the executor's
// workers (it shares only the measurer, the space's read-mostly bound memo
// and immutable policy).
type resilient struct {
	measure FallibleMeasurer
	sp      *Space
	policy  RetryPolicy
	seed    int64
}

func newResilient(measure FallibleMeasurer, sp *Space, policy RetryPolicy, seed int64) *resilient {
	return &resilient{measure: measure, sp: sp, policy: policy.normalized(), seed: seed}
}

// run evaluates one configuration to a final outcome. ctx bounds the
// backoff waits only — an in-flight measurement is never interrupted — so
// a cancelled run finishes its current attempt and gives up on retries.
func (r *resilient) run(ctx context.Context, c conv.Config) outcome {
	var out outcome
	fails := 0
	// read performs one reading with the retry loop around transient
	// errors; gaveUp reports quarantine (or cancellation mid-backoff).
	read := func() (Measurement, bool, bool) {
		for {
			m, ok, err := r.measure(c)
			if err == nil {
				fails = 0
				return m, ok, false
			}
			fails++
			if fails >= r.policy.MaxAttempts {
				return Measurement{}, false, true
			}
			out.retries++
			if !sleepCtx(ctx, r.backoff(c, fails)) {
				return Measurement{}, false, true
			}
		}
	}

	m, ok, gaveUp := read()
	if gaveUp {
		out.quarantined = true
		return out
	}
	if !ok {
		return out // config invalid: deterministic, no defense applies
	}
	if thr := r.policy.NoiseThreshold; thr > 0 {
		if floor := r.sp.BoundSeconds(c); floor > 0 && m.Seconds < floor*(1+thr) {
			// Suspicious: below the admissible floor (impossible — noise
			// for sure) or close enough to it to decide a verdict. Gather
			// MedianK readings and book the median.
			readings := []Measurement{m}
			for len(readings) < r.policy.MedianK {
				mi, oki, gaveUp := read()
				if gaveUp {
					out.quarantined = true
					return out
				}
				out.remeasured++
				if !oki {
					// Validity is deterministic; a measurer that flips it
					// mid-run is reporting the config unusable — book that.
					return out
				}
				readings = append(readings, mi)
			}
			sort.Slice(readings, func(i, j int) bool { return readings[i].Seconds < readings[j].Seconds })
			m = readings[len(readings)/2]
		}
	}
	out.m, out.ok = m, true
	return out
}

// backoff is the wait before retry number `attempt` (1-based): capped
// exponential with deterministic jitter in [0.5, 1.5) derived from
// (seed, config, attempt) — reproducible at any worker count, uncorrelated
// across configs so a batch of retries does not thundering-herd.
func (r *resilient) backoff(c conv.Config, attempt int) time.Duration {
	base := r.policy.BackoffBase
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if r.policy.BackoffMax > 0 && d >= r.policy.BackoffMax {
			d = r.policy.BackoffMax
			break
		}
	}
	if r.policy.BackoffMax > 0 && d > r.policy.BackoffMax {
		d = r.policy.BackoffMax
	}
	h := configHash(uint64(r.seed), c, uint64(attempt))
	jitter := 0.5 + float64(h>>11)/(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// configHash mixes a seed, a configuration and a salt with FNV-1a — the
// deterministic randomness source of backoff jitter (and of the chaos
// injector's fault schedule, which must stay stable across worker
// interleavings).
func configHash(seed uint64, c conv.Config, salt uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(seed)
	for _, v := range [...]int{c.TileX, c.TileY, c.TileZ,
		c.ThreadsX, c.ThreadsY, c.ThreadsZ,
		c.SharedPerBlock, int(c.Layout), c.WinogradE} {
		mix(uint64(v))
	}
	mix(salt)
	return h
}

// ConfigHash exposes the deterministic config/seed/salt hash for packages
// building reproducible schedules on top of the measurement seam (the
// chaos fault injector); it is not part of the engine's verdict path.
func ConfigHash(seed uint64, c conv.Config, salt uint64) uint64 {
	return configHash(seed, c, salt)
}
