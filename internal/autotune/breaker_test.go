package autotune

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/conv"
)

// fakeClock is the breaker's Now seam: tests advance it by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

var errBackend = errors.New("backend down")

// breakerHarness is a breaker over a scriptable measurer that counts how
// often the backend is actually reached.
type breakerHarness struct {
	b     *Breaker
	clock *fakeClock
	calls int
	fail  bool // when true the backend errors
	m     FallibleMeasurer
}

func newBreakerHarness(t *testing.T, cfg BreakerConfig) *breakerHarness {
	t.Helper()
	h := &breakerHarness{clock: &fakeClock{t: time.Unix(0, 0)}}
	cfg.Now = h.clock.now
	h.b = NewBreaker(cfg)
	if h.b == nil {
		t.Fatal("breaker config unexpectedly disabled")
	}
	h.m = h.b.Wrap(func(conv.Config) (Measurement, bool, error) {
		h.calls++
		if h.fail {
			return Measurement{}, false, errBackend
		}
		return Measurement{Seconds: 1}, true, nil
	})
	return h
}

func (h *breakerHarness) measure() error {
	_, _, err := h.m(conv.Config{})
	return err
}

func TestBreakerDisabledIsNil(t *testing.T) {
	if b := NewBreaker(BreakerConfig{}); b != nil {
		t.Fatal("zero config must disable the breaker")
	}
	var b *Breaker
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
	b.Trip() // must not panic
	called := false
	m := b.Wrap(func(conv.Config) (Measurement, bool, error) {
		called = true
		return Measurement{}, true, nil
	})
	if _, _, err := m(conv.Config{}); err != nil || !called {
		t.Fatal("nil breaker Wrap must be the identity")
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	h := newBreakerHarness(t, BreakerConfig{Threshold: 0.5, Window: 8, MinSamples: 4})
	h.fail = true
	// Below MinSamples nothing trips, no matter the rate.
	for i := 0; i < 3; i++ {
		if err := h.measure(); !errors.Is(err, errBackend) {
			t.Fatalf("measurement %d: err %v, want backend error", i, err)
		}
		if got := h.b.State(); got != BreakerClosed {
			t.Fatalf("tripped after %d samples, below MinSamples", i+1)
		}
	}
	// The fourth failure reaches MinSamples at a 100% rate: open.
	if err := h.measure(); !errors.Is(err, errBackend) {
		t.Fatal(err)
	}
	if got := h.b.State(); got != BreakerOpen {
		t.Fatalf("state %v after MinSamples failures, want open", got)
	}
	// Open: fast-fail without touching the backend.
	calls := h.calls
	for i := 0; i < 5; i++ {
		if err := h.measure(); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
		}
	}
	if h.calls != calls {
		t.Fatalf("open breaker reached the backend %d times", h.calls-calls)
	}
}

// ok=false with a nil error is a healthy "config invalid" answer and must
// never trip the breaker.
func TestBreakerIgnoresInvalidConfigs(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 0.5, Window: 8, MinSamples: 4, Now: clock.now})
	m := b.Wrap(func(conv.Config) (Measurement, bool, error) {
		return Measurement{}, false, nil
	})
	for i := 0; i < 32; i++ {
		if _, ok, err := m(conv.Config{}); ok || err != nil {
			t.Fatal("scripted measurer misbehaved")
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after invalid-config streak, want closed", got)
	}
}

func TestBreakerCooldownAndRecovery(t *testing.T) {
	h := newBreakerHarness(t, BreakerConfig{
		Threshold: 0.5, Window: 8, MinSamples: 4, Cooldown: time.Second, Probes: 2})
	h.fail = true
	for i := 0; i < 4; i++ {
		h.measure()
	}
	if got := h.b.State(); got != BreakerOpen {
		t.Fatalf("state %v, want open", got)
	}
	// Before the cooldown the breaker stays open.
	h.clock.advance(999 * time.Millisecond)
	if got := h.b.State(); got != BreakerOpen {
		t.Fatalf("state %v before cooldown elapsed, want open", got)
	}
	// After the cooldown, polling State alone observes half-open.
	h.clock.advance(time.Millisecond)
	if got := h.b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", got)
	}
	// A healthy probe restores service.
	h.fail = false
	calls := h.calls
	if err := h.measure(); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if h.calls != calls+1 {
		t.Fatal("probe did not reach the backend")
	}
	if got := h.b.State(); got != BreakerClosed {
		t.Fatalf("state %v after healthy probe, want closed", got)
	}
	// The window was reset: four fresh successes then a failure is a 20%
	// rate, below threshold — no re-trip from stale history.
	for i := 0; i < 4; i++ {
		h.measure()
	}
	h.fail = true
	h.measure()
	if got := h.b.State(); got != BreakerClosed {
		t.Fatalf("state %v, want closed (window must reset on recovery)", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	h := newBreakerHarness(t, BreakerConfig{
		Threshold: 0.5, Window: 8, MinSamples: 4, Cooldown: time.Second, Probes: 3})
	h.fail = true
	for i := 0; i < 4; i++ {
		h.measure()
	}
	h.clock.advance(time.Second)
	if got := h.b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	// The probe fails: straight back to open, for a fresh cooldown.
	if err := h.measure(); !errors.Is(err, errBackend) {
		t.Fatal(err)
	}
	if got := h.b.State(); got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	// And the next cooldown yields another half-open chance.
	h.clock.advance(time.Second)
	if got := h.b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v after second cooldown, want half-open", got)
	}
}

// A half-open breaker admits at most Probes measurements while their
// outcomes are pending.
func TestBreakerProbeCap(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{
		Threshold: 0.5, Window: 8, MinSamples: 4, Cooldown: time.Second, Probes: 3,
		Now: clock.now})
	b.Trip()
	clock.advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	// allow() without record() models probes still in flight.
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("probe %d denied within the cap", i)
		}
	}
	if b.allow() {
		t.Fatal("fourth probe admitted past the cap")
	}
}

func TestBreakerTransitionsObserved(t *testing.T) {
	var transitions []string
	cfg := BreakerConfig{Threshold: 0.5, Window: 8, MinSamples: 4, Cooldown: time.Second,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		}}
	h := newBreakerHarness(t, cfg)
	h.fail = true
	for i := 0; i < 4; i++ {
		h.measure()
	}
	h.clock.advance(time.Second)
	h.fail = false
	h.measure() // half-open probe closes it
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestBreakerTripForcesOpen(t *testing.T) {
	h := newBreakerHarness(t, BreakerConfig{Threshold: 0.9})
	if got := h.b.State(); got != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	h.b.Trip()
	if got := h.b.State(); got != BreakerOpen {
		t.Fatalf("state %v after Trip, want open", got)
	}
	if err := h.measure(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err %v, want ErrBreakerOpen", err)
	}
}

// Concurrency smoke under -race: goroutines hammer one breaker through a
// flapping backend while another poller reads State.
func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 0.5, Window: 16, MinSamples: 8,
		Cooldown: time.Microsecond})
	var flap sync.Mutex
	fail := false
	m := b.Wrap(func(conv.Config) (Measurement, bool, error) {
		flap.Lock()
		f := fail
		fail = !f
		flap.Unlock()
		if f {
			return Measurement{}, false, errBackend
		}
		return Measurement{Seconds: 1}, true, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m(conv.Config{})
				b.State()
			}
		}()
	}
	wg.Wait()
}
