package bounds

import (
	"math"

	"repro/internal/shapes"
)

// This file bounds the data-dependent phase of the FFT convolution: the
// frequency-domain multiply-accumulate. After the forward transforms, each
// of the G·L frequency bins (L = padded grid size) carries an independent
// complex matrix multiplication of shape N × (Cin/G) × (Cout/G) — the input
// spectra against the kernel spectra. The sub-DAGs are disjoint, so their
// Hong–Kung bounds add, and conservatively granting each sub-DAG the whole
// fast memory keeps the sum a valid lower bound for any schedule. The
// transform phases (1, 2, 4) are config-independent and are costed exactly
// by the evaluator, so they need no bound.

// FFTGridSize returns the padded power-of-two frequency grid size L = lh·lw
// used by the FFT convolution for a shape.
func FFTGridSize(shape shapes.ConvShape) int {
	return nextPow2(shape.Hin+2*shape.Pad) * nextPow2(shape.Win+2*shape.Pad)
}

// FFTPhase3LowerBound is the composite lower bound on the phase-3 off-chip
// traffic in floats for a fast memory of s floats: the larger of
//
//   - the summed per-bin matmul bounds, G·L·MatMulLowerBound(N, Cin/G,
//     Cout/G, s), scaled by 2 because every matrix element is complex
//     (two floats per element moved), and
//   - the compulsory traffic — every input spectrum, kernel spectrum and
//     output spectrum crosses the chip boundary at least once.
func FFTPhase3LowerBound(shape shapes.ConvShape, s int) float64 {
	g := shape.G()
	l := float64(FFTGridSize(shape))
	n := float64(shape.Batch)
	cinPerG := shape.Cin / g
	coutPerG := shape.Cout / g

	matmul := 2 * float64(g) * l * MatMulLowerBound(shape.Batch, cinPerG, coutPerG, s)
	compulsory := 2 * l * (n*float64(shape.Cin) + // input spectra read
		float64(shape.Cout)*float64(cinPerG) + // kernel spectra read
		n*float64(shape.Cout)) // output spectra written
	return math.Max(matmul, compulsory)
}

// nextPow2 mirrors fft.NextPow2 without importing the fft package (bounds
// stays dependency-free below shapes).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
