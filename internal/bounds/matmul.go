package bounds

import "math"

// This file instantiates the composite engine for classic matrix
// multiplication — the algorithm Hong & Kung originally analyzed. It serves
// as a known-answer anchor for the generic theory: the engine's two-step
// description of C = A·B (products, then summation trees) must reproduce the
// Θ(n³/√S) law, and the derived bound must sit below the I/O of any real
// blocked schedule.

// MatMulSteps describes the m×k×n matrix multiplication as the same
// two-step partition the paper uses for the direct convolution (products
// then summation trees), with reuse factor R = 1: each product a_ip·b_pj is
// used exactly once, and a dominator of h₁ operand entries can generate at
// most... following Lemma 4.9's argument with R = 1, φ₁(h) = 2S√h.
func MatMulSteps(s int) []Step {
	sf := float64(s)
	return []Step{
		{
			Name: "products",
			Phi:  func(k float64) float64 { return 2 * sf * math.Sqrt(k) },
			Psi:  func(k float64) float64 { return 2 * sf * math.Sqrt(k) },
		},
		{
			Name: "summation",
			Phi:  func(k float64) float64 { return math.Max(k-1, 0) },
			Psi:  func(k float64) float64 { return 0 },
		},
	}
}

// MatMulTotalVertices is the computed-vertex count of the m×k×n matmul DAG
// with chained summation trees: m·n outputs, each with k products and k−1
// additions — (2k−1)·m·n, the R=1 analogue of Lemma 4.8.
func MatMulTotalVertices(m, k, n int) float64 {
	return float64(2*k-1) * float64(m) * float64(n)
}

// MatMulLowerBound applies Theorem 4.6 to the matmul description: the
// closed-form T(S) of Lemma 4.11 with R = 1 gives T(S) = 4S√S + S − 1 and
//
//	Q ≥ S·((2k−1)·m·n / T(2S) − 1) = Ω(m·k·n/√S),
//
// the classic Hong–Kung result.
func MatMulLowerBound(m, k, n, s int) float64 {
	sf := float64(s)
	t2s := 8*sf*math.Sqrt(2*sf) + 2*sf - 1
	return HongKungBound(MatMulTotalVertices(m, k, n), t2s, s)
}

// MatMulBlockedIO is the off-chip traffic of the standard square-blocked
// schedule with block edge b = √(S/3) (three resident tiles):
//
//	Q = 2·m·k·n/b + m·n   (A and B panels streamed per block, C written once)
//
// It must always sit above MatMulLowerBound.
func MatMulBlockedIO(m, k, n, s int) float64 {
	b := math.Sqrt(float64(s) / 3)
	if b < 1 {
		b = 1
	}
	return 2*float64(m)*float64(k)*float64(n)/b + float64(m)*float64(n)
}
