package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/shapes"
)

func layer() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1}
}

func TestTEngineSimple(t *testing.T) {
	// One step with φ(k)=k, ψ(k)=0: T(S) = S + S = 2S.
	steps := []Step{{Phi: func(k float64) float64 { return k }, Psi: func(k float64) float64 { return 0 }}}
	if got := T(steps, 10); got != 20 {
		t.Errorf("T=%v want 20", got)
	}
	// Two steps, φ1(k)=k, ψ1(k)=2k, φ2(k)=k: give all budget to step 1:
	// T(S) = S + max_{k1+k2<=S} [k1 + (k2 + 2k1)] = S + 3S = 4S at k1=S.
	steps = []Step{
		{Phi: func(k float64) float64 { return k }, Psi: func(k float64) float64 { return 2 * k }},
		{Phi: func(k float64) float64 { return k }, Psi: func(k float64) float64 { return 0 }},
	}
	if got := T(steps, 10); got != 40 {
		t.Errorf("T=%v want 40", got)
	}
}

func TestTEngineEmptyAndZero(t *testing.T) {
	if got := T(nil, 5); got != 5 {
		t.Errorf("T(nil)=%v want 5", got)
	}
	steps := []Step{{Phi: func(k float64) float64 { return k }, Psi: func(k float64) float64 { return 0 }}}
	if got := T(steps, 0); got != 0 {
		t.Errorf("T(S=0)=%v want 0", got)
	}
}

func TestTGranularApproximatesT(t *testing.T) {
	steps := DirectSteps(layer(), 64)
	exact := T(steps, 64)
	approx := TGranular(steps, 64, 8)
	if approx > exact {
		t.Errorf("granular %v exceeded exact %v", approx, exact)
	}
	if approx < 0.8*exact {
		t.Errorf("granular %v too far below exact %v", approx, exact)
	}
}

// The engine's exact maximization must never exceed the closed-form upper
// bound of Lemma 4.11.
func TestDirectEngineWithinClosedForm(t *testing.T) {
	s := layer()
	for _, S := range []int{8, 32, 128} {
		engine := T(DirectSteps(s, S), S)
		closed := DirectTClosed(s, S)
		if engine > closed+1e-6 {
			t.Errorf("S=%d: engine T=%v above closed form %v", S, engine, closed)
		}
	}
}

// Consequently the engine lower bound is at least the closed-form bound.
func TestDirectEngineBoundTighter(t *testing.T) {
	s := layer()
	for _, S := range []int{16, 64, 256} {
		if eng, cl := DirectLowerBoundEngine(s, S), DirectLowerBound(s, S); eng < cl-1e-6 {
			t.Errorf("S=%d: engine bound %v below closed-form bound %v", S, eng, cl)
		}
	}
}

// Lemma 4.19 is an O(·) statement: the engine's exact maximum must agree
// with the closed form up to a bounded constant and share its S^{3/2}+S
// growth.
func TestWinogradEngineTracksClosedForm(t *testing.T) {
	s := layer()
	for _, S := range []int{32, 128} {
		engine := T(WinogradSteps(s, 2, S), S)
		closed := WinogradTClosed(s, 2, S)
		if ratio := engine / closed; ratio < 0.25 || ratio > 8 {
			t.Errorf("S=%d: engine T=%v vs closed form %v (ratio %v outside O(1))", S, engine, closed, ratio)
		}
	}
	// Growth between S and 4S must stay between linear (4x) and the
	// closed form's S^{3/2} regime (8x).
	g := T(WinogradSteps(s, 2, 128), 128) / T(WinogradSteps(s, 2, 32), 32)
	if g < 3.5 || g > 8.5 {
		t.Errorf("engine growth T(128)/T(32)=%v outside [3.5, 8.5]", g)
	}
}

func TestLowerBoundsPositiveAndMonotone(t *testing.T) {
	s := layer()
	// Bounds decrease in S (more fast memory -> less required I/O).
	prevD, prevW := math.Inf(1), math.Inf(1)
	for _, S := range []int{64, 256, 1024, 4096} {
		d := DirectLowerBound(s, S)
		w := WinogradLowerBound(s, 2, S)
		if d <= 0 || w <= 0 {
			t.Fatalf("S=%d: nonpositive bound d=%v w=%v", S, d, w)
		}
		if d > prevD || w > prevW {
			t.Errorf("S=%d: bound increased with memory: d=%v (prev %v), w=%v (prev %v)", S, d, prevD, w, prevW)
		}
		prevD, prevW = d, w
	}
}

func TestLeadingTermsTrackExactBounds(t *testing.T) {
	s := layer()
	for _, S := range []int{256, 1024} {
		exact := DirectLowerBound(s, S)
		lead := DirectLowerBoundLeading(s, S)
		if ratio := exact / lead; ratio < 0.2 || ratio > 2 {
			t.Errorf("direct S=%d: exact/leading=%v out of range", S, ratio)
		}
	}
}

// Any legal dataflow must move at least the lower bound; in particular the
// paper's own dataflow I/O model at the optimum must sit above the bound.
func TestDataflowAboveLowerBound(t *testing.T) {
	s := layer()
	for _, S := range []int{1024, 4096, 16384} {
		lb := DirectLowerBound(s, S)
		df := DirectDataflowIOOptimal(s, S, 1)
		if df < lb {
			t.Errorf("S=%d: direct dataflow I/O %v below lower bound %v", S, df, lb)
		}
		lbw := WinogradLowerBound(s, 2, S)
		dfw := WinogradDataflowIOOptimal(s, 2, S, 1)
		if dfw < lbw {
			t.Errorf("S=%d: winograd dataflow I/O %v below lower bound %v", S, dfw, lbw)
		}
	}
}

// The paper's near-optimality claim: for Np=1 and Hker·Wker·Cin/sqrt(SR) ≫ 1
// the dataflow is within a small constant of the bound's leading term.
func TestDirectDataflowNearOptimal(t *testing.T) {
	s := layer()
	S := 4096
	df := DirectDataflowIOOptimal(s, S, 1)
	lead := DirectLowerBoundLeading(s, S)
	ratio := df / lead
	if ratio < 1 || ratio > 16 {
		t.Errorf("dataflow/leading-bound ratio %v not a small constant", ratio)
	}
}

// Equation 20's minimization: among tiles of equal volume, the one satisfying
// xy = Rz has the lowest modeled I/O.
func TestOptimalityConditionMinimizesIO(t *testing.T) {
	s := layer()
	// R = 9. Tile volume 144: (36,4) wait—use x*y and z with xyz fixed.
	// Candidates with volume 576: xy=144,z=4 violates; xy=72,z=8 violates;
	// xy=36·... pick (x,y,z): optimal (12,12,16/...): R·z = xy -> z = xy/9.
	opt := Tile{X: 12, Y: 12, Z: 16}   // xy=144, Rz=144: satisfies
	worse1 := Tile{X: 24, Y: 24, Z: 4} // xy=576, Rz=36
	worse2 := Tile{X: 4, Y: 4, Z: 144} // xy=16, Rz=1296
	if opt.Volume() != worse1.Volume() || opt.Volume() != worse2.Volume() {
		t.Fatal("test tiles must have equal volume")
	}
	qo := DirectDataflowIO(s, opt)
	if q1 := DirectDataflowIO(s, worse1); q1 <= qo {
		t.Errorf("output-heavy tile %v (Q=%v) not worse than optimal %v (Q=%v)", worse1, q1, opt, qo)
	}
	if q2 := DirectDataflowIO(s, worse2); q2 <= qo {
		t.Errorf("channel-heavy tile %v (Q=%v) not worse than optimal %v (Q=%v)", worse2, q2, opt, qo)
	}
	if !opt.SatisfiesOptimality(s.R(), 1e-9) {
		t.Error("optimal tile fails its own condition")
	}
	if worse1.SatisfiesOptimality(s.R(), 0.1) {
		t.Error("bad tile passes the condition")
	}
}

func TestOptimalTileDirect(t *testing.T) {
	s := layer()
	tile := OptimalTileDirect(s, 4096, 1)
	if tile.X < 1 || tile.Y < 1 || tile.Z < 1 {
		t.Fatalf("degenerate tile %+v", tile)
	}
	if gap := tile.OptimalityGap(s.R()); gap > 0.25 {
		t.Errorf("rounded optimal tile %+v has gap %v", tile, gap)
	}
	// Volume should be near the budget.
	if v := tile.Volume(); v < 4096/4 || v > 4096*2 {
		t.Errorf("tile volume %d far from budget 4096", v)
	}
}

func TestOptimalTileWinograd(t *testing.T) {
	s := layer()
	tile := OptimalTileWinograd(s, 2, 8192, 1)
	if tile.X < 1 || tile.Y < 1 || tile.Z < 1 {
		t.Fatalf("degenerate tile %+v", tile)
	}
	r2 := float64(s.Hker * s.Hker)
	if gap := tile.OptimalityGap(r2); gap > 0.3 {
		t.Errorf("winograd tile %+v gap %v vs xy=r²z", tile, gap)
	}
}

// Property: the exact-halo I/O model always dominates the paper's
// approximation for stride-1 convs (the halo only adds reads).
func TestExactHaloDominatesModel(t *testing.T) {
	s := layer()
	f := func(xi, yi, zi uint8) bool {
		tile := Tile{X: int(xi%16) + 1, Y: int(yi%16) + 1, Z: int(zi%16) + 1}
		return DirectDataflowIOExact(s, tile) >= DirectDataflowIO(s, tile)-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more processors sharing the same on-chip budget means smaller
// per-block tiles and thus more I/O (Equation 21 grows with sqrt(Np)).
func TestParallelIOMonotoneInNp(t *testing.T) {
	s := layer()
	prev := 0.0
	for _, np := range []int{1, 2, 4, 8, 16} {
		q := DirectDataflowIOOptimal(s, 8192, np)
		if q < prev {
			t.Errorf("Np=%d: I/O %v decreased from %v", np, q, prev)
		}
		prev = q
	}
}

func TestBatchScaling(t *testing.T) {
	s := layer()
	single := DirectLowerBound(s, 1024)
	batched := DirectLowerBound(s.WithBatch(8), 1024)
	if math.Abs(batched-8*single) > 8*single*0.01 {
		t.Errorf("batched bound %v not ~8x single %v", batched, single)
	}
}
