package bounds

import (
	"math"

	"repro/internal/shapes"
)

// WinogradSteps returns the four-step φ/ψ description of the Winograd DAG
// (Lemmas 4.15–4.18) for output tile size e, kernel size r = Hker and fast
// memory parameter s.
func WinogradSteps(shape shapes.ConvShape, e, s int) []Step {
	r := float64(shape.Hker)
	ef := float64(e)
	alpha := ef + r - 1
	a2 := alpha * alpha
	sf := float64(s)

	transform := Step{
		Name: "transform",
		Phi:  func(k float64) float64 { return 6 * k * a2 * a2 / (ef * r) },
		Psi:  func(k float64) float64 { return 3 * k * a2 / (ef * r) },
	}
	eltwise := Step{
		Name: "eltwise",
		Phi:  func(k float64) float64 { return k*math.Sqrt(k) + a2*sf*math.Sqrt(k)/(ef*ef) },
		Psi:  func(k float64) float64 { return k*math.Sqrt(k) + a2*sf*math.Sqrt(k)/(ef*ef) }, // ψ2 = φ2
	}
	chansum := Step{
		Name: "chansum",
		Phi:  func(k float64) float64 { return math.Max(k-1, 0) },
		Psi:  func(k float64) float64 { return math.Min(k/2, sf*a2/(ef*ef)) },
	}
	output := Step{
		Name: "output",
		Phi:  func(k float64) float64 { return math.Min((2*k-1)*ef*ef, (2*a2-1)*sf) },
		Psi:  func(k float64) float64 { return 0 },
	}
	return []Step{transform, eltwise, chansum, output}
}

// WinogradTClosed is Lemma 4.19's closed form
// T(S) = 2·α³/(e·r)·S^{3/2} + 6·α²/(e·r)·S with α = e+r−1.
func WinogradTClosed(shape shapes.ConvShape, e, s int) float64 {
	r := float64(shape.Hker)
	ef := float64(e)
	alpha := ef + r - 1
	sf := float64(s)
	return 2*alpha*alpha*alpha/(ef*r)*sf*math.Sqrt(sf) + 6*alpha*alpha/(ef*r)*sf
}

// WinogradTotalVertices is the Lemma 4.14 vertex count
// 2·Wout·Hout·Cout·Cin·(e+r−1)⁴/e², scaled by batch.
func WinogradTotalVertices(shape shapes.ConvShape, e int) float64 {
	r := float64(shape.Hker)
	ef := float64(e)
	alpha := ef + r - 1
	out := float64(shape.OutputVolume()) * float64(shape.Cin) * float64(shape.Batch)
	return 2 * out * alpha * alpha * alpha * alpha / (ef * ef)
}

// WinogradLowerBound is the proof-exact form of Theorem 4.20: Theorem 4.6
// applied with the closed-form T(2S) of Lemma 4.19.
func WinogradLowerBound(shape shapes.ConvShape, e, s int) float64 {
	return HongKungBound(WinogradTotalVertices(shape, e), WinogradTClosed(shape, e, 2*s), s)
}

// WinogradLowerBoundLeading is the Ω-form highest-order term of Theorem
// 4.20:
//
//	Q = Wout·Hout·Cout·Cin·(e+r−1)·r / (e·sqrt(S))
//
// scaled by batch.
func WinogradLowerBoundLeading(shape shapes.ConvShape, e, s int) float64 {
	r := float64(shape.Hker)
	ef := float64(e)
	alpha := ef + r - 1
	num := float64(shape.OutputVolume()) * float64(shape.Cin) * float64(shape.Batch) * alpha * r
	return num / (ef * math.Sqrt(float64(s)))
}

// WinogradLowerBoundEngine evaluates the Winograd bound through the generic
// composite engine with the four Lemma 4.15–4.18 steps.
func WinogradLowerBoundEngine(shape shapes.ConvShape, e, s int) float64 {
	return CompositeLowerBound(WinogradSteps(shape, e, 2*s), WinogradTotalVertices(shape, e), s)
}
