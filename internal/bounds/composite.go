// Package bounds implements the paper's I/O lower-bound theory: the general
// composite-algorithm engine of Theorems 4.5/4.6, its instantiations for the
// direct convolution (Theorem 4.12) and the Winograd algorithm (Theorem
// 4.20), and the dataflow I/O cost models of Section 5 (Equations 20–23)
// whose comparison with the bounds yields the optimality condition x·y = R·z.
package bounds

import "math"

// Step describes one sub-computation of a multi-step partition through its
// two maximum vertex generation functions (Section 4.1.2):
//
//	Phi(k): the maximum number of vertices of the sub-computation's vertex
//	        set U_j generable from k operands, and
//	Psi(k): the maximum number of vertices of its output set Õ_j generable
//	        from k operands (these feed the next sub-computation).
//
// Both must be nondecreasing in k.
type Step struct {
	Name string
	Phi  func(k float64) float64
	Psi  func(k float64) float64
}

// T evaluates the upper bound T(S) of Theorem 4.5 by exact maximization over
// all integer splits k_1 + ... + k_n <= S:
//
//	T(S) = S + max Σ_j φ_j(k_j + ψ_{j-1}(k_{j-1} + ψ_{j-2}(...)))
//
// The enumeration is exponential in the number of steps; with the paper's
// n ≤ 4 and S up to a few hundred it is fast. For larger S use TGranular.
func T(steps []Step, s int) float64 {
	return TGranular(steps, s, 1)
}

// TGranular evaluates T(S) like T but only considers splits whose parts are
// multiples of gran (plus the exact remainder on the last step), trading
// precision for speed on large S. Because every φ_j and ψ_j is
// nondecreasing, the result with gran > 1 is a lower estimate of the true
// maximum within one gran per step; callers needing a guaranteed upper bound
// for a *lower* I/O bound should prefer closed forms.
func TGranular(steps []Step, s int, gran int) float64 {
	if len(steps) == 0 || s <= 0 {
		return float64(s)
	}
	if gran < 1 {
		gran = 1
	}
	best := 0.0
	var rec func(j, rem int, w, acc float64)
	rec = func(j, rem int, w, acc float64) {
		if j == len(steps)-1 {
			// Monotone φ, ψ: give the last step everything that remains.
			in := float64(rem) + w
			if v := acc + steps[j].Phi(in); v > best {
				best = v
			}
			return
		}
		for k := 0; ; k += gran {
			if k > rem {
				k = rem
			}
			in := float64(k) + w
			rec(j+1, rem-k, steps[j].Psi(in), acc+steps[j].Phi(in))
			if k == rem {
				break
			}
		}
	}
	rec(0, s, 0, 0)
	return float64(s) + best
}

// HongKungBound is Theorem 4.6: given the total number of computed vertices
// |V| of the DAG and the value T(2S), the minimum I/O satisfies
// Q ≥ S·(|V|/T(2S) − 1). Negative results are clamped to zero.
func HongKungBound(totalVertices float64, t2s float64, s int) float64 {
	if t2s <= 0 {
		return 0
	}
	q := float64(s) * (totalVertices/t2s - 1)
	return math.Max(q, 0)
}

// CompositeLowerBound combines the engine pieces: it evaluates T at 2S for
// the given steps and applies Theorem 4.6.
func CompositeLowerBound(steps []Step, totalVertices float64, s int) float64 {
	return HongKungBound(totalVertices, T(steps, 2*s), s)
}
