package bounds

import (
	"math"
	"testing"
)

func TestMatMulBoundScaling(t *testing.T) {
	// The bound must follow the Θ(n³/√S) law: quadrupling S halves it
	// (asymptotically), and doubling n multiplies it by 8.
	n := 512
	b1 := MatMulLowerBound(n, n, n, 1024)
	b2 := MatMulLowerBound(n, n, n, 4096)
	if b1 <= 0 || b2 <= 0 {
		t.Fatalf("degenerate bounds %v %v", b1, b2)
	}
	if ratio := b1 / b2; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("S-scaling ratio %v, want ~2", ratio)
	}
	b3 := MatMulLowerBound(2*n, 2*n, 2*n, 1024)
	if ratio := b3 / b1; ratio < 7 || ratio > 9 {
		t.Errorf("n-scaling ratio %v, want ~8", ratio)
	}
}

func TestMatMulBlockedAboveBound(t *testing.T) {
	for _, n := range []int{128, 512, 2048} {
		for _, s := range []int{1024, 16384} {
			lb := MatMulLowerBound(n, n, n, s)
			io := MatMulBlockedIO(n, n, n, s)
			if io < lb {
				t.Errorf("n=%d S=%d: blocked I/O %v below bound %v", n, s, io, lb)
			}
			// The blocked schedule is known to be within a constant factor
			// of optimal; when the asymptotic bound is non-vacuous the gap
			// must not be astronomical.
			if lb > 0 && io > 100*lb {
				t.Errorf("n=%d S=%d: blocked I/O %v suspiciously far above bound %v", n, s, io, lb)
			}
		}
	}
}

// The generic engine with the two-step matmul description must agree with
// the closed form within the usual constant.
func TestMatMulEngineVsClosedForm(t *testing.T) {
	n, s := 256, 128
	engine := CompositeLowerBound(MatMulSteps(2*s), MatMulTotalVertices(n, n, n), s)
	closed := MatMulLowerBound(n, n, n, s)
	if engine <= 0 || closed <= 0 {
		t.Fatalf("degenerate: engine=%v closed=%v", engine, closed)
	}
	// Engine maximizes exactly, closed form bounds T from above, so the
	// engine bound is tighter (larger) but by a bounded factor.
	if engine < closed-1e-9 {
		t.Errorf("engine bound %v below closed form %v", engine, closed)
	}
	if engine > 4*closed {
		t.Errorf("engine bound %v more than 4x closed form %v", engine, closed)
	}
}

// Matmul is the R=1 corner of the direct-convolution result: a 1×1-kernel
// convolution with stride 1 is exactly a matrix multiplication
// (m=HoutWout, k=Cin, n=Cout), and the two bounds must coincide.
func TestMatMulIsUnitKernelConv(t *testing.T) {
	s := layer()
	s.Hker, s.Wker, s.Pad = 1, 1, 0
	for _, fastMem := range []int{256, 4096} {
		convB := DirectLowerBound(s, fastMem)
		mmB := MatMulLowerBound(s.Hout()*s.Wout(), s.Cin, s.Cout, fastMem)
		if math.Abs(convB-mmB) > 1e-6*math.Max(convB, mmB) {
			t.Errorf("S=%d: conv bound %v != matmul bound %v", fastMem, convB, mmB)
		}
	}
}
