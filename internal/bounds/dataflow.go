package bounds

import (
	"math"

	"repro/internal/shapes"
)

// Tile is an output sub-block choice x×y×z (width × height × channels) for
// the dataflow designs of Section 5.
type Tile struct {
	X, Y, Z int
}

// Volume is x·y·z, the number of partial sums held on chip per block.
func (t Tile) Volume() int { return t.X * t.Y * t.Z }

// OptimalityGap measures how far the tile is from the paper's optimality
// condition x·y = R·z, as |xy − Rz|/(xy + Rz) in [0, 1). Zero means the
// condition holds exactly.
func (t Tile) OptimalityGap(r float64) float64 {
	xy := float64(t.X * t.Y)
	rz := r * float64(t.Z)
	if xy+rz == 0 {
		return 0
	}
	return math.Abs(xy-rz) / (xy + rz)
}

// SatisfiesOptimality reports whether x·y = R·z holds within the given
// relative tolerance.
func (t Tile) SatisfiesOptimality(r, tol float64) bool {
	return t.OptimalityGap(r) <= tol
}

// DirectDataflowIO is the Section 5.2 I/O model (Equations 20–21): the
// number of elements read plus written by the output-stationary dataflow
// with output tile x×y×z, for the whole layer (batch-scaled).
//
//	Q = (Hout·Wout·Cout)/(xyz) · (Hker·Wker·Cin·(z + xy/R)) + Hout·Wout·Cout
//
// The xy/R term is the paper's approximation x'·y' ≈ μx·μy of the halo'd
// input tile.
func DirectDataflowIO(shape shapes.ConvShape, t Tile) float64 {
	out := float64(shape.OutputVolume())
	blocks := out / float64(t.Volume())
	ker := float64(shape.KernelSize())
	reads := blocks * ker * (float64(t.Z) + float64(t.X*t.Y)/shape.R())
	return (reads + out) * float64(shape.Batch)
}

// DirectDataflowIOExact is the same model with the exact halo:
// x' = μx + Wker − μ and y' = μy + Hker − μ, which matters for small tiles.
func DirectDataflowIOExact(shape shapes.ConvShape, t Tile) float64 {
	out := float64(shape.OutputVolume())
	blocks := out / float64(t.Volume())
	xp := float64(shape.Strid*t.X + shape.Wker - shape.Strid)
	yp := float64(shape.Strid*t.Y + shape.Hker - shape.Strid)
	reads := blocks * (float64(shape.KernelSize()*t.Z) + xp*yp*float64(shape.Cin))
	return (reads + out) * float64(shape.Batch)
}

// OptimalTileDirect returns the continuous-optimum tile of Section 5.2 for
// on-chip capacity s shared by np processors: xyz = s/np with xy = R·z, so
// z = sqrt(s/(np·R)) and x = y = sqrt(R·z). Values are clamped to the layer
// dimensions.
func OptimalTileDirect(shape shapes.ConvShape, s, np int) Tile {
	budget := float64(s) / float64(np)
	r := shape.R()
	z := math.Sqrt(budget / r)
	xy := r * z
	side := math.Sqrt(xy)
	t := Tile{
		X: clampInt(int(math.Round(side)), 1, shape.Wout()),
		Y: clampInt(int(math.Round(side)), 1, shape.Hout()),
		Z: clampInt(int(math.Round(z)), 1, shape.Cout),
	}
	return t
}

// DirectDataflowIOOptimal is Equation 21 at the continuous optimum:
//
//	Q = 2·Hout·Wout·Cout·Hker·Wker·Cin/sqrt(R·S/Np) + Hout·Wout·Cout
func DirectDataflowIOOptimal(shape shapes.ConvShape, s, np int) float64 {
	out := float64(shape.OutputVolume())
	ker := float64(shape.KernelSize())
	q := 2*out*ker/math.Sqrt(shape.R()*float64(s)/float64(np)) + out
	return q * float64(shape.Batch)
}

// WinogradDataflowIO is the Section 5.3 I/O model (Equation 22 plus output
// writes) for output tile x×y×z with Winograd parameters e and r:
//
//	Q = (Hout·Wout·Cout)/(xyz) · (xy·Cin + z·r²·Cin) + Hout·Wout·Cout
func WinogradDataflowIO(shape shapes.ConvShape, t Tile) float64 {
	out := float64(shape.OutputVolume())
	blocks := out / float64(t.Volume())
	r2 := float64(shape.Hker * shape.Hker)
	reads := blocks * float64(shape.Cin) * (float64(t.X*t.Y) + float64(t.Z)*r2)
	return (reads + out) * float64(shape.Batch)
}

// OptimalTileWinograd returns the continuous optimum of Section 5.3: the
// on-chip budget covers the temporary arrays, 2·(e+r−1)²/e²·xyz = s/np, with
// the optimality condition xy = r²·z.
func OptimalTileWinograd(shape shapes.ConvShape, e, s, np int) Tile {
	r := float64(shape.Hker)
	ef := float64(e)
	alpha := ef + r - 1
	budget := float64(s) / float64(np) * ef * ef / (2 * alpha * alpha)
	z := math.Sqrt(budget) / r // xyz = budget, xy = r² z  =>  r²z² = budget
	xy := r * r * z
	side := math.Sqrt(xy)
	return Tile{
		X: clampInt(int(math.Round(side)), 1, shape.Wout()),
		Y: clampInt(int(math.Round(side)), 1, shape.Hout()),
		Z: clampInt(int(math.Round(z)), 1, shape.Cout),
	}
}

// WinogradDataflowIOOptimal is Equation 23:
//
//	Q = 2·Hout·Wout·Cout·Cin·r·(e+r−1)/(e·sqrt(S/Np)) + Hout·Wout·Cout
func WinogradDataflowIOOptimal(shape shapes.ConvShape, e, s, np int) float64 {
	r := float64(shape.Hker)
	ef := float64(e)
	alpha := ef + r - 1
	out := float64(shape.OutputVolume())
	q := 2*out*float64(shape.Cin)*r*alpha/(ef*math.Sqrt(float64(s)/float64(np))) + out
	return q * float64(shape.Batch)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
