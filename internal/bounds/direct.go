package bounds

import (
	"math"

	"repro/internal/shapes"
)

// DirectSteps returns the two-step φ/ψ description of the direct convolution
// DAG (Lemmas 4.9 and 4.10) for a fast memory that allows dominator and
// minimum sets of at most s vertices. Note the φ of step 1 itself depends on
// s, exactly as in Lemma 4.9.
func DirectSteps(shape shapes.ConvShape, s int) []Step {
	r := shape.R()
	sf := float64(s)
	products := Step{
		Name: "products",
		Phi:  func(k float64) float64 { return 2 * sf * math.Sqrt(r*k) },
		Psi:  func(k float64) float64 { return 2 * sf * math.Sqrt(r*k) }, // ψ1 = φ1 (no internal vertices)
	}
	summation := Step{
		Name: "summation",
		Phi:  func(k float64) float64 { return math.Max(k-1, 0) },
		Psi:  func(k float64) float64 { return 0 }, // outputs are terminal
	}
	return []Step{products, summation}
}

// DirectTClosed is Lemma 4.11's closed form T(S) ≤ 4S√(RS) + S − 1.
func DirectTClosed(shape shapes.ConvShape, s int) float64 {
	sf := float64(s)
	return 4*sf*math.Sqrt(shape.R()*sf) + sf - 1
}

// DirectTotalVertices is |V_inter ∪ V_out| of Lemma 4.8 for one image,
// scaled by the batch size: (2·Wker·Hker·Cin − 1)·Wout·Hout·Cout·N.
func DirectTotalVertices(shape shapes.ConvShape) float64 {
	return float64(2*shape.KernelSize()-1) * float64(shape.OutputVolume()) * float64(shape.Batch)
}

// DirectLowerBound is the proof-exact form of Theorem 4.12: Theorem 4.6
// applied with the closed-form T(2S) of Lemma 4.11, in elements moved
// between fast and slow memory.
func DirectLowerBound(shape shapes.ConvShape, s int) float64 {
	return HongKungBound(DirectTotalVertices(shape), DirectTClosed(shape, 2*s), s)
}

// DirectLowerBoundLeading is the Ω-form highest-order term of Theorem 4.12:
//
//	Q = Wker·Hker·Cin·Wout·Hout·Cout / (4·sqrt(2·R·S))
//
// scaled by batch.
func DirectLowerBoundLeading(shape shapes.ConvShape, s int) float64 {
	num := float64(shape.KernelSize()) * float64(shape.OutputVolume()) * float64(shape.Batch)
	return num / (4 * math.Sqrt(2*shape.R()*float64(s)))
}

// DirectLowerBoundEngine evaluates the same bound through the generic
// composite engine instead of the closed form; it is tighter (the engine
// maximizes exactly) but costs O(S) evaluation.
func DirectLowerBoundEngine(shape shapes.ConvShape, s int) float64 {
	return CompositeLowerBound(DirectSteps(shape, 2*s), DirectTotalVertices(shape), s)
}
