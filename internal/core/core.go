// Package core composes the paper's primary contribution into one call: the
// I/O-lower-bound-guided analysis of a convolution layer. Given a layer and
// a simulated architecture it produces, for each applicable algorithm,
// the Theorem 4.12/4.20 lower bound, the Section-5 dataflow design derived
// from it, the auto-tuned refinement of that design, the measured traffic
// and modeled runtime — everything the paper's pipeline
// (theory → dataflow → tuning) yields, in one structure.
package core

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/bounds"
	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// AlgorithmReport is the bound-to-tuned pipeline outcome for one algorithm.
type AlgorithmReport struct {
	Algorithm string // "direct" or "winograd"
	// LowerBound is the minimum off-chip traffic (elements) any schedule
	// must move with the design's shared-memory size as S.
	LowerBound float64
	// DesignConfig is the untuned Section-5 dataflow design.
	DesignConfig conv.Config
	// Design is the measured outcome of the design config.
	Design *conv.Result
	// TunedConfig is the engine's refinement of the design.
	TunedConfig conv.Config
	// Tuned is the measured outcome of the tuned config.
	Tuned *conv.Result
	// BoundGap is Tuned traffic / LowerBound — how near-optimal the tuned
	// dataflow's data movement is.
	BoundGap float64
}

// Analysis is the full layer report.
type Analysis struct {
	Shape   shapes.ConvShape
	Arch    memsim.Arch
	Library *conv.Result // best library baseline (direct paths)
	Reports []AlgorithmReport
	// Best indexes the fastest tuned report.
	Best int
}

// Speedup is the headline number: library time over best tuned time.
func (a *Analysis) Speedup() float64 {
	if a.Library == nil || len(a.Reports) == 0 {
		return 0
	}
	return a.Library.Seconds / a.Reports[a.Best].Tuned.Seconds
}

// Options bounds the tuning effort.
type Options struct {
	Budget int   // measurements per algorithm (default 96)
	Seed   int64 // determinism (default 1)
}

// Analyze runs the complete pipeline on one layer.
func Analyze(arch memsim.Arch, s shapes.ConvShape, opts Options) (*Analysis, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opts.Budget <= 0 {
		opts.Budget = 96
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	a := &Analysis{Shape: s, Arch: arch}
	naive, err := conv.NaiveDirectDry(arch, s)
	if err != nil {
		return nil, err
	}
	col, err := conv.Im2colGEMMDry(arch, s)
	if err != nil {
		return nil, err
	}
	a.Library = col
	if naive.Seconds < col.Seconds {
		a.Library = naive
	}

	direct, err := analyzeDirect(arch, s, opts)
	if err != nil {
		return nil, err
	}
	a.Reports = append(a.Reports, *direct)
	if s.WinogradOK() && s.Hker == 3 && s.Hout() >= 2 && s.Wout() >= 2 {
		wino, err := analyzeWinograd(arch, s, opts)
		if err != nil {
			return nil, err
		}
		a.Reports = append(a.Reports, *wino)
	}
	for i, r := range a.Reports {
		if r.Tuned.Seconds < a.Reports[a.Best].Tuned.Seconds {
			a.Best = i
		}
	}
	return a, nil
}

func analyzeDirect(arch memsim.Arch, s shapes.ConvShape, opts Options) (*AlgorithmReport, error) {
	design := conv.DefaultDirectConfig(arch, s)
	designRes, err := conv.DirectTiledDry(arch, s, design)
	if err != nil {
		return nil, fmt.Errorf("core: design measurement: %w", err)
	}
	sp, err := autotune.NewSpace(s, arch, autotune.Direct, 0, true)
	if err != nil {
		return nil, err
	}
	topts := autotune.DefaultOptions()
	topts.Budget = opts.Budget
	topts.Seed = opts.Seed
	tr, err := autotune.Tune(sp, autotune.DirectMeasurer(arch, s), topts)
	if err != nil {
		return nil, err
	}
	// The engine refines the *snapped* design (the seed must lie on the
	// space's axes); the raw design itself stays a candidate, so tuning
	// never reports a regression over the Section-5 starting point.
	best := tr.Best
	if designRes.Seconds < tr.BestM.Seconds {
		best = design
	}
	tunedRes, err := conv.DirectTiledDry(arch, s, best)
	if err != nil {
		return nil, err
	}
	lb := bounds.DirectLowerBound(s, best.SharedPerBlock)
	return &AlgorithmReport{
		Algorithm:    "direct",
		LowerBound:   lb,
		DesignConfig: design,
		Design:       designRes,
		TunedConfig:  best,
		Tuned:        tunedRes,
		BoundGap:     gap(float64(tunedRes.Counts.GlobalIO()), lb),
	}, nil
}

func analyzeWinograd(arch memsim.Arch, s shapes.ConvShape, opts Options) (*AlgorithmReport, error) {
	design := conv.DefaultWinogradConfig(arch, s, 2)
	designRes, err := conv.WinogradFusedDry(arch, s, design)
	if err != nil {
		return nil, fmt.Errorf("core: winograd design measurement: %w", err)
	}
	sp, err := autotune.NewSpace(s, arch, autotune.Winograd, 2, true)
	if err != nil {
		return nil, err
	}
	topts := autotune.DefaultOptions()
	topts.Budget = opts.Budget
	topts.Seed = opts.Seed
	tr, err := autotune.Tune(sp, autotune.WinogradMeasurer(arch, s), topts)
	if err != nil {
		return nil, err
	}
	// As in analyzeDirect: the raw (unsnapped) design stays a candidate.
	best := tr.Best
	if designRes.Seconds < tr.BestM.Seconds {
		best = design
	}
	tunedRes, err := conv.WinogradFusedDry(arch, s, best)
	if err != nil {
		return nil, err
	}
	lb := bounds.WinogradLowerBound(s, best.WinogradE, best.SharedPerBlock)
	return &AlgorithmReport{
		Algorithm:    "winograd",
		LowerBound:   lb,
		DesignConfig: design,
		Design:       designRes,
		TunedConfig:  best,
		Tuned:        tunedRes,
		BoundGap:     gap(float64(tunedRes.Counts.GlobalIO()), lb),
	}, nil
}

func gap(measured, bound float64) float64 {
	if bound <= 0 {
		return 0 // the asymptotic bound is vacuous at this scale
	}
	return measured / bound
}
