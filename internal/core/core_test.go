package core

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/shapes"
)

func TestAnalyzeDirectAndWinograd(t *testing.T) {
	arch := memsim.GTX1080Ti
	s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 28, Win: 28, Cout: 96, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	a, err := Analyze(arch, s, Options{Budget: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != 2 {
		t.Fatalf("expected direct + winograd reports, got %d", len(a.Reports))
	}
	for _, r := range a.Reports {
		if r.LowerBound < 0 {
			t.Errorf("%s: negative bound", r.Algorithm)
		}
		if r.Design == nil || r.Tuned == nil {
			t.Fatalf("%s: missing results", r.Algorithm)
		}
		// Tuning never loses to the design it starts from (the design is a
		// seed configuration of the engine).
		if r.Tuned.Seconds > r.Design.Seconds*1.0001 {
			t.Errorf("%s: tuned %v slower than design %v", r.Algorithm, r.Tuned.Seconds, r.Design.Seconds)
		}
		// Measured traffic respects the bound.
		if r.LowerBound > 0 && float64(r.Tuned.Counts.GlobalIO()) < r.LowerBound {
			t.Errorf("%s: traffic below bound", r.Algorithm)
		}
		if r.LowerBound > 0 && r.BoundGap < 1 {
			t.Errorf("%s: bound gap %v < 1", r.Algorithm, r.BoundGap)
		}
	}
	if a.Speedup() <= 1 {
		t.Errorf("pipeline speedup %v not above 1", a.Speedup())
	}
	if a.Best < 0 || a.Best >= len(a.Reports) {
		t.Errorf("Best index %d out of range", a.Best)
	}
}

func TestAnalyzeStridedSkipsWinograd(t *testing.T) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 28, Win: 28, Cout: 32, Hker: 3, Wker: 3, Strid: 2, Pad: 1}
	a, err := Analyze(arch, s, Options{Budget: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != 1 || a.Reports[0].Algorithm != "direct" {
		t.Errorf("strided layer should analyze direct only, got %d reports", len(a.Reports))
	}
}

func TestAnalyzeRejectsBadShape(t *testing.T) {
	if _, err := Analyze(memsim.V100, shapes.ConvShape{}, Options{}); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	arch := memsim.TitanX
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 14, Win: 14, Cout: 64, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	a1, err := Analyze(arch, s, Options{Budget: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(arch, s, Options{Budget: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Reports[a1.Best].TunedConfig != a2.Reports[a2.Best].TunedConfig {
		t.Error("same seed produced different tuned configs")
	}
}
