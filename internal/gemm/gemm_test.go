package gemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = rng.Float32()*2 - 1
	}
	return m
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := []struct{ m, k, n, bs int }{
		{1, 1, 1, 4}, {3, 5, 7, 2}, {16, 16, 16, 8}, {17, 33, 9, 8},
		{64, 64, 64, 0}, {65, 63, 67, 16}, {5, 128, 5, 32},
	}
	for _, d := range dims {
		a := randMat(rng, d.m*d.k)
		b := randMat(rng, d.k*d.n)
		want := make([]float32, d.m*d.n)
		got := make([]float32, d.m*d.n)
		Naive(want, a, b, d.m, d.k, d.n)
		Blocked(got, a, b, d.m, d.k, d.n, d.bs)
		if diff := maxDiff(got, want); diff > 1e-4 {
			t.Errorf("blocked m=%d k=%d n=%d bs=%d: max diff %g", d.m, d.k, d.n, d.bs, diff)
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := []struct{ m, k, n, workers int }{
		{1, 4, 4, 4}, {33, 17, 21, 3}, {64, 32, 48, 0}, {7, 7, 7, 16},
	}
	for _, d := range dims {
		a := randMat(rng, d.m*d.k)
		b := randMat(rng, d.k*d.n)
		want := make([]float32, d.m*d.n)
		got := make([]float32, d.m*d.n)
		Naive(want, a, b, d.m, d.k, d.n)
		Parallel(got, a, b, d.m, d.k, d.n, 16, d.workers)
		if diff := maxDiff(got, want); diff > 1e-4 {
			t.Errorf("parallel m=%d k=%d n=%d w=%d: max diff %g", d.m, d.k, d.n, d.workers, diff)
		}
	}
}

// Blocked must overwrite C, not accumulate into stale contents.
func TestBlockedOverwrites(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := []float32{100, 100, 100, 100}
	Blocked(c, a, b, 2, 2, 2, 1)
	want := make([]float32, 4)
	Naive(want, a, b, 2, 2, 2)
	if diff := maxDiff(c, want); diff != 0 {
		t.Errorf("stale C leaked into result: %v want %v", c, want)
	}
}

// Property: (A·B)·x == A·(B·x) for random small matrices (associativity of
// the linear maps computed by Blocked).
func TestBlockedAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 4+int(seed%3+3)%3, 5, 6
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		x := randMat(rng, n*1)
		ab := make([]float32, m*n)
		Blocked(ab, a, b, m, k, n, 2)
		abx := make([]float32, m)
		Blocked(abx, ab, x, m, n, 1, 2)
		bx := make([]float32, k)
		Blocked(bx, b, x, k, n, 1, 2)
		abx2 := make([]float32, m)
		Blocked(abx2, a, bx, m, k, 1, 2)
		return maxDiff(abx, abx2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadDims(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dim":     func() { Naive(make([]float32, 1), make([]float32, 1), make([]float32, 1), 0, 1, 1) },
		"short buffer": func() { Blocked(make([]float32, 1), make([]float32, 1), make([]float32, 1), 2, 2, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBlocked128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := randMat(rng, n*n)
	y := randMat(rng, n*n)
	c := make([]float32, n*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Blocked(c, x, y, n, n, n, 0)
	}
}

func BenchmarkParallel256(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 256
	x := randMat(rng, n*n)
	y := randMat(rng, n*n)
	c := make([]float32, n*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parallel(c, x, y, n, n, n, 0, 0)
	}
}

// Parallel bands now split on multiples of the block size; correctness must
// hold for every awkward (m, bs, workers) combination, including bands that
// swallow the whole matrix and odd m far from any block multiple.
func TestParallelBlockAlignedBands(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dims := []struct{ m, k, n, bs, workers int }{
		{130, 33, 45, 64, 2}, // two 64-row bands + a 2-row tail band
		{130, 33, 45, 64, 3}, // rounding leaves fewer bands than workers
		{63, 17, 29, 64, 4},  // one block: everything collapses to Blocked
		{257, 40, 31, 32, 8}, // many aligned bands + 1-row tail
		{96, 24, 24, 32, 5},  // workers does not divide block count
		{7, 5, 9, 2, 3},      // tiny blocks, micro-tile edges everywhere
	}
	for _, d := range dims {
		a := randMat(rng, d.m*d.k)
		b := randMat(rng, d.k*d.n)
		want := make([]float32, d.m*d.n)
		got := make([]float32, d.m*d.n)
		Naive(want, a, b, d.m, d.k, d.n)
		Parallel(got, a, b, d.m, d.k, d.n, d.bs, d.workers)
		if diff := maxDiff(got, want); diff > 1e-4 {
			t.Errorf("parallel m=%d k=%d n=%d bs=%d w=%d: max diff %g",
				d.m, d.k, d.n, d.bs, d.workers, diff)
		}
	}
}

// The packed microkernel's zero-padded edge strips must never leak into C:
// every m, n in 1..9 (all micro-tile remainders) against the naive oracle.
func TestPackedMicroTileEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for m := 1; m <= 9; m++ {
		for n := 1; n <= 9; n++ {
			k := 1 + (m+n)%5
			a := randMat(rng, m*k)
			b := randMat(rng, k*n)
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			Naive(want, a, b, m, k, n)
			Blocked(got, a, b, m, k, n, 4)
			if diff := maxDiff(got, want); diff > 1e-4 {
				t.Errorf("m=%d k=%d n=%d: max diff %g", m, k, n, diff)
			}
		}
	}
}
