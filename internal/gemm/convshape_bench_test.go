package gemm

import (
	"math/rand"
	"testing"
)

// Conv-shaped GEMM: the im2col baseline's (Cout × K) · (K × P) multiply.
func BenchmarkBlockedConvShape(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m, k, n := 32, 288, 3136
	x := randMat(rng, m*k)
	y := randMat(rng, k*n)
	c := make([]float32, m*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Blocked(c, x, y, m, k, n, 0)
	}
}
