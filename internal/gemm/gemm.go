// Package gemm provides the matrix-multiply substrate used by the
// convolution baselines (im2col direct convolution and the unfused Winograd
// pipeline). Three variants are provided: a naive triple loop used as the
// correctness reference, a cache-blocked kernel, and a parallel blocked
// kernel that fans rows of the output across goroutines.
package gemm

import (
	"fmt"
	"runtime"
	"sync"
)

// Naive computes C = A·B with A m×k, B k×n, C m×n, all row-major. It is the
// correctness oracle for the optimized variants.
func Naive(c, a, b []float32, m, k, n int) {
	checkDims(c, a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// DefaultBlock is the square tile edge used by Blocked when no block size is
// given. 64 keeps three float32 tiles comfortably inside a typical L1 cache.
const DefaultBlock = 64

// Blocked computes C = A·B with square cache tiles of edge bs (DefaultBlock
// if bs <= 0). C is overwritten. Internally it runs the packed microkernel
// of packed.go: A/B panels are packed once per tile into contiguous 4-wide
// strips and each 4×4 output micro-tile accumulates in registers.
func Blocked(c, a, b []float32, m, k, n, bs int) {
	checkDims(c, a, b, m, k, n)
	if bs <= 0 {
		bs = DefaultBlock
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	packedGEMM(c, a, b, m, k, n, bs)
}

// Parallel computes C = A·B using up to workers goroutines (GOMAXPROCS if
// workers <= 0), each handling a band of rows with the blocked kernel.
// Bands split on multiples of the block size so no worker's tiles straddle
// a cache block boundary.
func Parallel(c, a, b []float32, m, k, n, bs, workers int) {
	checkDims(c, a, b, m, k, n)
	if bs <= 0 {
		bs = DefaultBlock
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	// Band height: the per-worker row count rounded up to a whole number of
	// blocks (at least one). Fewer workers may run than requested when the
	// rounding leaves nothing for the tail.
	rows := (m + workers - 1) / workers
	rows = (rows + bs - 1) / bs * bs
	if rows >= m || workers <= 1 {
		Blocked(c, a, b, m, k, n, bs)
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += rows {
		hi := min(lo+rows, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			Blocked(c[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n, bs)
		}(lo, hi)
	}
	wg.Wait()
}

func checkDims(c, a, b []float32, m, k, n int) {
	if m < 1 || k < 1 || n < 1 {
		panic(fmt.Sprintf("gemm: invalid dims m=%d k=%d n=%d", m, k, n))
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("gemm: buffers too small for m=%d k=%d n=%d: |a|=%d |b|=%d |c|=%d",
			m, k, n, len(a), len(b), len(c)))
	}
}
