// Package gemm provides the matrix-multiply substrate used by the
// convolution baselines (im2col direct convolution and the unfused Winograd
// pipeline). Three variants are provided: a naive triple loop used as the
// correctness reference, a cache-blocked kernel, and a parallel blocked
// kernel that fans rows of the output across goroutines.
package gemm

import (
	"fmt"
	"runtime"
	"sync"
)

// Naive computes C = A·B with A m×k, B k×n, C m×n, all row-major. It is the
// correctness oracle for the optimized variants.
func Naive(c, a, b []float32, m, k, n int) {
	checkDims(c, a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// DefaultBlock is the square tile edge used by Blocked when no block size is
// given. 64 keeps three float32 tiles comfortably inside a typical L1 cache.
const DefaultBlock = 64

// Blocked computes C = A·B with square cache tiles of edge bs (DefaultBlock
// if bs <= 0). C is overwritten.
func Blocked(c, a, b []float32, m, k, n, bs int) {
	checkDims(c, a, b, m, k, n)
	if bs <= 0 {
		bs = DefaultBlock
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	for i0 := 0; i0 < m; i0 += bs {
		i1 := min(i0+bs, m)
		for p0 := 0; p0 < k; p0 += bs {
			p1 := min(p0+bs, k)
			for j0 := 0; j0 < n; j0 += bs {
				j1 := min(j0+bs, n)
				blockKernel(c, a, b, k, n, i0, i1, p0, p1, j0, j1)
			}
		}
	}
}

// blockKernel accumulates the (i0:i1, j0:j1) tile of C from the matching
// tiles of A and B. The inner loop runs over j so that B and C are streamed
// with unit stride.
func blockKernel(c, a, b []float32, k, n, i0, i1, p0, p1, j0, j1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p := p0; p < p1; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j := j0; j < j1; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// Parallel computes C = A·B using up to workers goroutines (GOMAXPROCS if
// workers <= 0), each handling a band of rows with the blocked kernel.
func Parallel(c, a, b []float32, m, k, n, bs, workers int) {
	checkDims(c, a, b, m, k, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		Blocked(c, a, b, m, k, n, bs)
		return
	}
	var wg sync.WaitGroup
	rows := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rows
		hi := min(lo+rows, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			Blocked(c[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n, bs)
		}(lo, hi)
	}
	wg.Wait()
}

func checkDims(c, a, b []float32, m, k, n int) {
	if m < 1 || k < 1 || n < 1 {
		panic(fmt.Sprintf("gemm: invalid dims m=%d k=%d n=%d", m, k, n))
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("gemm: buffers too small for m=%d k=%d n=%d: |a|=%d |b|=%d |c|=%d",
			m, k, n, len(a), len(b), len(c)))
	}
}
