package gemm

import "sync"

// This file is the packed microkernel behind Blocked and Parallel. The
// classic blocked loop streams B straight out of the operand matrix, which
// leaves the inner loop with strided, bounds-checked loads and one output
// row in flight. The packed kernel instead:
//
//   - packs the A panel (all rows × one kc slice of k) into 4-row strips
//     stored p-major, so the microkernel reads its four A operands from
//     four consecutive floats;
//   - packs each kc×nc B tile into 4-column strips stored p-major, giving
//     the microkernel consecutive loads for its four B operands;
//   - accumulates a 4×4 output micro-tile in sixteen registers, unrolled
//     with no bounds checks in the p loop.
//
// Panels are packed once per (kc, nc) tile and reused by every micro-tile
// that touches them; pack buffers come from a sync.Pool so steady-state
// multiplication performs no allocations. Edge strips (m or n not a
// multiple of 4) are zero-padded in the packs — the padded lanes compute
// zeros that are simply not written back.

// mr×nr is the micro-tile: 4×4 float32 accumulators live in registers.
const microTile = 4

// packBuf is a reusable pair of packing buffers.
type packBuf struct {
	a []float32 // packed A panel: strips of 4 rows, p-major
	b []float32 // packed B tile: strips of 4 cols, p-major
}

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

func (pb *packBuf) sized(an, bn int) (a, b []float32) {
	if cap(pb.a) < an {
		pb.a = make([]float32, an)
	}
	if cap(pb.b) < bn {
		pb.b = make([]float32, bn)
	}
	return pb.a[:an], pb.b[:bn]
}

// packA writes rows [0, m) × cols [p0, p0+kc) of A (row-major m×k) into
// dst as ceil(m/4) strips: strip s holds rows 4s..4s+3 interleaved p-major
// (dst[(s·kc+p)*4+r] = A[4s+r][p0+p]), zero-padding missing rows.
func packA(dst, a []float32, m, k, p0, kc int) {
	idx := 0
	for i0 := 0; i0 < m; i0 += microTile {
		r0 := a[(i0+0)*k+p0:]
		r1, r2, r3 := r0, r0, r0
		n := m - i0
		if n > 1 {
			r1 = a[(i0+1)*k+p0:]
		}
		if n > 2 {
			r2 = a[(i0+2)*k+p0:]
		}
		if n > 3 {
			r3 = a[(i0+3)*k+p0:]
		}
		for p := 0; p < kc; p++ {
			dst[idx] = r0[p]
			if n > 1 {
				dst[idx+1] = r1[p]
			} else {
				dst[idx+1] = 0
			}
			if n > 2 {
				dst[idx+2] = r2[p]
			} else {
				dst[idx+2] = 0
			}
			if n > 3 {
				dst[idx+3] = r3[p]
			} else {
				dst[idx+3] = 0
			}
			idx += microTile
		}
	}
}

// packB writes rows [p0, p0+kc) × cols [j0, j0+nc) of B (row-major k×n)
// into dst as ceil(nc/4) strips: strip s holds cols j0+4s..j0+4s+3
// interleaved p-major, zero-padding missing columns.
func packB(dst, b []float32, k, n, p0, kc, j0, nc int) {
	idx := 0
	for jj := 0; jj < nc; jj += microTile {
		w := nc - jj
		if w > microTile {
			w = microTile
		}
		for p := 0; p < kc; p++ {
			row := b[(p0+p)*n+j0+jj:]
			switch w {
			case 4:
				dst[idx] = row[0]
				dst[idx+1] = row[1]
				dst[idx+2] = row[2]
				dst[idx+3] = row[3]
			default:
				for c := 0; c < microTile; c++ {
					if c < w {
						dst[idx+c] = row[c]
					} else {
						dst[idx+c] = 0
					}
				}
			}
			idx += microTile
		}
	}
}

// microKernel accumulates the 4×4 micro-tile C[i0:i0+4, j0+jj:j0+jj+4] from
// one packed A strip and one packed B strip over kc steps. rows/cols bound
// the write-back for edge tiles.
func microKernel(c []float32, ap, bp []float32, kc, n, i0, jcol, rows, cols int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	// Both packs are read with unit stride; the slice headers below let the
	// compiler drop bounds checks inside the unrolled loop.
	ap = ap[: kc*microTile : kc*microTile]
	bp = bp[: kc*microTile : kc*microTile]
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := ap[p*4], ap[p*4+1], ap[p*4+2], ap[p*4+3]
		b0, b1, b2, b3 := bp[p*4], bp[p*4+1], bp[p*4+2], bp[p*4+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc := [4][4]float32{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for r := 0; r < rows; r++ {
		crow := c[(i0+r)*n+jcol:]
		for cc := 0; cc < cols; cc++ {
			crow[cc] += acc[r][cc]
		}
	}
}

// packedGEMM computes C += A·B over the full m×n output using kc×nc panel
// blocking with bs as the panel edge. C must be zeroed by the caller
// (Blocked does; Parallel's bands call through Blocked).
func packedGEMM(c, a, b []float32, m, k, n, bs int) {
	pb := packPool.Get().(*packBuf)
	defer packPool.Put(pb)
	mStrips := (m + microTile - 1) / microTile
	for p0 := 0; p0 < k; p0 += bs {
		kc := min(bs, k-p0)
		ap, _ := pb.sized(mStrips*microTile*kc, 0)
		packA(ap, a, m, k, p0, kc)
		for j0 := 0; j0 < n; j0 += bs {
			nc := min(bs, n-j0)
			nStrips := (nc + microTile - 1) / microTile
			_, bp := pb.sized(mStrips*microTile*kc, nStrips*microTile*kc)
			packB(bp, b, k, n, p0, kc, j0, nc)
			for i0 := 0; i0 < m; i0 += microTile {
				rows := min(microTile, m-i0)
				astrip := ap[(i0/microTile)*microTile*kc:]
				for jj := 0; jj < nc; jj += microTile {
					cols := min(microTile, nc-jj)
					bstrip := bp[(jj/microTile)*microTile*kc:]
					microKernel(c, astrip, bstrip, kc, n, i0, j0+jj, rows, cols)
				}
			}
		}
	}
}
