package dag

import (
	"fmt"

	"repro/internal/shapes"
)

// The four sub-computations of the Winograd DAG's multi-step partition
// (Figure 5): input/kernel transforms, element-wise multiplication,
// channel summation, and the output transform.
const (
	StepTransform = 0 // P = Bᵀ·I·B and J = L·K·Lᵀ linear-combination trees
	StepEltwise   = 1 // Λ = P ⊙ J element products
	StepChanSum   = 2 // Π = Σ_c Λ summation trees along channels
	StepOutput    = 3 // Y = Aᵀ·Π·A linear-combination trees
)

// WinogradConv is the DAG of the Winograd algorithm F(e×e, r×r) applied to a
// full convolution layer, as in Figure 5 of the paper.
type WinogradConv struct {
	*Graph
	Shape shapes.ConvShape
	E     int // outputs per tile edge (the paper's e)
	// Shared records whether transformed tiles P_i and J_k were shared
	// across output channels / tiles (false reproduces the per-(i,k)
	// recomputation counted by Lemma 4.14).
	Shared bool

	TilesH, TilesW int
}

// BuildWinogradConv constructs the Winograd DAG for the given shape and
// output tile size e. The shape must have square kernels, stride 1, no
// padding, batch 1, Cin ≥ 2, and output dimensions divisible by e. When
// shared is false, the input-transform trees are rebuilt for every output
// channel and the kernel-transform trees for every tile, which is the
// recomputation-allowed DAG whose vertex count Lemma 4.14 states; when true,
// transformed tiles are computed once and reused.
func BuildWinogradConv(s shapes.ConvShape, e int, shared bool) (*WinogradConv, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch {
	case !s.WinogradOK():
		return nil, fmt.Errorf("dag: %v does not admit Winograd (need square kernel, stride 1)", s)
	case s.Pad != 0 || s.Batch != 1:
		return nil, fmt.Errorf("dag: winograd DAG requires batch 1, pad 0, got %v", s)
	case s.Cin < 2:
		return nil, fmt.Errorf("dag: winograd DAG requires Cin >= 2, got %d", s.Cin)
	case e < 1 || s.Hout()%e != 0 || s.Wout()%e != 0:
		return nil, fmt.Errorf("dag: output %dx%d not divisible by e=%d", s.Hout(), s.Wout(), e)
	}
	r := s.Hker
	alpha := e + r - 1
	tilesH, tilesW := s.Hout()/e, s.Wout()/e
	est := WinogradComputeCount(s, e)
	const maxVertices = 1 << 22
	if est > maxVertices {
		return nil, fmt.Errorf("dag: shape %v needs ~%d vertices (max %d)", s, est, maxVertices)
	}

	g := New()
	wc := &WinogradConv{Graph: g, Shape: s, E: e, Shared: shared, TilesH: tilesH, TilesW: tilesW}

	// Input image vertices, indexed [c][h][w].
	inIDs := make([][][]int, s.Cin)
	for c := 0; c < s.Cin; c++ {
		inIDs[c] = make([][]int, s.Hin)
		for h := 0; h < s.Hin; h++ {
			inIDs[c][h] = make([]int, s.Win)
			for w := 0; w < s.Win; w++ {
				inIDs[c][h][w] = g.AddVertex(Input, StepTransform)
			}
		}
	}
	// Kernel weight vertices, indexed [k][c][p*r+q].
	kerIDs := make([][][]int, s.Cout)
	for k := 0; k < s.Cout; k++ {
		kerIDs[k] = make([][]int, s.Cin)
		for c := 0; c < s.Cin; c++ {
			kerIDs[k][c] = make([]int, r*r)
			for i := range kerIDs[k][c] {
				kerIDs[k][c][i] = g.AddVertex(Input, StepTransform)
			}
		}
	}

	// transformP builds the α² linear-combination trees of P for tile
	// (th,tw) at channel c; each P element depends on the whole α×α input
	// tile.
	tileInputs := make([]int, 0, alpha*alpha)
	transformP := func(th, tw, c int) []int {
		tileInputs = tileInputs[:0]
		for dh := 0; dh < alpha; dh++ {
			for dw := 0; dw < alpha; dw++ {
				tileInputs = append(tileInputs, inIDs[c][th*e+dh][tw*e+dw])
			}
		}
		out := make([]int, alpha*alpha)
		for i := range out {
			out[i] = AddLinearCombinationTree(g, StepTransform, Internal, tileInputs)
		}
		return out
	}
	// transformJ builds the α² linear-combination trees of J for kernel k at
	// channel c; each J element depends on the r² weights.
	transformJ := func(k, c int) []int {
		out := make([]int, alpha*alpha)
		for i := range out {
			out[i] = AddLinearCombinationTree(g, StepTransform, Internal, kerIDs[k][c])
		}
		return out
	}

	// Shared mode: precompute transforms once.
	var sharedP map[[2]int][][]int // tile -> per-channel P element ids
	var sharedJ [][][]int          // [k][c] -> J element ids
	if shared {
		sharedP = make(map[[2]int][][]int)
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				per := make([][]int, s.Cin)
				for c := 0; c < s.Cin; c++ {
					per[c] = transformP(th, tw, c)
				}
				sharedP[[2]int{th, tw}] = per
			}
		}
		sharedJ = make([][][]int, s.Cout)
		for k := 0; k < s.Cout; k++ {
			sharedJ[k] = make([][]int, s.Cin)
			for c := 0; c < s.Cin; c++ {
				sharedJ[k][c] = transformJ(k, c)
			}
		}
	}

	chanProducts := make([]int, s.Cin)
	for th := 0; th < tilesH; th++ {
		for tw := 0; tw < tilesW; tw++ {
			for k := 0; k < s.Cout; k++ {
				// Step 1: per-channel transformed tiles.
				pElems := make([][]int, s.Cin)
				jElems := make([][]int, s.Cin)
				for c := 0; c < s.Cin; c++ {
					if shared {
						pElems[c] = sharedP[[2]int{th, tw}][c]
						jElems[c] = sharedJ[k][c]
					} else {
						pElems[c] = transformP(th, tw, c)
						jElems[c] = transformJ(k, c)
					}
				}
				// Steps 2+3: element products and channel summation per
				// tile position.
				piElems := make([]int, alpha*alpha)
				for pos := 0; pos < alpha*alpha; pos++ {
					for c := 0; c < s.Cin; c++ {
						chanProducts[c] = g.AddVertex(Internal, StepEltwise, pElems[c][pos], jElems[c][pos])
					}
					piElems[pos] = AddSummationTree(g, StepChanSum, Internal, chanProducts)
				}
				// Step 4: e² outputs, each a linear combination of all of Π.
				for i := 0; i < e*e; i++ {
					AddLinearCombinationTree(g, StepOutput, Output, piElems)
				}
			}
		}
	}
	return wc, nil
}

// WinogradComputeCount returns the exact number of internal plus output
// vertices of the recomputation-allowed (unshared) Winograd DAG. Its leading
// term is 2·Wout·Hout·Cout·Cin·(e+r−1)⁴/e², matching Lemma 4.14.
func WinogradComputeCount(s shapes.ConvShape, e int) int {
	r := s.Hker
	alpha := e + r - 1
	a2 := alpha * alpha
	perPair := a2*s.Cin*LinearCombinationTreeSize(a2) + // P trees
		a2*s.Cin*LinearCombinationTreeSize(r*r) + // J trees
		a2*s.Cin + // element products
		a2*SummationTreeSize(s.Cin) + // channel sums
		e*e*LinearCombinationTreeSize(a2) // output trees
	pairs := (s.Hout() / e) * (s.Wout() / e) * s.Cout
	return perPair * pairs
}
