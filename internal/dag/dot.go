package dag

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format, coloring vertices by
// kind and grouping them by sub-computation step, so small convolution DAGs
// (Figures 4 and 5 of the paper) can be visualized directly. Graphs beyond
// maxDOTVertices are refused — a plot with millions of nodes helps no one.
const maxDOTVertices = 4096

// WriteDOT writes the DOT representation of g to w.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	if g.NumVertices() > maxDOTVertices {
		return fmt.Errorf("dag: %d vertices exceed the %d-vertex DOT limit", g.NumVertices(), maxDOTVertices)
	}
	if name == "" {
		name = "dag"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle, fontsize=8];\n", name); err != nil {
		return err
	}
	for step := 0; step < g.NumSteps(); step++ {
		fmt.Fprintf(w, "  subgraph cluster_step%d {\n    label=\"step %d\";\n", step, step)
		for v := 0; v < g.NumVertices(); v++ {
			if g.Step(v) != step {
				continue
			}
			var style string
			switch g.Kind(v) {
			case Input:
				style = `style=filled, fillcolor=lightblue`
			case Output:
				style = `style=filled, fillcolor=lightsalmon`
			default:
				style = `style=filled, fillcolor=white`
			}
			fmt.Fprintf(w, "    v%d [label=\"%d\", %s];\n", v, v, style)
		}
		if _, err := fmt.Fprint(w, "  }\n"); err != nil {
			return err
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, p := range g.Preds(v) {
			fmt.Fprintf(w, "  v%d -> v%d;\n", p, v)
		}
	}
	_, err := fmt.Fprint(w, "}\n")
	return err
}
