package dag

import (
	"strings"
	"testing"

	"repro/internal/shapes"
)

func TestWriteDOT(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 1, Hin: 3, Win: 3, Cout: 1, Hker: 2, Wker: 2, Strid: 1}
	d, err := BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, d.Graph, "tiny"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "cluster_step0", "cluster_step1", "lightblue", "lightsalmon", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Edge count must match the DAG.
	edges := 0
	for v := 0; v < d.NumVertices(); v++ {
		edges += len(d.Preds(v))
	}
	if got := strings.Count(out, "->"); got != edges {
		t.Errorf("DOT has %d edges, DAG has %d", got, edges)
	}
}

func TestWriteDOTRefusesHugeGraphs(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 4, Hin: 12, Win: 12, Cout: 8, Hker: 3, Wker: 3, Strid: 1}
	d, err := BuildDirectConv(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() <= maxDOTVertices {
		t.Skip("graph unexpectedly small")
	}
	var b strings.Builder
	if err := WriteDOT(&b, d.Graph, ""); err == nil {
		t.Error("huge graph accepted")
	}
}
