package dag

// This file provides the two tree gadgets from which the convolution DAGs
// are assembled.

// AddSummationTree appends a summation tree (Section 4.2) over the given
// input vertex ids to the graph: the inputs are accumulated pairwise in a
// chain, so a tree over k inputs adds k−2 internal vertices and one vertex
// of the given final kind (Lemma 4.7). With a single input the "tree" is one
// pass-through vertex of the final kind. The root id is returned.
func AddSummationTree(g *Graph, step int, finalKind Kind, inputs []int) int {
	if len(inputs) == 0 {
		panic("dag: summation tree needs at least one input")
	}
	if len(inputs) == 1 {
		return g.AddVertex(finalKind, step, inputs[0])
	}
	acc := inputs[0]
	for i := 1; i < len(inputs); i++ {
		kind := Internal
		if i == len(inputs)-1 {
			kind = finalKind
		}
		acc = g.AddVertex(kind, step, acc, inputs[i])
	}
	return acc
}

// AddLinearCombinationTree appends a linear-combination tree (Section 4.3)
// over the given input vertex ids: each input is first multiplied by a
// coefficient (one internal vertex per input — the coefficients themselves
// live permanently in fast memory and are not DAG vertices, matching the
// paper's red vertices in Figure 5), then the products are summed. A tree
// over k inputs therefore adds 2k−2 internal vertices and one final vertex
// (Lemma 4.13). The root id is returned.
func AddLinearCombinationTree(g *Graph, step int, finalKind Kind, inputs []int) int {
	if len(inputs) == 0 {
		panic("dag: linear combination tree needs at least one input")
	}
	if len(inputs) == 1 {
		// One scale vertex; it is also the root.
		return g.AddVertex(finalKind, step, inputs[0])
	}
	scaled := make([]int, len(inputs))
	for i, in := range inputs {
		scaled[i] = g.AddVertex(Internal, step, in)
	}
	return AddSummationTree(g, step, finalKind, scaled)
}

// SummationTreeSize returns the number of vertices a summation tree over k
// inputs adds to the graph (internal plus root), per Lemma 4.7.
func SummationTreeSize(k int) int {
	if k <= 1 {
		return 1
	}
	return k - 1 // k-2 internal + 1 root
}

// LinearCombinationTreeSize returns the number of vertices a linear
// combination tree over k inputs adds to the graph, per Lemma 4.13.
func LinearCombinationTreeSize(k int) int {
	if k <= 1 {
		return 1
	}
	return 2*k - 1 // 2k-2 internal + 1 root
}
