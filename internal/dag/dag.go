// Package dag builds and analyzes the computation DAGs on which the paper's
// red–blue pebble game is played: the direct-convolution DAG of Figure 4 and
// the Winograd DAG of Figure 5, together with their building blocks, the
// summation tree (Lemma 4.7) and the linear-combination tree (Lemma 4.13).
//
// Vertices are dense integer ids. Edges always point from a lower id to a
// higher id, so graphs are acyclic by construction and the identity order is
// a topological order. Each vertex carries the index of the sub-computation
// (step) that produced it, giving the multi-step partition of Definition 4.1.
package dag

import "fmt"

// Kind classifies a vertex of the computation DAG.
type Kind uint8

const (
	// Input vertices have no predecessors and start with blue pebbles.
	Input Kind = iota
	// Internal vertices are intermediate values.
	Internal
	// Output vertices are final results; the game ends when all carry blue
	// pebbles.
	Output
)

func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Internal:
		return "internal"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Graph is a computation DAG under construction or analysis.
type Graph struct {
	preds [][]int32
	kinds []Kind
	steps []int32 // sub-computation index per vertex (0 for inputs)

	succs    [][]int32 // built lazily by Succs
	numSteps int
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddVertex appends a vertex of the given kind produced by sub-computation
// step, with the given predecessors, and returns its id. Predecessor ids must
// already exist (be smaller than the new id); Input vertices must have none.
func (g *Graph) AddVertex(kind Kind, step int, preds ...int) int {
	id := len(g.kinds)
	if kind == Input && len(preds) > 0 {
		panic("dag: input vertex with predecessors")
	}
	if kind != Input && len(preds) == 0 {
		panic("dag: non-input vertex without predecessors")
	}
	ps := make([]int32, len(preds))
	for i, p := range preds {
		if p < 0 || p >= id {
			panic(fmt.Sprintf("dag: predecessor %d out of range for vertex %d", p, id))
		}
		ps[i] = int32(p)
	}
	g.preds = append(g.preds, ps)
	g.kinds = append(g.kinds, kind)
	g.steps = append(g.steps, int32(step))
	if step+1 > g.numSteps {
		g.numSteps = step + 1
	}
	g.succs = nil
	return id
}

// NumVertices is the number of vertices.
func (g *Graph) NumVertices() int { return len(g.kinds) }

// NumSteps is the number of sub-computations (1 + the largest step index).
func (g *Graph) NumSteps() int { return g.numSteps }

// Kind returns the kind of vertex v.
func (g *Graph) Kind(v int) Kind { return g.kinds[v] }

// Step returns the sub-computation index of vertex v.
func (g *Graph) Step(v int) int { return int(g.steps[v]) }

// Preds returns the predecessor ids of v. The slice must not be modified.
func (g *Graph) Preds(v int) []int32 { return g.preds[v] }

// Succs returns the successor ids of v, computing the reverse adjacency on
// first use. The slice must not be modified.
func (g *Graph) Succs(v int) []int32 {
	if g.succs == nil {
		g.succs = make([][]int32, len(g.kinds))
		for u := range g.preds {
			for _, p := range g.preds[u] {
				g.succs[p] = append(g.succs[p], int32(u))
			}
		}
	}
	return g.succs[v]
}

// MaxInDegree returns the largest predecessor count of any vertex. A pebble
// game needs at least MaxInDegree+1 red pebbles to compute every vertex.
func (g *Graph) MaxInDegree() int {
	m := 0
	for _, ps := range g.preds {
		if len(ps) > m {
			m = len(ps)
		}
	}
	return m
}

// CountKind returns the number of vertices of kind k.
func (g *Graph) CountKind(k Kind) int {
	n := 0
	for _, kk := range g.kinds {
		if kk == k {
			n++
		}
	}
	return n
}

// Vertices returns all vertex ids of kind k, in id order.
func (g *Graph) Vertices(k Kind) []int {
	var out []int
	for v, kk := range g.kinds {
		if kk == k {
			out = append(out, v)
		}
	}
	return out
}

// StepVertexCount returns how many non-input vertices belong to
// sub-computation j.
func (g *Graph) StepVertexCount(j int) int {
	n := 0
	for v, s := range g.steps {
		if int(s) == j && g.kinds[v] != Input {
			n++
		}
	}
	return n
}

// ComputeCount is the number of non-input vertices |V_inter ∪ V_out|, the
// quantity bounded by Lemmas 4.8 and 4.14.
func (g *Graph) ComputeCount() int {
	return g.NumVertices() - g.CountKind(Input)
}

// Validate checks structural invariants: inputs have no predecessors,
// non-inputs have at least one, all edges point forward, and outputs have no
// successors.
func (g *Graph) Validate() error {
	for v := range g.kinds {
		switch {
		case g.kinds[v] == Input && len(g.preds[v]) != 0:
			return fmt.Errorf("dag: input vertex %d has predecessors", v)
		case g.kinds[v] != Input && len(g.preds[v]) == 0:
			return fmt.Errorf("dag: vertex %d has no predecessors", v)
		}
		for _, p := range g.preds[v] {
			if int(p) >= v {
				return fmt.Errorf("dag: edge %d->%d not forward", p, v)
			}
		}
	}
	for _, v := range g.Vertices(Output) {
		if len(g.Succs(v)) != 0 {
			return fmt.Errorf("dag: output vertex %d has successors", v)
		}
	}
	return nil
}
