package dag

import (
	"testing"
	"testing/quick"

	"repro/internal/shapes"
)

func tinyShape() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 2, Wker: 2, Strid: 1}
}

func TestAddVertexInvariants(t *testing.T) {
	g := New()
	a := g.AddVertex(Input, 0)
	b := g.AddVertex(Input, 0)
	c := g.AddVertex(Output, 1, a, b)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices=%d", g.NumVertices())
	}
	if g.Kind(c) != Output || g.Step(c) != 1 {
		t.Errorf("vertex metadata wrong: %v step %d", g.Kind(c), g.Step(c))
	}
	if got := g.Succs(a); len(got) != 1 || got[0] != int32(c) {
		t.Errorf("Succs(a)=%v", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if g.NumSteps() != 2 {
		t.Errorf("NumSteps=%d want 2", g.NumSteps())
	}
}

func TestAddVertexPanics(t *testing.T) {
	cases := map[string]func(g *Graph){
		"input with preds":    func(g *Graph) { g.AddVertex(Input, 0, 0) },
		"internal no preds":   func(g *Graph) { g.AddVertex(Internal, 0) },
		"forward ref":         func(g *Graph) { g.AddVertex(Internal, 0, 5) },
		"self ref impossible": func(g *Graph) { g.AddVertex(Internal, 0, 1) },
	}
	for name, fn := range cases {
		g := New()
		g.AddVertex(Input, 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(g)
		}()
	}
}

func TestSummationTreeCounts(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 17} {
		g := New()
		ins := make([]int, k)
		for i := range ins {
			ins[i] = g.AddVertex(Input, 0)
		}
		before := g.NumVertices()
		root := AddSummationTree(g, 1, Output, ins)
		added := g.NumVertices() - before
		if added != SummationTreeSize(k) {
			t.Errorf("k=%d: added %d vertices, formula says %d", k, added, SummationTreeSize(k))
		}
		if g.Kind(root) != Output {
			t.Errorf("k=%d: root kind %v", k, g.Kind(root))
		}
		if g.MaxInDegree() > 2 {
			t.Errorf("k=%d: summation tree in-degree %d > 2", k, g.MaxInDegree())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestLinearCombinationTreeCounts(t *testing.T) {
	for _, k := range []int{1, 2, 4, 9, 16} {
		g := New()
		ins := make([]int, k)
		for i := range ins {
			ins[i] = g.AddVertex(Input, 0)
		}
		before := g.NumVertices()
		AddLinearCombinationTree(g, 1, Output, ins)
		added := g.NumVertices() - before
		if added != LinearCombinationTreeSize(k) {
			t.Errorf("k=%d: added %d vertices, formula says %d", k, added, LinearCombinationTreeSize(k))
		}
		if g.MaxInDegree() > 2 {
			t.Errorf("k=%d: in-degree %d > 2", k, g.MaxInDegree())
		}
	}
}

func TestDirectConvMatchesLemma48(t *testing.T) {
	for _, s := range []shapes.ConvShape{
		tinyShape(),
		{Batch: 1, Cin: 1, Hin: 4, Win: 4, Cout: 3, Hker: 3, Wker: 3, Strid: 1},
		{Batch: 1, Cin: 2, Hin: 5, Win: 5, Cout: 1, Hker: 3, Wker: 3, Strid: 2},
		{Batch: 1, Cin: 1, Hin: 3, Win: 3, Cout: 2, Hker: 1, Wker: 1, Strid: 1}, // K=1 edge case
	} {
		d, err := BuildDirectConv(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		wantInputs := s.InputVolume() + s.KernelVolume()
		if got := d.CountKind(Input); got != wantInputs {
			t.Errorf("%v: inputs=%d want %d", s, got, wantInputs)
		}
		if got := d.CountKind(Output); got != s.OutputVolume() {
			t.Errorf("%v: outputs=%d want %d", s, got, s.OutputVolume())
		}
		if got, want := d.ComputeCount(), DirectConvComputeCount(s); got != want {
			t.Errorf("%v: compute vertices=%d, Lemma 4.8 says %d", s, got, want)
		}
		if d.MaxInDegree() > 2 {
			t.Errorf("%v: in-degree %d > 2", s, d.MaxInDegree())
		}
		if s.KernelSize() > 1 && d.NumSteps() != 2 {
			t.Errorf("%v: steps=%d want 2", s, d.NumSteps())
		}
	}
}

func TestDirectConvRejects(t *testing.T) {
	s := tinyShape()
	s.Pad = 1
	if _, err := BuildDirectConv(s); err == nil {
		t.Error("padded shape accepted")
	}
	s = tinyShape()
	s.Batch = 2
	if _, err := BuildDirectConv(s); err == nil {
		t.Error("batched shape accepted")
	}
	s = tinyShape()
	s.Hin = 1000
	s.Win = 1000
	s.Cout = 1000
	if _, err := BuildDirectConv(s); err == nil {
		t.Error("huge shape accepted")
	}
}

func winoShape() shapes.ConvShape {
	// 6x6 input, 3x3 kernel, stride 1 -> 4x4 output, divisible by e=2.
	return shapes.ConvShape{Batch: 1, Cin: 2, Hin: 6, Win: 6, Cout: 2, Hker: 3, Wker: 3, Strid: 1}
}

func TestWinogradConvMatchesLemma414(t *testing.T) {
	s := winoShape()
	w, err := BuildWinogradConv(s, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := w.ComputeCount(), WinogradComputeCount(s, 2); got != want {
		t.Errorf("compute vertices=%d, count formula says %d", got, want)
	}
	if got := w.CountKind(Output); got != s.OutputVolume() {
		t.Errorf("outputs=%d want %d", got, s.OutputVolume())
	}
	if w.NumSteps() != 4 {
		t.Errorf("steps=%d want 4", w.NumSteps())
	}
	if w.MaxInDegree() > 2 {
		t.Errorf("in-degree %d > 2", w.MaxInDegree())
	}
	// Leading-term check of Lemma 4.14: count >= 2*Wout*Hout*Cout*Cin*alpha^4/e^2.
	alpha := 2 + 3 - 1
	lead := 2 * s.Wout() * s.Hout() * s.Cout * s.Cin * alpha * alpha * alpha * alpha / (2 * 2)
	if w.ComputeCount() < lead {
		t.Errorf("compute count %d below Lemma 4.14 leading term %d", w.ComputeCount(), lead)
	}
}

func TestWinogradSharedSmaller(t *testing.T) {
	s := winoShape()
	unshared, err := BuildWinogradConv(s, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := BuildWinogradConv(s, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if shared.NumVertices() >= unshared.NumVertices() {
		t.Errorf("shared DAG (%d vertices) not smaller than unshared (%d)",
			shared.NumVertices(), unshared.NumVertices())
	}
	if shared.CountKind(Output) != unshared.CountKind(Output) {
		t.Error("sharing changed the number of outputs")
	}
	if err := shared.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWinogradConvRejects(t *testing.T) {
	s := winoShape()
	s.Strid = 2
	if _, err := BuildWinogradConv(s, 2, false); err == nil {
		t.Error("stride 2 accepted")
	}
	s = winoShape()
	if _, err := BuildWinogradConv(s, 3, false); err == nil {
		t.Error("non-divisible tile size accepted")
	}
	s = winoShape()
	s.Cin = 1
	if _, err := BuildWinogradConv(s, 2, false); err == nil {
		t.Error("Cin=1 accepted")
	}
}

// Property: for random tiny direct-conv shapes the DAG vertex count always
// matches the closed-form Lemma 4.8 value.
func TestDirectConvCountProperty(t *testing.T) {
	f := func(cin, cout, hw, k uint8) bool {
		s := shapes.ConvShape{
			Batch: 1,
			Cin:   int(cin%2) + 1,
			Cout:  int(cout%2) + 1,
			Hin:   int(hw%3) + 3,
			Win:   int(hw%3) + 3,
			Hker:  int(k%2) + 1,
			Wker:  int(k%2) + 1,
			Strid: 1,
		}
		d, err := BuildDirectConv(s)
		if err != nil {
			return false
		}
		return d.ComputeCount() == DirectConvComputeCount(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Input.String() != "input" || Internal.String() != "internal" || Output.String() != "output" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}
