package dag

import (
	"fmt"

	"repro/internal/shapes"
)

// DirectConv is the DAG of a direct convolution (Figure 4 of the paper)
// together with the id ranges of its constituent parts.
type DirectConv struct {
	*Graph
	Shape shapes.ConvShape

	// InputIDs[c][h][w] is the vertex id of input pixel (c,h,w).
	InputIDs [][][]int
	// KernelIDs[k][c][p][q] is the vertex id of weight (k,c,p,q).
	KernelIDs [][][][]int
	// OutputIDs[k][h][w] is the vertex id of output (k,h,w).
	OutputIDs [][][]int
}

// StepProducts and StepSummation are the two sub-computations of the direct
// convolution's multi-step partition.
const (
	StepProducts  = 0 // element products of sliding windows with kernels
	StepSummation = 1 // summation trees reducing products to outputs
)

// BuildDirectConv constructs the complete direct-convolution DAG for the
// given shape (batch 1, no padding: the pebble-game analysis of the paper is
// for a single unpadded image). The DAG has Win·Hin·Cin + Wker·Hker·Cin·Cout
// input vertices and (2·Wker·Hker·Cin − 1)·Wout·Hout·Cout computed vertices
// (Lemma 4.8). Vertex counts grow very quickly; callers should keep shapes
// tiny (this builder is for theory validation, not execution).
func BuildDirectConv(s shapes.ConvShape) (*DirectConv, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Pad != 0 || s.Batch != 1 {
		return nil, fmt.Errorf("dag: direct-conv DAG requires batch 1, pad 0, got %v", s)
	}
	const maxVertices = 1 << 22
	est := s.InputVolume() + s.KernelVolume() + (2*s.KernelSize()-1)*s.OutputVolume()
	if est > maxVertices {
		return nil, fmt.Errorf("dag: shape %v needs ~%d vertices (max %d)", s, est, maxVertices)
	}

	g := New()
	d := &DirectConv{Graph: g, Shape: s}

	d.InputIDs = make([][][]int, s.Cin)
	for c := 0; c < s.Cin; c++ {
		d.InputIDs[c] = make([][]int, s.Hin)
		for h := 0; h < s.Hin; h++ {
			d.InputIDs[c][h] = make([]int, s.Win)
			for w := 0; w < s.Win; w++ {
				d.InputIDs[c][h][w] = g.AddVertex(Input, StepProducts)
			}
		}
	}
	d.KernelIDs = make([][][][]int, s.Cout)
	for k := 0; k < s.Cout; k++ {
		d.KernelIDs[k] = make([][][]int, s.Cin)
		for c := 0; c < s.Cin; c++ {
			d.KernelIDs[k][c] = make([][]int, s.Hker)
			for p := 0; p < s.Hker; p++ {
				d.KernelIDs[k][c][p] = make([]int, s.Wker)
				for q := 0; q < s.Wker; q++ {
					d.KernelIDs[k][c][p][q] = g.AddVertex(Input, StepProducts)
				}
			}
		}
	}

	hout, wout := s.Hout(), s.Wout()
	d.OutputIDs = make([][][]int, s.Cout)
	products := make([]int, 0, s.KernelSize())
	for k := 0; k < s.Cout; k++ {
		d.OutputIDs[k] = make([][]int, hout)
		for oh := 0; oh < hout; oh++ {
			d.OutputIDs[k][oh] = make([]int, wout)
			for ow := 0; ow < wout; ow++ {
				if s.KernelSize() == 1 {
					// Degenerate 1x1x1 window: the single product is the output.
					in := d.InputIDs[0][oh*s.Strid][ow*s.Strid]
					wv := d.KernelIDs[k][0][0][0]
					d.OutputIDs[k][oh][ow] = g.AddVertex(Output, StepProducts, in, wv)
					continue
				}
				products = products[:0]
				for c := 0; c < s.Cin; c++ {
					for p := 0; p < s.Hker; p++ {
						for q := 0; q < s.Wker; q++ {
							in := d.InputIDs[c][oh*s.Strid+p][ow*s.Strid+q]
							wv := d.KernelIDs[k][c][p][q]
							products = append(products, g.AddVertex(Internal, StepProducts, in, wv))
						}
					}
				}
				d.OutputIDs[k][oh][ow] = AddSummationTree(g, StepSummation, Output, products)
			}
		}
	}
	return d, nil
}

// DirectConvComputeCount returns the exact number of internal plus output
// vertices of the direct-convolution DAG, (2·Wker·Hker·Cin − 1)·Wout·Hout·Cout
// (Lemma 4.8), without building the graph.
func DirectConvComputeCount(s shapes.ConvShape) int {
	return (2*s.KernelSize() - 1) * s.OutputVolume()
}
