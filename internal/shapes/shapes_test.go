package shapes

import (
	"testing"
	"testing/quick"
)

func validShape() ConvShape {
	return ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 0}
}

func TestValidate(t *testing.T) {
	s := validShape()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ConvShape)
	}{
		{"batch", func(s *ConvShape) { s.Batch = 0 }},
		{"cin", func(s *ConvShape) { s.Cin = 0 }},
		{"cout", func(s *ConvShape) { s.Cout = -1 }},
		{"hin", func(s *ConvShape) { s.Hin = 0 }},
		{"win", func(s *ConvShape) { s.Win = 0 }},
		{"hker", func(s *ConvShape) { s.Hker = 0 }},
		{"wker", func(s *ConvShape) { s.Wker = 0 }},
		{"stride", func(s *ConvShape) { s.Strid = 0 }},
		{"pad", func(s *ConvShape) { s.Pad = -1 }},
		{"kernel too big", func(s *ConvShape) { s.Hker = 100 }},
	}
	for _, c := range cases {
		bad := validShape()
		c.mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid shape accepted: %+v", c.name, bad)
		}
	}
}

func TestOutputDims(t *testing.T) {
	cases := []struct {
		s          ConvShape
		hout, wout int
	}{
		{ConvShape{Batch: 1, Cin: 1, Hin: 5, Win: 5, Cout: 1, Hker: 3, Wker: 3, Strid: 1}, 3, 3},
		{ConvShape{Batch: 1, Cin: 1, Hin: 5, Win: 5, Cout: 1, Hker: 3, Wker: 3, Strid: 1, Pad: 1}, 5, 5},
		{ConvShape{Batch: 1, Cin: 1, Hin: 7, Win: 9, Cout: 1, Hker: 3, Wker: 3, Strid: 2}, 3, 4},
		{ConvShape{Batch: 1, Cin: 3, Hin: 227, Win: 227, Cout: 96, Hker: 11, Wker: 11, Strid: 4}, 55, 55},
	}
	for _, c := range cases {
		if got := c.s.Hout(); got != c.hout {
			t.Errorf("%v Hout=%d want %d", c.s, got, c.hout)
		}
		if got := c.s.Wout(); got != c.wout {
			t.Errorf("%v Wout=%d want %d", c.s, got, c.wout)
		}
	}
}

func TestVolumesAndFLOPs(t *testing.T) {
	s := ConvShape{Batch: 2, Cin: 4, Hin: 6, Win: 6, Cout: 8, Hker: 3, Wker: 3, Strid: 1}
	if got, want := s.InputVolume(), 4*6*6; got != want {
		t.Errorf("InputVolume=%d want %d", got, want)
	}
	if got, want := s.OutputVolume(), 8*4*4; got != want {
		t.Errorf("OutputVolume=%d want %d", got, want)
	}
	if got, want := s.KernelVolume(), 3*3*4*8; got != want {
		t.Errorf("KernelVolume=%d want %d", got, want)
	}
	if got, want := s.KernelSize(), 3*3*4; got != want {
		t.Errorf("KernelSize=%d want %d", got, want)
	}
	// 2 flops per product term, per output, per image.
	want := int64(2*3*3*4) * int64(8*4*4) * 2
	if got := s.FLOPs(); got != want {
		t.Errorf("FLOPs=%d want %d", got, want)
	}
}

func TestR(t *testing.T) {
	s := validShape()
	if got := s.R(); got != 9 {
		t.Errorf("R=%v want 9", got)
	}
	s.Strid = 2
	if got := s.R(); got != 2.25 {
		t.Errorf("R=%v want 2.25", got)
	}
	s.Strid = 3
	if got := s.R(); got != 1 {
		t.Errorf("R=%v want 1", got)
	}
}

func TestWinogradOK(t *testing.T) {
	s := validShape()
	if !s.WinogradOK() {
		t.Error("3x3 stride-1 should allow Winograd")
	}
	s.Strid = 2
	if s.WinogradOK() {
		t.Error("stride 2 must not allow Winograd")
	}
	s = validShape()
	s.Wker = 5
	if s.WinogradOK() {
		t.Error("non-square kernel must not allow Winograd")
	}
}

func TestWithBatch(t *testing.T) {
	s := validShape()
	b := s.WithBatch(32)
	if b.Batch != 32 || s.Batch != 1 {
		t.Errorf("WithBatch mutated receiver or failed: %+v / %+v", s, b)
	}
}

// Property: output dims are always positive for valid shapes, and output
// volume scales linearly in Cout.
func TestOutputDimsProperty(t *testing.T) {
	f := func(hin, win, k, mu, pad uint8) bool {
		s := ConvShape{
			Batch: 1, Cin: 3, Cout: 7,
			Hin: int(hin%64) + 8, Win: int(win%64) + 8,
			Hker: int(k%5) + 1, Wker: int(k%5) + 1,
			Strid: int(mu%3) + 1, Pad: int(pad % 3),
		}
		if err := s.Validate(); err != nil {
			return true // skip impossible combinations
		}
		if s.Hout() < 1 || s.Wout() < 1 {
			return false
		}
		doubled := s
		doubled.Cout *= 2
		return doubled.OutputVolume() == 2*s.OutputVolume()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := validShape()
	got := s.String()
	if got == "" {
		t.Fatal("empty String()")
	}
}
