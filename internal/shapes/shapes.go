// Package shapes defines convolution problem shapes shared by every other
// package in this repository: the bound formulas, the dataflow
// implementations, the auto-tuner and the CNN model inventories all describe
// a convolution layer with the same ConvShape value.
package shapes

import (
	"errors"
	"fmt"
)

// ConvShape describes one convolution layer in the form used throughout the
// paper: an input image of Cin×Hin×Win, Cout kernels of Cin×Hker×Wker, a
// stride μ and symmetric zero padding. Batch is the number of input images
// (N); the paper's single-image analysis corresponds to Batch == 1.
type ConvShape struct {
	Batch int // N, number of images
	Cin   int // input channels
	Hin   int // input height
	Win   int // input width
	Cout  int // output channels (number of kernels)
	Hker  int // kernel height
	Wker  int // kernel width
	Strid int // stride μ (same in both spatial dimensions)
	Pad   int // symmetric zero padding (same in both spatial dimensions)
	// Groups splits the channels into G independent convolutions of
	// Cin/G -> Cout/G channels each (grouped convolution; Groups == Cin is
	// depthwise). 0 means 1 — the zero value stays an ordinary dense
	// convolution, so every pre-existing shape literal is unchanged.
	Groups int
}

// G is the group count with the zero-value default applied: 0 (and 1) mean
// an ungrouped convolution.
func (s ConvShape) G() int {
	if s.Groups > 1 {
		return s.Groups
	}
	return 1
}

// Validate reports whether the shape describes a computable convolution.
func (s ConvShape) Validate() error {
	switch {
	case s.Batch < 1:
		return fmt.Errorf("shapes: batch %d < 1", s.Batch)
	case s.Cin < 1 || s.Cout < 1:
		return fmt.Errorf("shapes: channels (%d,%d) must be positive", s.Cin, s.Cout)
	case s.Hin < 1 || s.Win < 1:
		return fmt.Errorf("shapes: input %dx%d must be positive", s.Hin, s.Win)
	case s.Hker < 1 || s.Wker < 1:
		return fmt.Errorf("shapes: kernel %dx%d must be positive", s.Hker, s.Wker)
	case s.Strid < 1:
		return fmt.Errorf("shapes: stride %d < 1", s.Strid)
	case s.Pad < 0:
		return fmt.Errorf("shapes: padding %d < 0", s.Pad)
	case s.Hin+2*s.Pad < s.Hker || s.Win+2*s.Pad < s.Wker:
		return errors.New("shapes: kernel larger than padded input")
	case s.Groups < 0:
		return fmt.Errorf("shapes: groups %d < 0", s.Groups)
	}
	if g := s.G(); g > 1 {
		if s.Cin%g != 0 || s.Cout%g != 0 {
			return fmt.Errorf("shapes: channels (%d,%d) not divisible by groups %d", s.Cin, s.Cout, g)
		}
	}
	return nil
}

// Hout is the output height (Hin + 2·Pad − Hker)/μ + 1.
func (s ConvShape) Hout() int { return (s.Hin+2*s.Pad-s.Hker)/s.Strid + 1 }

// Wout is the output width (Win + 2·Pad − Wker)/μ + 1.
func (s ConvShape) Wout() int { return (s.Win+2*s.Pad-s.Wker)/s.Strid + 1 }

// OutputVolume is the number of output elements per image, Wout·Hout·Cout.
func (s ConvShape) OutputVolume() int { return s.Wout() * s.Hout() * s.Cout }

// InputVolume is the number of input elements per image, Win·Hin·Cin.
func (s ConvShape) InputVolume() int { return s.Win * s.Hin * s.Cin }

// KernelVolume is the total number of weights, Wker·Hker·(Cin/G)·Cout: each
// of the Cout kernels only spans its group's input channels.
func (s ConvShape) KernelVolume() int { return s.Wker * s.Hker * (s.Cin / s.G()) * s.Cout }

// KernelSize is the per-kernel tensor size Wker·Hker·(Cin/G) (the sliding
// window volume of the paper; for a grouped convolution each output channel
// reads only its group's slice of the input).
func (s ConvShape) KernelSize() int { return s.Wker * s.Hker * (s.Cin / s.G()) }

// FLOPs is the number of floating-point operations of the direct algorithm:
// one multiply and one add per product term, for all images. Grouped layers
// do 1/G of the dense work because each output channel reads Cin/G inputs.
func (s ConvShape) FLOPs() int64 {
	per := int64(2) * int64(s.Wker*s.Hker*(s.Cin/s.G())) * int64(s.OutputVolume())
	return per * int64(s.Batch)
}

// R is the maximum input-reuse factor Wker·Hker/μ² from Equation (13) of the
// paper: how many sliding windows can touch one input element.
func (s ConvShape) R() float64 {
	return float64(s.Wker*s.Hker) / float64(s.Strid*s.Strid)
}

// WinogradOK reports whether the Winograd algorithm of the paper applies:
// square kernels, unit stride, and no channel grouping (the paper's Winograd
// dataflow sums over all input channels).
func (s ConvShape) WinogradOK() bool {
	return s.Hker == s.Wker && s.Strid == 1 && s.G() == 1
}

// WithBatch returns a copy of the shape with the batch size replaced.
func (s ConvShape) WithBatch(n int) ConvShape {
	s.Batch = n
	return s
}

func (s ConvShape) String() string {
	group := ""
	if s.G() > 1 {
		group = fmt.Sprintf(" g=%d", s.G())
	}
	return fmt.Sprintf("conv[N=%d Cin=%d %dx%d k=%dx%d Cout=%d mu=%d pad=%d%s -> %dx%d]",
		s.Batch, s.Cin, s.Hin, s.Win, s.Hker, s.Wker, s.Cout, s.Strid, s.Pad, group, s.Hout(), s.Wout())
}
