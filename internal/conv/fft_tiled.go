package conv

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// This file adds the tunable form of the FFT convolution. The four-phase
// pipeline of fftconv.go stays, but phase 3 — the frequency-domain
// multiply-accumulate, the only phase whose traffic and launch geometry a
// schedule can change — becomes configurable: TileX×TileY tiles the padded
// frequency grid and TileZ tiles the output channels of one group, so one
// block accumulates TileZ spectra over a TileX·TileY bin window. Phases 1, 2
// and 4 (the transforms) are config-independent and their cost is computed
// once per shape. Grouped shapes multiply only within their group's Cin/G
// input spectra.

// FFTGrid returns the padded power-of-two frequency grid (lh, lw) of the FFT
// convolution for a shape; the tuner's phase-3 tile axes are divisors of it.
func FFTGrid(s shapes.ConvShape) (lh, lw int) {
	return fft.NextPow2(s.Hin + 2*s.Pad), fft.NextPow2(s.Win + 2*s.Pad)
}

// FFTSharedNeed returns the shared-memory floats the tiled phase-3 kernel
// needs: the complex accumulator window (2·F·z), one staged complex kernel
// window per resident z (2·F·z), and one double-buffered complex input
// window (2·2·F), where F = TileX·TileY frequency bins.
func FFTSharedNeed(c Config) int {
	f := c.TileX * c.TileY
	return 4*f*c.TileZ + 4*f
}

// ValidateFFT checks a config against a shape and architecture for the tiled
// FFT dataflow. The tile axes must divide the frequency grid exactly (the
// grid is a power of two, so divisors are cheap to enumerate) and TileZ must
// tile the output channels of one group.
func (c Config) ValidateFFT(s shapes.ConvShape, arch memsim.Arch) error {
	lh, lw := FFTGrid(s)
	cpg := s.Cout / s.G()
	switch {
	case c.TileX < 1 || c.TileY < 1 || c.TileZ < 1:
		return fmt.Errorf("conv: tile %dx%dx%d has empty dimension", c.TileX, c.TileY, c.TileZ)
	case c.TileX > lw || lw%c.TileX != 0 || c.TileY > lh || lh%c.TileY != 0:
		return fmt.Errorf("conv: fft tile %dx%d does not divide the %dx%d frequency grid",
			c.TileX, c.TileY, lw, lh)
	case c.TileZ > cpg || cpg%c.TileZ != 0:
		return fmt.Errorf("conv: fft tile z=%d does not tile the %d channels of a group", c.TileZ, cpg)
	case c.ThreadsX < 1 || c.ThreadsY < 1 || c.ThreadsZ < 1:
		return fmt.Errorf("conv: empty thread dimension")
	case c.Threads() > 1024:
		return fmt.Errorf("conv: %d threads per block exceeds 1024", c.Threads())
	case c.SharedPerBlock < 1:
		return fmt.Errorf("conv: Sb=%d < 1", c.SharedPerBlock)
	case c.SharedPerBlock > arch.MaxSharedPerBlock():
		return fmt.Errorf("conv: Sb=%d exceeds Ssm/2=%d (need two resident blocks per SM)",
			c.SharedPerBlock, arch.MaxSharedPerBlock())
	}
	if need := FFTSharedNeed(c); need > c.SharedPerBlock {
		return fmt.Errorf("conv: fft tiles need %d floats of shared memory, Sb=%d", need, c.SharedPerBlock)
	}
	return nil
}

// fftFixedPhases returns the config-independent transform phases (1, 2, 4)
// of the FFT convolution, group-aware: each of the Cout kernel planes spans
// only its group's Cin/G channels.
func fftFixedPhases(s shapes.ConvShape) []phase {
	lh, lw := FFTGrid(s)
	grid := lh * lw
	fft1D := int64(fft.FlopsPerTransform(lh))*int64(lw) + int64(fft.FlopsPerTransform(lw))*int64(lh)

	batch := int64(s.Batch)
	cin, cout := int64(s.Cin), int64(s.Cout)
	cinPerG := int64(s.Cin / s.G())
	gridF := int64(grid)
	stage := min(2*grid, 8192)

	var p1 memsim.Counts
	p1.GlobalLoads = batch * cin * int64(s.Hin*s.Win)
	p1.GlobalStores = batch * cin * gridF * 2
	p1.Flops = batch * cin * fft1D
	l1 := memsim.Launch{Blocks: max(1, int(batch*cin)), ThreadsPerBlock: 128,
		SharedPerBlock: stage, BandwidthEff: 0.8}

	var p2 memsim.Counts
	p2.GlobalLoads = cout * cinPerG * int64(s.Hker*s.Wker)
	p2.GlobalStores = cout * cinPerG * gridF * 2
	p2.Flops = cout * cinPerG * fft1D
	l2 := memsim.Launch{Blocks: max(1, int(cout*cinPerG)), ThreadsPerBlock: 128,
		SharedPerBlock: stage, BandwidthEff: 0.8}

	var p4 memsim.Counts
	p4.GlobalLoads = batch * cout * gridF * 2
	p4.GlobalStores = batch * int64(s.OutputVolume())
	p4.Flops = batch * cout * fft1D
	l4 := memsim.Launch{Blocks: max(1, int(batch*cout)), ThreadsPerBlock: 128,
		SharedPerBlock: stage, BandwidthEff: 0.8}

	return []phase{{p1, l1}, {p2, l2}, {p4, l4}}
}

// FFTFixedCost returns the simulated seconds and flops of the FFT
// convolution's config-independent phases (the forward and inverse
// transforms). The tuner's memoized measurer computes this once per space.
func FFTFixedCost(arch memsim.Arch, s shapes.ConvShape) (seconds float64, flops int64) {
	for _, p := range fftFixedPhases(s) {
		seconds += arch.Time(p.counts, p.launch)
		flops += p.counts.Flops
	}
	return seconds, flops
}

// FFTTiledCounts returns the exact phase-3 traffic of the tiled FFT dataflow.
// Each block owns a TileX·TileY bin window of TileZ output spectra of one
// (image, group): per group-local input channel it loads its complex input
// window once (amortized over the TileZ outputs of the block) and the TileZ
// matching kernel windows, and finally stores the accumulated spectra. At
// TileZ=1 this degenerates to the untiled baseline's 4·N·Cout·Cin·grid loads.
func FFTTiledCounts(s shapes.ConvShape, cfg Config) memsim.Counts {
	lh, lw := FFTGrid(s)
	gridF := int64(lh * lw)
	batch := int64(s.Batch)
	cout := int64(s.Cout)
	cinPerG := int64(s.Cin / s.G())
	z := int64(cfg.TileZ)

	var c memsim.Counts
	// 2·F floats per complex window; the input window is shared by the z
	// spectra of the block (first term, amortized), the kernel windows are
	// per output channel (second term).
	c.GlobalLoads = batch*cout*cinPerG*gridF*2/z + batch*cout*cinPerG*gridF*2
	c.GlobalStores = batch * cout * gridF * 2
	c.Flops = batch * cout * cinPerG * gridF * 8 // complex MAC = 8 real flops
	c.SharedStores = c.GlobalLoads + c.GlobalStores
	c.SharedLoads = c.Flops
	return c
}

// FFTTiledLaunch returns the phase-3 launch geometry of the tiled FFT
// dataflow for a (shape, config) pair.
func FFTTiledLaunch(s shapes.ConvShape, cfg Config) memsim.Launch {
	lh, lw := FFTGrid(s)
	f := cfg.TileX * cfg.TileY
	binBlocks := lh * lw / f
	zBlocks := s.Cout / cfg.TileZ // TileZ tiles Cout/G, so this covers all groups
	return memsim.Launch{
		Blocks:          s.Batch * zBlocks * binBlocks,
		ThreadsPerBlock: cfg.Threads(),
		SharedPerBlock:  cfg.SharedPerBlock,
		BandwidthEff:    0.9, // contiguous spectrum streaming, like the baseline
	}
}

// DryFFTTiled evaluates the tiled FFT convolution without touching data: the
// three fixed transform phases plus the configured phase-3 kernel. This is
// the evaluator behind every FFT-kind tuning measurement.
func DryFFTTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.ValidateFFT(s, arch); err != nil {
		return Result{}, err
	}
	phases := fftFixedPhases(s)
	phases = append(phases, phase{FFTTiledCounts(s, cfg), FFTTiledLaunch(s, cfg)})
	return finishPhasedVal(arch, nil, phases), nil
}

// DefaultFFTConfig derives an untuned tiled-FFT configuration: a whole
// frequency-grid row per block and as many resident output spectra as the
// shared memory allows.
func DefaultFFTConfig(arch memsim.Arch, s shapes.ConvShape) Config {
	_, lw := FFTGrid(s)
	sb := arch.MaxSharedPerBlock()
	cpg := s.Cout / s.G()
	cfg := Config{TileX: lw, TileY: 1, TileZ: 1, SharedPerBlock: sb, Layout: tensor.NCHW}
	for z := cpg; z >= 1; z-- {
		if cpg%z != 0 {
			continue
		}
		cfg.TileZ = z
		if FFTSharedNeed(cfg) <= sb {
			break
		}
	}
	for FFTSharedNeed(cfg) > sb && cfg.TileX > 1 {
		cfg.TileX /= 2
	}
	cfg.ThreadsX = min(cfg.TileX, 256)
	cfg.ThreadsY = 1
	cfg.ThreadsZ = min(cfg.TileZ, 1024/cfg.ThreadsX)
	if cfg.ThreadsZ < 1 {
		cfg.ThreadsZ = 1
	}
	return cfg
}
