package conv

import (
	"fmt"

	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Reference computes the convolution with a plain seven-loop CPU kernel in
// NCHW layout. It is the correctness oracle for every simulated
// implementation and performs no I/O accounting. Input is (N, Cin, Hin, Win),
// kernels are (Cout, Cin, Hker, Wker); the result is (N, Cout, Hout, Wout).
func Reference(s shapes.ConvShape, input, kernels *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	out := tensor.New(s.Batch, s.Cout, s.Hout(), s.Wout())
	for n := 0; n < s.Batch; n++ {
		for k := 0; k < s.Cout; k++ {
			for oh := 0; oh < s.Hout(); oh++ {
				for ow := 0; ow < s.Wout(); ow++ {
					var acc float64
					for c := 0; c < s.Cin; c++ {
						for p := 0; p < s.Hker; p++ {
							ih := oh*s.Strid + p - s.Pad
							if ih < 0 || ih >= s.Hin {
								continue
							}
							for q := 0; q < s.Wker; q++ {
								iw := ow*s.Strid + q - s.Pad
								if iw < 0 || iw >= s.Win {
									continue
								}
								acc += float64(input.At(n, c, ih, iw)) * float64(kernels.At(k, c, p, q))
							}
						}
					}
					out.Set(n, k, oh, ow, float32(acc))
				}
			}
		}
	}
	return out, nil
}

func checkOperands(s shapes.ConvShape, input, kernels *tensor.Tensor) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.G() > 1 {
		// The wet executors compute dense convolutions (every kernel spans
		// all Cin channels); grouped shapes are served by the dry evaluators
		// the tuner measures with. Refuse rather than silently compute the
		// dense result.
		return fmt.Errorf("conv: wet executors do not implement grouped convolution (%v)", s)
	}
	if input.N != s.Batch || input.C != s.Cin || input.H != s.Hin || input.W != s.Win {
		return fmt.Errorf("conv: input tensor (%d,%d,%d,%d) does not match %v",
			input.N, input.C, input.H, input.W, s)
	}
	if kernels.N != s.Cout || kernels.C != s.Cin || kernels.H != s.Hker || kernels.W != s.Wker {
		return fmt.Errorf("conv: kernel tensor (%d,%d,%d,%d) does not match %v",
			kernels.N, kernels.C, kernels.H, kernels.W, s)
	}
	return nil
}

// RandomOperands builds deterministic random input and kernel tensors for a
// shape, a convenience shared by tests, benchmarks and examples.
func RandomOperands(s shapes.ConvShape, seed int64) (input, kernels *tensor.Tensor) {
	input = tensor.New(s.Batch, s.Cin, s.Hin, s.Win)
	kernels = tensor.New(s.Cout, s.Cin, s.Hker, s.Wker)
	input.FillRandom(seed)
	kernels.FillRandom(seed + 1)
	return input, kernels
}
