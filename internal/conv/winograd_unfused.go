package conv

import (
	"fmt"

	"repro/internal/gemm"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// WinogradUnfused runs a library-style Winograd pipeline in four separate
// kernels that communicate through off-chip memory, the way non-fused
// implementations (and the cuDNN Winograd path the paper compares against)
// are structured:
//
//  1. filter transform:  U[pos][k][c]   = (G·g·Gᵀ)          (global write)
//  2. input transform:   V[pos][c][t]   = (Bᵀ·d·B)          (global write)
//  3. batched GEMM:      M[pos]         = U[pos] · V[pos]    (global write)
//  4. output transform:  Y              = Aᵀ·M·A             (global write)
//
// Every stage re-reads its operands from off-chip memory, which is exactly
// the traffic the fused dataflow avoids.
func WinogradUnfused(arch memsim.Arch, s shapes.ConvShape, e int, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	return winogradUnfused(arch, s, e, input, kernels)
}

// WinogradUnfusedDry returns WinogradUnfused's counts and simulated time
// without computing values.
func WinogradUnfusedDry(arch memsim.Arch, s shapes.ConvShape, e int) (*Result, error) {
	r, err := DryWinogradUnfused(arch, s, e)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// DryWinogradUnfused is the allocation-free form of WinogradUnfusedDry.
func DryWinogradUnfused(arch memsim.Arch, s shapes.ConvShape, e int) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	return winogradUnfusedVal(arch, s, e, nil, nil)
}

func winogradUnfused(arch memsim.Arch, s shapes.ConvShape, e int, input, kernels *tensor.Tensor) (*Result, error) {
	r, err := winogradUnfusedVal(arch, s, e, input, kernels)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

func winogradUnfusedVal(arch memsim.Arch, s shapes.ConvShape, e int, input, kernels *tensor.Tensor) (Result, error) {
	if !s.WinogradOK() {
		return Result{}, fmt.Errorf("conv: %v does not admit Winograd", s)
	}
	if e < 2 {
		return Result{}, fmt.Errorf("conv: winograd e=%d < 2", e)
	}
	r := s.Hker
	alpha := e + r - 1
	a2 := alpha * alpha
	hout, wout := s.Hout(), s.Wout()
	tilesH := (hout + e - 1) / e
	tilesW := (wout + e - 1) / e
	tiles := tilesH * tilesW // per image

	// Phase 1: filter transform.
	var p1 memsim.Counts
	p1.GlobalLoads = int64(r*r) * int64(s.Cin) * int64(s.Cout)
	p1.GlobalStores = int64(a2) * int64(s.Cin) * int64(s.Cout)
	p1.Flops = int64(2*(alpha*r*r+alpha*alpha*r)) * int64(s.Cin) * int64(s.Cout)
	l1 := memsim.Launch{Blocks: max(1, s.Cin*s.Cout/64), ThreadsPerBlock: 64, SharedPerBlock: a2 + r*r,
		BandwidthEff: 0.9}

	// Phase 2: input transform. Each tile is gathered independently with
	// its halo — the overlap re-reads are the unfused penalty.
	var p2 memsim.Counts
	p2.GlobalLoads = int64(a2) * int64(tiles) * int64(s.Cin) * int64(s.Batch)
	p2.GlobalStores = int64(a2) * int64(tiles) * int64(s.Cin) * int64(s.Batch)
	p2.Flops = int64(4*alpha*alpha*alpha) * int64(tiles) * int64(s.Cin) * int64(s.Batch)
	// Tiles are gathered with their halos and scattered position-major into
	// V: short strided segments on both sides, well below peak bandwidth.
	l2 := memsim.Launch{Blocks: max(1, tiles*s.Cin*s.Batch/64), ThreadsPerBlock: 64, SharedPerBlock: 2 * a2,
		BandwidthEff: 0.55}

	// Phase 3: α² batched GEMMs of (Cout×Cin)·(Cin×tiles).
	g := gemmPhase(s.Cout, s.Cin, tiles*s.Batch)
	g.counts.GlobalLoads *= int64(a2)
	g.counts.GlobalStores *= int64(a2)
	g.counts.SharedLoads *= int64(a2)
	g.counts.SharedStores *= int64(a2)
	g.counts.Flops *= int64(a2)
	g.launch.Blocks *= a2

	// Phase 4: output transform.
	var p4 memsim.Counts
	p4.GlobalLoads = int64(a2) * int64(tiles) * int64(s.Cout) * int64(s.Batch)
	p4.GlobalStores = int64(s.OutputVolume()) * int64(s.Batch)
	p4.Flops = int64(2*(e*alpha*alpha+e*e*alpha)) * int64(tiles) * int64(s.Cout) * int64(s.Batch)
	// M is gathered position-major and the e×e outputs scatter back into the
	// image: the same strided-segment penalty as the input transform.
	l4 := memsim.Launch{Blocks: max(1, tiles*s.Cout*s.Batch/64), ThreadsPerBlock: 64, SharedPerBlock: a2 + e*e,
		BandwidthEff: 0.55}

	var out *tensor.Tensor
	if input != nil {
		var err error
		out, err = winogradUnfusedCompute(s, e, input, kernels)
		if err != nil {
			return Result{}, err
		}
	}
	return finishPhasedVal(arch, out, []phase{{p1, l1}, {p2, l2}, g, {p4, l4}}), nil
}

// winogradUnfusedCompute is the wet path: the four stages operate on real
// global arrays.
func winogradUnfusedCompute(s shapes.ConvShape, e int, input, kernels *tensor.Tensor) (*tensor.Tensor, error) {
	tr, err := winograd.Cached(e, s.Hker)
	if err != nil {
		return nil, fmt.Errorf("conv: %w", err)
	}
	r := s.Hker
	alpha := tr.Alpha
	a2 := alpha * alpha
	hout, wout := s.Hout(), s.Wout()
	tilesH := (hout + e - 1) / e
	tilesW := (wout + e - 1) / e
	tiles := tilesH * tilesW * s.Batch

	// Stage 1: U[pos][k][c].
	u := make([]float32, a2*s.Cout*s.Cin)
	gbuf := make([]float32, r*r)
	ubuf := make([]float32, a2)
	for k := 0; k < s.Cout; k++ {
		for c := 0; c < s.Cin; c++ {
			for p := 0; p < r; p++ {
				for q := 0; q < r; q++ {
					gbuf[p*r+q] = kernels.At(k, c, p, q)
				}
			}
			tr.FilterTransform(ubuf, gbuf)
			for pos := 0; pos < a2; pos++ {
				u[(pos*s.Cout+k)*s.Cin+c] = ubuf[pos]
			}
		}
	}

	// Stage 2: V[pos][c][t].
	v := make([]float32, a2*s.Cin*tiles)
	dbuf := make([]float32, a2)
	vbuf := make([]float32, a2)
	for n := 0; n < s.Batch; n++ {
		for ty := 0; ty < tilesH; ty++ {
			for tx := 0; tx < tilesW; tx++ {
				t := (n*tilesH+ty)*tilesW + tx
				for c := 0; c < s.Cin; c++ {
					for j := 0; j < alpha; j++ {
						for i := 0; i < alpha; i++ {
							dbuf[j*alpha+i] = input.AtPadded(n, c, ty*e+j-s.Pad, tx*e+i-s.Pad)
						}
					}
					tr.InputTransform(vbuf, dbuf)
					for pos := 0; pos < a2; pos++ {
						v[(pos*s.Cin+c)*tiles+t] = vbuf[pos]
					}
				}
			}
		}
	}

	// Stage 3: M[pos] = U[pos]·V[pos], each Cout×Cin by Cin×tiles.
	m := make([]float32, a2*s.Cout*tiles)
	for pos := 0; pos < a2; pos++ {
		gemm.Parallel(m[pos*s.Cout*tiles:(pos+1)*s.Cout*tiles],
			u[pos*s.Cout*s.Cin:(pos+1)*s.Cout*s.Cin],
			v[pos*s.Cin*tiles:(pos+1)*s.Cin*tiles],
			s.Cout, s.Cin, tiles, gemmTile, 0)
	}

	// Stage 4: Y = Aᵀ·M·A, scattered back with edge clipping.
	out := tensor.New(s.Batch, s.Cout, hout, wout)
	mbuf := make([]float32, a2)
	ybuf := make([]float32, e*e)
	for n := 0; n < s.Batch; n++ {
		for ty := 0; ty < tilesH; ty++ {
			for tx := 0; tx < tilesW; tx++ {
				t := (n*tilesH+ty)*tilesW + tx
				for k := 0; k < s.Cout; k++ {
					for pos := 0; pos < a2; pos++ {
						mbuf[pos] = m[(pos*s.Cout+k)*tiles+t]
					}
					tr.OutputTransform(ybuf, mbuf)
					for j := 0; j < e && ty*e+j < hout; j++ {
						for i := 0; i < e && tx*e+i < wout; i++ {
							out.Set(n, k, ty*e+j, tx*e+i, ybuf[j*e+i])
						}
					}
				}
			}
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
