package conv

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

var testArch = memsim.GTX1080Ti

func smallShape() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 3, Hin: 12, Win: 12, Cout: 4, Hker: 3, Wker: 3, Strid: 1}
}

func testShapes() []shapes.ConvShape {
	return []shapes.ConvShape{
		smallShape(),
		{Batch: 2, Cin: 3, Hin: 12, Win: 12, Cout: 4, Hker: 3, Wker: 3, Strid: 1, Pad: 1},
		{Batch: 1, Cin: 2, Hin: 13, Win: 11, Cout: 3, Hker: 3, Wker: 3, Strid: 2},
		{Batch: 1, Cin: 2, Hin: 15, Win: 15, Cout: 5, Hker: 5, Wker: 5, Strid: 1, Pad: 2},
		{Batch: 1, Cin: 4, Hin: 9, Win: 9, Cout: 2, Hker: 1, Wker: 1, Strid: 1},
	}
}

func directConfig(s shapes.ConvShape) Config {
	cfg := Config{
		TileX: min(4, s.Wout()), TileY: min(4, s.Hout()), TileZ: min(2, s.Cout),
		ThreadsX: 2, ThreadsY: 2, ThreadsZ: 1,
		SharedPerBlock: 4096, Layout: tensor.NCHW,
	}
	return cfg
}

const tol = 2e-3

func TestNaiveMatchesReference(t *testing.T) {
	for _, s := range testShapes() {
		in, ker := RandomOperands(s, 1)
		want, err := Reference(s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NaiveDirect(testArch, s, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v: naive output differs by %g", s, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func TestIm2colMatchesReference(t *testing.T) {
	for _, s := range testShapes() {
		in, ker := RandomOperands(s, 2)
		want, _ := Reference(s, in, ker)
		got, err := Im2colGEMM(testArch, s, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v: im2col output differs by %g", s, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func TestDirectTiledMatchesReference(t *testing.T) {
	for _, s := range testShapes() {
		in, ker := RandomOperands(s, 3)
		want, _ := Reference(s, in, ker)
		got, err := DirectTiled(testArch, s, directConfig(s), in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v: tiled output differs by %g", s, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func TestDirectTiledOddTiles(t *testing.T) {
	// Tile sizes that do not divide the output exercise the clipping paths.
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 11, Win: 13, Cout: 5, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := RandomOperands(s, 4)
	want, _ := Reference(s, in, ker)
	for _, cfg := range []Config{
		{TileX: 5, TileY: 4, TileZ: 3, ThreadsX: 2, ThreadsY: 2, ThreadsZ: 1, SharedPerBlock: 4096},
		{TileX: 13, TileY: 11, TileZ: 5, ThreadsX: 4, ThreadsY: 4, ThreadsZ: 1, SharedPerBlock: 8192},
		{TileX: 1, TileY: 1, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 64},
	} {
		got, err := DirectTiled(testArch, s, cfg, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v: output differs by %g", cfg, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func winoShape() shapes.ConvShape {
	return shapes.ConvShape{Batch: 1, Cin: 3, Hin: 10, Win: 10, Cout: 4, Hker: 3, Wker: 3, Strid: 1}
}

func winoConfig(s shapes.ConvShape, e int) Config {
	return Config{
		TileX: 4, TileY: 4, TileZ: 2,
		ThreadsX: 2, ThreadsY: 2, ThreadsZ: 2,
		SharedPerBlock: 8192, Layout: tensor.NCHW, WinogradE: e,
	}
}

func TestWinogradUnfusedMatchesReference(t *testing.T) {
	cases := []struct {
		s shapes.ConvShape
		e int
	}{
		{winoShape(), 2},
		{winoShape(), 4},
		{shapes.ConvShape{Batch: 2, Cin: 2, Hin: 9, Win: 9, Cout: 3, Hker: 3, Wker: 3, Strid: 1, Pad: 1}, 2},
		{shapes.ConvShape{Batch: 1, Cin: 2, Hin: 7, Win: 9, Cout: 2, Hker: 3, Wker: 3, Strid: 1}, 2}, // odd outputs
	}
	for _, c := range cases {
		in, ker := RandomOperands(c.s, 5)
		want, _ := Reference(c.s, in, ker)
		got, err := WinogradUnfused(testArch, c.s, c.e, in, ker)
		if err != nil {
			t.Fatalf("%v e=%d: %v", c.s, c.e, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v e=%d: unfused differs by %g", c.s, c.e, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func TestWinogradFusedMatchesReference(t *testing.T) {
	cases := []struct {
		s shapes.ConvShape
		e int
	}{
		{winoShape(), 2},
		{shapes.ConvShape{Batch: 2, Cin: 2, Hin: 9, Win: 9, Cout: 3, Hker: 3, Wker: 3, Strid: 1, Pad: 1}, 2},
		{shapes.ConvShape{Batch: 1, Cin: 2, Hin: 7, Win: 9, Cout: 2, Hker: 3, Wker: 3, Strid: 1}, 2},
		{shapes.ConvShape{Batch: 1, Cin: 2, Hin: 14, Win: 14, Cout: 3, Hker: 3, Wker: 3, Strid: 1, Pad: 1}, 4},
	}
	for _, c := range cases {
		in, ker := RandomOperands(c.s, 6)
		want, _ := Reference(c.s, in, ker)
		cfg := winoConfig(c.s, c.e)
		if c.e == 4 {
			cfg.TileX, cfg.TileY = 8, 8
		}
		got, err := WinogradFused(testArch, c.s, cfg, in, ker)
		if err != nil {
			t.Fatalf("%v e=%d: %v", c.s, c.e, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v e=%d: fused differs by %g", c.s, c.e, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

// Dry runs must count exactly what wet runs count — this is what licenses
// paper-scale dry measurements.
func TestDryMatchesWet(t *testing.T) {
	for _, s := range testShapes() {
		in, ker := RandomOperands(s, 7)
		wet, err := NaiveDirect(testArch, s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		dry, err := NaiveDirectDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		if wet.Counts != dry.Counts {
			t.Errorf("%v naive: wet %v != dry %v", s, wet.Counts, dry.Counts)
		}
		wet, err = Im2colGEMM(testArch, s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		dry, err = Im2colGEMMDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		if wet.Counts != dry.Counts {
			t.Errorf("%v im2col: wet %v != dry %v", s, wet.Counts, dry.Counts)
		}
		cfg := directConfig(s)
		wet, err = DirectTiled(testArch, s, cfg, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		dry, err = DirectTiledDry(testArch, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if wet.Counts != dry.Counts {
			t.Errorf("%v tiled: wet %v != dry %v", s, wet.Counts, dry.Counts)
		}
	}
	ws := winoShape()
	in, ker := RandomOperands(ws, 8)
	wet, err := WinogradFused(testArch, ws, winoConfig(ws, 2), in, ker)
	if err != nil {
		t.Fatal(err)
	}
	dry, err := WinogradFusedDry(testArch, ws, winoConfig(ws, 2))
	if err != nil {
		t.Fatal(err)
	}
	if wet.Counts != dry.Counts {
		t.Errorf("wino fused: wet %v != dry %v", wet.Counts, dry.Counts)
	}
	wet, err = WinogradUnfused(testArch, ws, 2, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	dry, err = WinogradUnfusedDry(testArch, ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wet.Counts != dry.Counts {
		t.Errorf("wino unfused: wet %v != dry %v", wet.Counts, dry.Counts)
	}
}

// The paper's headline ordering at realistic scale: the tiled dataflow moves
// far less off-chip data than im2col, which moves less than naive.
func TestIOOrdering(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 56, Win: 56, Cout: 64, Hker: 3, Wker: 3, Strid: 1}
	cfg := DefaultDirectConfig(testArch, s)
	tiled, err := DirectTiledDry(testArch, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Im2colGEMMDry(testArch, s)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveDirectDry(testArch, s)
	if err != nil {
		t.Fatal(err)
	}
	if !(tiled.Counts.GlobalIO() < col.Counts.GlobalIO()) {
		t.Errorf("tiled I/O %d not below im2col %d", tiled.Counts.GlobalIO(), col.Counts.GlobalIO())
	}
	if !(col.Counts.GlobalIO() < naive.Counts.GlobalIO()) {
		t.Errorf("im2col I/O %d not below naive %d", col.Counts.GlobalIO(), naive.Counts.GlobalIO())
	}
	if !(tiled.Seconds < col.Seconds && col.Seconds < naive.Seconds) {
		t.Errorf("time ordering violated: %v / %v / %v", tiled.Seconds, col.Seconds, naive.Seconds)
	}
}

// Measured tiled-dataflow I/O must match the paper's Equation 21 model
// closely (exact halo version) when tiles divide the output.
func TestTiledIOMatchesEq21(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 30, Win: 30, Cout: 32, Hker: 3, Wker: 3, Strid: 1}
	cfg := Config{TileX: 7, TileY: 7, TileZ: 8, ThreadsX: 7, ThreadsY: 7, ThreadsZ: 1,
		SharedPerBlock: 8192, Layout: tensor.NCHW}
	if s.Wout()%cfg.TileX != 0 || s.Hout()%cfg.TileY != 0 || s.Cout%cfg.TileZ != 0 {
		t.Fatal("test requires dividing tiles")
	}
	res, err := DirectTiledDry(testArch, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := bounds.DirectDataflowIOExact(s, cfg.Tile())
	got := float64(res.Counts.GlobalIO())
	if rel := math.Abs(got-model) / model; rel > 0.01 {
		t.Errorf("measured I/O %v vs Eq.21(exact halo) %v: rel err %v", got, model, rel)
	}
}

// Fused Winograd must beat the unfused library pipeline on off-chip traffic.
func TestWinogradFusedBeatsUnfused(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 56, Win: 56, Cout: 64, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := DefaultWinogradConfig(testArch, s, 2)
	fused, err := WinogradFusedDry(testArch, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := WinogradUnfusedDry(testArch, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(fused.Counts.GlobalIO() < unfused.Counts.GlobalIO()) {
		t.Errorf("fused I/O %d not below unfused %d", fused.Counts.GlobalIO(), unfused.Counts.GlobalIO())
	}
}

// Measured tiled I/O must respect the theoretical lower bound.
func TestMeasuredIOAboveLowerBound(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 56, Win: 56, Cout: 64, Hker: 3, Wker: 3, Strid: 1}
	cfg := DefaultDirectConfig(testArch, s)
	res, err := DirectTiledDry(testArch, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := bounds.DirectLowerBound(s, cfg.SharedPerBlock)
	if float64(res.Counts.GlobalIO()) < lb {
		t.Errorf("measured I/O %d below lower bound %v", res.Counts.GlobalIO(), lb)
	}
}

func TestConfigValidation(t *testing.T) {
	s := smallShape()
	good := directConfig(s)
	if err := good.ValidateDirect(s, testArch); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.TileX = 0
	if err := bad.ValidateDirect(s, testArch); err == nil {
		t.Error("zero tile accepted")
	}
	bad = good
	bad.TileX = s.Wout() + 1
	if err := bad.ValidateDirect(s, testArch); err == nil {
		t.Error("oversized tile accepted")
	}
	bad = good
	bad.SharedPerBlock = 4
	if err := bad.ValidateDirect(s, testArch); err == nil {
		t.Error("tiny shared memory accepted")
	}
	bad = good
	bad.SharedPerBlock = testArch.SharedPerSM
	if err := bad.ValidateDirect(s, testArch); err == nil {
		t.Error("Sb above Ssm/2 accepted")
	}
	bad = good
	bad.ThreadsX, bad.ThreadsY, bad.ThreadsZ = 64, 64, 64
	if err := bad.ValidateDirect(s, testArch); err == nil {
		t.Error("over 1024 threads accepted")
	}
	ws := winoShape()
	wcfg := winoConfig(ws, 2)
	if err := wcfg.ValidateWinograd(ws, testArch); err != nil {
		t.Fatalf("good winograd config rejected: %v", err)
	}
	wbad := wcfg
	wbad.TileX = 5 // not divisible by e
	if err := wbad.ValidateWinograd(ws, testArch); err == nil {
		t.Error("non-divisible winograd tile accepted")
	}
	sw := ws
	sw.Strid = 2
	if err := wcfg.ValidateWinograd(sw, testArch); err == nil {
		t.Error("stride-2 winograd accepted")
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	for _, s := range []shapes.ConvShape{
		smallShape(),
		{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1},
		{Batch: 1, Cin: 3, Hin: 227, Win: 227, Cout: 96, Hker: 11, Wker: 11, Strid: 4},
	} {
		cfg := DefaultDirectConfig(testArch, s)
		if err := cfg.ValidateDirect(s, testArch); err != nil {
			t.Errorf("%v: default direct config invalid: %v", s, err)
		}
	}
	ws := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1}
	cfg := DefaultWinogradConfig(testArch, ws, 2)
	if err := cfg.ValidateWinograd(ws, testArch); err != nil {
		t.Errorf("default winograd config invalid: %v", err)
	}
}

func TestOperandChecks(t *testing.T) {
	s := smallShape()
	in, ker := RandomOperands(s, 9)
	wrong := tensor.New(1, 1, 1, 1)
	if _, err := Reference(s, wrong, ker); err == nil {
		t.Error("wrong input accepted")
	}
	if _, err := Reference(s, in, wrong); err == nil {
		t.Error("wrong kernel accepted")
	}
}

// Speedup over the library baseline must grow with image size (the paper's
// first Figure-9 observation).
func TestSpeedupGrowsWithImageSize(t *testing.T) {
	prev := 0.0
	for _, hw := range []int{14, 56, 112} {
		s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: hw, Win: hw, Cout: 128, Hker: 3, Wker: 3, Strid: 1}
		cfg := DefaultDirectConfig(testArch, s)
		tiled, err := DirectTiledDry(testArch, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		col, err := Im2colGEMMDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		speedup := col.Seconds / tiled.Seconds
		if speedup < prev*0.9 {
			t.Errorf("H=W=%d: speedup %v fell well below previous %v", hw, speedup, prev)
		}
		prev = speedup
	}
}
