package conv

import (
	"sync"

	"repro/internal/memsim"
	"repro/internal/tensor"
)

// This file is the wet kernels' scratch arena. Every wet dataflow execution
// needs per-worker intermediate buffers — a simulated shared-memory Block,
// small Winograd tile temporaries, the im2col patch and product matrices.
// Allocating them per call makes the allocator (and the GC) the bottleneck
// of back-to-back executions, so workers draw a kernelScratch from a
// sync.Pool instead: Get at worker start, Put when the worker drains. A
// recycled Block keeps its backing buffer and is re-pointed at the current
// run's Counter via Reinit, so pooling is invisible in the I/O accounting —
// tests pin pooled results bit-identical to fresh-allocation results.

// kernelScratch bundles the reusable per-worker buffers of the wet
// dataflow executors.
type kernelScratch struct {
	blk *memsim.Block
	// bufs holds named float32 scratch slices (Winograd d-tile and y-tile,
	// im2col patch/product, ...), grown on demand and reused across runs.
	bufs [scratchBufs][]float32
}

// Indices into kernelScratch.bufs. Each wet kernel uses its own slots, so a
// scratch recycled from one algorithm serves any other.
const (
	bufDTile = iota // Winograd α×α input sub-tile gather
	bufYTile        // Winograd e×e output sub-tile
	bufPatch        // im2col patch matrix
	bufProd         // im2col GEMM product
	scratchBufs
)

var scratchPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// getScratch returns a pooled scratch whose Block charges ctr and has the
// given shared-memory capacity.
func getScratch(ctr *memsim.Counter, capacity int) *kernelScratch {
	ks := scratchPool.Get().(*kernelScratch)
	if ks.blk == nil {
		ks.blk = memsim.NewBlock(ctr, capacity)
	} else {
		ks.blk.Reinit(ctr, capacity)
	}
	return ks
}

func putScratch(ks *kernelScratch) { scratchPool.Put(ks) }

// buf returns the named scratch slice with length n, growing the backing
// array only when n exceeds its capacity. Contents are unspecified.
func (ks *kernelScratch) buf(which, n int) []float32 {
	if cap(ks.bufs[which]) < n {
		ks.bufs[which] = make([]float32, n)
	}
	return ks.bufs[which][:n]
}

// stageInputTile fills inTile with the xp×yp window of channel c of image n
// whose origin in (possibly padded) input coordinates is (oy, ox);
// out-of-range elements are zero. For NCHW inputs rows are staged with
// copy() instead of per-element AtPadded calls — the staging loop is on the
// wet kernels' critical path.
func stageInputTile(inTile []float32, input *tensor.Tensor, n, c, oy, ox, xp, yp int) {
	if input.Lay != tensor.NCHW {
		for j := 0; j < yp; j++ {
			for i := 0; i < xp; i++ {
				inTile[j*xp+i] = input.AtPadded(n, c, oy+j, ox+i)
			}
		}
		return
	}
	base := (n*input.C + c) * input.H * input.W
	// Valid column range: i in [i0, i1) has 0 <= ox+i < input.W, clamped to
	// [0, xp] — the window may miss the input columns entirely (deep
	// padding with a narrow tile), in which case every row is all zeros.
	i0, i1 := 0, xp
	if ox < 0 {
		i0 = -ox
	}
	if over := ox + xp - input.W; over > 0 {
		i1 = xp - over
	}
	if i0 > xp {
		i0 = xp
	}
	if i1 < i0 {
		i1 = i0
	}
	for j := 0; j < yp; j++ {
		row := inTile[j*xp : (j+1)*xp]
		ih := oy + j
		if ih < 0 || ih >= input.H || i0 == i1 {
			for i := range row {
				row[i] = 0
			}
			continue
		}
		for i := 0; i < i0; i++ {
			row[i] = 0
		}
		src := input.Data[base+ih*input.W : base+(ih+1)*input.W]
		copy(row[i0:i1], src[ox+i0:ox+i1])
		for i := i1; i < xp; i++ {
			row[i] = 0
		}
	}
}

// stageKernelSlice fills wTile with the Hker×Wker weights of kernels
// z0..z0+zz for channel c (row-major per kernel), using contiguous copies
// for NCHW kernel tensors.
func stageKernelSlice(wTile []float32, kernels *tensor.Tensor, z0, zz, c int) {
	kk := kernels.H * kernels.W
	if kernels.Lay == tensor.NCHW {
		for k := 0; k < zz; k++ {
			src := kernels.Data[((z0+k)*kernels.C+c)*kk : ((z0+k)*kernels.C+c+1)*kk]
			copy(wTile[k*kk:(k+1)*kk], src)
		}
		return
	}
	for k := 0; k < zz; k++ {
		for p := 0; p < kernels.H; p++ {
			for q := 0; q < kernels.W; q++ {
				wTile[k*kk+p*kernels.W+q] = kernels.At(z0+k, c, p, q)
			}
		}
	}
}
