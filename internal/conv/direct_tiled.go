package conv

import (
	"runtime"
	"sync"

	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// DirectTiled runs the paper's near I/O-optimal direct-convolution dataflow
// (Section 5.2). Each simulated thread block owns an x×y×z output sub-block
// whose partial sums stay resident in shared memory for the whole
// computation; the required inputs arrive as an x'×y' tile at one channel at
// a time (the α=1 channel-sliding schedule), together with the matching z
// kernel slices. Inputs and weights are therefore loaded from off-chip
// memory exactly once per block and outputs are written exactly once — the
// structure whose I/O volume Equation 21 models.
func DirectTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	if err := cfg.ValidateDirect(s, arch); err != nil {
		return nil, err
	}
	return directTiled(arch, s, cfg, input, kernels)
}

// DirectTiledDry returns DirectTiled's exact counts and simulated time
// without touching data (Output is nil). Tests pin its counts to the wet
// path's.
func DirectTiledDry(arch memsim.Arch, s shapes.ConvShape, cfg Config) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.ValidateDirect(s, arch); err != nil {
		return nil, err
	}
	return directTiled(arch, s, cfg, nil, nil)
}

func directTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config, input, kernels *tensor.Tensor) (*Result, error) {
	hout, wout := s.Hout(), s.Wout()
	bx := (wout + cfg.TileX - 1) / cfg.TileX
	by := (hout + cfg.TileY - 1) / cfg.TileY
	bz := (s.Cout + cfg.TileZ - 1) / cfg.TileZ
	blocks := bx * by * bz * s.Batch

	l := memsim.Launch{
		Blocks:          blocks,
		ThreadsPerBlock: cfg.Threads(),
		SharedPerBlock:  cfg.SharedPerBlock,
		BandwidthEff:    layoutEff(cfg.Layout),
	}
	wet := input != nil
	if !wet {
		// Dry run: the per-block counts are separable across the three
		// block axes, so exact totals come from per-axis sums (O(dims)
		// instead of O(blocks·Cin)). The wet path below produces identical
		// counts; tests pin the two together.
		counts := dryDirectCounts(s, cfg, bx, by, bz)
		return &Result{Counts: counts, Launch: l,
			Seconds: arch.Time(counts, l), GFLOPS: arch.GFLOPS(counts, l)}, nil
	}

	out := tensor.New(s.Batch, s.Cout, hout, wout)
	ctr := &memsim.Counter{}

	// Each simulated block is independent; fan them across CPU workers.
	type blockID struct{ n, ix, iy, iz int }
	work := make(chan blockID, 64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blk := memsim.NewBlock(ctr, cfg.SharedPerBlock)
			for b := range work {
				runDirectBlock(blk, s, cfg, input, kernels, out, b.n, b.ix, b.iy, b.iz, true)
			}
		}()
	}
	for n := 0; n < s.Batch; n++ {
		for iz := 0; iz < bz; iz++ {
			for iy := 0; iy < by; iy++ {
				for ix := 0; ix < bx; ix++ {
					work <- blockID{n, ix, iy, iz}
				}
			}
		}
	}
	close(work)
	wg.Wait()
	return finishResult(arch, out, ctr, l), nil
}

// dryDirectCounts computes the exact traffic of the tiled dataflow from
// per-axis aggregates. For each block the wet path counts, per channel:
// validW·validH input-tile loads, Hker·Wker·zz weight loads, 2·macs flops —
// all products of per-axis quantities, so sums over the block grid factor.
func dryDirectCounts(s shapes.ConvShape, cfg Config, bx, by, bz int) memsim.Counts {
	var sumValidW, sumValidH, sumXX, sumYY, sumZZ int64
	for ix := 0; ix < bx; ix++ {
		x0 := ix * cfg.TileX
		xx := min(cfg.TileX, s.Wout()-x0)
		xp := s.Strid*xx + s.Wker - s.Strid
		sumXX += int64(xx)
		sumValidW += int64(clippedLen(x0*s.Strid-s.Pad, xp, s.Win))
	}
	for iy := 0; iy < by; iy++ {
		y0 := iy * cfg.TileY
		yy := min(cfg.TileY, s.Hout()-y0)
		yp := s.Strid*yy + s.Hker - s.Strid
		sumYY += int64(yy)
		sumValidH += int64(clippedLen(y0*s.Strid-s.Pad, yp, s.Hin))
	}
	for iz := 0; iz < bz; iz++ {
		sumZZ += int64(min(cfg.TileZ, s.Cout-iz*cfg.TileZ))
	}
	// Per-axis halo'd (unclipped staging) sums for shared-store traffic.
	var sumXP, sumYP int64
	for ix := 0; ix < bx; ix++ {
		xx := min(cfg.TileX, s.Wout()-ix*cfg.TileX)
		sumXP += int64(s.Strid*xx + s.Wker - s.Strid)
	}
	for iy := 0; iy < by; iy++ {
		yy := min(cfg.TileY, s.Hout()-iy*cfg.TileY)
		sumYP += int64(s.Strid*yy + s.Hker - s.Strid)
	}
	cin := int64(s.Cin)
	k2 := int64(s.Hker * s.Wker)
	batch := int64(s.Batch)
	bxy := int64(bx) * int64(by)
	vol := sumXX * sumYY * sumZZ // Σ blocks xx·yy·zz

	var c memsim.Counts
	c.GlobalLoads = batch * cin * (sumValidW*sumValidH*int64(bz) + k2*sumZZ*bxy)
	c.GlobalStores = batch * vol
	c.Flops = batch * cin * 2 * k2 * vol
	c.SharedLoads = batch * (cin*2*k2*vol + vol)
	c.SharedStores = batch * (cin*(sumXP*sumYP*int64(bz)+k2*sumZZ*bxy) + cin*vol)
	return c
}

// runDirectBlock updates one x×y×z output sub-block. In dry mode it only
// performs the counting that the wet mode's staging helpers would.
func runDirectBlock(blk *memsim.Block, s shapes.ConvShape, cfg Config,
	input, kernels, out *tensor.Tensor, n, ix, iy, iz int, wet bool) {

	hout, wout := s.Hout(), s.Wout()
	x0, y0, z0 := ix*cfg.TileX, iy*cfg.TileY, iz*cfg.TileZ
	xx := min(cfg.TileX, wout-x0)
	yy := min(cfg.TileY, hout-y0)
	zz := min(cfg.TileZ, s.Cout-z0)

	// Halo'd input tile footprint for the clipped output tile.
	xp := s.Strid*xx + s.Wker - s.Strid
	yp := s.Strid*yy + s.Hker - s.Strid
	// Origin of the input tile in (possibly padded) input coordinates.
	ox := x0*s.Strid - s.Pad
	oy := y0*s.Strid - s.Pad
	// Valid (in-bounds) portion actually loaded from off-chip memory.
	validW := clippedLen(ox, xp, s.Win)
	validH := clippedLen(oy, yp, s.Hin)

	blk.Reset()
	var outTile, inTile, wTile []float32
	if wet {
		outTile = blk.Alloc(xx * yy * zz)
		inTile = blk.Alloc(xp * yp)
		wTile = blk.Alloc(s.Hker * s.Wker * zz)
		for i := range outTile {
			outTile[i] = 0
		}
	} else {
		blk.Alloc(xx*yy*zz + xp*yp + s.Hker*s.Wker*zz) // capacity check only
	}

	ctr := blkCounter(blk)
	for c := 0; c < s.Cin; c++ {
		// Stage the channel-c input tile (paper's α=1 slide) and weights.
		ctr.AddGlobalLoads(validW * validH)
		ctr.AddSharedStores(xp * yp)
		ctr.AddGlobalLoads(s.Hker * s.Wker * zz)
		ctr.AddSharedStores(s.Hker * s.Wker * zz)
		macs := xx * yy * zz * s.Hker * s.Wker
		ctr.AddFlops(2 * macs)
		ctr.AddSharedLoads(2 * macs)
		ctr.AddSharedStores(xx * yy * zz)
		if !wet {
			continue
		}
		for j := 0; j < yp; j++ {
			for i := 0; i < xp; i++ {
				inTile[j*xp+i] = input.AtPadded(n, c, oy+j, ox+i)
			}
		}
		for k := 0; k < zz; k++ {
			for p := 0; p < s.Hker; p++ {
				for q := 0; q < s.Wker; q++ {
					wTile[(k*s.Hker+p)*s.Wker+q] = kernels.At(z0+k, c, p, q)
				}
			}
		}
		for k := 0; k < zz; k++ {
			for j := 0; j < yy; j++ {
				for i := 0; i < xx; i++ {
					var acc float32
					for p := 0; p < s.Hker; p++ {
						base := (j*s.Strid + p) * xp
						wbase := (k*s.Hker + p) * s.Wker
						for q := 0; q < s.Wker; q++ {
							acc += inTile[base+i*s.Strid+q] * wTile[wbase+q]
						}
					}
					outTile[(k*yy+j)*xx+i] += acc
				}
			}
		}
	}

	// Write the finished sub-block back exactly once.
	ctr.AddGlobalStores(xx * yy * zz)
	ctr.AddSharedLoads(xx * yy * zz)
	if wet {
		for k := 0; k < zz; k++ {
			for j := 0; j < yy; j++ {
				for i := 0; i < xx; i++ {
					out.Set(n, z0+k, y0+j, x0+i, outTile[(k*yy+j)*xx+i])
				}
			}
		}
	}
}

// DefaultDirectConfig derives the untuned Section 5.2 configuration: the
// output tile satisfies the optimality condition x·y = R·z with volume
// x·y·z ≈ S/Np — the per-processor share of on-chip memory, where Np is the
// number of blocks needed to keep every SM busy (at least two blocks per
// SM). It is the starting point of the tuner and of the quickstart example.
func DefaultDirectConfig(arch memsim.Arch, s shapes.ConvShape) Config {
	sb := arch.MaxSharedPerBlock()
	cfg := Config{SharedPerBlock: sb, Layout: tensor.NCHW}
	totalOut := s.OutputVolume() * s.Batch
	// Volume target: whichever is smaller of "fill the shared memory" and
	// "leave enough blocks to saturate the device".
	volTarget := sb * 3 / 4
	if byPar := totalOut / (2 * arch.NumSMs); byPar >= 1 && byPar < volTarget {
		volTarget = byPar
	}
	best := Config{}
	for z := min(s.Cout, 512); z >= 1; z-- {
		xy := int(s.R() * float64(z))
		side := 1
		for side*side < xy {
			side++
		}
		c := cfg
		c.TileX = min(side, s.Wout())
		c.TileY = min(side, s.Hout())
		c.TileZ = z
		if c.TileX*c.TileY*c.TileZ <= volTarget && DirectSharedNeed(s, c) <= sb {
			best = c
			break
		}
	}
	if best.TileX == 0 {
		best = cfg
		best.TileX, best.TileY, best.TileZ = 1, 1, 1
	}
	best.ThreadsX = min(best.TileX, 16)
	best.ThreadsY = min(best.TileY, 16)
	best.ThreadsZ = min(best.TileZ, 1024/(best.ThreadsX*best.ThreadsY))
	if best.ThreadsZ < 1 {
		best.ThreadsZ = 1
	}
	return best
}

// blkCounter exposes the counter a Block charges to; small helper so the
// dry/wet paths share bulk counting.
func blkCounter(b *memsim.Block) *memsim.Counter { return b.Counter() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
