package conv

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// DirectTiled runs the paper's near I/O-optimal direct-convolution dataflow
// (Section 5.2). Each simulated thread block owns an x×y×z output sub-block
// whose partial sums stay resident in shared memory for the whole
// computation; the required inputs arrive as an x'×y' tile at one channel at
// a time (the α=1 channel-sliding schedule), together with the matching z
// kernel slices. Inputs and weights are therefore loaded from off-chip
// memory exactly once per block and outputs are written exactly once — the
// structure whose I/O volume Equation 21 models.
func DirectTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	if err := cfg.ValidateDirect(s, arch); err != nil {
		return nil, err
	}
	return directTiled(arch, s, cfg, input, kernels)
}

// DirectTiledDry returns DirectTiled's exact counts and simulated time
// without touching data (Output is nil). Tests pin its counts to the wet
// path's.
func DirectTiledDry(arch memsim.Arch, s shapes.ConvShape, cfg Config) (*Result, error) {
	r, err := DryDirectTiled(arch, s, cfg)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// DryDirectTiled is the allocation-free form of DirectTiledDry: the Result
// comes back by value, counts from the closed-form per-axis aggregates.
// This is the evaluator behind every direct-dataflow tuning measurement.
func DryDirectTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.ValidateDirect(s, arch); err != nil {
		return Result{}, err
	}
	counts := DirectTiledCounts(s, cfg)
	l := DirectTiledLaunch(s, cfg)
	return dryResult(arch, counts, l), nil
}

// dryResult finishes a single-phase dry evaluation, running the time model
// once (GFLOPS is Flops/seconds, exactly what arch.GFLOPS would recompute;
// an infinite time yields 0 GFLOPS either way).
func dryResult(arch memsim.Arch, counts memsim.Counts, l memsim.Launch) Result {
	seconds := arch.Time(counts, l)
	gf := 0.0
	if seconds > 0 && !math.IsInf(seconds, 1) {
		gf = float64(counts.Flops) / seconds / 1e9
	}
	return Result{Counts: counts, Launch: l, Seconds: seconds, GFLOPS: gf}
}

// blockGrid returns the block-grid extents of the tiled dataflows: output
// extents ceil-divided by the tile. Counts, launch geometry and the wet
// executors' fan-out loops must all agree on this derivation.
func blockGrid(s shapes.ConvShape, cfg Config) (bx, by, bz int) {
	bx = (s.Wout() + cfg.TileX - 1) / cfg.TileX
	by = (s.Hout() + cfg.TileY - 1) / cfg.TileY
	bz = (s.Cout + cfg.TileZ - 1) / cfg.TileZ
	return bx, by, bz
}

// DirectTiledCounts returns the exact traffic of the tiled dataflow for a
// (shape, config) pair. The counts are separable across the block grid, so
// exact totals come from per-axis sums (O(dims) instead of O(blocks·Cin));
// they depend only on the tile axes (TileX/Y/Z), never on threads, Sb or
// layout — which is what lets the tuner's memo share one entry across every
// thread/Sb/layout variant of a tile. The wet path produces identical
// counts; tests pin the two together.
func DirectTiledCounts(s shapes.ConvShape, cfg Config) memsim.Counts {
	bx, by, bz := blockGrid(s, cfg)
	return dryDirectCounts(s, cfg, bx, by, bz)
}

// DirectTiledLaunch returns the launch geometry of the tiled dataflow for a
// (shape, config) pair.
func DirectTiledLaunch(s shapes.ConvShape, cfg Config) memsim.Launch {
	bx, by, bz := blockGrid(s, cfg)
	return memsim.Launch{
		Blocks:          bx * by * bz * s.Batch,
		ThreadsPerBlock: cfg.Threads(),
		SharedPerBlock:  cfg.SharedPerBlock,
		BandwidthEff:    layoutEff(cfg.Layout),
	}
}

func directTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config, input, kernels *tensor.Tensor) (*Result, error) {
	hout, wout := s.Hout(), s.Wout()
	bx, by, bz := blockGrid(s, cfg)
	l := DirectTiledLaunch(s, cfg)

	out := tensor.New(s.Batch, s.Cout, hout, wout)
	ctr := &memsim.Counter{}

	// Each simulated block is independent; fan them across CPU workers,
	// each drawing its staging buffers from the pooled scratch arena.
	type blockID struct{ n, ix, iy, iz int }
	work := make(chan blockID, 64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ks := getScratch(ctr, cfg.SharedPerBlock)
			defer putScratch(ks)
			for b := range work {
				runDirectBlock(ks.blk, s, cfg, input, kernels, out, b.n, b.ix, b.iy, b.iz)
			}
		}()
	}
	for n := 0; n < s.Batch; n++ {
		for iz := 0; iz < bz; iz++ {
			for iy := 0; iy < by; iy++ {
				for ix := 0; ix < bx; ix++ {
					work <- blockID{n, ix, iy, iz}
				}
			}
		}
	}
	close(work)
	wg.Wait()
	return finishResult(arch, out, ctr, l), nil
}

// dryDirectCounts computes the exact traffic of the tiled dataflow from
// per-axis aggregates. For each block the wet path counts, per channel:
// validW·validH input-tile loads, Hker·Wker·zz weight loads, 2·macs flops —
// all products of per-axis quantities, so sums over the block grid factor.
func dryDirectCounts(s shapes.ConvShape, cfg Config, bx, by, bz int) memsim.Counts {
	var sumValidW, sumValidH, sumXX, sumYY, sumZZ int64
	for ix := 0; ix < bx; ix++ {
		x0 := ix * cfg.TileX
		xx := min(cfg.TileX, s.Wout()-x0)
		xp := s.Strid*xx + s.Wker - s.Strid
		sumXX += int64(xx)
		sumValidW += int64(clippedLen(x0*s.Strid-s.Pad, xp, s.Win))
	}
	for iy := 0; iy < by; iy++ {
		y0 := iy * cfg.TileY
		yy := min(cfg.TileY, s.Hout()-y0)
		yp := s.Strid*yy + s.Hker - s.Strid
		sumYY += int64(yy)
		sumValidH += int64(clippedLen(y0*s.Strid-s.Pad, yp, s.Hin))
	}
	for iz := 0; iz < bz; iz++ {
		sumZZ += int64(min(cfg.TileZ, s.Cout-iz*cfg.TileZ))
	}
	// Per-axis halo'd (unclipped staging) sums for shared-store traffic.
	var sumXP, sumYP int64
	for ix := 0; ix < bx; ix++ {
		xx := min(cfg.TileX, s.Wout()-ix*cfg.TileX)
		sumXP += int64(s.Strid*xx + s.Wker - s.Strid)
	}
	for iy := 0; iy < by; iy++ {
		yy := min(cfg.TileY, s.Hout()-iy*cfg.TileY)
		sumYP += int64(s.Strid*yy + s.Hker - s.Strid)
	}
	// Each output channel reads only its group's Cin/G input channels, so
	// every per-channel term scales by the group-local depth (G=1 is the
	// dense case).
	cin := int64(s.Cin / s.G())
	k2 := int64(s.Hker * s.Wker)
	batch := int64(s.Batch)
	bxy := int64(bx) * int64(by)
	vol := sumXX * sumYY * sumZZ // Σ blocks xx·yy·zz

	var c memsim.Counts
	c.GlobalLoads = batch * cin * (sumValidW*sumValidH*int64(bz) + k2*sumZZ*bxy)
	c.GlobalStores = batch * vol
	c.Flops = batch * cin * 2 * k2 * vol
	c.SharedLoads = batch * (cin*2*k2*vol + vol)
	c.SharedStores = batch * (cin*(sumXP*sumYP*int64(bz)+k2*sumZZ*bxy) + cin*vol)
	return c
}

// runDirectBlock updates one x×y×z output sub-block, counting exactly what
// dryDirectCounts models (tests pin the two together). The arithmetic runs
// as row-wise multiply-accumulate passes: one pass over a contiguous output
// row per (kernel, output-row, tap), which keeps the inner loop
// bounds-check-free and the operands streaming with unit stride.
func runDirectBlock(blk *memsim.Block, s shapes.ConvShape, cfg Config,
	input, kernels, out *tensor.Tensor, n, ix, iy, iz int) {

	hout, wout := s.Hout(), s.Wout()
	x0, y0, z0 := ix*cfg.TileX, iy*cfg.TileY, iz*cfg.TileZ
	xx := min(cfg.TileX, wout-x0)
	yy := min(cfg.TileY, hout-y0)
	zz := min(cfg.TileZ, s.Cout-z0)

	// Halo'd input tile footprint for the clipped output tile.
	xp := s.Strid*xx + s.Wker - s.Strid
	yp := s.Strid*yy + s.Hker - s.Strid
	// Origin of the input tile in (possibly padded) input coordinates.
	ox := x0*s.Strid - s.Pad
	oy := y0*s.Strid - s.Pad
	// Valid (in-bounds) portion actually loaded from off-chip memory.
	validW := clippedLen(ox, xp, s.Win)
	validH := clippedLen(oy, yp, s.Hin)

	blk.Reset()
	outTile := blk.Alloc(xx * yy * zz)
	inTile := blk.Alloc(xp * yp)
	wTile := blk.Alloc(s.Hker * s.Wker * zz)
	for i := range outTile {
		outTile[i] = 0
	}

	ctr := blkCounter(blk)
	for c := 0; c < s.Cin; c++ {
		// Stage the channel-c input tile (paper's α=1 slide) and weights.
		ctr.AddGlobalLoads(validW * validH)
		ctr.AddSharedStores(xp * yp)
		ctr.AddGlobalLoads(s.Hker * s.Wker * zz)
		ctr.AddSharedStores(s.Hker * s.Wker * zz)
		macs := xx * yy * zz * s.Hker * s.Wker
		ctr.AddFlops(2 * macs)
		ctr.AddSharedLoads(2 * macs)
		ctr.AddSharedStores(xx * yy * zz)
		stageInputTile(inTile, input, n, c, oy, ox, xp, yp)
		stageKernelSlice(wTile, kernels, z0, zz, c)
		for k := 0; k < zz; k++ {
			for j := 0; j < yy; j++ {
				orow := outTile[(k*yy+j)*xx : (k*yy+j+1)*xx]
				for p := 0; p < s.Hker; p++ {
					irow := inTile[(j*s.Strid+p)*xp:]
					wbase := (k*s.Hker + p) * s.Wker
					switch {
					case s.Strid == 1 && s.Wker == 3:
						// Tap-fused row kernel: one pass per output row
						// with the three taps in registers.
						w0, w1, w2 := wTile[wbase], wTile[wbase+1], wTile[wbase+2]
						src := irow[:xx+2]
						for i := range orow {
							orow[i] += w0*src[i] + w1*src[i+1] + w2*src[i+2]
						}
					case s.Strid == 1 && s.Wker == 5:
						w0, w1, w2, w3, w4 := wTile[wbase], wTile[wbase+1], wTile[wbase+2], wTile[wbase+3], wTile[wbase+4]
						src := irow[:xx+4]
						for i := range orow {
							orow[i] += w0*src[i] + w1*src[i+1] + w2*src[i+2] + w3*src[i+3] + w4*src[i+4]
						}
					case s.Strid == 1:
						for q, w := range wTile[wbase : wbase+s.Wker] {
							src := irow[q : q+xx]
							for i, v := range src {
								orow[i] += w * v
							}
						}
					default:
						for q, w := range wTile[wbase : wbase+s.Wker] {
							for i := range orow {
								orow[i] += w * irow[i*s.Strid+q]
							}
						}
					}
				}
			}
		}
	}

	// Write the finished sub-block back exactly once.
	ctr.AddGlobalStores(xx * yy * zz)
	ctr.AddSharedLoads(xx * yy * zz)
	if out.Lay == tensor.NCHW {
		for k := 0; k < zz; k++ {
			obase := ((n*out.C+z0+k)*out.H + y0) * out.W
			for j := 0; j < yy; j++ {
				copy(out.Data[obase+j*out.W+x0:obase+j*out.W+x0+xx], outTile[(k*yy+j)*xx:(k*yy+j+1)*xx])
			}
		}
	} else {
		for k := 0; k < zz; k++ {
			for j := 0; j < yy; j++ {
				for i := 0; i < xx; i++ {
					out.Set(n, z0+k, y0+j, x0+i, outTile[(k*yy+j)*xx+i])
				}
			}
		}
	}
}

// DefaultDirectConfig derives the untuned Section 5.2 configuration: the
// output tile satisfies the optimality condition x·y = R·z with volume
// x·y·z ≈ S/Np — the per-processor share of on-chip memory, where Np is the
// number of blocks needed to keep every SM busy (at least two blocks per
// SM). It is the starting point of the tuner and of the quickstart example.
func DefaultDirectConfig(arch memsim.Arch, s shapes.ConvShape) Config {
	sb := arch.MaxSharedPerBlock()
	cfg := Config{SharedPerBlock: sb, Layout: tensor.NCHW}
	totalOut := s.OutputVolume() * s.Batch
	// Volume target: whichever is smaller of "fill the shared memory" and
	// "leave enough blocks to saturate the device".
	volTarget := sb * 3 / 4
	if byPar := totalOut / (2 * arch.NumSMs); byPar >= 1 && byPar < volTarget {
		volTarget = byPar
	}
	best := Config{}
	cpg := s.Cout / s.G() // group-local z extent a tile must divide
	for z := min(cpg, 512); z >= 1; z-- {
		if s.G() > 1 && cpg%z != 0 {
			continue
		}
		xy := int(s.R() * float64(z))
		side := 1
		for side*side < xy {
			side++
		}
		c := cfg
		c.TileX = min(side, s.Wout())
		c.TileY = min(side, s.Hout())
		c.TileZ = z
		if c.TileX*c.TileY*c.TileZ <= volTarget && DirectSharedNeed(s, c) <= sb {
			best = c
			break
		}
	}
	if best.TileX == 0 {
		best = cfg
		best.TileX, best.TileY, best.TileZ = 1, 1, 1
	}
	best.ThreadsX = min(best.TileX, 16)
	best.ThreadsY = min(best.TileY, 16)
	best.ThreadsZ = min(best.TileZ, 1024/(best.ThreadsX*best.ThreadsY))
	if best.ThreadsZ < 1 {
		best.ThreadsZ = 1
	}
	return best
}

// blkCounter exposes the counter a Block charges to; small helper so the
// dry/wet paths share bulk counting.
func blkCounter(b *memsim.Block) *memsim.Counter { return b.Counter() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
