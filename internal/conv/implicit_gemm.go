package conv

import (
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// ImplicitGEMM is the third library-style direct algorithm: the GEMM view of
// the convolution computed without materializing the patch matrix. Each
// GEMM block gathers its K×bn operand tile directly from the input image, so
// the patch matrix's off-chip round trip disappears while the gather itself
// still re-reads overlapping windows. This is how modern libraries
// implement their "implicit GEMM" direct path; the paper's cuDNN-7-era
// baseline (NaiveDirect / Im2colGEMM) predates it, so this algorithm is
// provided as an extension and is not part of the Figure-9 baseline.
func ImplicitGEMM(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	return implicitGEMM(arch, s, input, kernels)
}

// ImplicitGEMMDry returns ImplicitGEMM's counts and simulated time without
// computing values.
func ImplicitGEMMDry(arch memsim.Arch, s shapes.ConvShape) (*Result, error) {
	r, err := DryImplicitGEMM(arch, s)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// DryImplicitGEMM is the allocation-free form of ImplicitGEMMDry.
func DryImplicitGEMM(arch memsim.Arch, s shapes.ConvShape) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	return implicitGEMMVal(arch, s, nil, nil)
}

func implicitGEMM(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	r, err := implicitGEMMVal(arch, s, input, kernels)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

func implicitGEMMVal(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (Result, error) {
	kk := s.KernelSize()
	p := s.Hout() * s.Wout()
	// Non-padding patch elements per image per channel (closed form).
	validPatch := sumValidTaps(s.Hout(), s.Hker, s.Strid, s.Pad, s.Hin) *
		sumValidTaps(s.Wout(), s.Wker, s.Strid, s.Pad, s.Win)

	// Single fused kernel: same blocked GEMM structure as gemmPhase, but the
	// B-panel loads are gathers from the input image (valid elements only;
	// padding zeros are synthesized on chip) and the patch matrix is never
	// stored. A-panel (kernel) loads are unchanged.
	bm, bn := gemmTile, gemmTile
	blocksM := (s.Cout + bm - 1) / bm
	blocksN := (p + bn - 1) / bn
	var c memsim.Counts
	c.GlobalLoads = int64(blocksN)*int64(s.Cout)*int64(kk) + // A panels per column block
		int64(blocksM)*validPatch*int64(s.Cin) // gathered B panels per row block
	c.GlobalStores = int64(s.Cout) * int64(p)
	c.SharedStores = c.GlobalLoads
	c.SharedLoads = 2 * int64(s.Cout) * int64(p) * int64(kk)
	c.Flops = 2 * int64(s.Cout) * int64(p) * int64(kk)
	scaleCountsBy(&c, int64(s.Batch))

	l := memsim.Launch{
		Blocks:          blocksM * blocksN * s.Batch,
		ThreadsPerBlock: 256,
		SharedPerBlock:  3 * gemmTile * gemmTile,
		// The B gather reads short window segments: the same strided-access
		// penalty as the im2col scatter, paid on loads instead of stores.
		BandwidthEff: 0.7,
	}

	var out *tensor.Tensor
	if input != nil {
		var err error
		// Arithmetic is identical to the materialized GEMM; the wet path
		// reuses it (the counting above, not the arithmetic, is what
		// distinguishes the algorithms).
		out, err = im2colCompute(s, input, kernels)
		if err != nil {
			return Result{}, err
		}
	}
	return finishPhasedVal(arch, out, []phase{{c, l}}), nil
}

func scaleCountsBy(c *memsim.Counts, n int64) {
	c.GlobalLoads *= n
	c.GlobalStores *= n
	c.SharedLoads *= n
	c.SharedStores *= n
	c.Flops *= n
}
