package conv

import (
	"testing"

	"repro/internal/shapes"
	"repro/internal/tensor"
)

func TestFFTConvMatchesReference(t *testing.T) {
	cases := []shapes.ConvShape{
		{Batch: 1, Cin: 2, Hin: 8, Win: 8, Cout: 3, Hker: 3, Wker: 3, Strid: 1},
		{Batch: 2, Cin: 3, Hin: 12, Win: 10, Cout: 2, Hker: 3, Wker: 3, Strid: 1, Pad: 1},
		{Batch: 1, Cin: 2, Hin: 11, Win: 11, Cout: 2, Hker: 5, Wker: 5, Strid: 1, Pad: 2},
		{Batch: 1, Cin: 1, Hin: 9, Win: 9, Cout: 2, Hker: 3, Wker: 3, Strid: 2},
		{Batch: 1, Cin: 2, Hin: 16, Win: 16, Cout: 2, Hker: 7, Wker: 7, Strid: 1, Pad: 3},
	}
	for _, s := range cases {
		in, ker := RandomOperands(s, 21)
		want, err := Reference(s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FFTConv(testArch, s, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v: fft conv differs by %g", s, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func TestFFTConvDryMatchesWet(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 10, Win: 10, Cout: 3, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := RandomOperands(s, 22)
	wet, err := FFTConv(testArch, s, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	dry, err := FFTConvDry(testArch, s)
	if err != nil {
		t.Fatal(err)
	}
	if wet.Counts != dry.Counts {
		t.Errorf("wet %v != dry %v", wet.Counts, dry.Counts)
	}
}

// FFT convolution's crossover: hopeless for 3×3 kernels (the padded complex
// grids dwarf the work) but increasingly competitive with the direct
// library path as the kernel grows — the classic algorithmic trade-off.
func TestFFTConvCrossover(t *testing.T) {
	ratio := func(k int) float64 {
		s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 56, Win: 56, Cout: 64,
			Hker: k, Wker: k, Strid: 1, Pad: k / 2}
		fftr, err := FFTConvDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		lib, err := Im2colGEMMDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		return fftr.Seconds / lib.Seconds
	}
	r3, r11 := ratio(3), ratio(11)
	if r3 <= r11 {
		t.Errorf("FFT relative cost should fall with kernel size: 3x3 ratio %v vs 11x11 ratio %v", r3, r11)
	}
	if r3 < 1 {
		t.Errorf("FFT conv should lose at 3x3 (ratio %v)", r3)
	}
}

func TestFFTConvRejectsBadShape(t *testing.T) {
	s := smallShape()
	in, ker := RandomOperands(s, 23)
	bad := tensor.New(1, 1, 1, 1)
	if _, err := FFTConv(testArch, s, bad, ker); err == nil {
		t.Error("bad input accepted")
	}
	if _, err := FFTConv(testArch, s, in, bad); err == nil {
		t.Error("bad kernel accepted")
	}
}
