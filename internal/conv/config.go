// Package conv implements every convolution algorithm the paper evaluates,
// on top of the memsim simulated accelerator:
//
//   - Reference: a plain CPU direct convolution used as the correctness
//     oracle for everything else.
//   - NaiveDirect: a no-reuse direct kernel (the library's occasionally-slow
//     direct path).
//   - Im2colGEMM: the im2col-plus-blocked-GEMM "library" baseline standing in
//     for cuDNN's direct implementation.
//   - DirectTiled: the paper's near I/O-optimal output-stationary dataflow
//     (Section 5.2) with the channel-sliding input tile.
//   - WinogradUnfused: a library-style Winograd pipeline whose stages
//     materialize transformed tensors in off-chip memory.
//   - WinogradFused: the paper's Section 5.3 dataflow keeping the Π
//     temporary arrays resident in shared memory.
//
// Every implementation computes real float32 results (verified against
// Reference in the tests) while counting off-chip traffic through
// memsim.Block, so measured I/O — not a paper formula — is what the
// experiments report.
package conv

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Config is one point of the paper's configuration space (Table 1): the
// output tile, the thread-block geometry, the shared-memory allocation and
// the data layout.
type Config struct {
	// TileX/TileY/TileZ is the output sub-block x×y×z of Section 5.
	TileX, TileY, TileZ int
	// ThreadsX/Y/Z factor the threads of a block (Nxt, Nyt, Nzt); each must
	// divide into its tile dimension's work.
	ThreadsX, ThreadsY, ThreadsZ int
	// SharedPerBlock is Sb, the shared memory per block in floats.
	SharedPerBlock int
	// Layout is the image memory layout.
	Layout tensor.Layout
	// WinogradE is the output tile edge e for the Winograd dataflow
	// (ignored by direct implementations).
	WinogradE int
}

// Threads is Nxt·Nyt·Nzt.
func (c Config) Threads() int { return c.ThreadsX * c.ThreadsY * c.ThreadsZ }

// Tile returns the output tile as a bounds.Tile.
func (c Config) Tile() bounds.Tile { return bounds.Tile{X: c.TileX, Y: c.TileY, Z: c.TileZ} }

func (c Config) String() string {
	return fmt.Sprintf("tile=%dx%dx%d threads=%dx%dx%d Sb=%d layout=%v e=%d",
		c.TileX, c.TileY, c.TileZ, c.ThreadsX, c.ThreadsY, c.ThreadsZ,
		c.SharedPerBlock, c.Layout, c.WinogradE)
}

// layoutEff maps a layout to the off-chip bandwidth efficiency used by the
// time model. On real hardware the layout changes how well loads coalesce;
// the simulator reproduces that as a deterministic efficiency factor
// (CHW is the preferred layout for the paper's row-major dataflows).
func layoutEff(l tensor.Layout) float64 {
	switch l {
	case tensor.NCHW:
		return 1.0
	case tensor.NCWH:
		return 0.93
	case tensor.NHWC:
		return 0.85
	}
	return 0.85
}

// DirectSharedNeed returns the shared-memory floats the direct tiled
// dataflow requires for a config: the resident output tile, one halo'd input
// tile channel, and z kernel slices.
func DirectSharedNeed(s shapes.ConvShape, c Config) int {
	xp := s.Strid*c.TileX + s.Wker - s.Strid
	yp := s.Strid*c.TileY + s.Hker - s.Strid
	return c.TileX*c.TileY*c.TileZ + xp*yp + s.Hker*s.Wker*c.TileZ
}

// WinogradSharedNeed returns the shared-memory floats the fused Winograd
// dataflow requires: the Π accumulators plus Λ scratch (the paper's two
// temporary arrays, 2·α²·xyz/e²), the halo'd input tile, the per-sub-tile V
// buffers, and one pre-transformed-filter tile.
func WinogradSharedNeed(s shapes.ConvShape, c Config) int {
	e := c.WinogradE
	r := s.Hker
	alpha := e + r - 1
	subtiles := ((c.TileX + e - 1) / e) * ((c.TileY + e - 1) / e)
	xp := ((c.TileX+e-1)/e)*e + r - 1
	yp := ((c.TileY+e-1)/e)*e + r - 1
	return 2*alpha*alpha*subtiles*c.TileZ + xp*yp + alpha*alpha*subtiles + alpha*alpha + r*r
}

// ValidateDirect checks a config against a shape and architecture for the
// direct tiled dataflow.
func (c Config) ValidateDirect(s shapes.ConvShape, arch memsim.Arch) error {
	if err := c.common(s, arch); err != nil {
		return err
	}
	if need := DirectSharedNeed(s, c); need > c.SharedPerBlock {
		return fmt.Errorf("conv: tiles need %d floats of shared memory, Sb=%d", need, c.SharedPerBlock)
	}
	return nil
}

// ValidateWinograd checks a config for the fused Winograd dataflow.
func (c Config) ValidateWinograd(s shapes.ConvShape, arch memsim.Arch) error {
	if err := c.common(s, arch); err != nil {
		return err
	}
	if !s.WinogradOK() {
		return fmt.Errorf("conv: %v does not admit Winograd", s)
	}
	if c.WinogradE < 2 {
		return fmt.Errorf("conv: winograd e=%d < 2", c.WinogradE)
	}
	if c.TileX%c.WinogradE != 0 || c.TileY%c.WinogradE != 0 {
		return fmt.Errorf("conv: tile %dx%d not divisible by e=%d", c.TileX, c.TileY, c.WinogradE)
	}
	if need := WinogradSharedNeed(s, c); need > c.SharedPerBlock {
		return fmt.Errorf("conv: winograd tiles need %d floats of shared memory, Sb=%d", need, c.SharedPerBlock)
	}
	return nil
}

func (c Config) common(s shapes.ConvShape, arch memsim.Arch) error {
	// Winograd tiles cover whole sub-tile grids, so they may overhang the
	// output by up to e−1 (the kernel clips partial edge sub-tiles).
	maxX, maxY := s.Wout(), s.Hout()
	if e := c.WinogradE; e > 1 {
		maxX = (maxX + e - 1) / e * e
		maxY = (maxY + e - 1) / e * e
	}
	switch {
	case c.TileX < 1 || c.TileY < 1 || c.TileZ < 1:
		return fmt.Errorf("conv: tile %dx%dx%d has empty dimension", c.TileX, c.TileY, c.TileZ)
	case c.TileX > maxX || c.TileY > maxY || c.TileZ > s.Cout:
		return fmt.Errorf("conv: tile %dx%dx%d exceeds output %dx%dx%d",
			c.TileX, c.TileY, c.TileZ, maxX, maxY, s.Cout)
	case c.ThreadsX < 1 || c.ThreadsY < 1 || c.ThreadsZ < 1:
		return fmt.Errorf("conv: empty thread dimension")
	case c.Threads() > 1024:
		return fmt.Errorf("conv: %d threads per block exceeds 1024", c.Threads())
	case c.SharedPerBlock < 1:
		return fmt.Errorf("conv: Sb=%d < 1", c.SharedPerBlock)
	case c.SharedPerBlock > arch.MaxSharedPerBlock():
		return fmt.Errorf("conv: Sb=%d exceeds Ssm/2=%d (need two resident blocks per SM)",
			c.SharedPerBlock, arch.MaxSharedPerBlock())
	}
	// Grouped convolutions require blocks that never straddle a group
	// boundary in the z (output-channel) axis: TileZ must tile Cout/G
	// exactly, so the per-axis count aggregates stay exact per group.
	if g := s.G(); g > 1 {
		cpg := s.Cout / g
		if c.TileZ > cpg || cpg%c.TileZ != 0 {
			return fmt.Errorf("conv: tile z=%d does not tile the %d channels of one of %d groups",
				c.TileZ, cpg, g)
		}
	}
	return nil
}

// Result bundles the output of a simulated convolution run.
type Result struct {
	Output *tensor.Tensor
	Counts memsim.Counts
	Launch memsim.Launch
	// Seconds is the simulated runtime under arch's time model.
	Seconds float64
	// GFLOPS is the attained rate FLOPs/Seconds.
	GFLOPS float64
}

func finishResult(arch memsim.Arch, out *tensor.Tensor, ctr *memsim.Counter, l memsim.Launch) *Result {
	counts := ctr.Snapshot()
	return &Result{
		Output:  out,
		Counts:  counts,
		Launch:  l,
		Seconds: arch.Time(counts, l),
		GFLOPS:  arch.GFLOPS(counts, l),
	}
}
