package conv

import (
	"testing"

	"repro/internal/shapes"
	"repro/internal/tensor"
)

func TestImplicitGEMMMatchesReference(t *testing.T) {
	for _, s := range testShapes() {
		in, ker := RandomOperands(s, 11)
		want, _ := Reference(s, in, ker)
		got, err := ImplicitGEMM(testArch, s, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Errorf("%v: implicit gemm differs by %g", s, tensor.MaxAbsDiff(got.Output, want))
		}
	}
}

func TestImplicitGEMMDryMatchesWet(t *testing.T) {
	s := smallShape()
	in, ker := RandomOperands(s, 12)
	wet, err := ImplicitGEMM(testArch, s, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	dry, err := ImplicitGEMMDry(testArch, s)
	if err != nil {
		t.Fatal(err)
	}
	if wet.Counts != dry.Counts {
		t.Errorf("wet %v != dry %v", wet.Counts, dry.Counts)
	}
}

// Implicit GEMM must move strictly less off-chip data than materialized
// im2col (it skips the patch matrix round trip) but more than the
// I/O-optimal tiled dataflow.
func TestImplicitGEMMIOOrdering(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 64, Hin: 56, Win: 56, Cout: 64, Hker: 3, Wker: 3, Strid: 1}
	imp, err := ImplicitGEMMDry(testArch, s)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Im2colGEMMDry(testArch, s)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := DirectTiledDry(testArch, s, DefaultDirectConfig(testArch, s))
	if err != nil {
		t.Fatal(err)
	}
	if !(imp.Counts.GlobalIO() < col.Counts.GlobalIO()) {
		t.Errorf("implicit I/O %d not below im2col %d", imp.Counts.GlobalIO(), col.Counts.GlobalIO())
	}
	if !(tiled.Counts.GlobalIO() < imp.Counts.GlobalIO()) {
		t.Errorf("tiled I/O %d not below implicit %d", tiled.Counts.GlobalIO(), imp.Counts.GlobalIO())
	}
}
