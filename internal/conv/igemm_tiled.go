package conv

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// This file adds the tunable form of the implicit-GEMM convolution. Like
// DirectTiled, each block owns an x×y×z output sub-block; unlike it, the
// inputs are not staged as a halo'd tile but gathered tap-by-tap, the way
// library implicit-GEMM kernels stream their B panels: overlapping windows
// re-read from off-chip memory, and the shared working set is only the
// accumulators, one double-buffered x·y tap slice, and the z kernel slices.
// The trade is explicit — more global traffic than the paper's dataflow in
// exchange for a smaller shared footprint, so bigger tiles (or more resident
// blocks) fit. On shapes where shared capacity binds, that wins.

// IGEMMSharedNeed returns the shared-memory floats the tiled implicit-GEMM
// dataflow requires: the resident output tile, a double-buffered x·y tap
// slice of the gathered patch, and z kernel slices.
func IGEMMSharedNeed(s shapes.ConvShape, c Config) int {
	return c.TileX*c.TileY*c.TileZ + 2*c.TileX*c.TileY + s.Hker*s.Wker*c.TileZ
}

// ValidateIGEMM checks a config against a shape and architecture for the
// tiled implicit-GEMM dataflow.
func (c Config) ValidateIGEMM(s shapes.ConvShape, arch memsim.Arch) error {
	if err := c.common(s, arch); err != nil {
		return err
	}
	if need := IGEMMSharedNeed(s, c); need > c.SharedPerBlock {
		return fmt.Errorf("conv: igemm tiles need %d floats of shared memory, Sb=%d", need, c.SharedPerBlock)
	}
	return nil
}

// IGEMMTiledCounts returns the exact traffic of the tiled implicit-GEMM
// dataflow. The kernel (A-panel) term matches DirectTiled's — z slices per
// spatial block per group-local channel. The input term is a gather: every
// output element re-reads its valid taps, so the per-axis valid-tap sums of
// the baselines replace the halo'd tile loads, and each z-block over the
// same spatial tile re-gathers.
func IGEMMTiledCounts(s shapes.ConvShape, cfg Config) memsim.Counts {
	bx, by, bz := blockGrid(s, cfg)
	var sumXX, sumYY, sumZZ int64
	for ix := 0; ix < bx; ix++ {
		sumXX += int64(min(cfg.TileX, s.Wout()-ix*cfg.TileX))
	}
	for iy := 0; iy < by; iy++ {
		sumYY += int64(min(cfg.TileY, s.Hout()-iy*cfg.TileY))
	}
	for iz := 0; iz < bz; iz++ {
		sumZZ += int64(min(cfg.TileZ, s.Cout-iz*cfg.TileZ))
	}
	// Valid gathered taps factor across the axes exactly as in the
	// baselines; tiling does not change the per-output tap count, only how
	// many z-blocks repeat the gather.
	gather := sumValidTaps(s.Hout(), s.Hker, s.Strid, s.Pad, s.Hin) *
		sumValidTaps(s.Wout(), s.Wker, s.Strid, s.Pad, s.Win)

	cin := int64(s.Cin / s.G())
	k2 := int64(s.Hker * s.Wker)
	batch := int64(s.Batch)
	bxy := int64(bx) * int64(by)
	vol := sumXX * sumYY * sumZZ

	var c memsim.Counts
	c.GlobalLoads = batch * cin * (gather*int64(bz) + k2*sumZZ*bxy)
	c.GlobalStores = batch * vol
	c.Flops = batch * cin * 2 * k2 * vol
	c.SharedLoads = batch * (cin*2*k2*vol + vol)
	c.SharedStores = batch * (cin*(gather*int64(bz)+k2*sumZZ*bxy) + cin*vol)
	return c
}

// IGEMMTiledLaunch returns the launch geometry of the tiled implicit-GEMM
// dataflow for a (shape, config) pair.
func IGEMMTiledLaunch(s shapes.ConvShape, cfg Config) memsim.Launch {
	bx, by, bz := blockGrid(s, cfg)
	return memsim.Launch{
		Blocks:          bx * by * bz * s.Batch,
		ThreadsPerBlock: cfg.Threads(),
		SharedPerBlock:  cfg.SharedPerBlock,
		// The tap gather reads short window segments regardless of layout:
		// the same strided-access penalty as the fused library kernel.
		BandwidthEff: 0.7,
	}
}

// DryIGEMMTiled evaluates the tiled implicit-GEMM convolution without
// touching data. This is the evaluator behind every implicit-GEMM-kind
// tuning measurement.
func DryIGEMMTiled(arch memsim.Arch, s shapes.ConvShape, cfg Config) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.ValidateIGEMM(s, arch); err != nil {
		return Result{}, err
	}
	return dryResult(arch, IGEMMTiledCounts(s, cfg), IGEMMTiledLaunch(s, cfg)), nil
}

// DefaultIGEMMConfig derives an untuned tiled implicit-GEMM configuration by
// the same volume targeting as DefaultDirectConfig, against the implicit-GEMM
// shared-need model.
func DefaultIGEMMConfig(arch memsim.Arch, s shapes.ConvShape) Config {
	sb := arch.MaxSharedPerBlock()
	cfg := Config{SharedPerBlock: sb, Layout: tensor.NCHW}
	totalOut := s.OutputVolume() * s.Batch
	volTarget := sb * 3 / 4
	if byPar := totalOut / (2 * arch.NumSMs); byPar >= 1 && byPar < volTarget {
		volTarget = byPar
	}
	best := Config{}
	cpg := s.Cout / s.G()
	for z := min(cpg, 512); z >= 1; z-- {
		if s.G() > 1 && cpg%z != 0 {
			continue
		}
		xy := int(s.R() * float64(z))
		side := 1
		for side*side < xy {
			side++
		}
		c := cfg
		c.TileX = min(side, s.Wout())
		c.TileY = min(side, s.Hout())
		c.TileZ = z
		if c.TileX*c.TileY*c.TileZ <= volTarget && IGEMMSharedNeed(s, c) <= sb {
			best = c
			break
		}
	}
	if best.TileX == 0 {
		best = cfg
		best.TileX, best.TileY, best.TileZ = 1, 1, 1
	}
	best.ThreadsX = min(best.TileX, 16)
	best.ThreadsY = min(best.TileY, 16)
	best.ThreadsZ = min(best.TileZ, 1024/(best.ThreadsX*best.ThreadsY))
	if best.ThreadsZ < 1 {
		best.ThreadsZ = 1
	}
	return best
}
