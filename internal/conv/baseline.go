package conv

import (
	"repro/internal/gemm"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// This file contains the two "library" baselines standing in for cuDNN's
// direct paths: a no-reuse naive kernel and im2col+blocked-GEMM. Each
// implementation exists in a wet mode (computes real values, counts as it
// copies) and a dry mode (same counts, no data): the tests pin dry == wet on
// small shapes, which licenses dry runs at paper scale.

// phase is one simulated kernel launch contributing to a Result.
type phase struct {
	counts memsim.Counts
	launch memsim.Launch
}

func finishPhased(arch memsim.Arch, out *tensor.Tensor, phases []phase) *Result {
	r := finishPhasedVal(arch, out, phases)
	return &r
}

// finishPhasedVal is finishPhased without the heap allocation: the Result
// comes back by value, which is what the Dry* fast paths return.
func finishPhasedVal(arch memsim.Arch, out *tensor.Tensor, phases []phase) Result {
	var total memsim.Counts
	var seconds float64
	for _, p := range phases {
		total.GlobalLoads += p.counts.GlobalLoads
		total.GlobalStores += p.counts.GlobalStores
		total.SharedLoads += p.counts.SharedLoads
		total.SharedStores += p.counts.SharedStores
		total.Flops += p.counts.Flops
		seconds += arch.Time(p.counts, p.launch)
	}
	gf := 0.0
	if seconds > 0 {
		gf = float64(total.Flops) / seconds / 1e9
	}
	l := phases[len(phases)-1].launch
	return Result{Output: out, Counts: total, Launch: l, Seconds: seconds, GFLOPS: gf}
}

// clippedLen returns the length of the overlap of [lo, lo+n) with [0, max).
func clippedLen(lo, n, max int) int {
	hi := lo + n
	if lo < 0 {
		lo = 0
	}
	if hi > max {
		hi = max
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// sumValidTaps returns the total over all output coordinates of how many
// kernel taps land inside the unpadded input: Σ_o |{p in [0,ker) :
// 0 <= o*stride+p-pad < in}|. Because the per-coordinate tap counts of the
// two spatial axes multiply independently, every baseline's valid-MAC and
// valid-patch totals are products of two of these sums — no per-coordinate
// slices needed on the measurement fast path.
func sumValidTaps(out, ker, stride, pad, in int) int64 {
	var sum int64
	for o := 0; o < out; o++ {
		sum += int64(clippedLen(o*stride-pad, ker, in))
	}
	return sum
}

// NaiveDirect runs the no-reuse direct kernel: every multiply-accumulate
// fetches both operands from off-chip memory. This is the upper baseline the
// paper's dataflow is measured against when im2col is worse.
func NaiveDirect(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	return naiveDirect(arch, s, input, kernels)
}

// NaiveDirectDry returns the same counts and simulated time as NaiveDirect
// without computing any values (Output is nil).
func NaiveDirectDry(arch memsim.Arch, s shapes.ConvShape) (*Result, error) {
	r, err := DryNaiveDirect(arch, s)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// DryNaiveDirect is the allocation-free form of NaiveDirectDry.
func DryNaiveDirect(arch memsim.Arch, s shapes.ConvShape) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	return naiveDirectVal(arch, s, nil, nil)
}

func naiveDirect(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	r, err := naiveDirectVal(arch, s, input, kernels)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

func naiveDirectVal(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (Result, error) {
	// Valid MACs factor across the two spatial axes (closed form, no
	// per-coordinate slices).
	macs := sumValidTaps(s.Hout(), s.Hker, s.Strid, s.Pad, s.Hin) *
		sumValidTaps(s.Wout(), s.Wker, s.Strid, s.Pad, s.Win)
	macs *= int64(s.Cin) * int64(s.Cout) * int64(s.Batch)
	outputs := int64(s.OutputVolume()) * int64(s.Batch)

	var counts memsim.Counts
	counts.GlobalLoads = 2 * macs // one input + one weight per MAC
	counts.GlobalStores = outputs
	counts.Flops = 2 * macs

	var out *tensor.Tensor
	if input != nil {
		var err error
		out, err = Reference(s, input, kernels)
		if err != nil {
			return Result{}, err
		}
	}
	const threads = 256
	l := memsim.Launch{
		Blocks:          int((outputs + threads - 1) / threads),
		ThreadsPerBlock: threads,
		SharedPerBlock:  1,   // no staging
		BandwidthEff:    0.8, // overlapping-window reads coalesce imperfectly
	}
	return finishPhasedVal(arch, out, []phase{{counts, l}}), nil
}

// gemmTile is the square staging tile edge of the baseline blocked GEMM.
const gemmTile = 64

// gemmPhase returns the counted phase of a blocked m×k×n GEMM whose operand
// tiles are staged through shared memory, plus the launch geometry. It only
// counts; the wet path does the actual arithmetic separately (with plain
// blocked GEMM, which moves exactly the same data).
func gemmPhase(m, k, n int) phase {
	bm, bn := gemmTile, gemmTile
	blocksM := (m + bm - 1) / bm
	blocksN := (n + bn - 1) / bn
	var c memsim.Counts
	// Each (i,j) block loads its A row-panel and B column-panel once per k
	// step; exact element counts account for edge tiles.
	c.GlobalLoads = int64(blocksN)*int64(m)*int64(k) + int64(blocksM)*int64(k)*int64(n)
	c.GlobalStores = int64(m) * int64(n)
	c.SharedStores = c.GlobalLoads
	c.SharedLoads = 2 * int64(m) * int64(n) * int64(k) // operand reads per MAC
	c.Flops = 2 * int64(m) * int64(n) * int64(k)
	return phase{c, memsim.Launch{
		Blocks:          blocksM * blocksN,
		ThreadsPerBlock: 256,
		SharedPerBlock:  3 * gemmTile * gemmTile,
		BandwidthEff:    0.9, // contiguous panel streaming
	}}
}

// Im2colGEMM runs the im2col-plus-GEMM baseline: the patch matrix is
// materialized in off-chip memory, then a blocked GEMM with shared-memory
// staging multiplies the reshaped kernels against it. This is the "best
// direct path of the library" the paper compares with.
func Im2colGEMM(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	return im2col(arch, s, input, kernels)
}

// Im2colGEMMDry returns Im2colGEMM's counts and simulated time without
// computing values.
func Im2colGEMMDry(arch memsim.Arch, s shapes.ConvShape) (*Result, error) {
	r, err := DryIm2colGEMM(arch, s)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// DryIm2colGEMM is the allocation-free form of Im2colGEMMDry.
func DryIm2colGEMM(arch memsim.Arch, s shapes.ConvShape) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	return im2colVal(arch, s, nil, nil)
}

func im2col(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	r, err := im2colVal(arch, s, input, kernels)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

func im2colVal(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (Result, error) {
	kk := s.KernelSize()     // K = Wker·Hker·Cin
	p := s.Hout() * s.Wout() // columns per image
	// Non-padding patch elements per image per channel: the per-axis valid
	// tap sums multiply (closed form).
	validPatch := sumValidTaps(s.Hout(), s.Hker, s.Strid, s.Pad, s.Hin) *
		sumValidTaps(s.Wout(), s.Wker, s.Strid, s.Pad, s.Win)

	// Phase 1: im2col. Valid elements are read from the input; every patch
	// element (including padding zeros) is written to the patch matrix.
	var ph1 memsim.Counts
	ph1.GlobalLoads = validPatch * int64(s.Cin) * int64(s.Batch)
	ph1.GlobalStores = int64(kk) * int64(p) * int64(s.Batch)
	l1 := memsim.Launch{
		Blocks:          int((ph1.GlobalStores + 255) / 256),
		ThreadsPerBlock: 256,
		SharedPerBlock:  1,
		// The patch matrix is written in kernel-window order: short strided
		// segments, well below peak DRAM burst efficiency.
		BandwidthEff: 0.6,
	}

	// Phase 2: GEMM (Cout × K) · (K × P) per image.
	g := gemmPhase(s.Cout, kk, p)
	g.counts.GlobalLoads *= int64(s.Batch)
	g.counts.GlobalStores *= int64(s.Batch)
	g.counts.SharedLoads *= int64(s.Batch)
	g.counts.SharedStores *= int64(s.Batch)
	g.counts.Flops *= int64(s.Batch)
	g.launch.Blocks *= s.Batch

	var out *tensor.Tensor
	if input != nil {
		var err error
		out, err = im2colCompute(s, input, kernels)
		if err != nil {
			return Result{}, err
		}
	}
	return finishPhasedVal(arch, out, []phase{{ph1, l1}, g}), nil
}

// im2colCompute is the wet path: real patch matrix, real GEMM. The patch
// and product matrices come from the pooled scratch arena, so back-to-back
// wet baselines reuse one allocation.
func im2colCompute(s shapes.ConvShape, input, kernels *tensor.Tensor) (*tensor.Tensor, error) {
	kk := s.KernelSize()
	p := s.Hout() * s.Wout()
	out := tensor.New(s.Batch, s.Cout, s.Hout(), s.Wout())
	ks := scratchPool.Get().(*kernelScratch)
	defer scratchPool.Put(ks)
	patch := ks.buf(bufPatch, kk*p)
	prod := ks.buf(bufProd, s.Cout*p)
	a := kernels.Data // (Cout, K) row-major in NCHW kernel storage
	for n := 0; n < s.Batch; n++ {
		col := 0
		for oh := 0; oh < s.Hout(); oh++ {
			for ow := 0; ow < s.Wout(); ow++ {
				row := 0
				for c := 0; c < s.Cin; c++ {
					for kh := 0; kh < s.Hker; kh++ {
						for kw := 0; kw < s.Wker; kw++ {
							patch[row*p+col] = input.AtPadded(n, c, oh*s.Strid+kh-s.Pad, ow*s.Strid+kw-s.Pad)
							row++
						}
					}
				}
				col++
			}
		}
		gemm.Parallel(prod, a, patch, s.Cout, kk, p, gemmTile, 0)
		copy(out.Data[n*s.Cout*p:(n+1)*s.Cout*p], prod)
	}
	return out, nil
}
