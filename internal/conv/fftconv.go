package conv

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// FFTConv computes the convolution by the frequency-domain route — the other
// indirect method in the paper's taxonomy (Section 1 classifies algorithms
// as direct vs indirect; Winograd and FFT are the indirect representatives).
// Like the unfused Winograd baseline it stages through off-chip memory:
//
//  1. forward transforms of every input channel     (N·Cin 2-D FFTs)
//  2. forward transforms of every kernel plane      (Cout·Cin 2-D FFTs)
//  3. frequency-domain multiply-accumulate over Cin (per (n, k))
//  4. inverse transforms + crop of every output     (N·Cout 2-D IFFTs)
//
// Correlation (the CNN convention) is obtained by conjugating the kernel
// spectra. FFT convolution pays a large constant (complex arithmetic, padded
// power-of-two grids) and wins only for big kernels; the tests pin its
// numerics to the reference and its cost ordering against the other
// algorithms.
func FFTConv(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	return fftConv(arch, s, input, kernels)
}

// FFTConvDry returns FFTConv's counts and simulated time without computing
// values.
func FFTConvDry(arch memsim.Arch, s shapes.ConvShape) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return fftConv(arch, s, nil, nil)
}

func fftConv(arch memsim.Arch, s shapes.ConvShape, input, kernels *tensor.Tensor) (*Result, error) {
	// Padded grid: circular correlation needs L >= padded input extent so
	// the valid outputs see no wraparound.
	lh := fft.NextPow2(s.Hin + 2*s.Pad)
	lw := fft.NextPow2(s.Win + 2*s.Pad)
	grid := lh * lw
	fft1D := int64(fft.FlopsPerTransform(lh))*int64(lw) + int64(fft.FlopsPerTransform(lw))*int64(lh)

	batch := int64(s.Batch)
	cin, cout := int64(s.Cin), int64(s.Cout)
	gridF := int64(grid)
	// FFT kernels stage one row/column at a time, not the whole grid; the
	// shared working set is a handful of complex lines.
	stage := min(2*grid, 8192)

	// Phase 1: input transforms (real image in, complex spectrum out).
	var p1 memsim.Counts
	p1.GlobalLoads = batch * cin * int64(s.Hin*s.Win)
	p1.GlobalStores = batch * cin * gridF * 2
	p1.Flops = batch * cin * fft1D
	l1 := memsim.Launch{Blocks: max(1, int(batch*cin)), ThreadsPerBlock: 128,
		SharedPerBlock: stage, BandwidthEff: 0.8}

	// Phase 2: kernel transforms.
	var p2 memsim.Counts
	p2.GlobalLoads = cout * cin * int64(s.Hker*s.Wker)
	p2.GlobalStores = cout * cin * gridF * 2
	p2.Flops = cout * cin * fft1D
	l2 := memsim.Launch{Blocks: max(1, int(cout*cin)), ThreadsPerBlock: 128,
		SharedPerBlock: stage, BandwidthEff: 0.8}

	// Phase 3: frequency-domain multiply-accumulate: for each (n, k), read
	// Cin input spectra and Cin kernel spectra, write one spectrum.
	var p3 memsim.Counts
	p3.GlobalLoads = batch * cout * cin * gridF * 4
	p3.GlobalStores = batch * cout * gridF * 2
	p3.Flops = batch * cout * cin * gridF * 8 // complex MAC = 8 real flops
	l3 := memsim.Launch{Blocks: max(1, int(batch*cout)), ThreadsPerBlock: 256,
		SharedPerBlock: stage, BandwidthEff: 0.9}

	// Phase 4: inverse transforms and crop.
	var p4 memsim.Counts
	p4.GlobalLoads = batch * cout * gridF * 2
	p4.GlobalStores = batch * int64(s.OutputVolume())
	p4.Flops = batch * cout * fft1D
	l4 := memsim.Launch{Blocks: max(1, int(batch*cout)), ThreadsPerBlock: 128,
		SharedPerBlock: stage, BandwidthEff: 0.8}

	var out *tensor.Tensor
	if input != nil {
		var err error
		out, err = fftConvCompute(s, lh, lw, input, kernels)
		if err != nil {
			return nil, err
		}
	}
	return finishPhased(arch, out, []phase{{p1, l1}, {p2, l2}, {p3, l3}, {p4, l4}}), nil
}

// fftConvCompute is the wet path with real spectra.
func fftConvCompute(s shapes.ConvShape, lh, lw int, input, kernels *tensor.Tensor) (*tensor.Tensor, error) {
	plan, err := fft.NewPlan2D(lh, lw)
	if err != nil {
		return nil, fmt.Errorf("conv: %w", err)
	}
	grid := lh * lw
	// Kernel spectra, conjugated for correlation: conj(FFT(g)).
	kspec := make([][]complex128, s.Cout*s.Cin)
	buf := make([]complex128, grid)
	for k := 0; k < s.Cout; k++ {
		for c := 0; c < s.Cin; c++ {
			for i := range buf {
				buf[i] = 0
			}
			for p := 0; p < s.Hker; p++ {
				for q := 0; q < s.Wker; q++ {
					buf[p*lw+q] = complex(float64(kernels.At(k, c, p, q)), 0)
				}
			}
			plan.Forward(buf)
			spec := make([]complex128, grid)
			for i, v := range buf {
				spec[i] = complex(real(v), -imag(v))
			}
			kspec[k*s.Cin+c] = spec
		}
	}

	out := tensor.New(s.Batch, s.Cout, s.Hout(), s.Wout())
	ispec := make([][]complex128, s.Cin)
	acc := make([]complex128, grid)
	for n := 0; n < s.Batch; n++ {
		// Input spectra for this image (padding folded into the grid).
		for c := 0; c < s.Cin; c++ {
			if ispec[c] == nil {
				ispec[c] = make([]complex128, grid)
			}
			spec := ispec[c]
			for i := range spec {
				spec[i] = 0
			}
			for h := 0; h < s.Hin; h++ {
				for w := 0; w < s.Win; w++ {
					spec[(h+s.Pad)*lw+(w+s.Pad)] = complex(float64(input.At(n, c, h, w)), 0)
				}
			}
			plan.Forward(spec)
		}
		for k := 0; k < s.Cout; k++ {
			for i := range acc {
				acc[i] = 0
			}
			for c := 0; c < s.Cin; c++ {
				spec := ispec[c]
				ks := kspec[k*s.Cin+c]
				for i := range acc {
					acc[i] += spec[i] * ks[i]
				}
			}
			plan.Inverse(acc)
			for oh := 0; oh < s.Hout(); oh++ {
				for ow := 0; ow < s.Wout(); ow++ {
					out.Set(n, k, oh, ow, float32(real(acc[oh*s.Strid*lw+ow*s.Strid])))
				}
			}
		}
	}
	return out, nil
}
