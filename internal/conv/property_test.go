package conv

import (
	"math/rand"
	"testing"

	"repro/internal/shapes"
	"repro/internal/tensor"
)

// This file holds randomized cross-implementation properties: any admissible
// configuration — not just the hand-picked ones — must produce numerically
// correct results and identical wet/dry counts.

// randomDirectConfig draws a random valid direct config for the shape.
func randomDirectConfig(rng *rand.Rand, s shapes.ConvShape) Config {
	for {
		cfg := Config{
			TileX:          1 + rng.Intn(s.Wout()),
			TileY:          1 + rng.Intn(s.Hout()),
			TileZ:          1 + rng.Intn(s.Cout),
			SharedPerBlock: 4096 << rng.Intn(2),
			Layout:         tensor.Layouts[rng.Intn(len(tensor.Layouts))],
		}
		cfg.ThreadsX = 1 + rng.Intn(cfg.TileX)
		cfg.ThreadsY = 1 + rng.Intn(cfg.TileY)
		cfg.ThreadsZ = 1
		if cfg.ValidateDirect(s, testArch) == nil {
			return cfg
		}
	}
}

// randomWinogradConfig draws a random valid fused-Winograd config.
func randomWinogradConfig(rng *rand.Rand, s shapes.ConvShape) Config {
	es := []int{2, 4}
	for {
		e := es[rng.Intn(len(es))]
		gx := (s.Wout() + e - 1) / e
		gy := (s.Hout() + e - 1) / e
		cfg := Config{
			TileX:          e * (1 + rng.Intn(gx)),
			TileY:          e * (1 + rng.Intn(gy)),
			TileZ:          1 + rng.Intn(s.Cout),
			SharedPerBlock: 8192 << rng.Intn(2),
			Layout:         tensor.Layouts[rng.Intn(len(tensor.Layouts))],
			WinogradE:      e,
		}
		cfg.ThreadsX = 1 + rng.Intn(cfg.TileX)
		cfg.ThreadsY = 1
		cfg.ThreadsZ = 1 + rng.Intn(cfg.TileZ)
		if cfg.ValidateWinograd(s, testArch) == nil {
			return cfg
		}
	}
}

// Property: every admissible direct config computes the right answer and its
// dry counts equal its wet counts.
func TestDirectTiledRandomConfigsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ss := []shapes.ConvShape{
		{Batch: 1, Cin: 3, Hin: 11, Win: 13, Cout: 5, Hker: 3, Wker: 3, Strid: 1, Pad: 1},
		{Batch: 2, Cin: 2, Hin: 10, Win: 10, Cout: 4, Hker: 5, Wker: 5, Strid: 2, Pad: 2},
	}
	for _, s := range ss {
		in, ker := RandomOperands(s, 7)
		want, err := Reference(s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 12; trial++ {
			cfg := randomDirectConfig(rng, s)
			wet, err := DirectTiled(testArch, s, cfg, in, ker)
			if err != nil {
				t.Fatalf("%v %v: %v", s, cfg, err)
			}
			if !tensor.AllClose(wet.Output, want, tol) {
				t.Fatalf("%v %v: wrong result, diff=%g", s, cfg, tensor.MaxAbsDiff(wet.Output, want))
			}
			dry, err := DirectTiledDry(testArch, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if wet.Counts != dry.Counts {
				t.Fatalf("%v %v: dry %v != wet %v", s, cfg, dry.Counts, wet.Counts)
			}
		}
	}
}

// Property: every admissible Winograd config computes the right answer and
// its dry counts equal its wet counts.
func TestWinogradFusedRandomConfigsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	ss := []shapes.ConvShape{
		{Batch: 1, Cin: 3, Hin: 11, Win: 13, Cout: 4, Hker: 3, Wker: 3, Strid: 1, Pad: 1},
		{Batch: 1, Cin: 2, Hin: 9, Win: 9, Cout: 3, Hker: 3, Wker: 3, Strid: 1},
	}
	for _, s := range ss {
		in, ker := RandomOperands(s, 8)
		want, err := Reference(s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			cfg := randomWinogradConfig(rng, s)
			wet, err := WinogradFused(testArch, s, cfg, in, ker)
			if err != nil {
				t.Fatalf("%v %v: %v", s, cfg, err)
			}
			if !tensor.AllClose(wet.Output, want, tol) {
				t.Fatalf("%v %v: wrong result, diff=%g", s, cfg, tensor.MaxAbsDiff(wet.Output, want))
			}
			dry, err := WinogradFusedDry(testArch, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if wet.Counts != dry.Counts {
				t.Fatalf("%v %v: dry %v != wet %v", s, cfg, dry.Counts, wet.Counts)
			}
		}
	}
}

// Property: the tiled dataflow's measured global I/O never falls below the
// Equation-20 model minus clipping slack, and never below outputs+minimal
// reads — and more shared memory (bigger admissible tiles) never increases
// measured I/O for dividing tiles.
func TestDirectTiledIOMonotoneInTileVolume(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 16, Hin: 26, Win: 26, Cout: 16, Hker: 3, Wker: 3, Strid: 1}
	prev := int64(1 << 62)
	for _, tile := range []Config{
		{TileX: 2, TileY: 2, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 8192},
		{TileX: 4, TileY: 4, TileZ: 2, ThreadsX: 2, ThreadsY: 2, ThreadsZ: 1, SharedPerBlock: 8192},
		{TileX: 8, TileY: 8, TileZ: 4, ThreadsX: 4, ThreadsY: 4, ThreadsZ: 1, SharedPerBlock: 8192},
		{TileX: 24, TileY: 24, TileZ: 8, ThreadsX: 8, ThreadsY: 8, ThreadsZ: 1, SharedPerBlock: 8192},
	} {
		res, err := DirectTiledDry(testArch, s, tile)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts.GlobalIO() > prev {
			t.Errorf("tile %v: I/O %d above smaller tile's %d", tile, res.Counts.GlobalIO(), prev)
		}
		prev = res.Counts.GlobalIO()
	}
}

// randomShape draws a small random-but-valid convolution shape.
func randomShape(rng *rand.Rand) shapes.ConvShape {
	for {
		s := shapes.ConvShape{
			Batch: 1 + rng.Intn(2),
			Cin:   1 + rng.Intn(4),
			Hin:   5 + rng.Intn(8),
			Win:   5 + rng.Intn(8),
			Cout:  1 + rng.Intn(5),
			Hker:  1 + rng.Intn(5),
			Wker:  1 + rng.Intn(5),
			Strid: 1 + rng.Intn(2),
			Pad:   rng.Intn(3),
		}
		if s.Validate() == nil && s.Hout() >= 1 && s.Wout() >= 1 {
			return s
		}
	}
}

// Property: the im2col+GEMM baseline's wet output matches Reference on
// randomized shapes (strides, pads, non-square kernels included).
func TestIm2colGEMMRandomShapesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		s := randomShape(rng)
		in, ker := RandomOperands(s, int64(trial))
		want, err := Reference(s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Im2colGEMM(testArch, s, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Fatalf("%v: wrong result, diff=%g", s, tensor.MaxAbsDiff(got.Output, want))
		}
		dry, err := Im2colGEMMDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counts != dry.Counts {
			t.Fatalf("%v: dry %v != wet %v", s, dry.Counts, got.Counts)
		}
	}
}

// Property: the implicit-GEMM wet output matches Reference on randomized
// shapes and its dry counts equal its wet counts.
func TestImplicitGEMMRandomShapesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 20; trial++ {
		s := randomShape(rng)
		in, ker := RandomOperands(s, int64(100+trial))
		want, err := Reference(s, in, ker)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ImplicitGEMM(testArch, s, in, ker)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !tensor.AllClose(got.Output, want, tol) {
			t.Fatalf("%v: wrong result, diff=%g", s, tensor.MaxAbsDiff(got.Output, want))
		}
		dry, err := ImplicitGEMMDry(testArch, s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counts != dry.Counts {
			t.Fatalf("%v: dry %v != wet %v", s, dry.Counts, got.Counts)
		}
	}
}
