package conv

import (
	"sync"
	"testing"

	"repro/internal/shapes"
	"repro/internal/tensor"
)

// The pooled scratch arena must be invisible: wet results computed through
// recycled scratch (warm pool, concurrent callers) are bit-identical to a
// fresh run — same output floats, same counts, same simulated time. Run
// under -race in CI: the pool Get/Put and Block Reinit paths are exactly
// where a sharing bug would surface.
func TestPooledScratchBitIdenticalConcurrent(t *testing.T) {
	type run func() (*Result, error)
	s3 := shapes.ConvShape{Batch: 1, Cin: 8, Hin: 20, Win: 20, Cout: 12, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	s5 := shapes.ConvShape{Batch: 2, Cin: 4, Hin: 14, Win: 14, Cout: 6, Hker: 5, Wker: 5, Strid: 2, Pad: 2}
	in3, ker3 := RandomOperands(s3, 21)
	in5, ker5 := RandomOperands(s5, 22)
	wcfg := DefaultWinogradConfig(testArch, s3, 2)
	dcfg3 := DefaultDirectConfig(testArch, s3)
	dcfg5 := DefaultDirectConfig(testArch, s5)

	kernels := map[string]run{
		"DirectTiled/3x3": func() (*Result, error) { return DirectTiled(testArch, s3, dcfg3, in3, ker3) },
		"DirectTiled/5x5": func() (*Result, error) { return DirectTiled(testArch, s5, dcfg5, in5, ker5) },
		"WinogradFused":   func() (*Result, error) { return WinogradFused(testArch, s3, wcfg, in3, ker3) },
		"Im2colGEMM":      func() (*Result, error) { return Im2colGEMM(testArch, s3, in3, ker3) },
		"ImplicitGEMM":    func() (*Result, error) { return ImplicitGEMM(testArch, s3, in3, ker3) },
	}

	for name, fn := range kernels {
		t.Run(name, func(t *testing.T) {
			ref, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 6
			const iters = 3
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			diverged := make(chan string, goroutines*iters)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for it := 0; it < iters; it++ {
						got, err := fn()
						if err != nil {
							errs <- err
							return
						}
						if got.Counts != ref.Counts || got.Seconds != ref.Seconds {
							diverged <- "counts/time"
							return
						}
						for i := range got.Output.Data {
							if got.Output.Data[i] != ref.Output.Data[i] {
								diverged <- "output"
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			close(diverged)
			if err, ok := <-errs; ok {
				t.Fatal(err)
			}
			if what, ok := <-diverged; ok {
				t.Fatalf("pooled rerun diverged from reference (%s)", what)
			}
		})
	}
}

// Deep padding (Pad >= Wker) with a 1-wide tile puts some blocks' staging
// windows entirely inside the zero halo — the row-copy fast path must
// produce the zeros AtPadded would, not walk off the input row.
func TestDirectTiledDeepPaddingNarrowTile(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 5, Win: 5, Cout: 2, Hker: 1, Wker: 1, Strid: 1, Pad: 2}
	if err := s.Validate(); err != nil {
		t.Skipf("shape rejected: %v", err)
	}
	in, ker := RandomOperands(s, 9)
	want, err := Reference(s, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TileX: 1, TileY: 1, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 1024}
	res, err := DirectTiled(testArch, s, cfg, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(res.Output, want, tol) {
		t.Fatalf("wrong result, diff=%g", tensor.MaxAbsDiff(res.Output, want))
	}
}

// A recycled Block serving a larger kernel than its previous tenant must
// grow, and the capacity check must still fire on overflow.
func TestScratchBlockRegrowth(t *testing.T) {
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 8, Win: 8, Cout: 2, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := RandomOperands(s, 3)
	small := Config{TileX: 2, TileY: 2, TileZ: 1, ThreadsX: 1, ThreadsY: 1, ThreadsZ: 1, SharedPerBlock: 256}
	big := Config{TileX: 8, TileY: 8, TileZ: 2, ThreadsX: 2, ThreadsY: 2, ThreadsZ: 1, SharedPerBlock: 4096}
	want, err := Reference(s, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate so pooled blocks shrink and grow across runs.
	for i := 0; i < 4; i++ {
		for _, cfg := range []Config{small, big} {
			res, err := DirectTiled(testArch, s, cfg, in, ker)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.AllClose(res.Output, want, tol) {
				t.Fatalf("cfg %v: wrong result after pool churn", cfg)
			}
		}
	}
}

// stageInputTile's row-copy fast path must agree with the generic
// per-element path on every clipping case (negative origin, right/bottom
// overhang, fully out of range).
func TestStageInputTileMatchesAtPadded(t *testing.T) {
	input := tensor.New(2, 3, 9, 7)
	input.FillRandom(5)
	cases := []struct{ oy, ox, yp, xp int }{
		{0, 0, 4, 4}, {-2, -2, 6, 6}, {7, 5, 4, 4}, {-3, 2, 3, 9},
		{100, 100, 3, 3}, {-8, -8, 3, 3}, {4, -1, 8, 10},
		// Valid rows but columns entirely outside the input: window fully
		// left (including -ox > xp, the clamp case), fully right, and
		// right-overhang beyond the window width.
		{2, -5, 3, 3}, {2, -2, 3, 1}, {2, 20, 3, 3}, {2, 7, 3, 2},
	}
	for _, tc := range cases {
		fast := make([]float32, tc.xp*tc.yp)
		stageInputTile(fast, input, 1, 2, tc.oy, tc.ox, tc.xp, tc.yp)
		for j := 0; j < tc.yp; j++ {
			for i := 0; i < tc.xp; i++ {
				want := input.AtPadded(1, 2, tc.oy+j, tc.ox+i)
				if fast[j*tc.xp+i] != want {
					t.Fatalf("case %+v: (%d,%d) = %g, want %g", tc, j, i, fast[j*tc.xp+i], want)
				}
			}
		}
	}
}
