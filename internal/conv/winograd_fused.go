package conv

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// WinogradFused runs the paper's Section 5.3 Winograd dataflow. Each block
// owns an x×y×z output sub-block split into e×e sub-tiles: the Π
// accumulators — the "two temporary arrays" whose reuse φ₃ identifies as the
// bound-dominating term — stay resident in shared memory across the whole
// channel loop; per channel the block loads one halo'd input tile plus z·r²
// raw weights, transforms both on chip (at the sparse-matrix cost the
// transform matrices actually have) and accumulates Π += (G·g·Gᵀ) ⊙ (Bᵀ·d·B).
// Output tiles are produced once at the end via Aᵀ·Π·A. Off-chip traffic per
// block is Cin·x'·y' + Cin·z·r² + x·y·z, exactly Equation 22.
func WinogradFused(arch memsim.Arch, s shapes.ConvShape, cfg Config, input, kernels *tensor.Tensor) (*Result, error) {
	if err := checkOperands(s, input, kernels); err != nil {
		return nil, err
	}
	if err := cfg.ValidateWinograd(s, arch); err != nil {
		return nil, err
	}
	return winogradFused(arch, s, cfg, input, kernels)
}

// WinogradFusedDry returns WinogradFused's counts and simulated time without
// computing values.
func WinogradFusedDry(arch memsim.Arch, s shapes.ConvShape, cfg Config) (*Result, error) {
	r, err := DryWinogradFused(arch, s, cfg)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// DryWinogradFused is the allocation-free form of WinogradFusedDry: the
// Result comes back by value, counts from the closed-form per-axis
// aggregates and a cached transform. This is the evaluator behind every
// Winograd tuning measurement.
func DryWinogradFused(arch memsim.Arch, s shapes.ConvShape, cfg Config) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.ValidateWinograd(s, arch); err != nil {
		return Result{}, err
	}
	counts, err := WinogradFusedCounts(s, cfg)
	if err != nil {
		return Result{}, err
	}
	return dryResult(arch, counts, WinogradFusedLaunch(s, cfg)), nil
}

// WinogradFusedCounts returns the exact traffic of the fused Winograd main
// kernel for a (shape, config) pair. Like DirectTiledCounts, the counts
// depend only on the tile axes plus the Winograd output edge e — threads,
// Sb and layout enter through the launch, not the counts — so a memo keyed
// by (x, y, z, e) covers the whole configuration space.
func WinogradFusedCounts(s shapes.ConvShape, cfg Config) (memsim.Counts, error) {
	tr, err := winograd.Cached(cfg.WinogradE, s.Hker)
	if err != nil {
		return memsim.Counts{}, fmt.Errorf("conv: %w", err)
	}
	bx, by, bz := blockGrid(s, cfg)
	return dryWinoCounts(tr, s, cfg, bx, by, bz), nil
}

// WinogradFusedLaunch returns the launch geometry of the fused Winograd
// dataflow for a (shape, config) pair.
func WinogradFusedLaunch(s shapes.ConvShape, cfg Config) memsim.Launch {
	bx, by, bz := blockGrid(s, cfg)
	return memsim.Launch{
		Blocks:          bx * by * bz * s.Batch,
		ThreadsPerBlock: cfg.Threads(),
		SharedPerBlock:  cfg.SharedPerBlock,
		BandwidthEff:    layoutEff(cfg.Layout),
	}
}

func winogradFused(arch memsim.Arch, s shapes.ConvShape, cfg Config, input, kernels *tensor.Tensor) (*Result, error) {
	tr, err := winograd.Cached(cfg.WinogradE, s.Hker)
	if err != nil {
		return nil, fmt.Errorf("conv: %w", err)
	}
	hout, wout := s.Hout(), s.Wout()
	bx, by, bz := blockGrid(s, cfg)
	mainLaunch := WinogradFusedLaunch(s, cfg)

	out := tensor.New(s.Batch, s.Cout, hout, wout)
	ctr := &memsim.Counter{}
	type blockID struct{ n, ix, iy, iz int }
	work := make(chan blockID, 64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ks := getScratch(ctr, cfg.SharedPerBlock)
			defer putScratch(ks)
			for b := range work {
				runWinogradBlock(ks, tr, s, cfg, input, kernels, out, b.n, b.ix, b.iy, b.iz)
			}
		}()
	}
	for n := 0; n < s.Batch; n++ {
		for iz := 0; iz < bz; iz++ {
			for iy := 0; iy < by; iy++ {
				for ix := 0; ix < bx; ix++ {
					work <- blockID{n, ix, iy, iz}
				}
			}
		}
	}
	close(work)
	wg.Wait()
	return finishPhased(arch, out, []phase{{ctr.Snapshot(), mainLaunch}}), nil
}

// dryWinoCounts computes the exact traffic of the fused Winograd main kernel
// from per-axis aggregates, mirroring runWinogradBlock's counting (which is
// separable across the block grid). Tests pin dry == wet.
func dryWinoCounts(tr *winograd.Transform, s shapes.ConvShape, cfg Config, bx, by, bz int) memsim.Counts {
	e := cfg.WinogradE
	r := s.Hker
	alpha := e + r - 1
	a2 := int64(alpha * alpha)
	inOps := int64(tr.OpsInput())
	filterOps := int64(tr.OpsFilter())
	outOps := int64(tr.OpsOutput())

	var sumValidW, sumValidH, sumXX, sumYY, sumZZ, sumSTX, sumSTY, sumXP, sumYP int64
	for ix := 0; ix < bx; ix++ {
		x0 := ix * cfg.TileX
		xx := min(cfg.TileX, s.Wout()-x0)
		stx := (xx + e - 1) / e
		xp := stx*e + r - 1
		sumXX += int64(xx)
		sumSTX += int64(stx)
		sumXP += int64(xp)
		sumValidW += int64(clippedLen(x0-s.Pad, xp, s.Win))
	}
	for iy := 0; iy < by; iy++ {
		y0 := iy * cfg.TileY
		yy := min(cfg.TileY, s.Hout()-y0)
		sty := (yy + e - 1) / e
		yp := sty*e + r - 1
		sumYY += int64(yy)
		sumSTY += int64(sty)
		sumYP += int64(yp)
		sumValidH += int64(clippedLen(y0-s.Pad, yp, s.Hin))
	}
	for iz := 0; iz < bz; iz++ {
		sumZZ += int64(min(cfg.TileZ, s.Cout-iz*cfg.TileZ))
	}
	cin := int64(s.Cin)
	batch := int64(s.Batch)
	r2 := int64(r * r)
	bzf := int64(bz)
	bxy := int64(bx) * int64(by)
	subsAll := sumSTX * sumSTY        // Σ over (ix,iy) of stx·sty
	zzSubs := sumSTX * sumSTY * sumZZ // Σ over blocks of zz·subs
	vol := sumXX * sumYY * sumZZ      // Σ over blocks of xx·yy·zz

	var c memsim.Counts
	c.GlobalLoads = batch * cin * (sumValidW*sumValidH*bzf + r2*sumZZ*bxy)
	c.GlobalStores = batch * vol
	c.Flops = batch * (cin*(subsAll*bzf*inOps+sumZZ*bxy*filterOps+zzSubs*2*a2) + zzSubs*outOps)
	c.SharedLoads = batch * (cin*(subsAll*bzf*inOps+sumZZ*bxy*filterOps+zzSubs*3*a2) + zzSubs*outOps + vol)
	c.SharedStores = batch * cin * (sumXP*sumYP*bzf + subsAll*bzf*a2 + r2*sumZZ*bxy + zzSubs*a2)
	return c
}

// runWinogradBlock updates one x×y×z output sub-block, counting as it
// stages: raw weights arrive from off-chip memory and both transforms run on
// chip at their sparse cost. The small per-block tile temporaries come from
// the worker's pooled scratch instead of per-call allocations.
func runWinogradBlock(ks *kernelScratch, tr *winograd.Transform, s shapes.ConvShape, cfg Config,
	input, kernels, out *tensor.Tensor, n, ix, iy, iz int) {

	blk := ks.blk
	e := cfg.WinogradE
	r := s.Hker
	alpha := e + r - 1
	a2 := alpha * alpha
	hout, wout := s.Hout(), s.Wout()

	x0, y0, z0 := ix*cfg.TileX, iy*cfg.TileY, iz*cfg.TileZ
	xx := min(cfg.TileX, wout-x0)
	yy := min(cfg.TileY, hout-y0)
	zz := min(cfg.TileZ, s.Cout-z0)
	stx := (xx + e - 1) / e // sub-tile grid of the clipped block
	sty := (yy + e - 1) / e
	subs := stx * sty

	// Input tile footprint, stride 1: covers sub-tile grid halo.
	xp := stx*e + r - 1
	yp := sty*e + r - 1
	ox := x0 - s.Pad
	oy := y0 - s.Pad
	validW := clippedLen(ox, xp, s.Win)
	validH := clippedLen(oy, yp, s.Hin)

	blk.Reset()
	pi := blk.Alloc(subs * zz * a2) // Π accumulators
	blk.Alloc(subs * zz * a2)       // Λ scratch (paper's second temp array)
	inTile := blk.Alloc(xp * yp)
	vbuf := blk.Alloc(subs * a2)
	ubuf := blk.Alloc(a2)
	wbuf := blk.Alloc(r * r)
	for i := range pi {
		pi[i] = 0
	}

	ctr := blkCounter(blk)
	dtile := ks.buf(bufDTile, a2)
	for c := 0; c < s.Cin; c++ {
		// Stage the channel-c halo'd input tile once; every sub-tile reads
		// from shared memory (input reuse across sub-tiles and kernels).
		ctr.AddGlobalLoads(validW * validH)
		ctr.AddSharedStores(xp * yp)
		ctr.AddFlops(subs * tr.OpsInput())
		ctr.AddSharedLoads(subs * tr.OpsInput()) // operand traffic of transforms
		ctr.AddSharedStores(subs * a2)
		// Per kernel: r² raw weights from off-chip, the on-chip filter
		// transform, then the fused multiply-accumulate into Π for every
		// sub-tile.
		ctr.AddGlobalLoads(zz * r * r)
		ctr.AddSharedStores(zz * r * r)
		ctr.AddFlops(zz * tr.OpsFilter())
		ctr.AddSharedLoads(zz * tr.OpsFilter())
		ctr.AddFlops(zz * subs * 2 * a2)
		ctr.AddSharedLoads(zz * subs * 3 * a2)
		ctr.AddSharedStores(zz * subs * a2)
		stageInputTile(inTile, input, n, c, oy, ox, xp, yp)
		for t := 0; t < subs; t++ {
			tx, ty := t%stx, t/stx
			for j := 0; j < alpha; j++ {
				copy(dtile[j*alpha:(j+1)*alpha], inTile[(ty*e+j)*xp+tx*e:(ty*e+j)*xp+tx*e+alpha])
			}
			tr.InputTransform(vbuf[t*a2:(t+1)*a2], dtile)
		}
		for k := 0; k < zz; k++ {
			stageKernelSlice(wbuf, kernels, z0+k, 1, c)
			tr.FilterTransform(ubuf, wbuf)
			for t := 0; t < subs; t++ {
				acc := pi[(k*subs+t)*a2 : (k*subs+t+1)*a2]
				v := vbuf[t*a2 : (t+1)*a2]
				for i, uv := range ubuf {
					acc[i] += uv * v[i]
				}
			}
		}
	}

	// Output transforms and the single write-back of the sub-block.
	ctr.AddFlops(zz * subs * tr.OpsOutput())
	ctr.AddSharedLoads(zz * subs * tr.OpsOutput())
	ctr.AddGlobalStores(xx * yy * zz)
	ctr.AddSharedLoads(xx * yy * zz)
	ybuf := ks.buf(bufYTile, e*e)
	nchw := out.Lay == tensor.NCHW
	for k := 0; k < zz; k++ {
		obase := ((n*out.C + z0 + k) * out.H) * out.W
		for t := 0; t < subs; t++ {
			tx, ty := t%stx, t/stx
			tr.OutputTransform(ybuf, pi[(k*subs+t)*a2:(k*subs+t+1)*a2])
			// The clipped sub-tile: rows/cols beyond the block's clipped
			// extent (and therefore beyond the output) are dropped.
			nj := min(e, yy-ty*e)
			ni := min(e, xx-tx*e)
			w0 := x0 + tx*e
			for j := 0; j < nj; j++ {
				oh := y0 + ty*e + j
				if nchw {
					copy(out.Data[obase+oh*out.W+w0:obase+oh*out.W+w0+ni], ybuf[j*e:j*e+ni])
				} else {
					for i := 0; i < ni; i++ {
						out.Set(n, z0+k, oh, w0+i, ybuf[j*e+i])
					}
				}
			}
		}
	}
}

// DefaultWinogradConfig derives an untuned fused-Winograd configuration from
// the Section 5.3 budget 2·α²/e²·xyz ≈ S/Np and the optimality condition
// xy = r²z, where Np keeps at least two blocks per SM busy.
func DefaultWinogradConfig(arch memsim.Arch, s shapes.ConvShape, e int) Config {
	sb := arch.MaxSharedPerBlock()
	cfg := Config{SharedPerBlock: sb, Layout: tensor.NCHW, WinogradE: e}
	totalOut := s.OutputVolume() * s.Batch
	volTarget := 1 << 30
	if byPar := totalOut / (2 * arch.NumSMs); byPar >= 1 {
		volTarget = byPar
	}
	for z := min(s.Cout, 256); z >= 1; z-- {
		xy := s.Hker * s.Hker * z
		side := e
		for side*side < xy {
			side += e // keep divisible by e
		}
		c := cfg
		c.TileX = min(side, alignDown(s.Wout(), e, side))
		c.TileY = min(side, alignDown(s.Hout(), e, side))
		c.TileZ = z
		if c.TileX < e || c.TileY < e {
			continue
		}
		if c.TileX*c.TileY*c.TileZ <= volTarget && WinogradSharedNeed(s, c) <= sb {
			cfg = c
			break
		}
	}
	if cfg.TileX == 0 {
		cfg.TileX, cfg.TileY, cfg.TileZ = e, e, 1
	}
	cfg.ThreadsX = min(cfg.TileX, 8)
	cfg.ThreadsY = min(cfg.TileY, 8)
	cfg.ThreadsZ = min(cfg.TileZ, 1024/(cfg.ThreadsX*cfg.ThreadsY))
	if cfg.ThreadsZ < 1 {
		cfg.ThreadsZ = 1
	}
	return cfg
}

// alignDown returns the largest multiple of e that is <= limit and <= want,
// but at least e.
func alignDown(limit, e, want int) int {
	v := min(limit, want)
	v -= v % e
	if v < e {
		v = e
	}
	return v
}
