package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// naiveDFT is the O(n²) reference.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k*j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, angle))
		}
	}
	return out
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randComplex(rng, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if e := maxErr(got, want); e > 1e-9 {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 64, 1024} {
		p, _ := NewPlan(n)
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErr(x, y); e > 1e-10 {
			t.Errorf("n=%d: round trip error %g", n, e)
		}
	}
}

// Parseval: sum |x|^2 == (1/n) sum |X|^2.
func TestParsevalProperty(t *testing.T) {
	p, _ := NewPlan(64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randComplex(rng, 64)
		var tx float64
		for _, v := range x {
			tx += real(v)*real(v) + imag(v)*imag(v)
		}
		y := append([]complex128(nil), x...)
		p.Forward(y)
		var ty float64
		for _, v := range y {
			ty += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tx-ty/64) < 1e-9*math.Max(tx, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Convolution theorem: IFFT(FFT(a) .* FFT(b)) equals circular convolution.
func TestConvolutionTheorem(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(3))
	p, _ := NewPlan(n)
	a := randComplex(rng, n)
	b := randComplex(rng, n)
	want := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += a[j] * b[(i-j+n)%n]
		}
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	if e := maxErr(fa, want); e > 1e-9 {
		t.Errorf("convolution theorem error %g", e)
	}
}

func Test2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := NewPlan2D(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := randComplex(rng, 16*8)
	y := append([]complex128(nil), x...)
	p.Forward(y)
	p.Inverse(y)
	if e := maxErr(x, y); e > 1e-10 {
		t.Errorf("2D round trip error %g", e)
	}
}

// 2-D transform of a separable signal equals the product of 1-D transforms.
func Test2DSeparable(t *testing.T) {
	const r, c = 8, 16
	rng := rand.New(rand.NewSource(5))
	rowSig := randComplex(rng, c)
	colSig := randComplex(rng, r)
	x := make([]complex128, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			x[i*c+j] = colSig[i] * rowSig[j]
		}
	}
	p2, _ := NewPlan2D(r, c)
	p2.Forward(x)
	pr, _ := NewPlan(r)
	pc, _ := NewPlan(c)
	fr := append([]complex128(nil), colSig...)
	fc := append([]complex128(nil), rowSig...)
	pr.Forward(fr)
	pc.Forward(fc)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			want := fr[i] * fc[j]
			if cmplx.Abs(x[i*c+j]-want) > 1e-9 {
				t.Fatalf("separability violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPlanRejects(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 16: 16, 17: 32, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestFlopsPerTransform(t *testing.T) {
	if FlopsPerTransform(1) != 0 {
		t.Error("n=1 should cost nothing")
	}
	if got := FlopsPerTransform(8); got != 5*8*3 {
		t.Errorf("FlopsPerTransform(8)=%d want 120", got)
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	p, _ := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}
