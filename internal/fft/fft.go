// Package fft provides the radix-2 fast Fourier transform substrate used by
// the FFT-based convolution (the other indirect convolution method in the
// paper's taxonomy, alongside Winograd). Stdlib only: iterative in-place
// Cooley–Tukey over complex128 with precomputed twiddle factors, plus 2-D
// transforms applied row/column-wise.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds the twiddle factors and bit-reversal permutation for length-n
// transforms (n must be a power of two). Plans are reusable and safe for
// concurrent Forward/Inverse calls on distinct buffers.
type Plan struct {
	n       int
	logN    int
	rev     []int
	twiddle []complex128 // forward twiddles, n/2 entries
}

// NewPlan prepares a transform of the given power-of-two length.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{n: n, logN: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logN))
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(angle), math.Sin(angle))
	}
	return p, nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n < 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place DFT of x (len must equal the plan length).
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place inverse DFT of x, including the 1/n scale.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d != plan length %d", len(x), p.n))
	}
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// Plan2D couples two plans for row-column 2-D transforms on flat row-major
// buffers of size rows×cols.
type Plan2D struct {
	rows, cols *Plan
}

// NewPlan2D prepares a rows×cols 2-D transform (both powers of two).
func NewPlan2D(rows, cols int) (*Plan2D, error) {
	rp, err := NewPlan(rows)
	if err != nil {
		return nil, err
	}
	cp, err := NewPlan(cols)
	if err != nil {
		return nil, err
	}
	return &Plan2D{rows: rp, cols: cp}, nil
}

// Rows and Cols return the grid dimensions.
func (p *Plan2D) Rows() int { return p.rows.n }

// Cols returns the number of columns.
func (p *Plan2D) Cols() int { return p.cols.n }

// Forward computes the in-place 2-D DFT of the rows×cols buffer x.
func (p *Plan2D) Forward(x []complex128) { p.apply(x, false) }

// Inverse computes the in-place 2-D inverse DFT (scaled).
func (p *Plan2D) Inverse(x []complex128) { p.apply(x, true) }

func (p *Plan2D) apply(x []complex128, inverse bool) {
	r, c := p.rows.n, p.cols.n
	if len(x) != r*c {
		panic(fmt.Sprintf("fft: buffer length %d != %dx%d", len(x), r, c))
	}
	for i := 0; i < r; i++ {
		row := x[i*c : (i+1)*c]
		if inverse {
			p.cols.Inverse(row)
		} else {
			p.cols.Forward(row)
		}
	}
	col := make([]complex128, r)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			col[i] = x[i*c+j]
		}
		if inverse {
			p.rows.Inverse(col)
		} else {
			p.rows.Forward(col)
		}
		for i := 0; i < r; i++ {
			x[i*c+j] = col[i]
		}
	}
}

// FlopsPerTransform is the standard 5·n·log2(n) operation count of a
// length-n complex radix-2 FFT, used by the simulator's accounting.
func FlopsPerTransform(n int) int {
	if n <= 1 {
		return 0
	}
	return 5 * n * bits.TrailingZeros(uint(n))
}
