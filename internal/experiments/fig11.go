package experiments

import (
	"repro/internal/autotune"
	"repro/internal/memsim"
	"repro/internal/models"
	"repro/internal/report"
)

// Fig11Result carries the convergence curves of Figure 11 (best-so-far
// GFLOPS per measurement) for the four automation methods plus the library
// baseline level.
type Fig11Result struct {
	ATE      []float64
	SA       []float64
	GA       []float64
	Random   []float64
	Baseline float64
}

// Fig11 reproduces Figure 11: tuning AlexNet conv1 on the V100 model with
// the proposed engine (model-guided parallel random walks on the pruned
// domain) against simulated annealing, genetic and random search on the full
// domain — the strategies TVM provides — plus the library-baseline GFLOPS
// line.
func Fig11(opts Options) (*Fig11Result, *report.Table, error) {
	arch := memsim.V100
	layer := models.AlexNet().Layers[0].Shape
	budget := opts.budget(240, 48)

	pruned, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
	if err != nil {
		return nil, nil, err
	}
	full, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, false)
	if err != nil {
		return nil, nil, err
	}
	measure := autotune.DirectMeasurer(arch, layer)
	tuneOpts := autotune.DefaultOptions()
	tuneOpts.Budget = budget
	tuneOpts.Patience = 0
	tuneOpts.Seed = opts.seed()

	ate, err := autotune.Tune(pruned, measure, tuneOpts)
	if err != nil {
		return nil, nil, err
	}
	sa, err := autotune.SimulatedAnnealing(full, measure, tuneOpts)
	if err != nil {
		return nil, nil, err
	}
	ga, err := autotune.GeneticAlgorithm(full, measure, tuneOpts)
	if err != nil {
		return nil, nil, err
	}
	rnd, err := autotune.RandomSearch(full, measure, tuneOpts)
	if err != nil {
		return nil, nil, err
	}
	lib, err := libraryDirect(arch, layer)
	if err != nil {
		return nil, nil, err
	}

	res := &Fig11Result{
		ATE: ate.Curve, SA: sa.Curve, GA: ga.Curve, Random: rnd.Curve,
		Baseline: lib.GFLOPS,
	}
	t := report.New("Figure 11: tuning convergence on AlexNet conv1 (V100 model, best-so-far GFLOPS)",
		"measurement", "ATE", "SA", "GA", "random", "library")
	step := len(ate.Curve) / 12
	if step < 1 {
		step = 1
	}
	at := func(c []float64, i int) float64 {
		if i >= len(c) {
			if len(c) == 0 {
				return 0
			}
			return c[len(c)-1]
		}
		return c[i]
	}
	for i := 0; i < budget; i += step {
		t.AddRowF(i+1, at(ate.Curve, i), at(sa.Curve, i), at(ga.Curve, i), at(rnd.Curve, i), res.Baseline)
	}
	return res, t, nil
}
