package experiments

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/memsim"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/shapes"
)

// Table2Row is one row of Table 2: one AlexNet layer tuned by the TVM proxy
// (model-guided search on the full space) and by ATE (the same engine on the
// optimality-condition-pruned searching domain).
type Table2Row struct {
	Layer     string
	Kind      autotune.Kind
	SizeTVM   int64
	SizeATE   int64
	Ratio     float64 // ATE/TVM space size
	ItersTVM  int
	ItersATE  int
	PrunedATE int // candidates the I/O lower bound discarded unmeasured
	GFLOPSTVM float64
	GFLOPSATE float64
	PerfRatio float64 // ATE/TVM final performance
}

// Table2 reproduces Table 2 on the V100 model: for AlexNet conv1–conv4
// (direct dataflow) and conv3/conv4 (Winograd dataflow), the size of the
// full configuration space vs the pruned searching domain, the measurements
// needed to converge, and the final solution's GFLOPS. The TVM stand-in is
// the identical learned-cost-model engine run on the unpruned space, which
// isolates exactly the contribution of the optimality condition.
func Table2(opts Options) ([]Table2Row, *report.Table, error) {
	arch := memsim.V100
	alex := models.AlexNet()
	budget := opts.budget(300, 96)
	patience := budget / 3

	type job struct {
		name  string
		shape shapes.ConvShape
		kind  autotune.Kind
	}
	jobs := []job{
		{"conv1", alex.Layers[0].Shape, autotune.Direct},
		{"conv2", alex.Layers[1].Shape, autotune.Direct},
		{"conv3", alex.Layers[2].Shape, autotune.Direct},
		{"conv4", alex.Layers[3].Shape, autotune.Direct},
		{"conv3_wino", alex.Layers[2].Shape, autotune.Winograd},
		{"conv4_wino", alex.Layers[3].Shape, autotune.Winograd},
	}
	if opts.Quick {
		jobs = []job{jobs[0], jobs[4]}
	}

	var rows []Table2Row
	for _, j := range jobs {
		full, err := autotune.NewSpace(j.shape, arch, j.kind, 2, false)
		if err != nil {
			return nil, nil, err
		}
		pruned, err := autotune.NewSpace(j.shape, arch, j.kind, 2, true)
		if err != nil {
			return nil, nil, err
		}
		var measure autotune.Measurer
		if j.kind == autotune.Winograd {
			measure = autotune.WinogradMeasurer(arch, j.shape)
		} else {
			measure = autotune.DirectMeasurer(arch, j.shape)
		}
		tuneOpts := autotune.DefaultOptions()
		tuneOpts.Budget = budget
		tuneOpts.Patience = patience
		tuneOpts.Seed = opts.seed()

		// The TVM proxy searches the unpruned space without the Section-5
		// starting configurations and without bound-guided pruning — an
		// external tuner has neither the optimality condition nor a
		// lower-bound oracle.
		tvmOpts := tuneOpts
		tvmOpts.NoSeeds = true
		tvmOpts.NoPrune = true
		tvm, err := autotune.Tune(full, measure, tvmOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("%s full: %w", j.name, err)
		}
		ate, err := autotune.Tune(pruned, measure, tuneOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("%s pruned: %w", j.name, err)
		}
		sf, sa := full.Size(), pruned.Size()
		rows = append(rows, Table2Row{
			Layer: j.name, Kind: j.kind,
			SizeTVM: sf, SizeATE: sa, Ratio: float64(sa) / float64(sf),
			ItersTVM: tvm.ConvergedAt, ItersATE: ate.ConvergedAt,
			PrunedATE: ate.Pruned,
			GFLOPSTVM: tvm.BestM.GFLOPS, GFLOPSATE: ate.BestM.GFLOPS,
			PerfRatio: ate.BestM.GFLOPS / tvm.BestM.GFLOPS,
		})
	}

	t := report.New("Table 2: TVM-proxy vs auto-tuning engine (V100 model, AlexNet layers)",
		"layer", "space TVM", "space ATE", "ATE/TVM", "iters TVM", "iters ATE",
		"pruned ATE", "GFLOPS TVM", "GFLOPS ATE", "ATE/TVM perf")
	for _, r := range rows {
		t.AddRowF(r.Layer, r.SizeTVM, r.SizeATE,
			fmt.Sprintf("%.1f%%", 100*r.Ratio), r.ItersTVM, r.ItersATE,
			r.PrunedATE, r.GFLOPSTVM, r.GFLOPSATE, r.PerfRatio)
	}
	return rows, t, nil
}
