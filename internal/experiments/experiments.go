// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulated-architecture substrate:
//
//	Fig9   — dataflow-vs-library speedups across image sizes, output
//	         channels and strides, direct + Winograd (1080Ti model)
//	Fig10  — batched direct convolution speedups (1080Ti model)
//	Fig11  — tuning-convergence curves of ATE vs SA/GA/random (V100 model)
//	Table2 — search-space sizes, convergence iterations and final GFLOPS
//	         for AlexNet layers, TVM-proxy vs ATE (V100 model)
//	Fig12  — end-to-end CNN inference, tuned vs library (V100 model)
//	Fig13  — architecture sensitivity (1080Ti / TitanX / GFX906)
//	Theory — pebble-game measurements vs the lower-bound formulas
//
// Each experiment returns report tables so cmd/repro, the benchmarks and the
// tests share one implementation.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/autotune"
	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/shapes"
)

// Options scales experiment effort. Zero values select full (paper-scale)
// settings; Quick shrinks sweeps and budgets for benchmarks and smoke runs.
type Options struct {
	// Quick runs reduced sweeps (fewer sizes, smaller tuning budgets).
	Quick bool
	// Budget overrides the per-layer tuning budget (measurements).
	Budget int
	// Seed makes tuning runs deterministic.
	Seed int64
}

func (o Options) budget(full, quick int) int {
	if o.Budget > 0 {
		return o.Budget
	}
	if o.Quick {
		return quick
	}
	return full
}

func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// libraryDirect returns the better of the two library direct paths (naive
// and im2col+GEMM), mirroring the paper's "best of the two direct
// implementations in cuDNN".
func libraryDirect(arch memsim.Arch, s shapes.ConvShape) (*conv.Result, error) {
	naive, err := conv.NaiveDirectDry(arch, s)
	if err != nil {
		return nil, err
	}
	col, err := conv.Im2colGEMMDry(arch, s)
	if err != nil {
		return nil, err
	}
	if naive.Seconds < col.Seconds {
		return naive, nil
	}
	return col, nil
}

// tuneDirect tunes the Section 5.2 dataflow on the pruned searching domain
// with the given measurer (pass nil for a fresh memoized one).
func tuneDirect(arch memsim.Arch, s shapes.ConvShape, measure autotune.Measurer, budget int, seed int64) (*autotune.Trace, error) {
	sp, err := autotune.NewSpace(s, arch, autotune.Direct, 0, true)
	if err != nil {
		return nil, err
	}
	if measure == nil {
		measure = autotune.DirectMeasurer(arch, s)
	}
	opts := autotune.DefaultOptions()
	opts.Budget = budget
	opts.Patience = 0
	opts.Seed = seed
	return autotune.Tune(sp, measure, opts)
}

// tuneWinograd tunes the Section 5.3 fused Winograd dataflow (e = 2) with
// the given measurer (pass nil for a fresh memoized one).
func tuneWinograd(arch memsim.Arch, s shapes.ConvShape, measure autotune.Measurer, budget int, seed int64) (*autotune.Trace, error) {
	sp, err := autotune.NewSpace(s, arch, autotune.Winograd, 2, true)
	if err != nil {
		return nil, err
	}
	if measure == nil {
		measure = autotune.WinogradMeasurer(arch, s)
	}
	opts := autotune.DefaultOptions()
	opts.Budget = budget
	opts.Patience = 0
	opts.Seed = seed
	return autotune.Tune(sp, measure, opts)
}

// bestLayerSeconds returns the simulated time of one layer under the
// library (baseline) and under our tuned dataflows, picking the best
// algorithm on each side — the per-layer contest behind Figure 12.
func bestLayerSeconds(arch memsim.Arch, s shapes.ConvShape, budget int, seed int64) (baseline, tuned float64, err error) {
	lib, err := libraryDirect(arch, s)
	if err != nil {
		return 0, 0, err
	}
	baseline = lib.Seconds
	if s.WinogradOK() && s.Hker == 3 {
		if wu, werr := conv.WinogradUnfusedDry(arch, s, 2); werr == nil && wu.Seconds < baseline {
			baseline = wu.Seconds
		}
	}
	// One memoized measurer per (arch, layer, kind) serves the tuning run
	// and the coarse-grained default-config evaluations below: the engine's
	// own measurements warm the memo the defaults then hit.
	direct := autotune.NewMemoMeasure(arch, s, autotune.Direct)
	dt, err := tuneDirect(arch, s, direct.Measure, budget, seed)
	if err != nil {
		return 0, 0, err
	}
	tuned = dt.BestM.Seconds
	// The coarse-grained dataflow designs themselves (Section 5's
	// optimality-condition configs) are always candidates; tuning can only
	// improve on them.
	if m, ok := direct.Measure(conv.DefaultDirectConfig(arch, s)); ok && m.Seconds < tuned {
		tuned = m.Seconds
	}
	if s.WinogradOK() && s.Hker == 3 {
		wino := autotune.NewMemoMeasure(arch, s, autotune.Winograd)
		if wt, werr := tuneWinograd(arch, s, wino.Measure, budget, seed); werr == nil && wt.BestM.Seconds < tuned {
			tuned = wt.BestM.Seconds
		}
		wcfg := conv.DefaultWinogradConfig(arch, s, 2)
		if m, ok := wino.Measure(wcfg); ok && m.Seconds < tuned {
			tuned = m.Seconds
		}
	}
	if math.IsInf(tuned, 1) || tuned <= 0 {
		return 0, 0, fmt.Errorf("experiments: degenerate tuned time for %v", s)
	}
	return baseline, tuned, nil
}
