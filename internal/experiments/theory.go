package experiments

import (
	"strconv"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/pebble"
	"repro/internal/report"
	"repro/internal/shapes"
)

// TheoryRow validates the lower-bound theory on one tiny convolution: a
// really-played pebble game's I/O versus the Theorem 4.12 (direct) or
// Theorem 4.20 (Winograd) bound.
type TheoryRow struct {
	Algorithm string // "direct" or "winograd"
	Shape     shapes.ConvShape
	S         int
	QOptimal  int // exact minimum I/O (−1 if the DAG is too large to solve)
	QBelady   int // greedy schedule I/O, Belady eviction
	QLRU      int // greedy schedule I/O, LRU eviction
	Bound     float64
}

// Theory plays the red–blue pebble game on small direct-convolution DAGs and
// compares measured I/O against the paper's lower bound. Every row must
// satisfy Bound ≤ QOptimal ≤ QBelady ≤ QLRU (up to eviction-policy noise in
// the last inequality, which is reported, not enforced).
func Theory(opts Options) ([]TheoryRow, *report.Table, error) {
	type cse struct {
		s     shapes.ConvShape
		sizes []int
		exact bool
	}
	cases := []cse{
		{shapes.ConvShape{Batch: 1, Cin: 1, Hin: 3, Win: 3, Cout: 1, Hker: 2, Wker: 2, Strid: 2}, []int{3, 4}, true},
		{shapes.ConvShape{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 2, Wker: 2, Strid: 1}, []int{4, 8, 16}, false},
		{shapes.ConvShape{Batch: 1, Cin: 2, Hin: 6, Win: 6, Cout: 3, Hker: 3, Wker: 3, Strid: 1}, []int{8, 16, 32}, false},
	}
	if opts.Quick {
		cases = cases[:2]
	}

	var rows []TheoryRow
	for _, c := range cases {
		dc, err := dag.BuildDirectConv(c.s)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range c.sizes {
			bel, err := pebble.Greedy(dc.Graph, s, pebble.Belady)
			if err != nil {
				return nil, nil, err
			}
			lru, err := pebble.Greedy(dc.Graph, s, pebble.LRU)
			if err != nil {
				return nil, nil, err
			}
			row := TheoryRow{
				Algorithm: "direct", Shape: c.s, S: s,
				QOptimal: -1,
				QBelady:  bel.IO(),
				QLRU:     lru.IO(),
				Bound:    bounds.DirectLowerBound(c.s, s),
			}
			if c.exact && dc.NumVertices() <= pebble.MaxOptimalVertices {
				q, err := pebble.Optimal(dc.Graph, s)
				if err != nil {
					return nil, nil, err
				}
				row.QOptimal = q
			}
			rows = append(rows, row)
		}
	}

	// Winograd DAGs (Theorem 4.20): play on the recomputation-allowed DAG
	// that the lemma's vertex count describes.
	winoShapes := []shapes.ConvShape{
		{Batch: 1, Cin: 2, Hin: 4, Win: 4, Cout: 2, Hker: 3, Wker: 3, Strid: 1},
	}
	if !opts.Quick {
		winoShapes = append(winoShapes,
			shapes.ConvShape{Batch: 1, Cin: 2, Hin: 6, Win: 6, Cout: 2, Hker: 3, Wker: 3, Strid: 1})
	}
	for _, ws := range winoShapes {
		wg, err := dag.BuildWinogradConv(ws, 2, false)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range []int{4, 16, 64} {
			bel, err := pebble.Greedy(wg.Graph, s, pebble.Belady)
			if err != nil {
				return nil, nil, err
			}
			lru, err := pebble.Greedy(wg.Graph, s, pebble.LRU)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, TheoryRow{
				Algorithm: "winograd", Shape: ws, S: s,
				QOptimal: -1,
				QBelady:  bel.IO(),
				QLRU:     lru.IO(),
				Bound:    bounds.WinogradLowerBound(ws, 2, s),
			})
		}
	}

	t := report.New("Theory check: pebble-game I/O vs Theorems 4.12/4.20 (conv DAGs)",
		"algorithm", "shape", "S", "Q optimal", "Q belady", "Q lru", "lower bound")
	for _, r := range rows {
		opt := "-"
		if r.QOptimal >= 0 {
			opt = strconv.Itoa(r.QOptimal)
		}
		t.AddRowF(r.Algorithm, r.Shape.String(), r.S, opt, r.QBelady, r.QLRU, r.Bound)
	}
	return rows, t, nil
}
