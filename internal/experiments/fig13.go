package experiments

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/report"
	"repro/internal/shapes"
)

// Fig13Result is one bar triple of Figure 13: attained GFLOPS of our tuned
// dataflow, the TVM proxy and the library baseline for one convolution case
// on one architecture.
type Fig13Result struct {
	Case    string
	Arch    string
	Ours    float64
	TVM     float64
	Library float64
}

// Fig13 reproduces Figure 13: sensitivity across GPU architectures. The four
// cases of the paper (direct 28×28 and 112×112 stride 1, direct 112×112
// stride 2, Winograd 112×112), all Cin=512, Cout=128, 3×3 kernels, run on
// the 1080Ti (Pascal), Titan X (Maxwell) and GFX906 (Vega) models.
func Fig13(opts Options) ([]Fig13Result, *report.Table, error) {
	archs := []memsim.Arch{memsim.GTX1080Ti, memsim.TitanX, memsim.GFX906}
	budget := opts.budget(96, 40)

	type cse struct {
		name string
		s    shapes.ConvShape
		wino bool
	}
	mk := func(hin, mu int) shapes.ConvShape {
		return shapes.ConvShape{Batch: 1, Cin: 512, Hin: hin, Win: hin,
			Cout: 128, Hker: 3, Wker: 3, Strid: mu}
	}
	cases := []cse{
		{"direct 28x28 mu=1", mk(28, 1), false},
		{"direct 112x112 mu=1", mk(112, 1), false},
		{"direct 112x112 mu=2", mk(112, 2), false},
		{"winograd 112x112", mk(112, 1), true},
	}
	if opts.Quick {
		cases = cases[:2]
		archs = archs[:2]
	}

	var results []Fig13Result
	for _, c := range cases {
		for _, arch := range archs {
			var ours, tvm, lib float64
			if c.wino {
				base, err := conv.WinogradUnfusedDry(arch, c.s, 2)
				if err != nil {
					return nil, nil, err
				}
				lib = base.GFLOPS
				ot, err := tuneWinograd(arch, c.s, nil, budget, opts.seed())
				if err != nil {
					return nil, nil, err
				}
				ours = ot.BestM.GFLOPS
				full, err := autotune.NewSpace(c.s, arch, autotune.Winograd, 2, false)
				if err != nil {
					return nil, nil, err
				}
				topts := autotune.DefaultOptions()
				topts.Budget = budget
				topts.Patience = 0
				topts.Seed = opts.seed()
				topts.NoSeeds = true // the TVM proxy has no dataflow-design seeds
				topts.NoPrune = true // ... and no lower-bound oracle
				tt, err := autotune.Tune(full, autotune.WinogradMeasurer(arch, c.s), topts)
				if err != nil {
					return nil, nil, err
				}
				tvm = tt.BestM.GFLOPS
			} else {
				base, err := libraryDirect(arch, c.s)
				if err != nil {
					return nil, nil, err
				}
				lib = base.GFLOPS
				ot, err := tuneDirect(arch, c.s, nil, budget, opts.seed())
				if err != nil {
					return nil, nil, err
				}
				ours = ot.BestM.GFLOPS
				full, err := autotune.NewSpace(c.s, arch, autotune.Direct, 0, false)
				if err != nil {
					return nil, nil, err
				}
				topts := autotune.DefaultOptions()
				topts.Budget = budget
				topts.Patience = 0
				topts.Seed = opts.seed()
				topts.NoSeeds = true // the TVM proxy has no dataflow-design seeds
				topts.NoPrune = true // ... and no lower-bound oracle
				tt, err := autotune.Tune(full, autotune.DirectMeasurer(arch, c.s), topts)
				if err != nil {
					return nil, nil, err
				}
				tvm = tt.BestM.GFLOPS
			}
			results = append(results, Fig13Result{
				Case: c.name, Arch: arch.Name, Ours: ours, TVM: tvm, Library: lib,
			})
		}
	}
	t := report.New("Figure 13: architecture sensitivity (attained GFLOPS, Cin=512, Cout=128, 3x3)",
		"case", "arch", "ours", "TVM-proxy", "library", "ours/library")
	for _, r := range results {
		t.AddRowF(r.Case, r.Arch, r.Ours, r.TVM, r.Library,
			fmt.Sprintf("%.2f", r.Ours/r.Library))
	}
	return results, t, nil
}
