package experiments

import (
	"repro/internal/memsim"
	"repro/internal/models"
	"repro/internal/report"
)

// Fig12Result is one bar pair of Figure 12: simulated end-to-end convolution
// time of a CNN under our tuned dataflows and under the library baseline.
type Fig12Result struct {
	Model      string
	TunedMs    float64
	BaselineMs float64
	Speedup    float64
}

// Fig12 reproduces Figure 12 on the V100 model: for each CNN the total
// convolution-layer inference time under the library baseline (best of its
// algorithms per layer) and under our auto-tuned dataflows (best of tuned
// direct / tuned Winograd per layer).
func Fig12(opts Options) ([]Fig12Result, *report.Table, error) {
	arch := memsim.V100
	list := models.Figure12Models()
	if opts.Quick {
		list = list[:2]
	}
	budget := opts.budget(48, 12)

	var results []Fig12Result
	for _, m := range list {
		var base, tuned float64
		for _, layer := range m.Layers {
			b, tu, err := bestLayerSeconds(arch, layer.Shape, budget, opts.seed())
			if err != nil {
				return nil, nil, err
			}
			base += b * float64(layer.Repeat)
			tuned += tu * float64(layer.Repeat)
		}
		results = append(results, Fig12Result{
			Model: m.Name, TunedMs: tuned * 1e3, BaselineMs: base * 1e3,
			Speedup: base / tuned,
		})
	}
	t := report.New("Figure 12: end-to-end convolution time on CNN models (V100 model)",
		"model", "tuned (ms)", "library (ms)", "speedup")
	for _, r := range results {
		t.AddRowF(r.Model, r.TunedMs, r.BaselineMs, r.Speedup)
	}
	return results, t, nil
}
