package experiments

import (
	"strings"
	"testing"

	"repro/internal/report"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func renderOK(t *testing.T, tb *report.Table) {
	t.Helper()
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	if len(b.String()) == 0 {
		t.Fatal("empty table")
	}
}

func TestFig9Quick(t *testing.T) {
	results, tb, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	var above, total int
	var all []float64
	for _, r := range results {
		if r.Speedup <= 0 {
			t.Fatalf("nonpositive speedup: %+v", r)
		}
		total++
		all = append(all, r.Speedup)
		if r.Speedup > 1 {
			above++
		}
	}
	// The headline claim: the dataflow wins broadly (the paper, like us,
	// sees sub-1 cases at saturating shapes; the geomean must clearly win).
	if float64(above) < 0.5*float64(total) {
		t.Errorf("dataflow wins only %d/%d cases", above, total)
	}
	if gm := report.GeoMean(all); gm < 1.1 {
		t.Errorf("geomean speedup %v below 1.1", gm)
	}
	// The Winograd dataflow (fused vs library unfused) must win clearly.
	var wino []float64
	for _, r := range results {
		if r.Algorithm == "winograd" {
			wino = append(wino, r.Speedup)
		}
	}
	if gm := report.GeoMean(wino); gm < 1.2 {
		t.Errorf("winograd geomean speedup %v below 1.2", gm)
	}
}

func TestFig10Quick(t *testing.T) {
	results, tb, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	for _, r := range results {
		if r.Speedup <= 0.5 {
			t.Errorf("implausible batched speedup: %+v", r)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	res, tb, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	if res.Baseline <= 0 {
		t.Error("no baseline level")
	}
	final := func(c []float64) float64 {
		if len(c) == 0 {
			return 0
		}
		return c[len(c)-1]
	}
	// All methods improve over their starting point, and the tuned results
	// beat the library baseline.
	for name, curve := range map[string][]float64{
		"ate": res.ATE, "sa": res.SA, "ga": res.GA, "random": res.Random,
	} {
		if len(curve) == 0 {
			t.Fatalf("%s: empty curve", name)
		}
		if final(curve) < curve[0] {
			t.Errorf("%s: curve decreased overall", name)
		}
	}
	if final(res.ATE) < res.Baseline {
		t.Errorf("tuned ATE %v below library %v", final(res.ATE), res.Baseline)
	}
	// ATE's final result is at least on par with the other methods.
	if final(res.ATE) < 0.95*final(res.SA) || final(res.ATE) < 0.95*final(res.Random) {
		t.Errorf("ATE final %v clearly below competitors (sa=%v rnd=%v)",
			final(res.ATE), final(res.SA), final(res.Random))
	}
}

func TestTable2Quick(t *testing.T) {
	rows, tb, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	for _, r := range rows {
		if r.SizeATE >= r.SizeTVM {
			t.Errorf("%s: pruned space %d not smaller than full %d", r.Layer, r.SizeATE, r.SizeTVM)
		}
		if r.Ratio <= 0 || r.Ratio >= 1 {
			t.Errorf("%s: implausible pruning ratio %v", r.Layer, r.Ratio)
		}
		if r.GFLOPSATE <= 0 || r.GFLOPSTVM <= 0 {
			t.Errorf("%s: nonpositive GFLOPS", r.Layer)
		}
		// ATE must be competitive with the full-space search.
		if r.PerfRatio < 0.9 {
			t.Errorf("%s: ATE perf ratio %v below 0.9", r.Layer, r.PerfRatio)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	results, tb, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	for _, r := range results {
		if r.Speedup <= 0.8 {
			t.Errorf("%s: tuned dataflow much slower than library: %+v", r.Model, r)
		}
		if r.TunedMs <= 0 || r.BaselineMs <= 0 {
			t.Errorf("%s: degenerate times: %+v", r.Model, r)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	results, tb, err := Fig13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	for _, r := range results {
		if r.Ours <= 0 || r.TVM <= 0 || r.Library <= 0 {
			t.Fatalf("degenerate GFLOPS: %+v", r)
		}
		// Ours must beat the library on every architecture (the consistency
		// claim of Section 7.4) and at least match the TVM proxy closely.
		if r.Ours < r.Library {
			t.Errorf("%s/%s: ours %v below library %v", r.Case, r.Arch, r.Ours, r.Library)
		}
		if r.Ours < 0.9*r.TVM {
			t.Errorf("%s/%s: ours %v well below TVM proxy %v", r.Case, r.Arch, r.Ours, r.TVM)
		}
	}
}

func TestTheory(t *testing.T) {
	rows, tb, err := Theory(Options{})
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tb)
	for _, r := range rows {
		// Lower bound must hold for every legal schedule.
		if float64(r.QBelady) < r.Bound {
			t.Errorf("%v S=%d: greedy Q=%d below bound %v", r.Shape, r.S, r.QBelady, r.Bound)
		}
		if float64(r.QLRU) < r.Bound {
			t.Errorf("%v S=%d: LRU Q=%d below bound %v", r.Shape, r.S, r.QLRU, r.Bound)
		}
		if r.QOptimal >= 0 {
			if float64(r.QOptimal) < r.Bound {
				t.Errorf("%v S=%d: optimal Q=%d below bound %v", r.Shape, r.S, r.QOptimal, r.Bound)
			}
			if r.QOptimal > r.QBelady {
				t.Errorf("%v S=%d: optimal %d above greedy %d", r.Shape, r.S, r.QOptimal, r.QBelady)
			}
		}
	}
}
