package experiments

import (
	"repro/internal/memsim"
	"repro/internal/report"
	"repro/internal/shapes"
)

// Fig10Result is one bar of Figure 10: the batched direct-convolution
// speedup for a given input size and batch size.
type Fig10Result struct {
	HinWin  int
	Batch   int
	Speedup float64
}

// Fig10 reproduces Figure 10: relative speedup of the tuned dataflow over
// the library baseline for batched direct convolution on the 1080Ti model,
// with Hin=Win ∈ {14, 56, 112}, Cout=128, Cin=256, 3×3 kernels, stride 1 and
// batch sizes 32, 64, 128.
func Fig10(opts Options) ([]Fig10Result, *report.Table, error) {
	arch := memsim.GTX1080Ti
	sizes := []int{14, 56, 112}
	batches := []int{32, 64, 128}
	if opts.Quick {
		sizes = []int{14, 56}
		batches = []int{32, 64}
	}
	budget := opts.budget(64, 24)

	var results []Fig10Result
	for _, hin := range sizes {
		for _, batch := range batches {
			s := shapes.ConvShape{
				Batch: batch, Cin: 256, Hin: hin, Win: hin,
				Cout: 128, Hker: 3, Wker: 3, Strid: 1,
			}
			lib, err := libraryDirect(arch, s)
			if err != nil {
				return nil, nil, err
			}
			tuned, err := tuneDirect(arch, s, nil, budget, opts.seed())
			if err != nil {
				return nil, nil, err
			}
			results = append(results, Fig10Result{hin, batch, lib.Seconds / tuned.BestM.Seconds})
		}
	}
	t := report.New("Figure 10: batched direct convolution speedup (1080Ti model, Cin=256, Cout=128, 3x3, stride 1)",
		"Hin=Win", "batch", "speedup")
	for _, r := range results {
		t.AddRowF(r.HinWin, r.Batch, r.Speedup)
	}
	return results, t, nil
}
