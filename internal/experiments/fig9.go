package experiments

import (
	"fmt"

	"repro/internal/conv"
	"repro/internal/memsim"
	"repro/internal/report"
	"repro/internal/shapes"
)

// Fig9Result holds one panel row of Figure 9: the relative speedup of the
// tuned dataflow over the library baseline for one (algorithm, stride, Cout,
// Hin) point.
type Fig9Result struct {
	Algorithm string // "direct" or "winograd"
	Stride    int
	Cout      int
	HinWin    int
	Speedup   float64
}

// Fig9 reproduces Figure 9: relative speedup of the I/O-optimal dataflow
// (with auto-tuning) over the library baseline on the 1080Ti model, for the
// direct convolution at strides 1, 2, 4 and for the Winograd algorithm, over
// a grid of input sizes and output-channel counts. All convolutions use 3×3
// kernels and Cin = 256, as in the paper.
func Fig9(opts Options) ([]Fig9Result, *report.Table, error) {
	arch := memsim.GTX1080Ti
	sizes := []int{14, 56, 112, 196, 224}
	couts := []int{128, 256, 512, 1024}
	if opts.Quick {
		sizes = []int{56, 112}
		couts = []int{128, 512}
	}
	budget := opts.budget(64, 24)

	var results []Fig9Result
	add := func(algo string, mu int, cout, hin int, speedup float64) {
		results = append(results, Fig9Result{algo, mu, cout, hin, speedup})
	}

	for _, mu := range []int{1, 2, 4} {
		for _, cout := range couts {
			for _, hin := range sizes {
				s := shapes.ConvShape{
					Batch: 1, Cin: 256, Hin: hin, Win: hin,
					Cout: cout, Hker: 3, Wker: 3, Strid: mu,
				}
				lib, err := libraryDirect(arch, s)
				if err != nil {
					return nil, nil, err
				}
				tuned, err := tuneDirect(arch, s, nil, budget, opts.seed())
				if err != nil {
					return nil, nil, err
				}
				add("direct", mu, cout, hin, lib.Seconds/tuned.BestM.Seconds)
			}
		}
	}
	for _, cout := range couts {
		for _, hin := range sizes {
			s := shapes.ConvShape{
				Batch: 1, Cin: 256, Hin: hin, Win: hin,
				Cout: cout, Hker: 3, Wker: 3, Strid: 1,
			}
			base, err := conv.WinogradUnfusedDry(arch, s, 2)
			if err != nil {
				return nil, nil, err
			}
			tuned, err := tuneWinograd(arch, s, nil, budget, opts.seed())
			if err != nil {
				return nil, nil, err
			}
			add("winograd", 1, cout, hin, base.Seconds/tuned.BestM.Seconds)
		}
	}

	t := report.New("Figure 9: dataflow speedup over library baseline (1080Ti model, Cin=256, 3x3)",
		"algorithm", "stride", "Cout", "Hin=Win", "speedup")
	for _, r := range results {
		t.AddRowF(r.Algorithm, r.Stride, r.Cout, r.HinWin, r.Speedup)
	}
	var speeds []float64
	for _, r := range results {
		speeds = append(speeds, r.Speedup)
	}
	t.AddRow("geomean", "", "", "", fmt.Sprintf("%.2f", report.GeoMean(speeds)))
	return results, t, nil
}
