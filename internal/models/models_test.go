package models

import "testing"

func allModels() []Model {
	return append(Figure12Models(), AlexNet())
}

func TestModelsValidate(t *testing.T) {
	for _, m := range allModels() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestFigure12ModelOrder(t *testing.T) {
	want := []string{"SqueezeNet", "Vgg-19", "ResNet-18", "ResNet-34", "Inception-v3"}
	got := Figure12Models()
	if len(got) != len(want) {
		t.Fatalf("got %d models want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Errorf("model[%d]=%s want %s", i, got[i].Name, want[i])
		}
	}
}

func TestAlexNetMatchesTable2(t *testing.T) {
	m := AlexNet()
	c1 := m.Layers[0].Shape
	if c1.Cin != 3 || c1.Hin != 227 || c1.Cout != 96 || c1.Hker != 11 || c1.Strid != 4 || c1.Pad != 0 {
		t.Errorf("conv1 mismatch with Table 2: %v", c1)
	}
	c2 := m.Layers[1].Shape
	if c2.Cin != 96 || c2.Hin != 27 || c2.Cout != 256 || c2.Hker != 5 || c2.Strid != 1 || c2.Pad != 2 {
		t.Errorf("conv2 mismatch with Table 2: %v", c2)
	}
	c3 := m.Layers[2].Shape
	if c3.Cin != 256 || c3.Hin != 13 || c3.Cout != 384 || c3.Hker != 3 {
		t.Errorf("conv3 mismatch with Table 2: %v", c3)
	}
	c4 := m.Layers[3].Shape
	if c4.Cin != 384 || c4.Cout != 256 {
		t.Errorf("conv4 mismatch with Table 2: %v", c4)
	}
}

func TestResNetDepths(t *testing.T) {
	count := func(m Model) int {
		n := 0
		for _, l := range m.Layers {
			// Count only the 3x3/7x7 "real" convs (projections are 1x1).
			if l.Shape.Hker > 1 {
				n += l.Repeat
			}
		}
		return n
	}
	// ResNet-18: 1 stem + 2×2 convs per stage × 4 stages = 17.
	if got := count(ResNet18()); got != 17 {
		t.Errorf("ResNet-18 has %d >1x1 convs, want 17", got)
	}
	// ResNet-34: 1 stem + 2×[3,4,6,3] block convs = 33.
	if got := count(ResNet34()); got != 33 {
		t.Errorf("ResNet-34 has %d >1x1 convs, want 33", got)
	}
}

func TestVGG19Has16Convs(t *testing.T) {
	n := 0
	for _, l := range VGG19().Layers {
		n += l.Repeat
	}
	if n != 16 {
		t.Errorf("VGG-19 has %d convs, want 16", n)
	}
}

func TestSqueezeNetFireStructure(t *testing.T) {
	m := SqueezeNet()
	// 1 stem + 8 fires × 3 convs + conv10.
	n := 0
	for _, l := range m.Layers {
		n += l.Repeat
	}
	if n != 1+8*3+1 {
		t.Errorf("SqueezeNet has %d convs, want %d", n, 1+8*3+1)
	}
}

func TestTotalFLOPsOrdering(t *testing.T) {
	// VGG-19 is by far the heaviest of the five; SqueezeNet the lightest
	// non-trivial one. This pins the relative cost structure Figure 12
	// depends on.
	vgg := VGG19().TotalFLOPs()
	sq := SqueezeNet().TotalFLOPs()
	r18 := ResNet18().TotalFLOPs()
	r34 := ResNet34().TotalFLOPs()
	if !(vgg > r34 && r34 > r18 && r18 > sq) {
		t.Errorf("FLOPs ordering unexpected: vgg=%d r34=%d r18=%d sq=%d", vgg, r34, r18, sq)
	}
	// Sanity magnitudes (direct-conv FLOPs, single image): VGG-19 ~39 GFLOP,
	// ResNet-18 ~3.6 GFLOP.
	if vgg < 30e9 || vgg > 50e9 {
		t.Errorf("VGG-19 FLOPs %d outside expected band", vgg)
	}
	if r18 < 2e9 || r18 > 6e9 {
		t.Errorf("ResNet-18 FLOPs %d outside expected band", r18)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := Model{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Error("empty model accepted")
	}
	bad = Model{Name: "badrepeat", Layers: []Layer{{"l", conv(1, 8, 1, 3, 1, 0), 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero repeat accepted")
	}
}
