package models

import "testing"

func TestMobileNetValidates(t *testing.T) {
	m := MobileNetV1()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// MobileNet v1 is famously ~0.57 GFLOP (x2 for MAC->flops: ~1.1e9).
	fl := m.TotalFLOPs()
	if fl < 0.8e9 || fl > 1.6e9 {
		t.Errorf("MobileNet FLOPs %d outside expected band", fl)
	}
}

func TestEffectiveShapeFoldsGroups(t *testing.T) {
	l := GroupedLayer{Name: "dw", Shape: conv(64, 56, 64, 3, 1, 1), Groups: 64, Repeat: 1}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	e := l.EffectiveShape()
	if e.Batch != 64 || e.Cin != 1 || e.Cout != 1 {
		t.Errorf("effective shape %v, want batch=64 cin=cout=1", e)
	}
	// Depthwise flops are 1/64 of the dense layer's.
	dense := conv(64, 56, 64, 3, 1, 1)
	if got, want := l.FLOPs(), dense.FLOPs()/64; got != want {
		t.Errorf("grouped FLOPs %d want %d", got, want)
	}
}

func TestGroupedValidateCatchesErrors(t *testing.T) {
	bad := GroupedLayer{Name: "x", Shape: conv(6, 8, 9, 3, 1, 1), Groups: 4, Repeat: 1}
	if err := bad.Validate(); err == nil {
		t.Error("non-divisible groups accepted")
	}
	bad = GroupedLayer{Name: "x", Shape: conv(8, 8, 8, 3, 1, 1), Groups: 0, Repeat: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero groups accepted")
	}
	empty := GroupedModel{Name: "none"}
	if err := empty.Validate(); err == nil {
		t.Error("empty model accepted")
	}
}

func TestMobileNetDepthwiseShare(t *testing.T) {
	// Pointwise 1x1 convs dominate MobileNet's flops; depthwise layers are
	// cheap — the property that motivated the architecture.
	m := MobileNetV1()
	var dwFlops, pwFlops int64
	for _, l := range m.Layers {
		if l.Groups > 1 {
			dwFlops += l.FLOPs()
		} else if l.Shape.Hker == 1 {
			pwFlops += l.FLOPs()
		}
	}
	if dwFlops >= pwFlops {
		t.Errorf("depthwise flops %d not below pointwise %d", dwFlops, pwFlops)
	}
}
