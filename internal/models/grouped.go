package models

import (
	"fmt"

	"repro/internal/shapes"
)

// Grouped convolutions (including the depthwise layers of MobileNet, one of
// the architectures the paper's introduction motivates) split the channels
// into G independent convolutions of Cin/G -> Cout/G channels. For the
// simulator this is exactly equivalent to batching: G independent small
// convolutions launched together. EffectiveShape folds the groups into the
// batch dimension, which preserves I/O volume, flop count and block-level
// parallelism — the three quantities the time model consumes.

// GroupedLayer is a convolution layer with channel groups.
type GroupedLayer struct {
	Name   string
	Shape  shapes.ConvShape // full-layer shape (total channels)
	Groups int
	Repeat int
}

// Validate checks divisibility and the underlying shape.
func (l GroupedLayer) Validate() error {
	if l.Groups < 1 {
		return fmt.Errorf("models: %s: groups %d < 1", l.Name, l.Groups)
	}
	if l.Shape.Cin%l.Groups != 0 || l.Shape.Cout%l.Groups != 0 {
		return fmt.Errorf("models: %s: channels (%d,%d) not divisible by %d groups",
			l.Name, l.Shape.Cin, l.Shape.Cout, l.Groups)
	}
	if l.Repeat < 1 {
		return fmt.Errorf("models: %s: repeat %d < 1", l.Name, l.Repeat)
	}
	return l.EffectiveShape().Validate()
}

// GroupedShape returns the layer's shape with its group count threaded
// through: full channel extents, Groups set. This is what the tuner
// consumes — group-aware spaces tile one group's channels and the counts
// divide by G, so a depthwise layer costs 1/G of its dense twin instead of
// being silently tuned as the dense conv.
func (l GroupedLayer) GroupedShape() shapes.ConvShape {
	s := l.Shape
	s.Groups = l.Groups
	return s
}

// EffectiveShape returns the batch-folded equivalent: G groups of a
// (Cin/G -> Cout/G) convolution become G batch entries of that small
// convolution in a single launch. It preserves I/O volume and flop count —
// useful as a library-baseline reference — but it erases the layer's real
// channel geometry (Winograd/FFT eligibility, per-group tiling), so the
// tuner uses GroupedShape instead.
func (l GroupedLayer) EffectiveShape() shapes.ConvShape {
	s := l.Shape
	s.Batch = s.Batch * l.Groups
	s.Cin /= l.Groups
	s.Cout /= l.Groups
	return s
}

// FLOPs of the grouped layer (1/G of the ungrouped layer's).
func (l GroupedLayer) FLOPs() int64 {
	return l.EffectiveShape().FLOPs() * int64(l.Repeat)
}

// GroupedModel is a named list of grouped layers (Groups == 1 entries are
// ordinary convolutions).
type GroupedModel struct {
	Name   string
	Layers []GroupedLayer
}

// Validate checks every layer.
func (m GroupedModel) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("models: %s has no layers", m.Name)
	}
	for _, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalFLOPs sums over all layers.
func (m GroupedModel) TotalFLOPs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.FLOPs()
	}
	return t
}

// MobileNetV1 returns the convolution layers of MobileNet v1 (width 1.0):
// a strided stem plus thirteen depthwise-separable blocks, each a depthwise
// 3×3 (Groups = channels) followed by a pointwise 1×1.
func MobileNetV1() GroupedModel {
	plain := func(name string, cin, hw, cout, k, stride, pad, repeat int) GroupedLayer {
		return GroupedLayer{Name: name, Shape: conv(cin, hw, cout, k, stride, pad), Groups: 1, Repeat: repeat}
	}
	dw := func(name string, ch, hw, stride, repeat int) GroupedLayer {
		return GroupedLayer{Name: name, Shape: conv(ch, hw, ch, 3, stride, 1), Groups: ch, Repeat: repeat}
	}
	return GroupedModel{Name: "MobileNet-v1", Layers: []GroupedLayer{
		plain("conv1", 3, 224, 32, 3, 2, 1, 1),
		dw("dw1", 32, 112, 1, 1), plain("pw1", 32, 112, 64, 1, 1, 0, 1),
		dw("dw2", 64, 112, 2, 1), plain("pw2", 64, 56, 128, 1, 1, 0, 1),
		dw("dw3", 128, 56, 1, 1), plain("pw3", 128, 56, 128, 1, 1, 0, 1),
		dw("dw4", 128, 56, 2, 1), plain("pw4", 128, 28, 256, 1, 1, 0, 1),
		dw("dw5", 256, 28, 1, 1), plain("pw5", 256, 28, 256, 1, 1, 0, 1),
		dw("dw6", 256, 28, 2, 1), plain("pw6", 256, 14, 512, 1, 1, 0, 1),
		dw("dw7_11", 512, 14, 1, 5), plain("pw7_11", 512, 14, 512, 1, 1, 0, 5),
		dw("dw12", 512, 14, 2, 1), plain("pw12", 512, 7, 1024, 1, 1, 0, 1),
		dw("dw13", 1024, 7, 1, 1), plain("pw13", 1024, 7, 1024, 1, 1, 0, 1),
	}}
}
