// Package models provides the convolution-layer inventories of the CNNs the
// paper evaluates end-to-end (Figure 12: SqueezeNet, VGG-19, ResNet-18,
// ResNet-34, Inception-v3) plus AlexNet, whose layers parameterize Table 2
// and Figure 11. An inventory lists every convolution layer's shape with a
// repetition count; non-convolution layers are identical under both systems
// being compared and therefore excluded, exactly as in the paper's
// convolution-focused measurement.
package models

import (
	"fmt"

	"repro/internal/shapes"
)

// Layer is one convolution layer of a model, possibly repeated.
type Layer struct {
	Name   string
	Shape  shapes.ConvShape
	Repeat int // how many times this exact shape occurs in the network
}

// Model is a named list of convolution layers.
type Model struct {
	Name   string
	Layers []Layer
}

// Validate checks every layer shape.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("models: %s has no layers", m.Name)
	}
	for _, l := range m.Layers {
		if l.Repeat < 1 {
			return fmt.Errorf("models: %s/%s repeat %d < 1", m.Name, l.Name, l.Repeat)
		}
		if err := l.Shape.Validate(); err != nil {
			return fmt.Errorf("models: %s/%s: %w", m.Name, l.Name, err)
		}
	}
	return nil
}

// TotalFLOPs sums the direct-algorithm FLOPs over all layers.
func (m Model) TotalFLOPs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.Shape.FLOPs() * int64(l.Repeat)
	}
	return t
}

func conv(cin, hw, cout, k, stride, pad int) shapes.ConvShape {
	return shapes.ConvShape{
		Batch: 1, Cin: cin, Hin: hw, Win: hw, Cout: cout,
		Hker: k, Wker: k, Strid: stride, Pad: pad,
	}
}

// AlexNet returns the five AlexNet convolution layers; conv1–conv4 match the
// parameters of the paper's Table 2.
func AlexNet() Model {
	return Model{Name: "AlexNet", Layers: []Layer{
		{"conv1", conv(3, 227, 96, 11, 4, 0), 1},
		{"conv2", conv(96, 27, 256, 5, 1, 2), 1},
		{"conv3", conv(256, 13, 384, 3, 1, 1), 1},
		{"conv4", conv(384, 13, 256, 3, 1, 1), 1},
		{"conv5", conv(256, 13, 256, 3, 1, 1), 1},
	}}
}

// VGG19 returns the sixteen 3×3 convolution layers of VGG-19.
func VGG19() Model {
	return Model{Name: "Vgg-19", Layers: []Layer{
		{"conv1_1", conv(3, 224, 64, 3, 1, 1), 1},
		{"conv1_2", conv(64, 224, 64, 3, 1, 1), 1},
		{"conv2_1", conv(64, 112, 128, 3, 1, 1), 1},
		{"conv2_2", conv(128, 112, 128, 3, 1, 1), 1},
		{"conv3_1", conv(128, 56, 256, 3, 1, 1), 1},
		{"conv3_x", conv(256, 56, 256, 3, 1, 1), 3},
		{"conv4_1", conv(256, 28, 512, 3, 1, 1), 1},
		{"conv4_x", conv(512, 28, 512, 3, 1, 1), 3},
		{"conv5_x", conv(512, 14, 512, 3, 1, 1), 4},
	}}
}

// ResNet18 returns the convolution layers of ResNet-18 (basic blocks,
// including the 1×1 projection shortcuts).
func ResNet18() Model {
	return Model{Name: "ResNet-18", Layers: []Layer{
		{"conv1", conv(3, 224, 64, 7, 2, 3), 1},
		{"stage1", conv(64, 56, 64, 3, 1, 1), 4},
		{"stage2_down", conv(64, 56, 128, 3, 2, 1), 1},
		{"stage2_proj", conv(64, 56, 128, 1, 2, 0), 1},
		{"stage2", conv(128, 28, 128, 3, 1, 1), 3},
		{"stage3_down", conv(128, 28, 256, 3, 2, 1), 1},
		{"stage3_proj", conv(128, 28, 256, 1, 2, 0), 1},
		{"stage3", conv(256, 14, 256, 3, 1, 1), 3},
		{"stage4_down", conv(256, 14, 512, 3, 2, 1), 1},
		{"stage4_proj", conv(256, 14, 512, 1, 2, 0), 1},
		{"stage4", conv(512, 7, 512, 3, 1, 1), 3},
	}}
}

// ResNet34 returns the convolution layers of ResNet-34 ([3,4,6,3] basic
// blocks).
func ResNet34() Model {
	return Model{Name: "ResNet-34", Layers: []Layer{
		{"conv1", conv(3, 224, 64, 7, 2, 3), 1},
		{"stage1", conv(64, 56, 64, 3, 1, 1), 6},
		{"stage2_down", conv(64, 56, 128, 3, 2, 1), 1},
		{"stage2_proj", conv(64, 56, 128, 1, 2, 0), 1},
		{"stage2", conv(128, 28, 128, 3, 1, 1), 7},
		{"stage3_down", conv(128, 28, 256, 3, 2, 1), 1},
		{"stage3_proj", conv(128, 28, 256, 1, 2, 0), 1},
		{"stage3", conv(256, 14, 256, 3, 1, 1), 11},
		{"stage4_down", conv(256, 14, 512, 3, 2, 1), 1},
		{"stage4_proj", conv(256, 14, 512, 1, 2, 0), 1},
		{"stage4", conv(512, 7, 512, 3, 1, 1), 5},
	}}
}

// SqueezeNet returns the convolution layers of SqueezeNet 1.0: the stem plus
// eight fire modules (squeeze 1×1, expand 1×1 and expand 3×3 each).
func SqueezeNet() Model {
	fire := func(name string, in, hw, sq, ex int) []Layer {
		return []Layer{
			{name + "_squeeze", conv(in, hw, sq, 1, 1, 0), 1},
			{name + "_expand1", conv(sq, hw, ex, 1, 1, 0), 1},
			{name + "_expand3", conv(sq, hw, ex, 3, 1, 1), 1},
		}
	}
	layers := []Layer{{"conv1", conv(3, 224, 96, 7, 2, 0), 1}}
	layers = append(layers, fire("fire2", 96, 55, 16, 64)...)
	layers = append(layers, fire("fire3", 128, 55, 16, 64)...)
	layers = append(layers, fire("fire4", 128, 55, 32, 128)...)
	layers = append(layers, fire("fire5", 256, 27, 32, 128)...)
	layers = append(layers, fire("fire6", 256, 27, 48, 192)...)
	layers = append(layers, fire("fire7", 384, 27, 48, 192)...)
	layers = append(layers, fire("fire8", 384, 27, 64, 256)...)
	layers = append(layers, fire("fire9", 512, 13, 64, 256)...)
	layers = append(layers, Layer{"conv10", conv(512, 13, 1000, 1, 1, 0), 1})
	return Model{Name: "SqueezeNet", Layers: layers}
}

// InceptionV3 returns the convolution layers of Inception-v3's stem and a
// representative inventory of its inception blocks (square-kernel branches;
// the 1×7/7×1 factorized pairs are accounted as their arithmetic-equivalent
// square shapes since the simulator treats kernels by volume).
func InceptionV3() Model {
	layers := []Layer{
		{"stem1", conv(3, 299, 32, 3, 2, 0), 1},
		{"stem2", conv(32, 149, 32, 3, 1, 0), 1},
		{"stem3", conv(32, 147, 64, 3, 1, 1), 1},
		{"stem4", conv(64, 73, 80, 1, 1, 0), 1},
		{"stem5", conv(80, 73, 192, 3, 1, 0), 1},
		// Three Inception-A blocks at 35×35.
		{"a_1x1", conv(192, 35, 64, 1, 1, 0), 3},
		{"a_5x5r", conv(192, 35, 48, 1, 1, 0), 3},
		{"a_5x5", conv(48, 35, 64, 5, 1, 2), 3},
		{"a_3x3r", conv(192, 35, 64, 1, 1, 0), 3},
		{"a_3x3a", conv(64, 35, 96, 3, 1, 1), 3},
		{"a_3x3b", conv(96, 35, 96, 3, 1, 1), 3},
		{"a_pool", conv(192, 35, 32, 1, 1, 0), 3},
		// Reduction-A.
		{"ra_3x3", conv(288, 35, 384, 3, 2, 0), 1},
		{"ra_3x3r", conv(288, 35, 64, 1, 1, 0), 1},
		{"ra_3x3a", conv(64, 35, 96, 3, 1, 1), 1},
		{"ra_3x3b", conv(96, 35, 96, 3, 2, 0), 1},
		// Four Inception-B blocks at 17×17 (7×7 factorized branches).
		{"b_1x1", conv(768, 17, 192, 1, 1, 0), 4},
		{"b_7x7r", conv(768, 17, 128, 1, 1, 0), 4},
		{"b_7x7", conv(128, 17, 192, 7, 1, 3), 4},
		{"b_d7x7r", conv(768, 17, 128, 1, 1, 0), 4},
		{"b_d7x7a", conv(128, 17, 128, 7, 1, 3), 4},
		{"b_d7x7b", conv(128, 17, 192, 7, 1, 3), 4},
		{"b_pool", conv(768, 17, 192, 1, 1, 0), 4},
		// Reduction-B.
		{"rb_3x3r", conv(768, 17, 192, 1, 1, 0), 1},
		{"rb_3x3", conv(192, 17, 320, 3, 2, 0), 1},
		{"rb_7x7r", conv(768, 17, 192, 1, 1, 0), 1},
		{"rb_7x7", conv(192, 17, 192, 7, 1, 3), 1},
		{"rb_3x3b", conv(192, 17, 192, 3, 2, 0), 1},
		// Two Inception-C blocks at 8×8.
		{"c_1x1", conv(1280, 8, 320, 1, 1, 0), 2},
		{"c_3x3r", conv(1280, 8, 384, 1, 1, 0), 2},
		{"c_3x3", conv(384, 8, 384, 3, 1, 1), 4},
		{"c_d3x3r", conv(1280, 8, 448, 1, 1, 0), 2},
		{"c_d3x3a", conv(448, 8, 384, 3, 1, 1), 2},
		{"c_d3x3b", conv(384, 8, 384, 3, 1, 1), 4},
		{"c_pool", conv(1280, 8, 192, 1, 1, 0), 2},
	}
	return Model{Name: "Inception-v3", Layers: layers}
}

// Figure12Models lists the five end-to-end models in the paper's order.
func Figure12Models() []Model {
	return []Model{SqueezeNet(), VGG19(), ResNet18(), ResNet34(), InceptionV3()}
}
