package models

import "repro/internal/autotune"

// This file is the shared network-fixture seam: every harness that feeds a
// model inventory to the network tuner — the root benchmarks, the example
// programs, the service's end-to-end suite — converts through here instead
// of hand-rolling its own Layer -> NetworkLayer loop over a duplicated
// table.

// NetworkLayers converts the model's inventory into the network tuner's
// request type.
func (m Model) NetworkLayers() []autotune.NetworkLayer {
	out := make([]autotune.NetworkLayer, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = autotune.NetworkLayer{Name: l.Name, Shape: l.Shape, Repeat: l.Repeat}
	}
	return out
}

// NetworkLayers converts a grouped model's inventory into the network
// tuner's request type. Each layer keeps its real channel geometry with
// Groups threaded through (GroupedShape) — the old batch-folding
// (EffectiveShape) silently retuned depthwise layers as dense convolutions
// of the folded shape, hiding their group structure from the space builder,
// the bounds and the per-layer kernel choice.
func (m GroupedModel) NetworkLayers() []autotune.NetworkLayer {
	out := make([]autotune.NetworkLayer, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = autotune.NetworkLayer{Name: l.Name, Shape: l.GroupedShape(), Repeat: l.Repeat}
	}
	return out
}
