package repro

import (
	"math"
	"testing"
)

func testLayer(t *testing.T) Shape {
	t.Helper()
	s, err := NewShape(1, 32, 28, 64, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewShapeValidates(t *testing.T) {
	if _, err := NewShape(0, 3, 28, 8, 3, 1, 0); err == nil {
		t.Error("invalid shape accepted")
	}
	s, err := NewShape(2, 3, 28, 8, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hout() != 14 {
		t.Errorf("Hout=%d want 14", s.Hout())
	}
}

func TestArchitectures(t *testing.T) {
	if len(Architectures()) < 4 {
		t.Error("catalog too small")
	}
	if _, err := ArchByName("V100"); err != nil {
		t.Error(err)
	}
	if _, err := ArchByName("bogus"); err == nil {
		t.Error("bogus arch accepted")
	}
}

func TestBoundsAndDataflowConsistency(t *testing.T) {
	s := testLayer(t)
	for _, fastMem := range []int{2048, 8192} {
		lb := LowerBoundDirect(s, fastMem)
		df := DataflowIODirect(s, fastMem, 1)
		if lb <= 0 || df <= 0 {
			t.Fatalf("degenerate values lb=%v df=%v", lb, df)
		}
		if df < lb {
			t.Errorf("S=%d: dataflow I/O %v below lower bound %v", fastMem, df, lb)
		}
		wlb := LowerBoundWinograd(s, 2, fastMem)
		wdf := DataflowIOWinograd(s, 2, fastMem, 1)
		if wdf < wlb {
			t.Errorf("S=%d: winograd dataflow I/O %v below bound %v", fastMem, wdf, wlb)
		}
	}
}

func TestOptimalTile(t *testing.T) {
	s := testLayer(t)
	tile := OptimalTileDirect(s, 4096, 1)
	if tile.X < 1 || tile.Y < 1 || tile.Z < 1 {
		t.Fatalf("bad tile %+v", tile)
	}
	if gap := tile.OptimalityGap(s.R()); gap > 0.3 {
		t.Errorf("tile %+v far from optimality condition: gap %v", tile, gap)
	}
}

func TestRunDirectAndVerify(t *testing.T) {
	arch, _ := ArchByName("1080Ti")
	s := testLayer(t)
	in, ker := RandomOperands(s, 42)
	cfg := DefaultDirectConfig(arch, s)
	res, err := RunDirect(arch, s, cfg, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(s, res, in, ker, 2e-3); err != nil {
		t.Error(err)
	}
	if res.Counts.GlobalIO() <= 0 || res.Seconds <= 0 {
		t.Errorf("degenerate result: %+v", res.Counts)
	}
	// Measured I/O must respect the theory.
	if float64(res.Counts.GlobalIO()) < LowerBoundDirect(s, cfg.SharedPerBlock) {
		t.Error("measured I/O below the lower bound")
	}
}

func TestRunWinogradAndVerify(t *testing.T) {
	arch, _ := ArchByName("V100")
	s := testLayer(t)
	in, ker := RandomOperands(s, 43)
	cfg := DefaultWinogradConfig(arch, s, 2)
	res, err := RunWinograd(arch, s, cfg, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(s, res, in, ker, 2e-3); err != nil {
		t.Error(err)
	}
}

func TestMeasureMatchesRun(t *testing.T) {
	arch, _ := ArchByName("TitanX")
	s := testLayer(t)
	in, ker := RandomOperands(s, 44)
	cfg := DefaultDirectConfig(arch, s)
	wet, err := RunDirect(arch, s, cfg, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	dry, err := MeasureDirect(arch, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wet.Counts != dry.Counts {
		t.Errorf("dry counts %v != wet %v", dry.Counts, wet.Counts)
	}
	if math.Abs(wet.Seconds-dry.Seconds) > 1e-12 {
		t.Errorf("dry time %v != wet %v", dry.Seconds, wet.Seconds)
	}
}

func TestLibraryBaselines(t *testing.T) {
	arch, _ := ArchByName("V100")
	s := testLayer(t)
	lib, err := MeasureLibraryDirect(arch, s)
	if err != nil {
		t.Fatal(err)
	}
	wino, err := MeasureLibraryWinograd(arch, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Seconds <= 0 || wino.Seconds <= 0 {
		t.Error("degenerate baseline times")
	}
	// The tuned dataflow must beat the library baseline on this layer.
	tuned, err := TuneDirect(arch, s, TuneOptions{Budget: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.BestM.Seconds > lib.Seconds {
		t.Errorf("tuned %v slower than library %v", tuned.BestM.Seconds, lib.Seconds)
	}
}

func TestTuneWinogradFacade(t *testing.T) {
	arch, _ := ArchByName("V100")
	s := testLayer(t)
	tr, err := TuneWinograd(arch, s, TuneOptions{Budget: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.BestM.GFLOPS <= 0 {
		t.Error("no winograd config found")
	}
	if tr.Best.WinogradE != 2 && tr.Best.WinogradE != 4 {
		t.Errorf("unexpected e=%d", tr.Best.WinogradE)
	}
}

func TestAnalyzeFacade(t *testing.T) {
	arch, _ := ArchByName("1080Ti")
	s := testLayer(t)
	a, err := Analyze(arch, s, TuneOptions{Budget: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup() <= 0 {
		t.Errorf("degenerate speedup %v", a.Speedup())
	}
	if len(a.Reports) == 0 {
		t.Fatal("no algorithm reports")
	}
}

func TestVerifyRejectsCountOnly(t *testing.T) {
	arch, _ := ArchByName("V100")
	s := testLayer(t)
	in, ker := RandomOperands(s, 45)
	res, err := MeasureDirect(arch, s, DefaultDirectConfig(arch, s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(s, res, in, ker, 1e-3); err == nil {
		t.Error("Verify accepted a count-only result")
	}
}
