package repro

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/models"
)

// DescribeNetwork must be the exact inverse of NetworkLayers: a model's
// inventory survives the trip onto the wire and back untouched.
func TestNetworkDescriptionRoundTrip(t *testing.T) {
	layers := models.ResNet18().NetworkLayers()
	desc := DescribeNetwork("V100", layers)
	data, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetworkDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	back := parsed.NetworkLayers()
	if len(back) != len(layers) {
		t.Fatalf("round trip changed layer count: %d != %d", len(back), len(layers))
	}
	for i := range layers {
		if back[i] != layers[i] {
			t.Errorf("layer %d changed: %+v != %+v", i, back[i], layers[i])
		}
	}
	if parsed.Arch != "V100" {
		t.Errorf("arch changed: %q", parsed.Arch)
	}
}

// Omitted wire fields fill in like NewShape's common case.
func TestNetworkDescriptionDefaults(t *testing.T) {
	d, err := ParseNetworkDescription([]byte(`{"arch":"V100","layers":[{"cin":16,"hin":28,"cout":32,"hker":3,"pad":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	l := d.Layers[0]
	if l.Batch != 1 || l.Win != 28 || l.Wker != 3 || l.Stride != 1 || l.Repeat != 1 {
		t.Errorf("defaults not filled: %+v", l)
	}
	if l.Name != "layer0" {
		t.Errorf("default name %q, want layer0", l.Name)
	}
}

func TestNetworkDescriptionRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"missing arch", `{"layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]}`, "missing arch"},
		{"no layers", `{"arch":"V100","layers":[]}`, "no layers"},
		{"unknown field", `{"arch":"V100","layres":[]}`, "unknown field"},
		{"trailing data", `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]} extra`, "trailing data"},
		{"negative dim", `{"arch":"V100","layers":[{"cin":-8,"hin":8,"cout":8,"hker":3}]}`, "outside"},
		{"oversized dim", `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"repeat":70000}]}`, "outside"},
		{"invalid shape", `{"arch":"V100","layers":[{"cin":8,"hin":1,"cout":8,"hker":3}]}`, "layer"},
		{"oversized budget", `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}],"options":{"budget":100000}}`, "budget"},
		{"not json", `hello`, "network description"},
	}
	for _, c := range cases {
		_, err := ParseNetworkDescription([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// The layer-count cap guards the tuner from unbounded requests.
func TestNetworkDescriptionLayerCap(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"arch":"V100","layers":[`)
	for i := 0; i <= MaxDescriptionLayers; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}`)
	}
	b.WriteString(`]}`)
	if _, err := ParseNetworkDescription([]byte(b.String())); err == nil {
		t.Fatalf("accepted %d layers, cap is %d", MaxDescriptionLayers+1, MaxDescriptionLayers)
	}
}

// The forwarded-request envelope carries a full network description between
// replicas; the inner description must survive untouched and get the same
// default-filling the client path applies.
func TestForwardedTuneRequestRoundTrip(t *testing.T) {
	desc := DescribeNetwork("V100", models.ResNet18().NetworkLayers())
	desc.Options = &RequestOptions{Budget: 24, Seed: 7, Kinds: []string{"fft"}}
	data, err := json.Marshal(ForwardedTuneRequest{Origin: "http://127.0.0.1:9911", Attempt: 1, Network: desc})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ParseForwardedTuneRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Origin != "http://127.0.0.1:9911" || fr.Attempt != 1 {
		t.Errorf("envelope fields changed: %+v", fr)
	}
	if len(fr.Network.Layers) != len(desc.Layers) || fr.Network.Arch != "V100" {
		t.Errorf("inner description changed: %d layers, arch %q", len(fr.Network.Layers), fr.Network.Arch)
	}
	if fr.Network.Options == nil || fr.Network.Options.Budget != 24 {
		t.Errorf("inner options lost: %+v", fr.Network.Options)
	}
	// Defaults fill like the client path.
	min, err := ParseForwardedTuneRequest([]byte(`{"origin":"x","network":{"arch":"V100","layers":[{"cin":16,"hin":28,"cout":32,"hker":3,"pad":1}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if l := min.Network.Layers[0]; l.Batch != 1 || l.Win != 28 || l.Stride != 1 || l.Name != "layer0" {
		t.Errorf("defaults not filled in forwarded description: %+v", l)
	}
}

func TestForwardedTuneRequestRejections(t *testing.T) {
	inner := `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]}`
	cases := []struct {
		name, body, wantErr string
	}{
		{"missing origin", `{"network":` + inner + `}`, "missing origin"},
		{"long origin", `{"origin":"` + strings.Repeat("a", 300) + `","network":` + inner + `}`, "origin longer"},
		{"negative attempt", `{"origin":"x","attempt":-1,"network":` + inner + `}`, "attempt"},
		{"attempt over cap", `{"origin":"x","attempt":9,"network":` + inner + `}`, "attempt"},
		{"unknown field", `{"origin":"x","hops":1,"network":` + inner + `}`, "unknown field"},
		{"trailing data", `{"origin":"x","network":` + inner + `} extra`, "trailing data"},
		{"bad inner description", `{"origin":"x","network":{"arch":"","layers":[]}}`, "missing arch"},
		{"not json", `forward!`, "forwarded request"},
	}
	for _, c := range cases {
		_, err := ParseForwardedTuneRequest([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// Config wire form round-trips bit for bit.
func TestConfigDescriptionRoundTrip(t *testing.T) {
	c := Config{TileX: 4, TileY: 2, TileZ: 8, ThreadsX: 16, ThreadsY: 8, ThreadsZ: 1,
		SharedPerBlock: 2048, Layout: 1, WinogradE: 4}
	if got := DescribeConfig(c).Config(); got != c {
		t.Errorf("config round trip changed: %+v != %+v", got, c)
	}
}
