package repro

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/models"
)

// DescribeNetwork must be the exact inverse of NetworkLayers: a model's
// inventory survives the trip onto the wire and back untouched.
func TestNetworkDescriptionRoundTrip(t *testing.T) {
	layers := models.ResNet18().NetworkLayers()
	desc := DescribeNetwork("V100", layers)
	data, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetworkDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	back := parsed.NetworkLayers()
	if len(back) != len(layers) {
		t.Fatalf("round trip changed layer count: %d != %d", len(back), len(layers))
	}
	for i := range layers {
		if back[i] != layers[i] {
			t.Errorf("layer %d changed: %+v != %+v", i, back[i], layers[i])
		}
	}
	if parsed.Arch != "V100" {
		t.Errorf("arch changed: %q", parsed.Arch)
	}
}

// Omitted wire fields fill in like NewShape's common case.
func TestNetworkDescriptionDefaults(t *testing.T) {
	d, err := ParseNetworkDescription([]byte(`{"arch":"V100","layers":[{"cin":16,"hin":28,"cout":32,"hker":3,"pad":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	l := d.Layers[0]
	if l.Batch != 1 || l.Win != 28 || l.Wker != 3 || l.Stride != 1 || l.Repeat != 1 {
		t.Errorf("defaults not filled: %+v", l)
	}
	if l.Name != "layer0" {
		t.Errorf("default name %q, want layer0", l.Name)
	}
}

func TestNetworkDescriptionRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"missing arch", `{"layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]}`, "missing arch"},
		{"no layers", `{"arch":"V100","layers":[]}`, "no layers"},
		{"unknown field", `{"arch":"V100","layres":[]}`, "unknown field"},
		{"trailing data", `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]} extra`, "trailing data"},
		{"negative dim", `{"arch":"V100","layers":[{"cin":-8,"hin":8,"cout":8,"hker":3}]}`, "outside"},
		{"oversized dim", `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"repeat":70000}]}`, "outside"},
		{"invalid shape", `{"arch":"V100","layers":[{"cin":8,"hin":1,"cout":8,"hker":3}]}`, "layer"},
		{"oversized budget", `{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}],"options":{"budget":100000}}`, "budget"},
		{"not json", `hello`, "network description"},
	}
	for _, c := range cases {
		_, err := ParseNetworkDescription([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// The layer-count cap guards the tuner from unbounded requests.
func TestNetworkDescriptionLayerCap(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"arch":"V100","layers":[`)
	for i := 0; i <= MaxDescriptionLayers; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}`)
	}
	b.WriteString(`]}`)
	if _, err := ParseNetworkDescription([]byte(b.String())); err == nil {
		t.Fatalf("accepted %d layers, cap is %d", MaxDescriptionLayers+1, MaxDescriptionLayers)
	}
}

// Config wire form round-trips bit for bit.
func TestConfigDescriptionRoundTrip(t *testing.T) {
	c := Config{TileX: 4, TileY: 2, TileZ: 8, ThreadsX: 16, ThreadsY: 8, ThreadsZ: 1,
		SharedPerBlock: 2048, Layout: 1, WinogradE: 4}
	if got := DescribeConfig(c).Config(); got != c {
		t.Errorf("config round trip changed: %+v != %+v", got, c)
	}
}
