package repro

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/autotune"
	"repro/internal/bounds"
	"repro/internal/models"
)

// TestFullPipeline walks the complete user journey end to end: query the
// theory, tune a layer (with a persistent cache), emit the winning schedule,
// run the tuned configuration on real data, verify the numerics, and check
// the measured traffic against the lower bound and the library baseline.
func TestFullPipeline(t *testing.T) {
	arch, err := ArchByName("1080Ti")
	if err != nil {
		t.Fatal(err)
	}
	layer, err := NewShape(1, 64, 28, 96, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Theory.
	bound := LowerBoundDirect(layer, 8192)
	model := DataflowIODirect(layer, 8192, 1)
	if bound <= 0 || model < bound {
		t.Fatalf("theory inconsistent: bound=%v model=%v", bound, model)
	}

	// 2. Tune with a cache.
	cache := autotune.NewCache()
	sp, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	opts := autotune.DefaultOptions()
	opts.Budget = 48
	cfg, m, err := autotune.TuneCached(cache, sp, autotune.DirectMeasurer(arch, layer), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded := autotune.NewCache()
	if err := reloaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	cfg2, m2, err := autotune.TuneCached(reloaded, sp, func(Config) (autotune.Measurement, bool) {
		t.Fatal("cache miss after reload")
		return autotune.Measurement{}, false
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2 != cfg || m2 != m {
		t.Fatalf("cache round trip changed the verdict: %v vs %v", cfg2, cfg)
	}

	// 3. Emit the schedule.
	sched := autotune.EmitSchedule(autotune.Direct, layer, cfg)
	if !strings.Contains(sched, "__shared__") {
		t.Errorf("schedule emission broken:\n%s", sched)
	}

	// 4. Run wet with the tuned config and verify.
	in, ker := RandomOperands(layer, 123)
	res, err := RunDirect(arch, layer, cfg, in, ker)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(layer, res, in, ker, 2e-3); err != nil {
		t.Fatal(err)
	}

	// 5. The tuned run respects the bound at its own shared-memory size and
	// beats the library baseline.
	if got := float64(res.Counts.GlobalIO()); got < LowerBoundDirect(layer, cfg.SharedPerBlock) {
		t.Errorf("measured I/O %v below bound", got)
	}
	lib, err := MeasureLibraryDirect(arch, layer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds > lib.Seconds {
		t.Errorf("tuned run (%v) slower than library (%v)", res.Seconds, lib.Seconds)
	}

	// 6. The tile found satisfies (or closely approaches) the optimality
	// condition — the paper's central design claim.
	gap := bounds.Tile{X: cfg.TileX, Y: cfg.TileY, Z: cfg.TileZ}.OptimalityGap(layer.R())
	if gap > 0.8 {
		t.Errorf("tuned tile %v far off the optimality condition (gap %v)", cfg, gap)
	}

	// 7. The roofline diagnosis is coherent.
	b := arch.Explain(res.Counts, res.Launch)
	if b.Total <= 0 || b.Bound == "" {
		t.Errorf("diagnosis degenerate: %+v", b)
	}
}

// TestNetworkDescriptionPipeline drives the service wire format through the
// real tuner: a model inventory serialized to the JSON a client would POST,
// parsed back, and tuned — with verdicts bit-identical to handing the tuner
// the in-process layer tables directly. The wire format adds description,
// never behavior.
func TestNetworkDescriptionPipeline(t *testing.T) {
	arch, err := ArchByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	layers := models.SqueezeNet().NetworkLayers()[:4]
	opts := NetworkTuneOptions{Budget: 12, Seed: 3, Winograd: true}

	body, err := json.Marshal(DescribeNetwork(arch.Name, layers))
	if err != nil {
		t.Fatal(err)
	}
	desc, err := ParseNetworkDescription(body)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := TuneNetwork(arch, layers, NewTuningCache(), opts)
	if err != nil {
		t.Fatal(err)
	}
	viaWire, err := TuneNetwork(arch, desc.NetworkLayers(), NewTuningCache(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaWire) != len(direct) {
		t.Fatalf("verdict count differs: %d != %d", len(viaWire), len(direct))
	}
	for i := range direct {
		if viaWire[i].Config != direct[i].Config || viaWire[i].M != direct[i].M ||
			viaWire[i].Kind != direct[i].Kind {
			t.Errorf("layer %d: wire verdict %+v != direct %+v", i, viaWire[i], direct[i])
		}
	}
}
